// Benchmarks regenerating every table and figure of the paper's evaluation
// (quick mode; run cmd/kvell-bench for full-scale runs and EXPERIMENTS.md
// for the paper-vs-measured record):
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment once per iteration
// and logs its table on the first iteration.
package kvell

import (
	"bytes"
	"fmt"
	"testing"

	"kvell/internal/harness"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		e.Run(harness.Options{Quick: true, Seed: 42}, &buf)
		if i == 0 && testing.Verbose() {
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkTable1(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)       { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)       { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkFig1(b *testing.B)         { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)         { benchExperiment(b, "fig8") }
func BenchmarkFig9A(b *testing.B)        { benchExperiment(b, "fig9a") }
func BenchmarkFig9B(b *testing.B)        { benchExperiment(b, "fig9b") }
func BenchmarkFig10(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkRecovery(b *testing.B)     { benchExperiment(b, "recovery") }
func BenchmarkBatchLatency(b *testing.B) { benchExperiment(b, "batchlat") }

func BenchmarkAblationCache(b *testing.B)     { benchExperiment(b, "ablation-cache") }
func BenchmarkAblationBatch(b *testing.B)     { benchExperiment(b, "ablation-batch") }
func BenchmarkAblationCommitLog(b *testing.B) { benchExperiment(b, "ablation-commitlog") }
func BenchmarkAblationWorkers(b *testing.B)   { benchExperiment(b, "ablation-workers") }

// Real-runtime micro-benchmarks of the public API (goroutines + files are
// real here; no simulated hardware).

func BenchmarkRealPut(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("bench-%012d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealGet(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 1000)
	const n = 10_000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("bench-%012d", i)), val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := db.Get([]byte(fmt.Sprintf("bench-%012d", i%n))); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkRealScan100(b *testing.B) {
	db, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 1000)
	const n = 10_000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("bench-%012d", i)), val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, _ := db.Scan([]byte(fmt.Sprintf("bench-%012d", i%(n-100))), 100)
		if len(items) != 100 {
			b.Fatalf("scan returned %d", len(items))
		}
	}
}

func BenchmarkAblationShared(b *testing.B)  { benchExperiment(b, "ablation-shared") }
func BenchmarkAblationInPlace(b *testing.B) { benchExperiment(b, "ablation-inplace") }
func BenchmarkOldSSD(b *testing.B)          { benchExperiment(b, "oldssd") }
func BenchmarkCPUPerIO(b *testing.B)        { benchExperiment(b, "cpuperio") }
func BenchmarkTraceAttr(b *testing.B)       { benchExperiment(b, "traceattr") }
