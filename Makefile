GO ?= go

.PHONY: all build vet fmt-check lint test race check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Determinism lint suite (see DESIGN.md "Determinism invariants").
lint:
	$(GO) run ./cmd/kvell-lint ./...

test:
	$(GO) test ./...

# The race detector slows the simulator ~5x; the harness suite needs more
# than go test's default 10m package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# Everything CI runs, in the same order.
check: build vet fmt-check lint race
