GO ?= go

# Packages with microbenchmarks covering the simulator's hot paths and the
# data plane (workload generation, page cache, index, stats recording,
# absorb merge and open-loop arrival draws).
BENCH_PKGS = ./internal/sim ./internal/slab ./internal/pagecache \
	./internal/ycsb ./internal/btree ./internal/stats \
	./internal/core ./internal/harness ./internal/hotcache \
	./internal/mvcc ./internal/txn

.PHONY: all build vet fmt-check lint test race check bench alloc-budget crash-sweep trace absorb tier cluster

# Crash sweep knobs: SEED picks the deterministic schedule (a CI failure
# prints the seed to rerun here), K is points per engine, ENGINE narrows to
# one engine (kvell, rocks, pebbles, wt, toku) or all.
SEED ?= 1
K ?= 25
ENGINE ?= all

# Write-absorption sweep knobs (`make absorb`): comma-separated arrival
# rates (ops per virtual second) and zipfian skews.
RATE ?= 100000,1000000
SKEW ?= 0.6,0.99

# Tiering sweep knobs (`make tier`): comma-separated zipfian skews and
# hot-tier sizes in MB (0 = tiering off).
THETA ?= 0.6,0.99
CACHEMB ?= 0,1.5,4,24

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails if any file is not gofmt-clean (gofmt -l prints offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Determinism lint suite (see DESIGN.md "Determinism invariants").
lint:
	$(GO) run ./cmd/kvell-lint ./...

test:
	$(GO) test ./...

# The race detector slows the simulator ~5x; the harness suite needs more
# than go test's default 10m package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# Zero-allocation budgets for the data-plane hot paths (testing.AllocsPerRun
# tests named TestAllocBudget*); a regression here fails the build.
alloc-budget:
	$(GO) test -run AllocBudget ./...

# Crash–recover–verify sweep (see DESIGN.md §9): kills each engine at K
# seeded points under load, reboots on the power-loss disk images, verifies
# no acknowledged write was lost and no torn value surfaced. Deterministic
# per SEED; a failing point prints its exact repro flags.
crash-sweep:
	$(GO) run ./cmd/kvell-crash -engine $(ENGINE) -k $(K) -seed $(SEED)

# Write-absorption sweep (see DESIGN.md §11): open-loop update-only Zipfian
# workloads across SKEW x RATE x commit interval; reports device-write
# reduction, goodput and tail latency per cell. Deterministic per SEED.
absorb:
	$(GO) run ./cmd/kvell-absorb -quick -parallel 0 -seed $(SEED) -rate $(RATE) -skew $(SKEW)

# Hot/cold tiering sweep (see DESIGN.md §12): open-loop read-mostly Zipfian
# workloads on the slow cold-SSD profile across THETA x CACHEMB; reports
# goodput, tail latency and the memory-hit-rate regimes per cell.
# Deterministic per SEED.
tier:
	$(GO) run ./cmd/kvell-tier -quick -parallel 0 -seed $(SEED) -theta $(THETA) -cachemb $(CACHEMB)

# Cluster sweep knobs (`make cluster`): comma-separated machine counts and
# the replication factor for the failover run.
MACHINES ?= 1,2,4,8
KILLRF ?= 2

# Multi-machine cluster experiment (see DESIGN.md §13): weak-scaling YCSB
# sweep over MACHINES sharded KVell servers on a simulated 10GbE fabric,
# then a kill-one-shard failover run at RF=$(KILLRF) verifying no
# acknowledged write is lost. Deterministic per SEED; digests printed per
# run. `make cluster MACHINES=1,2,4 SEED=7` reproduces any CI row exactly.
cluster:
	$(GO) run ./cmd/kvell-cluster -machines $(MACHINES) -seed $(SEED) -failover-rf $(KILLRF)

# Traced runs (see DESIGN.md §10): writes Chrome trace JSON (Perfetto) and
# per-component latency breakdown tables for an LSM and a KVell run into
# results/trace/. Deterministic per SEED.
trace:
	mkdir -p results/trace
	$(GO) run ./cmd/kvell-trace -engine rocksdb,kvell -seed $(SEED) -o results/trace

# Everything CI runs, in the same order.
check: build vet fmt-check lint alloc-budget crash-sweep race

# Runs the kernel/allocator/page-cache microbenchmarks and writes
# BENCH_sim.json at the repo root: per-benchmark ns/op, allocs/op and ops/sec,
# with before/after/speedup against the checked-in pre-optimization baseline
# (results/bench_baseline.json). Non-blocking in CI; the artifact seeds the
# perf trajectory across PRs. The benchmark output lands in a temp file
# rather than a tee pipe so a go test failure propagates (with `tee`, the
# pipeline's exit status was tee's, and a broken benchmark exited 0).
bench:
	@tmp="$$(mktemp)"; \
	if ! $(GO) test -run '^$$' -bench . -benchmem $(BENCH_PKGS) > "$$tmp" 2>&1; then \
		cat "$$tmp"; rm -f "$$tmp"; echo "bench failed"; exit 1; fi; \
	cat "$$tmp"; \
	$(GO) run ./cmd/kvell-benchjson -baseline results/bench_baseline.json \
		-wall results/wallclock.json -o BENCH_sim.json < "$$tmp"; \
	rm -f "$$tmp"; \
	echo "wrote BENCH_sim.json"
