// Command kvell-trace runs one experiment per engine with span tracing
// enabled and writes the observability artifacts:
//
//	trace_<engine>.json     Chrome trace-event JSON; open in Perfetto
//	                        (ui.perfetto.dev) or chrome://tracing
//	breakdown_<engine>.txt  per-component latency attribution table
//
// Usage:
//
//	kvell-trace                                  # RocksDB-like and KVell, YCSB A
//	kvell-trace -engine wiredtiger -workload B
//	kvell-trace -engine rocksdb,kvell -dur 6s -sample 32 -o out/
//
// Everything in the artifacts is virtual time: the traces are bit-identical
// across runs at a fixed seed, and tracing never perturbs the simulated
// schedule (the untraced run's golden digests hold with tracing on).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"kvell/internal/env"
	"kvell/internal/harness"
	"kvell/internal/trace"
	"kvell/internal/ycsb"
)

func engineKind(name string) (harness.EngineKind, bool) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "kvell":
		return harness.KVell, true
	case "rocksdb", "rocks", "lsm":
		return harness.RocksLike, true
	case "pebblesdb", "pebbles":
		return harness.PebblesLike, true
	case "wiredtiger", "wtree":
		return harness.WiredTigerLike, true
	case "tokumx", "toku", "betree":
		return harness.TokuLike, true
	}
	return 0, false
}

// slug maps an engine display name to a filename fragment.
func slug(engineName string) string {
	return strings.ToLower(strings.TrimSuffix(engineName, "-like"))
}

func main() {
	var (
		engines  = flag.String("engine", "rocksdb,kvell", "comma-separated engines: kvell, rocksdb, pebblesdb, wiredtiger, tokumx")
		workload = flag.String("workload", "A", "YCSB core workload (A-F)")
		dist     = flag.String("dist", "uniform", "key distribution: uniform or zipfian")
		records  = flag.Int64("records", 100_000, "dataset size in records")
		item     = flag.Int("item", 1024, "item size in bytes")
		dur      = flag.Duration("dur", 3*time.Second, "measured duration (virtual time)")
		warmup   = flag.Duration("warmup", 0, "warmup (virtual time; default duration/4)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		sample   = flag.Int("sample", 32, "trace 1 request in N (head sampling by sequence number)")
		outDir   = flag.String("o", ".", "output directory for trace and breakdown files")
	)
	flag.Parse()

	d := ycsb.Uniform
	switch strings.ToLower(*dist) {
	case "uniform":
	case "zipfian":
		d = ycsb.Zipfian
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	if len(*workload) != 1 || (*workload)[0] < 'A' || (*workload)[0] > 'F' {
		fmt.Fprintf(os.Stderr, "workload must be a letter A-F, got %q\n", *workload)
		os.Exit(2)
	}
	wl := (*workload)[0]
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "output dir: %v\n", err)
		os.Exit(1)
	}

	for _, name := range strings.Split(*engines, ",") {
		k, ok := engineKind(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", name)
			os.Exit(2)
		}
		tr := trace.NewTracer(*sample)
		r := harness.Run(harness.Spec{
			Name: "kvell-trace", Seed: *seed, Engine: k, Records: *records,
			ItemSize: *item,
			Gen: func(seed int64) harness.Generator {
				return ycsb.NewGenerator(ycsb.Core(wl), d, *records, *item, seed)
			},
			Warmup:   env.Time(*warmup),
			Duration: env.Time(*dur),
			Tracer:   tr,
		})
		harness.ReportTrace(os.Stdout, r, tr)

		tracePath := filepath.Join(*outDir, "trace_"+slug(r.EngineName)+".json")
		f, err := os.Create(tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create: %v\n", err)
			os.Exit(1)
		}
		if err := tr.WriteChrome(f); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", tracePath, err)
			os.Exit(1)
		}
		f.Close()

		tablePath := filepath.Join(*outDir, "breakdown_"+slug(r.EngineName)+".txt")
		tf, err := os.Create(tablePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(tf, "%s, YCSB %c %s, %d records, seed %d\n",
			r.EngineName, wl, strings.ToLower(*dist), *records, *seed)
		tr.WriteBreakdownTable(tf)
		tf.Close()

		fmt.Printf("  wrote %s and %s\n\n", tracePath, tablePath)
	}
	fmt.Println("open the .json files at https://ui.perfetto.dev (or chrome://tracing)")
}
