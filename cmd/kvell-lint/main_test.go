package main

import (
	"encoding/json"
	"go/token"
	"os"
	"regexp"
	"strings"
	"testing"

	"kvell/internal/analysis"
)

func sampleDiag() analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:      token.Position{Filename: "internal/sim/sim.go", Line: 42, Column: 7},
		Analyzer: "spanclose",
		Message:  "span from Tracer.Begin is never finished",
		Hint:     "call Finish on every path",
	}
}

// The GitHub problem matcher must parse exactly the first line of the text
// output; if Diagnostic.String ever changes shape, this test names the two
// places that have to move together.
func TestProblemMatcherParsesTextOutput(t *testing.T) {
	raw, err := os.ReadFile("../../.github/problem-matchers/kvell-lint.json")
	if err != nil {
		t.Fatalf("read matcher: %v", err)
	}
	var m struct {
		ProblemMatcher []struct {
			Owner   string
			Pattern []struct {
				Regexp string
				File   int
				Line   int
				Column int
				Code   int
			}
		}
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parse matcher: %v", err)
	}
	if len(m.ProblemMatcher) != 1 || len(m.ProblemMatcher[0].Pattern) != 1 {
		t.Fatalf("matcher shape changed: %+v", m)
	}
	p := m.ProblemMatcher[0].Pattern[0]
	re, err := regexp.Compile(p.Regexp)
	if err != nil {
		t.Fatalf("matcher regexp does not compile: %v", err)
	}

	d := sampleDiag()
	firstLine := strings.SplitN(d.String(), "\n", 2)[0]
	sub := re.FindStringSubmatch(firstLine)
	if sub == nil {
		t.Fatalf("matcher regexp %q does not match %q", p.Regexp, firstLine)
	}
	if sub[p.File] != d.Pos.Filename {
		t.Errorf("file group = %q, want %q", sub[p.File], d.Pos.Filename)
	}
	if sub[p.Line] != "42" || sub[p.Column] != "7" {
		t.Errorf("line:col groups = %s:%s, want 42:7", sub[p.Line], sub[p.Column])
	}
	if sub[p.Code] != d.Analyzer {
		t.Errorf("code group = %q, want analyzer %q", sub[p.Code], d.Analyzer)
	}
	// The hint continuation line must NOT look like a new finding.
	if hint := "\tfix: " + d.Hint; re.MatchString(hint) {
		t.Errorf("matcher regexp also matches the hint line %q", hint)
	}
	// The stale-suppression pseudo-analyzer must be matchable too.
	stale := d
	stale.Analyzer = "lint-ignore"
	if sub := re.FindStringSubmatch(strings.SplitN(stale.String(), "\n", 2)[0]); sub == nil {
		t.Error("matcher regexp does not match lint-ignore diagnostics")
	}
}

func TestJSONDiagShape(t *testing.T) {
	d := sampleDiag()
	b, err := json.Marshal(jsonDiag{
		File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
		Analyzer: d.Analyzer, Message: d.Message, Hint: d.Hint,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/sim/sim.go","line":42,"col":7,"analyzer":"spanclose",` +
		`"message":"span from Tracer.Begin is never finished","hint":"call Finish on every path"}`
	if string(b) != want {
		t.Errorf("jsonDiag = %s\nwant      %s", b, want)
	}
	// hint is omitted when empty so tooling can key on its presence.
	b, _ = json.Marshal(jsonDiag{File: "x.go", Line: 1, Col: 1, Analyzer: "norand", Message: "m"})
	if strings.Contains(string(b), "hint") {
		t.Errorf("empty hint not omitted: %s", b)
	}
}
