// Command kvell-lint runs the repository's determinism analyzers (see
// internal/analysis and DESIGN.md "Determinism invariants") over every
// package in the module.
//
// Usage:
//
//	go run ./cmd/kvell-lint ./...
//
// It exits 1 when any diagnostic survives suppression and 2 when the module
// cannot be loaded cleanly (go list failure, parse error, or type error):
// analyzers running over partial type information cannot promise complete
// results, so a broken build is a hard error, not a silent downgrade.
//
// Findings can be suppressed, with a mandatory reason, by a comment on the
// offending line or the line above it:
//
//	//kvell:lint-ignore <analyzer> <reason>
//
// A directive that suppresses nothing is itself reported as stale.
//
// With -json, diagnostics are written to stdout as a single JSON array (empty
// array when clean) for editor and CI integration; the human-readable summary
// and timing still go to stderr.
//
// The whole module is loaded once into one process — a single token.FileSet
// and one shared export-data importer — so each dependency's type information
// is built exactly once no matter how many packages import it. That cache is
// what keeps a full-module lint well under the 30-second CI budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"kvell/internal/analysis"
)

// jsonDiag is the machine-readable diagnostic shape emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

func main() {
	verbose := flag.Bool("v", false, "print per-package progress to stderr")
	jsonOut := flag.Bool("json", false, "write diagnostics to stdout as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kvell-lint [-v] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	loadStart := time.Now()
	pkgs, err := analysis.LoadPackages(".", flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvell-lint: cannot load packages: %v\n", err)
		os.Exit(2)
	}
	loadTime := time.Since(loadStart)

	// A module that does not type-check gets a hard error: analyzers would
	// run over partial information and could silently miss findings.
	typeErrs := 0
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "kvell-lint: %s: type error: %v\n", p.Path, e)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		fmt.Fprintf(os.Stderr, "kvell-lint: %d type error(s); fix the build before linting\n", typeErrs)
		os.Exit(2)
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "# %s (%d files)\n", p.Path, len(p.Files))
		}
	}

	analyzeStart := time.Now()
	diags := analysis.Check(pkgs, analysis.All())
	analyzeTime := time.Since(analyzeStart)

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Hint:     d.Hint,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "kvell-lint: encode: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	fmt.Fprintf(os.Stderr, "kvell-lint: %d package(s), load %s, analyze %s\n",
		len(pkgs), loadTime.Round(time.Millisecond), analyzeTime.Round(time.Millisecond))
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kvell-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kvell-lint: %d packages clean\n", len(pkgs))
}
