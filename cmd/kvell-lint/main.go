// Command kvell-lint runs the repository's determinism analyzers (see
// internal/analysis and DESIGN.md "Determinism invariants") over every
// package in the module.
//
// Usage:
//
//	go run ./cmd/kvell-lint ./...
//
// It exits non-zero when any diagnostic survives suppression. Findings can be
// suppressed, with a mandatory reason, by a comment on the offending line or
// the line above it:
//
//	//kvell:lint-ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"kvell/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "print per-package progress and type-check noise")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: kvell-lint [-v] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	pkgs, err := analysis.LoadPackages(".", flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvell-lint: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "# %s (%d files, %d type errors)\n", p.Path, len(p.Files), len(p.TypeErrors))
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "#   type: %v\n", e)
			}
		}
	}

	diags := analysis.Check(pkgs, analysis.All())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kvell-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("kvell-lint: %d packages clean\n", len(pkgs))
}
