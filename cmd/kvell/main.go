// Command kvell is a small CLI for a file-backed KVell store.
//
//	kvell -db data.kvell put <key> <value>
//	kvell -db data.kvell get <key>
//	kvell -db data.kvell del <key>
//	kvell -db data.kvell scan <start> <count>
//	kvell -db data.kvell stats
//	kvell -db data.kvell bench -n 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"kvell"
)

func main() {
	dbPath := flag.String("db", "data.kvell", "database file")
	workers := flag.Int("workers", 4, "worker goroutines")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: kvell -db FILE {put K V | get K | del K | scan START N | stats | bench [-n N]}")
		os.Exit(2)
	}

	db, err := kvell.Open(kvell.Options{Path: *dbPath, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	switch args[0] {
	case "put":
		need(args, 3)
		if err := db.Put([]byte(args[1]), []byte(args[2])); err != nil {
			log.Fatal(err)
		}
	case "get":
		need(args, 2)
		v, ok, err := db.Get([]byte(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Println("(not found)")
			os.Exit(1)
		}
		fmt.Println(string(v))
	case "del":
		need(args, 2)
		existed, err := db.Delete([]byte(args[1]))
		if err != nil {
			log.Fatal(err)
		}
		if !existed {
			fmt.Println("(not found)")
		}
	case "scan":
		need(args, 3)
		n, err := strconv.Atoi(args[2])
		if err != nil {
			log.Fatal(err)
		}
		items, err := db.Scan([]byte(args[1]), n)
		if err != nil {
			log.Fatal(err)
		}
		for _, it := range items {
			fmt.Printf("%s\t%s\n", it.Key, it.Value)
		}
	case "stats":
		st := db.Stats()
		fmt.Printf("items:        %d\n", st.Items)
		fmt.Printf("index bytes:  %d\n", st.IndexBytes)
		fmt.Printf("cache:        %d hits / %d misses\n", st.CacheHits, st.CacheMisses)
		fmt.Printf("disk:         %d reads / %d writes\n", st.Reads, st.Writes)
	case "bench":
		n := 100_000
		if len(args) >= 3 && args[1] == "-n" {
			n, _ = strconv.Atoi(args[2])
		}
		val := make([]byte, 1000)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := db.Put([]byte(fmt.Sprintf("bench-%012d", i)), val); err != nil {
				log.Fatal(err)
			}
		}
		wElapsed := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < n; i++ {
			if _, ok, _ := db.Get([]byte(fmt.Sprintf("bench-%012d", i))); !ok {
				log.Fatal("lost key during bench")
			}
		}
		rElapsed := time.Since(t0)
		fmt.Printf("writes: %.0f ops/s, reads: %.0f ops/s\n",
			float64(n)/wElapsed.Seconds(), float64(n)/rElapsed.Seconds())
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func need(args []string, n int) {
	if len(args) < n {
		log.Fatalf("%s: missing arguments", args[0])
	}
}
