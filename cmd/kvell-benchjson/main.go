// Command kvell-benchjson converts `go test -bench` text output (on stdin)
// into a machine-readable JSON summary, seeding the repository's performance
// trajectory (BENCH_sim.json at the repo root; see `make bench`).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/sim | kvell-benchjson -o BENCH_sim.json
//	... -baseline results/bench_baseline.json   # merge before/after and compute speedups
//
// The -baseline file is a previous output of this tool: its "after" numbers
// become the new file's "before" numbers, so a checked-in baseline recorded
// before an optimization yields before/after/speedup for every benchmark.
// Baseline entries for benchmarks absent from the current run are carried
// into the output unchanged, so partial runs never lose recorded families.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metrics are one benchmark's measured numbers. OpsPerSec is the derived
// rate (1e9 / ns_per_op): for the simulator kernel benchmarks it reads as
// events (or handoffs, pops, bursts) per real second.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// Entry is one benchmark's before/after record. Speedup is a pointer so a
// benchmark absent from the baseline serializes as "speedup": null rather
// than silently omitting the field (a 1.0x result must stay distinguishable
// from "never compared").
type Entry struct {
	Before  *Metrics `json:"before,omitempty"`
	After   *Metrics `json:"after"`
	Speedup *float64 `json:"speedup"` // before.ns_per_op / after.ns_per_op
}

// Wall is a hand-recorded end-to-end wall-clock measurement for a full
// experiment run — the number microbenchmarks cannot capture. The values
// come from the checked-in -wall file, not from this run, so the record
// survives `make bench` regeneration; Speedup is recomputed here.
type Wall struct {
	Command   string  `json:"command"`
	BeforeSec float64 `json:"before_sec"`
	AfterSec  float64 `json:"after_sec"`
	Speedup   float64 `json:"speedup"`
	Note      string  `json:"note,omitempty"`
}

// File is the output document.
type File struct {
	Schema     string            `json:"schema"`
	WallClocks map[string]*Wall  `json:"wall_clocks,omitempty"`
	Benchmarks map[string]*Entry `json:"benchmarks"`
}

func main() {
	var (
		baseline = flag.String("baseline", "", "previous kvell-benchjson output whose after-numbers become before-numbers")
		wall     = flag.String("wall", "", "JSON file of recorded end-to-end wall-clock timings to carry into the output")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	f := &File{Schema: "kvell-bench-json/v1", Benchmarks: map[string]*Entry{}}

	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		f.Benchmarks[name] = &Entry{After: m}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "kvell-benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "kvell-benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		buf, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvell-benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		var base File
		if err := json.Unmarshal(buf, &base); err != nil {
			fmt.Fprintf(os.Stderr, "kvell-benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		for name, b := range base.Benchmarks {
			if b.After == nil {
				continue
			}
			e, ok := f.Benchmarks[name]
			if !ok {
				// A family absent from this run keeps its baseline record
				// verbatim: a partial `go test -bench` over a few packages
				// must not clobber the rest of the trajectory.
				f.Benchmarks[name] = b
				continue
			}
			e.Before = b.After
			if e.After.NsPerOp > 0 {
				s := round2(b.After.NsPerOp / e.After.NsPerOp)
				e.Speedup = &s
			}
		}
	}

	if *wall != "" {
		buf, err := os.ReadFile(*wall)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvell-benchjson: wall: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(buf, &f.WallClocks); err != nil {
			fmt.Fprintf(os.Stderr, "kvell-benchjson: wall: %v\n", err)
			os.Exit(1)
		}
		for _, w := range f.WallClocks {
			if w.AfterSec > 0 {
				w.Speedup = round2(w.BeforeSec / w.AfterSec)
			}
		}
	}

	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvell-benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "kvell-benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkEventThroughput-8  603848574  1.964 ns/op  0 B/op  0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so names are stable across machines.
func parseBenchLine(line string) (string, *Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	m := &Metrics{}
	seen := false
	for i := 1; i < len(fields)-1; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seen = true
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		}
	}
	if !seen {
		return "", nil, false
	}
	if m.NsPerOp > 0 {
		m.OpsPerSec = round2(1e9 / m.NsPerOp)
	}
	return name, m, true
}

// round2 keeps two decimals so the JSON diffs stay readable.
func round2(v float64) float64 {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	r, _ := strconv.ParseFloat(s, 64)
	return r
}
