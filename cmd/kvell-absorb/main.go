// Command kvell-absorb runs the write-absorption sweep: open-loop update-only
// Zipfian workloads across skew × arrival rate × commit interval, reporting
// device-write reduction, goodput, and tail latency per cell (see DESIGN.md
// §11 and `kvell-bench -exp absorb` for the default grid).
//
// Usage:
//
//	kvell-absorb                                   # default grid, full mode
//	kvell-absorb -quick -rate 100000 -skew 0.99    # one column, fast
//	kvell-absorb -interval-us 0,800 -seed 7
//
// The sweep is deterministic per seed at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"kvell/internal/env"
	"kvell/internal/harness"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "simulation seed")
		quick    = flag.Bool("quick", false, "shorter durations and smaller datasets")
		parallel = flag.Int("parallel", 1, "concurrent simulations (0 = one per CPU)")
		rates    = flag.String("rate", "", "comma-separated arrival rates, ops per virtual second")
		skews    = flag.String("skew", "", "comma-separated zipfian thetas")
		ivs      = flag.String("interval-us", "", "comma-separated commit intervals in microseconds (0 = absorption off)")
	)
	flag.Parse()

	n := *parallel
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	o := harness.Options{Quick: *quick, Seed: *seed, Parallel: n}

	ao := harness.AbsorbOpts{
		Rates:  parseFloats("rate", *rates),
		Thetas: parseFloats("skew", *skews),
	}
	for _, us := range parseFloats("interval-us", *ivs) {
		ao.Intervals = append(ao.Intervals, env.Time(us)*env.Microsecond)
	}
	harness.AbsorbReport(o, ao, os.Stdout)
}

// parseFloats splits a comma-separated flag value; empty means "use the
// sweep's default list".
func parseFloats(name, s string) []float64 {
	if s == "" {
		return nil
	}
	var vs []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvell-absorb: -%s: bad value %q\n", name, f)
			os.Exit(2)
		}
		vs = append(vs, v)
	}
	return vs
}
