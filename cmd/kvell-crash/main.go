// Command kvell-crash runs the crash–recover–verify sweep: it kills each
// engine at seeded points mid-workload, reboots it on the power-loss disk
// images, and verifies that every acknowledged write survived, no torn
// value surfaced, and (for KVell) the rebuilt metadata is consistent.
//
// Usage:
//
//	kvell-crash                         # 25 points per engine, all engines
//	kvell-crash -engine kvell -k 50     # deep sweep of one engine
//	kvell-crash -engine rocks -seed 9 -point 17   # reproduce one failure
//
// The sweep is deterministic: every crash point, torn-write pattern and
// post-recovery digest derives from -seed alone, so the repro line printed
// on failure replays the exact same crash.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kvell/internal/env"
	"kvell/internal/harness"
)

func main() {
	var (
		engine   = flag.String("engine", "all", "engine to crash: kvell, rocks, pebbles, wt, toku, or all")
		points   = flag.Int("k", 25, "seeded crash points per engine")
		seed     = flag.Int64("seed", 1, "master seed (crash points and power-loss coins derive from it)")
		records  = flag.Int64("records", 8_000, "records in the store under test")
		point    = flag.Int("point", 0, "run only this 1-based point (failure repro)")
		verbose  = flag.Bool("v", false, "print one line per surviving crash point")
		absorbUS = flag.Int64("absorb-us", 50, "commit interval (µs) for the extra KVell+absorb pass; 0 skips it")
	)
	flag.Parse()

	var kinds []harness.EngineKind
	if *engine == "all" {
		kinds = harness.AllEngines
	} else {
		k, ok := harness.ParseEngineFlag(*engine)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown engine %q (want kvell, rocks, pebbles, wt, toku, all)\n", *engine)
			os.Exit(2)
		}
		kinds = []harness.EngineKind{k}
	}

	opts := harness.SweepOpts{
		Points:  *points,
		Seed:    *seed,
		Records: *records,
		Point:   *point,
		Verbose: *verbose,
	}
	failures := 0
	start := time.Now()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		failures += harness.CrashSweep(k, opts, os.Stdout)
		names[i] = k.String()
	}
	// KVell runs a second pass with the write-absorption front end enabled:
	// absorbed-then-acked writes must also survive a crash landing in the
	// middle of a group commit.
	if *absorbUS > 0 {
		for _, k := range kinds {
			if k != harness.KVell {
				continue
			}
			ao := opts
			ao.AbsorbInterval = env.Time(*absorbUS) * env.Microsecond
			failures += harness.CrashSweep(k, ao, os.Stdout)
			names = append(names, k.String()+"+absorb")
		}
	}
	ran := *points
	if *point > 0 {
		ran = 1
	}
	if failures > 0 {
		fmt.Printf("\ncrash sweep FAILED: %d failing point(s) (seed %d); rerun locally with make crash-sweep SEED=%d\n",
			failures, *seed, *seed)
		os.Exit(1)
	}
	fmt.Printf("crash sweep passed: %d point(s) x [%s], seed %d, %.1fs\n",
		ran, strings.Join(names, ", "), *seed, time.Since(start).Seconds())
}
