// Command kvell-crash runs the crash–recover–verify sweep: it kills each
// engine at seeded points mid-workload, reboots it on the power-loss disk
// images, and verifies that every acknowledged write survived, no torn
// value surfaced, and (for KVell) the rebuilt metadata is consistent.
//
// Usage:
//
//	kvell-crash                         # 25 points per engine, all engines
//	kvell-crash -engine kvell -k 50     # deep sweep of one engine
//	kvell-crash -engine rocks -seed 9 -point 17   # reproduce one failure
//
// The sweep is deterministic: every crash point, torn-write pattern and
// post-recovery digest derives from -seed alone, so the repro line printed
// on failure replays the exact same crash.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kvell/internal/env"
	"kvell/internal/harness"
)

func main() {
	var (
		engine   = flag.String("engine", "all", "engine to crash: kvell, rocks, pebbles, wt, toku, or all")
		points   = flag.Int("k", 25, "seeded crash points per engine")
		seed     = flag.Int64("seed", 1, "master seed (crash points and power-loss coins derive from it)")
		records  = flag.Int64("records", 8_000, "records in the store under test")
		point    = flag.Int("point", 0, "run only this 1-based point (failure repro)")
		verbose  = flag.Bool("v", false, "print one line per surviving crash point")
		absorbUS = flag.Int64("absorb-us", 50, "commit interval (µs) for the extra KVell+absorb pass; 0 skips it")
		hotMB    = flag.Int64("hot-mb", 4, "hot-cache size (MB) for the extra KVell+hotcache passes; 0 skips them")
	)
	flag.Parse()

	var kinds []harness.EngineKind
	if *engine == "all" {
		kinds = harness.AllEngines
	} else {
		k, ok := harness.ParseEngineFlag(*engine)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown engine %q (want kvell, rocks, pebbles, wt, toku, all)\n", *engine)
			os.Exit(2)
		}
		kinds = []harness.EngineKind{k}
	}

	opts := harness.SweepOpts{
		Points:  *points,
		Seed:    *seed,
		Records: *records,
		Point:   *point,
		Verbose: *verbose,
	}
	failures := 0
	start := time.Now()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		failures += harness.CrashSweep(k, opts, os.Stdout)
		names[i] = k.String()
	}
	// KVell runs extra passes with its front ends enabled: absorbed-then-
	// acked writes must survive a crash landing mid-group-commit, and the
	// hot-key cache must never be what satisfies the acked-write check —
	// recovery rebuilds from disk alone, so a cached-but-unflushed value
	// that mattered would surface here as a lost or impossible version.
	for _, k := range kinds {
		if k != harness.KVell {
			continue
		}
		if *absorbUS > 0 {
			ao := opts
			ao.AbsorbInterval = env.Time(*absorbUS) * env.Microsecond
			failures += harness.CrashSweep(k, ao, os.Stdout)
			names = append(names, k.String()+"+absorb")
		}
		if *hotMB > 0 {
			ho := opts
			ho.TieredHotBytes = *hotMB << 20
			failures += harness.CrashSweep(k, ho, os.Stdout)
			names = append(names, k.String()+"+hotcache")
		}
		if *absorbUS > 0 && *hotMB > 0 {
			bo := opts
			bo.AbsorbInterval = env.Time(*absorbUS) * env.Microsecond
			bo.TieredHotBytes = *hotMB << 20
			failures += harness.CrashSweep(k, bo, os.Stdout)
			names = append(names, k.String()+"+absorb+hotcache")
		}
	}
	ran := *points
	if *point > 0 {
		ran = 1
	}
	if failures > 0 {
		fmt.Printf("\ncrash sweep FAILED: %d failing point(s) (seed %d); rerun locally with make crash-sweep SEED=%d\n",
			failures, *seed, *seed)
		os.Exit(1)
	}
	fmt.Printf("crash sweep passed: %d point(s) x [%s], seed %d, %.1fs\n",
		ran, strings.Join(names, ", "), *seed, time.Since(start).Seconds())
}
