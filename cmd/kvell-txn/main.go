// Command kvell-txn runs the transactional workloads: the txnbank
// conflict-rate × transaction-size sweep, the transactional crash sweep
// (kill the store mid-commit at seeded points, recover, verify that the
// total balance is conserved and no acknowledged transaction is visible
// half-applied), and the cross-shard cluster run with a mid-workload
// machine kill.
//
// Usage:
//
//	kvell-txn                       # conflict sweep + cluster failover run
//	kvell-txn -crash -k 125         # 125-point transactional crash sweep
//	kvell-txn -crash -seed 9 -point 17   # reproduce one crash failure
//	kvell-txn -bank -theta 0.9 -size 4   # one bank run at a chosen point
//
// Everything is deterministic: every schedule, crash point and digest
// derives from -seed alone.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kvell/internal/harness"
)

func main() {
	var (
		crash   = flag.Bool("crash", false, "run the transactional crash sweep instead of the experiment")
		bank    = flag.Bool("bank", false, "run a single bank point instead of the experiment")
		points  = flag.Int("k", 25, "seeded crash points (with -crash)")
		seed    = flag.Int64("seed", 1, "master seed")
		point   = flag.Int("point", 0, "run only this 1-based crash point (failure repro)")
		theta   = flag.Float64("theta", 0.5, "hot-set draw probability (with -bank)")
		size    = flag.Int("size", 2, "accounts per transfer (with -bank)")
		moves   = flag.Int("transfers", 50, "transfers per mover (with -bank)")
		quick   = flag.Bool("quick", false, "shrink the experiment sweep")
		verbose = flag.Bool("v", false, "print one line per surviving crash point")
	)
	flag.Parse()
	start := time.Now()

	switch {
	case *crash:
		fails := harness.TxnCrashSweep(harness.SweepOpts{
			Points:  *points,
			Seed:    *seed,
			Point:   *point,
			Verbose: *verbose,
		}, os.Stdout)
		ran := *points
		if *point > 0 {
			ran = 1
		}
		if fails > 0 {
			fmt.Printf("\ntxn crash sweep FAILED: %d failing point(s) (seed %d)\n", fails, *seed)
			os.Exit(1)
		}
		fmt.Printf("txn crash sweep passed: %d point(s), seed %d, %.1fs\n", ran, *seed, time.Since(start).Seconds())
	case *bank:
		res, err := harness.RunTxnBank(harness.TxnBankSpec{
			Seed:      *seed,
			Theta:     *theta,
			TxnSize:   *size,
			Transfers: *moves,
		})
		if err != nil {
			fmt.Printf("txnbank FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("txnbank ok: committed=%d conflicts=%d aborts=%d audits=%d gc-freed=%d digest=%016x\n",
			res.Committed, res.Conflicts, res.Aborts, res.Audits, res.GCFreed, res.Digest)
	default:
		ex, _ := harness.Find("txn")
		ex.Run(harness.Options{Quick: *quick, Seed: *seed}, os.Stdout)
	}
}
