// Command kvell-cluster runs the multi-machine cluster experiment: a
// share-nothing sharded KVell over N simulated machines joined by a 10GbE
// network model, with consistent-hash placement, leader/follower
// replication of index entries and slab pages, and seeded-RNG failover when
// a machine is killed mid-workload.
//
// Usage:
//
//	kvell-cluster                                 # 1→8 machine sweep + failover
//	kvell-cluster -machines 1,2,4 -quick          # CI-sized mini-sweep
//	kvell-cluster -machines 4 -rf 2 -failover     # just the kill-one-shard run
//	kvell-cluster -seed 7 -machines 8 -rf 3       # reproduce any run exactly
//
// Every run is bit-deterministic in -seed: same seed, same machine count,
// same digest — across hosts, -parallel settings and repetitions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kvell/internal/env"
	"kvell/internal/harness"
	"kvell/internal/stats"
)

func main() {
	var (
		machines = flag.String("machines", "1,2,4,8", "comma-separated server machine counts to sweep")
		rf       = flag.Int("rf", 1, "replication factor for the sweep (leader + rf-1 followers)")
		seed     = flag.Int64("seed", 1, "master seed (placement draws, client schedules, failover choice)")
		records  = flag.Int64("records", 50_000, "records per machine (weak scaling)")
		durMS    = flag.Int64("dur-ms", 1_000, "workload duration per run, in virtual milliseconds")
		quick    = flag.Bool("quick", false, "CI sizes: fewer records, shorter duration")
		failover = flag.Bool("failover", true, "also run the kill-one-machine failover verification")
		killRF   = flag.Int("failover-rf", 2, "replication factor for the failover run")
	)
	flag.Parse()

	recs, dur := *records, env.Time(*durMS)*env.Millisecond
	if *quick {
		if recs > 20_000 {
			recs = 20_000
		}
		if dur > 400*env.Millisecond {
			dur = 400 * env.Millisecond
		}
	}

	var counts []int
	for _, f := range strings.Split(*machines, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -machines entry %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	fmt.Printf("Sharded KVell cluster: YCSB A uniform, %d records/machine, RF=%d, 10GbE, seed=%d\n\n",
		recs, *rf, *seed)
	fmt.Printf("%-10s %12s %10s %10s %12s %12s %18s\n",
		"machines", "ops/s", "speedup", "p99", "net msgs", "net MB", "digest")
	var base float64
	t0 := time.Now()
	for _, m := range counts {
		res, err := harness.RunCluster(harness.ClusterSpec{
			Machines:          m,
			RF:                *rf,
			Seed:              *seed,
			RecordsPerMachine: recs,
			Duration:          dur,
		})
		if err != nil {
			fmt.Printf("%-10d FAILED: %v\n", m, err)
			os.Exit(1)
		}
		if base == 0 {
			base = res.ThroughputOps
		}
		fmt.Printf("%-10d %12.0f %9.2fx %10s %12d %12.1f   %016x\n",
			m, res.ThroughputOps, res.ThroughputOps/base, stats.FmtDur(res.P99),
			res.Net.Msgs, float64(res.Net.Bytes)/(1<<20), res.Digest)
	}

	if *failover {
		fm := counts[len(counts)-1]
		if fm < 2 {
			fm = 2
		}
		res, err := harness.RunCluster(harness.ClusterSpec{
			Machines:          fm,
			RF:                *killRF,
			Seed:              *seed,
			RecordsPerMachine: recs,
			Duration:          dur,
			Failover:          true,
			KillMachine:       1,
		})
		fmt.Printf("\nFailover: %d machines, RF=%d, machine 1 killed at %s, follower on machine %d promoted\n",
			fm, *killRF, stats.FmtDur(res.CrashTime), res.Promoted)
		fmt.Printf("  completed=%d failed=%d shipped: %d pages, %d index entries (frontier %d)\n",
			res.Completed, res.FailedOps, res.PagesShipped, res.EntriesShipped, res.Frontier)
		fmt.Printf("  verified=%d keys: lost=%d; replica index checked=%d mismatches=%d  digest=%016x\n",
			res.Verified, res.Lost, res.Checked, res.Mismatches, res.Digest)
		if err != nil {
			fmt.Printf("  FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  ok: every acknowledged write survived\n")
	}
	fmt.Printf("\n(%.1fs wall)\n", time.Since(t0).Seconds())
}
