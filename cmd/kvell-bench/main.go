// Command kvell-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	kvell-bench -list
//	kvell-bench -exp fig5 [-quick] [-seed 42]
//	kvell-bench -exp all [-quick] [-parallel 0]
//	kvell-bench -exp fig5 -cpuprofile cpu.out -memprofile mem.out
//
// Each experiment prints a text table with the corresponding paper values
// quoted underneath; EXPERIMENTS.md records a full paper-vs-measured
// comparison.
//
// -parallel N runs up to N simulations concurrently (N=0: one per CPU).
// Every simulation is single-threaded and self-contained, so results are
// bit-identical at any parallelism; experiments still print in request
// order. The pprof flags profile the run for performance work on the
// simulator itself.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"kvell/internal/harness"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment id (or 'all')")
		quick      = flag.Bool("quick", false, "shorter durations and smaller datasets")
		seed       = flag.Int64("seed", 42, "simulation seed")
		list       = flag.Bool("list", false, "list experiment ids")
		parallel   = flag.Int("parallel", 1, "concurrent simulations (0 = one per CPU)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	n := *parallel
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	o := harness.Options{Quick: *quick, Seed: *seed, Parallel: n}

	var exps []harness.Experiment
	if *exp == "all" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := harness.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	runExperiments(exps, o, n, os.Stdout)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// runExperiments executes exps and writes each banner-wrapped report to w in
// request order. With parallel > 1 experiments also overlap each other (in
// addition to intra-experiment RunAll concurrency), buffering their output
// so the printed stream is unchanged.
func runExperiments(exps []harness.Experiment, o harness.Options, parallel int, w io.Writer) {
	run := func(e harness.Experiment, w io.Writer) {
		t0 := time.Now()
		fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
		e.Run(o, w)
		fmt.Fprintf(w, "---- (%s wall) ----\n\n", time.Since(t0).Round(time.Millisecond))
	}
	if parallel <= 1 || len(exps) == 1 {
		for _, e := range exps {
			run(e, w)
		}
		return
	}
	bufs := make([]bytes.Buffer, len(exps))
	idx := make(chan int)
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	for t := 0; t < parallel; t++ {
		go func() {
			for i := range idx {
				run(exps[i], &bufs[i])
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range exps {
			idx <- i
		}
		close(idx)
	}()
	for i := range exps {
		<-done[i]
		io.Copy(w, &bufs[i])
	}
}
