// Command kvell-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	kvell-bench -list
//	kvell-bench -exp fig5 [-quick] [-seed 42]
//	kvell-bench -exp all [-quick]
//
// Each experiment prints a text table with the corresponding paper values
// quoted underneath; EXPERIMENTS.md records a full paper-vs-measured
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"kvell/internal/harness"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (or 'all')")
		quick = flag.Bool("quick", false, "shorter durations and smaller datasets")
		seed  = flag.Int64("seed", 42, "simulation seed")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.All() {
			fmt.Printf("  %-20s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	o := harness.Options{Quick: *quick, Seed: *seed}
	run := func(e harness.Experiment) {
		t0 := time.Now()
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		e.Run(o, os.Stdout)
		fmt.Printf("---- (%s wall) ----\n\n", time.Since(t0).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range harness.All() {
			run(e)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		e, ok := harness.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		run(e)
	}
}
