// Command kvell-devbench characterizes the simulated storage devices: it
// regenerates the paper's §2 measurements (Tables 1-3, Figures 1-2) that
// motivate KVell's design.
//
//	kvell-devbench            # all device experiments
//	kvell-devbench -exp table2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"kvell/internal/harness"
)

var deviceExps = []string{"table1", "table2", "table3", "fig1", "fig2"}

func main() {
	var (
		exp   = flag.String("exp", "all", "device experiment (table1,table2,table3,fig1,fig2 or all)")
		quick = flag.Bool("quick", false, "shorter runs")
		seed  = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	ids := deviceExps
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	o := harness.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		e, ok := harness.Find(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown device experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		e.Run(o, os.Stdout)
		fmt.Println()
	}
}
