// Command kvell-tier runs the hot/cold tiering sweep: open-loop read-mostly
// Zipfian workloads on the slow cold-SSD profile across skew × hot-tier size,
// every engine untiered as a baseline, reporting goodput, tail latency, and
// the memory-hit-rate regimes per cell (see DESIGN.md §12 and
// `kvell-bench -exp tiering` for the default grid).
//
// Usage:
//
//	kvell-tier                                  # default grid, full mode
//	kvell-tier -quick -theta 0.99 -cachemb 0,24 # one skew, fast
//	kvell-tier -rate 200000 -seed 7
//
// The sweep is deterministic per seed at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"kvell/internal/harness"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "simulation seed")
		quick    = flag.Bool("quick", false, "shorter durations and smaller datasets")
		parallel = flag.Int("parallel", 1, "concurrent simulations (0 = one per CPU)")
		thetas   = flag.String("theta", "", "comma-separated zipfian thetas")
		cachemb  = flag.String("cachemb", "", "comma-separated hot-tier sizes in MB (0 = tiering off)")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate, ops per virtual second (0 = default)")
	)
	flag.Parse()

	n := *parallel
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	o := harness.Options{Quick: *quick, Seed: *seed, Parallel: n}

	to := harness.TierOpts{
		Thetas:  parseFloats("theta", *thetas),
		CacheMB: parseFloats("cachemb", *cachemb),
		Rate:    *rate,
	}
	harness.TierReport(o, to, os.Stdout)
}

// parseFloats splits a comma-separated flag value; empty means "use the
// sweep's default list".
func parseFloats(name, s string) []float64 {
	if s == "" {
		return nil
	}
	var vs []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvell-tier: -%s: bad value %q\n", name, f)
			os.Exit(2)
		}
		vs = append(vs, v)
	}
	return vs
}
