module kvell

go 1.22
