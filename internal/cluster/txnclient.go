package cluster

import (
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

// tsMsgSize is the wire size of a timestamp fetch or grant (header + one
// 64-bit timestamp).
const tsMsgSize = 24

// OracleHome is the store identity whose machine runs the cluster's
// timestamp oracle. It is fixed at machine 0: the oracle is tiny,
// single-writer state, and pinning it sidesteps oracle failover (the
// experiments never kill machine 0 — see DESIGN.md §14).
const OracleHome = 0

// FetchTS asks the oracle machine for a timestamp over the network. With
// consume set it issues a fresh, strictly increasing timestamp; otherwise it
// returns the current floor (a consume-free snapshot timestamp). done runs
// back on the client machine in scheduler context.
func (cl *Cluster) FetchTS(c env.Ctx, client int, consume bool, done func(ts uint64)) {
	n := cl.nodes[OracleHome]
	cl.Net.Send(client, n.host, tsMsgSize, nil, func() {
		var ts uint64
		if consume {
			ts = n.st.Oracle().Next(cl.S.Now())
		} else {
			ts = n.st.Oracle().Last()
		}
		cl.Net.Send(n.host, client, tsMsgSize, nil, func() { done(ts) })
	})
}

// TxnClient adapts the cluster's message transport to the blocking client
// interface internal/txn expects: every call sends one request (or timestamp
// fetch) and parks the calling proc until the reply lands. One TxnClient
// serves one proc.
//
// Calls are sequence-guarded for failover: each send installs a completion
// closure stamped with a fresh sequence number, so a straggler reply from a
// machine that died mid-call (swept by SweepIf) cannot be mistaken for the
// reply to a later call reusing the same message.
type TxnClient struct {
	Cl      *Cluster
	Machine int // client machine this proc runs on

	mu   env.Mutex
	cond env.Cond
	msg  *ReqMsg
	seq  uint64
	busy bool // a store call is in flight (timestamp fetches never set it)
	done bool
	res  kv.Result
	ts   uint64

	// Swept counts in-flight calls failed by the failover sweep.
	Swept int64
}

// NewTxnClient returns a transaction client sending from machine on e.
func NewTxnClient(cl *Cluster, e *sim.Env, machine int) *TxnClient {
	tc := &TxnClient{Cl: cl, Machine: machine}
	tc.mu = e.NewMutex()
	tc.cond = e.NewCond(tc.mu)
	tc.msg = NewReqMsg(cl)
	return tc
}

// finish delivers a result for call my; stale sequence numbers (a straggler
// reply racing a sweep) are dropped. c is nil from completion callbacks.
func (tc *TxnClient) finish(c env.Ctx, my uint64, res kv.Result) {
	tc.mu.Lock(c)
	if tc.seq != my || tc.done {
		tc.mu.Unlock(c)
		return
	}
	tc.res = res
	tc.done = true
	tc.busy = false
	tc.mu.Unlock(c)
	tc.cond.Signal(c)
}

// call sends the prepared message and blocks until its reply (or a sweep).
func (tc *TxnClient) call(c env.Ctx) kv.Result {
	tc.seq++
	my := tc.seq
	tc.done = false
	tc.busy = true
	tc.msg.Done = func(res kv.Result) { tc.finish(nil, my, res) }
	tc.Cl.Send(c, tc.Machine, tc.msg)
	tc.mu.Lock(c)
	for !tc.done {
		tc.cond.Wait(c)
	}
	res := tc.res
	tc.mu.Unlock(c)
	return res
}

// SweepIf fails the in-flight call, if any, that was sent to dead — a machine
// whose reply will never arrive. The call completes with a TxnRetry verdict:
// every transactional path treats TxnRetry as "back off and re-send", and the
// re-send routes under the post-failover epoch, so a swept commit can never
// damage a transaction that in fact committed before the crash. Returns
// whether a call was swept. Call after FailMachine + promotion re-routing.
func (tc *TxnClient) SweepIf(c env.Ctx, dead int) bool {
	tc.mu.Lock(c)
	swept := tc.busy && !tc.done && tc.msg.Node != nil && tc.msg.Node.Host() == dead
	my := tc.seq
	tc.mu.Unlock(c)
	if !swept {
		return false
	}
	tc.Swept++
	tc.finish(c, my, kv.Result{Txn: kv.TxnRetry})
	return true
}

func (tc *TxnClient) op(c env.Ctx, op kv.OpType, key, value, aux []byte, ts, ts2 uint64, del bool) kv.Result {
	m := tc.msg
	m.Op, m.Key, m.Value, m.Aux = op, key, value, aux
	m.TS, m.TS2, m.Del = ts, ts2, del
	return tc.call(c)
}

// NextTS fetches a fresh timestamp from the oracle machine.
func (tc *TxnClient) NextTS(c env.Ctx) uint64 { return tc.fetchTS(c, true) }

// SnapshotTS fetches a consume-free snapshot timestamp from the oracle
// machine.
func (tc *TxnClient) SnapshotTS(c env.Ctx) uint64 { return tc.fetchTS(c, false) }

func (tc *TxnClient) fetchTS(c env.Ctx, consume bool) uint64 {
	tc.seq++ // invalidate any straggler reply from a swept store call
	my := tc.seq
	tc.done = false
	tc.Cl.FetchTS(c, tc.Machine, consume, func(ts uint64) {
		tc.mu.Lock(nil)
		if tc.seq == my && !tc.done {
			tc.ts = ts
			tc.done = true
		}
		tc.mu.Unlock(nil)
		tc.cond.Signal(nil)
	})
	tc.mu.Lock(c)
	for !tc.done {
		tc.cond.Wait(c)
	}
	ts := tc.ts
	tc.mu.Unlock(c)
	return ts
}

// TxnGet performs a snapshot read at ts (skip names a pending transaction
// whose lock the read may pass).
func (tc *TxnClient) TxnGet(c env.Ctx, key []byte, ts, skip uint64) kv.Result {
	return tc.op(c, kv.OpTxnGet, key, nil, nil, ts, skip, false)
}

// Prewrite installs a locked intent on key for the transaction at startTS.
func (tc *TxnClient) Prewrite(c env.Ctx, key, value, primary []byte, startTS uint64, del bool) kv.Result {
	return tc.op(c, kv.OpTxnPrewrite, key, value, primary, startTS, 0, del)
}

// Commit flips key's intent at startTS to a committed version at commitTS.
func (tc *TxnClient) Commit(c env.Ctx, key []byte, startTS, commitTS uint64) kv.Result {
	return tc.op(c, kv.OpTxnCommit, key, nil, nil, startTS, commitTS, false)
}

// Resolve queries the transaction whose primary lock is on primary.
func (tc *TxnClient) Resolve(c env.Ctx, primary []byte, startTS, readTS uint64) kv.Result {
	return tc.op(c, kv.OpTxnResolve, primary, nil, nil, startTS, readTS, false)
}

// Rollback removes key's intent at startTS.
func (tc *TxnClient) Rollback(c env.Ctx, key []byte, startTS uint64) kv.Result {
	return tc.op(c, kv.OpTxnRollback, key, nil, nil, startTS, 0, false)
}
