package cluster

import (
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/sim"
	"kvell/internal/trace"

	"kvell/internal/core"
)

// Wire-format overheads, in bytes. The simulation never marshals anything —
// these just size the simulated messages so the network model charges
// realistic transmit times.
const (
	ReqOverhead     = 64 // client request header (op, key len, routing epoch)
	ReplyOverhead   = 32 // reply header (status, value len)
	PageRecOverhead = 32 // replication page record header (seq, disk, page)
	IdxRecOverhead  = 24 // replication index record header (seq, loc, flags)
	AckSize         = 16 // follower cumulative ack (seq)
)

// pageRec replicates one slab-page write: the follower writes data at page on
// replica disk disk. The data slice is immutable after construction and
// shared by every follower's copy of the record.
type pageRec struct {
	seq  uint64
	disk int
	page int64
	data []byte
}

// idxRec replicates one index change: key now lives at loc (or is deleted).
type idxRec struct {
	seq uint64
	key []byte
	loc uint64
	del bool
}

// pend is a client write waiting at the replication barrier: its local write
// is durable, but a follower has not yet acknowledged every record shipped
// before it.
type pend struct {
	m   *ReqMsg
	n   *Node
	seq uint64
	t0  env.Time
}

// Replicator is the leader side of one store's replication: it assigns every
// shipped record (page write or index change) a sequence number from one
// monotone stream, fans records to all live followers, and releases client
// write acknowledgements only when every live follower has acknowledged all
// records up to the write's barrier — KVell's "durable at its final location"
// guarantee, extended across machines.
type Replicator struct {
	cl        *Cluster
	home      int // leader machine
	active    bool
	seq       uint64
	followers []*followerLink

	// pending is the FIFO of writes at the barrier (FIFO by construction:
	// barriers are captured at local-durable time, and seq only grows).
	pending []pend
	head    int

	// Counters.
	PagesShipped   int64
	EntriesShipped int64
	BytesShipped   int64
	Released       int64
}

type followerLink struct {
	machine int
	rep     *Replica
	acked   uint64
	dead    bool
}

// NewReplicator returns an inactive replicator for the store on machine home.
// Wire it into the store config via OnIndexUpdate/WrapDisk, attach followers,
// then Activate once bulk load is done (bulk load is replicated by seeding
// follower disks from leader snapshots instead).
func NewReplicator(cl *Cluster, home int) *Replicator {
	return &Replicator{cl: cl, home: home}
}

// AddFollower registers rep as a follower. Call before Activate.
func (rp *Replicator) AddFollower(rep *Replica) {
	rp.followers = append(rp.followers, &followerLink{machine: rep.host, rep: rep})
	rep.rp = rp
}

// Activate starts shipping. Records submitted before activation (bulk load)
// are not shipped.
func (rp *Replicator) Activate() { rp.active = true }

// Followers returns the follower machine ids, dead ones included.
func (rp *Replicator) Followers() []int {
	out := make([]int, len(rp.followers))
	for i, f := range rp.followers {
		out[i] = f.machine
	}
	return out
}

// OnIndexUpdate is the core.Config hook: ship the index change to followers.
// Runs on the leader's worker thread.
func (rp *Replicator) OnIndexUpdate(worker int, key []byte, loc uint64, del bool) {
	if !rp.active || !rp.anyLive() {
		return
	}
	rp.seq++
	rec := &idxRec{seq: rp.seq, key: append([]byte(nil), key...), loc: loc, del: del}
	rp.EntriesShipped++
	rp.fan(rec, IdxRecOverhead+len(rec.key))
}

// shipPage ships one page write (called by the replDisk wrapper at Submit,
// before the leader's own disk consumes the buffer).
func (rp *Replicator) shipPage(disk int, page int64, buf []byte) {
	if !rp.active || !rp.anyLive() {
		return
	}
	rp.seq++
	rec := &pageRec{seq: rp.seq, disk: disk, page: page, data: append([]byte(nil), buf...)}
	rp.PagesShipped++
	rp.fan(rec, PageRecOverhead+len(rec.data))
}

func (rp *Replicator) fan(rec any, size int) {
	rp.BytesShipped += int64(size)
	for _, f := range rp.followers {
		if f.dead {
			continue
		}
		rep := f.rep
		rp.cl.Net.Send(rp.home, rep.host, size, nil, func() { rep.enqueue(rec) })
	}
}

// Barrier holds m's reply until every live follower has acknowledged all
// records shipped so far; called by the node at local-durable time (so the
// captured barrier covers every record this write generated). Books the wait
// as CompReplicate on the request's trace.
func (rp *Replicator) Barrier(m *ReqMsg, n *Node) {
	bar := rp.seq
	if bar <= rp.minAcked() {
		n.reply(m)
		return
	}
	rp.pending = append(rp.pending, pend{m: m, n: n, seq: bar, t0: rp.cl.S.Now()})
}

// onAck records follower machine's cumulative ack and releases the pending
// prefix now covered.
func (rp *Replicator) onAck(machine int, seq uint64) {
	for _, f := range rp.followers {
		if f.machine == machine && seq > f.acked {
			f.acked = seq
		}
	}
	rp.release()
}

// DropFollower marks machine's follower dead (machine failed): its acks stop
// counting, so writes blocked only on it release immediately. Without this, a
// surviving leader that replicated to the dead machine would stall forever.
func (rp *Replicator) DropFollower(machine int) {
	for _, f := range rp.followers {
		if f.machine == machine {
			f.dead = true
		}
	}
	rp.release()
}

func (rp *Replicator) anyLive() bool {
	for _, f := range rp.followers {
		if !f.dead {
			return true
		}
	}
	return false
}

func (rp *Replicator) minAcked() uint64 {
	min, live := ^uint64(0), false
	for _, f := range rp.followers {
		if !f.dead {
			live = true
			if f.acked < min {
				min = f.acked
			}
		}
	}
	if !live {
		return ^uint64(0) // no live followers: local durability is all there is
	}
	return min
}

func (rp *Replicator) release() {
	ma := rp.minAcked()
	now := rp.cl.S.Now()
	for rp.head < len(rp.pending) && rp.pending[rp.head].seq <= ma {
		p := rp.pending[rp.head]
		rp.pending[rp.head] = pend{}
		rp.head++
		rp.Released++
		p.m.Trace.Add(trace.CompReplicate, p.t0, now)
		p.n.reply(p.m)
	}
	if rp.head > 64 {
		n := copy(rp.pending, rp.pending[rp.head:])
		for j := n; j < len(rp.pending); j++ {
			rp.pending[j] = pend{}
		}
		rp.pending, rp.head = rp.pending[:n], 0
	}
}

// WrapDisk interposes replication on a leader disk: every write is shipped
// to the followers before the inner disk consumes the buffer. idx is the
// disk's position in the store's disk list, which is also its position in
// each follower's replica-disk list.
func (rp *Replicator) WrapDisk(idx int, inner device.Disk) device.Disk {
	return &replDisk{rp: rp, idx: idx, inner: inner}
}

// replDisk is the replication wrapper. Besides device.Disk it forwards the
// optional interfaces the engine layers probe for: Store (core bulk load /
// storeAccessor) and Dead (aio's dead-device check under fault injection).
type replDisk struct {
	rp    *Replicator
	idx   int
	inner device.Disk
}

func (d *replDisk) Submit(r *device.Request) {
	if r.Op == device.Write {
		d.rp.shipPage(d.idx, r.Page, r.Buf)
	}
	d.inner.Submit(r)
}

func (d *replDisk) Counters() device.Counters { return d.inner.Counters() }

// Store implements core's storeAccessor by delegation.
func (d *replDisk) Store() device.Store {
	return d.inner.(interface{ Store() device.Store }).Store()
}

// Dead implements aio.DeadDevice by delegation (false when the inner disk is
// not fault-wrapped).
func (d *replDisk) Dead() bool {
	if dd, ok := d.inner.(interface{ Dead() bool }); ok {
		return dd.Dead()
	}
	return false
}

// ReplEntry is one replicated index entry held by a follower.
type ReplEntry struct {
	Loc uint64
	Del bool
	Seq uint64
}

// Replica is the follower side: it applies the leader's record stream to its
// own replica disks and index map, in sequence order, and acknowledges the
// contiguous applied frontier back to the leader. Page records are durable
// (replica disk write) before they count; index records apply in memory.
// On leader death a Replica can be promoted: its disks hold a prefix of the
// leader's disk state closed under the ack barrier, so the ordinary §6.6
// full-scan recovery rebuilds a store containing every acknowledged write.
type Replica struct {
	cl    *Cluster
	env   *sim.Env
	home  int // leader machine this replicates
	host  int // machine this replica runs on
	rp    *Replicator
	disks []*device.SimDisk
	q     env.Queue

	idx      map[string]ReplEntry
	frontier uint64
	doneSet  map[uint64]struct{}
	lastAck  uint64
	closed   bool

	mu       env.Mutex
	cond     env.Cond
	exited   bool
	promoted bool

	// Counters.
	Applied   int64
	LateDrops int64
}

// NewReplica returns a follower for the store on machine home, running on
// e's machine over disks (one per leader disk, same order, seeded with the
// leader's post-bulk-load snapshots by the caller).
func NewReplica(cl *Cluster, e *sim.Env, home int, disks []*device.SimDisk) *Replica {
	rep := &Replica{
		cl: cl, env: e, home: home, host: e.Machine, disks: disks,
		q:       e.NewQueue(),
		idx:     make(map[string]ReplEntry),
		doneSet: make(map[uint64]struct{}),
	}
	rep.mu = e.NewMutex()
	rep.cond = e.NewCond(rep.mu)
	return rep
}

// Host returns the machine the replica runs on.
func (rep *Replica) Host() int { return rep.host }

// Frontier returns the highest contiguously applied sequence number.
func (rep *Replica) Frontier() uint64 { return rep.frontier }

// Start launches the apply thread on the replica's machine.
func (rep *Replica) Start() {
	rep.env.Go("replica-apply", rep.run)
}

// enqueue accepts a delivered record (network callback, scheduler context).
func (rep *Replica) enqueue(rec any) {
	if rep.closed {
		rep.LateDrops++
		return
	}
	rep.q.Push(nil, rec)
}

func (rep *Replica) run(c env.Ctx) {
	for {
		batch := rep.q.PopWait(c, 64)
		if batch == nil {
			rep.mu.Lock(c)
			rep.exited = true
			rep.cond.Broadcast(c)
			rep.mu.Unlock(c)
			return
		}
		for _, v := range batch {
			switch rec := v.(type) {
			case *idxRec:
				c.CPU(costs.BTreeNode)
				rep.idx[string(rec.key)] = ReplEntry{Loc: rec.loc, Del: rec.del, Seq: rec.seq}
				rep.complete(rec.seq)
			case *pageRec:
				c.CPU(costs.Callback)
				seq := rec.seq
				rep.disks[rec.disk].Submit(&device.Request{
					Op:   device.Write,
					Page: rec.page,
					Buf:  rec.data,
					Done: func() { rep.complete(seq) },
				})
			}
		}
	}
}

// complete marks seq applied and advances the contiguous frontier; every
// advance sends a cumulative ack to the leader (dropped by the network if
// the leader's machine is dead).
func (rep *Replica) complete(seq uint64) {
	rep.Applied++
	rep.doneSet[seq] = struct{}{}
	adv := false
	for {
		if _, ok := rep.doneSet[rep.frontier+1]; !ok {
			break
		}
		delete(rep.doneSet, rep.frontier+1)
		rep.frontier++
		adv = true
	}
	if adv && rep.frontier > rep.lastAck {
		rep.lastAck = rep.frontier
		ack := rep.frontier
		rp := rep.rp
		rep.cl.Net.Send(rep.host, rep.home, AckSize, nil, func() { rp.onAck(rep.host, ack) })
	}
}

// Promote turns the replica into a live store after its leader's machine
// died: stop accepting records, drain the apply queue, wait for replica disk
// writes to settle, then rebuild a store over the replica disks with the
// ordinary full-scan recovery path (§6.6 — the replica ships no manifest,
// exactly like the single-machine store). cfg must describe the same
// geometry as the dead leader's store; its Disks are replaced with the
// replica's. The caller drives re-routing and client recovery.
func (rep *Replica) Promote(c env.Ctx, cfg core.Config) (*core.Store, error) {
	rep.closed = true
	rep.q.Close(c)
	rep.mu.Lock(c)
	for !rep.exited {
		rep.cond.Wait(c)
	}
	rep.mu.Unlock(c)
	for {
		busy := false
		for _, d := range rep.disks {
			if d.Inflight() > 0 {
				busy = true
			}
		}
		if !busy {
			break
		}
		c.Sleep(10 * env.Microsecond)
	}
	cfg.Disks = make([]device.Disk, len(rep.disks))
	for i, d := range rep.disks {
		cfg.Disks[i] = d
	}
	cfg.OnIndexUpdate = nil // the promoted store runs unreplicated
	st, err := core.Open(rep.env, cfg)
	if err != nil {
		return nil, err
	}
	if err := st.Recover(c); err != nil {
		return nil, err
	}
	rep.promoted = true
	return st, nil
}

// ValidateIndex cross-checks the replicated index entries against a
// recovered store's scan-rebuilt index. exempt reports keys that may
// legitimately disagree (writes in flight at the crash: their records may
// sit past the applied frontier). Returns entries checked and mismatches.
func (rep *Replica) ValidateIndex(st *core.Store, exempt func(key string) bool) (checked, mismatches int) {
	keys := make([]string, 0, len(rep.idx))
	for k := range rep.idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if exempt != nil && exempt(k) {
			continue
		}
		e := rep.idx[k]
		loc, ok := st.LookupLoc([]byte(k))
		checked++
		if e.Del {
			if ok {
				mismatches++
			}
			continue
		}
		if !ok || loc != e.Loc {
			mismatches++
		}
	}
	return checked, mismatches
}
