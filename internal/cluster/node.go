package cluster

import (
	"kvell/internal/core"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/net"
	"kvell/internal/sim"
	"kvell/internal/trace"
)

// Cluster is the assembled topology: the placement plus a registry mapping
// each store identity (its initial leader machine, the "home") to the Node
// currently serving it. Failover swaps a registry entry to the promoted
// follower's node; clients always route through the registry, so re-routing
// is one pointer swap.
type Cluster struct {
	S     *sim.Sim
	Net   *net.Network
	Place *Placement

	nodes []*Node // indexed by home machine
}

// New returns an empty cluster over s, nw and place; register nodes with
// SetNode.
func New(s *sim.Sim, nw *net.Network, place *Placement) *Cluster {
	return &Cluster{S: s, Net: nw, Place: place, nodes: make([]*Node, place.Servers)}
}

// SetNode installs n as the server for store identity home (initial
// placement and failover re-pointing alike).
func (cl *Cluster) SetNode(home int, n *Node) { cl.nodes[home] = n }

// Node returns the node currently serving store identity home.
func (cl *Cluster) Node(home int) *Node { return cl.nodes[home] }

// NodeFor returns the node currently serving key's slot.
func (cl *Cluster) NodeFor(key []byte) *Node {
	return cl.nodes[cl.Place.Route(cl.Place.SlotOf(key))]
}

// FailMachine records machine m's death cluster-wide: bump the routing
// epoch, stop m's node, and drop m as a follower from every surviving
// leader's replicator so their barriers stop waiting for its acks. The
// caller separately promotes a replica of m's store and SetNodes it in.
func (cl *Cluster) FailMachine(m int) {
	cl.Place.Fail(m)
	for _, n := range cl.nodes {
		if n == nil {
			continue
		}
		if n.host == m {
			n.stopped = true
		}
		if n.repl != nil {
			n.repl.DropFollower(m)
		}
	}
}

// ReqMsg is one client operation in flight across the network. Messages are
// client-owned and reusable: Send stamps the routing fields, the serving
// node embeds its kv.Request, and Done runs back on the client machine when
// the reply arrives. If the serving machine dies first, Done never runs —
// the client's failover sweep reclaims the slot.
type ReqMsg struct {
	Op    kv.OpType
	Key   []byte
	Value []byte
	// TS, TS2, Aux and Del mirror kv.Request's transaction fields (snapshot /
	// start timestamp, commit / skip timestamp, primary key, delete intent).
	TS    uint64
	TS2   uint64
	Aux   []byte
	Del   bool
	Trace *trace.Ctx
	// Done receives the reply on the client machine (scheduler context:
	// short, non-blocking, may take locks with a nil ctx like any
	// completion callback).
	Done func(res kv.Result)

	// Node and Epoch are stamped by Send: where the message went and under
	// which routing epoch (the failover sweep keys off them).
	Node  *Node
	Epoch int

	cl *Cluster
	// client is the sending machine.
	client int
	// req is the server-side request, embedded so the serve path does not
	// allocate; its Done is wired to serverDone once.
	req kv.Request
	// respValue carries the reply value across the network hop (reused).
	respValue []byte
	res       kv.Result
}

// NewReqMsg returns a reusable request message for cluster cl.
func NewReqMsg(cl *Cluster) *ReqMsg {
	m := &ReqMsg{cl: cl}
	m.req.Done = m.serverDone
	return m
}

// Send routes m to the node owning m.Key and transmits it from client
// machine client. Point operations only (the cluster model has no
// cross-machine scan path).
func (cl *Cluster) Send(c env.Ctx, client int, m *ReqMsg) {
	n := cl.NodeFor(m.Key)
	m.Node = n
	m.Epoch = cl.Place.Epoch()
	m.client = client
	size := ReqOverhead + len(m.Key) + len(m.Value) + len(m.Aux)
	cl.Net.Send(client, n.host, size, m.Trace, func() { n.enqueue(m) })
}

// serverDone is the embedded request's completion: it runs on the serving
// machine when the store acknowledges the operation (for writes, locally
// durable). Writes on a replicated node then wait at the replication
// barrier; everything else replies immediately.
func (m *ReqMsg) serverDone(res kv.Result) {
	m.respValue = append(m.respValue[:0], res.Value...)
	m.res = kv.Result{Found: res.Found, ScanN: res.ScanN, Txn: res.Txn, TxnTS: res.TxnTS}
	n := m.Node
	if n.repl != nil && !m.Op.ReadOnly() {
		n.repl.Barrier(m, n)
		return
	}
	n.reply(m)
}

// Node serves one store identity on one machine: a serve thread drains the
// inbox and submits requests to the local store; replies travel back over
// the network to the issuing client.
type Node struct {
	cl   *Cluster
	env  *sim.Env
	home int // store identity (initial leader machine)
	host int // machine this node runs on
	st   *core.Store
	repl *Replicator // nil for unreplicated (RF=1) and promoted nodes

	inbox   env.Queue
	stopped bool

	// Reqs counts operations served.
	Reqs int64
}

// NewNode returns a node serving st (store identity home) on e's machine.
// repl may be nil.
func NewNode(cl *Cluster, e *sim.Env, home int, st *core.Store, repl *Replicator) *Node {
	return &Node{cl: cl, env: e, home: home, host: e.Machine, st: st,
		repl: repl, inbox: e.NewQueue()}
}

// Host returns the machine the node runs on.
func (n *Node) Host() int { return n.host }

// Home returns the store identity the node serves.
func (n *Node) Home() int { return n.home }

// Store returns the served store.
func (n *Node) Store() *core.Store { return n.st }

// Start launches the serve thread.
func (n *Node) Start() {
	n.env.Go("cluster-serve", n.serve)
}

// enqueue accepts a delivered request (network callback, scheduler context).
func (n *Node) enqueue(m *ReqMsg) {
	if n.stopped {
		return
	}
	n.inbox.Push(nil, m)
}

func (n *Node) serve(c env.Ctx) {
	for {
		batch := n.inbox.PopWait(c, 64)
		if batch == nil {
			return
		}
		for _, v := range batch {
			m := v.(*ReqMsg)
			n.Reqs++
			r := &m.req
			r.Op, r.Key, r.Value = m.Op, m.Key, m.Value
			r.TS, r.TS2, r.Aux, r.Del = m.TS, m.TS2, m.Aux, m.Del
			r.ScanCount = 0
			r.Start = c.Now()
			r.Trace = m.Trace
			n.st.Submit(c, r)
		}
	}
}

// reply sends m's result back to the issuing client (dropped if the client
// machine — or this machine, post-mortem — is dead).
func (n *Node) reply(m *ReqMsg) {
	res := m.res
	if len(m.respValue) > 0 {
		res.Value = m.respValue
	}
	size := ReplyOverhead + len(m.respValue)
	done := m.Done
	n.cl.Net.Send(n.host, m.client, size, m.Trace, func() { done(res) })
}
