// Package cluster shards KVell across the simulated machines of one Sim: a
// share-nothing cluster in the paper's own image. Keys hash into a fixed
// number of slots; rendezvous (highest-random-weight) hashing places each
// slot on one server machine — consistent-hash placement, so removing a
// machine moves only that machine's slots. Each server runs one core.Store
// holding exactly its slots' keys; clients route requests over internal/net
// to the slot's leader; leaders ship every slab-page write and every index
// entry to their followers and acknowledge a write only when it is durable
// both locally and on all live followers. When internal/fault kills a whole
// machine, a seeded-RNG failover promotes one of its followers: the replica
// disks are scanned by the ordinary §6.6 recovery path, the rebuilt index is
// cross-checked against the replicated index entries, and clients re-route.
//
// Everything runs on the sim clock through env/sim primitives: no
// goroutines, no wall time, no unseeded randomness — the cluster schedule is
// as bit-reproducible as a single-machine run, and the golden digests in
// internal/harness pin it.
package cluster

import (
	"kvell/internal/kv"
)

// Placement maps the key space onto server machines. Slot ownership is
// rendezvous hashing over the initial server set; follower sets are per
// machine (replication ships whole stores, not slots): the RF-1 ring
// successors of the leader among the initial servers.
type Placement struct {
	Slots   int
	Servers int // machines 0..Servers-1 are servers
	RF      int // replicas per shard, including the leader

	leader []int // slot -> owning machine (fixed at construction)
	route  []int // slot -> home store to contact (== leader until failover)
	epoch  int
}

// hrw is the rendezvous score of (slot, machine): a 64-bit finalizer mix,
// deterministic and seedless so every component of the cluster computes the
// same placement without coordination.
func hrw(slot, m int) uint64 {
	x := uint64(slot+1)*0x9E3779B97F4A7C15 ^ uint64(m+1)*0xC2B2AE3D27D4EB4F
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// NewPlacement computes slot ownership over servers machines.
func NewPlacement(slots, servers, rf int) *Placement {
	if rf < 1 {
		rf = 1
	}
	if rf > servers {
		rf = servers
	}
	p := &Placement{Slots: slots, Servers: servers, RF: rf,
		leader: make([]int, slots), route: make([]int, slots)}
	for s := 0; s < slots; s++ {
		best, bestScore := 0, uint64(0)
		for m := 0; m < servers; m++ {
			if sc := hrw(s, m); sc > bestScore {
				best, bestScore = m, sc
			}
		}
		p.leader[s] = best
		p.route[s] = best
	}
	return p
}

// SlotOf returns the hash slot of key.
func (p *Placement) SlotOf(key []byte) int {
	return int(kv.Hash64(key) % uint64(p.Slots))
}

// Leader returns the machine that owns slot (fixed at construction; after a
// failover the owner's store is hosted elsewhere but keeps its identity).
func (p *Placement) Leader(slot int) int { return p.leader[slot] }

// Route returns the home store to contact for slot: the leader, or — after
// its machine failed — still the leader's store identity, now hosted on the
// promoted follower (the Cluster's node registry resolves identity to host).
func (p *Placement) Route(slot int) int { return p.route[slot] }

// Followers returns machine m's follower set: its RF-1 ring successors among
// the initial servers.
func (p *Placement) Followers(m int) []int {
	out := make([]int, 0, p.RF-1)
	for i := 1; i < p.RF; i++ {
		out = append(out, (m+i)%p.Servers)
	}
	return out
}

// Epoch returns the routing epoch, bumped by every Fail.
func (p *Placement) Epoch() int { return p.epoch }

// SlotsOf returns the slots machine m leads (in slot order).
func (p *Placement) SlotsOf(m int) []int {
	var out []int
	for s, l := range p.leader {
		if l == m {
			out = append(out, s)
		}
	}
	return out
}

// Fail records machine m's death. Routing is unchanged (slot identity stays
// with the dead machine's store, which the failover re-hosts); the epoch bump
// tells clients to re-examine in-flight requests.
func (p *Placement) Fail(m int) { p.epoch++ }
