package cluster

import "testing"

// Placement is a pure function of (slots, servers, rf): stable across calls,
// leaders in range, followers distinct ring successors of the leader.
func TestPlacementBasics(t *testing.T) {
	p := NewPlacement(4096, 8, 3)
	for slot := 0; slot < p.Slots; slot++ {
		l := p.Leader(slot)
		if l < 0 || l >= 8 {
			t.Fatalf("slot %d: leader %d out of range", slot, l)
		}
		if p.Leader(slot) != l {
			t.Fatalf("slot %d: leader changed between calls", slot)
		}
	}
	for m := 0; m < 8; m++ {
		fs := p.Followers(m)
		if len(fs) != 2 {
			t.Fatalf("machine %d: %d followers, want rf-1 = 2", m, len(fs))
		}
		seen := map[int]bool{m: true}
		for _, f := range fs {
			if f < 0 || f >= 8 || seen[f] {
				t.Fatalf("machine %d: bad follower set %v", m, fs)
			}
			seen[f] = true
		}
	}
}

// Rendezvous hashing spreads slots evenly enough that no machine owns more
// than ~15% above fair share at the default 4096-slot resolution (the 128-slot
// default was retired precisely because its ±25% imbalance capped scaling).
func TestPlacementBalance(t *testing.T) {
	p := NewPlacement(4096, 8, 1)
	counts := make([]int, 8)
	for slot := 0; slot < p.Slots; slot++ {
		counts[p.Leader(slot)]++
	}
	fair := p.Slots / 8
	for m, c := range counts {
		if c > fair*115/100 || c < fair*85/100 {
			t.Errorf("machine %d owns %d slots (fair %d): imbalance beyond 15%%: %v",
				m, c, fair, counts)
		}
	}
}

// Fail only bumps the routing epoch: the slot→leader map is immutable (the
// registry re-points the store identity to the promoted node instead).
func TestPlacementFailBumpsEpochOnly(t *testing.T) {
	p := NewPlacement(256, 4, 2)
	before := make([]int, p.Slots)
	for slot := range before {
		before[slot] = p.Leader(slot)
	}
	if p.Epoch() != 0 {
		t.Fatalf("initial epoch = %d", p.Epoch())
	}
	p.Fail(2)
	if p.Epoch() != 1 {
		t.Fatalf("epoch after Fail = %d, want 1", p.Epoch())
	}
	for slot, l := range before {
		if p.Leader(slot) != l {
			t.Fatalf("slot %d leader moved on Fail: %d -> %d", slot, l, p.Leader(slot))
		}
	}
}

// Same key, same slot, regardless of cluster size; slots are within bounds.
func TestSlotOfDeterministic(t *testing.T) {
	a := NewPlacement(4096, 2, 1)
	b := NewPlacement(4096, 8, 1)
	keys := [][]byte{[]byte("user4839205839205839"), []byte("k"), {0}, {0xff, 0x00}}
	for _, k := range keys {
		sa, sb := a.SlotOf(k), b.SlotOf(k)
		if sa != sb {
			t.Errorf("key %q: slot differs with cluster size: %d vs %d", k, sa, sb)
		}
		if sa < 0 || sa >= 4096 {
			t.Errorf("key %q: slot %d out of range", k, sa)
		}
	}
}
