package betree

import (
	"bytes"
	"math/rand"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

func harness(t *testing.T, tweak func(*Config), fn func(c env.Ctx, d *DB)) *DB {
	t.Helper()
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	cfg := DefaultConfig(disk)
	cfg.CacheBytes = 256 << 10
	cfg.RootBufferBytes = 16 << 10
	cfg.GroupBufferBytes = 8 << 10
	if tweak != nil {
		tweak(&cfg)
	}
	d := New(e, cfg)
	d.Start()
	e.Go("client", func(c env.Ctx) {
		fn(c, d)
		d.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPutGetThroughBuffers(t *testing.T) {
	d := harness(t, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 800; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 400))
		}
		// Reads must see values regardless of where they sit (root
		// buffer, group buffer, or leaf).
		for i := int64(0); i < 800; i++ {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 400)) {
				t.Fatalf("Get(%d) ok=%v", i, ok)
			}
		}
	})
	if d.stats.RootFlushes == 0 {
		t.Fatal("root buffer never flushed")
	}
	if d.stats.BufferMovedBytes == 0 {
		t.Fatal("no buffer movement accounted")
	}
}

func TestNewestWinsAcrossLevels(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		k := kv.Key(5)
		// Version 1 driven all the way to the leaf by subsequent traffic.
		d.Put(c, k, kv.Value(5, 1, 300))
		for i := int64(100); i < 600; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 300))
		}
		// Version 2 still in an upper buffer.
		d.Put(c, k, kv.Value(5, 2, 300))
		v, ok := d.Get(c, k)
		if !ok || !bytes.Equal(v, kv.Value(5, 2, 300)) {
			t.Fatal("read did not return newest buffered version")
		}
	})
}

func TestDeleteMessages(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 300; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 300))
		}
		d.Delete(c, kv.Key(7))
		if _, ok := d.Get(c, kv.Key(7)); ok {
			t.Fatal("deleted key visible (buffered delete)")
		}
		// Push the delete down with more traffic.
		for i := int64(300); i < 900; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 300))
		}
		if _, ok := d.Get(c, kv.Key(7)); ok {
			t.Fatal("deleted key resurrected after flush-down")
		}
	})
}

func TestScanMergesBuffersAndLeaves(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 500; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 400))
		}
		// Fresh overwrites still buffered.
		d.Put(c, kv.Key(120), kv.Value(120, 2, 400))
		d.Delete(c, kv.Key(121))
		items := d.Scan(c, kv.Key(118), 6)
		if len(items) != 6 {
			t.Fatalf("scan returned %d", len(items))
		}
		want := []int64{118, 119, 120, 122, 123, 124}
		for j, it := range items {
			if !bytes.Equal(it.Key, kv.Key(want[j])) {
				t.Fatalf("scan[%d] = %q, want key %d", j, it.Key, want[j])
			}
		}
		if !bytes.Equal(items[2].Value, kv.Value(120, 2, 400)) {
			t.Fatal("scan returned stale buffered value")
		}
	})
}

func TestGroupSplitsKeepCorrectness(t *testing.T) {
	d := harness(t, func(cfg *Config) { cfg.SplitSpan = 8 }, func(c env.Ctx, d *DB) {
		r := rand.New(rand.NewSource(4))
		for _, i := range r.Perm(3000) {
			d.Put(c, kv.Key(int64(i)), kv.Value(int64(i), 1, 400))
		}
		for i := int64(0); i < 3000; i += 41 {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 400)) {
				t.Fatalf("Get(%d) ok=%v", i, ok)
			}
		}
	})
	if len(d.groups) < 3 {
		t.Fatalf("groups never split: %d", len(d.groups))
	}
	for i := 2; i < len(d.groups); i++ {
		if bytes.Compare(d.groups[i-1].firstKey, d.groups[i].firstKey) >= 0 {
			t.Fatal("group table out of order")
		}
	}
}

func TestBulkLoadAndEviction(t *testing.T) {
	items := make([]kv.Item, 2500)
	for i := range items {
		items[i] = kv.Item{Key: kv.Key(int64(i)), Value: kv.Value(int64(i), 0, 600)}
	}
	d := harness(t, func(cfg *Config) { cfg.CacheBytes = 64 << 10 }, func(c env.Ctx, d *DB) {
		if err := d.BulkLoad(items); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 2500; i += 59 {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 0, 600)) {
				t.Fatalf("Get(%d) after bulk load ok=%v", i, ok)
			}
		}
		got := d.Scan(c, kv.Key(700), 30)
		if len(got) != 30 || !bytes.Equal(got[0].Key, kv.Key(700)) {
			t.Fatalf("scan after bulk load: %d items", len(got))
		}
	})
	if d.stats.CacheMisses == 0 {
		t.Fatal("no leaf reads despite tiny cache")
	}
}

func TestOracleRandomized(t *testing.T) {
	harness(t, func(cfg *Config) { cfg.CacheBytes = 96 << 10 }, func(c env.Ctx, d *DB) {
		r := rand.New(rand.NewSource(21))
		oracle := map[int64]uint64{}
		var ver uint64
		for op := 0; op < 6000; op++ {
			i := int64(r.Intn(350))
			switch r.Intn(8) {
			case 0:
				d.Delete(c, kv.Key(i))
				delete(oracle, i)
			case 1, 2, 3, 4:
				ver++
				d.Put(c, kv.Key(i), kv.Value(i, ver, 450))
				oracle[i] = ver
			default:
				v, ok := d.Get(c, kv.Key(i))
				wv, wok := oracle[i]
				if ok != wok || (ok && !bytes.Equal(v, kv.Value(i, wv, 450))) {
					t.Fatalf("op %d key %d: ok=%v want %v", op, i, ok, wok)
				}
			}
		}
		for i, wv := range oracle {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, wv, 450)) {
				t.Fatalf("final key %d ok=%v", i, ok)
			}
		}
	})
}

func TestSpinLockContentionAccounted(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	cfg := DefaultConfig(disk)
	cfg.RootBufferBytes = 8 << 10
	cfg.GroupBufferBytes = 4 << 10
	d := New(e, cfg)
	d.Start()
	done := 0
	for w := 0; w < 8; w++ {
		w := w
		e.Go("writer", func(c env.Ctx) {
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				k := int64(r.Intn(3000))
				d.Put(c, kv.Key(k), kv.Value(k, 1, 500))
			}
			done++
			if done == 8 {
				d.Stop(c)
			}
		})
	}
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The spin lock is sim-internal; verify via its counters.
	sm := d.treeMu.(interface{ Unlock(env.Ctx) })
	_ = sm
	if d.stats.GroupFlushes == 0 {
		t.Fatal("group buffers never flushed under load")
	}
}
