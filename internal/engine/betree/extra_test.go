package betree

import (
	"bytes"
	"testing"

	"kvell/internal/env"
	"kvell/internal/kv"
)

func TestScanAcrossGroupBoundaries(t *testing.T) {
	harness(t, func(cfg *Config) { cfg.SplitSpan = 6 }, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 1500; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 400))
		}
		if len(d.groups) < 3 {
			t.Skipf("groups did not split (%d); adjust workload", len(d.groups))
		}
		// A scan spanning several groups must stay ordered and complete.
		items := d.Scan(c, kv.Key(100), 800)
		if len(items) != 800 {
			t.Fatalf("scan returned %d", len(items))
		}
		for j, it := range items {
			if !bytes.Equal(it.Key, kv.Key(100+int64(j))) {
				t.Fatalf("scan[%d] = %q", j, it.Key)
			}
		}
	})
}

func TestScanTrailingBufferedKeys(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 50; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 300))
		}
		// Keys beyond every leaf entry, still in the root buffer.
		d.Put(c, kv.Key(900), kv.Value(900, 1, 300))
		d.Put(c, kv.Key(901), kv.Value(901, 1, 300))
		items := d.Scan(c, kv.Key(45), 10)
		want := []int64{45, 46, 47, 48, 49, 900, 901}
		if len(items) != len(want) {
			t.Fatalf("scan returned %d items, want %d", len(items), len(want))
		}
		for j, it := range items {
			if !bytes.Equal(it.Key, kv.Key(want[j])) {
				t.Fatalf("scan[%d] = %q want key %d", j, it.Key, want[j])
			}
		}
	})
}

func TestSubmitInterface(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		done := 0
		d.Submit(c, &kv.Request{Op: kv.OpUpdate, Key: kv.Key(1), Value: kv.Value(1, 1, 200), Done: func(kv.Result) { done++ }})
		d.Submit(c, &kv.Request{Op: kv.OpGet, Key: kv.Key(1), Done: func(r kv.Result) {
			done++
			if !r.Found {
				t.Error("buffered write invisible via Submit")
			}
		}})
		d.Submit(c, &kv.Request{Op: kv.OpDelete, Key: kv.Key(1), Done: func(kv.Result) { done++ }})
		d.Submit(c, &kv.Request{Op: kv.OpScan, Key: kv.Key(0), ScanCount: 5, Done: func(r kv.Result) { done++ }})
		if done != 4 {
			t.Fatalf("callbacks fired %d/4", done)
		}
	})
}
