package betree

import (
	"bytes"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/slab"
	"kvell/internal/trace"
	"kvell/internal/walog"
)

// Submit implements kv.Engine (library model).
func (d *DB) Submit(c env.Ctx, r *kv.Request) {
	switch r.Op {
	case kv.OpGet:
		v, ok := d.getInto(c, r.Key, &r.ValueBuf)
		r.Done(kv.Result{Found: ok, Value: v})
	case kv.OpUpdate:
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpDelete:
		d.Delete(c, r.Key)
		r.Done(kv.Result{Found: true})
	case kv.OpRMW:
		_, _ = d.getInto(c, r.Key, &r.ValueBuf)
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpScan:
		items := d.scanInto(c, r.Key, r.ScanCount, r.ScanBuf[:0])
		r.ScanBuf = items
		r.Done(kv.Result{Found: len(items) > 0, ScanN: len(items)})
	}
}

// logRecord routes a mutation through the commit log: the timing-only
// buffered model by default, a real flushed WAL record in durable mode.
func (d *DB) logRecord(c env.Ctx, op byte, key, value []byte) {
	t0 := c.Now()
	if d.cfg.Durable {
		d.logAppendDurable(c, op, key, value)
	} else {
		d.logAppend(c, entryBytes(len(key), len(value)))
	}
	trace.FromCtx(c).Span("wal", t0, c.Now())
}

// logAppendDurable writes one checksummed walog chunk carrying the record
// and waits for its completion before returning. The logWriting flag keeps
// at most one log write in flight and serializes logPage advances (the
// non-durable path mutates logPage outside logMu, which is fine for a
// timing-only log but would break the log's valid-prefix property here).
func (d *DB) logAppendDurable(c env.Ctx, op byte, key, value []byte) {
	c.CPU(costs.WALBytes(entryBytes(len(key), len(value))))
	d.logMu.Lock(c)
	for d.logWriting {
		d.logMu.Unlock(c)
		c.CPU(costs.LogSlotSpin)
		d.logMu.Lock(c)
	}
	d.logWriting = true
	// The leader owns logPayload/logScratch while logWriting is set.
	d.logPayload = walog.AppendRecord(d.logPayload[:0], op, key, value)
	d.logScratch = walog.EncodeChunk(d.logScratch, d.logPayload, 1)
	page := d.logPage
	d.logPage += walog.ChunkPages(len(d.logPayload))
	if d.logPage > logRegionPages {
		panic("betree: durable log region overflow")
	}
	d.logMu.Unlock(c)
	d.writeSync(c, page, d.logScratch)
	d.logMu.Lock(c)
	d.logWriting = false
	d.logMu.Unlock(c)
}

// logAppend is a buffered group commit (1MB buffer, like the configured
// baselines; TokuMX's bottleneck is elsewhere).
func (d *DB) logAppend(c env.Ctx, recBytes int) {
	c.CPU(costs.WALBytes(recBytes))
	d.logMu.Lock(c)
	d.logBuf += int64(recBytes)
	var pages int64
	if d.logBuf >= d.cfg.WALBufferBytes {
		pages = (d.logBuf + device.PageSize - 1) / device.PageSize
		d.logBuf = 0
	}
	d.logMu.Unlock(c)
	if pages > 0 {
		buf := make([]byte, pages*device.PageSize)
		page := d.logPage % (1 << 20)
		d.logPage += pages
		d.writeSync(c, page, buf)
	}
}

// Put buffers the write at the root; full buffers cascade down (§3.1:
// ">20% of its time moving data from buffers to their correct location").
func (d *DB) Put(c env.Ctx, key, value []byte) {
	d.write(c, key, value, false)
}

// Delete buffers a delete message.
func (d *DB) Delete(c env.Ctx, key []byte) {
	d.write(c, key, nil, true)
}

func (d *DB) write(c env.Ctx, key, value []byte, del bool) {
	op := byte(walog.OpPut)
	if del {
		op = walog.OpDelete
	}
	d.logRecord(c, op, key, value)
	// Lock and atomic traffic on shared pages (§3.1: up to 30% of TokuMX
	// time in locks or atomic operations).
	c.CPU(costs.LockUncontended * 12)
	d.treeMu.Lock(c)
	d.stats.Puts++
	d.seq++
	m := msg{key: append([]byte(nil), key...), seq: d.seq, del: del}
	if !del {
		m.value = append([]byte(nil), value...)
	}
	c.CPU(costs.MemBytes(msgBytes(&m)) + costs.BTreeNode*2)
	d.rootBytes += upsertMsg(&d.rootMsgs, m)
	if d.rootBytes >= d.cfg.RootBufferBytes {
		d.flushRoot(c)
	}
	d.treeMu.Unlock(c)
	d.maybeStall(c)
}

// maybeStall blocks the writer while dirty data exceeds the stall
// threshold (eviction/checkpoint pressure).
func (d *DB) maybeStall(c env.Ctx) {
	limit := int64(float64(d.cfg.CacheBytes) * d.cfg.DirtyStallFrac)
	d.stallMu.Lock(c)
	if d.dirtyB > limit/2 {
		d.stallCond.Broadcast(c) // wake the eviction thread early
	}
	for d.dirtyB > limit && !d.closing {
		d.stats.WriteStalls++
		t0 := c.Now()
		d.stallCond.Wait(c)
		d.stats.StallTime += c.Now() - t0
		trace.FromCtx(c).Add(trace.CompStall, t0, c.Now())
	}
	d.stallMu.Unlock(c)
}

// evictLoop continuously writes dirty leaves once the dirty fraction
// passes half the stall threshold, keeping writers unblocked when it can
// keep up (and producing the §3.2 stalls when it cannot).
func (d *DB) evictLoop(c env.Ctx) {
	trigger := int64(float64(d.cfg.CacheBytes) * d.cfg.DirtyStallFrac / 2)
	var scratch []byte // this thread's reconcile buffer (dead once written)
	for {
		d.stallMu.Lock(c)
		for d.dirtyB <= trigger && !d.closing {
			d.stallCond.Wait(c)
		}
		closing := d.closing
		d.stallMu.Unlock(c)
		if closing {
			return
		}
		d.treeMu.Lock(c)
		var victim *leaf
		for _, l := range d.lru {
			if l.dirty && l.ents != nil {
				victim = l
				break
			}
		}
		if victim == nil {
			d.treeMu.Unlock(c)
			continue
		}
		bc := d.cfg.Tracer.BeginBg("evict", c.Now())
		c.SetTrace(bc)
		c.CPU(costs.PageReconcile)
		scratch = serializeLeafInto(victim, scratch)
		buf := scratch
		page := victim.page
		victim.dirty = false
		d.dirtyB -= int64(victim.bytes)
		d.treeMu.Unlock(c)
		d.writeSync(c, page, buf)
		c.SetTrace(nil)
		d.cfg.Tracer.FinishBg(bc, c.Now())
		d.stats.EvictedLeaves++
		d.stallCond.Broadcast(c)
	}
}

// flushRoot partitions the root buffer into the group buffers (treeMu
// held). Groups that overflow cascade into their leaves. The cascade runs
// on the writing client's thread, so the maintenance span is overlaid via
// AddBg without switching the proc's trace context — the victim request
// keeps accumulating its own lock/CPU/device components.
func (d *DB) flushRoot(c env.Ctx) {
	t0 := c.Now()
	defer func() { d.cfg.Tracer.AddBg("root-flush", t0, c.Now()) }()
	d.stats.RootFlushes++
	moved := 0
	var overflow []*group
	for _, m := range d.rootMsgs {
		g := d.groups[d.findGroup(m.key)]
		g.bytes += upsertMsg(&g.msgs, m)
		moved += msgBytes(&m)
	}
	d.stats.BufferMovedBytes += int64(moved)
	c.CPU(costs.BufferMoveBytes(moved))
	d.rootMsgs = d.rootMsgs[:0]
	d.rootBytes = 0
	for _, g := range d.groups {
		if g.bytes >= d.cfg.GroupBufferBytes {
			overflow = append(overflow, g)
		}
	}
	for _, g := range overflow {
		d.flushGroup(c, g)
	}
}

// flushGroup applies a group's messages to the leaves, holding the tree
// spin lock across any leaf reads (the paper's lock contention source).
func (d *DB) flushGroup(c env.Ctx, g *group) {
	d.stats.GroupFlushes++
	moved := 0
	var minLeaf, maxLeaf int = 1 << 30, -1
	for _, m := range g.msgs {
		moved += msgBytes(&m)
		li := d.findLeaf(c, m.key)
		if li < minLeaf {
			minLeaf = li
		}
		if li > maxLeaf {
			maxLeaf = li
		}
		l := d.leaves[li]
		d.loadLeafLocked(c, l)
		d.applyToLeaf(c, l, &m)
	}
	d.stats.BufferMovedBytes += int64(moved)
	c.CPU(costs.BufferMoveBytes(moved))
	g.msgs = g.msgs[:0]
	g.bytes = 0
	// Split the group when its span has grown too wide.
	if maxLeaf >= minLeaf && maxLeaf-minLeaf+1 > d.cfg.SplitSpan {
		d.splitGroup(g)
	}
}

func (d *DB) splitGroup(g *group) {
	gi := -1
	for i, gg := range d.groups {
		if gg == g {
			gi = i
			break
		}
	}
	if gi < 0 {
		return
	}
	// Find the middle leaf within g's range.
	lo := 0
	if g.firstKey != nil {
		lo = sort.Search(len(d.leaves), func(i int) bool {
			return bytes.Compare(d.leaves[i].firstKey, g.firstKey) >= 0
		})
	}
	hi := len(d.leaves)
	if gi+1 < len(d.groups) {
		hi = sort.Search(len(d.leaves), func(i int) bool {
			return bytes.Compare(d.leaves[i].firstKey, d.groups[gi+1].firstKey) >= 0
		})
	}
	mid := (lo + hi) / 2
	if mid <= lo || mid >= hi || d.leaves[mid].firstKey == nil {
		return
	}
	ng := &group{firstKey: append([]byte(nil), d.leaves[mid].firstKey...)}
	// Move messages >= boundary (none right after a flush, but be safe).
	split := sort.Search(len(g.msgs), func(i int) bool {
		return bytes.Compare(g.msgs[i].key, ng.firstKey) >= 0
	})
	ng.msgs = append(ng.msgs, g.msgs[split:]...)
	for i := range ng.msgs {
		ng.bytes += msgBytes(&ng.msgs[i])
	}
	g.msgs = g.msgs[:split]
	g.bytes -= ng.bytes
	d.groups = append(d.groups, nil)
	copy(d.groups[gi+2:], d.groups[gi+1:])
	d.groups[gi+1] = ng
}

// applyToLeaf installs one message into a resident leaf (treeMu held).
func (d *DB) applyToLeaf(c env.Ctx, l *leaf, m *msg) {
	i := sort.Search(len(l.ents), func(i int) bool {
		return bytes.Compare(l.ents[i].key, m.key) >= 0
	})
	exists := i < len(l.ents) && bytes.Equal(l.ents[i].key, m.key)
	d.markDirty(l)
	switch {
	case m.del && exists:
		d.adjustLeafBytes(l, -entryBytes(len(l.ents[i].key), len(l.ents[i].value)))
		l.ents = append(l.ents[:i], l.ents[i+1:]...)
	case m.del:
		// delete of absent key: nothing
	case exists:
		d.adjustLeafBytes(l, len(m.value)-len(l.ents[i].value))
		l.ents[i].value = m.value
	default:
		l.ents = append(l.ents, entry{})
		copy(l.ents[i+1:], l.ents[i:])
		l.ents[i] = entry{key: m.key, value: m.value}
		d.adjustLeafBytes(l, entryBytes(len(m.key), len(m.value)))
	}
	c.CPU(costs.MemBytes(entryBytes(len(m.key), len(m.value))))
	if l.bytes+4 > d.cfg.LeafBytes && len(l.ents) > 1 {
		d.splitLeaf(l)
	}
	d.resizeLeafPages(l)
}

func (d *DB) splitLeaf(l *leaf) {
	mid := len(l.ents) / 2
	right := &leaf{
		firstKey: append([]byte(nil), l.ents[mid].key...),
		ents:     append([]entry(nil), l.ents[mid:]...),
		dirty:    true,
		lruIdx:   -1,
	}
	for _, e := range right.ents {
		right.bytes += entryBytes(len(e.key), len(e.value))
	}
	l.ents = l.ents[:mid:mid]
	l.bytes -= right.bytes
	right.pages = (int64(right.bytes) + 4 + device.PageSize - 1) / device.PageSize
	right.page = d.alloc.Alloc(right.pages)
	i := sort.Search(len(d.leaves), func(i int) bool {
		return bytes.Compare(d.leaves[i].firstKey, right.firstKey) > 0
	})
	d.leaves = append(d.leaves, nil)
	copy(d.leaves[i+1:], d.leaves[i:])
	d.leaves[i] = right
	d.touch(right)
}

func (d *DB) resizeLeafPages(l *leaf) {
	need := (int64(l.bytes) + 4 + device.PageSize - 1) / device.PageSize
	if need <= l.pages {
		return
	}
	d.alloc.Free(l.page, l.pages)
	l.pages = need
	l.page = d.alloc.Alloc(need)
}

// Get consults the buffers along the "path" (root, then group), then the
// leaf; an ancestor message is always newer than anything below it.
func (d *DB) Get(c env.Ctx, key []byte) ([]byte, bool) {
	return d.getInto(c, key, nil)
}

// getInto is Get with optional caller-owned value scratch: when vdst is
// non-nil the returned value is backed by *vdst (grown as needed) and only
// valid until the caller reuses the scratch.
func (d *DB) getInto(c env.Ctx, key []byte, vdst *[]byte) ([]byte, bool) {
	c.CPU(costs.LockUncontended)
	d.treeMu.Lock(c)
	d.stats.Gets++
	c.CPU(costs.BTreeNode * 3)
	if m, ok := findMsg(d.rootMsgs, key); ok {
		d.treeMu.Unlock(c)
		return msgValueInto(m, vdst)
	}
	g := d.groups[d.findGroup(key)]
	if m, ok := findMsg(g.msgs, key); ok {
		d.treeMu.Unlock(c)
		return msgValueInto(m, vdst)
	}
	var l *leaf
	for {
		l = d.leaves[d.findLeaf(c, key)]
		if l.ents != nil {
			d.stats.CacheHits++
			d.touch(l)
			break
		}
		// Release the lock for read I/O on the Get path (TokuMX reads do
		// not hold the flush locks), then re-descend.
		d.stats.CacheMisses++
		page, pages := l.page, l.pages
		buf := d.popLeafBuf(int(pages) * device.PageSize)
		d.treeMu.Unlock(c)
		d.readSync(c, page, buf) // the read overwrites the whole buffer
		ents, total := deserializeLeaf(buf)
		c.CPU(costs.MemBytes(total))
		d.treeMu.Lock(c)
		d.leafBufs = append(d.leafBufs, buf) // deserializeLeaf copied out
		if l.ents == nil && l.page == page {
			l.ents = ents
			l.bytes = total
			d.cachedB += int64(total)
			d.touch(l)
			d.evictCleanOverBudget(l)
		}
	}
	i := sort.Search(len(l.ents), func(i int) bool {
		return bytes.Compare(l.ents[i].key, key) >= 0
	})
	var val []byte
	found := false
	if i < len(l.ents) && bytes.Equal(l.ents[i].key, key) {
		val = copyInto(l.ents[i].value, vdst)
		found = true
		c.CPU(costs.MemBytes(len(val)))
	}
	d.treeMu.Unlock(c)
	return val, found
}

func msgValue(m msg) ([]byte, bool) {
	return msgValueInto(m, nil)
}

func msgValueInto(m msg, vdst *[]byte) ([]byte, bool) {
	if m.del {
		return nil, false
	}
	return copyInto(m.value, vdst), true
}

// copyInto copies src into the caller's scratch when it has capacity,
// growing the scratch otherwise.
func copyInto(src []byte, vdst *[]byte) []byte {
	n := len(src)
	var val []byte
	if vdst != nil && *vdst != nil && cap(*vdst) >= n {
		val = (*vdst)[:n]
	} else {
		val = make([]byte, n)
		if vdst != nil {
			*vdst = val
		}
	}
	copy(val, src)
	return val
}

// Scan merges buffered messages with leaf entries for the range.
func (d *DB) Scan(c env.Ctx, start []byte, count int) []kv.Item {
	return d.scanInto(c, start, count, nil)
}

// scanInto is Scan with a caller-owned destination: dst's slots (and their
// Key/Value capacity) are reused via kv.AppendItem, so hot-path callers
// that only count the results recycle one buffer across scans.
func (d *DB) scanInto(c env.Ctx, start []byte, count int, dst []kv.Item) []kv.Item {
	c.CPU(costs.LockUncontended)
	d.treeMu.Lock(c)
	d.stats.Scans++

	// Collect candidate messages >= start (root + all groups from the
	// containing one on).
	pending := map[string]msg{}
	addMsgs := func(msgs []msg) {
		i := sort.Search(len(msgs), func(i int) bool {
			return bytes.Compare(msgs[i].key, start) >= 0
		})
		for ; i < len(msgs); i++ {
			m := msgs[i]
			if prev, ok := pending[string(m.key)]; !ok || m.seq > prev.seq {
				pending[string(m.key)] = m
			}
			c.CPU(costs.IterStep)
		}
	}
	addMsgs(d.rootMsgs)
	for gi := d.findGroup(start); gi < len(d.groups); gi++ {
		addMsgs(d.groups[gi].msgs)
	}

	out := dst
	emit := func(key, value []byte) {
		out = kv.AppendItem(out, key, value)
	}
	// Sorted pending keys for merge.
	pkeys := make([]string, 0, len(pending))
	for k := range pending {
		pkeys = append(pkeys, k)
	}
	sort.Strings(pkeys)
	pi := 0

	li := d.findLeaf(c, start)
	var lastKey []byte
	for li < len(d.leaves) && len(out) < count {
		l := d.leaves[li]
		d.loadLeafLocked(c, l)
		for _, e := range l.ents {
			if bytes.Compare(e.key, start) < 0 {
				continue
			}
			if lastKey != nil && bytes.Compare(e.key, lastKey) <= 0 {
				continue
			}
			// Emit pending message keys that sort before this entry.
			for pi < len(pkeys) && pkeys[pi] < string(e.key) && len(out) < count {
				m := pending[pkeys[pi]]
				pi++
				if !m.del {
					emit(m.key, m.value)
				}
			}
			if len(out) >= count {
				break
			}
			c.CPU(costs.IterStep)
			if pi < len(pkeys) && pkeys[pi] == string(e.key) {
				m := pending[pkeys[pi]]
				pi++
				if !m.del {
					emit(m.key, m.value)
				}
			} else {
				emit(e.key, e.value)
			}
			lastKey = append(lastKey[:0], e.key...)
			if len(out) >= count {
				break
			}
		}
		li++
	}
	// Trailing pending keys past the last leaf entry.
	for pi < len(pkeys) && len(out) < count {
		m := pending[pkeys[pi]]
		pi++
		if lastKey != nil && string(m.key) <= string(lastKey) {
			continue
		}
		if !m.del {
			emit(m.key, m.value)
		}
	}
	d.treeMu.Unlock(c)
	return out
}

// BulkLoad builds full leaves directly and sizes the group table. In
// durable mode the items are also appended to the log (direct, untimed
// store writes — bulk load precedes the measured run), so post-crash
// replay reconstructs the loaded data without trusting any leaf page.
func (d *DB) BulkLoad(items []kv.Item) error {
	if d.cfg.Durable {
		d.logItems(items)
	}
	d.buildLeaves(items)
	return nil
}

// logItems appends items as checksummed log chunks via direct store writes.
func (d *DB) logItems(items []kv.Item) {
	st := storeOf(d.disk)
	var payload, enc []byte
	count := 0
	flush := func() {
		if count == 0 {
			return
		}
		enc = walog.EncodeChunk(enc, payload, count)
		if err := st.WritePages(d.logPage, enc); err != nil {
			panic(err)
		}
		d.logPage += walog.ChunkPages(len(payload))
		if d.logPage > logRegionPages {
			panic("betree: durable log region overflow during bulk load")
		}
		payload = payload[:0]
		count = 0
	}
	for _, it := range items {
		payload = walog.AppendRecord(payload, walog.OpPut, it.Key, it.Value)
		count++
		if len(payload) >= 256<<10 {
			flush()
		}
	}
	flush()
}

// ReplayLog rebuilds a freshly-opened durable DB from the valid prefix of
// its on-disk log: last-writer-wins over the records, then a bulk build of
// the surviving items. Log reads go through the engine's synchronous read
// path so recovery cost lands on virtual time. Returns the number of live
// records recovered.
func (d *DB) ReplayLog(c env.Ctx) int {
	if !d.cfg.Durable {
		panic("betree: ReplayLog on a non-durable DB")
	}
	m := make(map[string][]byte)
	used := walog.Scan(timedReader{d, c}, 0, logRegionPages, func(op byte, k, v []byte) {
		if op == walog.OpDelete {
			delete(m, string(k))
			return
		}
		m[string(k)] = append([]byte(nil), v...)
	})
	d.logPage = used
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	items := make([]kv.Item, 0, len(keys))
	for _, k := range keys {
		items = append(items, kv.Item{Key: []byte(k), Value: m[k]})
	}
	d.buildLeaves(items)
	return len(items)
}

type timedReader struct {
	d *DB
	c env.Ctx
}

func (t timedReader) ReadPages(page int64, buf []byte) error {
	t.d.readSync(t.c, page, buf)
	return nil
}

// buildLeaves constructs the on-disk leaf set and group table for items
// (sorted by key) via direct store writes, replacing any existing tree.
func (d *DB) buildLeaves(items []kv.Item) {
	budget := d.cfg.LeafBytes * 9 / 10
	var leaves []*leaf
	cur := &leaf{ents: []entry{}, lruIdx: -1}
	flush := func() {
		if len(cur.ents) == 0 {
			return
		}
		cur.pages = (int64(cur.bytes) + 4 + device.PageSize - 1) / device.PageSize
		cur.page = d.alloc.Alloc(cur.pages)
		if err := storeOf(d.disk).WritePages(cur.page, serializeLeaf(cur)); err != nil {
			panic(err)
		}
		cur.ents = nil
		leaves = append(leaves, cur)
		cur = &leaf{ents: []entry{}, lruIdx: -1}
	}
	for _, it := range items {
		n := entryBytes(len(it.Key), len(it.Value))
		if cur.bytes+n+4 > budget && len(cur.ents) > 0 {
			flush()
		}
		if len(cur.ents) == 0 {
			cur.firstKey = append([]byte(nil), it.Key...)
		}
		cur.ents = append(cur.ents, entry{key: it.Key, value: it.Value})
		cur.bytes += n
	}
	flush()
	if len(leaves) == 0 {
		return
	}
	leaves[0].firstKey = nil
	d.leaves = leaves
	d.lru = nil
	d.cachedB, d.dirtyB = 0, 0
	// Groups: one per SplitSpan/2 leaves.
	d.groups = d.groups[:0]
	step := d.cfg.SplitSpan / 2
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(leaves); i += step {
		g := &group{}
		if i > 0 {
			g.firstKey = append([]byte(nil), leaves[i].firstKey...)
		}
		d.groups = append(d.groups, g)
	}
}

// checkpointLoop periodically writes dirty leaves and wakes stalled
// writers.
func (d *DB) checkpointLoop(c env.Ctx) {
	// All job images live until the write loop below finishes, so they come
	// from a per-checkpoint arena rather than a single scratch buffer.
	arena := slab.NewArena(1 << 20)
	type job struct {
		l    *leaf
		page int64
		buf  []byte
	}
	var jobs []job
	for {
		c.Sleep(d.cfg.CheckpointEvery)
		bc := d.cfg.Tracer.BeginBg("checkpoint", c.Now())
		c.SetTrace(bc)
		d.treeMu.Lock(c)
		if d.closing {
			d.treeMu.Unlock(c)
			c.SetTrace(nil)
			d.cfg.Tracer.FinishBg(bc, c.Now())
			return
		}
		// Collect dirty leaves, then write them without the tree lock.
		jobs = jobs[:0]
		for _, l := range d.lru {
			if l.dirty && l.ents != nil {
				c.CPU(costs.PageReconcile)
				img := serializeLeafInto(l, arena.Alloc(leafImagePages(l)*device.PageSize))
				jobs = append(jobs, job{l: l, page: l.page, buf: img})
				l.dirty = false
				d.dirtyB -= int64(l.bytes)
			}
		}
		d.treeMu.Unlock(c)
		for _, j := range jobs {
			d.writeSync(c, j.page, j.buf)
			d.stats.EvictedLeaves++
		}
		for i := range jobs {
			jobs[i] = job{} // drop leaf/image references
		}
		arena.Reset() // every image has been written out
		c.SetTrace(nil)
		d.cfg.Tracer.FinishBg(bc, c.Now())
		d.stallCond.Broadcast(c)
	}
}
