// Package betree implements a Bε-tree engine in the mold of TokuMX (§3.1
// of the KVell paper): writes are buffered as messages at the top of the
// tree and trickle down through internal-node buffers to 4KB leaves. The
// paper profiles TokuMX spending >20% of its time moving data between
// buffers and up to 30% in locks protecting shared pages; both behaviours
// are first-class here — buffer moves charge BufferMovePerByte of CPU, and
// the tree lock is a spin lock held across flush-down work (including leaf
// I/O), so waiters burn CPU exactly as the paper describes.
//
// The tree is materialized at depth three (root buffer → group buffers →
// leaves), matching the shallow fan-out of real Bε trees at the harness's
// dataset scales; groups split as the leaf count grows. The simplification
// is recorded in DESIGN.md.
package betree

import (
	"bytes"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
)

// Config describes a betree engine.
type Config struct {
	Disks []device.Disk
	// CacheBytes is the leaf-cache budget.
	CacheBytes int64
	// RootBufferBytes and GroupBufferBytes bound the message buffers.
	RootBufferBytes  int
	GroupBufferBytes int
	// LeafBytes is the on-disk leaf size.
	LeafBytes int
	// WALBufferBytes is the (buffered) commit-log group size.
	WALBufferBytes int64
	// SplitSpan splits a group when its range covers more leaves.
	SplitSpan int
	// CheckpointEvery flushes dirty leaves periodically.
	CheckpointEvery env.Time
	// DirtyStallFrac stalls writers when dirty bytes exceed this fraction
	// of the cache.
	DirtyStallFrac float64
}

// DefaultConfig returns a TokuMX-like configuration for scaled datasets.
func DefaultConfig(disks ...device.Disk) Config {
	return Config{
		Disks:            disks,
		CacheBytes:       64 << 20,
		RootBufferBytes:  256 << 10,
		GroupBufferBytes: 64 << 10,
		LeafBytes:        device.PageSize,
		WALBufferBytes:   1 << 20,
		SplitSpan:        256,
		CheckpointEvery:  2 * env.Second,
		DirtyStallFrac:   0.2,
	}
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Gets, Puts, Scans int64
	BufferMovedBytes  int64
	RootFlushes       int64
	GroupFlushes      int64
	CacheHits         int64
	CacheMisses       int64
	EvictedLeaves     int64
	WriteStalls       int64
	StallTime         env.Time
}

// msg is one buffered write.
type msg struct {
	key   []byte
	value []byte
	seq   uint64
	del   bool
}

func msgBytes(m *msg) int { return 16 + len(m.key) + len(m.value) }

// entry is a leaf record.
type entry struct {
	key   []byte
	value []byte
}

func entryBytes(klen, vlen int) int { return 6 + klen + vlen }

type leaf struct {
	firstKey []byte
	page     int64
	pages    int64
	ents     []entry
	bytes    int
	dirty    bool
	lruIdx   int
}

// group is a second-level buffer covering the key range
// [firstKey, next group's firstKey).
type group struct {
	firstKey []byte // nil on the first group
	msgs     []msg  // sorted by key, at most one per key (newest wins)
	bytes    int
}

// DB is the betree engine.
type DB struct {
	env  env.Env
	cfg  Config
	name string

	// The tree lock: held for all tree work including flush-down leaf
	// I/O, so buffer cascades pause every other operation (the TokuMX
	// shared-page contention profile; lock overhead itself is charged as
	// CPU on each acquisition).
	treeMu env.Mutex
	// stall coordination uses a plain mutex+cond (stalled writers should
	// sleep, not burn).
	stallMu   env.Mutex
	stallCond env.Cond

	rootMsgs  []msg
	rootBytes int
	groups    []*group
	leaves    []*leaf
	lru       []*leaf
	cachedB   int64
	dirtyB    int64
	seq       uint64
	closing   bool

	logMu   env.Mutex
	logBuf  int64
	logPage int64

	alloc *device.Allocator
	disk  device.Disk

	stats Stats
}

// New returns a betree engine.
func New(e env.Env, cfg Config) *DB {
	if len(cfg.Disks) == 0 {
		panic("betree: no disks")
	}
	d := &DB{env: e, cfg: cfg, name: "TokuMX-like", disk: cfg.Disks[0]}
	d.treeMu = e.NewMutex()
	d.stallMu = e.NewMutex()
	d.stallCond = e.NewCond(d.stallMu)
	d.logMu = e.NewMutex()
	d.alloc = device.NewAllocator(1 << 20)
	l := &leaf{ents: []entry{}, lruIdx: -1, pages: 1}
	l.page = d.alloc.Alloc(1)
	d.leaves = []*leaf{l}
	d.touch(l)
	d.groups = []*group{{}}
	return d
}

// Name implements kv.Engine.
func (d *DB) Name() string { return d.name }

// Stats returns a snapshot.
func (d *DB) Stats() Stats { return d.stats }

// Start launches the eviction and checkpoint threads.
func (d *DB) Start() {
	d.env.Go("betree-evict", d.evictLoop)
	d.env.Go("betree-checkpoint", d.checkpointLoop)
}

// Stop signals background threads.
func (d *DB) Stop(c env.Ctx) {
	d.treeMu.Lock(c)
	d.closing = true
	d.treeMu.Unlock(c)
	d.stallCond.Broadcast(c)
}

// ---- LRU / residency (treeMu held) ----

func (d *DB) touch(l *leaf) {
	if l.lruIdx >= 0 {
		copy(d.lru[l.lruIdx:], d.lru[l.lruIdx+1:])
		d.lru = d.lru[:len(d.lru)-1]
		for i := l.lruIdx; i < len(d.lru); i++ {
			d.lru[i].lruIdx = i
		}
	}
	l.lruIdx = len(d.lru)
	d.lru = append(d.lru, l)
}

func (d *DB) dropFromLRU(l *leaf) {
	if l.lruIdx < 0 {
		return
	}
	copy(d.lru[l.lruIdx:], d.lru[l.lruIdx+1:])
	d.lru = d.lru[:len(d.lru)-1]
	for i := l.lruIdx; i < len(d.lru); i++ {
		d.lru[i].lruIdx = i
	}
	l.lruIdx = -1
}

func (d *DB) adjustLeafBytes(l *leaf, delta int) {
	l.bytes += delta
	if l.ents != nil {
		d.cachedB += int64(delta)
	}
	if l.dirty {
		d.dirtyB += int64(delta)
	}
}

func (d *DB) markDirty(l *leaf) {
	if !l.dirty {
		l.dirty = true
		d.dirtyB += int64(l.bytes)
	}
}

func (d *DB) findLeaf(c env.Ctx, key []byte) int {
	depth := 1
	for n := len(d.leaves); n > 1; n /= 16 {
		depth++
	}
	c.CPU(env.Time(depth) * costs.BTreeNode)
	i := sort.Search(len(d.leaves), func(i int) bool {
		return bytes.Compare(d.leaves[i].firstKey, key) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

func (d *DB) findGroup(key []byte) int {
	i := sort.Search(len(d.groups), func(i int) bool {
		return bytes.Compare(d.groups[i].firstKey, key) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// loadLeafLocked makes l resident while HOLDING the tree lock across the
// read I/O (TokuMX-style page latching: concurrent operations burn CPU on
// the spin lock meanwhile).
func (d *DB) loadLeafLocked(c env.Ctx, l *leaf) {
	if l.ents != nil {
		d.stats.CacheHits++
		d.touch(l)
		return
	}
	d.stats.CacheMisses++
	buf := make([]byte, l.pages*device.PageSize)
	d.readSync(c, l.page, buf)
	ents, total := deserializeLeaf(buf)
	c.CPU(costs.MemBytes(total))
	l.ents = ents
	l.bytes = total
	d.cachedB += int64(total)
	d.touch(l)
	d.evictCleanOverBudget(l)
}

func (d *DB) evictCleanOverBudget(keep *leaf) {
	for d.cachedB > d.cfg.CacheBytes {
		evicted := false
		for _, v := range d.lru {
			if v == keep || v.dirty || v.ents == nil {
				continue
			}
			d.cachedB -= int64(v.bytes)
			v.ents = nil
			d.dropFromLRU(v)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// ---- I/O ----

func (d *DB) readSync(c env.Ctx, page int64, buf []byte) {
	// Buffered pread path (§6.3.1): syscall plus per-byte copy/checksum.
	c.CPU(costs.Syscall + costs.PreadBytes(len(buf)))
	w := newWaiter(d.env)
	d.disk.Submit(&device.Request{Op: device.Read, Page: page, Buf: buf, Done: w.done})
	w.wait(c)
}

func (d *DB) writeSync(c env.Ctx, page int64, buf []byte) {
	c.CPU(costs.Syscall + costs.PwriteBytes(len(buf)))
	w := newWaiter(d.env)
	d.disk.Submit(&device.Request{Op: device.Write, Page: page, Buf: buf, Done: w.done})
	w.wait(c)
}

type waiter struct {
	mu   env.Mutex
	cond env.Cond
	ok   bool
}

func newWaiter(e env.Env) *waiter {
	w := &waiter{mu: e.NewMutex()}
	w.cond = e.NewCond(w.mu)
	return w
}

func (w *waiter) done() {
	w.mu.Lock(nil)
	w.ok = true
	w.mu.Unlock(nil)
	w.cond.Broadcast(nil)
}

func (w *waiter) wait(c env.Ctx) {
	w.mu.Lock(c)
	for !w.ok {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
}

// ---- leaf codec (same layout as wtree's) ----

func serializeLeaf(l *leaf) []byte {
	pages := (l.bytes + 4 + device.PageSize - 1) / device.PageSize
	if pages < 1 {
		pages = 1
	}
	buf := make([]byte, pages*device.PageSize)
	putU32(buf, uint32(len(l.ents)))
	off := 4
	for _, e := range l.ents {
		putU16(buf[off:], uint16(len(e.key)))
		putU32(buf[off+2:], uint32(len(e.value)))
		copy(buf[off+6:], e.key)
		copy(buf[off+6+len(e.key):], e.value)
		off += entryBytes(len(e.key), len(e.value))
	}
	return buf
}

func deserializeLeaf(buf []byte) ([]entry, int) {
	n := int(getU32(buf))
	ents := make([]entry, 0, n)
	off, total := 4, 0
	for i := 0; i < n; i++ {
		klen := int(getU16(buf[off:]))
		vlen := int(getU32(buf[off+2:]))
		k := append([]byte(nil), buf[off+6:off+6+klen]...)
		v := append([]byte(nil), buf[off+6+klen:off+6+klen+vlen]...)
		ents = append(ents, entry{key: k, value: v})
		off += entryBytes(klen, vlen)
		total += entryBytes(klen, vlen)
	}
	return ents, total
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func storeOf(dd device.Disk) device.Store {
	return dd.(interface{ Store() device.Store }).Store()
}

// upsertMsg inserts m into a sorted message slice, replacing an existing
// message for the same key (newest wins). It returns the byte delta.
func upsertMsg(msgs *[]msg, m msg) int {
	s := *msgs
	i := sort.Search(len(s), func(i int) bool {
		return bytes.Compare(s[i].key, m.key) >= 0
	})
	if i < len(s) && bytes.Equal(s[i].key, m.key) {
		delta := msgBytes(&m) - msgBytes(&s[i])
		s[i] = m
		return delta
	}
	s = append(s, msg{})
	copy(s[i+1:], s[i:])
	s[i] = m
	*msgs = s
	return msgBytes(&m)
}

// findMsg looks a key up in a sorted message slice.
func findMsg(msgs []msg, key []byte) (msg, bool) {
	i := sort.Search(len(msgs), func(i int) bool {
		return bytes.Compare(msgs[i].key, key) >= 0
	})
	if i < len(msgs) && bytes.Equal(msgs[i].key, key) {
		return msgs[i], true
	}
	return msg{}, false
}
