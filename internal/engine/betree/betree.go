// Package betree implements a Bε-tree engine in the mold of TokuMX (§3.1
// of the KVell paper): writes are buffered as messages at the top of the
// tree and trickle down through internal-node buffers to 4KB leaves. The
// paper profiles TokuMX spending >20% of its time moving data between
// buffers and up to 30% in locks protecting shared pages; both behaviours
// are first-class here — buffer moves charge BufferMovePerByte of CPU, and
// the tree lock is a spin lock held across flush-down work (including leaf
// I/O), so waiters burn CPU exactly as the paper describes.
//
// The tree is materialized at depth three (root buffer → group buffers →
// leaves), matching the shallow fan-out of real Bε trees at the harness's
// dataset scales; groups split as the leaf count grows. The simplification
// is recorded in DESIGN.md.
package betree

import (
	"bytes"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/trace"
)

// Config describes a betree engine.
type Config struct {
	Disks []device.Disk
	// CacheBytes is the leaf-cache budget.
	CacheBytes int64
	// RootBufferBytes and GroupBufferBytes bound the message buffers.
	RootBufferBytes  int
	GroupBufferBytes int
	// LeafBytes is the on-disk leaf size.
	LeafBytes int
	// WALBufferBytes is the (buffered) commit-log group size.
	WALBufferBytes int64
	// SplitSpan splits a group when its range covers more leaves.
	SplitSpan int
	// CheckpointEvery flushes dirty leaves periodically.
	CheckpointEvery env.Time
	// DirtyStallFrac stalls writers when dirty bytes exceed this fraction
	// of the cache.
	DirtyStallFrac float64
	// Durable switches the commit log from the timing-only buffered model
	// (zeroed buffers) to a real checksummed WAL (walog format): every
	// record is flushed before the operation returns and ReplayLog rebuilds
	// the store from the log after a crash. Off by default — it changes I/O
	// timing, and the simulator's schedule goldens are recorded without it.
	Durable bool
	// Tracer, if set, receives background maintenance spans (eviction,
	// checkpoints, buffer cascades). Purely observational.
	Tracer *trace.Tracer
}

// logRegionPages is the page count reserved for the commit log before the
// leaf allocator's arena (see New).
const logRegionPages = 1 << 20

// DefaultConfig returns a TokuMX-like configuration for scaled datasets.
func DefaultConfig(disks ...device.Disk) Config {
	return Config{
		Disks:            disks,
		CacheBytes:       64 << 20,
		RootBufferBytes:  256 << 10,
		GroupBufferBytes: 64 << 10,
		LeafBytes:        device.PageSize,
		WALBufferBytes:   1 << 20,
		SplitSpan:        256,
		CheckpointEvery:  2 * env.Second,
		DirtyStallFrac:   0.2,
	}
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Gets, Puts, Scans int64
	BufferMovedBytes  int64
	RootFlushes       int64
	GroupFlushes      int64
	CacheHits         int64
	CacheMisses       int64
	EvictedLeaves     int64
	WriteStalls       int64
	StallTime         env.Time
}

// msg is one buffered write.
type msg struct {
	key   []byte
	value []byte
	seq   uint64
	del   bool
}

func msgBytes(m *msg) int { return 16 + len(m.key) + len(m.value) }

// entry is a leaf record.
type entry struct {
	key   []byte
	value []byte
}

func entryBytes(klen, vlen int) int { return 6 + klen + vlen }

type leaf struct {
	firstKey []byte
	page     int64
	pages    int64
	ents     []entry
	bytes    int
	dirty    bool
	lruIdx   int
}

// group is a second-level buffer covering the key range
// [firstKey, next group's firstKey).
type group struct {
	firstKey []byte // nil on the first group
	msgs     []msg  // sorted by key, at most one per key (newest wins)
	bytes    int
}

// DB is the betree engine.
type DB struct {
	env  env.Env
	cfg  Config
	name string

	// The tree lock: held for all tree work including flush-down leaf
	// I/O, so buffer cascades pause every other operation (the TokuMX
	// shared-page contention profile; lock overhead itself is charged as
	// CPU on each acquisition).
	treeMu env.Mutex
	// stall coordination uses a plain mutex+cond (stalled writers should
	// sleep, not burn).
	stallMu   env.Mutex
	stallCond env.Cond

	rootMsgs  []msg
	rootBytes int
	groups    []*group
	leaves    []*leaf
	lru       []*leaf
	cachedB   int64
	dirtyB    int64
	seq       uint64
	closing   bool

	logMu      env.Mutex
	logBuf     int64
	logPage    int64
	logWriting bool   // durable mode: one log write in flight at a time
	logScratch []byte // durable mode: leader-owned chunk buffer
	logPayload []byte // durable mode: record payload scratch

	leafBufs [][]byte // recycled leaf read buffers (guarded by treeMu)

	// Recycled synchronous-I/O waiters (host-only state: procs are
	// cooperatively scheduled and pop/push contain no yield points, so the
	// unlocked accesses cannot interleave).
	waiterFree []*waiter

	alloc *device.Allocator
	disk  device.Disk

	stats Stats
}

// New returns a betree engine.
func New(e env.Env, cfg Config) *DB {
	if len(cfg.Disks) == 0 {
		panic("betree: no disks")
	}
	d := &DB{env: e, cfg: cfg, name: "TokuMX-like", disk: cfg.Disks[0]}
	d.treeMu = e.NewMutex()
	d.stallMu = e.NewMutex()
	d.stallCond = e.NewCond(d.stallMu)
	d.logMu = e.NewMutex()
	d.alloc = device.NewAllocator(logRegionPages) // first pages reserved for the log
	l := &leaf{ents: []entry{}, lruIdx: -1, pages: 1}
	l.page = d.alloc.Alloc(1)
	d.leaves = []*leaf{l}
	d.touch(l)
	d.groups = []*group{{}}
	return d
}

// Name implements kv.Engine.
func (d *DB) Name() string { return d.name }

// Stats returns a snapshot.
func (d *DB) Stats() Stats { return d.stats }

// Start launches the eviction and checkpoint threads.
func (d *DB) Start() {
	d.env.Go("betree-evict", d.evictLoop)
	d.env.Go("betree-checkpoint", d.checkpointLoop)
}

// Stop signals background threads.
func (d *DB) Stop(c env.Ctx) {
	d.treeMu.Lock(c)
	d.closing = true
	d.treeMu.Unlock(c)
	d.stallCond.Broadcast(c)
}

// ---- LRU / residency (treeMu held) ----

func (d *DB) touch(l *leaf) {
	if l.lruIdx >= 0 {
		copy(d.lru[l.lruIdx:], d.lru[l.lruIdx+1:])
		d.lru = d.lru[:len(d.lru)-1]
		for i := l.lruIdx; i < len(d.lru); i++ {
			d.lru[i].lruIdx = i
		}
	}
	l.lruIdx = len(d.lru)
	d.lru = append(d.lru, l)
}

func (d *DB) dropFromLRU(l *leaf) {
	if l.lruIdx < 0 {
		return
	}
	copy(d.lru[l.lruIdx:], d.lru[l.lruIdx+1:])
	d.lru = d.lru[:len(d.lru)-1]
	for i := l.lruIdx; i < len(d.lru); i++ {
		d.lru[i].lruIdx = i
	}
	l.lruIdx = -1
}

func (d *DB) adjustLeafBytes(l *leaf, delta int) {
	l.bytes += delta
	if l.ents != nil {
		d.cachedB += int64(delta)
	}
	if l.dirty {
		d.dirtyB += int64(delta)
	}
}

func (d *DB) markDirty(l *leaf) {
	if !l.dirty {
		l.dirty = true
		d.dirtyB += int64(l.bytes)
	}
}

func (d *DB) findLeaf(c env.Ctx, key []byte) int {
	depth := 1
	for n := len(d.leaves); n > 1; n /= 16 {
		depth++
	}
	c.CPU(env.Time(depth) * costs.BTreeNode)
	i := sort.Search(len(d.leaves), func(i int) bool {
		return bytes.Compare(d.leaves[i].firstKey, key) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

func (d *DB) findGroup(key []byte) int {
	i := sort.Search(len(d.groups), func(i int) bool {
		return bytes.Compare(d.groups[i].firstKey, key) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// loadLeafLocked makes l resident while HOLDING the tree lock across the
// read I/O (TokuMX-style page latching: concurrent operations burn CPU on
// the spin lock meanwhile).
func (d *DB) loadLeafLocked(c env.Ctx, l *leaf) {
	if l.ents != nil {
		d.stats.CacheHits++
		d.touch(l)
		return
	}
	d.stats.CacheMisses++
	buf := d.popLeafBuf(int(l.pages) * device.PageSize)
	d.readSync(c, l.page, buf) // the read overwrites the whole buffer
	ents, total := deserializeLeaf(buf)
	d.leafBufs = append(d.leafBufs, buf) // deserializeLeaf copied out
	c.CPU(costs.MemBytes(total))
	l.ents = ents
	l.bytes = total
	d.cachedB += int64(total)
	d.touch(l)
	d.evictCleanOverBudget(l)
}

// popLeafBuf takes a recycled read buffer of at least need bytes from the
// pool (treeMu held); too-small buffers are dropped, so the pool converges
// on the largest leaf size.
func (d *DB) popLeafBuf(need int) []byte {
	if n := len(d.leafBufs); n > 0 {
		b := d.leafBufs[n-1]
		d.leafBufs = d.leafBufs[:n-1]
		if cap(b) >= need {
			return b[:need]
		}
	}
	return make([]byte, need)
}

func (d *DB) evictCleanOverBudget(keep *leaf) {
	for d.cachedB > d.cfg.CacheBytes {
		evicted := false
		for _, v := range d.lru {
			if v == keep || v.dirty || v.ents == nil {
				continue
			}
			d.cachedB -= int64(v.bytes)
			v.ents = nil
			d.dropFromLRU(v)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// ---- I/O ----

func (d *DB) readSync(c env.Ctx, page int64, buf []byte) {
	// Buffered pread path (§6.3.1): syscall plus per-byte copy/checksum.
	c.CPU(costs.Syscall + costs.PreadBytes(len(buf)))
	w := d.getWaiter()
	w.req = device.Request{Op: device.Read, Page: page, Buf: buf, Done: w.doneFn,
		Trace: trace.FromCtx(c)}
	d.disk.Submit(&w.req)
	w.wait(c)
	d.putWaiter(w)
}

func (d *DB) writeSync(c env.Ctx, page int64, buf []byte) {
	c.CPU(costs.Syscall + costs.PwriteBytes(len(buf)))
	w := d.getWaiter()
	w.req = device.Request{Op: device.Write, Page: page, Buf: buf, Done: w.doneFn,
		Trace: trace.FromCtx(c)}
	d.disk.Submit(&w.req)
	w.wait(c)
	d.putWaiter(w)
}

type waiter struct {
	mu     env.Mutex
	cond   env.Cond
	ok     bool
	req    device.Request
	doneFn func()
}

// getWaiter pops a recycled waiter — mutex, cond, bound done callback and
// request record included — or builds one. The device copies the request's
// fields at submission, so the record is free for reuse once wait returns.
func (d *DB) getWaiter() *waiter {
	if n := len(d.waiterFree); n > 0 {
		w := d.waiterFree[n-1]
		d.waiterFree = d.waiterFree[:n-1]
		w.ok = false
		return w
	}
	w := &waiter{mu: d.env.NewMutex()}
	w.cond = d.env.NewCond(w.mu)
	w.doneFn = w.done
	return w
}

func (d *DB) putWaiter(w *waiter) {
	w.req.Buf = nil
	d.waiterFree = append(d.waiterFree, w)
}

func (w *waiter) done() {
	w.mu.Lock(nil)
	w.ok = true
	w.mu.Unlock(nil)
	w.cond.Broadcast(nil)
}

func (w *waiter) wait(c env.Ctx) {
	w.mu.Lock(c)
	for !w.ok {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
}

// ---- leaf codec (same layout as wtree's) ----

// leafImagePages is the page count of l's serialized form.
func leafImagePages(l *leaf) int {
	pages := (l.bytes + 4 + device.PageSize - 1) / device.PageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

func serializeLeaf(l *leaf) []byte { return serializeLeafInto(l, nil) }

// serializeLeafInto reconciles l into a page-aligned image, reusing dst
// when it has the capacity (callers pass a per-thread scratch buffer or an
// arena allocation). The image is dead once its write completes.
func serializeLeafInto(l *leaf, dst []byte) []byte {
	need := leafImagePages(l) * device.PageSize
	var buf []byte
	if cap(dst) >= need {
		buf = dst[:need]
	} else {
		buf = make([]byte, need)
	}
	putU32(buf, uint32(len(l.ents)))
	off := 4
	for _, e := range l.ents {
		putU16(buf[off:], uint16(len(e.key)))
		putU32(buf[off+2:], uint32(len(e.value)))
		copy(buf[off+6:], e.key)
		copy(buf[off+6+len(e.key):], e.value)
		off += entryBytes(len(e.key), len(e.value))
	}
	clear(buf[off:]) // reused scratch: keep the on-disk tail deterministic
	return buf
}

func deserializeLeaf(buf []byte) ([]entry, int) {
	n := int(getU32(buf))
	ents := make([]entry, 0, n)
	off, total := 4, 0
	// Size pass: one backing blob for every key and value turns 2n copies
	// into 2 allocations per leaf (mutation replaces whole slices, so the
	// shared backing is never written through).
	blobLen := 0
	o := off
	for i := 0; i < n; i++ {
		klen := int(getU16(buf[o:]))
		vlen := int(getU32(buf[o+2:]))
		blobLen += klen + vlen
		o += entryBytes(klen, vlen)
	}
	blob := make([]byte, blobLen)
	bo := 0
	for i := 0; i < n; i++ {
		klen := int(getU16(buf[off:]))
		vlen := int(getU32(buf[off+2:]))
		k := blob[bo : bo+klen : bo+klen]
		copy(k, buf[off+6:])
		v := blob[bo+klen : bo+klen+vlen : bo+klen+vlen]
		copy(v, buf[off+6+klen:off+6+klen+vlen])
		bo += klen + vlen
		ents = append(ents, entry{key: k, value: v})
		off += entryBytes(klen, vlen)
		total += entryBytes(klen, vlen)
	}
	return ents, total
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func getU16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }
func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func storeOf(dd device.Disk) device.Store {
	return dd.(interface{ Store() device.Store }).Store()
}

// upsertMsg inserts m into a sorted message slice, replacing an existing
// message for the same key (newest wins). It returns the byte delta.
func upsertMsg(msgs *[]msg, m msg) int {
	s := *msgs
	i := sort.Search(len(s), func(i int) bool {
		return bytes.Compare(s[i].key, m.key) >= 0
	})
	if i < len(s) && bytes.Equal(s[i].key, m.key) {
		delta := msgBytes(&m) - msgBytes(&s[i])
		s[i] = m
		return delta
	}
	s = append(s, msg{})
	copy(s[i+1:], s[i:])
	s[i] = m
	*msgs = s
	return msgBytes(&m)
}

// findMsg looks a key up in a sorted message slice.
func findMsg(msgs []msg, key []byte) (msg, bool) {
	i := sort.Search(len(msgs), func(i int) bool {
		return bytes.Compare(msgs[i].key, key) >= 0
	})
	if i < len(msgs) && bytes.Equal(msgs[i].key, key) {
		return msgs[i], true
	}
	return msg{}, false
}
