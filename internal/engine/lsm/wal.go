package lsm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
)

// The write-ahead log is a sequence of page-aligned chunks in the reserved
// region at the start of disk 0. Each chunk is:
//
//	magic (4B) | payload length (4B) | records...
//
// and each record is:
//
//	klen (2B) | vlen (4B) | seq (8B) | tombstone (1B) | key | value
//
// Replay scans chunks from page 0 until the magic stops matching — exactly
// what a crashed RocksDB does with its log files.
// Durable mode (Config.Durable) uses an extended header,
//
//	magicDur (4B) | payload length (4B) | fnv64a(payload) (8B) | records...
//
// whose checksum lets replay distinguish a torn chunk (some pages of the
// chunk persisted across a crash, some did not) from the end of the log.
// The base format is untouched — golden schedule digests are recorded with
// it — and ReplayWAL accepts both.
const (
	walMagic       = 0x4B56574C // "KVWL"
	walMagicDur    = 0x4B56574D // "KVWM"
	walChunkHdr    = 8
	walChunkHdrDur = 16
	walRegionPage  = 0
	walRegionSize  = 1 << 20 // pages reserved in New()
)

// walAppend buffers a framed record (writeMu held). When the buffer
// exceeds the configured WAL group size, it is written sequentially to the
// log region while the write lock is held (the group leader behavior).
func (d *DB) walAppend(c env.Ctx, key, value []byte, tombstone bool) {
	rec := entryHeader + len(key) + len(value)
	c.CPU(costs.WALBytes(rec))
	var hdr [15]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(value)))
	binary.LittleEndian.PutUint64(hdr[6:14], d.seq)
	if tombstone {
		hdr[14] = 1
	}
	d.walRecs = append(d.walRecs, hdr[:]...)
	d.walRecs = append(d.walRecs, key...)
	d.walRecs = append(d.walRecs, value...)
	// Durable mode flushes every record before the write is acknowledged
	// (writeMu is held through the flush, so at most one log write is in
	// flight — the property torn-tail detection relies on).
	if d.cfg.Durable || int64(len(d.walRecs)) >= d.cfg.WALBufferBytes {
		d.walFlush(c)
	}
}

// walFlush writes the buffered records as one chunk (writeMu held).
func (d *DB) walFlush(c env.Ctx) {
	if len(d.walRecs) == 0 {
		return
	}
	payload := d.walRecs
	hdr := walChunkHdr
	if d.cfg.Durable {
		hdr = walChunkHdrDur
	}
	pages := (int64(hdr+len(payload)) + device.PageSize - 1) / device.PageSize
	buf := make([]byte, pages*device.PageSize)
	if d.cfg.Durable {
		binary.LittleEndian.PutUint32(buf[0:4], walMagicDur)
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
		h := fnv.New64a()
		h.Write(payload)
		binary.LittleEndian.PutUint64(buf[8:16], h.Sum64())
	} else {
		binary.LittleEndian.PutUint32(buf[0:4], walMagic)
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	}
	copy(buf[hdr:], payload)
	page := walRegionPage + d.walPage%walRegionSize
	if d.cfg.Durable {
		if d.walPage+pages > walRegionSize {
			panic("lsm: durable WAL region overflow")
		}
		page = walRegionPage + d.walPage // no wrap: the log is the recovery source
	}
	d.walPage += pages
	d.walRecs = d.walRecs[:0]
	d.writePagesTimed(c, d.cfg.Disks[0], page, buf)
}

// logBulkItems appends items as durable WAL chunks via direct (untimed)
// store writes — bulk load precedes the measured run — so ReplayWAL on a
// fresh DB reconstructs the loaded data without trusting any table page.
func (d *DB) logBulkItems(items []kv.Item) {
	st := storeOf(d.cfg.Disks[0])
	var payload []byte
	flush := func() {
		if len(payload) == 0 {
			return
		}
		pages := (int64(walChunkHdrDur+len(payload)) + device.PageSize - 1) / device.PageSize
		buf := make([]byte, pages*device.PageSize)
		binary.LittleEndian.PutUint32(buf[0:4], walMagicDur)
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
		h := fnv.New64a()
		h.Write(payload)
		binary.LittleEndian.PutUint64(buf[8:16], h.Sum64())
		copy(buf[walChunkHdrDur:], payload)
		if err := st.WritePages(walRegionPage+d.walPage, buf); err != nil {
			panic(err)
		}
		d.walPage += pages
		if d.walPage > walRegionSize {
			panic("lsm: durable WAL region overflow during bulk load")
		}
		payload = payload[:0]
	}
	var hdr [entryHeader]byte
	for _, it := range items {
		binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(it.Key)))
		binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(it.Value)))
		binary.LittleEndian.PutUint64(hdr[6:14], 0) // seq 0, like bulk-built tables
		hdr[14] = 0
		payload = append(payload, hdr[:]...)
		payload = append(payload, it.Key...)
		payload = append(payload, it.Value...)
		if len(payload) >= 256<<10 {
			flush()
		}
	}
	flush()
}

// ReplayWAL rebuilds the memtable from the log region, as crash recovery
// does: chunks are read sequentially with large reads, records are decoded
// and re-inserted (paying the same memtable costs as the write path), and
// full memtables are flushed to L0. It returns the number of records
// replayed. Call on a freshly opened DB before Start.
func (d *DB) ReplayWAL(c env.Ctx) (int, error) {
	disk := d.cfg.Disks[0]
	const readChunk = 256 // pages per sequential read
	var page int64 = walRegionPage
	buf := make([]byte, readChunk*device.PageSize)
	records := 0
	for {
		d.readPagesSync(c, disk, page, buf)
		hdr := walChunkHdr
		switch binary.LittleEndian.Uint32(buf[0:4]) {
		case walMagic:
		case walMagicDur:
			hdr = walChunkHdrDur
		default:
			hdr = 0 // end of log
		}
		if hdr == 0 {
			break
		}
		payloadLen := int(binary.LittleEndian.Uint32(buf[4:8]))
		chunkPages := (int64(hdr+payloadLen) + device.PageSize - 1) / device.PageSize
		if payloadLen <= 0 || chunkPages > walRegionSize {
			break // impossible length: treat as end of log
		}
		payload := make([]byte, payloadLen)
		if chunkPages <= readChunk {
			copy(payload, buf[hdr:hdr+payloadLen])
		} else {
			big := make([]byte, chunkPages*device.PageSize)
			d.readPagesSync(c, disk, page, big)
			copy(payload, big[hdr:hdr+payloadLen])
		}
		if hdr == walChunkHdrDur {
			// Checksummed chunk: a mismatch is the torn tail a crash left
			// behind — the log's valid prefix ends here.
			h := fnv.New64a()
			h.Write(payload)
			if h.Sum64() != binary.LittleEndian.Uint64(buf[8:16]) {
				break
			}
		}
		off := 0
		for off+entryHeader <= len(payload) {
			klen := int(binary.LittleEndian.Uint16(payload[off : off+2]))
			vlen := int(binary.LittleEndian.Uint32(payload[off+2 : off+6]))
			if klen == 0 || off+entryHeader+klen+vlen > len(payload) {
				return records, fmt.Errorf("lsm: corrupt WAL record at page %d off %d", page, off)
			}
			e := entry{
				seq:       binary.LittleEndian.Uint64(payload[off+6 : off+14]),
				tombstone: payload[off+14] == 1,
				key:       append([]byte(nil), payload[off+entryHeader:off+entryHeader+klen]...),
			}
			if !e.tombstone {
				e.value = append([]byte(nil), payload[off+entryHeader+klen:off+entryHeader+klen+vlen]...)
			}
			// Same costs as the live write path: descent plus copy.
			c.CPU(d.mem.lookupCost() + costs.MemBytes(e.bytes()))
			d.mem.put(e)
			if e.seq > d.seq {
				d.seq = e.seq
			}
			records++
			off += entryHeader + klen + vlen
			if d.mem.bytes >= d.cfg.MemtableBytes {
				d.flushMemtableSync(c)
			}
		}
		page += chunkPages
	}
	d.walPage = page - walRegionPage
	return records, nil
}

// flushMemtableSync builds an L0 table from the current memtable inline
// (used during replay, when background threads are not running).
func (d *DB) flushMemtableSync(c env.Ctx) {
	if d.mem.len() == 0 {
		return
	}
	b := d.newBuilder(d.nextDisk())
	d.mem.each(func(e entry) { b.add(&e) })
	c.CPU(costs.MemBytes(int(d.mem.bytes)))
	if t := b.finish(c); t != nil {
		d.levels[0] = append(d.levels[0], t)
	}
	d.mem = newMemtable()
	d.stats.Flushes++
}
