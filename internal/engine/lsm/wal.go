package lsm

import (
	"encoding/binary"
	"fmt"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
)

// The write-ahead log is a sequence of page-aligned chunks in the reserved
// region at the start of disk 0. Each chunk is:
//
//	magic (4B) | payload length (4B) | records...
//
// and each record is:
//
//	klen (2B) | vlen (4B) | seq (8B) | tombstone (1B) | key | value
//
// Replay scans chunks from page 0 until the magic stops matching — exactly
// what a crashed RocksDB does with its log files.
const (
	walMagic      = 0x4B56574C // "KVWL"
	walChunkHdr   = 8
	walRegionPage = 0
	walRegionSize = 1 << 20 // pages reserved in New()
)

// walAppend buffers a framed record (writeMu held). When the buffer
// exceeds the configured WAL group size, it is written sequentially to the
// log region while the write lock is held (the group leader behavior).
func (d *DB) walAppend(c env.Ctx, key, value []byte, tombstone bool) {
	rec := entryHeader + len(key) + len(value)
	c.CPU(costs.WALBytes(rec))
	var hdr [15]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(value)))
	binary.LittleEndian.PutUint64(hdr[6:14], d.seq)
	if tombstone {
		hdr[14] = 1
	}
	d.walRecs = append(d.walRecs, hdr[:]...)
	d.walRecs = append(d.walRecs, key...)
	d.walRecs = append(d.walRecs, value...)
	if int64(len(d.walRecs)) >= d.cfg.WALBufferBytes {
		d.walFlush(c)
	}
}

// walFlush writes the buffered records as one chunk (writeMu held).
func (d *DB) walFlush(c env.Ctx) {
	if len(d.walRecs) == 0 {
		return
	}
	payload := d.walRecs
	pages := (int64(walChunkHdr+len(payload)) + device.PageSize - 1) / device.PageSize
	buf := make([]byte, pages*device.PageSize)
	binary.LittleEndian.PutUint32(buf[0:4], walMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	copy(buf[walChunkHdr:], payload)
	page := walRegionPage + d.walPage%walRegionSize
	d.walPage += pages
	d.walRecs = d.walRecs[:0]
	d.writePagesTimed(c, d.cfg.Disks[0], page, buf)
}

// ReplayWAL rebuilds the memtable from the log region, as crash recovery
// does: chunks are read sequentially with large reads, records are decoded
// and re-inserted (paying the same memtable costs as the write path), and
// full memtables are flushed to L0. It returns the number of records
// replayed. Call on a freshly opened DB before Start.
func (d *DB) ReplayWAL(c env.Ctx) (int, error) {
	disk := d.cfg.Disks[0]
	const readChunk = 256 // pages per sequential read
	var page int64 = walRegionPage
	buf := make([]byte, readChunk*device.PageSize)
	records := 0
	for {
		d.readPagesSync(c, disk, page, buf)
		if binary.LittleEndian.Uint32(buf[0:4]) != walMagic {
			break // end of log
		}
		payloadLen := int(binary.LittleEndian.Uint32(buf[4:8]))
		chunkPages := (int64(walChunkHdr+payloadLen) + device.PageSize - 1) / device.PageSize
		payload := make([]byte, payloadLen)
		if chunkPages <= readChunk {
			copy(payload, buf[walChunkHdr:walChunkHdr+payloadLen])
		} else {
			big := make([]byte, chunkPages*device.PageSize)
			d.readPagesSync(c, disk, page, big)
			copy(payload, big[walChunkHdr:walChunkHdr+payloadLen])
		}
		off := 0
		for off+entryHeader <= len(payload) {
			klen := int(binary.LittleEndian.Uint16(payload[off : off+2]))
			vlen := int(binary.LittleEndian.Uint32(payload[off+2 : off+6]))
			if klen == 0 || off+entryHeader+klen+vlen > len(payload) {
				return records, fmt.Errorf("lsm: corrupt WAL record at page %d off %d", page, off)
			}
			e := entry{
				seq:       binary.LittleEndian.Uint64(payload[off+6 : off+14]),
				tombstone: payload[off+14] == 1,
				key:       append([]byte(nil), payload[off+entryHeader:off+entryHeader+klen]...),
			}
			if !e.tombstone {
				e.value = append([]byte(nil), payload[off+entryHeader+klen:off+entryHeader+klen+vlen]...)
			}
			// Same costs as the live write path: descent plus copy.
			c.CPU(d.mem.lookupCost() + costs.MemBytes(e.bytes()))
			d.mem.put(e)
			if e.seq > d.seq {
				d.seq = e.seq
			}
			records++
			off += entryHeader + klen + vlen
			if d.mem.bytes >= d.cfg.MemtableBytes {
				d.flushMemtableSync(c)
			}
		}
		page += chunkPages
	}
	d.walPage = page - walRegionPage
	return records, nil
}

// flushMemtableSync builds an L0 table from the current memtable inline
// (used during replay, when background threads are not running).
func (d *DB) flushMemtableSync(c env.Ctx) {
	if d.mem.len() == 0 {
		return
	}
	b := d.newBuilder(d.nextDisk())
	d.mem.each(func(e entry) { b.add(&e) })
	c.CPU(costs.MemBytes(int(d.mem.bytes)))
	if t := b.finish(c); t != nil {
		d.levels[0] = append(d.levels[0], t)
	}
	d.mem = newMemtable()
	d.stats.Flushes++
}
