package lsm

import (
	"kvell/internal/btree"
	"kvell/internal/costs"
	"kvell/internal/env"
)

// memtable is the in-memory write buffer. The paper's LSM baselines use a
// skiplist; we reuse the B-tree with equivalent O(log n) node-visit costs
// charged at the SkiplistNode rate.
type memtable struct {
	tree  *btree.Tree
	ents  []entry
	bytes int64
}

func newMemtable() *memtable {
	return &memtable{tree: btree.New()}
}

// lookupCost is the CPU charge for one memtable descent.
func (m *memtable) lookupCost() env.Time {
	return env.Time(m.tree.Depth()*2) * costs.SkiplistNode
}

// put inserts or replaces an entry (replacement keeps the newest seq).
func (m *memtable) put(e entry) {
	if idx, ok := m.tree.Get(e.key); ok {
		old := &m.ents[idx]
		m.bytes += int64(len(e.value)) - int64(len(old.value))
		*old = e
		return
	}
	m.ents = append(m.ents, e)
	m.tree.Put(e.key, uint64(len(m.ents)-1))
	m.bytes += int64(e.bytes())
}

// get returns the entry for key.
func (m *memtable) get(key []byte) (entry, bool) {
	idx, ok := m.tree.Get(key)
	if !ok {
		return entry{}, false
	}
	return m.ents[idx], true
}

// firstN returns up to n entries with key >= start, in order.
func (m *memtable) firstN(start []byte, n int) []entry {
	var out []entry
	m.tree.AscendFrom(start, func(k []byte, idx uint64) bool {
		out = append(out, m.ents[idx])
		return len(out) < n
	})
	return out
}

// each visits all entries in key order.
func (m *memtable) each(fn func(e entry)) {
	m.tree.AscendFrom(nil, func(k []byte, idx uint64) bool {
		fn(m.ents[idx])
		return true
	})
}

func (m *memtable) len() int { return m.tree.Len() }
