package lsm

import (
	"bytes"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/slab"
)

// flushCond and closing flags live on db.go's locks; the flush loop turns
// the immutable memtable into an L0 table (§3.1: the memory component).
func (d *DB) flushLoop(c env.Ctx) {
	// Per-thread scratch arena: page images built here are dead once finish
	// writes them, so each flush reuses the previous flush's memory.
	arena := slab.NewArena(1 << 20)
	for {
		d.writeMu.Lock(c)
		for d.imm == nil && !d.closing {
			d.writeCond.Wait(c) // writers broadcast when imm is set
		}
		if d.imm == nil && d.closing {
			d.writeMu.Unlock(c)
			return
		}
		imm := d.imm
		d.writeMu.Unlock(c)

		bc := d.cfg.Tracer.BeginBg("flush", c.Now())
		c.SetTrace(bc)

		d.verMu.Lock(c)
		disk := d.nextDisk()
		d.verMu.Unlock(c)

		b := d.newBuilder(disk)
		b.arena = arena
		imm.each(func(e entry) { b.add(&e) })
		c.CPU(costs.MemBytes(int(imm.bytes)))
		t := b.finish(c) // timed sequential writes + index build CPU
		arena.Reset()    // every page image has been written out

		d.verMu.Lock(c)
		if t != nil {
			d.levels[0] = append(d.levels[0], t)
		}
		d.verMu.Unlock(c)
		d.verCond.Broadcast(c)

		d.writeMu.Lock(c)
		d.imm = nil
		d.stats.Flushes++
		d.writeMu.Unlock(c)
		d.writeCond.Broadcast(c) // wake writers stalled on the flush

		c.SetTrace(nil)
		d.cfg.Tracer.FinishBg(bc, c.Now())
	}
}

// compaction is one selected job.
type compaction struct {
	level   int
	inputs  []*sstable // tables leaving level
	targets []*sstable // tables in level+1 being merged (leveled mode)
}

// levelTargetBytes is the size budget of level i (i >= 1).
func (d *DB) levelTargetBytes(i int) int64 {
	t := d.cfg.BaseLevelBytes
	for j := 1; j < i; j++ {
		t *= d.cfg.LevelMultiplier
	}
	return t
}

func levelBytes(lvl []*sstable) int64 {
	var n int64
	for _, t := range lvl {
		n += t.dataLen
	}
	return n
}

// pickCompaction selects the highest-scoring level (verMu held).
func (d *DB) pickCompaction() *compaction {
	bestScore := 1.0
	best := -1
	for i := 0; i < len(d.levels)-1; i++ {
		var score float64
		if i == 0 {
			score = float64(len(d.levels[0])) / float64(d.cfg.L0CompactionTrigger)
		} else {
			score = float64(levelBytes(d.levels[i])) / float64(d.levelTargetBytes(i))
		}
		if score >= bestScore {
			bestScore = score
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	cmp := &compaction{level: best}
	if best == 0 {
		for _, t := range d.levels[0] {
			if d.busy[t.id] {
				return nil // an L0 compaction is already running
			}
		}
		cmp.inputs = append(cmp.inputs, d.levels[0]...)
	} else {
		// Oldest non-busy table.
		var oldest *sstable
		for _, t := range d.levels[best] {
			if d.busy[t.id] {
				continue
			}
			if oldest == nil || t.id < oldest.id {
				oldest = t
			}
		}
		if oldest == nil {
			return nil
		}
		cmp.inputs = append(cmp.inputs, oldest)
	}
	// Input key range.
	min, max := cmp.inputs[0].min, cmp.inputs[0].max
	for _, t := range cmp.inputs[1:] {
		if bytes.Compare(t.min, min) < 0 {
			min = t.min
		}
		if bytes.Compare(t.max, max) > 0 {
			max = t.max
		}
	}
	// Targets: merged only in leveled mode, or when compacting into the
	// last level in fragmented mode (PebblesDB merges there).
	intoLast := cmp.level+1 == len(d.levels)-1
	if !d.cfg.Fragmented || intoLast {
		for _, t := range d.levels[cmp.level+1] {
			if t.overlaps(min, max) {
				if d.busy[t.id] {
					return nil
				}
				cmp.targets = append(cmp.targets, t)
			}
		}
	}
	for _, t := range cmp.inputs {
		d.busy[t.id] = true
	}
	for _, t := range cmp.targets {
		d.busy[t.id] = true
	}
	return cmp
}

func (d *DB) compactLoop(c env.Ctx) {
	// Per-thread scratch arena for merge chunks and output page images;
	// reset after each job, so steady-state compaction reuses one footprint.
	arena := slab.NewArena(1 << 20)
	for {
		d.verMu.Lock(c)
		job := d.pickCompaction()
		for job == nil && !d.closing {
			d.verCond.Wait(c)
			job = d.pickCompaction()
		}
		if d.closing {
			if job != nil {
				for _, t := range append(job.inputs, job.targets...) {
					delete(d.busy, t.id)
				}
			}
			d.verMu.Unlock(c)
			return
		}
		d.verMu.Unlock(c)
		d.runCompaction(c, job, arena)
		arena.Reset()
	}
}

// compactionSource streams a table's entries with large sequential reads
// (bypassing the block cache, as RocksDB compactions do).
func (d *DB) compactionSource(c env.Ctx, t *sstable, arena *slab.Arena) *scanSource {
	bi := 0
	var chunk []byte
	var chunkStart int64 = -1
	var off int
	var data []byte
	const chunkPages = 64
	getBlock := func(blk *block) []byte {
		rel := blk.page - t.basePage
		need := int64(blk.pages)
		if chunk == nil || rel < chunkStart || rel+need > chunkStart+int64(len(chunk)/device.PageSize) {
			n := int64(chunkPages)
			if rel+n > t.pages {
				n = t.pages - rel
			}
			if need > n {
				n = need
			}
			// The merge copies entries out of the chunk before the source
			// advances past it, so the buffer can be reused in place; the
			// arena only grows when a chunk is larger than any before it.
			if int(n*device.PageSize) <= cap(chunk) {
				chunk = chunk[:n*device.PageSize]
			} else {
				chunk = arena.Alloc(int(n * device.PageSize))
			}
			d.readPagesSync(c, t.disk, t.basePage+rel, chunk)
			d.stats.CompactionBytesRead += n * device.PageSize
			chunkStart = rel
		}
		o := (rel - chunkStart) * device.PageSize
		return chunk[o : o+need*device.PageSize][:blk.length]
	}
	return &scanSource{next: func() (entry, bool) {
		for {
			if data == nil {
				if bi >= len(t.blocks) {
					return entry{}, false
				}
				data = getBlock(&t.blocks[bi])
				off = 0
			}
			e, next, ok := decodeEntry(data, off)
			if !ok {
				data = nil
				bi++
				continue
			}
			off = next
			c.CPU(costs.MergeBytes(e.bytes()))
			return e, true
		}
	}}
}

// runCompaction merges the job's tables and installs the result into
// level+1 (§3.1: the CPU- and I/O-intensive maintenance operation that
// LSM designs require and KVell eliminates).
func (d *DB) runCompaction(c env.Ctx, job *compaction, arena *slab.Arena) {
	bc := d.cfg.Tracer.BeginBg("compaction", c.Now())
	c.SetTrace(bc)
	toLevel := job.level + 1
	// Tombstones may be dropped only at the bottommost level, where every
	// overlapping table participates in the merge.
	dropTombstones := toLevel == len(d.levels)-1

	var sources []*scanSource
	for _, t := range job.inputs {
		sources = append(sources, d.compactionSource(c, t, arena))
	}
	for _, t := range job.targets {
		sources = append(sources, d.compactionSource(c, t, arena))
	}

	d.verMu.Lock(c)
	disk := d.nextDisk()
	d.verMu.Unlock(c)

	var outputs []*sstable
	b := d.newBuilder(disk)
	b.arena = arena
	emit := func(e *entry) {
		if e.tombstone && dropTombstones {
			return
		}
		b.add(e)
		if b.estimatedBytes() >= d.cfg.TableTargetBytes {
			if t := b.finish(c); t != nil {
				outputs = append(outputs, t)
				d.stats.CompactionBytesWritten += t.dataLen
			}
			d.verMu.Lock(c)
			disk = d.nextDisk()
			d.verMu.Unlock(c)
			b = d.newBuilder(disk)
			b.arena = arena
		}
	}

	// K-way merge by (key asc, seq desc); keep only the newest version.
	var lastKey []byte
	haveLast := false
	for {
		var best *scanSource
		var e entry
		for _, s := range sources {
			se, ok := s.peek()
			if !ok {
				continue
			}
			if best == nil {
				best, e = s, se
				continue
			}
			cmp := bytes.Compare(se.key, e.key)
			if cmp < 0 || (cmp == 0 && se.seq > e.seq) {
				best, e = s, se
			}
		}
		if best == nil {
			break
		}
		best.advance()
		if haveLast && bytes.Equal(e.key, lastKey) {
			continue // superseded version
		}
		lastKey = append(lastKey[:0], e.key...)
		haveLast = true
		emit(&e)
	}
	if t := b.finish(c); t != nil {
		outputs = append(outputs, t)
		d.stats.CompactionBytesWritten += t.dataLen
	}

	// Install the new version.
	d.verMu.Lock(c)
	d.stats.Compactions++
	remove := func(lvl int, victims []*sstable) {
		keep := d.levels[lvl][:0]
		for _, t := range d.levels[lvl] {
			victim := false
			for _, v := range victims {
				if v == t {
					victim = true
					break
				}
			}
			if victim {
				delete(d.busy, t.id)
				if t.refs == 0 {
					d.free(c, t)
				} else {
					t.zombie = true // freed by unref when the last reader drops it
				}
			} else {
				keep = append(keep, t)
			}
		}
		d.levels[lvl] = keep
	}
	remove(job.level, job.inputs)
	if len(job.targets) > 0 {
		remove(toLevel, job.targets)
	}
	d.levels[toLevel] = append(d.levels[toLevel], outputs...)
	if !d.cfg.Fragmented || toLevel == len(d.levels)-1 && len(job.targets) > 0 {
		sort.Slice(d.levels[toLevel], func(i, j int) bool {
			return bytes.Compare(d.levels[toLevel][i].min, d.levels[toLevel][j].min) < 0
		})
	}
	d.verMu.Unlock(c)
	d.verCond.Broadcast(c)   // more compaction may be needed
	d.writeCond.Broadcast(c) // L0 stalls may clear

	c.SetTrace(nil)
	d.cfg.Tracer.FinishBg(bc, c.Now())
}
