package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

// harness runs fn as a client against a fresh LSM DB in a simulation.
func harness(t *testing.T, frag bool, tweak func(*Config), fn func(c env.Ctx, d *DB)) *DB {
	t.Helper()
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	cfg := DefaultConfig(disk)
	cfg.Fragmented = frag
	// Small components so compactions/flushes happen in-test.
	cfg.MemtableBytes = 64 << 10
	cfg.BaseLevelBytes = 256 << 10
	cfg.TableTargetBytes = 64 << 10
	cfg.BlockCacheBytes = 1 << 20
	if tweak != nil {
		tweak(&cfg)
	}
	d := New(e, cfg)
	d.Start()
	e.Go("client", func(c env.Ctx) {
		fn(c, d)
		d.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPutGet(t *testing.T) {
	harness(t, false, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 500; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		for i := int64(0); i < 500; i++ {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 500)) {
				t.Fatalf("Get(%d) ok=%v", i, ok)
			}
		}
		if _, ok := d.Get(c, []byte("missing")); ok {
			t.Fatal("found missing key")
		}
	})
}

func TestOverwriteAndDeleteAcrossFlushes(t *testing.T) {
	d := harness(t, false, nil, func(c env.Ctx, d *DB) {
		val := func(i int64, ver uint64) []byte { return kv.Value(i, ver, 800) }
		for round := uint64(1); round <= 4; round++ {
			for i := int64(0); i < 300; i++ {
				d.Put(c, kv.Key(i), val(i, round))
			}
		}
		for i := int64(0); i < 300; i += 2 {
			d.Delete(c, kv.Key(i))
		}
		// Force more flushes so deletes reach tables.
		for i := int64(1000); i < 1300; i++ {
			d.Put(c, kv.Key(i), val(i, 1))
		}
		for i := int64(0); i < 300; i++ {
			v, ok := d.Get(c, kv.Key(i))
			if i%2 == 0 {
				if ok {
					t.Fatalf("deleted key %d still visible", i)
				}
				continue
			}
			if !ok || !bytes.Equal(v, val(i, 4)) {
				t.Fatalf("key %d: ok=%v (want round-4 value)", i, ok)
			}
		}
	})
	if d.stats.Flushes == 0 {
		t.Fatal("test never flushed; sizes too large")
	}
	if d.stats.Compactions == 0 {
		t.Fatal("test never compacted")
	}
}

func TestScanMergesAllSources(t *testing.T) {
	harness(t, false, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 400; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 700))
		}
		// Overwrite a band (newer versions in memtable/L0).
		for i := int64(100); i < 120; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 2, 700))
		}
		d.Delete(c, kv.Key(105))
		items := d.Scan(c, kv.Key(95), 20)
		if len(items) != 20 {
			t.Fatalf("scan returned %d items", len(items))
		}
		want := int64(95)
		for _, it := range items {
			if want == 105 {
				want++ // deleted
			}
			if !bytes.Equal(it.Key, kv.Key(want)) {
				t.Fatalf("scan got %q, want %q", it.Key, kv.Key(want))
			}
			ver := uint64(1)
			if want >= 100 && want < 120 {
				ver = 2
			}
			if !bytes.Equal(it.Value, kv.Value(want, ver, 700)) {
				t.Fatalf("scan value for %d stale (want ver %d)", want, ver)
			}
			want++
		}
	})
}

func TestBulkLoadReadback(t *testing.T) {
	items := make([]kv.Item, 3000)
	for i := range items {
		items[i] = kv.Item{Key: kv.Key(int64(i)), Value: kv.Value(int64(i), 0, 900)}
	}
	harness(t, false, func(cfg *Config) {}, func(c env.Ctx, d *DB) {
		if err := d.BulkLoad(items); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 3000; i += 37 {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 0, 900)) {
				t.Fatalf("Get(%d) after bulk load: ok=%v", i, ok)
			}
		}
		got := d.Scan(c, kv.Key(500), 100)
		if len(got) != 100 || !bytes.Equal(got[0].Key, kv.Key(500)) {
			t.Fatalf("scan after bulk load: %d items", len(got))
		}
	})
}

func TestFragmentedModeCorrectAndCheaper(t *testing.T) {
	run := func(frag bool) *DB {
		return harness(t, frag, nil, func(c env.Ctx, d *DB) {
			// Distinct keys in random order: leveled compaction must
			// repeatedly rewrite overlapping target tables, fragmented
			// mode only re-partitions what moves down.
			r := rand.New(rand.NewSource(5))
			perm := r.Perm(6000)
			for _, i := range perm {
				d.Put(c, kv.Key(int64(i)), kv.Value(int64(i), 1, 700))
			}
		})
	}
	leveled := run(false)
	frag := run(true)
	if frag.stats.Compactions == 0 {
		t.Fatal("fragmented mode never compacted")
	}
	// PebblesDB's point: less compaction I/O for the same ingest.
	if frag.stats.CompactionBytesWritten >= leveled.stats.CompactionBytesWritten {
		t.Fatalf("fragmented compaction wrote %d bytes, leveled %d; expected less",
			frag.stats.CompactionBytesWritten, leveled.stats.CompactionBytesWritten)
	}
}

func TestFragmentedCorrectness(t *testing.T) {
	harness(t, true, nil, func(c env.Ctx, d *DB) {
		r := rand.New(rand.NewSource(9))
		oracle := map[int64]uint64{}
		var ver uint64
		for op := 0; op < 5000; op++ {
			i := int64(r.Intn(300))
			if r.Intn(4) == 0 {
				v, ok := d.Get(c, kv.Key(i))
				wv, wok := oracle[i]
				if ok != wok {
					t.Fatalf("op %d: present=%v want %v", op, ok, wok)
				}
				if ok && !bytes.Equal(v, kv.Value(i, wv, 700)) {
					t.Fatalf("op %d: stale value for %d", op, i)
				}
			} else {
				ver++
				d.Put(c, kv.Key(i), kv.Value(i, ver, 700))
				oracle[i] = ver
			}
		}
		for i, wv := range oracle {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, wv, 700)) {
				t.Fatalf("final: key %d ok=%v", i, ok)
			}
		}
	})
}

func TestWriteStallsHappenUnderPressure(t *testing.T) {
	d := harness(t, false, func(cfg *Config) {
		cfg.MemtableBytes = 32 << 10
		cfg.L0StallTrigger = 4
		cfg.CompactionThreads = 1
	}, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 3000; i++ {
			d.Put(c, kv.Key(i%200), kv.Value(i, uint64(i), 900))
		}
	})
	if d.stats.WriteStalls == 0 {
		t.Fatal("no write stalls under heavy ingest — stall machinery dead")
	}
	if d.stats.StallTime == 0 {
		t.Fatal("stall time not accounted")
	}
}

func TestBloomFilter(t *testing.T) {
	b := newBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		b.add(kv.Key(int64(i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(kv.Key(int64(i))) {
			t.Fatalf("false negative for %d", i)
		}
	}
	fp := 0
	for i := 10_000; i < 20_000; i++ {
		if b.mayContain(kv.Key(int64(i))) {
			fp++
		}
	}
	if fp > 300 { // ~1% expected at 10 bits/key; allow slack
		t.Fatalf("false positive rate %d/10000 too high", fp)
	}
}

func TestEntryCodec(t *testing.T) {
	e := entry{key: []byte("k1"), value: []byte("hello"), seq: 42}
	buf := make([]byte, e.bytes())
	encodeEntry(buf, &e)
	got, next, ok := decodeEntry(buf, 0)
	if !ok || next != len(buf) || !bytes.Equal(got.key, e.key) || !bytes.Equal(got.value, e.value) || got.seq != 42 || got.tombstone {
		t.Fatalf("roundtrip: %+v", got)
	}
	tomb := entry{key: []byte("k2"), seq: 7, tombstone: true}
	buf2 := make([]byte, tomb.bytes())
	encodeEntry(buf2, &tomb)
	got2, _, ok := decodeEntry(buf2, 0)
	if !ok || !got2.tombstone {
		t.Fatal("tombstone flag lost")
	}
	// Decoding zero padding ends the block.
	if _, _, ok := decodeEntry(make([]byte, 64), 0); ok {
		t.Fatal("padding decoded as entry")
	}
}

func TestTableBuilderBlockLayout(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 2)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	d := New(e, DefaultConfig(disk))
	b := d.newBuilder(disk)
	for i := int64(0); i < 100; i++ {
		b.add(&entry{key: kv.Key(i), value: kv.Value(i, 0, 1000), seq: 1})
	}
	tab := b.finish(nil)
	if tab == nil {
		t.Fatal("nil table")
	}
	// ~1KB entries: expect ~4 entries per 4K block => ~25 blocks.
	if len(tab.blocks) < 20 || len(tab.blocks) > 40 {
		t.Fatalf("blocks = %d for 100 1KB entries", len(tab.blocks))
	}
	if !bytes.Equal(tab.min, kv.Key(0)) || !bytes.Equal(tab.max, kv.Key(99)) {
		t.Fatalf("range [%s,%s]", tab.min, tab.max)
	}
	// findBlock sanity across all keys.
	for i := int64(0); i < 100; i++ {
		bi := tab.findBlock(kv.Key(i))
		if bi < 0 || bi >= len(tab.blocks) {
			t.Fatalf("findBlock(%d) = %d", i, bi)
		}
		if bytes.Compare(tab.blocks[bi].firstKey, kv.Key(i)) > 0 {
			t.Fatalf("block %d firstKey %s > key %s", bi, tab.blocks[bi].firstKey, kv.Key(i))
		}
	}
}

func TestLargeValuesSpanBlocks(t *testing.T) {
	harness(t, false, nil, func(c env.Ctx, d *DB) {
		big := kv.Value(1, 1, 9000) // > 2 pages
		d.Put(c, kv.Key(1), big)
		d.Put(c, kv.Key(2), kv.Value(2, 1, 100))
		// Push through a flush.
		for i := int64(10); i < 200; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 800))
		}
		v, ok := d.Get(c, kv.Key(1))
		if !ok || !bytes.Equal(v, big) {
			t.Fatal("large value corrupted")
		}
	})
}

func TestCompactionReducesL0(t *testing.T) {
	d := harness(t, false, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 4000; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 800))
		}
		// Let background threads quiesce: issue a few slow ops.
		for i := 0; i < 50; i++ {
			c.Sleep(10 * env.Millisecond)
		}
	})
	if l0 := len(d.levels[0]); l0 >= d.cfg.L0StallTrigger {
		t.Fatalf("L0 has %d tables after quiesce", l0)
	}
	var total int
	for _, lvl := range d.levels {
		total += len(lvl)
	}
	if total == 0 {
		t.Fatal("no tables at all")
	}
	// Deeper levels must hold data.
	deeper := 0
	for _, lvl := range d.levels[1:] {
		deeper += len(lvl)
	}
	if deeper == 0 {
		t.Fatal("compaction never moved data past L0")
	}
}

func TestMultiDiskStriping(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	var disks []device.Disk
	var sims []*device.SimDisk
	for i := 0; i < 4; i++ {
		dd := device.NewSimDisk(s, device.Optane(), nil)
		disks = append(disks, dd)
		sims = append(sims, dd)
	}
	cfg := DefaultConfig(disks...)
	cfg.MemtableBytes = 64 << 10
	cfg.TableTargetBytes = 32 << 10
	d := New(e, cfg)
	d.Start()
	e.Go("client", func(c env.Ctx) {
		for i := int64(0); i < 2000; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 800))
		}
		d.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	used := 0
	for _, dd := range sims {
		if dd.Counters().WriteOps > 0 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("only %d/4 disks used; striping broken", used)
	}
}

func TestStatsString(t *testing.T) {
	d := harness(t, false, nil, func(c env.Ctx, d *DB) {
		d.Put(c, kv.Key(1), kv.Value(1, 1, 100))
		d.Get(c, kv.Key(1))
	})
	st := d.Stats()
	if st.Puts != 1 || st.Gets != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if d.Name() == "" {
		t.Fatal("empty name")
	}
	_ = fmt.Sprintf("%+v", st)
}

func TestWALReplayRebuildsState(t *testing.T) {
	// Phase 1: write through the normal path (real framed WAL), then
	// "crash" by abandoning the DB.
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	ms := device.NewMemStore()
	disk := device.NewSimDisk(s, device.Optane(), ms)
	cfg := DefaultConfig(disk)
	cfg.MemtableBytes = 1 << 20 // keep everything in memtable+WAL (no flush)
	cfg.WALBufferBytes = 8 << 10
	d := New(e, cfg)
	d.Start()
	e.Go("writer", func(c env.Ctx) {
		for i := int64(0); i < 500; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 300))
		}
		for i := int64(0); i < 500; i += 5 {
			d.Put(c, kv.Key(i), kv.Value(i, 2, 300))
		}
		d.Delete(c, kv.Key(123))
		d.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Phase 2: fresh DB over the same bytes; replay the log.
	s2 := sim.New(2)
	e2 := sim.NewEnv(s2, 8)
	disk2 := device.NewSimDisk(s2, device.Optane(), ms)
	cfg2 := cfg
	cfg2.Disks = []device.Disk{disk2}
	d2 := New(e2, cfg2)
	var replayed int
	e2.Go("recover", func(c env.Ctx) {
		n, err := d2.ReplayWAL(c)
		if err != nil {
			t.Error(err)
			return
		}
		replayed = n
		d2.Start()
		// The unflushed tail (records still in the 8KB buffer at crash)
		// is legitimately lost — RocksDB in the paper's configuration has
		// exactly this window (§5.5). Verify a large prefix survived.
		present := 0
		for i := int64(0); i < 500; i++ {
			if _, ok := d2.Get(c, kv.Key(i)); ok {
				present++
			}
		}
		if present < 450 {
			t.Errorf("only %d/500 keys after replay", present)
		}
		// Replayed versions must be the newest logged ones.
		v, ok := d2.Get(c, kv.Key(5))
		if !ok || !bytes.Equal(v, kv.Value(5, 2, 300)) {
			t.Error("replay returned a stale version")
		}
		d2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if replayed < 550 {
		t.Fatalf("replayed only %d records", replayed)
	}
}

func TestWALReplayEmptyLog(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 2)
	d := New(e, DefaultConfig(device.NewSimDisk(s, device.Optane(), nil)))
	e.Go("recover", func(c env.Ctx) {
		n, err := d.ReplayWAL(c)
		if err != nil || n != 0 {
			t.Errorf("empty log replay: n=%d err=%v", n, err)
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
}
