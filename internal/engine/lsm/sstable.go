// Package lsm implements a leveled log-structured merge key-value store in
// the mold of RocksDB (§3.1 of the KVell paper): an in-memory memtable pair
// absorbing writes behind a write-ahead log, sorted immutable SSTables
// arranged in levels on disk, background flush and compaction threads, a
// shared block cache, and the write stalls that appear when compaction
// cannot keep up. A "fragmented" mode approximates PebblesDB: compactions
// move tables down without rewriting the destination level (except the last
// level), trading read/scan amplification for less compaction work.
//
// The engine is a baseline for the paper's evaluation: its design decisions
// (sorted order on disk, sequential I/O, one pread per uncached block read)
// are exactly the ones KVell abandons.
package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/slab"
)

// entryHeader: klen(2) vlen(4) seq(8) flags(1).
const entryHeader = 15

const flagTombstone = 1

// entry is one key-value record inside memtables and SSTables.
type entry struct {
	key       []byte
	value     []byte
	seq       uint64
	tombstone bool
}

func (e *entry) bytes() int { return entryHeader + len(e.key) + len(e.value) }

// bloom is a simple split double-hash Bloom filter (k=7).
type bloom struct {
	bits []uint64
	k    uint32
}

func newBloom(n int, bitsPerKey int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	return &bloom{bits: make([]uint64, (nbits+63)/64), k: 7}
}

func (b *bloom) nbits() uint64 { return uint64(len(b.bits)) * 64 }

func (b *bloom) add(key []byte) { b.addHash(kv.Hash64(key)) }

// addHash inserts a precomputed kv.Hash64 key hash, letting builders defer
// filter construction without retaining key copies.
func (b *bloom) addHash(h uint64) {
	d := h>>33 | h<<31
	for i := uint32(0); i < b.k; i++ {
		bit := h % b.nbits()
		b.bits[bit/64] |= 1 << (bit % 64)
		h += d
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h := kv.Hash64(key)
	d := h>>33 | h<<31
	for i := uint32(0); i < b.k; i++ {
		bit := h % b.nbits()
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
		h += d
	}
	return true
}

// block describes one data block of an SSTable: a page-aligned span holding
// whole entries (an entry larger than one page gets a dedicated block).
type block struct {
	firstKey []byte
	page     int64 // absolute device page
	pages    int32
	length   int32 // payload bytes
}

// sstable is an immutable sorted table. The block index, bloom filter and
// key range live in memory (as in RocksDB with pinned index/filter blocks);
// entry data lives on the device.
type sstable struct {
	id       int64
	disk     device.Disk
	basePage int64
	pages    int64
	blocks   []block
	filter   *bloom
	min, max []byte
	entries  int64
	dataLen  int64
	refs     int // guarded by the engine's version mutex
	freed    bool
	zombie   bool // dropped from the version while still referenced
}

func (t *sstable) overlaps(min, max []byte) bool {
	return bytes.Compare(t.min, max) <= 0 && bytes.Compare(min, t.max) <= 0
}

func (t *sstable) containsKey(key []byte) bool {
	return bytes.Compare(t.min, key) <= 0 && bytes.Compare(key, t.max) <= 0
}

// tableBuilder accumulates sorted entries and writes an SSTable. When arena
// is set, transient page images are arena-allocated: they are dead once
// finish has written them, so the owning thread can Reset the arena after
// the job and rebuild tables without churning the heap. Long-lived state
// (block firstKeys, min/max, the filter) never comes from the arena.
type tableBuilder struct {
	db           *DB
	disk         device.Disk
	arena        *slab.Arena
	buf          []byte // current block payload
	blocks       []block
	pageCur      int64 // next relative page
	pagesData    [][]byte
	filterHashes []uint64
	min, max     []byte
	entries      int64
	dataLen      int64
}

func (d *DB) newBuilder(disk device.Disk) *tableBuilder {
	return &tableBuilder{db: d, disk: disk}
}

func encodeEntry(dst []byte, e *entry) {
	binary.LittleEndian.PutUint16(dst[0:2], uint16(len(e.key)))
	binary.LittleEndian.PutUint32(dst[2:6], uint32(len(e.value)))
	binary.LittleEndian.PutUint64(dst[6:14], e.seq)
	dst[14] = 0
	if e.tombstone {
		dst[14] = flagTombstone
	}
	copy(dst[entryHeader:], e.key)
	copy(dst[entryHeader+len(e.key):], e.value)
}

// decodeEntry parses the entry at off in data, returning it and the next
// offset (ok=false at end or on a short buffer).
func decodeEntry(data []byte, off int) (e entry, next int, ok bool) {
	if off+entryHeader > len(data) {
		return entry{}, 0, false
	}
	klen := int(binary.LittleEndian.Uint16(data[off : off+2]))
	vlen := int(binary.LittleEndian.Uint32(data[off+2 : off+6]))
	if klen == 0 {
		return entry{}, 0, false // padding
	}
	end := off + entryHeader + klen + vlen
	if end > len(data) {
		return entry{}, 0, false
	}
	e.seq = binary.LittleEndian.Uint64(data[off+6 : off+14])
	e.tombstone = data[off+14]&flagTombstone != 0
	e.key = data[off+entryHeader : off+entryHeader+klen]
	e.value = data[off+entryHeader+klen : end]
	return e, end, true
}

// add appends an entry (keys must arrive in sorted order).
func (b *tableBuilder) add(e *entry) {
	n := e.bytes()
	if len(b.buf) > 0 && len(b.buf)+n > device.PageSize {
		b.finishBlock()
	}
	if len(b.buf) == 0 {
		b.blocks = append(b.blocks, block{firstKey: append([]byte(nil), e.key...), page: b.pageCur})
	}
	off := len(b.buf)
	b.buf = append(b.buf, make([]byte, n)...)
	encodeEntry(b.buf[off:], e)
	b.filterHashes = append(b.filterHashes, kv.Hash64(e.key))
	if b.min == nil {
		b.min = append([]byte(nil), e.key...)
	}
	b.max = append(b.max[:0], e.key...)
	b.entries++
	b.dataLen += int64(n)
}

func (b *tableBuilder) finishBlock() {
	if len(b.buf) == 0 {
		return
	}
	pages := (len(b.buf) + device.PageSize - 1) / device.PageSize
	var padded []byte
	if b.arena != nil {
		padded = b.arena.Alloc(pages * device.PageSize)
		n := copy(padded, b.buf)
		clear(padded[n:]) // tail must decode as padding
	} else {
		padded = make([]byte, pages*device.PageSize)
		copy(padded, b.buf)
	}
	b.pagesData = append(b.pagesData, padded)
	blk := &b.blocks[len(b.blocks)-1]
	blk.pages = int32(pages)
	blk.length = int32(len(b.buf))
	b.pageCur += int64(pages)
	b.buf = b.buf[:0]
}

// estimatedBytes returns how much data the builder holds.
func (b *tableBuilder) estimatedBytes() int64 { return b.dataLen }

// finish writes the table to disk. When c is non-nil the write is timed:
// CPU is charged for index/filter construction and the pages go through the
// device as large sequential writes. When c is nil (bulk load) pages are
// installed directly into the backing store.
func (b *tableBuilder) finish(c env.Ctx) *sstable {
	b.finishBlock()
	if b.entries == 0 {
		return nil
	}
	t := &sstable{
		id:      b.db.nextTableID(),
		disk:    b.disk,
		pages:   b.pageCur,
		blocks:  b.blocks,
		min:     b.min,
		max:     append([]byte(nil), b.max...),
		entries: b.entries,
		dataLen: b.dataLen,
	}
	t.filter = newBloom(len(b.filterHashes), b.db.cfg.BloomBitsPerKey)
	for _, h := range b.filterHashes {
		t.filter.addHash(h)
	}
	t.basePage = b.db.alloc(b.disk, b.pageCur)
	for i := range t.blocks {
		t.blocks[i].page += t.basePage
	}
	if c != nil {
		c.CPU(costs.IndexBuildBytes(int(b.dataLen)))
	}
	// Write out sequentially.
	page := t.basePage
	for _, pd := range b.pagesData {
		if c != nil {
			b.db.writePagesTimed(c, b.disk, page, pd)
		} else {
			if err := storeOf(b.disk).WritePages(page, pd); err != nil {
				panic(err)
			}
		}
		page += int64(len(pd) / device.PageSize)
	}
	return t
}

func storeOf(d device.Disk) device.Store {
	return d.(interface{ Store() device.Store }).Store()
}

// findBlock returns the index of the block that may contain key.
func (t *sstable) findBlock(key []byte) int {
	i := sort.Search(len(t.blocks), func(i int) bool {
		return bytes.Compare(t.blocks[i].firstKey, key) > 0
	})
	return i - 1
}

func (t *sstable) String() string {
	return fmt.Sprintf("table-%d[%s..%s %dB]", t.id, t.min, t.max, t.dataLen)
}
