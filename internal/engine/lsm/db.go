package lsm

import (
	"bytes"
	"fmt"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/pagecache"
	"kvell/internal/trace"
)

// Config describes an LSM engine instance. Defaults mirror the paper's
// setup (§6.2) scaled by the harness to the dataset: two memory components,
// five levels, a 1MB write-ahead-log buffer, and a block cache sized to a
// third of the data.
type Config struct {
	Disks               []device.Disk
	MemtableBytes       int64
	L0CompactionTrigger int
	// L0SlowdownTrigger delays writers (RocksDB's delayed-write-rate
	// band); L0StallTrigger stops them entirely.
	L0SlowdownTrigger int
	L0StallTrigger    int
	Levels            int
	BaseLevelBytes    int64
	LevelMultiplier   int64
	TableTargetBytes  int64
	BlockCacheBytes   int64
	WALBufferBytes    int64
	CompactionThreads int
	BloomBitsPerKey   int
	// Fragmented selects the PebblesDB-like mode: compactions re-partition
	// and move tables down without merging into the destination level
	// (except the last), reducing write amplification at the price of
	// overlapping tables (read and scan amplification).
	Fragmented bool
	// Durable makes the WAL crash-safe: every record's chunk is written
	// and completed before the operation returns (instead of buffering up
	// to WALBufferBytes), chunks carry an FNV-64 checksum so replay detects
	// torn tails, and BulkLoad logs its items so ReplayWAL can rebuild the
	// whole store on a fresh DB. Off by default — it changes I/O timing,
	// and the simulator's schedule goldens are recorded without it.
	Durable bool
	// Tracer, if set, receives background maintenance spans (flushes,
	// compactions). Purely observational.
	Tracer *trace.Tracer
}

// DefaultConfig returns a configuration scaled for datasets in the
// hundreds of megabytes (the harness's scaled-down experiments).
func DefaultConfig(disks ...device.Disk) Config {
	return Config{
		Disks:               disks,
		MemtableBytes:       4 << 20,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   8,
		L0StallTrigger:      16,
		Levels:              5,
		BaseLevelBytes:      16 << 20,
		LevelMultiplier:     10,
		TableTargetBytes:    2 << 20,
		BlockCacheBytes:     64 << 20,
		WALBufferBytes:      1 << 20,
		CompactionThreads:   2,
		BloomBitsPerKey:     10,
	}
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Gets, Puts, Scans      int64
	Flushes                int64
	Compactions            int64
	CompactionBytesRead    int64
	CompactionBytesWritten int64
	WriteStalls            int64
	StallTime              env.Time
	BlockCacheHits         int64
	BlockCacheMisses       int64
}

// DB is the LSM engine.
type DB struct {
	env  env.Env
	cfg  Config
	name string

	// Write path (single writer lock, like RocksDB's write group leader).
	writeMu   env.Mutex
	writeCond env.Cond // flush/compaction progress wakes stalled writers
	mem       *memtable
	imm       *memtable // immutable memtable being flushed (nil when none)
	seq       uint64
	walRecs   []byte // buffered framed log records (see wal.go)
	walPage   int64

	// Version state.
	verMu    env.Mutex
	verCond  env.Cond // work signal for background threads
	levels   [][]*sstable
	busy     map[int64]bool // table id -> selected for compaction
	tableID  int64
	closing  bool
	candPool [][]*sstable // recycled candidate slices (guarded by verMu)

	// Block cache (shared; the contended structure §3.1 calls out).
	cacheMu env.Mutex
	cache   *pagecache.Cache

	allocs   []*device.Allocator
	diskNext int

	// Recycled synchronous-I/O waiters (host-only state: procs are
	// cooperatively scheduled and pop/push contain no yield points, so the
	// unlocked accesses cannot interleave).
	ioFree []*ioWaiter

	stats Stats
}

// New returns an LSM engine; mode "rocks" (leveled) or "pebbles"
// (fragmented) only affects the display name — set cfg.Fragmented for the
// behavior itself.
func New(e env.Env, cfg Config) *DB {
	if len(cfg.Disks) == 0 {
		panic("lsm: no disks")
	}
	if cfg.Levels < 2 {
		cfg.Levels = 5
	}
	d := &DB{env: e, cfg: cfg, mem: newMemtable(), seq: 1, busy: map[int64]bool{}}
	d.name = "RocksDB-like"
	if cfg.Fragmented {
		d.name = "PebblesDB-like"
	}
	d.writeMu = e.NewMutex()
	d.writeCond = e.NewCond(d.writeMu)
	d.verMu = e.NewMutex()
	d.verCond = e.NewCond(d.verMu)
	d.cacheMu = e.NewMutex()
	cap := int(cfg.BlockCacheBytes / device.PageSize)
	if cap < 16 {
		cap = 16
	}
	d.cache = pagecache.New(cap, pagecache.IndexHash)
	d.levels = make([][]*sstable, cfg.Levels)
	for range cfg.Disks {
		// Reserve the first pages for the WAL region.
		d.allocs = append(d.allocs, device.NewAllocator(1<<20))
	}
	return d
}

// Name implements kv.Engine.
func (d *DB) Name() string { return d.name }

// Stats returns a snapshot of counters.
func (d *DB) Stats() Stats { return d.stats }

func (d *DB) nextTableID() int64 { d.tableID++; return d.tableID }

// alloc reserves pages on the given disk.
func (d *DB) alloc(disk device.Disk, pages int64) int64 {
	for i, dd := range d.cfg.Disks {
		if dd == disk {
			return d.allocs[i].Alloc(pages)
		}
	}
	panic("lsm: unknown disk")
}

// cacheKey qualifies a page number with its disk for the shared block
// cache: the per-disk allocators hand out overlapping page numbers, so raw
// pages from different disks would collide (a single-disk DB is unaffected:
// the disk index is 0 and the key equals the page).
func (d *DB) cacheKey(disk device.Disk, page int64) int64 {
	for i, dd := range d.cfg.Disks {
		if dd == disk {
			return int64(i)<<40 | page
		}
	}
	panic("lsm: unknown disk")
}

func (d *DB) free(c env.Ctx, t *sstable) {
	if t.freed {
		return
	}
	t.freed = true
	// The allocator may hand these pages to a future table, so any cached
	// blocks at these page numbers must be dropped first.
	d.cacheMu.Lock(c)
	for i := range t.blocks {
		d.cache.Remove(d.cacheKey(t.disk, t.blocks[i].page))
	}
	d.cacheMu.Unlock(c)
	for i, dd := range d.cfg.Disks {
		if dd == t.disk {
			d.allocs[i].Free(t.basePage, t.pages)
		}
	}
	if ms, ok := storeOf(t.disk).(*device.MemStore); ok {
		ms.Free(t.basePage, t.pages)
	}
}

// nextDisk round-robins new tables across disks.
func (d *DB) nextDisk() device.Disk {
	disk := d.cfg.Disks[d.diskNext%len(d.cfg.Disks)]
	d.diskNext++
	return disk
}

// ---- synchronous device I/O (read/write syscalls, one per call) ----

type ioWaiter struct {
	mu     env.Mutex
	cond   env.Cond
	done   bool
	req    device.Request
	doneFn func()
}

func (w *ioWaiter) complete() {
	w.mu.Lock(nil)
	w.done = true
	w.mu.Unlock(nil)
	w.cond.Broadcast(nil)
}

// getIOWaiter pops a recycled waiter — mutex, cond, bound completion
// callback and request record included — or builds one. The device copies
// the request's fields at submission, so the record is free for reuse once
// the wait returns.
func (d *DB) getIOWaiter() *ioWaiter {
	if n := len(d.ioFree); n > 0 {
		w := d.ioFree[n-1]
		d.ioFree = d.ioFree[:n-1]
		w.done = false
		return w
	}
	w := &ioWaiter{mu: d.env.NewMutex()}
	w.cond = d.env.NewCond(w.mu)
	w.doneFn = w.complete
	return w
}

func (d *DB) readPagesSync(c env.Ctx, disk device.Disk, page int64, buf []byte) {
	// pread: the per-block buffered-read path §6.3.1 profiles (syscall +
	// copy + checksum per byte).
	c.CPU(costs.Syscall + costs.PreadBytes(len(buf)))
	w := d.getIOWaiter()
	w.req = device.Request{Op: device.Read, Page: page, Buf: buf, Done: w.doneFn, Trace: trace.FromCtx(c)}
	disk.Submit(&w.req)
	w.mu.Lock(c)
	for !w.done {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
	w.req.Buf = nil
	d.ioFree = append(d.ioFree, w)
}

func (d *DB) writePagesTimed(c env.Ctx, disk device.Disk, page int64, data []byte) {
	c.CPU(costs.Syscall + costs.PwriteBytes(len(data)))
	w := d.getIOWaiter()
	w.req = device.Request{Op: device.Write, Page: page, Buf: data, Done: w.doneFn, Trace: trace.FromCtx(c)}
	disk.Submit(&w.req)
	w.mu.Lock(c)
	for !w.done {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
	w.req.Buf = nil
	d.ioFree = append(d.ioFree, w)
}

// ---- engine lifecycle ----

// Start launches the flush thread and compaction threads.
func (d *DB) Start() {
	d.env.Go(d.name+"-flush", d.flushLoop)
	for i := 0; i < d.cfg.CompactionThreads; i++ {
		d.env.Go(fmt.Sprintf("%s-compact-%d", d.name, i), d.compactLoop)
	}
}

// Stop asks background threads to exit.
func (d *DB) Stop(c env.Ctx) {
	d.writeMu.Lock(c)
	d.verMu.Lock(c)
	d.closing = true
	d.verMu.Unlock(c)
	d.writeMu.Unlock(c)
	d.verCond.Broadcast(c)
	d.writeCond.Broadcast(c)
}

// BulkLoad implements kv.Engine: builds last-level tables directly. In
// fragmented (PebblesDB-like) mode the loaded keyspace is striped across
// several overlapping table families, reproducing the fragment overlap a
// real insert-order load leaves behind (scans must merge every family).
func (d *DB) BulkLoad(items []kv.Item) error {
	if d.cfg.Durable {
		d.logBulkItems(items)
	}
	last := len(d.levels) - 1
	stripes := 1
	if d.cfg.Fragmented {
		stripes = 4
	}
	builders := make([]*tableBuilder, stripes)
	for i := range builders {
		builders[i] = d.newBuilder(d.nextDisk())
	}
	flush := func(i int) {
		if t := builders[i].finish(nil); t != nil {
			d.levels[last] = append(d.levels[last], t)
		}
		builders[i] = d.newBuilder(d.nextDisk())
	}
	for n, it := range items {
		i := n % stripes
		builders[i].add(&entry{key: it.Key, value: it.Value, seq: 0})
		if builders[i].estimatedBytes() >= d.cfg.TableTargetBytes {
			flush(i)
		}
	}
	for i := range builders {
		flush(i)
	}
	if !d.cfg.Fragmented {
		sort.Slice(d.levels[last], func(i, j int) bool {
			return bytes.Compare(d.levels[last][i].min, d.levels[last][j].min) < 0
		})
	}
	return nil
}

// Submit implements kv.Engine: operations run on the calling thread
// (library model, as with RocksDB under YCSB).
func (d *DB) Submit(c env.Ctx, r *kv.Request) {
	switch r.Op {
	case kv.OpGet:
		v, ok := d.getInto(c, r.Key, &r.ValueBuf)
		r.Done(kv.Result{Found: ok, Value: v})
	case kv.OpUpdate:
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpDelete:
		d.Delete(c, r.Key)
		r.Done(kv.Result{Found: true})
	case kv.OpRMW:
		_, _ = d.getInto(c, r.Key, &r.ValueBuf)
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpScan:
		items := d.scanInto(c, r.Key, r.ScanCount, r.ScanBuf[:0])
		r.ScanBuf = items
		r.Done(kv.Result{Found: len(items) > 0, ScanN: len(items)})
	}
}

// ---- write path ----

// Put durably... buffers the write: like the configured RocksDB baseline
// (§6.2), the WAL buffer is 1MB and synced infrequently, so persistence is
// batched — KVell §5.5 contrasts its own guarantee with exactly this.
func (d *DB) Put(c env.Ctx, key, value []byte) {
	d.write(c, key, value, false)
}

// Delete writes a tombstone.
func (d *DB) Delete(c env.Ctx, key []byte) {
	d.write(c, key, nil, true)
}

func (d *DB) write(c env.Ctx, key, value []byte, tombstone bool) {
	c.CPU(costs.LockUncontended)
	d.writeMu.Lock(c)
	d.stats.Puts++

	// WAL append (real framed records, buffered; the group leader writes
	// a chunk while holding the write lock — the log bottleneck §3.1
	// describes). See wal.go; ReplayWAL rebuilds state from this log.
	d.seq++
	t0 := c.Now()
	d.walAppend(c, key, value, tombstone)
	trace.FromCtx(c).Span("wal", t0, c.Now())

	// Memtable insert.
	rec := int64(entryHeader + len(key) + len(value))
	e := entry{key: append([]byte(nil), key...), seq: d.seq, tombstone: tombstone}
	if !tombstone {
		e.value = append([]byte(nil), value...)
	}
	c.CPU(d.mem.lookupCost() + costs.MemBytes(int(rec)))
	d.mem.put(e)

	// Memtable rotation and stalls.
	for d.mem.bytes >= d.cfg.MemtableBytes {
		if d.imm == nil {
			d.imm = d.mem
			d.mem = newMemtable()
			d.writeCond.Broadcast(c) // wake the flush thread
			break
		}
		// Flush behind: stall the writer (§3.2: "writer threads spend
		// ~22% of their time stalled waiting for the memory component to
		// be flushed").
		d.stall(c)
	}
	// L0 pressure: first a slowdown band (RocksDB's delayed write rate),
	// then a hard stall (§3.2).
	if n := d.l0Count(); n >= d.cfg.L0SlowdownTrigger && n < d.cfg.L0StallTrigger {
		ts := c.Now()
		d.writeMu.Unlock(c)
		c.Sleep(env.Millisecond)
		d.writeMu.Lock(c)
		trace.FromCtx(c).Add(trace.CompStall, ts, c.Now())
	}
	for d.l0Count() >= d.cfg.L0StallTrigger {
		d.stall(c)
	}
	d.writeMu.Unlock(c)
}

// stall blocks the writer until background progress, accounting stall time.
func (d *DB) stall(c env.Ctx) {
	d.stats.WriteStalls++
	t0 := c.Now()
	d.writeCond.Wait(c)
	d.stats.StallTime += c.Now() - t0
	trace.FromCtx(c).Add(trace.CompStall, t0, c.Now())
}

func (d *DB) l0Count() int {
	return len(d.levels[0])
}

// ---- read path ----

// Get returns the newest value for key.
func (d *DB) Get(c env.Ctx, key []byte) ([]byte, bool) {
	return d.getInto(c, key, nil)
}

// getInto is Get with optional caller-owned value scratch: when vdst is
// non-nil the returned value is backed by *vdst (grown as needed) and is
// only valid until the caller reuses the scratch.
func (d *DB) getInto(c env.Ctx, key []byte, vdst *[]byte) ([]byte, bool) {
	d.stats.Gets++
	// Memtables.
	c.CPU(costs.LockUncontended)
	d.writeMu.Lock(c)
	c.CPU(d.mem.lookupCost())
	if e, ok := d.mem.get(key); ok {
		d.writeMu.Unlock(c)
		return copyValInto(e, vdst)
	}
	if d.imm != nil {
		c.CPU(d.imm.lookupCost())
		if e, ok := d.imm.get(key); ok {
			d.writeMu.Unlock(c)
			return copyValInto(e, vdst)
		}
	}
	d.writeMu.Unlock(c)

	// Tables, newest first.
	cands := d.snapshotCandidates(c, key)
	defer d.unref(c, cands)
	if d.cfg.Fragmented {
		// Overlapping fragments: search all, keep newest seq.
		var best entry
		haveBest := false
		for _, t := range cands {
			if e, ok := d.searchTable(c, t, key); ok {
				if !haveBest || e.seq > best.seq {
					best = e
					haveBest = true
				}
			}
		}
		if !haveBest {
			return nil, false
		}
		return copyValInto(best, vdst)
	}
	for _, t := range cands {
		if e, ok := d.searchTable(c, t, key); ok {
			return copyValInto(e, vdst)
		}
	}
	return nil, false
}

func copyValInto(e entry, vdst *[]byte) ([]byte, bool) {
	if e.tombstone {
		return nil, false
	}
	n := len(e.value)
	if vdst != nil && *vdst != nil && cap(*vdst) >= n {
		v := (*vdst)[:n]
		copy(v, e.value)
		return v, true
	}
	v := append([]byte(nil), e.value...)
	if vdst != nil && v != nil {
		*vdst = v
	}
	return v, true
}

// snapshotCandidates collects, under the version lock, the tables that may
// contain key, ordered newest-first, with references taken.
func (d *DB) snapshotCandidates(c env.Ctx, key []byte) []*sstable {
	c.CPU(costs.LockUncontended)
	d.verMu.Lock(c)
	var out []*sstable
	if n := len(d.candPool); n > 0 {
		out = d.candPool[n-1]
		d.candPool = d.candPool[:n-1]
	}
	for li, lvl := range d.levels {
		if li == 0 || d.cfg.Fragmented {
			// Overlapping: newest (latest id) first.
			for i := len(lvl) - 1; i >= 0; i-- {
				if lvl[i].containsKey(key) {
					out = append(out, lvl[i])
				}
			}
			continue
		}
		// Disjoint sorted level: binary search.
		i := sort.Search(len(lvl), func(i int) bool {
			return bytes.Compare(lvl[i].max, key) >= 0
		})
		if i < len(lvl) && lvl[i].containsKey(key) {
			out = append(out, lvl[i])
		}
	}
	for _, t := range out {
		t.refs++
	}
	d.verMu.Unlock(c)
	return out
}

func (d *DB) unref(c env.Ctx, tables []*sstable) {
	d.verMu.Lock(c)
	for _, t := range tables {
		t.refs--
		if t.refs == 0 && t.zombie {
			d.free(c, t) // dropped by a compaction while we were reading
		}
	}
	if cap(tables) > 0 {
		clear(tables) // drop table pointers so pooled slices don't pin them
		d.candPool = append(d.candPool, tables[:0])
	}
	d.verMu.Unlock(c)
}

// searchTable probes one table for key.
func (d *DB) searchTable(c env.Ctx, t *sstable, key []byte) (entry, bool) {
	c.CPU(costs.BloomCheck)
	if !t.filter.mayContain(key) {
		return entry{}, false
	}
	bi := t.findBlock(key)
	if bi < 0 {
		return entry{}, false
	}
	c.CPU(costs.BTreeNode * 3) // block index binary search
	data := d.blockData(c, t, bi)
	off := 0
	for {
		e, next, ok := decodeEntry(data, off)
		if !ok {
			return entry{}, false
		}
		c.CPU(costs.IterStep)
		cmp := bytes.Compare(e.key, key)
		if cmp == 0 {
			return e, true
		}
		if cmp > 0 {
			return entry{}, false
		}
		off = next
	}
}

// blockData returns a block's payload via the shared block cache.
func (d *DB) blockData(c env.Ctx, t *sstable, bi int) []byte {
	blk := &t.blocks[bi]
	key := d.cacheKey(t.disk, blk.page)
	c.CPU(costs.LockUncontended)
	d.cacheMu.Lock(c)
	c.CPU(d.cache.LookupCost())
	if data := d.cache.Get(key); data != nil {
		d.stats.BlockCacheHits++
		d.cacheMu.Unlock(c)
		return data[:blk.length]
	}
	d.stats.BlockCacheMisses++
	d.cacheMu.Unlock(c)

	buf := make([]byte, int(blk.pages)*device.PageSize)
	d.readPagesSync(c, t.disk, blk.page, buf)

	d.cacheMu.Lock(c)
	d.cache.Insert(key, buf)
	c.CPU(d.cache.InsertCost())
	d.cacheMu.Unlock(c)
	return buf[:blk.length]
}

// ---- scans ----

// Scan returns up to count live items with key >= start in key order,
// merging the memtables and every overlapping table.
func (d *DB) Scan(c env.Ctx, start []byte, count int) []kv.Item {
	return d.scanInto(c, start, count, nil)
}

// scanInto is Scan with a caller-owned destination: dst's slots (and their
// Key/Value capacity) are reused via kv.AppendItem, so hot-path callers
// that only count the results recycle one buffer across scans.
func (d *DB) scanInto(c env.Ctx, start []byte, count int, dst []kv.Item) []kv.Item {
	d.stats.Scans++
	var sources []*scanSource
	c.CPU(costs.LockUncontended)
	d.writeMu.Lock(c)
	sources = append(sources, sliceSource(d.mem.firstN(start, count)))
	if d.imm != nil {
		sources = append(sources, sliceSource(d.imm.firstN(start, count)))
	}
	d.writeMu.Unlock(c)

	// Snapshot overlapping tables (into a recycled candidate slice; unref
	// returns it to the pool).
	d.verMu.Lock(c)
	var tabs []*sstable
	if n := len(d.candPool); n > 0 {
		tabs = d.candPool[n-1]
		d.candPool = d.candPool[:n-1]
	}
	for _, lvl := range d.levels {
		for _, t := range lvl {
			if bytes.Compare(t.max, start) >= 0 {
				t.refs++
				tabs = append(tabs, t)
			}
		}
	}
	d.verMu.Unlock(c)
	defer d.unref(c, tabs)
	for _, t := range tabs {
		sources = append(sources, d.tableSource(c, t, start))
	}

	out := mergeScan(c, sources, count, dst)
	return out
}

// scanSource is a peekable stream of entries in key order. The peeked
// entry is held by value: boxing it would allocate once per entry walked.
type scanSource struct {
	cur  entry
	ok   bool
	eof  bool
	next func() (entry, bool)
}

func (s *scanSource) peek() (entry, bool) {
	if !s.ok && !s.eof {
		if e, got := s.next(); got {
			s.cur, s.ok = e, true
		} else {
			s.eof = true
		}
	}
	return s.cur, s.ok
}

func (s *scanSource) advance() { s.ok = false }

func sliceSource(ents []entry) *scanSource {
	i := 0
	return &scanSource{next: func() (entry, bool) {
		if i >= len(ents) {
			return entry{}, false
		}
		e := ents[i]
		i++
		return e, true
	}}
}

// tableSource streams a table's entries from the first block that may
// contain start, reading blocks through the cache as it advances. Because
// data is sorted on disk, each ~4KB block yields several items — the
// advantage Figure 10 quantifies for small items.
func (d *DB) tableSource(c env.Ctx, t *sstable, start []byte) *scanSource {
	bi := t.findBlock(start)
	if bi < 0 {
		bi = 0
	}
	var data []byte
	off := 0
	return &scanSource{next: func() (entry, bool) {
		for {
			if data == nil {
				if bi >= len(t.blocks) {
					return entry{}, false
				}
				data = d.blockData(c, t, bi)
				off = 0
			}
			e, next, ok := decodeEntry(data, off)
			if !ok {
				data = nil
				bi++
				continue
			}
			off = next
			c.CPU(costs.IterStep)
			if bytes.Compare(e.key, start) < 0 {
				continue
			}
			return e, true
		}
	}}
}

// mergeScan merges sources by (key asc, seq desc), deduplicates and drops
// tombstones, appending up to count items to dst (slot capacity reused,
// see kv.AppendItem).
func mergeScan(c env.Ctx, sources []*scanSource, count int, dst []kv.Item) []kv.Item {
	out := dst
	var lastKey []byte
	for len(out) < count {
		// Pick the smallest key; among equal keys the highest seq.
		var best *scanSource
		var bestE entry
		for _, s := range sources {
			e, ok := s.peek()
			if !ok {
				continue
			}
			if best == nil {
				best, bestE = s, e
				continue
			}
			cmp := bytes.Compare(e.key, bestE.key)
			if cmp < 0 || (cmp == 0 && e.seq > bestE.seq) {
				best, bestE = s, e
			}
		}
		if best == nil {
			break
		}
		best.advance()
		c.CPU(costs.IterStep)
		if lastKey != nil && bytes.Equal(bestE.key, lastKey) {
			continue // older duplicate
		}
		lastKey = append(lastKey[:0], bestE.key...)
		if bestE.tombstone {
			continue
		}
		out = kv.AppendItem(out, bestE.key, bestE.value)
	}
	return out
}
