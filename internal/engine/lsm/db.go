package lsm

import (
	"bytes"
	"fmt"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/pagecache"
)

// Config describes an LSM engine instance. Defaults mirror the paper's
// setup (§6.2) scaled by the harness to the dataset: two memory components,
// five levels, a 1MB write-ahead-log buffer, and a block cache sized to a
// third of the data.
type Config struct {
	Disks               []device.Disk
	MemtableBytes       int64
	L0CompactionTrigger int
	// L0SlowdownTrigger delays writers (RocksDB's delayed-write-rate
	// band); L0StallTrigger stops them entirely.
	L0SlowdownTrigger int
	L0StallTrigger    int
	Levels            int
	BaseLevelBytes    int64
	LevelMultiplier   int64
	TableTargetBytes  int64
	BlockCacheBytes   int64
	WALBufferBytes    int64
	CompactionThreads int
	BloomBitsPerKey   int
	// Fragmented selects the PebblesDB-like mode: compactions re-partition
	// and move tables down without merging into the destination level
	// (except the last), reducing write amplification at the price of
	// overlapping tables (read and scan amplification).
	Fragmented bool
}

// DefaultConfig returns a configuration scaled for datasets in the
// hundreds of megabytes (the harness's scaled-down experiments).
func DefaultConfig(disks ...device.Disk) Config {
	return Config{
		Disks:               disks,
		MemtableBytes:       4 << 20,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   8,
		L0StallTrigger:      16,
		Levels:              5,
		BaseLevelBytes:      16 << 20,
		LevelMultiplier:     10,
		TableTargetBytes:    2 << 20,
		BlockCacheBytes:     64 << 20,
		WALBufferBytes:      1 << 20,
		CompactionThreads:   2,
		BloomBitsPerKey:     10,
	}
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Gets, Puts, Scans      int64
	Flushes                int64
	Compactions            int64
	CompactionBytesRead    int64
	CompactionBytesWritten int64
	WriteStalls            int64
	StallTime              env.Time
	BlockCacheHits         int64
	BlockCacheMisses       int64
}

// DB is the LSM engine.
type DB struct {
	env  env.Env
	cfg  Config
	name string

	// Write path (single writer lock, like RocksDB's write group leader).
	writeMu   env.Mutex
	writeCond env.Cond // flush/compaction progress wakes stalled writers
	mem       *memtable
	imm       *memtable // immutable memtable being flushed (nil when none)
	seq       uint64
	walRecs   []byte // buffered framed log records (see wal.go)
	walPage   int64

	// Version state.
	verMu   env.Mutex
	verCond env.Cond // work signal for background threads
	levels  [][]*sstable
	busy    map[int64]bool // table id -> selected for compaction
	tableID int64
	closing bool

	// Block cache (shared; the contended structure §3.1 calls out).
	cacheMu env.Mutex
	cache   *pagecache.Cache

	allocs   []*device.Allocator
	diskNext int

	stats Stats
}

// New returns an LSM engine; mode "rocks" (leveled) or "pebbles"
// (fragmented) only affects the display name — set cfg.Fragmented for the
// behavior itself.
func New(e env.Env, cfg Config) *DB {
	if len(cfg.Disks) == 0 {
		panic("lsm: no disks")
	}
	if cfg.Levels < 2 {
		cfg.Levels = 5
	}
	d := &DB{env: e, cfg: cfg, mem: newMemtable(), seq: 1, busy: map[int64]bool{}}
	d.name = "RocksDB-like"
	if cfg.Fragmented {
		d.name = "PebblesDB-like"
	}
	d.writeMu = e.NewMutex()
	d.writeCond = e.NewCond(d.writeMu)
	d.verMu = e.NewMutex()
	d.verCond = e.NewCond(d.verMu)
	d.cacheMu = e.NewMutex()
	cap := int(cfg.BlockCacheBytes / device.PageSize)
	if cap < 16 {
		cap = 16
	}
	d.cache = pagecache.New(cap, pagecache.IndexHash)
	d.levels = make([][]*sstable, cfg.Levels)
	for range cfg.Disks {
		// Reserve the first pages for the WAL region.
		d.allocs = append(d.allocs, device.NewAllocator(1<<20))
	}
	return d
}

// Name implements kv.Engine.
func (d *DB) Name() string { return d.name }

// Stats returns a snapshot of counters.
func (d *DB) Stats() Stats { return d.stats }

func (d *DB) nextTableID() int64 { d.tableID++; return d.tableID }

// alloc reserves pages on the given disk.
func (d *DB) alloc(disk device.Disk, pages int64) int64 {
	for i, dd := range d.cfg.Disks {
		if dd == disk {
			return d.allocs[i].Alloc(pages)
		}
	}
	panic("lsm: unknown disk")
}

func (d *DB) free(c env.Ctx, t *sstable) {
	if t.freed {
		return
	}
	t.freed = true
	// The allocator may hand these pages to a future table, so any cached
	// blocks at these page numbers must be dropped first.
	d.cacheMu.Lock(c)
	for i := range t.blocks {
		d.cache.Remove(t.blocks[i].page)
	}
	d.cacheMu.Unlock(c)
	for i, dd := range d.cfg.Disks {
		if dd == t.disk {
			d.allocs[i].Free(t.basePage, t.pages)
		}
	}
	if ms, ok := storeOf(t.disk).(*device.MemStore); ok {
		ms.Free(t.basePage, t.pages)
	}
}

// nextDisk round-robins new tables across disks.
func (d *DB) nextDisk() device.Disk {
	disk := d.cfg.Disks[d.diskNext%len(d.cfg.Disks)]
	d.diskNext++
	return disk
}

// ---- synchronous device I/O (read/write syscalls, one per call) ----

type ioWaiter struct {
	mu   env.Mutex
	cond env.Cond
	done bool
}

func (d *DB) readPagesSync(c env.Ctx, disk device.Disk, page int64, buf []byte) {
	// pread: the per-block buffered-read path §6.3.1 profiles (syscall +
	// copy + checksum per byte).
	c.CPU(costs.Syscall + costs.PreadBytes(len(buf)))
	w := &ioWaiter{mu: d.env.NewMutex()}
	w.cond = d.env.NewCond(w.mu)
	disk.Submit(&device.Request{Op: device.Read, Page: page, Buf: buf, Done: func() {
		w.mu.Lock(nil)
		w.done = true
		w.mu.Unlock(nil)
		w.cond.Broadcast(nil)
	}})
	w.mu.Lock(c)
	for !w.done {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
}

func (d *DB) writePagesTimed(c env.Ctx, disk device.Disk, page int64, data []byte) {
	c.CPU(costs.Syscall + costs.PwriteBytes(len(data)))
	w := &ioWaiter{mu: d.env.NewMutex()}
	w.cond = d.env.NewCond(w.mu)
	disk.Submit(&device.Request{Op: device.Write, Page: page, Buf: data, Done: func() {
		w.mu.Lock(nil)
		w.done = true
		w.mu.Unlock(nil)
		w.cond.Broadcast(nil)
	}})
	w.mu.Lock(c)
	for !w.done {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
}

// ---- engine lifecycle ----

// Start launches the flush thread and compaction threads.
func (d *DB) Start() {
	d.env.Go(d.name+"-flush", d.flushLoop)
	for i := 0; i < d.cfg.CompactionThreads; i++ {
		d.env.Go(fmt.Sprintf("%s-compact-%d", d.name, i), d.compactLoop)
	}
}

// Stop asks background threads to exit.
func (d *DB) Stop(c env.Ctx) {
	d.writeMu.Lock(c)
	d.verMu.Lock(c)
	d.closing = true
	d.verMu.Unlock(c)
	d.writeMu.Unlock(c)
	d.verCond.Broadcast(c)
	d.writeCond.Broadcast(c)
}

// BulkLoad implements kv.Engine: builds last-level tables directly. In
// fragmented (PebblesDB-like) mode the loaded keyspace is striped across
// several overlapping table families, reproducing the fragment overlap a
// real insert-order load leaves behind (scans must merge every family).
func (d *DB) BulkLoad(items []kv.Item) error {
	last := len(d.levels) - 1
	stripes := 1
	if d.cfg.Fragmented {
		stripes = 4
	}
	builders := make([]*tableBuilder, stripes)
	for i := range builders {
		builders[i] = d.newBuilder(d.nextDisk())
	}
	flush := func(i int) {
		if t := builders[i].finish(nil); t != nil {
			d.levels[last] = append(d.levels[last], t)
		}
		builders[i] = d.newBuilder(d.nextDisk())
	}
	for n, it := range items {
		i := n % stripes
		builders[i].add(&entry{key: it.Key, value: it.Value, seq: 0})
		if builders[i].estimatedBytes() >= d.cfg.TableTargetBytes {
			flush(i)
		}
	}
	for i := range builders {
		flush(i)
	}
	if !d.cfg.Fragmented {
		sort.Slice(d.levels[last], func(i, j int) bool {
			return bytes.Compare(d.levels[last][i].min, d.levels[last][j].min) < 0
		})
	}
	return nil
}

// Submit implements kv.Engine: operations run on the calling thread
// (library model, as with RocksDB under YCSB).
func (d *DB) Submit(c env.Ctx, r *kv.Request) {
	switch r.Op {
	case kv.OpGet:
		v, ok := d.Get(c, r.Key)
		r.Done(kv.Result{Found: ok, Value: v})
	case kv.OpUpdate:
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpDelete:
		d.Delete(c, r.Key)
		r.Done(kv.Result{Found: true})
	case kv.OpRMW:
		_, _ = d.Get(c, r.Key)
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpScan:
		items := d.Scan(c, r.Key, r.ScanCount)
		r.Done(kv.Result{Found: len(items) > 0, ScanN: len(items)})
	}
}

// ---- write path ----

// Put durably... buffers the write: like the configured RocksDB baseline
// (§6.2), the WAL buffer is 1MB and synced infrequently, so persistence is
// batched — KVell §5.5 contrasts its own guarantee with exactly this.
func (d *DB) Put(c env.Ctx, key, value []byte) {
	d.write(c, key, value, false)
}

// Delete writes a tombstone.
func (d *DB) Delete(c env.Ctx, key []byte) {
	d.write(c, key, nil, true)
}

func (d *DB) write(c env.Ctx, key, value []byte, tombstone bool) {
	c.CPU(costs.LockUncontended)
	d.writeMu.Lock(c)
	d.stats.Puts++

	// WAL append (real framed records, buffered; the group leader writes
	// a chunk while holding the write lock — the log bottleneck §3.1
	// describes). See wal.go; ReplayWAL rebuilds state from this log.
	d.seq++
	d.walAppend(c, key, value, tombstone)

	// Memtable insert.
	rec := int64(entryHeader + len(key) + len(value))
	e := entry{key: append([]byte(nil), key...), seq: d.seq, tombstone: tombstone}
	if !tombstone {
		e.value = append([]byte(nil), value...)
	}
	c.CPU(d.mem.lookupCost() + costs.MemBytes(int(rec)))
	d.mem.put(e)

	// Memtable rotation and stalls.
	for d.mem.bytes >= d.cfg.MemtableBytes {
		if d.imm == nil {
			d.imm = d.mem
			d.mem = newMemtable()
			d.writeCond.Broadcast(c) // wake the flush thread
			break
		}
		// Flush behind: stall the writer (§3.2: "writer threads spend
		// ~22% of their time stalled waiting for the memory component to
		// be flushed").
		d.stall(c)
	}
	// L0 pressure: first a slowdown band (RocksDB's delayed write rate),
	// then a hard stall (§3.2).
	if n := d.l0Count(); n >= d.cfg.L0SlowdownTrigger && n < d.cfg.L0StallTrigger {
		d.writeMu.Unlock(c)
		c.Sleep(env.Millisecond)
		d.writeMu.Lock(c)
	}
	for d.l0Count() >= d.cfg.L0StallTrigger {
		d.stall(c)
	}
	d.writeMu.Unlock(c)
}

// stall blocks the writer until background progress, accounting stall time.
func (d *DB) stall(c env.Ctx) {
	d.stats.WriteStalls++
	t0 := c.Now()
	d.writeCond.Wait(c)
	d.stats.StallTime += c.Now() - t0
}

func (d *DB) l0Count() int {
	return len(d.levels[0])
}

// ---- read path ----

// Get returns the newest value for key.
func (d *DB) Get(c env.Ctx, key []byte) ([]byte, bool) {
	d.stats.Gets++
	// Memtables.
	c.CPU(costs.LockUncontended)
	d.writeMu.Lock(c)
	c.CPU(d.mem.lookupCost())
	if e, ok := d.mem.get(key); ok {
		d.writeMu.Unlock(c)
		return copyVal(e)
	}
	if d.imm != nil {
		c.CPU(d.imm.lookupCost())
		if e, ok := d.imm.get(key); ok {
			d.writeMu.Unlock(c)
			return copyVal(e)
		}
	}
	d.writeMu.Unlock(c)

	// Tables, newest first.
	cands := d.snapshotCandidates(c, key)
	defer d.unref(c, cands)
	if d.cfg.Fragmented {
		// Overlapping fragments: search all, keep newest seq.
		var best *entry
		for _, t := range cands {
			if e, ok := d.searchTable(c, t, key); ok {
				if best == nil || e.seq > best.seq {
					ec := e
					best = &ec
				}
			}
		}
		if best == nil {
			return nil, false
		}
		return copyVal(*best)
	}
	for _, t := range cands {
		if e, ok := d.searchTable(c, t, key); ok {
			return copyVal(e)
		}
	}
	return nil, false
}

func copyVal(e entry) ([]byte, bool) {
	if e.tombstone {
		return nil, false
	}
	return append([]byte(nil), e.value...), true
}

// snapshotCandidates collects, under the version lock, the tables that may
// contain key, ordered newest-first, with references taken.
func (d *DB) snapshotCandidates(c env.Ctx, key []byte) []*sstable {
	c.CPU(costs.LockUncontended)
	d.verMu.Lock(c)
	var out []*sstable
	for li, lvl := range d.levels {
		if li == 0 || d.cfg.Fragmented {
			// Overlapping: newest (latest id) first.
			for i := len(lvl) - 1; i >= 0; i-- {
				if lvl[i].containsKey(key) {
					out = append(out, lvl[i])
				}
			}
			continue
		}
		// Disjoint sorted level: binary search.
		i := sort.Search(len(lvl), func(i int) bool {
			return bytes.Compare(lvl[i].max, key) >= 0
		})
		if i < len(lvl) && lvl[i].containsKey(key) {
			out = append(out, lvl[i])
		}
	}
	for _, t := range out {
		t.refs++
	}
	d.verMu.Unlock(c)
	return out
}

func (d *DB) unref(c env.Ctx, tables []*sstable) {
	d.verMu.Lock(c)
	for _, t := range tables {
		t.refs--
		if t.refs == 0 && t.zombie {
			d.free(c, t) // dropped by a compaction while we were reading
		}
	}
	d.verMu.Unlock(c)
}

// searchTable probes one table for key.
func (d *DB) searchTable(c env.Ctx, t *sstable, key []byte) (entry, bool) {
	c.CPU(costs.BloomCheck)
	if !t.filter.mayContain(key) {
		return entry{}, false
	}
	bi := t.findBlock(key)
	if bi < 0 {
		return entry{}, false
	}
	c.CPU(costs.BTreeNode * 3) // block index binary search
	data := d.blockData(c, t, bi)
	off := 0
	for {
		e, next, ok := decodeEntry(data, off)
		if !ok {
			return entry{}, false
		}
		c.CPU(costs.IterStep)
		cmp := bytes.Compare(e.key, key)
		if cmp == 0 {
			return e, true
		}
		if cmp > 0 {
			return entry{}, false
		}
		off = next
	}
}

// blockData returns a block's payload via the shared block cache.
func (d *DB) blockData(c env.Ctx, t *sstable, bi int) []byte {
	blk := &t.blocks[bi]
	c.CPU(costs.LockUncontended)
	d.cacheMu.Lock(c)
	c.CPU(d.cache.LookupCost())
	if data := d.cache.Get(blk.page); data != nil {
		d.stats.BlockCacheHits++
		d.cacheMu.Unlock(c)
		return data[:blk.length]
	}
	d.stats.BlockCacheMisses++
	d.cacheMu.Unlock(c)

	buf := make([]byte, int(blk.pages)*device.PageSize)
	d.readPagesSync(c, t.disk, blk.page, buf)

	d.cacheMu.Lock(c)
	d.cache.Insert(blk.page, buf)
	c.CPU(d.cache.InsertCost())
	d.cacheMu.Unlock(c)
	return buf[:blk.length]
}

// ---- scans ----

// Scan returns up to count live items with key >= start in key order,
// merging the memtables and every overlapping table.
func (d *DB) Scan(c env.Ctx, start []byte, count int) []kv.Item {
	d.stats.Scans++
	var sources []*scanSource
	c.CPU(costs.LockUncontended)
	d.writeMu.Lock(c)
	sources = append(sources, sliceSource(d.mem.firstN(start, count)))
	if d.imm != nil {
		sources = append(sources, sliceSource(d.imm.firstN(start, count)))
	}
	d.writeMu.Unlock(c)

	// Snapshot overlapping tables.
	d.verMu.Lock(c)
	var tabs []*sstable
	for _, lvl := range d.levels {
		for _, t := range lvl {
			if bytes.Compare(t.max, start) >= 0 {
				t.refs++
				tabs = append(tabs, t)
			}
		}
	}
	d.verMu.Unlock(c)
	defer d.unref(c, tabs)
	for _, t := range tabs {
		sources = append(sources, d.tableSource(c, t, start))
	}

	out := mergeScan(c, sources, count)
	return out
}

// scanSource is a peekable stream of entries in key order.
type scanSource struct {
	peeked *entry
	next   func() (entry, bool)
}

func (s *scanSource) peek() *entry {
	if s.peeked == nil {
		if e, ok := s.next(); ok {
			s.peeked = &e
		}
	}
	return s.peeked
}

func (s *scanSource) advance() { s.peeked = nil }

func sliceSource(ents []entry) *scanSource {
	i := 0
	return &scanSource{next: func() (entry, bool) {
		if i >= len(ents) {
			return entry{}, false
		}
		e := ents[i]
		i++
		return e, true
	}}
}

// tableSource streams a table's entries from the first block that may
// contain start, reading blocks through the cache as it advances. Because
// data is sorted on disk, each ~4KB block yields several items — the
// advantage Figure 10 quantifies for small items.
func (d *DB) tableSource(c env.Ctx, t *sstable, start []byte) *scanSource {
	bi := t.findBlock(start)
	if bi < 0 {
		bi = 0
	}
	var data []byte
	off := 0
	return &scanSource{next: func() (entry, bool) {
		for {
			if data == nil {
				if bi >= len(t.blocks) {
					return entry{}, false
				}
				data = d.blockData(c, t, bi)
				off = 0
			}
			e, next, ok := decodeEntry(data, off)
			if !ok {
				data = nil
				bi++
				continue
			}
			off = next
			c.CPU(costs.IterStep)
			if bytes.Compare(e.key, start) < 0 {
				continue
			}
			return e, true
		}
	}}
}

// mergeScan merges sources by (key asc, seq desc), deduplicates and drops
// tombstones, returning up to count items.
func mergeScan(c env.Ctx, sources []*scanSource, count int) []kv.Item {
	var out []kv.Item
	var lastKey []byte
	for len(out) < count {
		// Pick the smallest key; among equal keys the highest seq.
		var best *scanSource
		for _, s := range sources {
			e := s.peek()
			if e == nil {
				continue
			}
			if best == nil {
				best = s
				continue
			}
			be := best.peek()
			cmp := bytes.Compare(e.key, be.key)
			if cmp < 0 || (cmp == 0 && e.seq > be.seq) {
				best = s
			}
		}
		if best == nil {
			break
		}
		e := *best.peek()
		best.advance()
		c.CPU(costs.IterStep)
		if lastKey != nil && bytes.Equal(e.key, lastKey) {
			continue // older duplicate
		}
		lastKey = append(lastKey[:0], e.key...)
		if e.tombstone {
			continue
		}
		out = append(out, kv.Item{
			Key:   append([]byte(nil), e.key...),
			Value: append([]byte(nil), e.value...),
		})
	}
	return out
}
