package wtree

import (
	"bytes"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/trace"
	"kvell/internal/walog"
)

// Submit implements kv.Engine (library model: operations run on the
// calling thread).
func (d *DB) Submit(c env.Ctx, r *kv.Request) {
	switch r.Op {
	case kv.OpGet:
		v, ok := d.getInto(c, r.Key, &r.ValueBuf)
		r.Done(kv.Result{Found: ok, Value: v})
	case kv.OpUpdate:
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpDelete:
		d.Delete(c, r.Key)
		r.Done(kv.Result{Found: true})
	case kv.OpRMW:
		_, _ = d.getInto(c, r.Key, &r.ValueBuf)
		d.Put(c, r.Key, r.Value)
		r.Done(kv.Result{Found: true})
	case kv.OpScan:
		items := d.scanInto(c, r.Key, r.ScanCount, r.ScanBuf[:0])
		r.ScanBuf = items
		r.Done(kv.Result{Found: len(items) > 0, ScanN: len(items)})
	}
}

// logRecord routes a mutation through the commit log: the timing-only slot
// model by default, a real flushed WAL record in durable mode.
func (d *DB) logRecord(c env.Ctx, op byte, key, value []byte) {
	t0 := c.Now()
	if d.cfg.Durable {
		d.logAppendDurable(c, op, key, value)
	} else {
		d.logAppend(c, entryBytes(len(key), len(value)))
	}
	trace.FromCtx(c).Span("wal", t0, c.Now())
}

// logAppendDurable writes one checksummed walog chunk carrying the record
// and waits for its completion before returning, so an acknowledged
// operation is always in the log's valid prefix. The logWriting flag keeps
// at most one log write in flight (the property torn-tail detection relies
// on); later writers busy-wait exactly as in the slot model.
func (d *DB) logAppendDurable(c env.Ctx, op byte, key, value []byte) {
	c.CPU(costs.LogSlotJoin + costs.WALBytes(entryBytes(len(key), len(value))))
	d.logMu.Lock(c)
	for d.logWriting {
		d.logMu.Unlock(c)
		c.CPU(costs.LogSlotSpin)
		d.stats.LogSpinTime += costs.LogSlotSpin
		d.logMu.Lock(c)
	}
	d.logWriting = true
	// The leader owns logPayload/logScratch while logWriting is set.
	d.logPayload = walog.AppendRecord(d.logPayload[:0], op, key, value)
	d.logScratch = walog.EncodeChunk(d.logScratch, d.logPayload, 1)
	page := d.logPage
	d.logPage += walog.ChunkPages(len(d.logPayload))
	if d.logPage > logRegionPages {
		panic("wtree: durable log region overflow")
	}
	d.logMu.Unlock(c)
	d.writeSync(c, page, d.logScratch)
	d.stats.LogSlotWrites++
	d.logMu.Lock(c)
	d.logWriting = false
	d.logMu.Unlock(c)
}

// logAppend models the slot-based group commit: the record joins the
// active slot; when a slot write is in flight, the writer busy-waits for
// it (__log_wait_for_earlier_slot), burning CPU. A full slot elects the
// caller leader, who performs the sequential log write.
func (d *DB) logAppend(c env.Ctx, recBytes int) {
	c.CPU(costs.LogSlotJoin + costs.WALBytes(recBytes))
	d.logMu.Lock(c)
	for d.logWriting {
		d.logMu.Unlock(c)
		c.CPU(costs.LogSlotSpin) // sched_yield busy-wait
		d.stats.LogSpinTime += costs.LogSlotSpin
		d.logMu.Lock(c)
	}
	d.logBuf += int64(recBytes)
	lead := false
	var pages int64
	if d.logBuf >= d.cfg.LogSlotBytes {
		lead = true
		d.logWriting = true
		pages = (d.logBuf + device.PageSize - 1) / device.PageSize
		d.logBuf = 0
	}
	d.logMu.Unlock(c)
	if lead {
		// The leader owns logScratch while logWriting is set (the handoff is
		// ordered by logMu); the slot content is never read back, so one
		// zeroed buffer serves every slot write.
		need := int(pages) * device.PageSize
		buf := d.logScratch
		if cap(buf) >= need {
			buf = buf[:need]
		} else {
			buf = make([]byte, need)
			d.logScratch = buf
		}
		page := d.logPage % (1 << 20)
		d.logPage += pages
		d.writeSync(c, page, buf)
		d.stats.LogSlotWrites++
		d.logMu.Lock(c)
		d.logWriting = false
		d.logMu.Unlock(c)
	}
}

// Put inserts or replaces a record.
func (d *DB) Put(c env.Ctx, key, value []byte) {
	d.logRecord(c, walog.OpPut, key, value)

	c.CPU(costs.LockUncontended)
	d.mu.Lock(c)
	d.stats.Puts++
	var l *leaf
	for {
		l = d.leaves[d.findLeaf(c, key)]
		if !d.loadLeaf(c, l) {
			break // resident and lock still held
		}
		// The lock was dropped during I/O; the leaf may have split.
	}

	// Insert into the sorted entry slice.
	i := sort.Search(len(l.ents), func(i int) bool {
		return bytes.Compare(l.ents[i].key, key) >= 0
	})
	c.CPU(costs.MemBytes(len(key) + len(value)))
	d.markDirty(l)
	if i < len(l.ents) && bytes.Equal(l.ents[i].key, key) {
		d.adjustLeafBytes(l, len(value)-len(l.ents[i].value))
		l.ents[i].value = append([]byte(nil), value...)
	} else {
		e := entry{key: append([]byte(nil), key...), value: append([]byte(nil), value...)}
		l.ents = append(l.ents, entry{})
		copy(l.ents[i+1:], l.ents[i:])
		l.ents[i] = e
		d.adjustLeafBytes(l, entryBytes(len(key), len(value)))
	}

	// Split when the serialized leaf exceeds its page budget.
	if l.bytes+4 > d.cfg.LeafBytes && len(l.ents) > 1 {
		d.splitLeaf(l)
	}
	// Large single records get page runs sized to fit.
	d.resizeLeafPages(l)

	dirtyStall := int64(float64(d.cfg.CacheBytes) * d.cfg.DirtyStallFrac)
	if d.dirtyB > int64(float64(d.cfg.CacheBytes)*d.cfg.DirtyTriggerFrac) {
		d.cond.Broadcast(c) // wake the eviction thread
	}
	for d.dirtyB > dirtyStall && !d.closing {
		// §3.2: user writes stall when eviction cannot keep up.
		d.stats.WriteStalls++
		t0 := c.Now()
		d.cond.Wait(c)
		d.stats.StallTime += c.Now() - t0
		trace.FromCtx(c).Add(trace.CompStall, t0, c.Now())
	}
	d.mu.Unlock(c)
}

// splitLeaf divides l (dirty, resident) in half, allocating a page run for
// the new right leaf (mu held). Byte accounting: l's bytes were already
// counted in cachedB/dirtyB; the halves together hold the same bytes, so
// only the attribution moves.
func (d *DB) splitLeaf(l *leaf) {
	mid := len(l.ents) / 2
	right := &leaf{
		firstKey: append([]byte(nil), l.ents[mid].key...),
		ents:     append([]entry(nil), l.ents[mid:]...),
		dirty:    true,
		lruIdx:   -1,
	}
	for _, e := range right.ents {
		right.bytes += entryBytes(len(e.key), len(e.value))
	}
	l.ents = l.ents[:mid:mid]
	l.bytes -= right.bytes
	right.pages = (int64(right.bytes) + 4 + device.PageSize - 1) / device.PageSize
	right.page = d.alloc.Alloc(right.pages)

	// Insert into the sorted leaf table.
	i := sort.Search(len(d.leaves), func(i int) bool {
		return bytes.Compare(d.leaves[i].firstKey, right.firstKey) > 0
	})
	d.leaves = append(d.leaves, nil)
	copy(d.leaves[i+1:], d.leaves[i:])
	d.leaves[i] = right
	d.touch(right)
}

// resizeLeafPages reallocates the leaf's page run if its serialized size
// outgrew it (large values).
func (d *DB) resizeLeafPages(l *leaf) {
	need := (int64(l.bytes) + 4 + device.PageSize - 1) / device.PageSize
	if need <= l.pages {
		return
	}
	d.alloc.Free(l.page, l.pages)
	l.pages = need
	l.page = d.alloc.Alloc(need)
}

// Get returns the value for key.
func (d *DB) Get(c env.Ctx, key []byte) ([]byte, bool) {
	return d.getInto(c, key, nil)
}

// getInto is Get with optional caller-owned value scratch: when vdst is
// non-nil the returned value is backed by *vdst (grown as needed) and only
// valid until the caller reuses the scratch.
func (d *DB) getInto(c env.Ctx, key []byte, vdst *[]byte) ([]byte, bool) {
	c.CPU(costs.LockUncontended)
	d.mu.Lock(c)
	d.stats.Gets++
	var l *leaf
	for {
		l = d.leaves[d.findLeaf(c, key)]
		if !d.loadLeaf(c, l) {
			break
		}
	}
	i := sort.Search(len(l.ents), func(i int) bool {
		return bytes.Compare(l.ents[i].key, key) >= 0
	})
	var val []byte
	found := false
	if i < len(l.ents) && bytes.Equal(l.ents[i].key, key) {
		n := len(l.ents[i].value)
		if vdst != nil && *vdst != nil && cap(*vdst) >= n {
			val = (*vdst)[:n]
		} else {
			val = make([]byte, n)
			if vdst != nil {
				*vdst = val
			}
		}
		copy(val, l.ents[i].value)
		found = true
		c.CPU(costs.MemBytes(n))
	}
	d.mu.Unlock(c)
	return val, found
}

// Delete removes key if present.
func (d *DB) Delete(c env.Ctx, key []byte) bool {
	d.logRecord(c, walog.OpDelete, key, nil)
	c.CPU(costs.LockUncontended)
	d.mu.Lock(c)
	defer d.mu.Unlock(c)
	var l *leaf
	for {
		l = d.leaves[d.findLeaf(c, key)]
		if !d.loadLeaf(c, l) {
			break
		}
	}
	i := sort.Search(len(l.ents), func(i int) bool {
		return bytes.Compare(l.ents[i].key, key) >= 0
	})
	if i >= len(l.ents) || !bytes.Equal(l.ents[i].key, key) {
		return false
	}
	d.markDirty(l)
	d.adjustLeafBytes(l, -entryBytes(len(l.ents[i].key), len(l.ents[i].value)))
	l.ents = append(l.ents[:i], l.ents[i+1:]...)
	return true
}

// Scan returns up to count items with key >= start: leaves are chained in
// key order, so sorted data yields several items per 4KB leaf read — the
// design advantage for scans that Figure 10 quantifies.
func (d *DB) Scan(c env.Ctx, start []byte, count int) []kv.Item {
	return d.scanInto(c, start, count, nil)
}

// scanInto is Scan with a caller-owned destination: dst's slots (and their
// Key/Value capacity) are reused via kv.AppendItem, so hot-path callers
// that only count the results recycle one buffer across scans.
func (d *DB) scanInto(c env.Ctx, start []byte, count int, dst []kv.Item) []kv.Item {
	c.CPU(costs.LockUncontended)
	d.mu.Lock(c)
	d.stats.Scans++
	out := dst
	li := d.findLeaf(c, start)
	for li < len(d.leaves) && len(out) < count {
		l := d.leaves[li]
		if d.loadLeaf(c, l) {
			// Lock was dropped; re-find the position by the last key we
			// emitted (or start).
			key := start
			if len(out) > 0 {
				key = out[len(out)-1].Key
			}
			li = d.findLeaf(c, key)
			continue
		}
		for _, e := range l.ents {
			if bytes.Compare(e.key, start) < 0 {
				continue
			}
			if len(out) > 0 && bytes.Compare(e.key, out[len(out)-1].Key) <= 0 {
				continue
			}
			c.CPU(costs.IterStep)
			out = kv.AppendItem(out, e.key, e.value)
			if len(out) >= count {
				break
			}
		}
		li++
	}
	d.mu.Unlock(c)
	return out
}

// BulkLoad implements kv.Engine: builds ~90%-full leaves directly on disk.
// In durable mode the items are also appended to the log (direct, untimed
// store writes — bulk load precedes the measured run), so post-crash replay
// reconstructs the loaded data without trusting any leaf page.
func (d *DB) BulkLoad(items []kv.Item) error {
	if d.cfg.Durable {
		d.logItems(items)
	}
	d.buildLeaves(items)
	return nil
}

// logItems appends items as checksummed log chunks via direct store writes.
func (d *DB) logItems(items []kv.Item) {
	st := storeOf(d.disk)
	var payload, enc []byte
	count := 0
	flush := func() {
		if count == 0 {
			return
		}
		enc = walog.EncodeChunk(enc, payload, count)
		if err := st.WritePages(d.logPage, enc); err != nil {
			panic(err)
		}
		d.logPage += walog.ChunkPages(len(payload))
		if d.logPage > logRegionPages {
			panic("wtree: durable log region overflow during bulk load")
		}
		payload = payload[:0]
		count = 0
	}
	for _, it := range items {
		payload = walog.AppendRecord(payload, walog.OpPut, it.Key, it.Value)
		count++
		if len(payload) >= 256<<10 {
			flush()
		}
	}
	flush()
}

// ReplayLog rebuilds a freshly-opened durable DB from the valid prefix of
// its on-disk log: last-writer-wins over the records, then a bulk build of
// the surviving items. Log reads go through the engine's synchronous read
// path so recovery cost lands on virtual time. Returns the number of live
// records recovered.
func (d *DB) ReplayLog(c env.Ctx) int {
	if !d.cfg.Durable {
		panic("wtree: ReplayLog on a non-durable DB")
	}
	m := make(map[string][]byte)
	used := walog.Scan(timedReader{d, c}, 0, logRegionPages, func(op byte, k, v []byte) {
		if op == walog.OpDelete {
			delete(m, string(k))
			return
		}
		m[string(k)] = append([]byte(nil), v...)
	})
	d.logPage = used
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	items := make([]kv.Item, 0, len(keys))
	for _, k := range keys {
		items = append(items, kv.Item{Key: []byte(k), Value: m[k]})
	}
	d.buildLeaves(items)
	return len(items)
}

type timedReader struct {
	d *DB
	c env.Ctx
}

func (t timedReader) ReadPages(page int64, buf []byte) error {
	t.d.readSync(t.c, page, buf)
	return nil
}

// buildLeaves constructs the on-disk leaf set for items (sorted by key)
// via direct store writes, replacing any existing tree.
func (d *DB) buildLeaves(items []kv.Item) {
	budget := d.cfg.LeafBytes * 9 / 10
	var leaves []*leaf
	cur := &leaf{ents: []entry{}, lruIdx: -1}
	flush := func() {
		if len(cur.ents) == 0 {
			return
		}
		cur.pages = (int64(cur.bytes) + 4 + device.PageSize - 1) / device.PageSize
		cur.page = d.alloc.Alloc(cur.pages)
		buf := serializeLeaf(cur)
		if err := storeOf(d.disk).WritePages(cur.page, buf); err != nil {
			panic(err)
		}
		cur.ents = nil // not resident
		leaves = append(leaves, cur)
		cur = &leaf{ents: []entry{}, lruIdx: -1}
	}
	for _, it := range items {
		n := entryBytes(len(it.Key), len(it.Value))
		if cur.bytes+n+4 > budget && len(cur.ents) > 0 {
			flush()
		}
		if len(cur.ents) == 0 {
			cur.firstKey = append([]byte(nil), it.Key...)
		}
		cur.ents = append(cur.ents, entry{key: it.Key, value: it.Value})
		cur.bytes += n
	}
	flush()
	if len(leaves) > 0 {
		leaves[0].firstKey = nil // leftmost leaf owns -inf
		d.leaves = leaves
		d.lru = nil
		d.cachedB = 0
		d.dirtyB = 0
	}
}

func storeOf(dd device.Disk) device.Store {
	return dd.(interface{ Store() device.Store }).Store()
}

// ---- background threads ----

// evictLoop writes dirty leaves back when the dirty fraction exceeds the
// trigger, unblocking stalled writers.
func (d *DB) evictLoop(c env.Ctx) {
	var scratch []byte
	for {
		d.mu.Lock(c)
		trigger := int64(float64(d.cfg.CacheBytes) * d.cfg.DirtyTriggerFrac)
		for d.dirtyB <= trigger && !d.closing {
			d.cond.Wait(c)
		}
		if d.closing {
			d.mu.Unlock(c)
			return
		}
		// Evict the oldest dirty leaf.
		var victim *leaf
		for _, l := range d.lru {
			if l.dirty && l.ents != nil {
				victim = l
				break
			}
		}
		if victim == nil {
			d.mu.Unlock(c)
			continue
		}
		bc := d.cfg.Tracer.BeginBg("evict", c.Now())
		c.SetTrace(bc)
		d.writeLeaf(c, victim, true, &scratch)
		c.SetTrace(nil)
		d.cfg.Tracer.FinishBg(bc, c.Now())
		d.mu.Unlock(c)
		d.cond.Broadcast(c)
	}
}

// writeLeaf reconciles and writes one dirty leaf (mu held; released around
// the I/O). drop releases the leaf's memory after writing. scratch is the
// calling thread's serialization buffer — eviction and checkpoint can
// overlap (mu is dropped around the write), so each keeps its own.
func (d *DB) writeLeaf(c env.Ctx, l *leaf, drop bool, scratch *[]byte) {
	c.CPU(costs.PageReconcile + costs.MemBytes(l.bytes))
	buf := serializeLeafInto(l, scratch)
	page, bytes := l.page, l.bytes
	l.dirty = false
	d.dirtyB -= int64(bytes)
	d.mu.Unlock(c)
	d.writeSync(c, page, buf)
	d.mu.Lock(c)
	d.stats.EvictedLeaves++
	if drop && !l.dirty && l.ents != nil {
		l.ents = nil
		d.cachedB -= int64(l.bytes)
		d.dropFromLRU(l)
	}
}

// checkpointLoop periodically writes all dirty leaves (bounding the log),
// §3.1's checkpointing.
func (d *DB) checkpointLoop(c env.Ctx) {
	var scratch []byte
	for {
		c.Sleep(d.cfg.CheckpointEvery)
		d.mu.Lock(c)
		if d.closing {
			d.mu.Unlock(c)
			return
		}
		bc := d.cfg.Tracer.BeginBg("checkpoint", c.Now())
		c.SetTrace(bc)
		for {
			var victim *leaf
			for _, l := range d.lru {
				if l.dirty && l.ents != nil {
					victim = l
					break
				}
			}
			if victim == nil {
				break
			}
			d.writeLeaf(c, victim, false, &scratch)
			d.stats.CheckpointLeaves++
			if d.closing {
				break
			}
		}
		c.SetTrace(nil)
		d.cfg.Tracer.FinishBg(bc, c.Now())
		d.mu.Unlock(c)
		d.cond.Broadcast(c)
	}
}
