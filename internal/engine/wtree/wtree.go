// Package wtree implements a WiredTiger-like persistent B+ tree engine
// (§3.1 of the KVell paper): 4KB leaf pages on disk with the internal
// structure in memory, a shared page cache with an eviction thread and
// periodic checkpoints, and a slot-based group-commit log whose writers
// busy-wait for earlier slots (the __log_wait_for_earlier_slot /
// sched_yield behaviour the paper profiles at 47% of worker time).
//
// It is a baseline for the evaluation: its losses come from log-slot
// contention, shared-cache locking, and eviction/checkpoint stalls.
package wtree

import (
	"bytes"
	"encoding/binary"
	"sort"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/trace"
)

// Config describes a wtree engine.
type Config struct {
	Disks []device.Disk
	// CacheBytes is the page-cache budget (the paper gives every system a
	// cache of one third of the dataset).
	CacheBytes int64
	// DirtyTriggerFrac starts eviction when dirty bytes exceed this
	// fraction of the cache; DirtyStallFrac stalls application writes.
	DirtyTriggerFrac float64
	DirtyStallFrac   float64
	// LogSlotBytes is the group-commit slot size; a full slot is written
	// by its leader while later writers busy-wait.
	LogSlotBytes int64
	// CheckpointEvery is the checkpoint period.
	CheckpointEvery env.Time
	// LeafBytes is the on-disk leaf page size (4KB in the paper's setup).
	LeafBytes int
	// Durable switches the commit log from the timing-only slot model
	// (zeroed buffers, group commit) to a real checksummed WAL (walog
	// format): every record is encoded, written to the log region and
	// flushed before the operation returns, and ReplayLog can rebuild the
	// store from the log after a crash. Off by default — it changes I/O
	// timing, and the simulator's schedule goldens are recorded without it.
	Durable bool
	// Tracer, if set, receives background maintenance spans (eviction,
	// checkpoints). Purely observational.
	Tracer *trace.Tracer
}

// logRegionPages is the page count reserved for the commit log before the
// leaf allocator's arena (see New).
const logRegionPages = 1 << 20

// DefaultConfig returns the paper's WiredTiger-like configuration.
func DefaultConfig(disks ...device.Disk) Config {
	return Config{
		Disks:            disks,
		CacheBytes:       64 << 20,
		DirtyTriggerFrac: 0.05,
		DirtyStallFrac:   0.20,
		LogSlotBytes:     16 << 10,
		CheckpointEvery:  2 * env.Second,
		LeafBytes:        device.PageSize,
	}
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Gets, Puts, Scans int64
	CacheHits         int64
	CacheMisses       int64
	EvictedLeaves     int64
	CheckpointLeaves  int64
	WriteStalls       int64
	StallTime         env.Time
	LogSlotWrites     int64
	LogSpinTime       env.Time
}

// entry is one record in a leaf.
type entry struct {
	key   []byte
	value []byte
}

func entryBytes(klen, vlen int) int { return 6 + klen + vlen }

// leaf is one on-disk page (or page run, for large values) of sorted
// records, plus its cached in-memory form.
type leaf struct {
	firstKey []byte
	page     int64
	pages    int64
	ents     []entry // nil when not cached
	bytes    int     // serialized size
	dirty    bool
	lruIdx   int // index in the clock/LRU list, -1 when absent
}

// DB is the wtree engine.
type DB struct {
	env  env.Env
	cfg  Config
	name string

	// The shared cache/tree lock: every operation takes it (briefly), the
	// shared-structure cost §3.1 attributes to B-tree designs.
	mu      env.Mutex
	cond    env.Cond // eviction progress / checkpoint wakeups / stalls
	leaves  []*leaf  // sorted by firstKey
	lru     []*leaf  // cached leaves, oldest first (approximate LRU)
	cachedB int64    // resident bytes
	dirtyB  int64    // dirty resident bytes
	closing bool

	// Commit log.
	logMu      env.Mutex
	logBuf     int64
	logWriting bool
	logPage    int64
	logScratch []byte // leader-owned slot buffer (exclusive while logWriting)
	logPayload []byte // durable mode: record payload scratch (same ownership)

	leafBufs [][]byte // recycled leaf read buffers (guarded by mu)

	// Recycled synchronous-I/O waiters (host-only state: procs are
	// cooperatively scheduled and pop/push contain no yield points, so the
	// unlocked accesses cannot interleave).
	waiterFree []*waiter

	alloc *device.Allocator
	disk  device.Disk

	stats Stats
}

// New returns a wtree engine.
func New(e env.Env, cfg Config) *DB {
	if len(cfg.Disks) == 0 {
		panic("wtree: no disks")
	}
	if cfg.LeafBytes == 0 {
		cfg.LeafBytes = device.PageSize
	}
	d := &DB{env: e, cfg: cfg, name: "WiredTiger-like", disk: cfg.Disks[0]}
	d.mu = e.NewMutex()
	d.cond = e.NewCond(d.mu)
	d.logMu = e.NewMutex()
	d.alloc = device.NewAllocator(logRegionPages) // first pages reserved for the log
	// Start with one empty leaf so the tree is never empty.
	l := &leaf{firstKey: nil, ents: []entry{}, lruIdx: -1}
	l.pages = 1
	l.page = d.alloc.Alloc(1)
	d.leaves = append(d.leaves, l)
	d.touch(l)
	return d
}

// Name implements kv.Engine.
func (d *DB) Name() string { return d.name }

// Stats returns a snapshot.
func (d *DB) Stats() Stats { return d.stats }

// Start launches the eviction and checkpoint threads.
func (d *DB) Start() {
	d.env.Go("wtree-evict", d.evictLoop)
	d.env.Go("wtree-checkpoint", d.checkpointLoop)
}

// Stop signals background threads to exit.
func (d *DB) Stop(c env.Ctx) {
	d.mu.Lock(c)
	d.closing = true
	d.mu.Unlock(c)
	d.cond.Broadcast(c)
}

// ---- leaf (de)serialization ----

func serializeLeaf(l *leaf) []byte { return serializeLeafInto(l, nil) }

// serializeLeafInto reconciles l into a page-aligned image. When scratch is
// non-nil the image reuses *scratch (grown as needed), so a background
// thread reconciling leaf after leaf allocates only when a leaf outgrows
// every earlier one. The image is dead once the write completes.
func serializeLeafInto(l *leaf, scratch *[]byte) []byte {
	pages := (l.bytes + 4 + device.PageSize - 1) / device.PageSize
	if pages < 1 {
		pages = 1
	}
	need := pages * device.PageSize
	var buf []byte
	if scratch != nil && cap(*scratch) >= need {
		buf = (*scratch)[:need]
	} else {
		buf = make([]byte, need)
		if scratch != nil {
			*scratch = buf
		}
	}
	binary.LittleEndian.PutUint32(buf, uint32(len(l.ents)))
	off := 4
	for _, e := range l.ents {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(e.key)))
		binary.LittleEndian.PutUint32(buf[off+2:], uint32(len(e.value)))
		copy(buf[off+6:], e.key)
		copy(buf[off+6+len(e.key):], e.value)
		off += entryBytes(len(e.key), len(e.value))
	}
	clear(buf[off:]) // reused scratch: keep the on-disk tail deterministic
	return buf
}

func deserializeLeaf(buf []byte) ([]entry, int) {
	n := int(binary.LittleEndian.Uint32(buf))
	ents := make([]entry, 0, n)
	off := 4
	total := 0
	// Size pass: one backing blob for every key and value turns 2n copies
	// into 2 allocations per leaf. Mutation replaces whole slices and
	// eviction drops ents, so per-entry backing buys nothing.
	blobLen := 0
	o := off
	for i := 0; i < n; i++ {
		klen := int(binary.LittleEndian.Uint16(buf[o:]))
		vlen := int(binary.LittleEndian.Uint32(buf[o+2:]))
		blobLen += klen + vlen
		o += entryBytes(klen, vlen)
	}
	blob := make([]byte, blobLen)
	bo := 0
	for i := 0; i < n; i++ {
		klen := int(binary.LittleEndian.Uint16(buf[off:]))
		vlen := int(binary.LittleEndian.Uint32(buf[off+2:]))
		k := blob[bo : bo+klen : bo+klen]
		copy(k, buf[off+6:])
		v := blob[bo+klen : bo+klen+vlen : bo+klen+vlen]
		copy(v, buf[off+6+klen:off+6+klen+vlen])
		bo += klen + vlen
		ents = append(ents, entry{key: k, value: v})
		off += entryBytes(klen, vlen)
		total += entryBytes(klen, vlen)
	}
	return ents, total
}

// ---- cache management (mu held unless noted) ----

func (d *DB) touch(l *leaf) {
	if l.lruIdx >= 0 {
		// Move to the back (most recent).
		copy(d.lru[l.lruIdx:], d.lru[l.lruIdx+1:])
		d.lru = d.lru[:len(d.lru)-1]
		for i := l.lruIdx; i < len(d.lru); i++ {
			d.lru[i].lruIdx = i
		}
	}
	l.lruIdx = len(d.lru)
	d.lru = append(d.lru, l)
}

func (d *DB) dropFromLRU(l *leaf) {
	if l.lruIdx < 0 {
		return
	}
	copy(d.lru[l.lruIdx:], d.lru[l.lruIdx+1:])
	d.lru = d.lru[:len(d.lru)-1]
	for i := l.lruIdx; i < len(d.lru); i++ {
		d.lru[i].lruIdx = i
	}
	l.lruIdx = -1
}

func (d *DB) markCached(l *leaf) {
	d.cachedB += int64(l.bytes)
	d.touch(l)
	// Evict clean leaves synchronously if far over budget (dirty leaves
	// are the eviction thread's job).
	for d.cachedB > d.cfg.CacheBytes && len(d.lru) > 1 {
		evicted := false
		for _, v := range d.lru {
			if v == l || v.dirty || v.ents == nil {
				continue
			}
			d.cachedB -= int64(v.bytes)
			v.ents = nil
			d.dropFromLRU(v)
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
}

// adjustLeafBytes applies a size change to a resident leaf, keeping the
// cache and dirty accounting consistent (mu held).
func (d *DB) adjustLeafBytes(l *leaf, delta int) {
	l.bytes += delta
	if l.ents != nil {
		d.cachedB += int64(delta)
	}
	if l.dirty {
		d.dirtyB += int64(delta)
	}
}

// markDirty flags a resident leaf dirty, accounting its bytes (mu held).
func (d *DB) markDirty(l *leaf) {
	if !l.dirty {
		l.dirty = true
		d.dirtyB += int64(l.bytes)
	}
}

// findLeaf returns the index of the leaf owning key (mu held). The
// in-memory descent is charged like a B-tree walk.
func (d *DB) findLeaf(c env.Ctx, key []byte) int {
	depth := 1
	for n := len(d.leaves); n > 1; n /= 16 {
		depth++
	}
	c.CPU(env.Time(depth) * costs.BTreeNode)
	i := sort.Search(len(d.leaves), func(i int) bool {
		return bytes.Compare(d.leaves[i].firstKey, key) > 0
	})
	if i == 0 {
		return 0
	}
	return i - 1
}

// loadLeaf ensures l's entries are resident, releasing the lock around the
// disk read (one pread system call per miss, §3.1). Because the lock is
// dropped, callers must re-find their leaf afterwards; loadLeaf reports
// whether it had to do I/O.
func (d *DB) loadLeaf(c env.Ctx, l *leaf) bool {
	if l.ents != nil {
		d.stats.CacheHits++
		d.touch(l)
		return false
	}
	d.stats.CacheMisses++
	pages := l.pages
	page := l.page
	need := int(pages) * device.PageSize
	// Pop a recycled read buffer while the lock is still held; too-small
	// buffers are dropped, so the pool converges on the largest leaf size.
	var buf []byte
	if n := len(d.leafBufs); n > 0 {
		b := d.leafBufs[n-1]
		d.leafBufs = d.leafBufs[:n-1]
		if cap(b) >= need {
			buf = b[:need]
		}
	}
	d.mu.Unlock(c)
	if buf == nil {
		buf = make([]byte, need)
	}
	d.readSync(c, page, buf) // the read overwrites the whole buffer
	ents, total := deserializeLeaf(buf)
	c.CPU(costs.MemBytes(total))
	d.mu.Lock(c)
	d.leafBufs = append(d.leafBufs, buf) // deserializeLeaf copied out
	if l.ents == nil {
		l.ents = ents
		l.bytes = total
		d.markCached(l)
	}
	return true
}

func (d *DB) readSync(c env.Ctx, page int64, buf []byte) {
	// Buffered pread path (§6.3.1): syscall plus per-byte copy/checksum.
	c.CPU(costs.Syscall + costs.PreadBytes(len(buf)))
	w := d.getWaiter()
	w.req = device.Request{Op: device.Read, Page: page, Buf: buf, Done: w.doneFn, Trace: trace.FromCtx(c)}
	d.disk.Submit(&w.req)
	w.wait(c)
	d.putWaiter(w)
}

func (d *DB) writeSync(c env.Ctx, page int64, buf []byte) {
	c.CPU(costs.Syscall + costs.PwriteBytes(len(buf)))
	w := d.getWaiter()
	w.req = device.Request{Op: device.Write, Page: page, Buf: buf, Done: w.doneFn, Trace: trace.FromCtx(c)}
	d.disk.Submit(&w.req)
	w.wait(c)
	d.putWaiter(w)
}

type waiter struct {
	mu     env.Mutex
	cond   env.Cond
	ok     bool
	req    device.Request
	doneFn func()
}

// getWaiter pops a recycled waiter — mutex, cond, bound done callback and
// request record included — or builds one. The device copies the request's
// fields at submission, so the record is free for reuse once wait returns.
func (d *DB) getWaiter() *waiter {
	if n := len(d.waiterFree); n > 0 {
		w := d.waiterFree[n-1]
		d.waiterFree = d.waiterFree[:n-1]
		w.ok = false
		return w
	}
	w := &waiter{mu: d.env.NewMutex()}
	w.cond = d.env.NewCond(w.mu)
	w.doneFn = w.done
	return w
}

func (d *DB) putWaiter(w *waiter) {
	w.req.Buf = nil
	d.waiterFree = append(d.waiterFree, w)
}

func (w *waiter) done() {
	w.mu.Lock(nil)
	w.ok = true
	w.mu.Unlock(nil)
	w.cond.Broadcast(nil)
}

func (w *waiter) wait(c env.Ctx) {
	w.mu.Lock(c)
	for !w.ok {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
}
