package wtree

import (
	"bytes"
	"testing"

	"kvell/internal/env"
	"kvell/internal/kv"
)

func TestCheckpointWritesAllDirty(t *testing.T) {
	d := harness(t, func(cfg *Config) {
		cfg.CheckpointEvery = 50 * env.Millisecond
		cfg.DirtyTriggerFrac = 10 // effectively disable the eviction thread
		cfg.DirtyStallFrac = 10
	}, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 300; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		// Let at least one checkpoint pass.
		c.Sleep(200 * env.Millisecond)
	})
	if d.stats.CheckpointLeaves == 0 {
		t.Fatal("checkpoint never wrote a leaf")
	}
	if d.dirtyB != 0 {
		t.Fatalf("dirty bytes %d after checkpoint quiesce", d.dirtyB)
	}
}

func TestSubmitInterface(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		done := 0
		cb := func(kv.Result) { done++ }
		d.Submit(c, &kv.Request{Op: kv.OpUpdate, Key: kv.Key(1), Value: kv.Value(1, 1, 300), Done: cb})
		d.Submit(c, &kv.Request{Op: kv.OpGet, Key: kv.Key(1), Done: func(r kv.Result) {
			done++
			if !r.Found || !bytes.Equal(r.Value, kv.Value(1, 1, 300)) {
				t.Error("Submit Get wrong result")
			}
		}})
		d.Submit(c, &kv.Request{Op: kv.OpRMW, Key: kv.Key(1), Value: kv.Value(1, 2, 300), Done: cb})
		d.Submit(c, &kv.Request{Op: kv.OpScan, Key: kv.Key(0), ScanCount: 1, Done: func(r kv.Result) {
			done++
			if r.ScanN != 1 {
				t.Errorf("scan returned %d", r.ScanN)
			}
		}})
		d.Submit(c, &kv.Request{Op: kv.OpDelete, Key: kv.Key(1), Done: cb})
		if done != 5 {
			t.Fatalf("callbacks fired %d/5", done)
		}
		if _, ok := d.Get(c, kv.Key(1)); ok {
			t.Fatal("delete via Submit did not take effect")
		}
	})
}

func TestDeleteMissingKey(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		if d.Delete(c, kv.Key(99)) {
			t.Fatal("delete of missing key returned true")
		}
	})
}
