package wtree

import (
	"bytes"
	"math/rand"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

func harness(t *testing.T, tweak func(*Config), fn func(c env.Ctx, d *DB)) *DB {
	t.Helper()
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	cfg := DefaultConfig(disk)
	cfg.CacheBytes = 256 << 10 // small, to exercise eviction
	if tweak != nil {
		tweak(&cfg)
	}
	d := New(e, cfg)
	d.Start()
	e.Go("client", func(c env.Ctx) {
		fn(c, d)
		d.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPutGetDelete(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 600; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		for i := int64(0); i < 600; i++ {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 500)) {
				t.Fatalf("Get(%d) ok=%v", i, ok)
			}
		}
		if !d.Delete(c, kv.Key(9)) {
			t.Fatal("delete failed")
		}
		if _, ok := d.Get(c, kv.Key(9)); ok {
			t.Fatal("deleted key visible")
		}
		if d.Delete(c, kv.Key(9)) {
			t.Fatal("double delete")
		}
	})
}

func TestLeafSplitsKeepOrder(t *testing.T) {
	d := harness(t, nil, func(c env.Ctx, d *DB) {
		r := rand.New(rand.NewSource(3))
		for _, i := range r.Perm(2000) {
			d.Put(c, kv.Key(int64(i)), kv.Value(int64(i), 1, 400))
		}
		items := d.Scan(c, kv.Key(0), 2000)
		if len(items) != 2000 {
			t.Fatalf("scan returned %d", len(items))
		}
		for j, it := range items {
			if !bytes.Equal(it.Key, kv.Key(int64(j))) {
				t.Fatalf("scan[%d] = %q", j, it.Key)
			}
		}
	})
	if len(d.leaves) < 100 {
		t.Fatalf("only %d leaves after 2000 ~400B inserts; splits broken", len(d.leaves))
	}
	// Leaf table must be sorted with the leftmost leaf owning -inf.
	if d.leaves[0].firstKey != nil {
		t.Fatal("leftmost leaf does not own -inf")
	}
	for i := 2; i < len(d.leaves); i++ {
		if bytes.Compare(d.leaves[i-1].firstKey, d.leaves[i].firstKey) >= 0 {
			t.Fatal("leaf table out of order")
		}
	}
}

func TestEvictionAndReload(t *testing.T) {
	d := harness(t, func(cfg *Config) { cfg.CacheBytes = 64 << 10 }, func(c env.Ctx, d *DB) {
		// Data far exceeds the cache; leaves must round-trip disk.
		for i := int64(0); i < 1500; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		for i := int64(0); i < 1500; i += 7 {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 600)) {
				t.Fatalf("Get(%d) after eviction pressure ok=%v", i, ok)
			}
		}
	})
	if d.stats.CacheMisses == 0 {
		t.Fatal("no cache misses despite tiny cache")
	}
	if d.stats.EvictedLeaves == 0 {
		t.Fatal("eviction thread never ran")
	}
	if d.cachedB > d.cfg.CacheBytes*2 {
		t.Fatalf("resident bytes %d far above budget %d", d.cachedB, d.cfg.CacheBytes)
	}
}

func TestUpdatesSurviveEvictionRoundTrip(t *testing.T) {
	harness(t, func(cfg *Config) { cfg.CacheBytes = 32 << 10 }, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 400; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		for i := int64(0); i < 400; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 2, 600))
		}
		// Push everything through the cache multiple times.
		for i := int64(400); i < 1200; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		for i := int64(0); i < 400; i += 11 {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 2, 600)) {
				t.Fatalf("updated key %d lost its new value", i)
			}
		}
	})
}

func TestLogSlotContention(t *testing.T) {
	// Many concurrent writers must produce slot writes and spin time.
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	cfg := DefaultConfig(disk)
	d := New(e, cfg)
	d.Start()
	doneCount := 0
	for w := 0; w < 16; w++ {
		w := w
		e.Go("writer", func(c env.Ctx) {
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 300; i++ {
				k := int64(r.Intn(5000))
				d.Put(c, kv.Key(k), kv.Value(k, 1, 900))
			}
			doneCount++
			if doneCount == 16 {
				d.Stop(c)
			}
		})
	}
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if d.stats.LogSlotWrites == 0 {
		t.Fatal("no log slot writes")
	}
	if d.stats.LogSpinTime == 0 {
		t.Fatal("no busy-wait time recorded — contention model dead")
	}
}

func TestWriteStallsUnderDirtyPressure(t *testing.T) {
	d := harness(t, func(cfg *Config) {
		cfg.CacheBytes = 32 << 10
		cfg.DirtyStallFrac = 0.10
	}, func(c env.Ctx, d *DB) {
		for i := int64(0); i < 2000; i++ {
			d.Put(c, kv.Key(i%100), kv.Value(i, uint64(i), 900))
		}
	})
	if d.stats.WriteStalls == 0 {
		t.Fatal("no write stalls despite tiny dirty budget")
	}
}

func TestBulkLoadReadbackAndScan(t *testing.T) {
	items := make([]kv.Item, 3000)
	for i := range items {
		items[i] = kv.Item{Key: kv.Key(int64(i)), Value: kv.Value(int64(i), 0, 700)}
	}
	harness(t, nil, func(c env.Ctx, d *DB) {
		if err := d.BulkLoad(items); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 3000; i += 101 {
			v, ok := d.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 0, 700)) {
				t.Fatalf("Get(%d) after bulk load ok=%v", i, ok)
			}
		}
		got := d.Scan(c, kv.Key(1234), 40)
		if len(got) != 40 || !bytes.Equal(got[0].Key, kv.Key(1234)) {
			t.Fatalf("scan after bulk load: %d items", len(got))
		}
		// Mutations after bulk load.
		d.Put(c, kv.Key(1234), kv.Value(1234, 5, 700))
		v, _ := d.Get(c, kv.Key(1234))
		if !bytes.Equal(v, kv.Value(1234, 5, 700)) {
			t.Fatal("update after bulk load lost")
		}
	})
}

func TestLeafCodecRoundtrip(t *testing.T) {
	l := &leaf{}
	for i := int64(0); i < 5; i++ {
		e := entry{key: kv.Key(i), value: kv.Value(i, 0, 300)}
		l.ents = append(l.ents, e)
		l.bytes += entryBytes(len(e.key), len(e.value))
	}
	buf := serializeLeaf(l)
	if len(buf)%device.PageSize != 0 {
		t.Fatal("leaf image not page aligned")
	}
	ents, total := deserializeLeaf(buf)
	if len(ents) != 5 || total != l.bytes {
		t.Fatalf("roundtrip: %d ents, %d bytes (want %d)", len(ents), total, l.bytes)
	}
	for i, e := range ents {
		if !bytes.Equal(e.key, kv.Key(int64(i))) || !bytes.Equal(e.value, kv.Value(int64(i), 0, 300)) {
			t.Fatalf("entry %d corrupted", i)
		}
	}
}

func TestLargeValues(t *testing.T) {
	harness(t, nil, func(c env.Ctx, d *DB) {
		big := kv.Value(1, 1, 20_000)
		d.Put(c, kv.Key(1), big)
		for i := int64(10); i < 400; i++ {
			d.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		v, ok := d.Get(c, kv.Key(1))
		if !ok || !bytes.Equal(v, big) {
			t.Fatal("large value corrupted")
		}
	})
}

func TestOracleRandomized(t *testing.T) {
	harness(t, func(cfg *Config) { cfg.CacheBytes = 48 << 10 }, func(c env.Ctx, d *DB) {
		r := rand.New(rand.NewSource(11))
		oracle := map[int64]uint64{}
		var ver uint64
		for op := 0; op < 5000; op++ {
			i := int64(r.Intn(400))
			switch r.Intn(8) {
			case 0:
				d.Delete(c, kv.Key(i))
				delete(oracle, i)
			case 1, 2, 3, 4:
				ver++
				d.Put(c, kv.Key(i), kv.Value(i, ver, 500))
				oracle[i] = ver
			default:
				v, ok := d.Get(c, kv.Key(i))
				wv, wok := oracle[i]
				if ok != wok || (ok && !bytes.Equal(v, kv.Value(i, wv, 500))) {
					t.Fatalf("op %d key %d: ok=%v want %v", op, i, ok, wok)
				}
			}
		}
	})
}
