// Package walog is a page-aligned, checksummed write-ahead log format
// shared by the competitor engines' durable modes (wtree, betree). A log is
// a dense sequence of chunks starting at a fixed base page; each chunk is
// one flushed batch of records, padded to a page boundary:
//
//	magic(8) | payloadLen(4) | count(4) | fnv64a(payload)(8) | payload | pad
//
// and each record in the payload is
//
//	op(1) | klen(2) | vlen(4) | key | value
//
// The checksum is what makes crash recovery sound under the ≤1-page
// atomicity model: a torn chunk (some of its pages persisted, some not)
// fails verification and Scan stops there. Writers keep at most one chunk
// write in flight and acknowledge only after its completion, so the log's
// valid prefix always contains every acknowledged record.
package walog

import (
	"encoding/binary"
	"hash/fnv"

	"kvell/internal/device"
)

// Reader is the page source Scan replays from. device.Store satisfies it
// directly (untimed, host-side replay); engines pass an adapter over their
// synchronous-read path to charge recovery I/O to virtual time.
type Reader interface {
	ReadPages(page int64, buf []byte) error
}

// Magic marks a valid chunk header. Distinct from the lsm WAL magic so a
// mis-pointed scan fails fast instead of misparsing.
const Magic = 0x4B56574C4F473031 // "KVWLOG01"

// HeaderSize is the fixed chunk header length.
const HeaderSize = 24

// RecordHeader is the per-record header length.
const RecordHeader = 7

// Record ops.
const (
	OpPut    = 1
	OpDelete = 2
)

// AppendRecord appends one record to a chunk payload buffer.
func AppendRecord(payload []byte, op byte, key, value []byte) []byte {
	var hdr [RecordHeader]byte
	hdr[0] = op
	binary.LittleEndian.PutUint16(hdr[1:3], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[3:7], uint32(len(value)))
	payload = append(payload, hdr[:]...)
	payload = append(payload, key...)
	return append(payload, value...)
}

// ChunkPages returns the page count of a chunk carrying payloadLen bytes.
func ChunkPages(payloadLen int) int64 {
	return int64((HeaderSize + payloadLen + device.PageSize - 1) / device.PageSize)
}

// EncodeChunk serializes a chunk into dst (reused if large enough) and
// returns the page-aligned encoding.
func EncodeChunk(dst, payload []byte, count int) []byte {
	need := int(ChunkPages(len(payload))) * device.PageSize
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	dst = dst[:need]
	h := fnv.New64a()
	h.Write(payload)
	binary.LittleEndian.PutUint64(dst[0:8], Magic)
	binary.LittleEndian.PutUint32(dst[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[12:16], uint32(count))
	binary.LittleEndian.PutUint64(dst[16:24], h.Sum64())
	n := copy(dst[HeaderSize:], payload)
	// Zero the padding: the encode buffer is recycled across chunks and
	// stale bytes must not reach the device.
	for i := HeaderSize + n; i < need; i++ {
		dst[i] = 0
	}
	return dst
}

// Scan replays the log at basePage, calling fn for every record of every
// valid chunk in order. It stops — without error — at the first chunk that
// fails validation (bad magic, impossible length, or checksum mismatch):
// under the single-writer discipline that chunk is the torn tail. maxPages
// bounds the scan (the log region size). Returns the number of pages of
// valid log consumed.
func Scan(store Reader, basePage, maxPages int64, fn func(op byte, key, value []byte)) int64 {
	hdr := make([]byte, device.PageSize)
	var chunk []byte
	page := int64(0)
	for page < maxPages {
		if err := store.ReadPages(basePage+page, hdr); err != nil {
			panic("walog: scan read failed: " + err.Error())
		}
		if binary.LittleEndian.Uint64(hdr[0:8]) != Magic {
			break
		}
		payloadLen := int(binary.LittleEndian.Uint32(hdr[8:12]))
		count := int(binary.LittleEndian.Uint32(hdr[12:16]))
		want := binary.LittleEndian.Uint64(hdr[16:24])
		pages := ChunkPages(payloadLen)
		if payloadLen <= 0 || page+pages > maxPages {
			break
		}
		if cap(chunk) < int(pages)*device.PageSize {
			chunk = make([]byte, pages*device.PageSize)
		}
		chunk = chunk[:pages*device.PageSize]
		if pages == 1 {
			copy(chunk, hdr)
		} else {
			if err := store.ReadPages(basePage+page, chunk); err != nil {
				panic("walog: scan read failed: " + err.Error())
			}
		}
		payload := chunk[HeaderSize : HeaderSize+payloadLen]
		h := fnv.New64a()
		h.Write(payload)
		if h.Sum64() != want {
			break // torn tail
		}
		ok := true
		for i := 0; i < count; i++ {
			if len(payload) < RecordHeader {
				ok = false
				break
			}
			op := payload[0]
			klen := int(binary.LittleEndian.Uint16(payload[1:3]))
			vlen := int(binary.LittleEndian.Uint32(payload[3:7]))
			payload = payload[RecordHeader:]
			if len(payload) < klen+vlen {
				ok = false
				break
			}
			fn(op, payload[:klen], payload[klen:klen+vlen])
			payload = payload[klen+vlen:]
		}
		if !ok {
			break
		}
		page += pages
	}
	return page
}
