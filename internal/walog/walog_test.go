package walog

import (
	"bytes"
	"fmt"
	"testing"

	"kvell/internal/device"
)

type logRec struct {
	op  byte
	key string
	val string
}

func writeLog(t *testing.T, ms *device.MemStore, base int64, chunks [][]logRec) int64 {
	t.Helper()
	page := int64(0)
	var payload, enc []byte
	for _, recs := range chunks {
		payload = payload[:0]
		for _, r := range recs {
			payload = AppendRecord(payload, r.op, []byte(r.key), []byte(r.val))
		}
		enc = EncodeChunk(enc, payload, len(recs))
		if err := ms.WritePages(base+page, enc); err != nil {
			t.Fatal(err)
		}
		page += ChunkPages(len(payload))
	}
	return page
}

func TestRoundTrip(t *testing.T) {
	ms := device.NewMemStore()
	var chunks [][]logRec
	var want []logRec
	for c := 0; c < 5; c++ {
		var recs []logRec
		for i := 0; i < 3+c*40; i++ { // chunk 4 spans multiple pages
			r := logRec{OpPut, fmt.Sprintf("key-%d-%d", c, i), fmt.Sprintf("val-%d-%d", c, i)}
			if i%7 == 3 {
				r.op = OpDelete
				r.val = ""
			}
			recs = append(recs, r)
			want = append(want, r)
		}
		chunks = append(chunks, recs)
	}
	base := int64(100)
	pages := writeLog(t, ms, base, chunks)
	var got []logRec
	used := Scan(ms, base, 1<<20, func(op byte, k, v []byte) {
		got = append(got, logRec{op, string(k), string(v)})
	})
	if used != pages {
		t.Fatalf("scan consumed %d pages, wrote %d", used, pages)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestScanStopsAtTornChunk(t *testing.T) {
	ms := device.NewMemStore()
	big := make([]logRec, 0, 200)
	for i := 0; i < 200; i++ {
		big = append(big, logRec{OpPut, fmt.Sprintf("k%03d", i), string(bytes.Repeat([]byte{'v'}, 40))})
	}
	writeLog(t, ms, 0, [][]logRec{{{OpPut, "a", "1"}}, big, {{OpPut, "z", "9"}}})

	// Tear the middle (multi-page) chunk: drop its second page back to
	// zeros, as the fault injector's power-loss model would.
	firstPages := ChunkPages(len(AppendRecord(nil, OpPut, []byte("a"), []byte("1"))))
	zero := make([]byte, device.PageSize)
	if err := ms.WritePages(firstPages+1, zero); err != nil {
		t.Fatal(err)
	}
	var got []string
	Scan(ms, 0, 1<<20, func(op byte, k, v []byte) { got = append(got, string(k)) })
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("scan past a torn chunk: replayed %v", got)
	}
}

func TestScanEmptyAndGarbage(t *testing.T) {
	ms := device.NewMemStore()
	if n := Scan(ms, 0, 1<<20, func(byte, []byte, []byte) { t.Fatal("record from empty log") }); n != 0 {
		t.Fatalf("empty log consumed %d pages", n)
	}
	junk := bytes.Repeat([]byte{0xAB}, device.PageSize)
	if err := ms.WritePages(0, junk); err != nil {
		t.Fatal(err)
	}
	if n := Scan(ms, 0, 1<<20, func(byte, []byte, []byte) { t.Fatal("record from garbage") }); n != 0 {
		t.Fatalf("garbage log consumed %d pages", n)
	}
}
