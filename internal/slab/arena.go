package slab

// Arena is a bump allocator for transient scratch buffers on engine
// maintenance paths (compaction merges, flush table builds, leaf
// reconciliation). Alloc hands out sub-slices of large backing blocks;
// Reset recycles every block at once. A per-thread arena makes a repeated
// job (one compaction, one flush) allocation-free in steady state while
// bounding memory by the largest job seen.
//
// Contents returned by Alloc are NOT zeroed after the first Reset — callers
// must fully overwrite the buffer or use AllocZero. Buffers stay valid
// until the next Reset; an Arena is not safe for concurrent use.
type Arena struct {
	cur []byte
	off int
	old [][]byte // earlier blocks, kept alive until Reset
}

// NewArena returns an arena whose blocks are at least blockBytes large.
func NewArena(blockBytes int) *Arena {
	if blockBytes < 1024 {
		blockBytes = 1024
	}
	return &Arena{cur: make([]byte, blockBytes)}
}

// Alloc returns an n-byte buffer with arbitrary contents (capacity capped
// so appends cannot clobber neighboring allocations).
func (a *Arena) Alloc(n int) []byte {
	if a.off+n > len(a.cur) {
		a.grow(n)
	}
	b := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// AllocZero returns an n-byte zeroed buffer.
func (a *Arena) AllocZero(n int) []byte {
	b := a.Alloc(n)
	clear(b)
	return b
}

func (a *Arena) grow(n int) {
	size := 2 * len(a.cur)
	if size < n {
		size = n
	}
	a.old = append(a.old, a.cur)
	a.cur = make([]byte, size)
	a.off = 0
}

// Reset invalidates all outstanding allocations and makes the arena's
// memory reusable, keeping only the largest block.
func (a *Arena) Reset() {
	for _, b := range a.old {
		if len(b) > len(a.cur) {
			a.cur = b
		}
	}
	a.old = a.old[:0]
	a.off = 0
}

// HighWater returns the total bytes currently held across blocks.
func (a *Arena) HighWater() int {
	n := len(a.cur)
	for _, b := range a.old {
		n += len(b)
	}
	return n
}
