package slab

import (
	"testing"

	"kvell/internal/device"
)

func BenchmarkEncodeItem1K(b *testing.B) {
	s := newSlab(1024)
	buf := make([]byte, 1024)
	key := []byte("user000000000000001")
	val := make([]byte, 1024-HeaderSize-len(key))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.EncodeItem(buf, uint64(i), key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSlot1K(b *testing.B) {
	s := newSlab(1024)
	buf := make([]byte, 1024)
	key := []byte("user000000000000001")
	val := make([]byte, 1024-HeaderSize-len(key))
	s.EncodeItem(buf, 1, key, val)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d, err := s.DecodeSlot(buf); err != nil || d.Kind != Live {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkEncodeMultiPage(b *testing.B) {
	s := newSlab(4 * device.PageSize)
	buf := make([]byte, 4*device.PageSize)
	key := []byte("user000000000000001")
	val := make([]byte, 3*PagePayload)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.EncodeItem(buf, uint64(i), key, val); err != nil {
			b.Fatal(err)
		}
	}
}
