package slab

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"kvell/internal/device"
	"kvell/internal/freelist"
)

func newSlab(stride int) *Slab {
	return New(0, stride, device.NewAllocator(0), 256, 64)
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		klen, vlen int
		want       int // stride
	}{
		{10, 20, 64},
		{10, 40, 128},
		{19, 1024 - HeaderSize - 19, 1024}, // exactly a 1KB record
		{19, 1024, 2048},
		{19, 4000, 4096},
		{19, 5000, 2 * 4096},
		{19, 15000, 4 * 4096},
	}
	for _, c := range cases {
		i := ClassFor(DefaultClasses, c.klen, c.vlen)
		if i < 0 || DefaultClasses[i] != c.want {
			t.Errorf("ClassFor(%d,%d) stride = %d, want %d", c.klen, c.vlen, DefaultClasses[i], c.want)
		}
	}
	if i := ClassFor(DefaultClasses, 10, 1<<20); i != -1 {
		t.Errorf("oversized item got class %d", i)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	s := newSlab(1024)
	buf := make([]byte, 1024)
	key := []byte("user-000042")
	val := bytes.Repeat([]byte{0xAB}, 900)
	if err := s.EncodeItem(buf, 77, key, val); err != nil {
		t.Fatal(err)
	}
	d, err := s.DecodeSlot(buf)
	if err != nil || d.Kind != Live {
		t.Fatalf("decode: %v kind=%v", err, d.Kind)
	}
	if d.Item.Timestamp != 77 || !bytes.Equal(d.Item.Key, key) || !bytes.Equal(d.Item.Value, val) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	s := newSlab(128)
	buf := make([]byte, 128)
	if err := s.EncodeItem(buf, 1, []byte("k"), make([]byte, 200)); err == nil {
		t.Fatal("oversized encode succeeded")
	}
}

func TestTombstoneRoundtrip(t *testing.T) {
	s := newSlab(256)
	buf := make([]byte, 256)
	s.EncodeTombstone(buf, 5, 1234)
	d, err := s.DecodeSlot(buf)
	if err != nil || d.Kind != Tombstone || d.ChainTo != 1234 {
		t.Fatalf("decode tombstone: %+v err=%v", d, err)
	}
	s.EncodeTombstone(buf, 5, freelist.NoSlot)
	d, _ = s.DecodeSlot(buf)
	if d.ChainTo != freelist.NoSlot {
		t.Fatal("unchained tombstone lost NoSlot")
	}
}

func TestEmptySlotDecodes(t *testing.T) {
	s := newSlab(512)
	d, err := s.DecodeSlot(make([]byte, 512))
	if err != nil || d.Kind != Empty {
		t.Fatalf("zero slot: kind=%v err=%v", d.Kind, err)
	}
}

func TestMultiPageRoundtrip(t *testing.T) {
	s := newSlab(2 * device.PageSize)
	if !s.MultiPage() || s.PagesPerSlot() != 2 {
		t.Fatal("expected 2-page slot")
	}
	buf := make([]byte, 2*device.PageSize)
	key := []byte("bigkey")
	val := make([]byte, 6000)
	rand.New(rand.NewSource(1)).Read(val)
	if err := s.EncodeItem(buf, 99, key, val); err != nil {
		t.Fatal(err)
	}
	d, err := s.DecodeSlot(buf)
	if err != nil || d.Kind != Live {
		t.Fatalf("decode: %v kind=%v", err, d.Kind)
	}
	if d.Item.Timestamp != 99 || !bytes.Equal(d.Item.Key, key) || !bytes.Equal(d.Item.Value, val) {
		t.Fatal("multi-page roundtrip mismatch")
	}
}

func TestMultiPagePartialWriteDetected(t *testing.T) {
	// §5.6: timestamp headers detect partially written multi-page items.
	s := newSlab(2 * device.PageSize)
	buf := make([]byte, 2*device.PageSize)
	if err := s.EncodeItem(buf, 100, []byte("k"), make([]byte, 6000)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash where only the first page of a newer version made
	// it to disk: overwrite page 0 with timestamp 101.
	newer := make([]byte, 2*device.PageSize)
	if err := s.EncodeItem(newer, 101, []byte("k"), make([]byte, 6000)); err != nil {
		t.Fatal(err)
	}
	copy(buf[:device.PageSize], newer[:device.PageSize])
	d, err := s.DecodeSlot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != Corrupt {
		t.Fatalf("partial write decoded as %v, want Corrupt", d.Kind)
	}
}

func TestSlotGeometry(t *testing.T) {
	s := newSlab(1024) // 4 slots/page
	if p := s.SlotPage(0); p != 0 {
		t.Fatalf("slot 0 page = %d", p)
	}
	if off := s.SlotOffset(2); off != 2048 {
		t.Fatalf("slot 2 offset = %d", off)
	}
	if p := s.SlotPage(5); p != 1 {
		t.Fatalf("slot 5 page = %d", p)
	}
	// Extents are 256 pages = 1024 slots; slot 1024 begins extent 1.
	p0 := s.SlotPage(1023)
	p1 := s.SlotPage(1024)
	if s.ExtentCount() != 2 {
		t.Fatalf("extents = %d", s.ExtentCount())
	}
	if p1 == p0+1 {
		t.Log("extents happen to be contiguous (fine)")
	}
}

func TestMultiPageGeometry(t *testing.T) {
	s := New(0, 2*device.PageSize, device.NewAllocator(100), 256, 64)
	p0 := s.SlotPage(0)
	p1 := s.SlotPage(1)
	if p1 != p0+2 {
		t.Fatalf("2-page slots: slot1 at %d, slot0 at %d", p1, p0)
	}
	if s.SlotOffset(1) != 0 {
		t.Fatal("multi-page slots must be page-aligned")
	}
}

func TestAllocPrefersFreeList(t *testing.T) {
	s := newSlab(1024)
	a, reused := s.Alloc()
	if reused || a != 0 {
		t.Fatalf("first alloc = %d reused=%v", a, reused)
	}
	s.Free.Push(a)
	b, reused := s.Alloc()
	if !reused || b != a {
		t.Fatalf("alloc after free = %d reused=%v", b, reused)
	}
	c, reused := s.Alloc()
	if reused || c != 1 {
		t.Fatalf("fresh alloc = %d reused=%v", c, reused)
	}
}

func TestAppendPageFresh(t *testing.T) {
	s := newSlab(1024) // 4 slots/page
	fresh := []bool{true, false, false, false, true, false}
	for i, want := range fresh {
		if got := s.AppendPageFresh(uint64(i)); got != want {
			t.Errorf("AppendPageFresh(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestEncodeDecodePropertyAllClasses(t *testing.T) {
	f := func(seed int64, classIdx uint8) bool {
		stride := DefaultClasses[int(classIdx)%len(DefaultClasses)]
		s := newSlab(stride)
		r := rand.New(rand.NewSource(seed))
		klen := 1 + r.Intn(24)
		var capacity int
		if stride <= device.PageSize {
			capacity = stride - HeaderSize - klen
		} else {
			capacity = (stride/device.PageSize)*PagePayload - klen
		}
		if capacity <= 0 {
			return true
		}
		vlen := r.Intn(capacity)
		key := make([]byte, klen)
		val := make([]byte, vlen)
		r.Read(key)
		r.Read(val)
		var buf []byte
		if stride <= device.PageSize {
			buf = make([]byte, stride)
		} else {
			buf = make([]byte, stride)
		}
		ts := r.Uint64()
		if err := s.EncodeItem(buf, ts, key, val); err != nil {
			return false
		}
		d, err := s.DecodeSlot(buf)
		if err != nil || d.Kind != Live {
			return false
		}
		return d.Item.Timestamp == ts && bytes.Equal(d.Item.Key, key) && bytes.Equal(d.Item.Value, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
