// Package slab implements KVell's on-disk layout (§5.2): items of similar
// size share a file (a "slab") made of fixed-stride slots, accessed at 4KB
// page granularity. Items at most one page large are updated in place; each
// record carries a timestamp, key size and value size so that slabs can be
// scanned to rebuild the in-memory index after a crash. Deleted slots hold
// tombstones which may chain to further free slots (see package freelist).
//
// This package is pure layout: encoding, decoding and slot-to-page
// arithmetic. All I/O is done by the engine that owns the slab.
package slab

import (
	"encoding/binary"
	"errors"
	"fmt"

	"kvell/internal/device"
	"kvell/internal/freelist"
)

// Record flags.
const (
	flagEmpty     = 0x00
	flagLive      = 0x01
	flagTombstone = 0x02
	flagCont      = 0x03 // continuation page of a multi-page item
)

// HeaderSize is the per-record (and, for multi-page items, per-page)
// header: flags(1) + timestamp(8) + ksize(2) + vsize(4).
const HeaderSize = 15

// tombstone records additionally carry a chain pointer after the header.
const tombstoneSize = HeaderSize + 8

// PagePayload is the usable bytes per page of a multi-page slot.
const PagePayload = device.PageSize - HeaderSize

// DefaultClasses are the slot strides (bytes) of the standard size classes.
// Sub-page strides divide the page size exactly so slots never straddle
// pages; larger strides are whole numbers of pages.
var DefaultClasses = []int{64, 128, 256, 512, 1024, 2048, 4096, 2 * 4096, 4 * 4096, 8 * 4096}

// ClassFor returns the index in classes of the smallest stride that fits an
// item with the given key and value lengths, or -1 if none fits.
func ClassFor(classes []int, klen, vlen int) int {
	need := HeaderSize + klen + vlen
	for i, stride := range classes {
		if stride <= device.PageSize {
			if need <= stride {
				return i
			}
			continue
		}
		pages := stride / device.PageSize
		if klen+vlen <= pages*PagePayload {
			return i
		}
	}
	return -1
}

// Item is a decoded live record.
type Item struct {
	Timestamp uint64
	Key       []byte
	Value     []byte
}

// Slab manages slot allocation and layout for one size class of one worker.
type Slab struct {
	Stride     int
	ClassIndex int

	slotsPerPage int   // 0 for multi-page strides
	pagesPerSlot int64 // 1 for sub-page strides

	alloc       *device.Allocator
	extentPages int64
	extents     []int64 // base page of each extent

	nextSlot uint64 // append cursor
	Free     *freelist.List

	// Live counts live items (maintained by the owning engine).
	Live int64
}

// New returns a slab of the given stride drawing space from alloc in
// extents of extentPages pages. freeHeads is the free list's N.
func New(classIndex, stride int, alloc *device.Allocator, extentPages int64, freeHeads int) *Slab {
	if stride < tombstoneSize {
		panic(fmt.Sprintf("slab: stride %d below minimum %d", stride, tombstoneSize))
	}
	s := &Slab{
		Stride:      stride,
		ClassIndex:  classIndex,
		alloc:       alloc,
		extentPages: extentPages,
		Free:        freelist.New(freeHeads),
	}
	if stride <= device.PageSize {
		if device.PageSize%stride != 0 {
			panic(fmt.Sprintf("slab: stride %d does not divide page size", stride))
		}
		s.slotsPerPage = device.PageSize / stride
		s.pagesPerSlot = 1
	} else {
		if stride%device.PageSize != 0 {
			panic(fmt.Sprintf("slab: multi-page stride %d not page-aligned", stride))
		}
		s.pagesPerSlot = int64(stride / device.PageSize)
		if s.extentPages%s.pagesPerSlot != 0 {
			s.extentPages += s.pagesPerSlot - s.extentPages%s.pagesPerSlot
		}
	}
	return s
}

// MultiPage reports whether slots span multiple pages (append-only update
// discipline per §5.2).
func (s *Slab) MultiPage() bool { return s.pagesPerSlot > 1 }

// PagesPerSlot returns the number of pages a slot occupies.
func (s *Slab) PagesPerSlot() int64 { return s.pagesPerSlot }

// Slots returns the append cursor (total slots ever allocated fresh).
func (s *Slab) Slots() uint64 { return s.nextSlot }

// slotsPerExtent returns how many slots fit in one extent.
func (s *Slab) slotsPerExtent() uint64 {
	if s.slotsPerPage > 0 {
		return uint64(s.extentPages) * uint64(s.slotsPerPage)
	}
	return uint64(s.extentPages / s.pagesPerSlot)
}

// SlotPage returns the first disk page of slot, growing the slab if the
// slot lies in an extent not yet allocated.
func (s *Slab) SlotPage(slot uint64) int64 {
	spe := s.slotsPerExtent()
	ext := int(slot / spe)
	for ext >= len(s.extents) {
		s.extents = append(s.extents, s.alloc.Alloc(s.extentPages))
	}
	within := int64(slot % spe)
	if s.slotsPerPage > 0 {
		return s.extents[ext] + within/int64(s.slotsPerPage)
	}
	return s.extents[ext] + within*s.pagesPerSlot
}

// SlotOffset returns the byte offset of slot within its first page.
func (s *Slab) SlotOffset(slot uint64) int {
	if s.slotsPerPage == 0 {
		return 0
	}
	return int(slot%uint64(s.slotsPerPage)) * s.Stride
}

// Alloc returns a slot to store a new item: a freed slot when one is known,
// otherwise a fresh append slot. reused reports which.
func (s *Slab) Alloc() (slot uint64, reused bool) {
	if slot, ok := s.Free.Pop(); ok {
		return slot, true
	}
	slot = s.nextSlot
	s.nextSlot++
	return slot, false
}

// AppendPageFresh reports whether page p (a first page of slot) had never
// been written before this slot was appended — i.e. whether the engine may
// skip the read of a read-modify-write because every byte of the page is
// new. True only when slot is the first slot of its page.
func (s *Slab) AppendPageFresh(slot uint64) bool {
	if s.slotsPerPage <= 1 {
		return true
	}
	return slot%uint64(s.slotsPerPage) == 0
}

// EncodeItem writes a live record for (key, value) with timestamp ts into
// buf, which must be exactly one stride long (sub-page classes) or
// PagesPerSlot whole pages (multi-page classes).
func (s *Slab) EncodeItem(buf []byte, ts uint64, key, value []byte) error {
	if s.slotsPerPage > 0 {
		if len(buf) != s.Stride {
			return fmt.Errorf("slab: encode buffer %d, want stride %d", len(buf), s.Stride)
		}
		if HeaderSize+len(key)+len(value) > s.Stride {
			return fmt.Errorf("slab: item %dB too large for stride %d", HeaderSize+len(key)+len(value), s.Stride)
		}
		putHeader(buf, flagLive, ts, len(key), len(value))
		copy(buf[HeaderSize:], key)
		copy(buf[HeaderSize+len(key):], value)
		// Zero the tail so stale bytes never masquerade as data.
		for i := HeaderSize + len(key) + len(value); i < s.Stride; i++ {
			buf[i] = 0
		}
		return nil
	}
	if int64(len(buf)) != s.pagesPerSlot*device.PageSize {
		return fmt.Errorf("slab: encode buffer %d, want %d pages", len(buf), s.pagesPerSlot)
	}
	if len(key)+len(value) > int(s.pagesPerSlot)*PagePayload {
		return fmt.Errorf("slab: item too large for %d-page slot", s.pagesPerSlot)
	}
	data := make([]byte, 0, len(key)+len(value))
	data = append(data, key...)
	data = append(data, value...)
	for p := int64(0); p < s.pagesPerSlot; p++ {
		pg := buf[p*device.PageSize : (p+1)*device.PageSize]
		flag := byte(flagCont)
		if p == 0 {
			flag = flagLive
		}
		putHeader(pg, flag, ts, len(key), len(value))
		chunk := data
		if len(chunk) > PagePayload {
			chunk = chunk[:PagePayload]
		}
		copy(pg[HeaderSize:], chunk)
		for i := HeaderSize + len(chunk); i < device.PageSize; i++ {
			pg[i] = 0
		}
		data = data[len(chunk):]
	}
	return nil
}

// EncodeTombstone writes a tombstone with timestamp ts into the slot's
// first stride/page in buf. chainTo is the next free slot in this slot's
// on-disk stack (freelist.NoSlot for none).
func (s *Slab) EncodeTombstone(buf []byte, ts uint64, chainTo uint64) {
	putHeader(buf, flagTombstone, ts, 0, 0)
	binary.LittleEndian.PutUint64(buf[HeaderSize:], chainTo)
}

func putHeader(buf []byte, flag byte, ts uint64, klen, vlen int) {
	buf[0] = flag
	binary.LittleEndian.PutUint64(buf[1:9], ts)
	binary.LittleEndian.PutUint16(buf[9:11], uint16(klen))
	binary.LittleEndian.PutUint32(buf[11:15], uint32(vlen))
}

// Decoded is the result of decoding one slot.
type Decoded struct {
	Kind    Kind
	Item    Item   // Kind == Live
	ChainTo uint64 // Kind == Tombstone; freelist.NoSlot when unchained
}

// Kind classifies a slot's content.
type Kind uint8

// Slot content kinds.
const (
	Empty Kind = iota
	Live
	Tombstone
	Corrupt // partial multi-page write (timestamp mismatch across pages)
)

// ErrBuf is returned for malformed buffers.
var ErrBuf = errors.New("slab: bad decode buffer")

// DecodeSlot decodes the slot contents from buf (one stride for sub-page
// classes; PagesPerSlot pages for multi-page classes).
func (s *Slab) DecodeSlot(buf []byte) (Decoded, error) {
	if s.slotsPerPage > 0 {
		if len(buf) != s.Stride {
			return Decoded{}, ErrBuf
		}
		switch buf[0] {
		case flagEmpty:
			return Decoded{Kind: Empty}, nil
		case flagTombstone:
			return Decoded{
				Kind:    Tombstone,
				ChainTo: binary.LittleEndian.Uint64(buf[HeaderSize : HeaderSize+8]),
			}, nil
		case flagLive:
			ts := binary.LittleEndian.Uint64(buf[1:9])
			klen := int(binary.LittleEndian.Uint16(buf[9:11]))
			vlen := int(binary.LittleEndian.Uint32(buf[11:15]))
			if HeaderSize+klen+vlen > s.Stride {
				return Decoded{Kind: Corrupt}, nil
			}
			k := append([]byte(nil), buf[HeaderSize:HeaderSize+klen]...)
			v := append([]byte(nil), buf[HeaderSize+klen:HeaderSize+klen+vlen]...)
			return Decoded{Kind: Live, Item: Item{Timestamp: ts, Key: k, Value: v}}, nil
		default:
			return Decoded{Kind: Corrupt}, nil
		}
	}
	if int64(len(buf)) != s.pagesPerSlot*device.PageSize {
		return Decoded{}, ErrBuf
	}
	switch buf[0] {
	case flagEmpty:
		return Decoded{Kind: Empty}, nil
	case flagTombstone:
		return Decoded{
			Kind:    Tombstone,
			ChainTo: binary.LittleEndian.Uint64(buf[HeaderSize : HeaderSize+8]),
		}, nil
	case flagLive:
		ts := binary.LittleEndian.Uint64(buf[1:9])
		klen := int(binary.LittleEndian.Uint16(buf[9:11]))
		vlen := int(binary.LittleEndian.Uint32(buf[11:15]))
		total := klen + vlen
		if total > int(s.pagesPerSlot)*PagePayload {
			return Decoded{Kind: Corrupt}, nil
		}
		data := make([]byte, 0, total)
		for p := int64(0); p < s.pagesPerSlot && len(data) < total; p++ {
			pg := buf[p*device.PageSize : (p+1)*device.PageSize]
			if p > 0 {
				// A multi-page item is only valid if every continuation
				// page carries the same timestamp (§5.6: partial writes
				// after a crash are discarded via these headers).
				if pg[0] != flagCont || binary.LittleEndian.Uint64(pg[1:9]) != ts {
					return Decoded{Kind: Corrupt}, nil
				}
			}
			n := total - len(data)
			if n > PagePayload {
				n = PagePayload
			}
			data = append(data, pg[HeaderSize:HeaderSize+n]...)
		}
		return Decoded{Kind: Live, Item: Item{Timestamp: ts, Key: data[:klen:klen], Value: data[klen:]}}, nil
	default:
		return Decoded{Kind: Corrupt}, nil
	}
}

// DecodeSlotView is DecodeSlot without the defensive copies: for live slots
// the returned Item.Key and Item.Value alias buf wherever they are
// contiguous in it (always for sub-page classes; for multi-page items only
// when the payload fits the first page — longer values are assembled into a
// fresh buffer, exactly like DecodeSlot). The views are valid only as long
// as buf's contents are; callers that retain the item must copy.
func (s *Slab) DecodeSlotView(buf []byte) (Decoded, error) {
	if s.slotsPerPage > 0 {
		if len(buf) != s.Stride {
			return Decoded{}, ErrBuf
		}
		if buf[0] != flagLive {
			return s.DecodeSlot(buf) // non-live slots carry no views
		}
		ts := binary.LittleEndian.Uint64(buf[1:9])
		klen := int(binary.LittleEndian.Uint16(buf[9:11]))
		vlen := int(binary.LittleEndian.Uint32(buf[11:15]))
		if HeaderSize+klen+vlen > s.Stride {
			return Decoded{Kind: Corrupt}, nil
		}
		return Decoded{Kind: Live, Item: Item{
			Timestamp: ts,
			Key:       buf[HeaderSize : HeaderSize+klen : HeaderSize+klen],
			Value:     buf[HeaderSize+klen : HeaderSize+klen+vlen : HeaderSize+klen+vlen],
		}}, nil
	}
	if int64(len(buf)) != s.pagesPerSlot*device.PageSize {
		return Decoded{}, ErrBuf
	}
	if buf[0] != flagLive {
		return s.DecodeSlot(buf)
	}
	klen := int(binary.LittleEndian.Uint16(buf[9:11]))
	vlen := int(binary.LittleEndian.Uint32(buf[11:15]))
	if klen+vlen <= PagePayload {
		ts := binary.LittleEndian.Uint64(buf[1:9])
		return Decoded{Kind: Live, Item: Item{
			Timestamp: ts,
			Key:       buf[HeaderSize : HeaderSize+klen : HeaderSize+klen],
			Value:     buf[HeaderSize+klen : HeaderSize+klen+vlen : HeaderSize+klen+vlen],
		}}, nil
	}
	return s.DecodeSlot(buf)
}

// ExtentCount returns how many extents are allocated.
func (s *Slab) ExtentCount() int { return len(s.extents) }

// Extents returns the base pages of all allocated extents (recovery scans
// read them sequentially).
func (s *Slab) Extents() []int64 { return s.extents }

// ExtentPages returns the size of each extent in pages.
func (s *Slab) ExtentPages() int64 { return s.extentPages }

// RestoreAppendCursor sets the append cursor (used by recovery after
// scanning existing extents).
func (s *Slab) RestoreAppendCursor(next uint64) { s.nextSlot = next }

// RestoreExtents sets the extent table (used by recovery).
func (s *Slab) RestoreExtents(bases []int64) { s.extents = bases }
