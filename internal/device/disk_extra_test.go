package device

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"kvell/internal/env"
	"kvell/internal/sim"
)

func TestSpikesAreDeterministic(t *testing.T) {
	run := func() env.Time {
		s := sim.New(42)
		prof := AmazonNVMe()
		prof.SpikeEvery = 50 * env.Millisecond
		prof.SpikeJitter = 5 * env.Millisecond
		d := NewSimDisk(s, prof, NullStore{})
		r := rand.New(rand.NewSource(1))
		var worst env.Time
		buf := make([]byte, PageSize)
		var submit func()
		submit = func() {
			start := s.Now()
			d.Submit(&Request{Op: Write, Page: r.Int63n(1 << 30), Buf: buf, Done: func() {
				if lat := s.Now() - start; lat > worst {
					worst = lat
				}
				if s.Now() < env.Second/2 {
					submit()
				}
			}})
		}
		s.Go("gen", func(p *sim.Proc) {
			for i := 0; i < 32; i++ {
				submit()
			}
		})
		if err := s.Run(env.Second / 2); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return worst
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("spike schedule not deterministic: %d vs %d", a, b)
	}
	if a < 3*env.Millisecond {
		t.Fatalf("no spike observed (worst %d)", a)
	}
}

func TestMixPenaltySlowsReadsUnderWrites(t *testing.T) {
	// Config-Amazon-8NVMe: reads slow down substantially when mixed with
	// writes (Table 1: 412K read-only vs 175K mixed).
	readIOPS := func(mixWrites bool) int64 {
		s := sim.New(3)
		prof := AmazonNVMe()
		prof.SpikeEvery = 0
		d := NewSimDisk(s, prof, NullStore{})
		r := rand.New(rand.NewSource(4))
		var reads int64
		buf := make([]byte, PageSize)
		var submit func(i int)
		submit = func(i int) {
			op := Read
			if mixWrites && i%2 == 0 {
				op = Write
			}
			d.Submit(&Request{Op: op, Page: r.Int63n(1 << 30), Buf: buf, Done: func() {
				if op == Read {
					reads++
				}
				if s.Now() < env.Second/4 {
					submit(i + 2)
				}
			}})
		}
		s.Go("gen", func(p *sim.Proc) {
			for i := 0; i < 128; i++ {
				submit(i)
			}
		})
		if err := s.Run(env.Second / 4); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return reads * 4
	}
	pure, mixed := readIOPS(false), readIOPS(true)
	if mixed*2 > pure {
		t.Fatalf("mixed read IOPS %d not penalized vs pure %d", mixed, pure)
	}
}

func TestRealDiskSyncWritesDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.dat")
	fs, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	d := NewRealDisk(fs, 2, true) // fsync after every write
	var wg sync.WaitGroup
	buf := make([]byte, PageSize)
	buf[7] = 0x77
	wg.Add(1)
	d.Submit(&Request{Op: Write, Page: 3, Buf: buf, Done: wg.Done})
	wg.Wait()
	d.Close()
	// Reopen the file cold and verify.
	fs2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	got := make([]byte, PageSize)
	if err := fs2.ReadPages(3, got); err != nil {
		t.Fatal(err)
	}
	if got[7] != 0x77 {
		t.Fatal("synced write not present after reopen")
	}
}

func TestNullStore(t *testing.T) {
	var n NullStore
	buf := make([]byte, PageSize)
	buf[0] = 0xAA
	if err := n.WritePages(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := n.ReadPages(1, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("NullStore read returned nonzero")
	}
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageRequestCountsAllBytes(t *testing.T) {
	s := sim.New(1)
	d := NewSimDisk(s, Optane(), nil)
	buf := make([]byte, 8*PageSize)
	done := false
	s.Go("io", func(p *sim.Proc) {
		d.Submit(&Request{Op: Write, Page: 0, Buf: buf, Done: func() { done = true }})
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !done {
		t.Fatal("multi-page write never completed")
	}
	if c := d.Counters(); c.WriteBytes != 8*PageSize || c.WriteOps != 1 {
		t.Fatalf("counters = %+v", c)
	}
}
