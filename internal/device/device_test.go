package device

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"kvell/internal/env"
	"kvell/internal/sim"
	"kvell/internal/stats"
)

func TestMemStoreRoundtrip(t *testing.T) {
	m := NewMemStore()
	buf := make([]byte, 2*PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := m.WritePages(7, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*PageSize)
	if err := m.ReadPages(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("roundtrip mismatch")
	}
	// Unwritten pages read as zeros.
	zero := make([]byte, PageSize)
	if err := m.ReadPages(100, got[:PageSize]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:PageSize], zero) {
		t.Fatal("unwritten page not zero")
	}
	m.Free(7, 2)
	if m.Pages() != 0 {
		t.Fatalf("pages after free = %d", m.Pages())
	}
}

func TestMemStoreRoundtripProperty(t *testing.T) {
	m := NewMemStore()
	f := func(page uint16, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, PageSize)
		r.Read(buf)
		if err := m.WritePages(int64(page), buf); err != nil {
			return false
		}
		got := make([]byte, PageSize)
		if err := m.ReadPages(int64(page), got); err != nil {
			return false
		}
		return bytes.Equal(buf, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.dat")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	if err := s.WritePages(5, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := s.ReadPages(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("roundtrip mismatch")
	}
	// Read past EOF zero-fills.
	if err := s.ReadPages(1000, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("EOF read not zero-filled")
		}
	}
	if n, err := s.Size(); err != nil || n != 6 {
		t.Fatalf("size = %d pages (err %v), want 6", n, err)
	}
}

// driveClosedLoop keeps qd requests outstanding against d for the given
// horizon and returns ops completed. Pages are chosen by pick.
func driveClosedLoop(t *testing.T, s *sim.Sim, d *SimDisk, op Op, qd int, horizon env.Time, pick func(i int64) int64) int64 {
	t.Helper()
	var completed, issued int64
	buf := make([]byte, PageSize)
	var submit func()
	submit = func() {
		i := issued
		issued++
		d.Submit(&Request{
			Op:   op,
			Page: pick(i),
			Buf:  buf,
			Done: func() {
				completed++
				if s.Now() < horizon {
					submit()
				}
			},
		})
	}
	s.Go("gen", func(p *sim.Proc) {
		for i := 0; i < qd; i++ {
			submit()
		}
	})
	if err := s.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return completed
}

func TestSimDiskOptaneCalibration(t *testing.T) {
	// Table 1: Config-Optane sustains ~550K random-write IOPS; Table 2:
	// QD1 latency 11us.
	s := sim.New(1)
	d := NewSimDisk(s, Optane(), NullStore{})
	d.prof.SpikeEvery = 0 // isolate the queueing model
	r := rand.New(rand.NewSource(2))
	got := driveClosedLoop(t, s, d, Write, 64, env.Second, func(i int64) int64 { return r.Int63n(1 << 30) })
	if got < 500_000 || got > 600_000 {
		t.Fatalf("Optane QD64 write IOPS = %d, want ~545K", got)
	}

	// QD1: one request at a time completes in exactly WriteSvc.
	s2 := sim.New(1)
	d2 := NewSimDisk(s2, Optane(), NullStore{})
	d2.prof.SpikeEvery = 0
	r2 := rand.New(rand.NewSource(3))
	got2 := driveClosedLoop(t, s2, d2, Write, 1, env.Second, func(i int64) int64 { return r2.Int63n(1 << 30) })
	if got2 < 85_000 || got2 > 95_000 {
		t.Fatalf("Optane QD1 write IOPS = %d, want ~91K (11us latency)", got2)
	}
}

func TestSimDiskQueueDepthLatency(t *testing.T) {
	// Table 2 shape: latency grows with queue depth while bandwidth
	// saturates.
	var lastLat env.Time
	var lastIOPS int64
	for _, qd := range []int{1, 16, 64, 256} {
		s := sim.New(1)
		prof := Optane()
		prof.SpikeEvery = 0
		d := NewSimDisk(s, prof, NullStore{})
		d.LatHist = newHist()
		r := rand.New(rand.NewSource(4))
		iops := driveClosedLoop(t, s, d, Write, qd, env.Second/4, func(i int64) int64 { return r.Int63n(1 << 30) })
		lat := d.LatHist.Mean()
		if lat < lastLat {
			t.Fatalf("QD %d latency %d < previous %d; latency must grow with depth", qd, lat, lastLat)
		}
		if iops+1000 < lastIOPS && qd <= 64 {
			t.Fatalf("QD %d IOPS %d dropped below previous %d", qd, iops, lastIOPS)
		}
		lastLat, lastIOPS = lat, iops
	}
	// At QD256 mean latency should be in the several-hundred-us range
	// (Table 2 reports 550us for Config-Optane).
	if lastLat < 300*env.Microsecond || lastLat > 900*env.Microsecond {
		t.Fatalf("QD256 mean latency = %s, want ~550us", fmtNs(lastLat))
	}
}

func TestSimDiskSequentialFasterOnOldSSD(t *testing.T) {
	seqIOPS := func(seq bool) int64 {
		s := sim.New(1)
		prof := SSD2013(1 << 40) // effectively unlimited burst
		prof.SpikeEvery = 0
		d := NewSimDisk(s, prof, NullStore{})
		r := rand.New(rand.NewSource(5))
		pick := func(i int64) int64 { return i } // sequential
		if !seq {
			pick = func(i int64) int64 { return r.Int63n(1 << 30) }
		}
		return driveClosedLoop(t, s, d, Write, 32, env.Second/4, pick)
	}
	sq, rd := seqIOPS(true), seqIOPS(false)
	if sq < rd*3/2 {
		t.Fatalf("sequential writes (%d) should be much faster than random (%d) on Config-SSD", sq, rd)
	}
}

func TestSimDiskBurstExhaustion(t *testing.T) {
	// Figure 1: the old SSD serves a burst of random writes fast, then
	// degrades to ~11K IOPS.
	s := sim.New(1)
	prof := SSD2013(20_000) // small budget so the transition happens quickly
	prof.SpikeEvery = 0
	d := NewSimDisk(s, prof, NullStore{})
	r := rand.New(rand.NewSource(6))
	first := driveClosedLoop(t, s, d, Write, 32, env.Second/2, func(i int64) int64 { return r.Int63n(1 << 30) })
	if !d.degraded {
		t.Fatal("device should be degraded after exceeding burst budget")
	}
	// Continue for another interval: should be ~11K IOPS.
	before := d.Counters().WriteOps
	_ = first
	var completed int64
	buf := make([]byte, PageSize)
	var submit func()
	submit = func() {
		d.Submit(&Request{Op: Write, Page: r.Int63n(1 << 30), Buf: buf, Done: func() {
			completed++
			if s.Now() < env.Second+env.Second/2 {
				submit()
			}
		}})
	}
	s.Go("gen2", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			submit()
		}
	})
	if err := s.Run(env.Second + env.Second/2); err != nil {
		t.Fatal(err)
	}
	degRate := d.Counters().WriteOps - before
	if degRate < 8_000 || degRate > 14_000 {
		t.Fatalf("degraded write IOPS = %d over 1s, want ~11K", degRate)
	}
}

func TestSimDiskSpikesRaiseMaxLatency(t *testing.T) {
	// Figure 2: maintenance spikes produce max latencies far above p99.
	s := sim.New(7)
	prof := AmazonNVMe()
	prof.SpikeEvery = 100 * env.Millisecond // frequent, to observe quickly
	prof.SpikeJitter = 20 * env.Millisecond
	d := NewSimDisk(s, prof, NullStore{})
	d.LatHist = newHist()
	r := rand.New(rand.NewSource(8))
	driveClosedLoop(t, s, d, Write, 64, env.Second, func(i int64) int64 { return r.Int63n(1 << 30) })
	p99, max := d.LatHist.Percentile(0.99), d.LatHist.Max()
	if max < 2*p99 || max < 3*env.Millisecond {
		t.Fatalf("max latency %s should spike well above p99 %s", fmtNs(max), fmtNs(p99))
	}
}

func TestSimDiskReadsDataWrittenEarlier(t *testing.T) {
	s := sim.New(1)
	d := NewSimDisk(s, Optane(), nil)
	want := make([]byte, PageSize)
	for i := range want {
		want[i] = byte(i * 7)
	}
	got := make([]byte, PageSize)
	var readDone bool
	s.Go("io", func(p *sim.Proc) {
		d.Submit(&Request{Op: Write, Page: 3, Buf: want, Done: func() {}})
		p.Sleep(env.Millisecond)
		d.Submit(&Request{Op: Read, Page: 3, Buf: got, Done: func() { readDone = true }})
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if !readDone || !bytes.Equal(want, got) {
		t.Fatal("read did not observe written data")
	}
	c := d.Counters()
	if c.ReadOps != 1 || c.WriteOps != 1 || c.WriteBytes != PageSize {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRealDiskRoundtrip(t *testing.T) {
	d := NewRealDisk(NewMemStore(), 2, false)
	defer d.Close()
	var wg sync.WaitGroup
	want := make([]byte, PageSize)
	for i := range want {
		want[i] = byte(i)
	}
	wg.Add(1)
	d.Submit(&Request{Op: Write, Page: 1, Buf: want, Done: wg.Done})
	wg.Wait()
	got := make([]byte, PageSize)
	wg.Add(1)
	d.Submit(&Request{Op: Read, Page: 1, Buf: got, Done: wg.Done})
	wg.Wait()
	if !bytes.Equal(want, got) {
		t.Fatal("roundtrip mismatch")
	}
	if c := d.Counters(); c.ReadOps != 1 || c.WriteOps != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestAllocatorReuse(t *testing.T) {
	a := NewAllocator(10)
	p1 := a.Alloc(4)
	p2 := a.Alloc(4)
	if p1 != 10 || p2 != 14 {
		t.Fatalf("allocs = %d, %d", p1, p2)
	}
	a.Free(p1, 4)
	if p3 := a.Alloc(4); p3 != p1 {
		t.Fatalf("expected reuse of %d, got %d", p1, p3)
	}
	if p4 := a.Alloc(2); p4 != 18 {
		t.Fatalf("different size class should not reuse: got %d", p4)
	}
}

func TestProfileIOPSMath(t *testing.T) {
	o := Optane()
	if iops := o.MaxWriteIOPS(); iops < 500_000 || iops > 600_000 {
		t.Fatalf("Optane max write IOPS = %f", iops)
	}
	a := AmazonNVMe()
	if iops := a.MaxWriteIOPS(); iops < 160_000 || iops > 200_000 {
		t.Fatalf("Amazon max write IOPS = %f", iops)
	}
	ssd := SSD2013(0)
	if iops := ssd.MaxReadIOPS(); iops < 70_000 || iops > 80_000 {
		t.Fatalf("SSD max read IOPS = %f", iops)
	}
}

func newHist() *stats.Hist { return stats.NewHist() }

func fmtNs(d env.Time) string { return stats.FmtDur(d) }
