// Package device implements the block storage layer: page-granular backing
// stores (memory, file, null) and block devices — a simulated NVMe/SSD
// device whose timing is calibrated from the paper's Tables 1-2 (queue-depth
// dependent latency, sequential/random asymmetry, write-burst exhaustion and
// maintenance latency spikes), and a real device that executes I/O against a
// file for when KVell runs as an actual persistent store.
package device

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// PageSize is the block granularity of every device (4KB, as in the paper).
const PageSize = 4096

// Store is the page-granular backing medium of a device: where the bytes
// live, independent of how long access takes.
type Store interface {
	// ReadPages fills buf (len must be a multiple of PageSize) from the
	// pages starting at page.
	ReadPages(page int64, buf []byte) error
	// WritePages writes buf (len must be a multiple of PageSize) to the
	// pages starting at page.
	WritePages(page int64, buf []byte) error
	// Sync flushes written data to stable storage where applicable.
	Sync() error
	Close() error
}

// MemStore is an in-memory sparse page store. It is safe for concurrent use.
type MemStore struct {
	//kvell:lint-ignore nogoroutine MemStore also backs RealDisk's concurrent executors; under the sim it is only touched from the single scheduler thread
	mu    sync.RWMutex
	pages map[int64]*[PageSize]byte
	// free recycles page arrays released by Free: engines constantly free
	// old pages and write fresh page numbers, and every write is a full
	// page copy, so reuse is invisible to readers.
	free []*[PageSize]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{pages: make(map[int64]*[PageSize]byte)} }

func checkBuf(buf []byte) int {
	if len(buf) == 0 || len(buf)%PageSize != 0 {
		panic(fmt.Sprintf("device: buffer length %d not a positive multiple of %d", len(buf), PageSize))
	}
	return len(buf) / PageSize
}

// ReadPages implements Store. Never-written pages read as zeros.
func (m *MemStore) ReadPages(page int64, buf []byte) error {
	n := checkBuf(buf)
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := 0; i < n; i++ {
		dst := buf[i*PageSize : (i+1)*PageSize]
		if p, ok := m.pages[page+int64(i)]; ok {
			copy(dst, p[:])
		} else {
			for j := range dst {
				dst[j] = 0
			}
		}
	}
	return nil
}

// WritePages implements Store.
func (m *MemStore) WritePages(page int64, buf []byte) error {
	n := checkBuf(buf)
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := 0; i < n; i++ {
		p, ok := m.pages[page+int64(i)]
		if !ok {
			if f := len(m.free); f > 0 {
				p = m.free[f-1]
				m.free = m.free[:f-1]
			} else {
				p = new([PageSize]byte)
			}
			m.pages[page+int64(i)] = p
		}
		copy(p[:], buf[i*PageSize:(i+1)*PageSize])
	}
	return nil
}

// Sync implements Store (no-op).
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// Pages returns the number of distinct pages ever written.
func (m *MemStore) Pages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Snapshot returns a deep copy of the store's current page images — the
// "disk at reboot" a fault injector hands to recovery. The copy shares
// nothing with the live store, so post-crash mutations by still-unwinding
// procs cannot leak into it.
func (m *MemStore) Snapshot() *MemStore {
	m.mu.RLock()
	defer m.mu.RUnlock()
	// Collect and sort the page numbers first: map iteration order is
	// randomized per run and the copy must not depend on it (the copies
	// themselves are order-independent, but keeping the discipline uniform
	// is cheaper than arguing each site).
	nums := make([]int64, 0, len(m.pages))
	for pg := range m.pages {
		nums = append(nums, pg)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	c := NewMemStore()
	for _, pg := range nums {
		cp := new([PageSize]byte)
		*cp = *m.pages[pg]
		c.pages[pg] = cp
	}
	return c
}

// Free discards the content of count pages starting at page (space reuse
// bookkeeping; reads of freed pages return zeros again).
func (m *MemStore) Free(page int64, count int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := int64(0); i < count; i++ {
		if p, ok := m.pages[page+i]; ok {
			m.free = append(m.free, p)
			delete(m.pages, page+i)
		}
	}
}

// FileStore is a page store backed by a real file.
type FileStore struct {
	f *os.File
}

// OpenFileStore opens (creating if needed) the file at path as a page store.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: open %s: %w", path, err)
	}
	return &FileStore{f: f}, nil
}

// ReadPages implements Store. Reads past EOF return zeros.
func (s *FileStore) ReadPages(page int64, buf []byte) error {
	checkBuf(buf)
	n, err := s.f.ReadAt(buf, page*PageSize)
	if err != nil && n < len(buf) {
		// Zero-fill past EOF; propagate real errors.
		if pe, ok := err.(*os.PathError); ok {
			return pe
		}
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
	}
	return nil
}

// WritePages implements Store.
func (s *FileStore) WritePages(page int64, buf []byte) error {
	checkBuf(buf)
	_, err := s.f.WriteAt(buf, page*PageSize)
	return err
}

// Sync implements Store.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

// Size returns the file size in pages.
func (s *FileStore) Size() (int64, error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return (st.Size() + PageSize - 1) / PageSize, nil
}

// NullStore discards writes and reads zeros. Used for very large simulated
// datasets where page contents are irrelevant to the measured behaviour.
type NullStore struct{}

// ReadPages implements Store.
func (NullStore) ReadPages(page int64, buf []byte) error {
	checkBuf(buf)
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// WritePages implements Store.
func (NullStore) WritePages(page int64, buf []byte) error { checkBuf(buf); return nil }

// Sync implements Store.
func (NullStore) Sync() error { return nil }

// Close implements Store.
func (NullStore) Close() error { return nil }
