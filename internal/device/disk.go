package device

import (
	"sync"
	"sync/atomic"

	"kvell/internal/env"
	"kvell/internal/sim"
	"kvell/internal/stats"
	"kvell/internal/trace"
)

// Op is an I/O operation type.
type Op uint8

// I/O operation types.
const (
	Read Op = iota
	Write
)

// Request is one asynchronous block I/O. Completion is signaled by calling
// Done exactly once. On the simulated disk, Done runs on the simulation
// scheduler and must not block; on the real disk it runs on an executor
// goroutine. Typical implementations append to a completion list under a
// lock and signal a condition variable.
type Request struct {
	Op   Op
	Page int64  // first page
	Buf  []byte // len(Buf) = number of pages * PageSize
	Done func()
	// Submitted is stamped by the disk for latency accounting.
	Submitted env.Time
	// Trace, if set, attributes the device queue wait and service time to a
	// request's trace context (simulated disk only).
	Trace *trace.Ctx
	// Enqueued, if set, backdates the queue wait to when the request entered
	// a software batch (KVell's aio batching); zero means it arrived at
	// Submit time.
	Enqueued env.Time
	// Completed is stamped by the simulated disk with the predicted service
	// completion time, so async callers can attribute the dwell between
	// device completion and completion-queue pickup.
	Completed env.Time
}

// Disk is an asynchronous page-granular block device.
type Disk interface {
	// Submit enqueues the request. For writes, the buffer is consumed
	// (copied or written) before Submit returns and may be reused by the
	// caller; for reads the buffer is filled by completion time.
	Submit(r *Request)
	// Counters returns cumulative operation counters.
	Counters() Counters
}

// Counters is a snapshot of device activity.
type Counters struct {
	ReadOps, WriteOps     int64
	ReadBytes, WriteBytes int64
}

// TotalOps returns reads plus writes.
func (c Counters) TotalOps() int64 { return c.ReadOps + c.WriteOps }

// TotalBytes returns bytes read plus written.
func (c Counters) TotalBytes() int64 { return c.ReadBytes + c.WriteBytes }

// Sub returns c minus prev (for interval measurements).
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		ReadOps:    c.ReadOps - prev.ReadOps,
		WriteOps:   c.WriteOps - prev.WriteOps,
		ReadBytes:  c.ReadBytes - prev.ReadBytes,
		WriteBytes: c.WriteBytes - prev.WriteBytes,
	}
}

// SimDisk is the simulated device: a Profile-calibrated queueing station in
// front of a Store. All methods must be called from simulation context.
type SimDisk struct {
	s       *sim.Sim
	prof    Profile
	station *sim.Station
	store   Store

	counters Counters
	inflight int

	// sequential detection
	lastPage  int64
	lastPages int64

	// mixed read/write EWMA (fraction of recent ops that were writes)
	writeFrac float64

	// burst budget state
	burstLeft int64
	degraded  bool

	nextSpike env.Time

	// complFree recycles completion records so Submit does not allocate a
	// fresh closure per request; each record's fn is wired once.
	complFree []*simCompl

	// Optional instrumentation.
	LatHist    *stats.Hist     // per-request latency
	BWTimeline *stats.Timeline // bytes completed per bucket
	IOTimeline *stats.Timeline // ops completed per bucket
	Util       *stats.Util     // channel busy intervals
	Tracer     *trace.Tracer   // span tracing (spikes, per-channel service)
	ID         int             // disk index, used to label trace tracks

	// Machine is the sim machine domain the disk is attached to: completion
	// events are addressed to it, so halting the machine (sim.Halt) makes
	// queued completions vanish exactly like the machine's procs. Zero for
	// single-machine simulations.
	Machine int
}

// NewSimDisk returns a simulated disk with the given profile and backing
// store (NewMemStore() if store is nil).
func NewSimDisk(s *sim.Sim, prof Profile, store Store) *SimDisk {
	if store == nil {
		store = NewMemStore()
	}
	d := &SimDisk{
		s:         s,
		prof:      prof,
		station:   sim.NewStation(prof.Channels),
		store:     store,
		burstLeft: prof.BurstPages,
		lastPage:  -1,
	}
	if prof.SpikeEvery > 0 {
		d.nextSpike = d.spikeInterval()
	}
	d.station.OnBusy = func(start, end env.Time) {
		if d.Util != nil {
			d.Util.AddBusy(start, end)
		}
	}
	return d
}

// Profile returns the disk's performance profile.
func (d *SimDisk) Profile() Profile { return d.prof }

// Store returns the backing store.
func (d *SimDisk) Store() Store { return d.store }

// Counters implements Disk.
func (d *SimDisk) Counters() Counters { return d.counters }

// Inflight returns the number of submitted-but-incomplete requests.
func (d *SimDisk) Inflight() int { return d.inflight }

// Backlog returns how far in the future the busiest channel is booked — a
// proxy for device queue length.
func (d *SimDisk) Backlog() env.Time { return d.station.Backlog(d.s.Now()) }

func (d *SimDisk) spikeInterval() env.Time {
	j := d.prof.SpikeJitter
	iv := d.prof.SpikeEvery
	if j > 0 {
		iv += env.Time(d.s.Rand().Int63n(2*j+1)) - j
	}
	return d.s.Now() + iv
}

func (d *SimDisk) maybeSpike(now env.Time) {
	if d.prof.SpikeEvery == 0 || now < d.nextSpike {
		return
	}
	min, max := d.prof.SpikeDurMin, d.prof.SpikeDurMax
	if d.degraded && d.prof.DegradedSpikeDur > 0 {
		min, max = d.prof.DegradedSpikeDur/2, d.prof.DegradedSpikeDur
	}
	dur := min
	if max > min {
		dur += env.Time(d.s.Rand().Int63n(int64(max - min + 1)))
	}
	d.station.Pause(now + dur)
	d.Tracer.AddBg("devspike", now, now+dur)
	d.nextSpike = d.spikeInterval()
}

// service computes the total service time for a request of n pages.
func (d *SimDisk) service(op Op, page int64, n int64) env.Time {
	seq := page == d.lastPage+d.lastPages
	d.lastPage, d.lastPages = page, n

	// Update the write-fraction EWMA (per request, alpha 1/64).
	w := 0.0
	if op == Write {
		w = 1.0
	}
	d.writeFrac += (w - d.writeFrac) / 64

	var per float64
	switch op {
	case Read:
		per = float64(d.prof.ReadSvc)
		if d.prof.MixReadPenalty > 1 {
			per *= 1 + (d.prof.MixReadPenalty-1)*d.writeFrac
		}
		if seq {
			per *= d.prof.SeqReadFactor
		}
	case Write:
		per = float64(d.prof.WriteSvc)
		if seq {
			per *= d.prof.SeqWriteFactor
		} else if d.prof.BurstPages > 0 {
			// Random writes consume the burst budget.
			d.burstLeft -= n
			if d.burstLeft <= 0 {
				d.degraded = true
			}
		}
		if d.degraded && !seq {
			per = float64(d.prof.DegradedWriteSvc)
		}
	}
	return env.Time(per * float64(n))
}

// Submit implements Disk.
func (d *SimDisk) Submit(r *Request) {
	now := d.s.Now()
	r.Submitted = now
	n := int64(len(r.Buf) / PageSize)
	d.maybeSpike(now)
	svc := d.service(r.Op, r.Page, n)
	d.inflight++

	switch r.Op {
	case Write:
		// Data is captured at submission; the caller may reuse the buffer.
		if err := d.store.WritePages(r.Page, r.Buf); err != nil {
			panic("device: sim write failed: " + err.Error())
		}
		d.counters.WriteOps++
		d.counters.WriteBytes += n * PageSize
	case Read:
		d.counters.ReadOps++
		d.counters.ReadBytes += n * PageSize
	}

	done := d.station.Assign(now, svc)
	r.Completed = done
	if r.Trace != nil {
		q0 := r.Enqueued
		if q0 <= 0 || q0 > now {
			q0 = now
		}
		server, start := d.station.LastAssign()
		r.Trace.AddDev(d.ID, server, q0, start, done)
	}
	cp := d.getCompl()
	// The request's fields are copied into the record at submission: the
	// caller may recycle the Request struct once Done has run, and write
	// data already reached the store above.
	cp.buf = r.Buf
	cp.page = r.Page
	cp.op = r.Op
	cp.n = n
	cp.submitted = r.Submitted
	cp.reqDone = r.Done
	d.s.AtOn(d.Machine, done, cp.fn)
}

// simCompl is a pooled completion record; fn is created once per record and
// captures only the record itself.
type simCompl struct {
	d         *SimDisk
	buf       []byte
	page      int64
	op        Op
	n         int64
	submitted env.Time
	reqDone   func()
	fn        func()
}

func (d *SimDisk) getCompl() *simCompl {
	if n := len(d.complFree); n > 0 {
		cp := d.complFree[n-1]
		d.complFree = d.complFree[:n-1]
		return cp
	}
	cp := &simCompl{d: d}
	cp.fn = cp.run
	return cp
}

func (cp *simCompl) run() {
	d := cp.d
	if cp.op == Read {
		if err := d.store.ReadPages(cp.page, cp.buf); err != nil {
			panic("device: sim read failed: " + err.Error())
		}
	}
	d.inflight--
	t := d.s.Now()
	if d.LatHist != nil {
		d.LatHist.Add(t - cp.submitted)
	}
	if d.BWTimeline != nil {
		d.BWTimeline.Add(t, float64(cp.n*PageSize))
	}
	if d.IOTimeline != nil {
		d.IOTimeline.Add(t, 1)
	}
	reqDone := cp.reqDone
	cp.buf = nil
	cp.reqDone = nil
	d.complFree = append(d.complFree, cp)
	if reqDone != nil {
		reqDone()
	}
}

// RealDisk executes I/O against a Store using a pool of goroutines; it is
// the device used when KVell runs in the real environment. Requests are
// routed to executors by page so that operations on the same page execute
// in submission order (read-modify-write flows depend on this).
type RealDisk struct {
	store Store
	reqs  []chan *Request
	//kvell:lint-ignore nogoroutine RealDisk is the real-runtime device; it never runs under the simulator
	wg       sync.WaitGroup
	syncEach bool

	readOps, writeOps     atomic.Int64
	readBytes, writeBytes atomic.Int64
}

// NewRealDisk returns a real disk over store with workers executor
// goroutines. If syncWrites is true every write is followed by a Sync, so
// completion implies durability (KVell's no-commit-log guarantee).
func NewRealDisk(store Store, workers int, syncWrites bool) *RealDisk {
	if workers < 1 {
		workers = 4
	}
	d := &RealDisk{store: store, syncEach: syncWrites}
	d.reqs = make([]chan *Request, workers)
	d.wg.Add(workers)
	for i := 0; i < workers; i++ {
		d.reqs[i] = make(chan *Request, 256)
		//kvell:lint-ignore nogoroutine RealDisk executors are real-runtime I/O threads; never used under the simulator
		go d.run(d.reqs[i])
	}
	return d
}

func (d *RealDisk) run(reqs chan *Request) {
	defer d.wg.Done()
	for r := range reqs {
		n := int64(len(r.Buf) / PageSize)
		var err error
		switch r.Op {
		case Read:
			err = d.store.ReadPages(r.Page, r.Buf)
			d.readOps.Add(1)
			d.readBytes.Add(n * PageSize)
		case Write:
			err = d.store.WritePages(r.Page, r.Buf)
			if err == nil && d.syncEach {
				err = d.store.Sync()
			}
			d.writeOps.Add(1)
			d.writeBytes.Add(n * PageSize)
		}
		if err != nil {
			panic("device: real I/O failed: " + err.Error())
		}
		if r.Done != nil {
			r.Done()
		}
	}
}

// Submit implements Disk. Writes copy the caller's buffer before queueing.
func (d *RealDisk) Submit(r *Request) {
	if r.Op == Write {
		// The executor runs asynchronously; capture the data now so the
		// caller may reuse its buffer, matching SimDisk semantics.
		cp := make([]byte, len(r.Buf))
		copy(cp, r.Buf)
		r = &Request{Op: r.Op, Page: r.Page, Buf: cp, Done: r.Done}
	}
	d.reqs[int(uint64(r.Page)%uint64(len(d.reqs)))] <- r
}

// Counters implements Disk.
func (d *RealDisk) Counters() Counters {
	return Counters{
		ReadOps:    d.readOps.Load(),
		WriteOps:   d.writeOps.Load(),
		ReadBytes:  d.readBytes.Load(),
		WriteBytes: d.writeBytes.Load(),
	}
}

// Store returns the backing store.
func (d *RealDisk) Store() Store { return d.store }

// Close drains pending requests and stops the executors.
func (d *RealDisk) Close() {
	for _, ch := range d.reqs {
		close(ch)
	}
	d.wg.Wait()
}

// Allocator hands out page ranges from a flat page space; engines use one
// per disk to place their files (slabs, SSTables, tree pages, logs).
// It is not safe for concurrent use; in the simulator access is naturally
// serialized, and real-mode KVell partitions allocators per worker.
type Allocator struct {
	next int64
	free map[int64][]int64 // size class (pages) -> freed extents
}

// NewAllocator returns an allocator starting at page start.
func NewAllocator(start int64) *Allocator {
	return &Allocator{next: start, free: make(map[int64][]int64)}
}

// Alloc returns the first page of a fresh extent of n pages.
func (a *Allocator) Alloc(n int64) int64 {
	if lst := a.free[n]; len(lst) > 0 {
		p := lst[len(lst)-1]
		a.free[n] = lst[:len(lst)-1]
		return p
	}
	p := a.next
	a.next += n
	return p
}

// Free returns an extent of n pages starting at page for reuse by
// same-sized allocations.
func (a *Allocator) Free(page, n int64) {
	a.free[n] = append(a.free[n], page)
}

// HighWater returns the page just past the furthest allocation.
func (a *Allocator) HighWater() int64 { return a.next }
