package device

import "kvell/internal/env"

// Profile is a calibrated performance model of a block device. All service
// times are per 4KB page for random access; channels model the device's
// internal parallelism. The three stock profiles are calibrated from the
// paper's Tables 1 and 2:
//
//	              read IOPS  write IOPS  QD1 write lat  max write bw
//	Config-SSD        75K        11K*        65us          random 0.04GB/s
//	Config-AmazonNVMe 412K       180K        33us          0.7GB/s  (per drive)
//	Config-Optane     575K       550K        11us          2.0GB/s
//
// (* steady state; 50K IOPS burst for the first BurstPages, Figure 1.)
//
// With C channels and per-page service time S, maximum IOPS = C/S and the
// latency at queue depth q is ~q*S/C (Little's law), which reproduces the
// latency/bandwidth-vs-queue-depth curve of Table 2.
type Profile struct {
	Name     string
	Channels int

	ReadSvc  env.Time // random 4K read service time
	WriteSvc env.Time // random 4K write service time

	// Sequential accesses are scaled by these factors (<= 1 means
	// sequential is faster; near 1 on modern drives, Table 1).
	SeqReadFactor  float64
	SeqWriteFactor float64

	// MixReadPenalty inflates read service time in mixed workloads:
	// effective = ReadSvc * (1 + (MixReadPenalty-1)*writeFraction).
	// Calibrated so Config-AmazonNVMe's 50/50 mix lands at 175K IOPS
	// (Table 1) instead of the 252K a pure harmonic mix would give.
	MixReadPenalty float64

	// Burst model (older SSDs, Figure 1): the first BurstPages random
	// writes are served at WriteSvc; after that the device degrades to
	// DegradedWriteSvc (internal garbage collection can no longer keep
	// up). Zero means no degradation. Sequential writes do not consume
	// burst budget.
	BurstPages       int64
	DegradedWriteSvc env.Time

	// Maintenance latency spikes (Figure 2): roughly every SpikeEvery
	// (uniformly jittered by ±SpikeJitter) the device stalls all channels
	// for a duration uniform in [SpikeDurMin, SpikeDurMax]. Zero
	// SpikeEvery disables spikes. DegradedSpikeDur, if non-zero, replaces
	// the duration range once the burst budget is exhausted (old SSDs
	// exhibit ~100ms stalls under sustained writes).
	SpikeEvery       env.Time
	SpikeJitter      env.Time
	SpikeDurMin      env.Time
	SpikeDurMax      env.Time
	DegradedSpikeDur env.Time
}

// MaxReadIOPS returns the profile's peak random-read IOPS.
func (p Profile) MaxReadIOPS() float64 {
	return float64(p.Channels) * float64(env.Second) / float64(p.ReadSvc)
}

// MaxWriteIOPS returns the profile's peak random-write IOPS (burst rate).
func (p Profile) MaxWriteIOPS() float64 {
	return float64(p.Channels) * float64(env.Second) / float64(p.WriteSvc)
}

// Optane returns the Config-Optane profile (Intel Optane 905P, 2018):
// 575K read / 550K write IOPS, ~2GB/s writes, 11us QD1 latency, negligible
// random-vs-sequential difference, sub-4ms rare spikes.
func Optane() Profile {
	return Profile{
		Name:           "Config-Optane",
		Channels:       6,
		ReadSvc:        10_400,
		WriteSvc:       11_000,
		SeqReadFactor:  0.88,
		SeqWriteFactor: 1.0,
		MixReadPenalty: 1.05,
		SpikeEvery:     10 * env.Second,
		SpikeJitter:    5 * env.Second,
		SpikeDurMin:    300 * env.Microsecond,
		SpikeDurMax:    3_600 * env.Microsecond,
	}
}

// AmazonNVMe returns the per-drive Config-Amazon-8NVMe profile (AWS
// i3.metal NVMe, 2016 technology): 412K read / 180K write IOPS per drive,
// 33us QD1 write latency, periodic spikes up to 15ms.
func AmazonNVMe() Profile {
	return Profile{
		Name:           "Config-Amazon-8NVMe",
		Channels:       6,
		ReadSvc:        14_600,
		WriteSvc:       33_000,
		SeqReadFactor:  0.84,
		SeqWriteFactor: 0.875,
		MixReadPenalty: 2.4,
		SpikeEvery:     30 * env.Second,
		SpikeJitter:    10 * env.Second,
		SpikeDurMin:    3 * env.Millisecond,
		SpikeDurMax:    15 * env.Millisecond,
	}
}

// ColdSSD returns the Config-ColdSSD profile: a capacity-oriented slow SATA
// SSD used as the cold tier in the tiering experiments. ~31K random-read
// IOPS (4 channels x 130us), 10K random-write IOPS, a strong sequential
// advantage and a modest mixed-workload read penalty. It is deliberately an
// order of magnitude slower than Config-Optane on reads: a store that misses
// its hot set pays for it here, which is what makes the hot-key cache's
// 21%-vs-99% hit-rate dichotomy visible as a goodput cliff.
func ColdSSD() Profile {
	return Profile{
		Name:           "Config-ColdSSD",
		Channels:       4,
		ReadSvc:        130_000,
		WriteSvc:       400_000,
		SeqReadFactor:  0.35,
		SeqWriteFactor: 0.25,
		MixReadPenalty: 1.3,
		SpikeEvery:     15 * env.Second,
		SpikeJitter:    7 * env.Second,
		SpikeDurMin:    2 * env.Millisecond,
		SpikeDurMax:    10 * env.Millisecond,
	}
}

// SSD2013 returns the Config-SSD profile (Intel DC S3500, 2013): 75K read
// IOPS, 50K burst / 11K sustained random-write IOPS, strong
// sequential-write advantage, and ~100ms stalls under sustained writes.
//
// burstPages scales the burst budget; the paper's device sustains its burst
// for ~40 minutes (≈120M pages). Experiments pass a scaled-down budget so
// Figure 1's burst→degraded transition is visible in a short simulation;
// pass 0 to use the full-device value.
func SSD2013(burstPages int64) Profile {
	if burstPages == 0 {
		burstPages = 120_000_000
	}
	return Profile{
		Name:             "Config-SSD",
		Channels:         5,
		ReadSvc:          66_000,
		WriteSvc:         100_000,
		SeqReadFactor:    0.6,
		SeqWriteFactor:   0.5,
		MixReadPenalty:   1.0,
		BurstPages:       burstPages,
		DegradedWriteSvc: 454_000,
		SpikeEvery:       20 * env.Second,
		SpikeJitter:      10 * env.Second,
		SpikeDurMin:      1 * env.Millisecond,
		SpikeDurMax:      5 * env.Millisecond,
		DegradedSpikeDur: 100 * env.Millisecond,
	}
}
