package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the lightweight intra-procedural dataflow machinery shared
// by the invariant analyzers (poolescape, spanclose, errflow). It is
// deliberately simpler than a full SSA/CFG framework: Go's structured
// control flow (if/for/range/switch/select, break/continue/return) is walked
// recursively with an abstract state, and the rare unstructured constructs
// (goto, labeled branches) make the enclosing check bail out conservatively
// — silence, never a false positive.

// funcBodies calls fn for every function body in the file: declarations and
// function literals. Each body is presented once; literals nested inside a
// declaration are also presented on their own.
func funcBodies(f *ast.File, fn func(body *ast.BlockStmt, decl ast.Node)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body, n)
			}
		case *ast.FuncLit:
			fn(n.Body, n)
		}
		return true
	})
}

// ancestors returns the chain of nodes from root down to target, inclusive,
// or nil when target is not in root's subtree.
func ancestors(root, target ast.Node) []ast.Node {
	var stack, found []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			found = append([]ast.Node{}, stack...)
			return false
		}
		return true
	})
	return found
}

// namedTypeName returns the name of the (possibly pointer-wrapped) named
// type of t, or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	// Unwrap aliases but not defined types.
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// recvTypeName resolves the named type of a method call's receiver, e.g.
// "Tracer" for tr.BeginBg(...). Works from type info alone, so local
// stand-in types in fixtures resolve exactly like the real ones.
func (p *Pass) recvTypeName(sel *ast.SelectorExpr) string {
	if s, ok := p.Pkg.Info.Selections[sel]; ok {
		return namedTypeName(s.Recv())
	}
	return ""
}

// useKind classifies an identifier occurrence.
type useKind uint8

const (
	useRead useKind = iota
	useWrite
)

// objUse is one occurrence of a variable, in source order.
type objUse struct {
	pos  token.Pos
	kind useKind
}

// objUses collects every occurrence of variables inside root, classified as
// read or write (assignment LHS, range variables). The per-object slices
// come out in source order because ast.Inspect visits in source order.
func objUses(info *types.Info, root ast.Node) map[types.Object][]objUse {
	writes := make(map[*ast.Ident]bool)
	markWrite := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			writes[id] = true
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				markWrite(l)
			}
		case *ast.RangeStmt:
			markWrite(n.Key)
			if n.Value != nil {
				markWrite(n.Value)
			}
		case *ast.IncDecStmt:
			markWrite(n.X)
		}
		return true
	})
	uses := make(map[types.Object][]objUse)
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
			if obj == nil {
				return true
			}
			// A Def is a write by definition (:=, func params are not
			// interesting here but harmless).
			uses[obj] = append(uses[obj], objUse{id.Pos(), useWrite})
			return true
		}
		k := useRead
		if writes[id] {
			k = useWrite
		}
		uses[obj] = append(uses[obj], objUse{id.Pos(), k})
		return true
	})
	return uses
}

// innermostList returns the innermost statement-list holder (block, case or
// comm clause) in body that contains pos. Two positions in the same list are
// on one straight-line path; positions in sibling branches are not.
func innermostList(body *ast.BlockStmt, pos token.Pos) ast.Node {
	var best ast.Node = body
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			if n.Pos() <= pos && pos < n.End() {
				best = n
			}
		}
		return true
	})
	return best
}

// exit is one control-flow exit (break/continue) bubbling out of a walked
// region, with the abstract closed-state along that path.
type exit struct {
	pos    token.Pos
	closed bool
}

// flowOut is the outcome of abstractly executing a statement (or list).
type flowOut struct {
	fall   bool // control can reach the point just after
	closed bool // if fall: the tracked value is closed on every falling path
	brks   []exit
	conts  []exit
}

// closeFlow checks that a tracked value is "closed" on every path from a
// start point to every exit. The client provides stmtEvent, which inspects
// one simple statement (or the non-body parts of a compound one) and
// reports whether it closes the value and/or exits early. Labeled
// statements and goto abort the whole check (aborted is set).
type closeFlow struct {
	// event reports whether the node subtree contains a closing event for
	// the tracked value. It is called on simple statements and on the
	// init/cond parts of compound ones.
	event func(ast.Node) bool
	// rebind, if non-nil, is called when a statement overwrites the tracked
	// variable while the closed-state is open.
	rebind func(stmt *ast.AssignStmt)
	// onOpenReturn is called for each return reached with the value open.
	onOpenReturn func(*ast.ReturnStmt)
	// isRebind reports whether this assignment overwrites the tracked var.
	isRebind func(*ast.AssignStmt) bool

	aborted bool
}

func (cf *closeFlow) scan(n ast.Node, closed bool) bool {
	if n == nil || cf.event == nil {
		return closed
	}
	if cf.event(n) {
		return true
	}
	return closed
}

// walkList abstractly executes a statement list with entry state closed.
func (cf *closeFlow) walkList(list []ast.Stmt, closed bool) flowOut {
	out := flowOut{fall: true, closed: closed}
	for _, s := range list {
		if !out.fall || cf.aborted {
			break
		}
		so := cf.walkStmt(s, out.closed)
		out.brks = append(out.brks, so.brks...)
		out.conts = append(out.conts, so.conts...)
		out.fall = so.fall
		out.closed = so.closed
	}
	return out
}

// mergeBranches combines alternative branch outcomes (if/else, switch
// cases): control falls through when any branch falls, and the value is
// closed only when every falling branch closed it.
func mergeBranches(outs ...flowOut) flowOut {
	m := flowOut{closed: true}
	for _, o := range outs {
		if o.fall {
			m.fall = true
			m.closed = m.closed && o.closed
		}
		m.brks = append(m.brks, o.brks...)
		m.conts = append(m.conts, o.conts...)
	}
	return m
}

// loopOut resolves a loop body's outcome into the state after the loop.
// mayskip says the body can execute zero times (cond / range loops).
// Continues are iteration-internal and do not affect the exit state; the
// caller consumes them.
func loopOut(entry bool, body flowOut, mayskip bool) flowOut {
	out := flowOut{}
	if mayskip {
		// Exit via the condition: either without entering (entry state) or
		// after an iteration whose body fell through (body state).
		out.fall = true
		out.closed = entry
		if body.fall {
			out.closed = out.closed && body.closed
		}
	}
	if len(body.brks) > 0 {
		all := true
		for _, b := range body.brks {
			all = all && b.closed
		}
		if out.fall {
			out.closed = out.closed && all
		} else {
			out.fall, out.closed = true, all
		}
	}
	return out
}

func (cf *closeFlow) walkStmt(s ast.Stmt, closed bool) flowOut {
	if cf.aborted {
		return flowOut{fall: true, closed: closed}
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		closed = cf.scan(s, closed)
		if !closed && cf.onOpenReturn != nil {
			cf.onOpenReturn(s)
		}
		return flowOut{}
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				cf.aborted = true
				return flowOut{}
			}
			return flowOut{brks: []exit{{s.Pos(), closed}}}
		case token.CONTINUE:
			if s.Label != nil {
				cf.aborted = true
				return flowOut{}
			}
			return flowOut{conts: []exit{{s.Pos(), closed}}}
		default: // goto, fallthrough
			cf.aborted = true
			return flowOut{}
		}
	case *ast.LabeledStmt:
		cf.aborted = true
		return flowOut{}
	case *ast.BlockStmt:
		return cf.walkList(s.List, closed)
	case *ast.IfStmt:
		closed = cf.scan(s.Init, closed)
		closed = cf.scan(s.Cond, closed)
		then := cf.walkStmt(s.Body, closed)
		els := flowOut{fall: true, closed: closed}
		if s.Else != nil {
			els = cf.walkStmt(s.Else, closed)
		}
		return mergeBranches(then, els)
	case *ast.ForStmt:
		closed = cf.scan(s.Init, closed)
		closed = cf.scan(s.Cond, closed)
		body := cf.walkStmt(s.Body, closed)
		body.closed = cf.scan(s.Post, body.closed)
		lo := loopOut(closed, body, s.Cond != nil)
		lo.conts = nil // consumed by this loop
		return lo
	case *ast.RangeStmt:
		closed = cf.scan(s.X, closed)
		body := cf.walkStmt(s.Body, closed)
		lo := loopOut(closed, body, true)
		lo.conts = nil
		return lo
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var init, tag ast.Node
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag, clauses = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, tag, clauses = sw.Init, sw.Assign, sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		closed = cf.scan(init, closed)
		closed = cf.scan(tag, closed)
		var outs []flowOut
		for _, cl := range clauses {
			var body []ast.Stmt
			switch cl := cl.(type) {
			case *ast.CaseClause:
				if cl.List == nil {
					hasDefault = true
				}
				for _, e := range cl.List {
					closed = cf.scan(e, closed)
				}
				body = cl.Body
			case *ast.CommClause:
				if cl.Comm == nil {
					hasDefault = true
				} else {
					closed = cf.scan(cl.Comm, closed)
				}
				body = cl.Body
			}
			co := cf.walkList(body, closed)
			// Unlabeled break inside a case exits the switch: fold into the
			// case's fall-through outcome.
			for _, b := range co.brks {
				co.fall = true
				co.closed = co.closed && b.closed
			}
			co.brks = nil
			outs = append(outs, co)
		}
		if !hasDefault {
			outs = append(outs, flowOut{fall: true, closed: closed})
		}
		return mergeBranches(outs...)
	case *ast.AssignStmt:
		if cf.isRebind != nil && cf.isRebind(s) {
			if !closed && cf.rebind != nil {
				cf.rebind(s)
			}
			// The old value's fate was just reported (or it was closed);
			// treat the slot as fresh so errors do not cascade.
			return flowOut{fall: true, closed: true}
		}
		return flowOut{fall: true, closed: cf.scan(s, closed)}
	default:
		// Simple statements: expression, send, defer, go, decl, incdec,
		// empty. Scan the whole subtree for closing events.
		return flowOut{fall: true, closed: cf.scan(s, closed)}
	}
}
