// Package analysis is a zero-dependency static-analysis framework enforcing
// the repository's determinism invariants (see DESIGN.md "Determinism
// invariants"). Every number the simulator reproduces from the paper depends
// on bit-for-bit deterministic runs, so the properties "no wall clock", "no
// ambient randomness", "no unordered map iteration feeding results" and "no
// raw concurrency in sim-driven code" are machine-checked rather than left to
// convention.
//
// The framework is deliberately small: an Analyzer inspects one type-checked
// Package and reports Diagnostics; the driver (cmd/kvell-lint) loads every
// package in the module and runs all registered analyzers. Only the standard
// library (go/ast, go/types, go/parser) is used, keeping go.mod dependency
// free.
//
// Individual findings can be suppressed with a comment on the offending line
// or the line directly above it:
//
//	//kvell:lint-ignore <analyzer> <reason>
//
// The analyzer name must be one of the registered analyzers and the reason is
// mandatory; malformed directives are themselves diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Hint     string // how to fix it; printed indented under the message
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	if d.Hint != "" {
		s += "\n\tfix: " + d.Hint
	}
	return s
}

// Analyzer checks one package for a class of determinism hazards.
type Analyzer struct {
	Name string // short lowercase identifier, used in suppression comments
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) combination.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos. hint may be empty.
func (p *Pass) Reportf(pos token.Pos, hint, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Hint:     hint,
	})
}

// PkgPath returns the import path of the referenced package if id resolves to
// an import (e.g. the "time" in time.Now), or "" otherwise. Resolution uses
// type information, so a local variable shadowing a package name is never
// mistaken for the package.
func (p *Pass) PkgPath(id *ast.Ident) string {
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// SelectorPkg returns the import path for a pkg.Name selector expression,
// or "" when the selector is not a package-qualified reference.
func (p *Pass) SelectorPkg(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	return p.PkgPath(id)
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// All returns the registered analyzers in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallTime, NoRand, MapOrder, NoGoroutine, TraceTime,
		PoolEscape, SpanClose, ErrFlow, PtrLeak,
	}
}

// ByName returns the registered analyzer with the given name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// IgnoreDirective is the suppression comment prefix.
const IgnoreDirective = "//kvell:lint-ignore"

// suppression is one parsed //kvell:lint-ignore directive.
type suppression struct {
	analyzer string
	line     int // the directive's own line; it covers this line and the next
	pos      token.Position
}

// parseSuppressions scans a file's comments for lint-ignore directives.
// Malformed directives (unknown analyzer, missing reason) are reported as
// diagnostics of the pseudo-analyzer "lint-ignore", which cannot itself be
// suppressed.
func parseSuppressions(fset *token.FileSet, f *ast.File, analyzers []*Analyzer) (sups []suppression, bad []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnoreDirective) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, IgnoreDirective)
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint-ignore",
					Message: "malformed suppression: missing analyzer name and reason",
					Hint:    "write " + IgnoreDirective + " <analyzer> <reason>"})
			case !known[fields[0]]:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint-ignore",
					Message: fmt.Sprintf("suppression names unknown analyzer %q", fields[0]),
					Hint:    "known analyzers: " + analyzerNames(analyzers)})
			case len(fields) < 2:
				bad = append(bad, Diagnostic{Pos: pos, Analyzer: "lint-ignore",
					Message: fmt.Sprintf("suppression of %q has no reason", fields[0]),
					Hint:    "state why the finding is safe: " + IgnoreDirective + " " + fields[0] + " <reason>"})
			default:
				sups = append(sups, suppression{analyzer: fields[0], line: pos.Line, pos: pos})
			}
		}
	}
	return sups, bad
}

func analyzerNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Check runs every analyzer over every package, applies suppression
// directives, and returns the surviving diagnostics sorted by position.
// A directive that suppresses no finding is itself reported (under the
// pseudo-analyzer "lint-ignore", which cannot be suppressed): stale
// suppressions are how an ignore inventory rots as code moves.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		// One entry per directive, shared by the two lines it covers, so
		// usage on either line marks the directive live.
		type supEntry struct {
			stale Diagnostic
			used  bool
		}
		var entries []*supEntry
		// (analyzer, file, line) -> covering directive.
		suppressed := make(map[string]map[int]*supEntry)
		for _, f := range pkg.Files {
			sups, bad := parseSuppressions(pkg.Fset, f, analyzers)
			out = append(out, bad...)
			file := pkg.Fset.Position(f.Pos()).Filename
			for _, s := range sups {
				e := &supEntry{stale: Diagnostic{Pos: s.pos, Analyzer: "lint-ignore",
					Message: fmt.Sprintf("stale suppression: no %s finding on this or the next line", s.analyzer),
					Hint:    "delete the directive (the code it excused is gone), or move it next to the offending line"}}
				entries = append(entries, e)
				key := s.analyzer + "\x00" + file
				if suppressed[key] == nil {
					suppressed[key] = make(map[int]*supEntry)
				}
				suppressed[key][s.line] = e
				suppressed[key][s.line+1] = e
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if m := suppressed[d.Analyzer+"\x00"+d.Pos.Filename]; m != nil && m[d.Pos.Line] != nil {
					m[d.Pos.Line].used = true
					continue
				}
				out = append(out, d)
			}
		}
		for _, e := range entries {
			if !e.used {
				out = append(out, e.stale)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
