package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// checkFixture type-checks one testdata file as if it lived at module path
// rel, using the fake-import fallback (no export data, no go tool), and runs
// every analyzer. displayName overrides the filename recorded in positions,
// letting tests exercise the _test.go exemption.
func checkFixture(t *testing.T, rel, displayName, fixture string) ([]Diagnostic, []string) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", fixture))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, displayName, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	pkg := &Package{
		Path:  "kvell/" + rel,
		Rel:   rel,
		Fset:  fset,
		Files: []*ast.File{f},
		Info:  newInfo(),
	}
	conf := types.Config{
		Importer: newExportImporter(fset, map[string]string{}),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	return Check([]*Package{pkg}, All()), strings.Split(string(src), "\n")
}

// wantMarkers extracts "line:analyzer" expectations from "// want <analyzer>"
// comments in the fixture source.
func wantMarkers(lines []string) []string {
	var want []string
	for i, line := range lines {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		for _, name := range strings.Fields(line[idx+len("// want "):]) {
			want = append(want, fmt.Sprintf("%d:%s", i+1, name))
		}
	}
	sort.Strings(want)
	return want
}

func gotKeys(diags []Diagnostic) []string {
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Analyzer))
	}
	sort.Strings(got)
	return got
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		fixture string
		rel     string
	}{
		{"walltime.go", "internal/core"},
		{"randfix.go", "internal/ycsb"},
		{"maporder.go", "internal/core"},
		{"goroutine.go", "internal/engine/betree"},
		{"suppress.go", "internal/core"},
		{"tracetime.go", "internal/trace"},
		{"poolescape.go", "internal/engine/lsm"},
		{"spanclose.go", "internal/engine/wtree"},
		{"errflow.go", "internal/sim"},
		{"ptrleak.go", "internal/stats"},
		{"edgecases.go", "internal/core"},
		// The cluster-model packages are sim-driven like internal/core: both
		// position-sensitive analyzers must fire there with no allowlist
		// entry (raw goroutines or wall-clock reads in the network or
		// replication path would silently break cluster determinism).
		{"walltime.go", "internal/net"},
		{"goroutine.go", "internal/net"},
		{"walltime.go", "internal/cluster"},
		{"goroutine.go", "internal/cluster"},
		// The transaction layer's determinism story depends on every retry
		// backoff being seeded and every timestamp coming from the virtual
		// clock: both analyzers must fire in internal/mvcc and internal/txn
		// with no allowlist entry.
		{"walltime.go", "internal/mvcc"},
		{"randfix.go", "internal/mvcc"},
		{"walltime.go", "internal/txn"},
		{"randfix.go", "internal/txn"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture+"@"+tc.rel, func(t *testing.T) {
			diags, lines := checkFixture(t, tc.rel, "testdata/"+tc.fixture, tc.fixture)
			want := wantMarkers(lines)
			got := gotKeys(diags)
			if strings.Join(got, " ") != strings.Join(want, " ") {
				t.Errorf("diagnostics mismatch\n got: %v\nwant: %v\nfull:\n%s",
					got, want, renderDiags(diags))
			}
		})
	}
}

// Allowlisted packages produce no findings from the position-sensitive
// analyzers; norand has no allowlist and keeps firing everywhere.
func TestAllowlistBoundaries(t *testing.T) {
	cases := []struct {
		fixture string
		rel     string
		want    int
	}{
		{"walltime.go", "cmd/kvell-bench", 0},
		{"walltime.go", "examples/demo", 0},
		{"walltime.go", "internal/env", 0},
		{"walltime.go", "internal/envoy", 6}, // prefix must not over-match
		{"goroutine.go", "internal/sim", 0},
		{"goroutine.go", "internal/env", 0},
		{"goroutine.go", "cmd/kvell-bench", 0},
		{"goroutine.go", "internal/simulator", 3}, // exact match only
		{"randfix.go", "cmd/kvell-bench", 4},      // norand applies everywhere
		{"tracetime.go", "internal/core", 0},      // import rule scoped to internal/trace
	}
	for _, tc := range cases {
		t.Run(tc.fixture+"@"+tc.rel, func(t *testing.T) {
			diags, _ := checkFixture(t, tc.rel, "testdata/"+tc.fixture, tc.fixture)
			if len(diags) != tc.want {
				t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), tc.want, renderDiags(diags))
			}
		})
	}
}

// nogoroutine exempts _test.go files (tests may drive the real runtime);
// nowalltime does not (a test reading the wall clock is still nondeterministic).
func TestTestFileExemption(t *testing.T) {
	diags, _ := checkFixture(t, "internal/engine/betree", "testdata/fixture_test.go", "goroutine.go")
	if len(diags) != 0 {
		t.Errorf("nogoroutine should skip _test.go files, got:\n%s", renderDiags(diags))
	}
	diags, lines := checkFixture(t, "internal/core", "testdata/fixture_test.go", "walltime.go")
	if got, want := gotKeys(diags), wantMarkers(lines); strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("nowalltime must apply to _test.go files too\n got: %v\nwant: %v", got, want)
	}
}

func TestMalformedSuppressions(t *testing.T) {
	diags, _ := checkFixture(t, "internal/core", "testdata/badsuppress.go", "badsuppress.go")
	wantLines := []int{4, 7, 10}
	if len(diags) != len(wantLines) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wantLines), renderDiags(diags))
	}
	wantSubstr := []string{"missing analyzer", "unknown analyzer", "no reason"}
	for i, d := range diags {
		if d.Analyzer != "lint-ignore" {
			t.Errorf("diag %d: analyzer %q, want lint-ignore", i, d.Analyzer)
		}
		if d.Pos.Line != wantLines[i] {
			t.Errorf("diag %d: line %d, want %d", i, d.Pos.Line, wantLines[i])
		}
		if !strings.Contains(d.Message, wantSubstr[i]) {
			t.Errorf("diag %d: message %q does not mention %q", i, d.Message, wantSubstr[i])
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "nowalltime",
		Message:  "wall-clock call",
		Hint:     "use the virtual clock",
	}
	want := "x.go:3:7: [nowalltime] wall-clock call\n\tfix: use the virtual clock"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
	d.Hint = ""
	if got := d.String(); strings.Contains(got, "fix:") {
		t.Errorf("String() with empty hint still prints a fix line: %q", got)
	}
}

func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown analyzer should be nil")
	}
}

// The repository itself must be clean: this is the same check the
// cmd/kvell-lint driver and CI run, executed via the loader end to end.
func TestLoadPackagesRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	pkgs, err := LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPackages returned no packages")
	}
	var self *Package
	for _, p := range pkgs {
		if p.Rel == "internal/analysis" {
			self = p
		}
	}
	if self == nil {
		t.Fatal("internal/analysis not among loaded packages")
	}
	if len(self.Files) == 0 || self.Types == nil {
		t.Fatal("internal/analysis loaded without syntax or types")
	}
	if diags := Check(pkgs, All()); len(diags) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", renderDiags(diags))
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}
