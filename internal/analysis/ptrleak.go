package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// fmtPrintFuncs are the fmt functions whose arguments end up rendered into
// output.
var fmtPrintFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

// PtrLeak forbids pointer addresses from reaching output, digests, or map
// keys. Addresses change run to run (ASLR, allocator state), so a %p — or a
// pointer-valued argument rendered by %v, or a uintptr derived from a
// pointer — poisons the golden FNV digests and log diffs that the whole
// reproduction is verified against. uintptr / unsafe.Pointer map keys are
// the same hazard one step removed: the key set becomes run-dependent.
//
// Test files are exempt (t.Logf of a pointer is ugly but harmless).
var PtrLeak = &Analyzer{
	Name: "ptrleak",
	Doc:  "forbid %p / pointer-valued formatting and pointer-derived uintptr values feeding output, digests, or map keys",
	Run:  runPtrLeak,
}

const ptrLeakHint = "print a stable identifier instead (an index, a name, a sequence number); pointer addresses differ between runs"

func runPtrLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkPtrLeakCall(pass, n)
			case *ast.MapType:
				if tv, ok := pass.Pkg.Info.Types[n.Key]; ok && isAddrBasic(tv.Type) {
					pass.Reportf(n.Key.Pos(),
						"key the map by a stable identity (index, id, name) instead of an address",
						"map keyed by %s: pointer-derived keys make contents and iteration run-dependent", tv.Type.String())
				}
			}
			return true
		})
	}
}

// isAddrBasic reports whether t is uintptr or unsafe.Pointer.
func isAddrBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uintptr || b.Kind() == types.UnsafePointer)
}

// isAddrValued reports whether a value of type t renders as an address
// under %v/%p: pointers, unsafe.Pointer, channels and funcs.
func isAddrValued(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// hasStringer reports whether t (or *t) implements fmt.Stringer, error, or
// fmt.Formatter — in which case fmt renders it via the method, not as an
// address.
func hasStringer(pass *Pass, t types.Type) bool {
	for _, name := range [...]string{"String", "Error", "Format"} {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg.Types, name); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

func checkPtrLeakCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info

	// A pointer verb in any string literal argument of any call: the
	// callee is either a formatter or forwards to one. (The verb is
	// spelled via concatenation so this file does not flag itself.)
	const ptrVerb = "%" + "p"
	for _, a := range call.Args {
		if lit, ok := a.(*ast.BasicLit); ok && lit.Kind.String() == "STRING" &&
			strings.Contains(lit.Value, ptrVerb) {
			pass.Reportf(lit.Pos(), ptrLeakHint,
				"format string uses the pointer verb %s; the printed address changes every run", ptrVerb)
		}
	}

	// uintptr(p) conversion from a pointer: manufactures an address as an
	// integer, which then flows anywhere (digests, keys, output) unseen.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
			if atv, ok := info.Types[call.Args[0]]; ok && isAddrValued(atv.Type) {
				pass.Reportf(call.Pos(), ptrLeakHint,
					"uintptr conversion of a pointer produces a run-dependent value")
			}
		}
	}

	// Pointer-valued arguments to fmt print functions render as addresses
	// (via %v or bare Print) unless the type formats itself.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.SelectorPkg(sel) != "fmt" || !fmtPrintFuncs[sel.Sel.Name] {
		return
	}
	args := call.Args
	if strings.HasPrefix(sel.Sel.Name, "Fprint") || strings.HasPrefix(sel.Sel.Name, "Append") {
		// The destination (io.Writer / []byte) is not a formatted value.
		if len(args) > 0 {
			args = args[1:]
		}
	}
	for _, a := range args {
		tv, ok := info.Types[a]
		if !ok || !isAddrValued(tv.Type) {
			continue
		}
		if hasStringer(pass, tv.Type) {
			continue
		}
		pass.Reportf(a.Pos(), ptrLeakHint,
			"pointer-valued argument of type %s to fmt.%s renders as a run-dependent address", tv.Type.String(), sel.Sel.Name)
	}
}
