package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// orderSensitiveMethods are method names whose call order is observable:
// device and store I/O, and simulated-time charging. Invoking one of these
// per map entry makes the run depend on Go's randomized map iteration order.
var orderSensitiveMethods = map[string]bool{
	"Submit": true, "WritePages": true, "ReadPages": true,
	"CPU": true, "Sleep": true, "Charge": true, "Use": true,
}

// MapOrder flags `for ... range m` over a map whose body performs an
// order-sensitive action: appending to a slice (unless the result is sorted
// later in the same function), emitting output, or performing I/O / charging
// simulated time. Map iteration order is randomized per run, so any of these
// leaks nondeterminism into results.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose body appends/prints/does I/O without a subsequent sort",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		var funcStack []ast.Node // innermost enclosing FuncDecl/FuncLit
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n.(type) {
			case nil:
				return true
			case *ast.FuncDecl, *ast.FuncLit:
				funcStack = append(funcStack, n)
				ast.Inspect(n, func(m ast.Node) bool {
					if m == n {
						return true
					}
					return visit(m)
				})
				funcStack = funcStack[:len(funcStack)-1]
				return false // children handled above
			case *ast.RangeStmt:
				rs := n.(*ast.RangeStmt)
				if isMapType(pass, rs.X) && len(funcStack) > 0 {
					checkMapRange(pass, rs, funcStack[len(funcStack)-1])
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
}

func isMapType(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, enclosing ast.Node) {
	var appendPos, printPos, ioPos token.Pos
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && isBuiltin(pass, fun) && !appendPos.IsValid() {
				appendPos = call.Pos()
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if pass.SelectorPkg(fun) == "fmt" &&
				(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
				if !printPos.IsValid() {
					printPos = call.Pos()
				}
			} else if pass.SelectorPkg(fun) == "" && orderSensitiveMethods[name] && !ioPos.IsValid() {
				ioPos = call.Pos()
			}
		}
		return true
	})

	// Output and I/O happen *during* the iteration; no later sort can fix
	// them. Appends are fine if the collected slice is sorted afterwards
	// (the collect-keys-then-sort idiom).
	if printPos.IsValid() {
		pass.Reportf(rs.Pos(),
			"collect the keys, sort them, then iterate the sorted slice",
			"map iteration emits output in randomized order")
	}
	if ioPos.IsValid() {
		pass.Reportf(rs.Pos(),
			"collect the keys, sort them, then iterate the sorted slice",
			"map iteration performs I/O or charges simulated time in randomized order")
	}
	if appendPos.IsValid() && !printPos.IsValid() && !ioPos.IsValid() &&
		!sortCallAfter(pass, enclosing, rs.End()) {
		pass.Reportf(rs.Pos(),
			"sort the collected slice before use (sort.Slice / sort.Strings / slices.Sort), or iterate sorted keys",
			"map iteration appends to a slice that is never sorted; element order changes run to run")
	}
}

func isBuiltin(pass *Pass, id *ast.Ident) bool {
	obj, ok := pass.Pkg.Info.Uses[id]
	if !ok {
		return true // unresolved (tolerant mode): assume the builtin
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

// sortCallAfter reports whether a sort/slices package call appears after pos
// inside the enclosing function.
func sortCallAfter(pass *Pass, enclosing ast.Node, pos token.Pos) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if p := pass.SelectorPkg(sel); p == "sort" || p == "slices" {
				found = true
			}
		}
		return true
	})
	return found
}
