package analysis

import (
	"go/ast"
	"strings"
)

// syncForbidden are the sync primitives that bypass the simulator's
// scheduler. Sim-driven code must use env.Env.NewMutex/NewCond/NewQueue and
// env.Env.Go, which the simulator implements deterministically.
var syncForbidden = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true,
}

// nogoroutineAllowed reports whether a package may use raw concurrency:
// the simulator itself (its procs are goroutines by construction), the env
// package (hosts the real-runtime implementation), and real-time binaries.
func nogoroutineAllowed(rel string) bool {
	return strings.HasPrefix(rel, "cmd/") ||
		strings.HasPrefix(rel, "examples/") ||
		rel == "internal/sim" ||
		rel == "internal/env"
}

// NoGoroutine forbids raw `go` statements and sync.{Mutex,RWMutex,WaitGroup,
// Once,Cond,Map} in sim-driven packages. Real goroutines are scheduled by the
// Go runtime, not the simulator, so any state they touch stops being
// deterministic. Real-runtime code paths (e.g. device.RealDisk) carry
// explicit //kvell:lint-ignore suppressions instead of a package allowlist,
// so new raw concurrency in those packages still needs a stated reason.
// Test files are exempt: tests may drive the real runtime.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc:  "forbid raw go statements and sync primitives in sim-driven packages; use the env abstraction",
	Run: func(pass *Pass) {
		if nogoroutineAllowed(pass.Pkg.Rel) {
			return
		}
		for _, f := range pass.Pkg.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(),
						"use env.Env.Go, which the simulator schedules deterministically",
						"raw go statement in a sim-driven package escapes the simulator's scheduler")
				case *ast.SelectorExpr:
					if pass.SelectorPkg(n) == "sync" && syncForbidden[n.Sel.Name] {
						pass.Reportf(n.Pos(),
							"use env.Env.NewMutex/NewCond/NewQueue, which the simulator implements deterministically",
							"sync.%s in a sim-driven package bypasses the simulated scheduler", n.Sel.Name)
					}
				}
				return true
			})
		}
	},
}
