package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	Path string // full import path, e.g. kvell/internal/sim
	Rel  string // module-relative path, e.g. internal/sim ("" for the root)
	Dir  string
	Fset *token.FileSet
	// Files holds the package's syntax (with comments), including in-package
	// _test.go files — determinism invariants apply to tests too.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal type-checking problems. Analysis is
	// tolerant: diagnostics are still produced for everything that resolved.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Standard     bool
	ForTest      string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// LoadPackages loads and type-checks every package matched by patterns
// (relative to dir), resolving imports through compiled export data from the
// go tool. Stdlib only: metadata comes from `go list`, types from go/types.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modPath, modDir, err := moduleInfo(dir)
	if err != nil {
		return nil, err
	}

	// -deps -test -export pulls in the full transitive closure (including
	// test-only deps like "testing") with export data for each, so the
	// type-checker never needs to parse anything outside the module.
	args := append([]string{"list", "-deps", "-test", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		// Synthesized test variants ("foo [foo.test]", "foo.test") are
		// skipped: the plain package is linted with its test files below.
		variant := strings.Contains(p.ImportPath, " ") || strings.HasSuffix(p.ImportPath, ".test") || p.ForTest != ""
		if p.Export != "" && !variant {
			exports[p.ImportPath] = p.Export
		}
		if variant || p.Standard {
			continue
		}
		if p.Dir == "" || !within(modDir, p.Dir) {
			continue
		}
		pp := p
		targets = append(targets, &pp)
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t, modPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func moduleInfo(dir string) (path, root string, err error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}}\t{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", "", fmt.Errorf("go list -m failed: %v", err)
	}
	parts := strings.SplitN(strings.TrimSpace(string(out)), "\t", 2)
	if len(parts) != 2 {
		return "", "", fmt.Errorf("unexpected go list -m output: %q", out)
	}
	return parts[0], parts[1], nil
}

func within(root, dir string) bool {
	rel, err := filepath.Rel(root, dir)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

func typeCheck(fset *token.FileSet, imp types.Importer, lp *listPkg, modPath string) (*Package, error) {
	var files []*ast.File
	names := append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
	names = append(names, lp.XTestGoFiles...)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path: lp.ImportPath,
		Rel:  relPath(modPath, lp.ImportPath),
		Dir:  lp.Dir,
		Fset: fset,
		Info: newInfo(),
	}
	// External test files (package foo_test) are a distinct package; check
	// them separately so the two package names don't collide.
	var xtest []*ast.File
	inPkg := files[:0]
	for _, f := range files {
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			inPkg = append(inPkg, f)
		}
	}
	pkg.Files = append(append([]*ast.File{}, inPkg...), xtest...)

	check := func(path string, fs []*ast.File, info *types.Info) *types.Package {
		if len(fs) == 0 {
			return nil
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tp, _ := conf.Check(path, fset, fs, info) // tolerant: partial info is fine
		return tp
	}
	pkg.Types = check(lp.ImportPath, inPkg, pkg.Info)
	if len(xtest) > 0 {
		check(lp.ImportPath+"_test", xtest, pkg.Info)
	}
	return pkg, nil
}

func relPath(modPath, importPath string) string {
	if importPath == modPath {
		return ""
	}
	return strings.TrimPrefix(importPath, modPath+"/")
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// exportImporter resolves imports from compiled export data, falling back to
// an empty placeholder package so analysis can proceed even when export data
// is unavailable (package-name resolution still works against placeholders).
type exportImporter struct {
	gc    types.Importer
	fakes map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc:    importer.ForCompiler(fset, "gc", lookup),
		fakes: make(map[string]*types.Package),
	}
}

func (i *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, err := i.gc.Import(path); err == nil {
		return pkg, nil
	}
	if pkg, ok := i.fakes[path]; ok {
		return pkg, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	i.fakes[path] = pkg
	return pkg, nil
}
