package analysis

import (
	"go/ast"
	"strings"
)

// wallTimeFuncs are the package time functions that read the wall clock or
// schedule against it. Simulated code must use the virtual clock instead
// (env.Ctx.Now / env.Ctx.Sleep), or the run is no longer reproducible.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// nowalltimeAllowed reports whether a package may touch the wall clock:
// command-line tools and examples run in real time, and internal/env hosts
// the real-runtime bridge (RealEnv) that maps env.Time onto the wall clock.
func nowalltimeAllowed(rel string) bool {
	return strings.HasPrefix(rel, "cmd/") ||
		strings.HasPrefix(rel, "examples/") ||
		rel == "internal/env"
}

// NoWallTime forbids wall-clock access outside the real-time bridge.
var NoWallTime = &Analyzer{
	Name: "nowalltime",
	Doc:  "forbid time.Now/Since/Sleep/timers outside cmd/, examples/ and the internal/env real-time bridge",
	Run: func(pass *Pass) {
		if nowalltimeAllowed(pass.Pkg.Rel) {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if pass.SelectorPkg(sel) == "time" && wallTimeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"use the virtual clock: env.Ctx.Now()/Sleep() in engine code, or sim.Sim.Now() in harness code; see DESIGN.md \"Determinism invariants\"",
						"wall-clock call time.%s in simulated code breaks run-to-run determinism", sel.Sel.Name)
				}
				return true
			})
		}
	},
}
