package analysis

import (
	"go/ast"
	"go/types"
)

// PoolEscape guards the zero-allocation data plane: buffers carved from a
// slab.Arena (valid only until the next Reset) and the pooled per-request
// scratch buffers (kv.Request.ScanBuf / ValueBuf, recycled when the request
// completes) must stay owned by the code that borrowed them. Storing such a
// buffer into a struct field, a package-level variable, or a map, or
// sending it on a channel, publishes memory that the pool will concurrently
// reuse — a use-after-reset that no race detector can see in the
// single-goroutine simulator, and that corrupts results silently.
//
// Taint starts at Arena.Alloc/AllocZero results and Request.ScanBuf /
// ValueBuf reads, propagates through assignment, slicing, and append, and
// is cleansed by any other call (copies make owned memory). Two sanctioned
// publications exist: the give-back protocol (engines may store a possibly
// regrown scratch slice back into the request's own ScanBuf / ValueBuf
// field, returning the buffer to its owner) and arena-scoped containers (a
// struct holding an *Arena field may park that arena's memory in its own
// fields, since the container and the memory already share a lifetime).
//
// Test files are exempt: tests may pin buffers to assert on pooling itself.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "forbid arena- and pool-derived buffers escaping into fields, globals, maps, or channels without a copy",
	Run:  runPoolEscape,
}

// pooledFields are the kv.Request scratch-buffer fields. Reading one yields
// pooled memory; writing one on the request itself is the give-back.
var pooledFields = map[string]bool{"ScanBuf": true, "ValueBuf": true}

func runPoolEscape(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		checkPoolEscape(pass, f)
	}
}

// structOwnsArena reports whether t (a store's receiver type) is a struct
// with an Arena-typed field: such a container co-owns the arena's lifetime.
func structOwnsArena(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if namedTypeName(st.Field(i).Type()) == "Arena" {
			return true
		}
	}
	return false
}

// isArenaAlloc reports whether call is Arena.Alloc or Arena.AllocZero.
func (p *Pass) isArenaAlloc(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Alloc" && sel.Sel.Name != "AllocZero") {
		return false
	}
	return p.recvTypeName(sel) == "Arena"
}

// isPooledFieldSel reports whether sel is a ScanBuf/ValueBuf selection on a
// value of named type Request.
func (p *Pass) isPooledFieldSel(sel *ast.SelectorExpr) bool {
	return pooledFields[sel.Sel.Name] && p.recvTypeName(sel) == "Request"
}

func checkPoolEscape(pass *Pass, f *ast.File) {
	info := pass.Pkg.Info
	tainted := make(map[types.Object]bool)

	// derives reports whether evaluating e yields pool-backed memory.
	var derives func(e ast.Expr) bool
	derives = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return derives(e.X)
		case *ast.Ident:
			obj := info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.SliceExpr:
			return derives(e.X)
		case *ast.IndexExpr:
			// An element of a tainted container is tainted only when it is
			// itself a reference (e.g. [][]byte); indexing bytes is a copy.
			if tv, ok := info.Types[e]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Pointer:
					return derives(e.X)
				}
			}
			return false
		case *ast.SelectorExpr:
			return pass.isPooledFieldSel(e)
		case *ast.CallExpr:
			if pass.isArenaAlloc(e) {
				return true
			}
			// append keeps (or regrows from) the first argument's backing
			// array, and non-spread reference elements are retained too; a
			// spread (append(dst, src...)) copies contents. Every other
			// call result counts as an owned copy.
			if id, ok := e.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					if len(e.Args) > 0 && derives(e.Args[0]) {
						return true
					}
					if e.Ellipsis == 0 {
						for _, el := range e.Args[1:] {
							if derives(el) {
								return true
							}
						}
					}
					return false
				}
			}
			return false
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if derives(v) {
					return true
				}
			}
			return false
		}
		return false
	}

	// Propagate taint through local assignments to a fixed point (the
	// file is the unit, so closures capturing pooled buffers are covered).
	for changed := true; changed; {
		changed = false
		ast.Inspect(f, func(n ast.Node) bool {
			a, ok := n.(*ast.AssignStmt)
			if !ok || len(a.Lhs) != len(a.Rhs) {
				return true
			}
			for i, r := range a.Rhs {
				if !derives(r) {
					continue
				}
				id, ok := a.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	const hint = "copy into owned memory first (append([]byte(nil), b...) or an explicit make+copy); pooled buffers are reused after Arena.Reset / request completion"

	reportSink := func(e ast.Expr, sink string) {
		pass.Reportf(e.Pos(), hint,
			"pooled buffer escapes into %s; the backing memory is recycled and will be overwritten", sink)
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, r := range n.Rhs {
				if !derives(r) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					if pass.isPooledFieldSel(lhs) {
						continue // give-back: returning scratch to its request
					}
					if pass.SelectorPkg(lhs) != "" {
						reportSink(r, "package-level variable "+lhs.Sel.Name)
						continue
					}
					if s, ok := info.Selections[lhs]; ok && s.Kind() == types.FieldVal {
						if structOwnsArena(s.Recv()) {
							// An arena-scoped container: a struct that holds
							// the *Arena itself may park arena memory in its
							// own fields — their lifetimes are already tied.
							continue
						}
						reportSink(r, "struct field "+lhs.Sel.Name)
					}
				case *ast.Ident:
					obj := info.Uses[lhs]
					if obj != nil && obj.Parent() == pass.Pkg.Types.Scope() {
						reportSink(r, "package-level variable "+lhs.Name)
					}
				case *ast.IndexExpr:
					if t := info.Types[lhs.X].Type; t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							reportSink(r, "a map")
						}
					}
				}
			}
		case *ast.SendStmt:
			if derives(n.Value) {
				reportSink(n.Value, "a channel")
			}
		}
		return true
	})
}
