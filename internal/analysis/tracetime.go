package analysis

import "strconv"

// TraceTime forbids internal/trace from importing package time at all.
// nowalltime already bans the wall-clock *calls* everywhere; the trace
// package gets the stricter import-level rule because every value it records
// must be virtual time (env.Time from the sim clock) — even an innocuous
// time.Duration conversion in an exporter would invite wall-clock quantities
// into trace artifacts that are compared across runs by digest.
var TraceTime = &Analyzer{
	Name: "tracetime",
	Doc:  "forbid internal/trace from importing package time: spans carry virtual env.Time only",
	Run: func(pass *Pass) {
		if pass.Pkg.Rel != "internal/trace" {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || path != "time" {
					continue
				}
				pass.Reportf(imp.Pos(),
					"stamp spans with env.Time from the simulated clock; format durations with stats.FmtDur",
					"internal/trace imports %q: trace timestamps must be virtual", path)
			}
		}
	},
}
