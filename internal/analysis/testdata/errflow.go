// errflow fixture: errors from device I/O (ReadPages/WritePages/Sync) and
// replay/recovery routines must be checked or explicitly discarded.
package fixture

type store struct{}

func (s *store) ReadPages(page int64, buf []byte) error  { return nil }
func (s *store) WritePages(page int64, buf []byte) error { return nil }
func (s *store) Sync() error                             { return nil }

func ReplayWAL() (int, error) { return 0, nil }

func RecoverStore() error { return nil }

// ReplayCount returns no error; the name prefix alone must not trigger.
func ReplayCount() int { return 0 }

func bareDrop(s *store) {
	s.Sync()            // want errflow
	s.ReadPages(0, nil) // want errflow
	ReplayCount()
}

func asyncDrop(s *store) {
	go s.WritePages(0, nil) // want errflow
	defer s.Sync()          // want errflow
}

func neverRead(s *store) {
	err := s.Sync() // want errflow
	_ = 1
}

func overwritten(s *store) error {
	err := s.ReadPages(0, nil) // want errflow
	err = s.WritePages(0, nil)
	return err
}

func tupleNeverRead() int {
	n, err := ReplayWAL() // want errflow
	return n
}

func recoverDrop() {
	RecoverStore() // want errflow
}

// --- negative cases ---

func checked(s *store) error {
	if err := s.Sync(); err != nil {
		return err
	}
	err := s.ReadPages(0, nil)
	if err != nil {
		return err
	}
	return s.WritePages(0, nil)
}

func explicitDiscard(s *store) {
	_ = s.Sync() // deliberate: fixture covers the sanctioned discard
	n, _ := ReplayWAL()
	_ = n
}

func tupleChecked() (int, error) {
	n, err := ReplayWAL()
	if err != nil {
		return 0, err
	}
	return n, nil
}

// The branch pattern from device.RealDisk: writes in sibling switch cases
// are not straight-line overwrites, and the merged read checks both.
func branchMerge(s *store, op int) {
	var err error
	switch op {
	case 0:
		err = s.ReadPages(0, nil)
	case 1:
		err = s.WritePages(0, nil)
	}
	if err != nil {
		panic(err)
	}
}

func propagatedAsArg(s *store) {
	check(s.Sync())
}

func check(err error) {}
