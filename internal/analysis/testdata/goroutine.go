// Fixture for the nogoroutine analyzer.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex // want nogoroutine
	n  int
}

func spawn(fn func()) {
	go fn() // want nogoroutine
}

func wait() {
	var wg sync.WaitGroup // want nogoroutine
	wg.Add(1)
	wg.Done()
	wg.Wait()
}

// sync/atomic and channels are not in scope for this analyzer.
func chanOK() chan int { return make(chan int, 1) }
