// spanclose fixture: every Tracer.Begin/BeginBg must be finished on all
// paths, or have its ownership explicitly handed off. The local stand-in
// types resolve exactly like the real internal/trace ones (the analyzer
// matches by type and method name).
package fixture

type Ctx struct{ sampled bool }

type Tracer struct{}

func (t *Tracer) Begin(op int, now int64) *Ctx        { return &Ctx{} }
func (t *Tracer) BeginBg(name string, now int64) *Ctx { return &Ctx{} }
func (t *Tracer) Finish(c *Ctx, end int64)            {}
func (t *Tracer) FinishBg(c *Ctx, end int64)          {}

type wctx struct{}

func (w wctx) SetTrace(v any) {}
func (w wctx) Now() int64     { return 0 }

type req struct{ t *Ctx }

func discarded(tr *Tracer, now int64) {
	tr.Begin(1, now)         // want spanclose
	_ = tr.BeginBg("x", now) // want spanclose
}

func attachOnly(tr *Tracer, c wctx, now int64) {
	c.SetTrace(tr.BeginBg("evict", now)) // want spanclose
}

func openReturn(tr *Tracer, now int64, fail bool) {
	ctx := tr.Begin(1, now)
	if fail {
		return // want spanclose
	}
	tr.Finish(ctx, now)
}

func fallsOffEnd(tr *Tracer, now int64) {
	ctx := tr.BeginBg("flush", now)
	if ctx.sampled { // reading the ctx is not a close
		now++
	}
} // want spanclose

func rebound(tr *Tracer, now int64) {
	ctx := tr.Begin(1, now)
	ctx = tr.Begin(2, now) // want spanclose
	tr.Finish(ctx, now)
}

func loopContinueLeak(tr *Tracer, now int64, n int) {
	for i := 0; i < n; i++ {
		ctx := tr.Begin(1, now)
		if i == 0 {
			continue // want spanclose
		}
		tr.Finish(ctx, now)
	}
}

func loopIterLeak(tr *Tracer, now int64, n int) {
	for i := 0; i < n; i++ {
		ctx := tr.Begin(1, now) // want spanclose
		if i == 7 {
			tr.Finish(ctx, now)
		}
	}
}

func caseFallLeak(tr *Tracer, now int64, k int) {
	switch k {
	case 0:
		ctx := tr.Begin(1, now)
		tr.Finish(ctx, now)
	case 1:
		ctx := tr.Begin(2, now)
		if ctx.sampled {
			now++
		}
	}
} // want spanclose

// A suppressed finding stays silent, and the directive that caught it is
// live (not stale).
func suppressedLeak(tr *Tracer, now int64) {
	//kvell:lint-ignore spanclose fixture: span measured by an external harness
	tr.Begin(1, now)
}

// --- negative cases: all of these are hygienic ---

func straightLine(tr *Tracer, now int64) {
	ctx := tr.Begin(1, now)
	tr.Finish(ctx, now)
}

func deferred(tr *Tracer, now int64) (int, error) {
	ctx := tr.BeginBg("checkpoint", now)
	defer tr.FinishBg(ctx, now)
	if now > 0 {
		return 0, nil
	}
	return 1, nil
}

func bothBranches(tr *Tracer, now int64, ok bool) {
	ctx := tr.Begin(1, now)
	if ok {
		tr.Finish(ctx, now)
	} else {
		tr.FinishBg(ctx, now)
	}
}

// The engine idiom: attach for attribution, then finish. SetTrace is
// neutral — it must neither close the span nor count as an escape.
func attachThenFinish(tr *Tracer, c wctx) {
	bc := tr.BeginBg("evict", c.Now())
	c.SetTrace(bc)
	c.SetTrace(nil)
	tr.FinishBg(bc, c.Now())
}

// The harness idiom: the span is stored on the request and the completion
// callback finishes it — ownership transfer, not a leak.
func handoffField(tr *Tracer, now int64, r *req) {
	r.t = tr.Begin(1, now)
	ctx := tr.Begin(2, now)
	r.t = ctx
}

func handoffReturn(tr *Tracer, now int64) *Ctx {
	ctx := tr.Begin(1, now)
	return ctx
}

func closureCapture(tr *Tracer, now int64) func() {
	ctx := tr.Begin(1, now)
	return func() { tr.Finish(ctx, now) }
}

func breakThenFinish(tr *Tracer, now int64, n int) {
	var ctx *Ctx
	for i := 0; ; i++ {
		ctx = tr.Begin(1, now)
		if i == n {
			break
		}
		tr.Finish(ctx, now)
	}
	tr.Finish(ctx, now)
}

func switchClose(tr *Tracer, now int64, k int) {
	ctx := tr.Begin(1, now)
	switch k {
	case 0:
		tr.Finish(ctx, now)
	default:
		tr.FinishBg(ctx, now)
	}
}

func inLiteral(tr *Tracer, now int64) func() {
	return func() {
		ctx := tr.Begin(1, now)
		tr.Finish(ctx, now)
	}
}
