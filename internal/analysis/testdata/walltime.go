// Fixture for the nowalltime analyzer. Not compiled into the module
// (testdata is invisible to the go tool); loaded directly by the tests,
// which compare diagnostics against the "want <analyzer>" line markers.
package fixture

import (
	"time"

	stdtime "time"
)

type myClock struct{}

func (myClock) Now() int64        { return 0 }
func (myClock) Since(int64) int64 { return 0 }

func virtualOK(c myClock) int64 { return c.Now() + c.Since(3) } // methods named Now/Since are fine

func wallNow() time.Time          { return time.Now() }           // want nowalltime
func wallSince(t time.Time) int64 { return int64(time.Since(t)) } // want nowalltime
func wallSleep()                  { time.Sleep(1) }               // want nowalltime
func wallRenamed() stdtime.Time   { return stdtime.Now() }        // want nowalltime
func wallTimer() *time.Timer      { return time.NewTimer(1) }     // want nowalltime
func wallAfter() <-chan time.Time { return time.After(1) }        // want nowalltime

func durationOK() time.Duration   { return 5 * time.Millisecond } // constants are fine
func timerType() *time.Timer      { return nil }                  // type references are fine
func parseOK() (time.Time, error) { return time.Parse("", "") }   // deterministic helpers are fine
