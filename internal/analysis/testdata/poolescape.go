// poolescape fixture: arena- and pool-derived buffers must not escape into
// fields, globals, maps, or channels without a copy. The stand-in Arena and
// Request types resolve like the real slab.Arena / kv.Request.
package fixture

type Arena struct{}

func (a *Arena) Alloc(n int) []byte     { return make([]byte, n) }
func (a *Arena) AllocZero(n int) []byte { return make([]byte, n) }

type Item struct{ Key, Value []byte }

type Request struct {
	ScanBuf  []Item
	ValueBuf []byte
}

type holder struct{ buf []byte }

// arenaOwner holds the arena itself; parking arena memory in its own
// fields is the sanctioned arena-scoped-container pattern.
type arenaOwner struct {
	arena *Arena
	pages [][]byte
}

var global []byte

func fieldEscape(a *Arena, h *holder) {
	b := a.Alloc(10)
	h.buf = b                         // want poolescape
	h.buf = append([]byte(nil), b...) // copy: fine
}

func globalEscape(a *Arena) {
	global = a.AllocZero(4)[:2] // want poolescape
}

func mapChanEscape(a *Arena, m map[int][]byte, ch chan []byte) {
	b := a.Alloc(1)
	m[0] = b // want poolescape
	ch <- b  // want poolescape
}

func aliasEscape(a *Arena, h *holder) {
	b := a.Alloc(8)
	c := b[2:4]
	h.buf = c // want poolescape
}

func appendElementEscape(a *Arena) {
	var lists [][]byte
	lists = append(lists, a.Alloc(4)) // taints lists (element retained)
	global = lists[0]                 // want poolescape
	globalLists = lists               // want poolescape
}

var globalLists [][]byte

func scratchEscape(r *Request, h *holder) {
	h.buf = r.ValueBuf // want poolescape
}

// --- negative cases ---

// The give-back protocol: engines return (possibly regrown) scratch to the
// request that owns it.
func giveBack(r *Request) {
	items := r.ScanBuf[:0]
	items = append(items, Item{})
	r.ScanBuf = items
	r.ValueBuf = append(r.ValueBuf[:0], 1, 2)
}

// Arena-scoped container: the struct owns the arena, so retaining its
// memory is lifetime-coherent.
func owned(o *arenaOwner) {
	p := o.arena.Alloc(4096)
	o.pages = append(o.pages, p)
}

// Spreading copies contents into owned memory.
func spreadCopy(a *Arena, h *holder) {
	b := a.Alloc(3)
	dst := make([]byte, 0, 3)
	dst = append(dst, b...)
	h.buf = dst
}

// Passing to a call is a handoff to code that is itself checked, and any
// non-append call result is owned memory.
func callsCleanse(a *Arena, h *holder) {
	b := a.Alloc(5)
	h.buf = clone(b)
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
