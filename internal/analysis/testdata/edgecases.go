// Edge-case fixture: generics, method values, deferred closures, and
// multi-return assignments must neither crash the analyzers nor slip past
// them. Exercises the dataflow analyzers plus nowalltime/norand/maporder in
// these constructs; the remaining analyzers have dedicated fixtures.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type Arena struct{}

func (a *Arena) Alloc(n int) []byte { return make([]byte, n) }

type holder struct{ buf []byte }

type Ctx struct{}

type Tracer struct{}

func (t *Tracer) Begin(op int, now int64) *Ctx        { return &Ctx{} }
func (t *Tracer) BeginBg(name string, now int64) *Ctx { return &Ctx{} }
func (t *Tracer) Finish(c *Ctx, end int64)            {}
func (t *Tracer) FinishBg(c *Ctx, end int64)          {}

type store struct{}

func (s *store) Sync() error { return nil }

// --- generics: analyzers see through type parameters ---

func measure[T any](v T) T {
	_ = time.Now() // want nowalltime
	return v
}

type box[T any] struct{ item T }

func (b *box[T]) put(a *Arena, h *holder) {
	h.buf = a.Alloc(1) // want poolescape
}

func keysOf[K comparable, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m { // want maporder
		out = append(out, k)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- method values ---

func randMethodValue() func(int) int {
	return rand.Intn // want norand
}

// A Finish method value still closes the span it is called with.
func finishViaMethodValue(tr *Tracer, now int64) {
	ctx := tr.Begin(1, now)
	fin := tr.Finish
	fin(ctx, now)
}

// Known limit, pinned by this test: an error-returning method bound to a
// method value is not tracked (the call site no longer names Sync).
func syncMethodValue(s *store) {
	syncIt := s.Sync
	syncIt()
}

// --- deferred closures ---

func deferredCapture(tr *Tracer, now int64) error {
	ctx := tr.BeginBg("ckpt", now)
	defer func() { tr.FinishBg(ctx, now) }()
	return nil
}

// The closure body is its own analysis unit: a bare drop inside it is
// still a drop, and a format leak is still a leak.
func deferredDrop(s *store, p *int) {
	defer func() {
		s.Sync()                 // want errflow
		fmt.Printf("done %v", p) // want ptrleak
	}()
}

// --- multi-return and parallel assignment ---

func parallelAssign(s *store) {
	a, b := s.Sync(), s.Sync() // want errflow
	if a != nil {
		panic(a)
	}
	// b is never read: the unused-variable type error is tolerated by the
	// fixture checker, and errflow reports the dropped error above.
}
