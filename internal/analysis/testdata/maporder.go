// Fixture for the maporder analyzer.
package fixture

import (
	"fmt"
	"sort"
)

type dev struct{}

func (dev) Submit(x int) {}

// Appending map keys without a later sort leaks iteration order.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys
}

// The collect-then-sort idiom is the sanctioned fix.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Output during iteration cannot be repaired by a later sort.
func printDuring(m map[string]int) {
	var keys []string
	for k, v := range m { // want maporder
		fmt.Println(k, v)
		keys = append(keys, k)
	}
	sort.Strings(keys)
}

// I/O (or sim-time charging) during iteration is flagged too.
func ioDuring(m map[int64]int, d dev) {
	for k := range m { // want maporder
		d.Submit(int(k))
	}
}

// Commutative bodies are fine.
func sumOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Ranging a slice is always fine.
func sliceOK(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
