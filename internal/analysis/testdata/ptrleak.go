// ptrleak fixture: pointer addresses must not reach output, digests, or
// map keys — they differ run to run and would poison golden digests.
package fixture

import (
	"fmt"
	"unsafe"
)

type ided struct{ n int }

func (i *ided) String() string { return "ided" }

func formatVerb(p *int) {
	fmt.Printf("at %p\n", p) // want ptrleak ptrleak
}

func pointerArg(p *int, ch chan int) {
	fmt.Println(p)            // want ptrleak
	s := fmt.Sprintf("%v", p) // want ptrleak
	_ = s
	fmt.Print(ch) // want ptrleak
}

func addrAsInt(p *int) uintptr {
	u := uintptr(unsafe.Pointer(p)) // want ptrleak
	return u
}

var byAddr map[uintptr]int // want ptrleak

func keyed(p *int) {
	m := map[unsafe.Pointer]bool{} // want ptrleak
	m[unsafe.Pointer(p)] = true
}

// --- negative cases ---

func fine(p *int, i *ided, w *writerT) {
	fmt.Printf("%d items\n", 3)
	fmt.Println(*p)          // dereferenced value, not an address
	fmt.Println(i)           // has a String method: prints "ided"
	fmt.Fprintf(w, "%d", *p) // the writer destination is not formatted
	_ = uintptr(16)          // integer, not an address
	m := map[string]int{}
	m["k"] = 1
}

type writerT struct{}

func (w *writerT) Write(b []byte) (int, error) { return len(b), nil }
