// Fixture for malformed suppression directives: each is itself reported.
package fixture

//kvell:lint-ignore
func missingEverything() {} // directive above: missing analyzer and reason

//kvell:lint-ignore nosuchanalyzer some reason
func unknownAnalyzer() {} // directive above: unknown analyzer

//kvell:lint-ignore nowalltime
func missingReason() {} // directive above: no reason given
