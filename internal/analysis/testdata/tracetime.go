// Fixture for the tracetime analyzer: internal/trace must not import the
// time package at all — span timestamps are virtual (env.Time), and even
// Duration arithmetic would invite wall-clock quantities into digested
// artifacts. Renamed imports are imports too.
package fixture

import (
	"time" // want tracetime

	wall "time" // want tracetime
)

var tick = time.Duration(1) // the import is the finding, not the use

var epoch = wall.Unix(0, 0)
