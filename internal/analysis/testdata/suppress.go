// Fixture for //kvell:lint-ignore suppression handling.
package fixture

import "time"

//kvell:lint-ignore nowalltime fixture: suppressed by the comment directly above
func suppressedAbove() time.Time { return time.Now() }

func suppressedInline() time.Time {
	return time.Now() //kvell:lint-ignore nowalltime fixture: suppressed on the same line
}

// A suppression for one analyzer does not silence another — and having
// silenced nothing, it is itself reported as stale.
//
//kvell:lint-ignore norand fixture: wrong analyzer on purpose // want lint-ignore
func wrongAnalyzer() time.Time { return time.Now() } // want nowalltime

// A suppression two lines up is out of range, so it is stale too.
//kvell:lint-ignore nowalltime fixture: too far away // want lint-ignore

func tooFar() time.Time { return time.Now() } // want nowalltime
