// Fixture for //kvell:lint-ignore suppression handling.
package fixture

import "time"

//kvell:lint-ignore nowalltime fixture: suppressed by the comment directly above
func suppressedAbove() time.Time { return time.Now() }

func suppressedInline() time.Time {
	return time.Now() //kvell:lint-ignore nowalltime fixture: suppressed on the same line
}

// A suppression for one analyzer does not silence another.
//
//kvell:lint-ignore norand fixture: wrong analyzer on purpose
func wrongAnalyzer() time.Time { return time.Now() } // want nowalltime

// A suppression two lines up is out of range.
//kvell:lint-ignore nowalltime fixture: too far away

func tooFar() time.Time { return time.Now() } // want nowalltime
