// Fixture for the norand analyzer.
package fixture

import "math/rand"

func globalDraw() int { return rand.Intn(10) } // want norand

func globalFloat() float64 { return rand.Float64() } // want norand

func globalSeed() { rand.Seed(42) } // want norand

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want norand
}

// Explicitly seeded sources are the required idiom.
func seededOK(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // method on a seeded *rand.Rand, fine
}

func zipfOK(seed int64) *rand.Zipf {
	r := rand.New(rand.NewSource(seed))
	return rand.NewZipf(r, 1.1, 1, 100)
}

// A local variable shadowing the package name is not the package.
func shadowOK() int {
	rand := struct{ Intn func(int) int }{Intn: func(n int) int { return n }}
	return rand.Intn(10)
}
