package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanClose verifies trace-span hygiene: every span context obtained from
// Tracer.Begin/BeginBg must be finished (Finish/FinishBg) on every path out
// of the function that began it, or have its ownership explicitly handed
// off (stored into a struct field/map/global, sent on a channel, returned,
// captured by a closure, or passed to another function). A context that is
// begun and never finished is pooled memory that never returns to the
// tracer's free list, its components never fold into the breakdown, and —
// because the trace digest covers every finished request — a leaked span
// silently narrows attribution coverage without failing any runtime check.
//
// The check is an intra-procedural dataflow walk over Go's structured
// control flow: each return, loop-iteration boundary and fall-off-the-end
// path from the begin must pass a finishing or ownership-transferring
// event. c.SetTrace(ctx) attaches the context for attribution but does NOT
// transfer ownership, so it never counts as a close. goto and labeled
// branches abort the check for that span (conservatively silent).
var SpanClose = &Analyzer{
	Name: "spanclose",
	Doc:  "require every trace span Begin/BeginBg to be Finished on all return paths (or explicitly handed off)",
	Run:  runSpanClose,
}

func runSpanClose(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests may deliberately hold spans open
		}
		funcBodies(f, func(body *ast.BlockStmt, decl ast.Node) {
			checkSpans(pass, body)
		})
	}
}

// isBeginCall reports whether call is Tracer.Begin or Tracer.BeginBg.
func isBeginCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Begin" && sel.Sel.Name != "BeginBg") {
		return false
	}
	return pass.recvTypeName(sel) == "Tracer"
}

// spanBegin is one tracked Begin whose result is bound to a local variable.
type spanBegin struct {
	obj  types.Object
	stmt *ast.AssignStmt
	call *ast.CallExpr
	name string // "Begin" or "BeginBg"
}

func checkSpans(pass *Pass, body *ast.BlockStmt) {
	var begins []spanBegin

	// Locate Begin/BeginBg calls directly in this function body (nested
	// literals are analyzed as their own units by funcBodies).
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBeginCall(pass, call) {
			return true
		}
		name := call.Fun.(*ast.SelectorExpr).Sel.Name
		parent := ast.Node(nil)
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"bind the context and Finish it on every path, or delete the call",
				"result of Tracer.%s is discarded; the span can never be finished", name)
		case *ast.AssignStmt:
			// Match the call to its LHS (Begin returns one value, so the
			// positions correspond one to one in a parallel assignment).
			for i, r := range p.Rhs {
				if r != ast.Expr(call) || i >= len(p.Lhs) {
					continue
				}
				switch lhs := p.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						pass.Reportf(call.Pos(),
							"bind the context and Finish it on every path, or delete the call",
							"result of Tracer.%s is assigned to _; the span can never be finished", name)
						break
					}
					obj := pass.Pkg.Info.Defs[lhs]
					if obj == nil {
						obj = pass.Pkg.Info.Uses[lhs]
					}
					if obj != nil {
						begins = append(begins, spanBegin{obj: obj, stmt: p, call: call, name: name})
					}
				default:
					// Stored straight into a field/map/global: ownership is
					// handed to whoever finishes it (e.g. the harness wires
					// r.Trace and the Done wrapper finishes it).
				}
			}
		case *ast.CallExpr:
			// tr.Begin(...) passed directly as an argument. SetTrace only
			// attaches for attribution — nothing holds the context, so
			// nobody can ever finish it.
			if sel, ok := p.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SetTrace" {
				pass.Reportf(call.Pos(),
					"bind the context first: ctx := tr."+name+"(...); c.SetTrace(ctx); ... tr.Finish"+
						"(ctx, end)",
					"result of Tracer.%s passed to SetTrace without being retained; the span can never be finished", name)
			}
		}
		return true
	}
	ast.Inspect(body, visit)

	for _, b := range begins {
		checkSpanFlow(pass, body, b)
	}
}

// isObjIdent reports whether e (unparenthesized) is an identifier bound to obj.
func isObjIdent(pass *Pass, e ast.Expr, obj types.Object) bool {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	return ok && pass.Pkg.Info.Uses[id] == obj
}

// mentionsObj reports whether any identifier under n is bound to obj.
func mentionsObj(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func checkSpanFlow(pass *Pass, body *ast.BlockStmt, b spanBegin) {
	// Ownership transfers that satisfy the check for the whole function:
	// the context is captured by a closure (which can finish it later) or
	// a deferred call receives it (the defer runs on every path).
	satisfied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if satisfied {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if mentionsObj(pass, n, b.obj) {
				satisfied = true
			}
			return false
		case *ast.DeferStmt:
			for _, a := range n.Call.Args {
				if isObjIdent(pass, a, b.obj) {
					satisfied = true
				}
			}
		}
		return true
	})
	if satisfied {
		return
	}

	// closeEvent: does this subtree finish the span or transfer ownership?
	closeEvent := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // captures were handled above
			case *ast.CallExpr:
				sel, _ := m.Fun.(*ast.SelectorExpr)
				for _, a := range m.Args {
					if !isObjIdent(pass, a, b.obj) {
						continue
					}
					if sel != nil && sel.Sel.Name == "SetTrace" {
						continue // attach-only: ownership stays here
					}
					found = true // Finish/FinishBg or handoff to a callee
					return false
				}
			case *ast.AssignStmt:
				for _, r := range m.Rhs {
					if isObjIdent(pass, r, b.obj) {
						found = true // aliased or stored: ownership moves
						return false
					}
				}
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					if isObjIdent(pass, r, b.obj) {
						found = true
						return false
					}
				}
			case *ast.SendStmt:
				if isObjIdent(pass, m.Value, b.obj) {
					found = true
					return false
				}
			case *ast.CompositeLit:
				for _, e := range m.Elts {
					v := e
					if kv, ok := e.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isObjIdent(pass, v, b.obj) {
						found = true
						return false
					}
				}
			}
			return true
		})
		return found
	}

	hint := "finish the span on every path (defer tr.Finish" + suffixBg(b.name) +
		"(ctx, ...) or an explicit call before each return)"

	cf := &closeFlow{
		event: closeEvent,
		isRebind: func(a *ast.AssignStmt) bool {
			if a == b.stmt {
				return false
			}
			for _, l := range a.Lhs {
				if id, ok := l.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == b.obj {
					return true
				}
			}
			return false
		},
		rebind: func(a *ast.AssignStmt) {
			pass.Reportf(a.Pos(), hint,
				"span context from Tracer.%s is overwritten before being finished", b.name)
		},
		onOpenReturn: func(r *ast.ReturnStmt) {
			pass.Reportf(r.Pos(), hint,
				"return path does not finish the span begun by Tracer.%s at line %d",
				b.name, pass.Pkg.Fset.Position(b.call.Pos()).Line)
		},
	}

	chain := ancestors(body, b.stmt)
	if chain == nil {
		return
	}
	// Begin in a statement position only: `if ctx := tr.Begin(); ...` style
	// init-clauses are rare and skipped conservatively.
	if len(chain) >= 2 {
		if _, ok := chain[len(chain)-2].(*ast.IfStmt); ok {
			return
		}
		if _, ok := chain[len(chain)-2].(*ast.ForStmt); ok {
			return
		}
	}

	// Ascend from the begin statement through the enclosing lists, walking
	// the remainder of each list and resolving loop/switch boundaries.
	st := flowOut{fall: true, closed: false}
	reported := false
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, hint, format, args...)
		reported = true
	}
	for i := len(chain) - 2; i >= 0 && !cf.aborted && !reported; i-- {
		parent := chain[i]
		child := chain[i+1]
		var list []ast.Stmt
		switch p := parent.(type) {
		case *ast.BlockStmt:
			// A switch/select body's direct children are case clauses, not
			// sequential statements; handled at the CaseClause level below.
			if i > 0 {
				switch chain[i-1].(type) {
				case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					continue
				}
			}
			list = p.List
		case *ast.CaseClause:
			list = p.Body
		case *ast.CommClause:
			list = p.Body
		default:
			continue
		}
		if st.fall {
			idx := -1
			for j, s := range list {
				if ast.Node(s) == child {
					idx = j
					break
				}
			}
			if idx < 0 {
				return // not found (should not happen); stay silent
			}
			out := cf.walkList(list[idx+1:], st.closed)
			st.fall, st.closed = out.fall, out.closed
			st.brks = append(st.brks, out.brks...)
			st.conts = append(st.conts, out.conts...)
		}
		if cf.aborted || reported {
			return
		}
		// Resolve the construct that owns this list. A case/comm clause's
		// chain parent is the switch's body block; the owning construct is
		// the switch itself, one level further up.
		owner := ast.Node(nil)
		switch parent.(type) {
		case *ast.CaseClause, *ast.CommClause:
			if i >= 2 {
				owner = chain[i-2]
			}
		default:
			if i > 0 {
				owner = chain[i-1]
			}
		}
		switch owner.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Iteration boundary: falling off the body or continuing with
			// the span open means the next iteration re-begins over a
			// never-finished context.
			if st.fall && !st.closed {
				report(b.call.Pos(),
					"span begun by Tracer.%s may reach the end of the loop body unfinished", b.name)
			}
			for _, c := range st.conts {
				if !c.closed {
					report(c.pos,
						"continue path does not finish the span begun by Tracer.%s at line %d",
						b.name, pass.Pkg.Fset.Position(b.call.Pos()).Line)
				}
			}
			if reported {
				return
			}
			// Exits of the loop: breaks, plus the condition path when the
			// loop has one. Their merged state continues after the loop.
			mayCondExit := true
			if f, ok := owner.(*ast.ForStmt); ok && f.Cond == nil {
				mayCondExit = false
			}
			next := flowOut{}
			if mayCondExit && st.fall {
				next.fall, next.closed = true, st.closed
			}
			if len(st.brks) > 0 {
				all := true
				for _, bk := range st.brks {
					all = all && bk.closed
				}
				if next.fall {
					next.closed = next.closed && all
				} else {
					next.fall, next.closed = true, all
				}
			}
			if !next.fall {
				return // loop never exits normally; all paths accounted for
			}
			st = next
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Falling out of a case (or an unlabeled break) exits the switch.
			next := flowOut{fall: st.fall, closed: st.closed}
			for _, bk := range st.brks {
				if next.fall {
					next.closed = next.closed && bk.closed
				} else {
					next.fall, next.closed = true, bk.closed
				}
			}
			next.conts = st.conts // continues target an outer loop
			st = next
		default:
			if i == 0 {
				// End of the function body: an implicit return.
				if st.fall && !st.closed {
					report(body.Rbrace,
						"function can return without finishing the span begun by Tracer.%s at line %d",
						b.name, pass.Pkg.Fset.Position(b.call.Pos()).Line)
				}
				return
			}
			// If/blocks: control joins the surrounding list; keep state.
		}
	}
}

func suffixBg(name string) string {
	if name == "BeginBg" {
		return "Bg"
	}
	return ""
}
