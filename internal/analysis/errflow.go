package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrFlow guards the crash-consistency paths: an error returned from device
// I/O (ReadPages / WritePages / Sync) or from a replay/recovery routine
// (Replay*, Recover*) must be checked or explicitly discarded. These are
// exactly the paths the crash-injection harness exercises — a dropped error
// here turns an injected fault into silent data loss instead of a detected
// one, and the runtime sweep only catches the schedules it happens to run.
//
// Accepted forms: using the call in an expression (return f(), g(f())),
// binding the error and reading it afterwards, or assigning it to _ as an
// explicit discard. Reported: a bare call statement, go/defer of the call,
// and an error variable that is written but never read again.
//
// Test files are exempt: test assertions are their own error check.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "require errors from device I/O (ReadPages/WritePages/Sync) and replay/recovery paths to be checked or explicitly discarded",
	Run:  runErrFlow,
}

// errFlowTarget returns the callee name if call is a guarded error source:
// a ReadPages/WritePages/Sync method, or any function or method named
// Replay*/Recover*, returning an error (alone or as the last result).
func (p *Pass) errFlowTarget(call *ast.CallExpr) string {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return ""
	}
	isIO := name == "ReadPages" || name == "WritePages" || name == "Sync"
	isRecovery := strings.HasPrefix(name, "Replay") || strings.HasPrefix(name, "Recover")
	if !isIO && !isRecovery {
		return ""
	}
	if isIO {
		// Device I/O is always a method on a store/disk value.
		if _, ok := call.Fun.(*ast.SelectorExpr); !ok {
			return ""
		}
	}
	tv, ok := p.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return ""
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 || t.At(t.Len()-1).Type().String() != "error" {
			return ""
		}
	default:
		if t.String() != "error" {
			return ""
		}
	}
	return name
}

func runErrFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(body *ast.BlockStmt, decl ast.Node) {
			checkErrFlow(pass, body)
		})
	}
}

const errFlowHint = "handle the error (propagate or recover), or write `_ = call // reason` to discard it deliberately"

func checkErrFlow(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	uses := objUses(info, body)

	// checkAssign validates one `... , err = target(...)` binding: the
	// error variable must be read again after the assignment. A later
	// write in the same statement list is a straight-line overwrite and is
	// reported; a write in a sibling branch (another if-arm or switch
	// case) is not on this path, so the scan keeps looking for a read.
	checkAssign := func(a *ast.AssignStmt, lhs ast.Expr, name string) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // stored into a field/slot: someone else's to check
		}
		if id.Name == "_" {
			return // explicit discard
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		home := innermostList(body, a.Pos())
		for _, u := range uses[obj] {
			if u.pos <= a.End() {
				continue
			}
			if u.kind == useRead {
				return
			}
			if innermostList(body, u.pos) == home {
				pass.Reportf(a.Pos(), errFlowHint,
					"error from %s is assigned to %s but overwritten before being checked", name, id.Name)
				return
			}
		}
		pass.Reportf(a.Pos(), errFlowHint,
			"error from %s is assigned to %s but never checked", name, id.Name)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(body) {
			return false // literals are checked as their own unit
		}
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name := pass.errFlowTarget(call); name != "" {
					pass.Reportf(call.Pos(), errFlowHint,
						"error returned by %s is dropped", name)
				}
			}
		case *ast.GoStmt:
			if name := pass.errFlowTarget(n.Call); name != "" {
				pass.Reportf(n.Call.Pos(), errFlowHint,
					"error returned by %s is discarded by the go statement", name)
			}
		case *ast.DeferStmt:
			if name := pass.errFlowTarget(n.Call); name != "" {
				pass.Reportf(n.Call.Pos(), errFlowHint,
					"error returned by %s is discarded by the defer statement", name)
			}
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				call, ok := r.(*ast.CallExpr)
				if !ok {
					continue
				}
				name := pass.errFlowTarget(call)
				if name == "" {
					continue
				}
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// n, err := Replay(...): the error is the last result.
					checkAssign(n, n.Lhs[len(n.Lhs)-1], name)
				} else if i < len(n.Lhs) {
					checkAssign(n, n.Lhs[i], name)
				}
			}
		}
		return true
	})
}
