package analysis

import (
	"go/ast"
)

// randConstructors are the math/rand identifiers that do NOT touch the
// package-global, auto-seeded source: explicit-seed constructors and type
// names. Everything else on the package (Intn, Float64, Perm, Shuffle, Seed,
// Read, ...) draws from or mutates shared global state, which makes results
// depend on whatever else has consumed the stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// Type and interface names.
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
	// math/rand/v2 additions, should the module migrate.
	"NewPCG": true, "NewChaCha8": true, "PCG": true, "ChaCha8": true,
}

// NoRand forbids the package-level math/rand functions everywhere in the
// module: randomness must come from a *rand.Rand explicitly seeded from the
// experiment configuration, so a run is a pure function of its seed.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid globally-seeded package-level math/rand functions; require an explicitly seeded *rand.Rand",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				path := pass.SelectorPkg(sel)
				if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"use rand.New(rand.NewSource(seed)) with a seed threaded from the experiment config (Options.Seed / Spec.Seed)",
						"package-level rand.%s uses the shared global source; results stop being a pure function of the configured seed", sel.Sel.Name)
				}
				return true
			})
		}
	},
}
