// Package kv defines the engine-neutral request model shared by KVell and
// the baseline engines (LSM, B+ tree, Bε tree), plus the key/value codecs
// used by the workloads. All engines implement the same client interface as
// the paper (§5.1): Update(k,v), Get(k) and Scan(k1,k2)/Scan(k,n).
package kv

import (
	"kvell/internal/env"
	"kvell/internal/trace"
)

// OpType identifies a client operation.
type OpType uint8

// Operation types. The OpTxn* family is served only by engines with MVCC
// enabled (internal/core with Config.MVCC); other engines answer them with
// an empty result.
const (
	OpGet OpType = iota
	OpUpdate
	OpDelete
	OpScan
	OpRMW // read-modify-write (YCSB F)

	// OpTxnGet is a snapshot read at Request.TS; Request.TS2, when nonzero,
	// names a pending lock (by its start timestamp) the reader has resolved
	// as still pending and may read past.
	OpTxnGet
	// OpTxnPrewrite installs a percolator intent: Key/Value (Del for a
	// delete intent), TS = start timestamp, Aux = primary lock key.
	OpTxnPrewrite
	// OpTxnCommit flips an intent to a committed version: TS = start
	// timestamp, TS2 = commit timestamp. On the primary key it is the
	// transaction's atomic commit point.
	OpTxnCommit
	// OpTxnResolve queries the primary key's transaction state: TS = start
	// timestamp, TS2 = the inquiring reader's snapshot (recorded as
	// MaxReadTS while the transaction is pending; 0 for cleanup probes).
	OpTxnResolve
	// OpTxnRollback removes the intent installed at TS (lazy lock cleanup
	// and write-conflict abort paths).
	OpTxnRollback
	// OpTxnGC trims versions no snapshot at or above TS can read.
	OpTxnGC
)

// String returns the operation name.
func (o OpType) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	case OpTxnGet:
		return "txnget"
	case OpTxnPrewrite:
		return "prewrite"
	case OpTxnCommit:
		return "commit"
	case OpTxnResolve:
		return "resolve"
	case OpTxnRollback:
		return "rollback"
	case OpTxnGC:
		return "txngc"
	default:
		return "?"
	}
}

// ReadOnly reports whether o never writes engine state that must replicate:
// such operations skip the cluster replication barrier. OpTxnResolve only
// raises an in-memory read watermark, so it qualifies.
func (o OpType) ReadOnly() bool {
	switch o {
	case OpGet, OpScan, OpTxnGet, OpTxnResolve:
		return true
	}
	return false
}

// Transaction status codes carried in Result.Txn.
const (
	TxnOK            uint8 = iota
	TxnLocked              // blocked by another transaction's intent: TxnTS = its start timestamp, Value = its primary key
	TxnWriteConflict       // a version committed after the writer's snapshot: TxnTS = its commit timestamp
	TxnRetry               // commit timestamp at or below the primary's MaxReadTS: refetch and retry (TxnTS = the watermark)
	TxnPending             // resolve: transaction still pending
	TxnCommitted           // resolve: committed at TxnTS
	TxnAborted             // resolve/commit: no intent and no committed version — rolled back
)

// Result is the outcome of a request.
type Result struct {
	Found bool
	Value []byte
	// ScanN is the number of items a scan returned.
	ScanN int
	// Txn is the transaction status of an OpTxn* operation (TxnOK
	// otherwise); TxnTS carries the timestamp the status refers to.
	Txn   uint8
	TxnTS uint64
}

// Request is one client operation. Done is invoked exactly once when the
// operation completes (for updates, only after the data is durable, per
// KVell's no-commit-log guarantee). Engines may invoke Done from any
// context; callbacks must be short and non-blocking.
type Request struct {
	Op        OpType
	Key       []byte
	Value     []byte
	ScanCount int
	Done      func(Result)
	// Start is stamped by the issuer for latency accounting.
	Start env.Time
	// Trace, if set, is the request's observability context. Async engines
	// (KVell) carry it across the worker handoff; the issuer's Done wrapper
	// finishes it.
	Trace *trace.Ctx
	// ValueBuf is caller-owned scratch an engine may use to back
	// Result.Value for reads, growing it as needed. When set by a pooled
	// request it lets the read path reuse one buffer across operations;
	// Result.Value is then only valid until Done returns.
	ValueBuf []byte
	// ScanBuf is ValueBuf's counterpart for scans: caller-owned item
	// scratch an engine may fill via AppendItem, reusing each slot's
	// Key/Value capacity across operations. Like ValueBuf, the items are
	// only valid until Done returns.
	ScanBuf []Item
	// TS and TS2 are the timestamp arguments of OpTxn* operations (see the
	// OpType constants for each operation's meaning).
	TS  uint64
	TS2 uint64
	// Aux is the primary lock key of an OpTxnPrewrite.
	Aux []byte
	// Del marks an OpTxnPrewrite as a delete intent.
	Del bool
}

// AppendItem appends a copy of (key, value) to items. When items is a
// recycled scratch buffer (e.g. Request.ScanBuf) with spare capacity, the
// receiving slot's existing Key/Value buffers are reused instead of
// allocating fresh copies.
func AppendItem(items []Item, key, value []byte) []Item {
	if n := len(items); n < cap(items) {
		items = items[:n+1]
		it := &items[n]
		it.Key = append(it.Key[:0], key...)
		it.Value = append(it.Value[:0], value...)
		return items
	}
	return append(items, Item{
		Key:   append([]byte(nil), key...),
		Value: append([]byte(nil), value...),
	})
}

// Engine is a key-value store under benchmark. Engines with internal worker
// threads (KVell) enqueue the request and return immediately; library-style
// engines (the LSM and tree baselines, like RocksDB/WiredTiger) execute the
// request on the calling thread, blocking it — exactly the threading model
// the paper measures.
type Engine interface {
	Name() string
	// Start launches the engine's background threads.
	Start()
	// Submit hands a request to the engine from client context c.
	Submit(c env.Ctx, r *Request)
	// BulkLoad installs the initial dataset directly (the unmeasured YCSB
	// load phase), bypassing the request path. Items must be sorted by key.
	BulkLoad(items []Item) error
	// Stop shuts down background threads (best effort; simulation Close
	// also unwinds them).
	Stop(c env.Ctx)
}

// Item is a key-value pair for bulk loading.
type Item struct {
	Key   []byte
	Value []byte
}

// KeyLen is the fixed length of generated benchmark keys.
const KeyLen = 19 // "user" + 15 digits

// Key formats record number i as a fixed-width, order-preserving key
// (YCSB-style "user..." keys).
func Key(i int64) []byte {
	buf := make([]byte, KeyLen)
	FillKey(buf, i)
	return buf
}

// FillKey writes the key for record i into buf, which must be exactly
// KeyLen bytes. It is the allocation-free form of Key, for callers that own
// a reusable buffer. i must be non-negative (record numbers always are).
func FillKey(buf []byte, i int64) {
	_ = buf[KeyLen-1]
	buf[0], buf[1], buf[2], buf[3] = 'u', 's', 'e', 'r'
	for j := KeyLen - 1; j >= 4; j-- {
		buf[j] = byte('0' + i%10)
		i /= 10
	}
}

// KeyNum parses a generated key back to its record number (-1 if foreign).
func KeyNum(k []byte) int64 {
	if len(k) != KeyLen || string(k[:4]) != "user" {
		return -1
	}
	var n int64
	for _, c := range k[4:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// Value generates a deterministic value of length n for record i at version
// v, so tests can verify contents without storing an oracle copy.
func Value(i int64, version uint64, n int) []byte {
	buf := make([]byte, n)
	FillValue(buf, i, version)
	return buf
}

// FillValue writes the deterministic value for (record i, version) into buf
// (the whole slice). It is the allocation-free form of Value.
func FillValue(buf []byte, i int64, version uint64) {
	// xorshift fill seeded from (record, version)
	s := uint64(i)*0x9E3779B97F4A7C15 + version*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	for j := range buf {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		buf[j] = byte(s)
	}
}

// Hash64 is FNV-1a over k; used to shard keys across workers.
func Hash64(k []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range k {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
