// Package kv defines the engine-neutral request model shared by KVell and
// the baseline engines (LSM, B+ tree, Bε tree), plus the key/value codecs
// used by the workloads. All engines implement the same client interface as
// the paper (§5.1): Update(k,v), Get(k) and Scan(k1,k2)/Scan(k,n).
package kv

import (
	"fmt"

	"kvell/internal/env"
)

// OpType identifies a client operation.
type OpType uint8

// Operation types.
const (
	OpGet OpType = iota
	OpUpdate
	OpDelete
	OpScan
	OpRMW // read-modify-write (YCSB F)
)

// String returns the operation name.
func (o OpType) String() string {
	switch o {
	case OpGet:
		return "get"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	default:
		return "?"
	}
}

// Result is the outcome of a request.
type Result struct {
	Found bool
	Value []byte
	// ScanN is the number of items a scan returned.
	ScanN int
}

// Request is one client operation. Done is invoked exactly once when the
// operation completes (for updates, only after the data is durable, per
// KVell's no-commit-log guarantee). Engines may invoke Done from any
// context; callbacks must be short and non-blocking.
type Request struct {
	Op        OpType
	Key       []byte
	Value     []byte
	ScanCount int
	Done      func(Result)
	// Start is stamped by the issuer for latency accounting.
	Start env.Time
}

// Engine is a key-value store under benchmark. Engines with internal worker
// threads (KVell) enqueue the request and return immediately; library-style
// engines (the LSM and tree baselines, like RocksDB/WiredTiger) execute the
// request on the calling thread, blocking it — exactly the threading model
// the paper measures.
type Engine interface {
	Name() string
	// Start launches the engine's background threads.
	Start()
	// Submit hands a request to the engine from client context c.
	Submit(c env.Ctx, r *Request)
	// BulkLoad installs the initial dataset directly (the unmeasured YCSB
	// load phase), bypassing the request path. Items must be sorted by key.
	BulkLoad(items []Item) error
	// Stop shuts down background threads (best effort; simulation Close
	// also unwinds them).
	Stop(c env.Ctx)
}

// Item is a key-value pair for bulk loading.
type Item struct {
	Key   []byte
	Value []byte
}

// KeyLen is the fixed length of generated benchmark keys.
const KeyLen = 19 // "user" + 15 digits

// Key formats record number i as a fixed-width, order-preserving key
// (YCSB-style "user..." keys).
func Key(i int64) []byte {
	return []byte(fmt.Sprintf("user%015d", i))
}

// KeyNum parses a generated key back to its record number (-1 if foreign).
func KeyNum(k []byte) int64 {
	if len(k) != KeyLen || string(k[:4]) != "user" {
		return -1
	}
	var n int64
	for _, c := range k[4:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// Value generates a deterministic value of length n for record i at version
// v, so tests can verify contents without storing an oracle copy.
func Value(i int64, version uint64, n int) []byte {
	buf := make([]byte, n)
	// xorshift fill seeded from (record, version)
	s := uint64(i)*0x9E3779B97F4A7C15 + version*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	for j := range buf {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		buf[j] = byte(s)
	}
	return buf
}

// Hash64 is FNV-1a over k; used to shard keys across workers.
func Hash64(k []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range k {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
