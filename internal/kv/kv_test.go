package kv

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestKeyRoundtrip(t *testing.T) {
	for _, i := range []int64{0, 1, 42, 999_999, 99_999_999_999} {
		k := Key(i)
		if len(k) != KeyLen {
			t.Fatalf("Key(%d) length %d", i, len(k))
		}
		if got := KeyNum(k); got != i {
			t.Fatalf("KeyNum(Key(%d)) = %d", i, got)
		}
	}
	if KeyNum([]byte("not-a-key")) != -1 {
		t.Fatal("foreign key parsed")
	}
	if KeyNum([]byte("userXXXXXXXXXXXXXXX")) != -1 {
		t.Fatal("non-digit key parsed")
	}
}

func TestKeyOrderMatchesNumericOrder(t *testing.T) {
	f := func(a, b uint32) bool {
		ka, kb := Key(int64(a)), Key(int64(b))
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueDeterministic(t *testing.T) {
	a := Value(7, 3, 100)
	b := Value(7, 3, 100)
	if !bytes.Equal(a, b) {
		t.Fatal("Value not deterministic")
	}
	c := Value(7, 4, 100)
	if bytes.Equal(a, c) {
		t.Fatal("different versions produced identical values")
	}
	d := Value(8, 3, 100)
	if bytes.Equal(a, d) {
		t.Fatal("different records produced identical values")
	}
	if len(Value(1, 1, 0)) != 0 {
		t.Fatal("zero-length value")
	}
}

func TestHash64Spreads(t *testing.T) {
	buckets := make([]int, 8)
	for i := int64(0); i < 8000; i++ {
		buckets[Hash64(Key(i))%8]++
	}
	for w, n := range buckets {
		if n < 800 || n > 1200 {
			t.Fatalf("worker %d got %d/8000 keys; hash skewed", w, n)
		}
	}
}

func TestOpTypeString(t *testing.T) {
	for op, want := range map[OpType]string{
		OpGet: "get", OpUpdate: "update", OpDelete: "delete", OpScan: "scan", OpRMW: "rmw",
	} {
		if op.String() != want {
			t.Fatalf("%d.String() = %q", op, op.String())
		}
	}
}

func TestAppendItemReusesSlots(t *testing.T) {
	items := AppendItem(nil, []byte("alpha"), []byte("one"))
	items = AppendItem(items, []byte("beta"), []byte("two"))
	if len(items) != 2 || string(items[0].Key) != "alpha" || string(items[1].Value) != "two" {
		t.Fatalf("appended items wrong: %v", items)
	}
	// Recycle: reslice to zero and refill; the slots' buffers must be reused.
	k0, v0 := &items[0].Key[0], &items[0].Value[0]
	items = items[:0]
	items = AppendItem(items, []byte("gamma"), []byte("ten"))
	if string(items[0].Key) != "gamma" || string(items[0].Value) != "ten" {
		t.Fatalf("refilled item wrong: %v", items[0])
	}
	if &items[0].Key[0] != k0 || &items[0].Value[0] != v0 {
		t.Fatal("refill did not reuse the recycled slot's buffers")
	}
	// Growing past a slot's capacity must still copy correctly.
	items = AppendItem(items[:0], []byte("a-much-longer-key-than-before"), []byte("a-much-longer-value-than-before"))
	if string(items[0].Key) != "a-much-longer-key-than-before" {
		t.Fatalf("grown key wrong: %q", items[0].Key)
	}
	if n := testing.AllocsPerRun(100, func() {
		items = AppendItem(items[:0], []byte("alpha"), []byte("one"))
	}); n != 0 {
		t.Errorf("steady-state AppendItem allocates %v per call, want 0", n)
	}
}
