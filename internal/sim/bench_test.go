package sim

import "testing"

// BenchmarkEventThroughput measures raw scheduler throughput (events/sec);
// it bounds how much virtual time the harness can simulate per real second.
func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	n := 0
	s.Go("spinner", func(p *Proc) {
		for n < b.N {
			n++
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	if err := s.Run(-1); err != nil {
		b.Fatal(err)
	}
	s.Close()
}

func BenchmarkStationAssign(b *testing.B) {
	st := NewStation(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Assign(int64(i), 11_000)
	}
}
