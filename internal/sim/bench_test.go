package sim

import "testing"

// BenchmarkEventThroughput measures raw scheduler throughput (events/sec);
// it bounds how much virtual time the harness can simulate per real second.
func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	n := 0
	s.Go("spinner", func(p *Proc) {
		for n < b.N {
			n++
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(-1); err != nil {
		b.Fatal(err)
	}
	s.Close()
}

// BenchmarkPoolUse measures charging multi-quantum CPU bursts to a core pool
// (the path compactions and other long CPU work take).
func BenchmarkPoolUse(b *testing.B) {
	s := New(1)
	pool := NewPool(s, 4) // Quantum is 200us, so 1ms bursts split 5 ways
	n := 0
	s.Go("worker", func(p *Proc) {
		for n < b.N {
			n++
			pool.Use(p, 1000*1000)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(-1); err != nil {
		b.Fatal(err)
	}
	s.Close()
}

// BenchmarkQueuePushPop measures FIFO mechanics at a realistic standing depth
// (a worker's request queue), where a slice-backed queue pays an O(depth)
// shift per pop.
func BenchmarkQueuePushPop(b *testing.B) {
	s := New(1)
	q := NewQueue(s)
	for i := 0; i < 1024; i++ {
		q.Push(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.TryPop(1)
	}
}

// BenchmarkMutexHandoff measures contended lock ownership transfer between
// two procs (wake + park per handoff, the engines' hottest sync pattern).
func BenchmarkMutexHandoff(b *testing.B) {
	s := New(1)
	m := NewMutex(s)
	n := 0
	for w := 0; w < 2; w++ {
		s.Go("worker", func(p *Proc) {
			for n < b.N {
				m.Lock(p)
				n++
				p.Sleep(0) // force the other proc to queue on m
				m.Unlock(p)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(-1); err != nil {
		b.Fatal(err)
	}
	s.Close()
}

func BenchmarkStationAssign(b *testing.B) {
	st := NewStation(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Assign(int64(i), 11_000)
	}
}
