package sim

import "testing"

// Halting a machine domain discards its queued events at dispatch while the
// clock and the other machines keep running.
func TestHaltDropsMachineEvents(t *testing.T) {
	s := New(1)
	var fired []string
	s.AtOn(0, 100, func() { fired = append(fired, "m0@100") })
	s.AtOn(1, 100, func() { fired = append(fired, "m1@100") })
	s.AtOn(1, 300, func() { fired = append(fired, "m1@300") })
	s.AtOn(0, 300, func() { fired = append(fired, "m0@300") })
	s.At(200, func() { s.Halt(1) })
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	want := []string{"m0@100", "m1@100", "m0@300"}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i, w := range want {
		if fired[i] != w {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if s.Now() != 300 {
		t.Fatalf("clock = %d, want 300 (survivor events still advance it)", s.Now())
	}
	if !s.Halted(1) || s.Halted(0) {
		t.Fatalf("Halted(1)=%v Halted(0)=%v", s.Halted(1), s.Halted(0))
	}
}

// A proc on a halted machine is never resumed: it parks at its next sleep
// and stays parked until Close unwinds it. Survivor procs are unaffected.
func TestHaltParksMachineProcs(t *testing.T) {
	s := New(1)
	var deadWoke, liveWoke bool
	s.GoOn(1, "victim", func(p *Proc) {
		p.Sleep(500)
		deadWoke = true
	})
	s.GoOn(0, "survivor", func(p *Proc) {
		p.Sleep(500)
		liveWoke = true
	})
	s.At(100, func() { s.Halt(1) })
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if deadWoke {
		t.Fatal("proc on halted machine resumed")
	}
	if !liveWoke {
		t.Fatal("survivor proc never resumed")
	}
	if s.Live() != 1 {
		t.Fatalf("live = %d, want 1 (the parked victim)", s.Live())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if deadWoke {
		t.Fatal("Close ran the halted proc's continuation")
	}
}

// GoOn after Halt: the new proc parks forever instead of running.
func TestGoOnHaltedMachineParks(t *testing.T) {
	s := New(1)
	var ran bool
	s.At(10, func() { s.Halt(2) })
	s.At(20, func() {
		s.GoOn(2, "late", func(p *Proc) { ran = true })
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("proc spawned on a halted machine ran")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Default-machine simulations are untouched by halting a machine that owns
// nothing: schedules identical with and without the Halt call.
func TestHaltForeignMachineIsInert(t *testing.T) {
	run := func(halt bool) []Time {
		s := New(7)
		var times []Time
		s.Go("a", func(p *Proc) {
			for i := 0; i < 4; i++ {
				p.Sleep(25)
				times = append(times, p.Now())
			}
		})
		if halt {
			s.At(30, func() { s.Halt(5) })
		}
		if err := s.Run(-1); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("schedules differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules differ: %v vs %v", a, b)
		}
	}
}
