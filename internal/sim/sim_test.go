package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var times []Time
	s.Go("a", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			times = append(times, p.Now())
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 20, 30, 40, 50}
	for i, w := range want {
		if times[i] != w {
			t.Errorf("wake %d at %d, want %d", i, times[i], w)
		}
	}
	if s.Live() != 0 {
		t.Errorf("live procs after run: %d", s.Live())
	}
}

func TestEventOrderFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(1)
	s.Go("sleeper", func(p *Proc) { p.Sleep(1000) })
	if err := s.Run(300); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 300 {
		t.Fatalf("now = %d, want 300", s.Now())
	}
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 1000 {
		t.Fatalf("now = %d, want 1000", s.Now())
	}
}

func TestCloseUnwindsParkedProcs(t *testing.T) {
	s := New(1)
	q := NewQueue(s)
	for i := 0; i < 4; i++ {
		s.Go("blocked", func(p *Proc) { q.PopWait(p, 1) })
	}
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Live() != 0 {
		t.Errorf("live procs after close: %d", s.Live())
	}
}

func TestProcPanicIsReported(t *testing.T) {
	s := New(1)
	s.Go("bad", func(p *Proc) { panic("boom") })
	if err := s.Run(-1); err == nil {
		t.Fatal("expected error from panicking proc")
	}
}

func TestStationSingleServerSerializes(t *testing.T) {
	st := NewStation(1)
	d1 := st.Assign(0, 10)
	d2 := st.Assign(0, 10)
	d3 := st.Assign(5, 10)
	if d1 != 10 || d2 != 20 || d3 != 30 {
		t.Fatalf("completions = %d,%d,%d; want 10,20,30", d1, d2, d3)
	}
}

func TestStationParallelism(t *testing.T) {
	st := NewStation(4)
	for i := 0; i < 4; i++ {
		if done := st.Assign(0, 10); done != 10 {
			t.Fatalf("parallel op %d done at %d, want 10", i, done)
		}
	}
	if done := st.Assign(0, 10); done != 20 {
		t.Fatalf("queued op done at %d, want 20", done)
	}
}

func TestStationThroughputCap(t *testing.T) {
	// 6 servers, 11us service => ~545K ops/s. Submit 10000 ops at time 0;
	// the last completes at ceil(10000/6)*11us.
	st := NewStation(6)
	var last Time
	for i := 0; i < 10000; i++ {
		last = st.Assign(0, 11000)
	}
	want := Time(1667 * 11000)
	if last != want {
		t.Fatalf("last completion %d, want %d", last, want)
	}
}

func TestStationPause(t *testing.T) {
	st := NewStation(2)
	st.Assign(0, 10) // one server busy until 10
	st.Pause(100)
	if done := st.Assign(0, 5); done != 105 {
		t.Fatalf("post-pause completion %d, want 105", done)
	}
}

func TestStationAssignMonotonicProperty(t *testing.T) {
	// Property: with a single server, completion times are strictly
	// increasing for positive service times, and never precede arrival.
	f := func(durs []uint16) bool {
		st := NewStation(1)
		var now, prev Time
		for _, d := range durs {
			dd := Time(d%1000) + 1
			done := st.Assign(now, dd)
			if done <= prev || done < now+dd {
				return false
			}
			prev = done
			now += Time(d % 7)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoolQueuesWhenSaturated(t *testing.T) {
	s := New(1)
	pool := NewPool(s, 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		s.Go("w", func(p *Proc) {
			pool.Use(p, 100)
			finish = append(finish, p.Now())
		})
	}
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	// 2 cores, 4 jobs of 100ns: two finish at 100, two at 200.
	if len(finish) != 4 || finish[0] != 100 || finish[1] != 100 || finish[2] != 200 || finish[3] != 200 {
		t.Fatalf("finish times = %v", finish)
	}
	if pool.Station().BusyTime() != 400 {
		t.Fatalf("busy time = %d, want 400", pool.Station().BusyTime())
	}
}

func TestPoolQuantumSplitsLongBursts(t *testing.T) {
	s := New(1)
	pool := NewPool(s, 1)
	pool.Quantum = 100
	var longDone, shortDone Time
	s.Go("long", func(p *Proc) {
		pool.Use(p, 1000)
		longDone = p.Now()
	})
	s.Go("short", func(p *Proc) {
		p.Sleep(50) // arrive while the long burst is running
		pool.Use(p, 100)
		shortDone = p.Now()
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if longDone != 1100 {
		t.Fatalf("long done at %d, want 1100 (interleaved)", longDone)
	}
	if shortDone >= longDone {
		t.Fatalf("short (done %d) should preempt long (done %d) via quantum", shortDone, longDone)
	}
}

func TestMutexFIFOAndOwnershipTransfer(t *testing.T) {
	s := New(1)
	m := NewMutex(s)
	var order []string
	hold := func(name string, arrive, dur Time) {
		s.Go(name, func(p *Proc) {
			p.Sleep(arrive)
			m.Lock(p)
			order = append(order, name)
			p.Sleep(dur)
			m.Unlock(p)
		})
	}
	hold("a", 0, 100)
	hold("b", 10, 10)
	hold("c", 20, 10)
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
	if m.Contended != 2 {
		t.Fatalf("contended = %d, want 2", m.Contended)
	}
}

func TestMutexTryLockCountsFailedAttempts(t *testing.T) {
	s := New(1)
	m := NewMutex(s)
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	// Lock counts every attempt; TryLock must too, or contention ratios
	// computed as Contended/Acquires are skewed.
	if m.Acquires != 3 {
		t.Errorf("Acquires = %d, want 3 (failed tries must count)", m.Acquires)
	}
	if m.Contended != 2 {
		t.Errorf("Contended = %d, want 2", m.Contended)
	}
	m.Unlock(nil)
	if !m.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	if m.Acquires != 4 || m.Contended != 2 {
		t.Errorf("after re-acquire: Acquires=%d Contended=%d, want 4, 2", m.Acquires, m.Contended)
	}
}

func TestSpinMutexBurnsCPU(t *testing.T) {
	s := New(1)
	pool := NewPool(s, 4)
	m := NewSpinMutex(s, pool)
	s.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(100 * 1000)
		m.Unlock()
	})
	s.Go("spinner", func(p *Proc) {
		p.Sleep(1)
		m.Lock(p)
		m.Unlock()
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if m.SpinTime < 90*1000 {
		t.Fatalf("spin time = %d, want ~100us of burned CPU", m.SpinTime)
	}
	if pool.Station().BusyTime() < m.SpinTime {
		t.Fatalf("pool busy %d < spin %d: spinning not charged to cores", pool.Station().BusyTime(), m.SpinTime)
	}
}

func TestCondSignalWakesInOrder(t *testing.T) {
	s := New(1)
	m := NewMutex(s)
	c := NewCond(s)
	ready := 0
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		s.Go("waiter", func(p *Proc) {
			m.Lock(p)
			for ready <= i {
				c.Wait(p, m)
			}
			got = append(got, i)
			m.Unlock(p)
		})
	}
	s.Go("signaler", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			ready++
			c.Broadcast()
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 wakeups", got)
	}
}

func TestQueueFIFOAndBatchedPop(t *testing.T) {
	s := New(1)
	q := NewQueue(s)
	var batches [][]any
	s.Go("consumer", func(p *Proc) {
		for {
			b := q.PopWait(p, 3)
			if b == nil {
				return
			}
			batches = append(batches, b)
		}
	})
	s.Go("producer", func(p *Proc) {
		for i := 0; i < 7; i++ {
			q.Push(i)
		}
		p.Sleep(10)
		q.Close()
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	var flat []int
	for _, b := range batches {
		if len(b) > 3 {
			t.Fatalf("batch larger than max: %v", b)
		}
		for _, v := range b {
			flat = append(flat, v.(int))
		}
	}
	if len(flat) != 7 {
		t.Fatalf("consumed %v, want 7 items", flat)
	}
	for i, v := range flat {
		if v != i {
			t.Fatalf("order broken: %v", flat)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New(42)
		pool := NewPool(s, 2)
		q := NewQueue(s)
		var log []Time
		for w := 0; w < 3; w++ {
			s.Go("worker", func(p *Proc) {
				for {
					b := q.PopWait(p, 2)
					if b == nil {
						return
					}
					pool.Use(p, Time(100+s.Rand().Intn(50)))
					log = append(log, p.Now())
				}
			})
		}
		s.Go("gen", func(p *Proc) {
			for i := 0; i < 50; i++ {
				q.Push(i)
				p.Sleep(Time(s.Rand().Intn(30)))
			}
			q.Close()
		})
		if err := s.Run(-1); err != nil {
			t.Fatal(err)
		}
		s.Close()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
