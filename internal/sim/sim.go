// Package sim is a deterministic discrete-event simulation kernel.
//
// A Sim owns a virtual clock and an event queue. Simulated threads ("procs")
// are real goroutines, but exactly one of them runs at any moment: control is
// handed between the scheduler and procs over unbuffered channels, so the
// simulation is sequentially consistent and deterministic, and passes the
// race detector by construction.
//
// Two kinds of events exist: proc wake-ups, and plain functions that run on
// the scheduler itself (used for I/O completions; they must not block).
//
// The package also provides the synchronization and queueing primitives the
// engines are built from: FCFS multi-server stations (CPU cores, device
// channels), mutexes, spin-mutexes that burn simulated CPU while waiting,
// condition variables and FIFO queues.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime/debug"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time = int64

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	proc *Proc  // resume this proc ...
	fn   func() // ... or run this function on the scheduler
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)      { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (x any)    { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }
func (h eventHeap) Peek() *event     { return h[0] }
func (h *eventHeap) PushEv(e *event) { heap.Push(h, e) }
func (h *eventHeap) PopEv() *event   { return heap.Pop(h).(*event) }

// errShutdown unwinds proc goroutines when the simulation is closed.
type shutdownError struct{}

func (shutdownError) Error() string { return "sim: shutdown" }

var errShutdown = shutdownError{}

// Sim is a discrete-event simulation.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	yield   chan struct{} // procs hand control back to the scheduler here
	parked  map[*Proc]struct{}
	closed  bool
	failed  error
	rng     *rand.Rand
	live    int    // procs started and not yet finished
	procSeq uint64 // creation order; teardown resumes parked procs in this order
}

// New returns an empty simulation whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from simulation context (procs or scheduled functions).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Live reports the number of procs that have been started and not finished.
func (s *Sim) Live() int { return s.live }

func (s *Sim) schedule(at Time, p *Proc, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.events.PushEv(&event{at: at, seq: s.seq, proc: p, fn: fn})
}

// At schedules fn to run on the scheduler at time at (clamped to now). fn
// must not block or park; it may wake procs and schedule further events.
func (s *Sim) At(at Time, fn func()) { s.schedule(at, nil, fn) }

// Go starts a new proc running fn, beginning at the current virtual time.
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc {
	s.procSeq++
	p := &Proc{sim: s, name: name, id: s.procSeq, resume: make(chan struct{})}
	s.live++
	go func() {
		<-p.resume
		defer func() {
			s.live--
			if r := recover(); r != nil {
				if _, ok := r.(shutdownError); !ok && s.failed == nil {
					s.failed = fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			s.yield <- struct{}{}
		}()
		if !s.closed {
			fn(p)
		}
	}()
	s.schedule(s.now, p, nil)
	return p
}

// resumeProc hands control to p and waits until it parks or finishes.
func (s *Sim) resumeProc(p *Proc) {
	delete(s.parked, p)
	p.resume <- struct{}{}
	<-s.yield
}

// wake schedules p to resume at the current time. It is the primitive used
// by resources and completion callbacks.
func (s *Sim) wake(p *Proc) { s.schedule(s.now, p, nil) }

// Run processes events until the queue is empty or virtual time would pass
// until (use until < 0 for no limit). It returns the first proc panic, if
// any. Run may be called repeatedly to advance a simulation in stages.
func (s *Sim) Run(until Time) error {
	for len(s.events) > 0 && s.failed == nil {
		if until >= 0 && s.events.Peek().at > until {
			s.now = until
			break
		}
		e := s.events.PopEv()
		s.now = e.at
		switch {
		case e.fn != nil:
			e.fn()
		case e.proc != nil:
			s.resumeProc(e.proc)
		}
	}
	if until >= 0 && s.now < until && s.failed == nil {
		s.now = until
	}
	return s.failed
}

// Close terminates the simulation: every parked proc is resumed with a
// shutdown panic so its goroutine exits. Pending events are discarded.
// It returns the first proc failure observed, if any.
func (s *Sim) Close() error {
	s.closed = true
	// Drain scheduled proc wake-ups first so no proc is resumed twice.
	for len(s.events) > 0 {
		e := s.events.PopEv()
		if e.proc != nil {
			s.resumeProc(e.proc)
		}
	}
	// Resume survivors in creation order: s.parked is a map, and Go's
	// randomized iteration order must not decide which proc panic is
	// recorded first in s.failed.
	for len(s.parked) > 0 {
		var next *Proc
		for p := range s.parked {
			if next == nil || p.id < next.id {
				next = p
			}
		}
		s.resumeProc(next)
	}
	return s.failed
}

// Proc is a simulated thread.
type Proc struct {
	sim    *Sim
	name   string
	id     uint64 // creation order, for deterministic teardown
	resume chan struct{}
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Sim returns the simulation this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// park suspends the proc until something wakes it. The caller must have
// arranged a wake-up (a scheduled event or registration with a resource).
func (p *Proc) park() {
	s := p.sim
	s.parked[p] = struct{}{}
	s.yield <- struct{}{}
	<-p.resume
	if s.closed {
		panic(errShutdown)
	}
}

// Sleep suspends the proc for d nanoseconds (d <= 0 yields to simultaneous
// events and resumes at the same virtual time).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p, nil)
	p.park()
}

// SleepUntil suspends the proc until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	p.sim.schedule(t, p, nil)
	p.park()
}
