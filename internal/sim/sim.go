// Package sim is a deterministic discrete-event simulation kernel.
//
// A Sim owns a virtual clock and an event queue. Simulated threads ("procs")
// are real goroutines, but exactly one of them runs at any moment: control is
// handed between the scheduler and procs over unbuffered channels, so the
// simulation is sequentially consistent and deterministic, and passes the
// race detector by construction.
//
// Two kinds of events exist: proc wake-ups, and plain functions that run on
// the scheduler itself (used for I/O completions; they must not block).
//
// The package also provides the synchronization and queueing primitives the
// engines are built from: FCFS multi-server stations (CPU cores, device
// channels, network links), mutexes, spin-mutexes that burn simulated CPU
// while waiting, condition variables and FIFO queues.
//
// # Machine domains
//
// One Sim can model several machines sharing the virtual clock: every proc
// and scheduler function belongs to a machine domain (0 by default; GoOn and
// AtOn choose one). Halt(m) kills machine m — its queued events are
// discarded at dispatch and its procs never resume — while the rest of the
// simulation keeps running, which is the cluster failure model
// (internal/fault kills a machine, internal/cluster fails over). A
// simulation that never calls GoOn/AtOn/Halt behaves exactly as before:
// everything is machine 0 and the dispatch path only pays a nil check.
//
// # Hot-path design
//
// The kernel processes hundreds of millions of events per harness run, so the
// scheduling path is engineered for throughput (see DESIGN.md "Kernel
// performance model"):
//
//   - event structs come from a free list, so steady-state scheduling does
//     not allocate;
//   - future events live in a concrete 4-ary min-heap ordered on (at, seq) —
//     no interface boxing, shallower than a binary heap;
//   - events scheduled at exactly the current time (wake-ups, same-instant
//     handoffs, I/O completion fan-out) bypass the heap through a FIFO ring
//     lane, which is ordered by construction;
//   - a proc sleeping past every pending event skips the park/resume channel
//     rendezvous entirely and just advances the clock ("fast resume").
//
// Every shortcut is gated on a precondition under which it is provably
// unobservable, so optimized and unoptimized kernels produce bit-identical
// schedules (locked by the golden digests in internal/harness/testdata).
package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time = int64

type event struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among simultaneous events
	machine int32  // machine domain for fn events (proc events use proc.machine)
	proc    *Proc  // resume this proc ...
	fn      func() // ... or run this function on the scheduler
}

// eventLess orders events by (at, seq); seq is unique, so the order is total.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// errShutdown unwinds proc goroutines when the simulation is closed.
type shutdownError struct{}

func (shutdownError) Error() string { return "sim: shutdown" }

var errShutdown = shutdownError{}

// Sim is a discrete-event simulation.
type Sim struct {
	now Time
	seq uint64

	// heap is a 4-ary min-heap on (at, seq) holding events strictly in the
	// future. Events at the current instant go to the lane ring instead.
	heap []*event
	// lane is a FIFO ring of events scheduled at exactly the current time.
	// Entries have nondecreasing at and increasing seq (at is clamped to a
	// nondecreasing clock), so front-of-lane is the lane's (at, seq) minimum
	// and no heap discipline is needed.
	lane     []*event // len(lane) is a power of two
	laneHead int
	laneLen  int
	// free is the event free list; steady-state scheduling never allocates.
	free []*event

	until   Time          // boundary of the Run in progress (< 0: none)
	yield   chan struct{} // procs hand control back to the scheduler here
	closed  bool
	stopped bool // Stop() was called: Run dispatches no further events
	// halted marks dead machine domains (see Halt). nil until the first
	// Halt, so single-machine simulations pay one nil check per dispatch.
	halted  []bool
	failed  error
	rng     *rand.Rand
	live    int     // procs started and not yet finished
	procSeq uint64  // creation order; teardown resumes parked procs in this order
	procs   []*Proc // all tracked procs in creation order (compacted lazily)
	done    int     // finished procs still present in procs
	running *Proc   // the proc currently holding control, nil in scheduler context
}

// New returns an empty simulation whose random source is seeded with seed.
func New(seed int64) *Sim {
	return &Sim{
		yield: make(chan struct{}),
		until: -1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. It must only be
// used from simulation context (procs or scheduled functions).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Live reports the number of procs that have been started and not finished.
func (s *Sim) Live() int { return s.live }

// getEvent pops the free list (or allocates) and initializes the event.
func (s *Sim) getEvent(at Time, p *Proc, fn func()) *event {
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = new(event)
	}
	s.seq++
	e.at, e.seq, e.proc, e.fn = at, s.seq, p, fn
	e.machine = 0
	if p != nil {
		e.machine = p.machine
	}
	return e
}

// putEvent recycles a dispatched event, dropping its references.
func (s *Sim) putEvent(e *event) {
	e.proc, e.fn = nil, nil
	s.free = append(s.free, e)
}

func (s *Sim) schedule(at Time, p *Proc, fn func()) {
	if at <= s.now {
		s.lanePush(s.getEvent(s.now, p, fn))
		return
	}
	s.heapPush(s.getEvent(at, p, fn))
}

// scheduleOn is schedule for scheduler functions addressed to a machine
// domain: the event is discarded at dispatch if the machine has been halted.
func (s *Sim) scheduleOn(machine int, at Time, fn func()) {
	e := s.getEvent(at, nil, fn)
	e.machine = int32(machine)
	if e.at <= s.now {
		e.at = s.now
		s.lanePush(e)
		return
	}
	s.heapPush(e)
}

// lanePush appends to the same-instant FIFO ring, growing it as needed.
func (s *Sim) lanePush(e *event) {
	if s.laneLen == len(s.lane) {
		grown := make([]*event, max(64, 2*len(s.lane)))
		for i := 0; i < s.laneLen; i++ {
			grown[i] = s.lane[(s.laneHead+i)&(len(s.lane)-1)]
		}
		s.lane, s.laneHead = grown, 0
	}
	s.lane[(s.laneHead+s.laneLen)&(len(s.lane)-1)] = e
	s.laneLen++
}

func (s *Sim) lanePop() *event {
	e := s.lane[s.laneHead]
	s.lane[s.laneHead] = nil
	s.laneHead = (s.laneHead + 1) & (len(s.lane) - 1)
	s.laneLen--
	return e
}

// heapPush sifts e up a 4-ary heap (parent of i is (i-1)/4).
func (s *Sim) heapPush(e *event) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.heap = h
}

// heapPop removes and returns the (at, seq)-minimum (children of i are
// 4i+1..4i+4).
func (s *Sim) heapPop() *event {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if eventLess(h[j], h[best]) {
				best = j
			}
		}
		if !eventLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	s.heap = h
	return top
}

// pending reports the number of undispatched events.
func (s *Sim) pending() int { return s.laneLen + len(s.heap) }

// peek returns the next event in (at, seq) order without removing it.
func (s *Sim) peek() *event {
	if s.laneLen == 0 {
		return s.heap[0]
	}
	le := s.lane[s.laneHead]
	if len(s.heap) == 0 || eventLess(le, s.heap[0]) {
		return le
	}
	return s.heap[0]
}

// pop removes and returns the next event in (at, seq) order.
func (s *Sim) pop() *event {
	if s.laneLen == 0 {
		return s.heapPop()
	}
	if len(s.heap) == 0 || eventLess(s.lane[s.laneHead], s.heap[0]) {
		return s.lanePop()
	}
	return s.heapPop()
}

// noEventBefore reports whether no pending event fires strictly before t.
// The earliest pending (at, seq) is the min of lane front and heap root, so
// the check is O(1).
func (s *Sim) noEventBefore(t Time) bool {
	if s.laneLen > 0 && s.lane[s.laneHead].at < t {
		return false
	}
	if len(s.heap) > 0 && s.heap[0].at < t {
		return false
	}
	return true
}

// canFastResume reports whether a proc sleeping until t may simply advance
// the clock instead of parking: its wake-up would be the very next event
// dispatched (no pending event at or before t — a pending event AT t was
// scheduled earlier and wins the seq tie-break), and Run's boundary does not
// cut the sleep short. Under this precondition the park/resume rendezvous is
// unobservable: nothing else runs between park and wake.
func (s *Sim) canFastResume(t Time) bool {
	if s.closed || s.stopped {
		// Teardown or a frozen (crashed) sim: a sleeping proc must park —
		// it is resumed only by Close's shutdown panic.
		return false
	}
	if s.until >= 0 && t > s.until {
		return false
	}
	if s.laneLen > 0 {
		return false
	}
	return len(s.heap) == 0 || s.heap[0].at > t
}

// At schedules fn to run on the scheduler at time at (clamped to now). fn
// must not block or park; it may wake procs and schedule further events.
// The event belongs to machine 0 (see AtOn).
func (s *Sim) At(at Time, fn func()) { s.schedule(at, nil, fn) }

// AtOn is At for a specific machine domain: if the machine is halted by
// dispatch time, fn is silently discarded (an I/O completion or timer on a
// dead machine).
func (s *Sim) AtOn(machine int, at Time, fn func()) { s.scheduleOn(machine, at, fn) }

// Halt marks a machine domain dead. From that instant no event addressed to
// the machine is dispatched: queued I/O completions and timers vanish, and
// its procs are never resumed again (they stay parked until Close unwinds
// them). Unlike Stop, the rest of the simulation keeps running — this is the
// cluster failure model, where one machine dies and the survivors carry on.
// Like Stop, a proc of the halted machine that is currently running keeps
// control until it next parks; with its devices dead and its outbound
// messages dropped it can make no further observable progress.
func (s *Sim) Halt(machine int) {
	for len(s.halted) <= machine {
		s.halted = append(s.halted, false)
	}
	s.halted[machine] = true
}

// Halted reports whether machine's domain has been halted.
func (s *Sim) Halted(machine int) bool {
	return machine < len(s.halted) && s.halted[machine]
}

// machineDead reports whether e is addressed to a halted machine.
func (s *Sim) machineDead(e *event) bool {
	if s.halted == nil {
		return false
	}
	m := e.machine
	if e.proc != nil {
		m = e.proc.machine
	}
	return int(m) < len(s.halted) && s.halted[m]
}

// Stop freezes the simulation at the current instant: the Run in progress
// dispatches no further events (pending events stay queued, parked procs stay
// parked) and later Run calls return immediately. It models a machine dying
// mid-run — the fault injector calls it at a crash point — and is permanent;
// Close still tears the proc goroutines down. Safe to call from scheduled
// functions and from proc context (a proc that calls Stop keeps running until
// it next parks; with its devices dead it can make no further observable
// progress).
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Go starts a new proc running fn, beginning at the current virtual time.
// The proc belongs to machine 0 (see GoOn).
func (s *Sim) Go(name string, fn func(p *Proc)) *Proc { return s.GoOn(0, name, fn) }

// GoOn starts a new proc on the given machine domain. If the machine is
// halted the proc parks forever at its next sleep or wait and is unwound by
// Close like any other parked proc.
func (s *Sim) GoOn(machine int, name string, fn func(p *Proc)) *Proc {
	s.procSeq++
	p := &Proc{sim: s, name: name, id: s.procSeq, machine: int32(machine), resume: make(chan struct{})}
	s.live++
	s.trackProc(p)
	go func() {
		<-p.resume
		defer func() {
			s.live--
			s.done++
			p.done = true
			if r := recover(); r != nil {
				if _, ok := r.(shutdownError); !ok && s.failed == nil {
					s.failed = fmt.Errorf("sim: proc %q panicked: %v\n%s", p.name, r, debug.Stack())
				}
			}
			s.yield <- struct{}{}
		}()
		if !s.closed {
			fn(p)
		}
	}()
	s.schedule(s.now, p, nil)
	return p
}

// trackProc records p for teardown, compacting finished procs once they
// outnumber live ones so long simulations don't accumulate dead entries.
func (s *Sim) trackProc(p *Proc) {
	if s.done > 64 && s.done > len(s.procs)/2 {
		kept := s.procs[:0]
		for _, q := range s.procs {
			if !q.done {
				kept = append(kept, q)
			}
		}
		for i := len(kept); i < len(s.procs); i++ {
			s.procs[i] = nil
		}
		s.procs, s.done = kept, 0
	}
	s.procs = append(s.procs, p)
}

// resumeProc hands control to p and waits until it parks or finishes.
func (s *Sim) resumeProc(p *Proc) {
	p.parked = false
	s.running = p
	p.resume <- struct{}{}
	<-s.yield
	s.running = nil
}

// Running returns the proc currently holding control, or nil when the
// scheduler (an I/O completion callback) is running. Observability hooks use
// it to attribute resource usage to the thread that incurred it; it has no
// effect on scheduling.
func (s *Sim) Running() *Proc { return s.running }

// wake schedules p to resume at the current time. It is the primitive used
// by resources and completion callbacks.
func (s *Sim) wake(p *Proc) { s.schedule(s.now, p, nil) }

// Run processes events until the queue is empty or virtual time would pass
// until (use until < 0 for no limit). It returns the first proc panic, if
// any. Run may be called repeatedly to advance a simulation in stages.
func (s *Sim) Run(until Time) error {
	s.until = until
	for s.pending() > 0 && s.failed == nil && !s.stopped {
		if until >= 0 && s.peek().at > until {
			s.now = until
			break
		}
		e := s.pop()
		s.now = e.at
		if s.machineDead(e) {
			// Events addressed to a halted machine are discarded: its disks'
			// completions never fire and its procs never resume. The clock
			// still advances to e.at — dropping an event cannot move time
			// backwards for the survivors.
			s.putEvent(e)
			continue
		}
		fn, p := e.fn, e.proc
		s.putEvent(e)
		switch {
		case fn != nil:
			fn()
		case p != nil:
			s.resumeProc(p)
		}
	}
	if until >= 0 && s.now < until && s.failed == nil && !s.stopped {
		s.now = until
	}
	return s.failed
}

// Close terminates the simulation: every parked proc is resumed with a
// shutdown panic so its goroutine exits. Pending events are discarded.
// It returns the first proc failure observed, if any.
func (s *Sim) Close() error {
	s.closed = true
	// Drain scheduled proc wake-ups first so no proc is resumed twice.
	for s.pending() > 0 {
		e := s.pop()
		p := e.proc
		s.putEvent(e)
		if p != nil {
			s.resumeProc(p)
		}
	}
	// Resume survivors in creation order (s.procs is append-ordered by id):
	// which proc panic is recorded first in s.failed must not depend on
	// anything but creation order.
	for {
		var next *Proc
		for _, p := range s.procs {
			if p.parked && !p.done {
				next = p
				break
			}
		}
		if next == nil {
			break
		}
		s.resumeProc(next)
	}
	return s.failed
}

// Proc is a simulated thread.
type Proc struct {
	sim     *Sim
	name    string
	id      uint64 // creation order, for deterministic teardown
	machine int32  // machine domain (0 unless started with GoOn)
	resume  chan struct{}
	parked  bool
	done    bool
	trace   any // observability context (a *trace.Ctx), never read by the kernel
}

// Name returns the proc's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Machine returns the machine domain the proc belongs to.
func (p *Proc) Machine() int { return int(p.machine) }

// Sim returns the simulation this proc belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// SetTrace attaches an observability context to the proc (see env.Ctx).
func (p *Proc) SetTrace(v any) { p.trace = v }

// Trace returns the context attached with SetTrace, or nil.
func (p *Proc) Trace() any { return p.trace }

// park suspends the proc until something wakes it. The caller must have
// arranged a wake-up (a scheduled event or registration with a resource).
func (p *Proc) park() {
	s := p.sim
	p.parked = true
	s.yield <- struct{}{}
	<-p.resume
	if s.closed {
		panic(errShutdown)
	}
}

// Sleep suspends the proc for d nanoseconds (d <= 0 yields to simultaneous
// events and resumes at the same virtual time).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.sleepUntil(p.sim.now + d)
}

// SleepUntil suspends the proc until virtual time t.
func (p *Proc) SleepUntil(t Time) { p.sleepUntil(t) }

func (p *Proc) sleepUntil(t Time) {
	s := p.sim
	if t < s.now {
		t = s.now // match schedule's clamp
	}
	if s.halted != nil && s.Halted(int(p.machine)) {
		// The proc's machine died while it was running (it is unwinding
		// after the halt): it must park, and its wake-up event will be
		// discarded at dispatch, so it sleeps until Close tears it down.
		s.schedule(t, p, nil)
		p.park()
		return
	}
	if s.canFastResume(t) {
		s.now = t
		return
	}
	s.schedule(t, p, nil)
	p.park()
}
