package sim

import (
	"testing"

	"kvell/internal/env"
)

func TestEnvAdapterBasics(t *testing.T) {
	s := New(1)
	e := NewEnv(s, 4)
	if e.Now() != 0 {
		t.Fatal("fresh env time not zero")
	}
	var order []string
	mu := e.NewMutex()
	cond := e.NewCond(mu)
	q := e.NewQueue()
	ready := false

	e.Go("producer", func(c env.Ctx) {
		c.CPU(1000)
		c.Sleep(50)
		q.Push(c, "item")
		mu.Lock(c)
		ready = true
		mu.Unlock(c)
		cond.Broadcast(c)
		order = append(order, "produced")
	})
	e.Go("consumer", func(c env.Ctx) {
		mu.Lock(c)
		for !ready {
			cond.Wait(c)
		}
		mu.Unlock(c)
		got := q.PopWait(c, 4)
		if len(got) != 1 || got[0].(string) != "item" {
			t.Errorf("queue got %v", got)
		}
		order = append(order, "consumed")
		if c.Now() <= 0 {
			t.Error("time did not advance")
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if len(order) != 2 || order[0] != "produced" || order[1] != "consumed" {
		t.Fatalf("order = %v", order)
	}
	if e.CPUs.Station().BusyTime() != 1000 {
		t.Fatalf("CPU busy = %d", e.CPUs.Station().BusyTime())
	}
}

func TestEnvQueueCloseAndTryPop(t *testing.T) {
	s := New(1)
	e := NewEnv(s, 1)
	q := e.NewQueue()
	e.Go("t", func(c env.Ctx) {
		q.Push(c, 1)
		q.Push(c, 2)
		if q.Len() != 2 {
			t.Errorf("len = %d", q.Len())
		}
		if got := q.TryPop(c, 1); len(got) != 1 || got[0].(int) != 1 {
			t.Errorf("TryPop = %v", got)
		}
		q.Close(c)
		if got := q.PopWait(c, 5); len(got) != 1 {
			t.Errorf("drain after close = %v", got)
		}
		if got := q.PopWait(c, 5); got != nil {
			t.Errorf("closed empty queue returned %v", got)
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestEnvSpinMutexAdapter(t *testing.T) {
	s := New(1)
	e := NewEnv(s, 4)
	m := e.NewSpinMutex()
	held := false
	e.Go("holder", func(c env.Ctx) {
		m.Lock(c)
		held = true
		c.Sleep(10_000)
		held = false
		m.Unlock(c)
	})
	e.Go("waiter", func(c env.Ctx) {
		c.Sleep(100)
		m.Lock(c)
		if held {
			t.Error("lock acquired while held")
		}
		m.Unlock(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Spinning must have burned CPU beyond the explicit charges (none here).
	if e.CPUs.Station().BusyTime() == 0 {
		t.Fatal("spin waiter burned no CPU")
	}
}

func TestSchedulerContextLockFromCallback(t *testing.T) {
	// Completion callbacks lock with a nil ctx; uncontended TryLock path.
	s := New(1)
	e := NewEnv(s, 1)
	m := e.NewMutex()
	ran := false
	s.At(10, func() {
		m.Lock(nil)
		ran = true
		m.Unlock(nil)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !ran {
		t.Fatal("callback never ran")
	}
}

func TestCtxHelper(t *testing.T) {
	s := New(1)
	e := NewEnv(s, 1)
	s.Go("raw", func(p *Proc) {
		c := e.Ctx(p)
		c.CPU(500)
		c.Sleep(10)
		if c.Now() < 510 {
			t.Errorf("now = %d", c.Now())
		}
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
}
