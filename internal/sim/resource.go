package sim

// Station is an analytic first-come-first-served multi-server queueing
// station. It does not use procs: an arrival is assigned to the server that
// frees up earliest, so assignment order equals arrival order. It is the
// model used for both CPU core pools and device channel queues.
type Station struct {
	free []Time // per-server earliest-free time
	busy Time   // total busy nanoseconds across servers (utilization integral)
	ops  int64
	// OnBusy, if set, is called for each service interval [start, end).
	// Used to build utilization timelines. Callbacks must be additive over
	// interval splits (Pool.Use may report one long contiguous burst as
	// several quantum-sized intervals or vice versa).
	OnBusy func(start, end Time)
	// OnAssign, if set, is called for each service interval with the server
	// it was booked on. Purely observational (tracing); it must not mutate
	// simulation state.
	OnAssign func(server int, start, end Time)
	// lastServer/lastStart record the most recent booking so a caller that
	// just made a single Assign can recover which server served it and when
	// service began (used by the device model's span attribution).
	lastServer int
	lastStart  Time
}

// NewStation returns a station with c servers.
func NewStation(c int) *Station {
	if c < 1 {
		c = 1
	}
	return &Station{free: make([]Time, c)}
}

// Servers returns the number of servers.
func (st *Station) Servers() int { return len(st.free) }

// BusyTime returns the total accumulated service time across all servers.
func (st *Station) BusyTime() Time { return st.busy }

// Ops returns the number of service intervals assigned so far.
func (st *Station) Ops() int64 { return st.ops }

// QueueDepth returns the number of servers that are busy at time now plus
// nothing queued (the analytic model has no explicit queue; depth is
// approximated by how far in the future the busiest server is booked).
func (st *Station) busyServers(now Time) int {
	n := 0
	for _, f := range st.free {
		if f > now {
			n++
		}
	}
	return n
}

// Backlog returns how far beyond now the most-loaded server is booked.
// It is a measure of queueing delay at the station.
func (st *Station) Backlog(now Time) Time {
	var max Time
	for _, f := range st.free {
		if f-now > max {
			max = f - now
		}
	}
	return max
}

// minFree returns the earliest per-server free time (the start bound for the
// next arrival).
func (st *Station) minFree() Time {
	m := st.free[0]
	for _, f := range st.free[1:] {
		if f < m {
			m = f
		}
	}
	return m
}

// Assign books a service of duration d arriving at time now and returns the
// completion time. The service starts when the earliest-free server is
// available (FCFS).
func (st *Station) Assign(now, d Time) (done Time) {
	best := 0
	for i := 1; i < len(st.free); i++ {
		if st.free[i] < st.free[best] {
			best = i
		}
	}
	start := now
	if st.free[best] > start {
		start = st.free[best]
	}
	done = start + d
	st.free[best] = done
	st.busy += d
	st.ops++
	st.lastServer = best
	st.lastStart = start
	if st.OnBusy != nil {
		st.OnBusy(start, done)
	}
	if st.OnAssign != nil {
		st.OnAssign(best, start, done)
	}
	return done
}

// LastAssign returns the server and service-start time of the most recent
// Assign call.
func (st *Station) LastAssign() (server int, start Time) {
	return st.lastServer, st.lastStart
}

// assignRun books a d-long service as the same sequence of quantum-sized
// Assign calls a proc re-arriving at each burst's completion would make, and
// returns the final completion time. Because each burst arrives exactly when
// the previous one completes, the bursts are contiguous and the resulting
// server state, busy time, op count and OnBusy callbacks are bit-identical
// to the burst-by-burst path — only the park/resume cycles between bursts
// are skipped.
func (st *Station) assignRun(now, d, quantum Time) (done Time) {
	done = now
	for d > 0 {
		burst := d
		if burst > quantum {
			burst = quantum
		}
		done = st.Assign(done, burst)
		d -= burst
	}
	return done
}

// Pause blocks all servers until time t (used for device maintenance
// latency spikes: in-flight and queued requests are delayed).
func (st *Station) Pause(t Time) {
	for i, f := range st.free {
		if f < t {
			st.free[i] = t
		}
	}
}

// Pool is a CPU core pool. Procs charge work against it with Use; when all
// cores are busy the proc queues FCFS behind earlier work, which is how
// engines become CPU-bound in the simulation.
type Pool struct {
	s  *Sim
	st *Station
	// Quantum bounds a single booked burst; longer bursts are split so that
	// long-running work (e.g. compactions) time-shares with short requests
	// instead of monopolizing a core, approximating an OS scheduler.
	Quantum Time
	// OnUse, if set, is called once per Use call after the proc has been
	// charged: arrive is when the proc asked for CPU, done is when the last
	// burst completed, and cpu is the service time actually charged (so
	// done-arrive-cpu is time spent queued behind other procs). Purely
	// observational.
	OnUse func(pr *Proc, arrive, done, cpu Time)
}

// NewPool returns a pool of c cores in simulation s.
func NewPool(s *Sim, c int) *Pool {
	return &Pool{s: s, st: NewStation(c), Quantum: 200 * 1000} // 200us
}

// Station exposes the underlying station (for utilization accounting).
func (p *Pool) Station() *Station { return p.st }

// Use charges d nanoseconds of CPU work to the calling proc, blocking it
// until the work completes.
//
// Fast path: when no pending event fires before the burst would complete,
// the quantum-by-quantum park/resume cycle is provably unobservable — no
// other proc can arrive at the station or watch the clock between bursts —
// so the whole burst is booked analytically (preserving the exact per-burst
// station accounting) and the proc sleeps once. Otherwise it falls back to
// burst-by-burst charging, so schedules with real time-sharing interleavings
// are unchanged.
func (p *Pool) Use(pr *Proc, d Time) {
	if d <= 0 {
		return
	}
	s := p.s
	arrive, cpu := s.now, d
	if p.Quantum > 0 && d > p.Quantum {
		done := p.st.minFree()
		if done < s.now {
			done = s.now
		}
		done += d
		// The closed check keeps teardown exact: a proc charging CPU from a
		// shutdown defer books one burst and then takes the park panic, so
		// the analytic path would over-book the station.
		if !s.closed && s.noEventBefore(done) && (s.until < 0 || done <= s.until) {
			if got := p.st.assignRun(s.now, d, p.Quantum); got != done {
				panic("sim: analytic burst disagrees with FCFS booking")
			}
			pr.SleepUntil(done)
			if p.OnUse != nil {
				p.OnUse(pr, arrive, done, cpu)
			}
			return
		}
	}
	for d > 0 {
		burst := d
		if p.Quantum > 0 && burst > p.Quantum {
			burst = p.Quantum
		}
		done := p.st.Assign(p.s.now, burst)
		pr.SleepUntil(done)
		d -= burst
	}
	if p.OnUse != nil {
		p.OnUse(pr, arrive, s.now, cpu)
	}
}

// popProc removes and returns the front of a waiter list, shifting in place
// so the slice's capacity is reused (no steady-state allocation).
func popProc(ws *[]*Proc) *Proc {
	w := *ws
	p := w[0]
	copy(w, w[1:])
	w[len(w)-1] = nil
	*ws = w[:len(w)-1]
	return p
}

// Mutex is a FIFO mutual-exclusion lock for procs. Ownership transfers
// directly to the longest-waiting proc on unlock.
type Mutex struct {
	s       *Sim
	locked  bool
	waiters []*Proc
	// Acquires counts all acquisition attempts (Lock calls and TryLock
	// calls, successful or not); Contended counts the attempts that did not
	// get the lock immediately (Lock calls that waited, failed TryLocks), so
	// Contended/Acquires is the contention ratio.
	Acquires  int64
	Contended int64
	// onWait, if set, is called after a contended Lock finally acquires the
	// mutex, with the wait interval. Purely observational.
	onWait func(p *Proc, start, end Time)
}

// NewMutex returns an unlocked mutex.
func NewMutex(s *Sim) *Mutex { return &Mutex{s: s} }

// Lock acquires m, blocking the proc if it is held.
func (m *Mutex) Lock(p *Proc) {
	m.Acquires++
	if !m.locked {
		m.locked = true
		return
	}
	m.Contended++
	m.waiters = append(m.waiters, p)
	t0 := m.s.now
	p.park()
	// Ownership was transferred to us by Unlock.
	if m.onWait != nil {
		m.onWait(p, t0, m.s.now)
	}
}

// TryLock acquires m if it is free and reports whether it did. Failed tries
// count as contended acquisition attempts, mirroring Lock's accounting.
func (m *Mutex) TryLock() bool {
	m.Acquires++
	if m.locked {
		m.Contended++
		return false
	}
	m.locked = true
	return true
}

// Unlock releases m. If procs are waiting, ownership passes to the first.
func (m *Mutex) Unlock(p *Proc) {
	if !m.locked {
		panic("sim: unlock of unlocked mutex")
	}
	if len(m.waiters) > 0 {
		m.s.wake(popProc(&m.waiters)) // stays locked; next proc now owns it
		return
	}
	m.locked = false
}

// SpinMutex is a lock whose waiters burn CPU while waiting (the
// sched_yield/busy-wait pattern the paper profiles in WiredTiger). Waiting
// cost is charged to the pool, so heavy contention consumes simulated cores.
type SpinMutex struct {
	s    *Sim
	pool *Pool
	// SpinQuantum is the CPU burst charged per failed acquisition attempt.
	SpinQuantum Time
	locked      bool
	// SpinTime accumulates total CPU burned waiting.
	SpinTime  Time
	Acquires  int64
	Contended int64
}

// NewSpinMutex returns a spin lock that charges waiting time to pool.
func NewSpinMutex(s *Sim, pool *Pool) *SpinMutex {
	return &SpinMutex{s: s, pool: pool, SpinQuantum: 2 * 1000} // 2us
}

// Lock acquires the lock, burning CPU in SpinQuantum slices while it is held
// by another proc.
func (m *SpinMutex) Lock(p *Proc) {
	m.Acquires++
	if !m.locked {
		m.locked = true
		return
	}
	m.Contended++
	for m.locked {
		m.pool.Use(p, m.SpinQuantum)
		m.SpinTime += m.SpinQuantum
	}
	m.locked = true
}

// Unlock releases the lock.
func (m *SpinMutex) Unlock() {
	if !m.locked {
		panic("sim: unlock of unlocked spin mutex")
	}
	m.locked = false
}

// Cond is a condition variable for procs. The usual discipline applies:
// check the predicate in a loop around Wait. Signal/Broadcast may be called
// from scheduler context (completion callbacks).
type Cond struct {
	s       *Sim
	waiters []*Proc
}

// NewCond returns a condition variable.
func NewCond(s *Sim) *Cond { return &Cond{s: s} }

// Wait parks the proc until a Signal or Broadcast. If m is non-nil it is
// released while waiting and re-acquired before returning.
func (c *Cond) Wait(p *Proc, m *Mutex) {
	c.waiters = append(c.waiters, p)
	if m != nil {
		m.Unlock(p)
	}
	p.park()
	if m != nil {
		m.Lock(p)
	}
}

// Signal wakes the longest-waiting proc, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	c.s.wake(popProc(&c.waiters))
}

// Broadcast wakes all waiting procs.
func (c *Cond) Broadcast() {
	for i, p := range c.waiters {
		c.s.wake(p)
		c.waiters[i] = nil
	}
	c.waiters = c.waiters[:0]
}

// Queue is an unbounded FIFO for passing work between procs. Items live in a
// ring buffer, so pushes and pops are O(1) amortized with no per-item shift.
type Queue struct {
	s       *Sim
	buf     []any // len(buf) is a power of two (or 0)
	head    int
	n       int
	waiters []*Proc
	closed  bool
	// Pushes counts total items ever pushed (for stats).
	Pushes int64
}

// NewQueue returns an empty open queue.
func NewQueue(s *Sim) *Queue { return &Queue{s: s} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return q.n }

// Push appends v and wakes one waiter.
func (q *Queue) Push(v any) {
	if q.closed {
		panic("sim: push to closed queue")
	}
	if q.n == len(q.buf) {
		grown := make([]any, max(64, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = v
	q.n++
	q.Pushes++
	if len(q.waiters) > 0 {
		q.s.wake(popProc(&q.waiters))
	}
}

// Close marks the queue closed and wakes all waiters. Queued items remain
// poppable; PopWait returns nil once the queue is closed and empty.
func (q *Queue) Close() {
	q.closed = true
	for i, p := range q.waiters {
		q.s.wake(p)
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
}

// TryPop removes and returns up to max items without blocking.
func (q *Queue) TryPop(max int) []any {
	if q.n == 0 || max <= 0 {
		return nil
	}
	k := max
	if k > q.n {
		k = q.n
	}
	out := make([]any, k)
	mask := len(q.buf) - 1
	for i := 0; i < k; i++ {
		j := (q.head + i) & mask
		out[i] = q.buf[j]
		q.buf[j] = nil
	}
	q.head = (q.head + k) & mask
	q.n -= k
	return out
}

// PopWait removes and returns up to max items, blocking the proc until at
// least one is available. It returns nil if the queue is closed and empty.
func (q *Queue) PopWait(p *Proc, max int) []any {
	for q.n == 0 {
		if q.closed {
			return nil
		}
		q.waiters = append(q.waiters, p)
		p.park()
	}
	return q.TryPop(max)
}
