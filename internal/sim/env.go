package sim

import "kvell/internal/env"

// Env adapts a simulation plus a CPU pool to the env.Env interface, so the
// engines can run unchanged inside the simulator.
type Env struct {
	S    *Sim
	CPUs *Pool
	// Machine is the machine domain procs started through this Env belong
	// to (see Sim.Halt). Zero for single-machine simulations; NewMachineEnv
	// sets it for cluster nodes.
	Machine int
	// OnMutexWait, if set when a mutex is created, is called after each
	// contended Lock on that mutex with the wait interval. Purely
	// observational (tracing); wire it before the engine is built.
	OnMutexWait func(p *Proc, start, end env.Time)
}

// NewEnv returns an env.Env backed by simulation s with cores CPU cores.
func NewEnv(s *Sim, cores int) *Env {
	return &Env{S: s, CPUs: NewPool(s, cores)}
}

// NewMachineEnv returns an env.Env whose procs and CPU pool belong to the
// given machine domain. Each simulated machine of a cluster gets its own
// Env (own cores), all sharing one Sim (one clock, one event queue).
func NewMachineEnv(s *Sim, machine, cores int) *Env {
	return &Env{S: s, CPUs: NewPool(s, cores), Machine: machine}
}

// Now implements env.Env.
func (e *Env) Now() env.Time { return e.S.Now() }

// Go implements env.Env.
func (e *Env) Go(name string, fn func(env.Ctx)) {
	e.S.GoOn(e.Machine, name, func(p *Proc) { fn(&simCtx{e: e, p: p}) })
}

// NewMutex implements env.Env.
func (e *Env) NewMutex() env.Mutex {
	m := NewMutex(e.S)
	m.onWait = e.OnMutexWait
	return &simMutex{m: m}
}

// NewSpinMutex implements env.Env: waiters burn CPU against the core pool.
func (e *Env) NewSpinMutex() env.Mutex { return &simSpinMutex{m: NewSpinMutex(e.S, e.CPUs)} }

type simSpinMutex struct{ m *SpinMutex }

func (m *simSpinMutex) Lock(c env.Ctx) {
	p := proc(c)
	if p == nil {
		if m.m.locked {
			panic("sim: contended spin Lock from scheduler context")
		}
		m.m.locked = true
		return
	}
	m.m.Lock(p)
}

func (m *simSpinMutex) Unlock(c env.Ctx) { m.m.Unlock() }

// NewCond implements env.Env.
func (e *Env) NewCond(m env.Mutex) env.Cond {
	return &simCond{c: NewCond(e.S), m: m.(*simMutex)}
}

// NewQueue implements env.Env.
func (e *Env) NewQueue() env.Queue { return &simQueue{q: NewQueue(e.S)} }

// Ctx returns an env.Ctx for an existing proc (used when simulation code
// created the proc directly).
func (e *Env) Ctx(p *Proc) env.Ctx { return &simCtx{e: e, p: p} }

type simCtx struct {
	e *Env
	p *Proc
}

func (c *simCtx) Now() env.Time    { return c.e.S.Now() }
func (c *simCtx) CPU(d env.Time)   { c.e.CPUs.Use(c.p, d) }
func (c *simCtx) Sleep(d env.Time) { c.p.Sleep(d) }
func (c *simCtx) SetTrace(v any)   { c.p.SetTrace(v) }
func (c *simCtx) Trace() any       { return c.p.Trace() }

func proc(c env.Ctx) *Proc {
	if c == nil {
		return nil
	}
	return c.(*simCtx).p
}

type simMutex struct{ m *Mutex }

func (m *simMutex) Lock(c env.Ctx) {
	p := proc(c)
	if p == nil {
		// Scheduler context (completion callback): must not contend. By the
		// condition-variable discipline the mutex is never held across a
		// park, so a same-instant Lock from scheduler context always wins.
		if !m.m.TryLock() {
			panic("sim: contended Lock from scheduler context")
		}
		return
	}
	m.m.Lock(p)
}

func (m *simMutex) Unlock(c env.Ctx) { m.m.Unlock(proc(c)) }

type simCond struct {
	c *Cond
	m *simMutex
}

func (c *simCond) Wait(ctx env.Ctx)  { c.c.Wait(proc(ctx), c.m.m) }
func (c *simCond) Signal(env.Ctx)    { c.c.Signal() }
func (c *simCond) Broadcast(env.Ctx) { c.c.Broadcast() }

type simQueue struct{ q *Queue }

func (q *simQueue) Push(c env.Ctx, v any)            { q.q.Push(v) }
func (q *simQueue) PopWait(c env.Ctx, max int) []any { return q.q.PopWait(proc(c), max) }
func (q *simQueue) TryPop(c env.Ctx, max int) []any  { return q.q.TryPop(max) }
func (q *simQueue) Close(c env.Ctx)                  { q.q.Close() }
func (q *simQueue) Len() int                         { return q.q.Len() }
