package btree

import "testing"

// fillBenchKey formats key-%08d into buf without allocating (matches the
// key helper in btree_test.go for i < 1e8).
func fillBenchKey(buf []byte, i int) {
	copy(buf, "key-")
	for j := len(buf) - 1; j >= 4; j-- {
		buf[j] = byte('0' + i%10)
		i /= 10
	}
}

// BenchmarkBTreeLookup measures one index lookup against a 1M-key tree with
// a reused key buffer — the shape of every per-operation index probe.
func BenchmarkBTreeLookup(b *testing.B) {
	tr := New()
	kb := make([]byte, 12)
	for i := 0; i < 1_000_000; i++ {
		fillBenchKey(kb, i)
		tr.Put(kb, uint64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fillBenchKey(kb, i%1_000_000)
		if _, ok := tr.Get(kb); !ok {
			b.Fatal("missing key")
		}
	}
}

// TestAllocBudgetBTreeGet pins lookups at zero allocations per probe.
func TestAllocBudgetBTreeGet(t *testing.T) {
	tr := New()
	kb := make([]byte, 12)
	for i := 0; i < 100_000; i++ {
		fillBenchKey(kb, i)
		tr.Put(kb, uint64(i))
	}
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		fillBenchKey(kb, i%100_000)
		i += 7919
		tr.Get(kb)
	}); n != 0 {
		t.Errorf("Tree.Get allocates %v per lookup, want 0", n)
	}
}
