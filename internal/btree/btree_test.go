package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestPutGet(t *testing.T) {
	tr := New()
	for i := 0; i < 10_000; i++ {
		if !tr.Put(key(i), uint64(i)) {
			t.Fatalf("Put(%d) reported replace on fresh key", i)
		}
	}
	if tr.Len() != 10_000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 10_000; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("found missing key")
	}
}

func TestPutReplaces(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), 1)
	if tr.Put([]byte("k"), 2) {
		t.Fatal("replace reported as insert")
	}
	if v, _ := tr.Get([]byte("k")); v != 2 {
		t.Fatalf("v = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
}

func TestKeyBytesCopied(t *testing.T) {
	tr := New()
	k := []byte("abc")
	tr.Put(k, 1)
	k[0] = 'z'
	if _, ok := tr.Get([]byte("abc")); !ok {
		t.Fatal("mutating caller's key corrupted the tree")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), uint64(i))
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Delete(key(0)) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 500 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestRandomOrderInsertSortedIteration(t *testing.T) {
	tr := New()
	r := rand.New(rand.NewSource(1))
	perm := r.Perm(5000)
	for _, i := range perm {
		tr.Put(key(i), uint64(i))
	}
	var got []int
	tr.AscendFrom(nil, func(k []byte, v uint64) bool {
		got = append(got, int(v))
		return true
	})
	if len(got) != 5000 {
		t.Fatalf("iterated %d keys", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("iteration out of order at %d: %d", i, v)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), uint64(i))
	}
	var got []int
	tr.Range(key(10), key(20), func(k []byte, v uint64) bool {
		got = append(got, int(v))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [10,20) = %v", got)
	}
	// Start between keys.
	got = nil
	tr.Range([]byte("key-00000010x"), key(13), func(k []byte, v uint64) bool {
		got = append(got, int(v))
		return true
	})
	if len(got) != 2 || got[0] != 11 {
		t.Fatalf("range from between-keys = %v", got)
	}
}

func TestFirstN(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), uint64(i))
	}
	keys, vals := tr.FirstN(key(90), 50)
	if len(keys) != 10 || len(vals) != 10 {
		t.Fatalf("FirstN near end returned %d", len(keys))
	}
	keys, _ = tr.FirstN(key(5), 3)
	if len(keys) != 3 || !bytes.Equal(keys[0], key(5)) {
		t.Fatalf("FirstN = %q", keys)
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	tr := New()
	for i := 0; i < 200_000; i++ {
		tr.Put(key(i), uint64(i))
	}
	if tr.Depth() < 3 || tr.Depth() > 5 {
		t.Fatalf("depth = %d for 200K keys (fanout %d)", tr.Depth(), maxKeys)
	}
}

func TestMemBytesScalesWithItems(t *testing.T) {
	tr := New()
	for i := 0; i < 10_000; i++ {
		tr.Put(key(i), uint64(i))
	}
	per := tr.MemBytes() / int64(tr.Len())
	// 12B keys + ~19B structure overhead.
	if per < 20 || per > 64 {
		t.Fatalf("bytes/item = %d, want ~31", per)
	}
}

func TestMinSkipsEmptiedLeaves(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Put(key(i), uint64(i))
	}
	for i := 0; i < 200; i++ {
		tr.Delete(key(i))
	}
	if m := tr.Min(); !bytes.Equal(m, key(200)) {
		t.Fatalf("Min = %q, want %q", m, key(200))
	}
	tr2 := New()
	if tr2.Min() != nil {
		t.Fatal("Min of empty tree should be nil")
	}
}

// TestOracleProperty drives the tree with random Put/Delete/Get/Range
// against a map+sort oracle.
func TestOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		oracle := map[string]uint64{}
		for op := 0; op < 3000; op++ {
			k := key(r.Intn(800))
			switch r.Intn(10) {
			case 0, 1, 2, 3, 4: // put
				v := r.Uint64()
				tr.Put(k, v)
				oracle[string(k)] = v
			case 5: // delete
				got := tr.Delete(k)
				_, want := oracle[string(k)]
				if got != want {
					return false
				}
				delete(oracle, string(k))
			default: // get
				v, ok := tr.Get(k)
				wv, wok := oracle[string(k)]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
		}
		if tr.Len() != len(oracle) {
			return false
		}
		// Full iteration must equal the sorted oracle.
		var wantKeys []string
		for k := range oracle {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		i := 0
		good := true
		tr.AscendFrom(nil, func(k []byte, v uint64) bool {
			if i >= len(wantKeys) || string(k) != wantKeys[i] || v != oracle[wantKeys[i]] {
				good = false
				return false
			}
			i++
			return true
		})
		return good && i == len(wantKeys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestUint64KeyEncoding checks the big-endian encoding used by the page
// cache preserves numeric order.
func TestUint64KeyEncoding(t *testing.T) {
	tr := New()
	var k [8]byte
	vals := []uint64{0, 1, 255, 256, 1 << 20, 1<<40 + 3, ^uint64(0)}
	for _, v := range vals {
		binary.BigEndian.PutUint64(k[:], v)
		tr.Put(k[:], v)
	}
	var got []uint64
	tr.AscendFrom(nil, func(_ []byte, v uint64) bool { got = append(got, v); return true })
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func BenchmarkTreePut(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), uint64(i))
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New()
	for i := 0; i < 1_000_000; i++ {
		tr.Put(key(i), uint64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 1_000_000))
	}
}
