// Package btree implements the lightweight in-memory B+ tree KVell uses to
// track item locations on disk (§5.3 of the paper): byte-string keys map to
// 64-bit disk locations, keys stay sorted for range scans, and the structure
// reports its depth so the simulator can charge per-level lookup cost.
//
// The tree is not safe for concurrent use; KVell shards one tree per worker
// (shared-nothing) and scans take a brief per-worker lock.
package btree

import (
	"bytes"
)

// maxKeys is the fan-out of a node; chosen so nodes are a few cache lines,
// giving depth ~4-5 for millions of keys (the paper reports ~19B/item of
// index overhead and predictable lookup times).
const maxKeys = 64

type node struct {
	leaf     bool
	keys     [][]byte
	vals     []uint64 // parallel to keys; leaves only
	children []*node  // internal nodes only; len(keys)+1
	next     *node    // leaf chain for range scans
}

// Tree is an in-memory B+ tree from byte-string keys to uint64 values.
// The zero value is not usable; call New.
type Tree struct {
	root  *node
	size  int
	depth int
}

// newNode returns a node with slices preallocated to the fan-out, so inserts
// and splits never regrow them.
func newNode(leaf bool) *node {
	n := &node{leaf: leaf, keys: make([][]byte, 0, maxKeys)}
	if leaf {
		n.vals = make([]uint64, 0, maxKeys)
	} else {
		n.children = make([]*node, 0, maxKeys+1)
	}
	return n
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: newNode(true), depth: 1}
}

// Len returns the number of keys.
func (t *Tree) Len() int { return t.size }

// Depth returns the number of levels (>=1); used for lookup cost charging.
func (t *Tree) Depth() int { return t.depth }

// MemBytes estimates the tree's memory footprint in bytes (key bytes plus
// per-item structure overhead), mirroring the paper's ~19B/item accounting.
func (t *Tree) MemBytes() int64 {
	var keyBytes int64
	var walk func(n *node)
	walk = func(n *node) {
		for _, k := range n.keys {
			keyBytes += int64(len(k))
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	// value (8B) + slice headers amortized (~11B/item at fanout 64)
	return keyBytes + int64(t.size)*19
}

// find returns the first index whose key is >= key. Manual binary search:
// sort.Search costs a closure allocation-prone indirect call per probe, and
// these two searches dominate every index lookup.
func (n *node) find(key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns which child to descend into for key: the first index
// whose key is > key.
func (n *node) childIndex(key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(key, n.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Get returns the value for key and whether it is present.
func (t *Tree) Get(key []byte) (uint64, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	i := n.find(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.vals[i], true
	}
	return 0, false
}

func (n *node) full() bool { return len(n.keys) >= maxKeys }

// splitChild splits the full child at index i of internal (or root) node n,
// inserting the separator into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	right := newNode(child.leaf)
	var sep []byte
	if child.leaf {
		// B+ leaf split: right gets a copy of keys[mid:], separator is
		// right's first key (it stays in the leaf). child keeps its arrays
		// at full capacity; the copied-out tail is cleared for the GC.
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		for j := mid; j < len(child.keys); j++ {
			child.keys[j] = nil
		}
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		// Internal split: middle key moves up.
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		for j := mid; j < len(child.keys); j++ {
			child.keys[j] = nil
		}
		for j := mid + 1; j < len(child.children); j++ {
			child.children[j] = nil
		}
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Put inserts or replaces key with value v. The key bytes are copied.
// It reports whether the key was newly inserted.
func (t *Tree) Put(key []byte, v uint64) bool {
	if t.root.full() {
		old := t.root
		t.root = newNode(false)
		t.root.children = append(t.root.children, old)
		t.root.splitChild(0)
		t.depth++
	}
	n := t.root
	for !n.leaf {
		i := n.childIndex(key)
		if n.children[i].full() {
			n.splitChild(i)
			// Re-evaluate which side the key belongs to.
			if bytes.Compare(key, n.keys[i]) >= 0 {
				i++
			}
		}
		n = n.children[i]
	}
	i := n.find(key)
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		n.vals[i] = v
		return false
	}
	kc := append([]byte(nil), key...)
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = kc
	n.vals = append(n.vals, 0)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = v
	t.size++
	return true
}

// Delete removes key, reporting whether it was present. Deletion is lazy
// (no rebalancing): KVell's deletes are rare relative to lookups, and
// under-full leaves only cost a little extra space.
func (t *Tree) Delete(key []byte) bool {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(key)]
	}
	i := n.find(key)
	if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return true
}

// firstLeafGE returns the leaf and index of the first key >= start
// (possibly one past the leaf's last key; callers must advance).
func (t *Tree) firstLeafGE(start []byte) (*node, int) {
	n := t.root
	for !n.leaf {
		n = n.children[n.childIndex(start)]
	}
	return n, n.find(start)
}

// AscendFrom calls fn for each key >= start in ascending order until fn
// returns false.
func (t *Tree) AscendFrom(start []byte, fn func(key []byte, v uint64) bool) {
	n, i := t.firstLeafGE(start)
	for n != nil {
		for ; i < len(n.keys); i++ {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Range calls fn for each key in [start, end) in ascending order until fn
// returns false. A nil end means no upper bound.
func (t *Tree) Range(start, end []byte, fn func(key []byte, v uint64) bool) {
	t.AscendFrom(start, func(k []byte, v uint64) bool {
		if end != nil && bytes.Compare(k, end) >= 0 {
			return false
		}
		return fn(k, v)
	})
}

// FirstN collects up to n (key, value) pairs with key >= start.
func (t *Tree) FirstN(start []byte, n int) (keys [][]byte, vals []uint64) {
	t.AscendFrom(start, func(k []byte, v uint64) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return len(keys) < n
	})
	return keys, vals
}

// Min returns the smallest key (nil if empty).
func (t *Tree) Min() []byte {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		// Lazy deletion can empty the leftmost leaf; follow the chain.
		for n != nil && len(n.keys) == 0 {
			n = n.next
		}
		if n == nil {
			return nil
		}
	}
	return n.keys[0]
}
