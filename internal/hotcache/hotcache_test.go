package hotcache

import (
	"bytes"
	"testing"

	"kvell/internal/env"
	"kvell/internal/kv"
)

func testCache(capRecords int) *Cache {
	return New(Config{
		CapBytes:     int64(capRecords) * 1024,
		SlotBytes:    1024,
		HalfLife:     100 * env.Millisecond,
		PromoteAfter: 2,
		Seed:         7,
	})
}

// warm drives key i through enough misses + an Admit to make it resident.
func warm(t *testing.T, h *Cache, i int64, now env.Time) {
	t.Helper()
	key, val := kv.Key(i), kv.Value(i, 1, 200)
	for !h.Contains(key) {
		if _, ok := h.Get(key, now, nil); ok {
			t.Fatalf("key %d hit before admission", i)
		}
		h.Admit(key, val, now)
	}
}

func TestAdmitAfterThreshold(t *testing.T) {
	h := testCache(8)
	key, val := kv.Key(1), kv.Value(1, 1, 200)
	now := env.Time(0)

	// First cold read: ghost count 1 < PromoteAfter, Admit must refuse.
	if _, ok := h.Get(key, now, nil); ok {
		t.Fatal("hit on empty cache")
	}
	if p, _ := h.Admit(key, val, now); p {
		t.Fatal("admitted after a single access")
	}
	// Second cold read crosses the threshold.
	if _, ok := h.Get(key, now, nil); ok {
		t.Fatal("hit before admission")
	}
	if p, _ := h.Admit(key, val, now); !p {
		t.Fatal("not admitted after reaching PromoteAfter")
	}
	got, ok := h.Get(key, now, nil)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("resident value wrong: ok=%v", ok)
	}
	if h.Hits() != 1 || h.Misses() != 2 || h.Promotions() != 1 {
		t.Fatalf("counters hits=%d misses=%d promotions=%d", h.Hits(), h.Misses(), h.Promotions())
	}
}

func TestGetCopiesIntoScratch(t *testing.T) {
	h := testCache(4)
	warm(t, h, 1, 0)
	scratch := make([]byte, 0, 1024)
	got, ok := h.Get(kv.Key(1), 0, &scratch)
	if !ok {
		t.Fatal("miss on resident key")
	}
	if cap(scratch) != 1024 || &got[0] != &scratch[:1][0] {
		t.Fatal("value not copied into caller scratch")
	}
	// Mutating the returned slice must not corrupt the cached copy.
	got[0] ^= 0xFF
	again, _ := h.Get(kv.Key(1), 0, nil)
	if !bytes.Equal(again, kv.Value(1, 1, 200)) {
		t.Fatal("cache storage aliased caller buffer")
	}
}

func TestWriteThroughAndInvalidate(t *testing.T) {
	h := testCache(4)
	warm(t, h, 1, 0)
	v2 := kv.Value(1, 2, 200)
	if !h.Update(kv.Key(1), v2, 0) {
		t.Fatal("update missed resident key")
	}
	got, ok := h.Get(kv.Key(1), 0, nil)
	if !ok || !bytes.Equal(got, v2) {
		t.Fatal("write-through lost")
	}
	// Updates to non-resident keys must not admit.
	if h.Update(kv.Key(2), v2, 0) {
		t.Fatal("update claimed a non-resident key")
	}
	if h.Contains(kv.Key(2)) {
		t.Fatal("write admitted a record")
	}
	if !h.Invalidate(kv.Key(1)) {
		t.Fatal("invalidate missed resident key")
	}
	if _, ok := h.Get(kv.Key(1), 0, nil); ok {
		t.Fatal("read after invalidate hit")
	}
	if h.Invalidations() != 1 {
		t.Fatalf("invalidations = %d", h.Invalidations())
	}
}

func TestOversizeValueNeverCached(t *testing.T) {
	h := testCache(4)
	big := make([]byte, 2048)
	key := kv.Key(1)
	h.Get(key, 0, nil)
	h.Get(key, 0, nil)
	if p, _ := h.Admit(key, big, 0); p {
		t.Fatal("admitted an oversize record")
	}
	// A resident record that grows past the slot must be evicted, not
	// truncated.
	warm(t, h, 2, 0)
	if !h.Update(kv.Key(2), big, 0) {
		t.Fatal("oversize update missed resident key")
	}
	if h.Contains(kv.Key(2)) {
		t.Fatal("oversize value left resident")
	}
}

func TestEvictionDemotesColdest(t *testing.T) {
	h := testCache(4)
	now := env.Time(0)
	for i := int64(1); i <= 4; i++ {
		warm(t, h, i, now)
	}
	if h.Len() != 4 {
		t.Fatalf("len = %d", h.Len())
	}
	// Heat keys 2..4 so key 1 sinks to the cold end.
	for n := 0; n < 8; n++ {
		for i := int64(2); i <= 4; i++ {
			h.Get(kv.Key(i), now, nil)
		}
	}
	warm(t, h, 5, now)
	if h.Demotions() == 0 {
		t.Fatal("full arena admitted without a demotion")
	}
	if h.Contains(kv.Key(1)) && h.Len() > 4 {
		t.Fatal("size grew past capacity")
	}
	for i := int64(2); i <= 4; i++ {
		if !h.Contains(kv.Key(i)) {
			t.Fatalf("hot key %d was demoted", i)
		}
	}
}

func TestDecayHalvesCounts(t *testing.T) {
	h := testCache(4)
	key := kv.Key(1)
	// Build ghost evidence, then let it decay far past the horizon: the
	// admission threshold must be un-met again.
	h.Get(key, 0, nil)
	h.Get(key, 0, nil)
	later := 64 * 100 * env.Millisecond
	if p, _ := h.Admit(key, kv.Value(1, 1, 200), later); p {
		t.Fatal("stale ghost evidence admitted a record")
	}
}

func TestDeterministicCounters(t *testing.T) {
	run := func() [5]int64 {
		h := testCache(8)
		now := env.Time(0)
		for n := int64(0); n < 2_000; n++ {
			i := (n * n) % 23
			key := kv.Key(i)
			if _, ok := h.Get(key, now, nil); !ok {
				h.Admit(key, kv.Value(i, 1, 200), now)
			}
			if n%7 == 0 {
				h.Update(key, kv.Value(i, 2, 200), now)
			}
			if n%97 == 0 {
				h.Invalidate(key)
			}
			now += 50 * env.Microsecond
		}
		return [5]int64{h.Hits(), h.Misses(), h.Promotions(), h.Demotions(), h.Invalidations()}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same access sequence, different counters: %v vs %v", a, b)
	}
	if a[0] == 0 || a[2] == 0 {
		t.Fatalf("exercise produced no hits/promotions: %v", a)
	}
}

// TestAllocBudgetHotCacheHit pins the zero-allocation budget of the hit path
// (and the miss/ghost path), the tiering acceptance criterion.
func TestAllocBudgetHotCacheHit(t *testing.T) {
	h := testCache(8)
	warm(t, h, 1, 0)
	key := kv.Key(1)
	scratch := make([]byte, 0, 1024)
	now := env.Time(0)
	if n := testing.AllocsPerRun(1000, func() {
		now += env.Microsecond
		if _, ok := h.Get(key, now, &scratch); !ok {
			t.Fatal("miss on resident key")
		}
	}); n != 0 {
		t.Fatalf("hot-cache hit allocates %.1f/op; budget is zero", n)
	}
	missKey := kv.Key(999)
	if n := testing.AllocsPerRun(1000, func() {
		now += env.Microsecond
		if _, ok := h.Get(missKey, now, &scratch); ok {
			t.Fatal("hit on absent key")
		}
	}); n != 0 {
		t.Fatalf("hot-cache miss allocates %.1f/op; budget is zero", n)
	}
}

func TestAllocBudgetHotCacheWrite(t *testing.T) {
	h := testCache(8)
	warm(t, h, 1, 0)
	key, val := kv.Key(1), kv.Value(1, 3, 200)
	now := env.Time(0)
	if n := testing.AllocsPerRun(1000, func() {
		now += env.Microsecond
		h.Update(key, val, now)
	}); n != 0 {
		t.Fatalf("hot-cache write-through allocates %.1f/op; budget is zero", n)
	}
}

func BenchmarkHotCacheHit(b *testing.B) {
	h := New(Config{CapBytes: 64 << 10, SlotBytes: 1024, HalfLife: 100 * env.Millisecond, PromoteAfter: 1})
	keys := make([][]byte, 16)
	for i := range keys {
		keys[i] = kv.Key(int64(i))
		h.Get(keys[i], 0, nil)
		h.Admit(keys[i], kv.Value(int64(i), 1, 990), 0)
	}
	scratch := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.Get(keys[i&15], env.Time(i), &scratch); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkHotCachePromote(b *testing.B) {
	h := New(Config{CapBytes: 16 << 10, SlotBytes: 1024, HalfLife: 100 * env.Millisecond, PromoteAfter: 1})
	keys := make([][]byte, 64)
	vals := make([][]byte, 64)
	for i := range keys {
		keys[i] = kv.Key(int64(i))
		vals[i] = kv.Value(int64(i), 1, 990)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 64 keys cycling through a 16-slot arena: every admission demotes.
		k := i & 63
		h.Get(keys[k], env.Time(i), nil)
		h.Admit(keys[k], vals[k], env.Time(i))
	}
}
