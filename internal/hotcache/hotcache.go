// Package hotcache implements a deterministic per-worker hot-key record
// cache for tiered KVell: a small, fixed arena of whole records pinned in
// memory above the engine, so the hot head of a skewed workload is served
// without touching the index, the page cache or the (slow) cold device.
//
// The design follows hot-ring-style caches: an open-addressing hash index
// over a fixed slot arena, with the resident set ordered by an intrusive
// ring that frequency-transposition keeps roughly sorted — each hit moves an
// entry at most one position toward the hot end, so ordering is O(1) per
// access and a pure function of the access sequence. Admission is gated by a
// ghost table of seeded, virtual-time-decayed access counters: a record is
// promoted only after it has been seen PromoteAfter times within the recent
// decay horizon, which keeps one-hit wonders from cycling the arena.
// Eviction takes the cold end of the ring (demotion), seeding the victim's
// decayed count back into the ghost table so a still-warm record re-promotes
// quickly after a hot-set shift.
//
// Everything is deterministic by construction: no wall clock (decay runs on
// the caller-supplied virtual time), no map iteration (all state lives in
// fixed slices), no math/rand (the "seeded" counters mix a seed into the
// ghost hash, so two workers with different seeds alias differently but each
// is a pure function of its inputs). The hit path performs zero heap
// allocations: values are copied into caller-owned scratch via the same
// vdst contract the engine's slot decoder uses.
package hotcache

import (
	"bytes"

	"kvell/internal/env"
	"kvell/internal/kv"
)

// Config sizes and tunes a cache.
type Config struct {
	// CapBytes is the arena capacity in bytes; the slot count is
	// CapBytes/SlotBytes (minimum 1).
	CapBytes int64
	// SlotBytes is the fixed per-record slot size; a record whose
	// key+value exceed it is never cached.
	SlotBytes int
	// HalfLife is the virtual-time decay half-life of access counters:
	// every HalfLife without an access halves a counter. <= 0 disables
	// decay.
	HalfLife env.Time
	// PromoteAfter is the decayed ghost-count threshold at which a record
	// is admitted on its next cold read (minimum 1).
	PromoteAfter uint32
	// Seed perturbs the ghost-table hash so distinct workers (or runs)
	// alias ghost counters differently while staying deterministic.
	Seed int64
}

const (
	nilIdx = int32(-1)
	// maxCount caps frequency counters so decay arithmetic cannot overflow.
	maxCount = uint32(1) << 30
)

// entry is one resident record. prev/next thread the frequency ring
// (head = hottest); the record bytes live in the arena at the entry's index.
type entry struct {
	hash    uint64
	klen    uint16
	vlen    uint16
	count   uint32   // decayed access count
	touched env.Time // virtual time of the last decay step
	prev    int32
	next    int32
}

// Cache is a fixed-capacity hot-key record cache. Not safe for concurrent
// use (KVell shards one per worker).
type Cache struct {
	cfg       Config
	slotBytes int
	half      env.Time
	seedMix   uint64

	arena   []byte
	entries []entry
	free    []int32
	head    int32 // hottest
	tail    int32 // coldest (eviction victim)
	size    int

	// Open-addressing hash -> entry index (linear probing, backward-shift
	// deletion, same discipline as the page cache's frame table).
	table []int32

	// Ghost admission table: fixed, seed-hashed, decayed access counters
	// for non-resident keys. Colliding keys share a counter — a
	// deterministic admission heuristic, not a correctness structure.
	ghostCnt   []uint32
	ghostTouch []env.Time

	hits, misses, promotions, demotions, invalidations int64
}

// New builds a cache for cfg.
func New(cfg Config) *Cache {
	if cfg.SlotBytes < 64 {
		cfg.SlotBytes = 64
	}
	if cfg.PromoteAfter < 1 {
		cfg.PromoteAfter = 1
	}
	slots := int(cfg.CapBytes / int64(cfg.SlotBytes))
	if slots < 1 {
		slots = 1
	}
	h := &Cache{
		cfg:       cfg,
		slotBytes: cfg.SlotBytes,
		half:      cfg.HalfLife,
		seedMix:   splitmix64(uint64(cfg.Seed)) | 1,
		arena:     make([]byte, slots*cfg.SlotBytes),
		entries:   make([]entry, slots),
		free:      make([]int32, 0, slots),
		head:      nilIdx,
		tail:      nilIdx,
	}
	for i := slots - 1; i >= 0; i-- {
		h.free = append(h.free, int32(i))
	}
	// Probe table at <= 50% load so chains stay short; never grows.
	n := 16
	for n < 2*slots {
		n *= 2
	}
	h.table = make([]int32, n)
	for i := range h.table {
		h.table[i] = nilIdx
	}
	// Ghost table: a few counters per resident slot, bounded.
	g := 64
	for g < 4*slots && g < 1<<16 {
		g *= 2
	}
	h.ghostCnt = make([]uint32, g)
	h.ghostTouch = make([]env.Time, g)
	return h
}

// splitmix64 is the standard splitmix64 finalizer (public-domain constants).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Slots returns the arena capacity in records.
func (h *Cache) Slots() int { return len(h.entries) }

// Len returns the number of resident records.
func (h *Cache) Len() int { return h.size }

// Cumulative counters.
func (h *Cache) Hits() int64          { return h.hits }
func (h *Cache) Misses() int64        { return h.misses }
func (h *Cache) Promotions() int64    { return h.promotions }
func (h *Cache) Demotions() int64     { return h.demotions }
func (h *Cache) Invalidations() int64 { return h.invalidations }

func (h *Cache) keyOf(ei int32) []byte {
	base := int(ei) * h.slotBytes
	return h.arena[base : base+int(h.entries[ei].klen)]
}

func (h *Cache) valOf(ei int32) []byte {
	base := int(ei)*h.slotBytes + int(h.entries[ei].klen)
	return h.arena[base : base+int(h.entries[ei].vlen)]
}

// decay applies the lazy half-life decay to e's counter at virtual time now,
// advancing touched by whole half-lives so the fractional remainder carries.
func (h *Cache) decay(e *entry, now env.Time) {
	if h.half <= 0 || now <= e.touched {
		return
	}
	n := (now - e.touched) / h.half
	if n <= 0 {
		return
	}
	e.touched += n * h.half
	if n >= 32 {
		e.count = 0
		return
	}
	e.count >>= uint(n)
}

// lookup returns the entry index holding key (hash pre-computed), or -1.
func (h *Cache) lookup(hv uint64, key []byte) int32 {
	mask := uint64(len(h.table) - 1)
	for i := mix(hv) & mask; ; i = (i + 1) & mask {
		ei := h.table[i]
		if ei == nilIdx {
			return nilIdx
		}
		if h.entries[ei].hash == hv && bytes.Equal(h.keyOf(ei), key) {
			return ei
		}
	}
}

// mix spreads a (already hashed) 64-bit word for table indexing.
func mix(h uint64) uint64 {
	h *= 0x9E3779B97F4A7C15
	return h ^ (h >> 29)
}

func (h *Cache) tableInsert(ei int32) {
	mask := uint64(len(h.table) - 1)
	i := mix(h.entries[ei].hash) & mask
	for h.table[i] != nilIdx {
		i = (i + 1) & mask
	}
	h.table[i] = ei
}

// tableRemove deletes ei's slot with backward-shift deletion (no
// tombstones; same cyclic home-slot argument as the page cache).
func (h *Cache) tableRemove(ei int32) {
	mask := uint64(len(h.table) - 1)
	i := mix(h.entries[ei].hash) & mask
	for h.table[i] != ei {
		i = (i + 1) & mask
	}
	j := i
	for {
		h.table[i] = nilIdx
		for {
			j = (j + 1) & mask
			fi := h.table[j]
			if fi == nilIdx {
				return
			}
			k := mix(h.entries[fi].hash) & mask
			// fi can backfill slot i iff its home slot k is cyclically
			// outside (i, j] — i.e. its probe path crosses i.
			if (i < j && (k <= i || k > j)) || (i > j && k <= i && k > j) {
				h.table[i] = fi
				i = j
				break
			}
		}
	}
}

// unlink removes ei from the frequency ring.
func (h *Cache) unlink(ei int32) {
	e := &h.entries[ei]
	if e.prev != nilIdx {
		h.entries[e.prev].next = e.next
	} else {
		h.head = e.next
	}
	if e.next != nilIdx {
		h.entries[e.next].prev = e.prev
	} else {
		h.tail = e.prev
	}
}

// pushFront links ei at the hot end.
func (h *Cache) pushFront(ei int32) {
	e := &h.entries[ei]
	e.prev = nilIdx
	e.next = h.head
	if h.head != nilIdx {
		h.entries[h.head].prev = ei
	}
	h.head = ei
	if h.tail == nilIdx {
		h.tail = ei
	}
}

// transpose moves ei one position toward the hot end when its decayed count
// has overtaken its predecessor's — the O(1) frequency-ordering step.
func (h *Cache) transpose(ei int32, now env.Time) {
	e := &h.entries[ei]
	p := e.prev
	if p == nilIdx {
		return
	}
	pe := &h.entries[p]
	h.decay(pe, now)
	if e.count <= pe.count {
		return
	}
	// Swap ei with its predecessor p in the ring.
	pp := pe.prev
	nn := e.next
	if pp != nilIdx {
		h.entries[pp].next = ei
	} else {
		h.head = ei
	}
	e.prev = pp
	e.next = p
	pe.prev = ei
	pe.next = nn
	if nn != nilIdx {
		h.entries[nn].prev = p
	} else {
		h.tail = p
	}
}

// ghostIdx maps a key hash to its (seed-mixed) ghost counter.
func (h *Cache) ghostIdx(hv uint64) int {
	return int(mix(hv^h.seedMix) & uint64(len(h.ghostCnt)-1))
}

// ghostBump decays and increments a key's ghost counter, returning the new
// value.
func (h *Cache) ghostBump(hv uint64, now env.Time, add uint32) uint32 {
	gi := h.ghostIdx(hv)
	if h.half > 0 && now > h.ghostTouch[gi] {
		n := (now - h.ghostTouch[gi]) / h.half
		if n > 0 {
			h.ghostTouch[gi] += n * h.half
			if n >= 32 {
				h.ghostCnt[gi] = 0
			} else {
				h.ghostCnt[gi] >>= uint(n)
			}
		}
	}
	c := h.ghostCnt[gi] + add
	if c > maxCount {
		c = maxCount
	}
	h.ghostCnt[gi] = c
	return c
}

// Get returns key's cached value, copied into vdst's storage when it is
// large enough (the engine's zero-alloc scratch contract: the returned slice
// aliases *vdst, or a fresh buffer installed into *vdst). A miss bumps the
// key's ghost counter so repeated cold reads cross the admission threshold.
func (h *Cache) Get(key []byte, now env.Time, vdst *[]byte) ([]byte, bool) {
	hv := kv.Hash64(key)
	ei := h.lookup(hv, key)
	if ei == nilIdx {
		h.misses++
		h.ghostBump(hv, now, 1)
		return nil, false
	}
	h.hits++
	e := &h.entries[ei]
	h.decay(e, now)
	if e.count < maxCount {
		e.count++
	}
	h.transpose(ei, now)
	v := h.valOf(ei)
	n := len(v)
	var out []byte
	if vdst != nil && *vdst != nil && cap(*vdst) >= n {
		out = (*vdst)[:n]
	} else {
		out = make([]byte, n)
		if vdst != nil {
			*vdst = out
		}
	}
	copy(out, v)
	return out, true
}

// Contains reports residency without touching counters or ordering.
func (h *Cache) Contains(key []byte) bool {
	return h.lookup(kv.Hash64(key), key) != nilIdx
}

// Admit offers a cold-read (key, value) for promotion. It inserts the record
// only when the key's decayed ghost count has reached PromoteAfter and the
// record fits a slot; a full arena demotes the coldest resident first.
// Reports (promoted, demoted).
func (h *Cache) Admit(key, value []byte, now env.Time) (promoted, demoted bool) {
	if len(key)+len(value) > h.slotBytes {
		return false, false
	}
	hv := kv.Hash64(key)
	if ei := h.lookup(hv, key); ei != nilIdx {
		// Already resident (e.g. admitted by a racing cold read that
		// completed first); refresh the value in place.
		h.store(ei, key, value, now)
		return false, false
	}
	gi := h.ghostIdx(hv)
	if h.ghostBump(hv, now, 0) < h.cfg.PromoteAfter {
		return false, false
	}
	var ei int32
	if n := len(h.free); n > 0 {
		ei = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		demoted = h.evictTail(now)
		n := len(h.free)
		ei = h.free[n-1]
		h.free = h.free[:n-1]
	}
	e := &h.entries[ei]
	e.hash = hv
	e.count = h.cfg.PromoteAfter // carry the admission evidence
	e.touched = now
	h.copyRecord(ei, key, value)
	h.tableInsert(ei)
	h.pushFront(ei)
	h.size++
	h.promotions++
	// Demand fresh evidence for the next promotion through this counter.
	h.ghostCnt[gi] = 0
	return true, demoted
}

// evictTail demotes the coldest resident, seeding its decayed count back
// into the ghost table so a still-warm record re-promotes quickly.
func (h *Cache) evictTail(now env.Time) bool {
	v := h.tail
	if v == nilIdx {
		return false
	}
	e := &h.entries[v]
	h.decay(e, now)
	gi := h.ghostIdx(e.hash)
	if e.count > h.ghostCnt[gi] {
		h.ghostCnt[gi] = e.count
		h.ghostTouch[gi] = e.touched
	}
	h.removeEntry(v)
	h.demotions++
	return true
}

func (h *Cache) copyRecord(ei int32, key, value []byte) {
	e := &h.entries[ei]
	e.klen = uint16(len(key))
	e.vlen = uint16(len(value))
	base := int(ei) * h.slotBytes
	copy(h.arena[base:], key)
	copy(h.arena[base+len(key):], value)
}

// store overwrites a resident entry's value (write-through), bumping its
// frequency like an access.
func (h *Cache) store(ei int32, key, value []byte, now env.Time) {
	e := &h.entries[ei]
	h.decay(e, now)
	if e.count < maxCount {
		e.count++
	}
	h.copyRecord(ei, key, value)
	h.transpose(ei, now)
}

// Update write-throughs a new value for key if it is resident, so cached
// reads can never disagree with the store. A value that no longer fits the
// slot evicts the entry instead (counted as an invalidation). Non-resident
// keys are untouched — writes never admit, only reads do. Reports whether
// the key was resident.
func (h *Cache) Update(key, value []byte, now env.Time) bool {
	ei := h.lookup(kv.Hash64(key), key)
	if ei == nilIdx {
		return false
	}
	if len(key)+len(value) > h.slotBytes {
		h.removeEntry(ei)
		h.invalidations++
		return true
	}
	h.store(ei, key, value, now)
	return true
}

// Invalidate drops key from the cache (deletes must never leave a readable
// ghost value). Reports whether the key was resident.
func (h *Cache) Invalidate(key []byte) bool {
	ei := h.lookup(kv.Hash64(key), key)
	if ei == nilIdx {
		return false
	}
	h.removeEntry(ei)
	h.invalidations++
	return true
}

// removeEntry unlinks ei from ring and table and recycles its slot.
func (h *Cache) removeEntry(ei int32) {
	h.unlink(ei)
	h.tableRemove(ei)
	h.entries[ei] = entry{}
	h.size--
	h.free = append(h.free, ei)
}
