// Package freelist implements KVell's bounded in-memory free list (§5.3):
// for each slab, at most N freed slot positions are kept in memory. Each
// in-memory entry is the head of an on-disk stack: when an (N+1)th slot is
// freed, its on-disk tombstone is made to point at an existing head, which
// it replaces in memory. This bounds memory while letting a worker reuse up
// to N free spots per I/O batch without extra disk reads.
package freelist

// NoSlot is the nil value for slot chain pointers.
const NoSlot = ^uint64(0)

// List is a bounded set of free-slot stack heads. Not safe for concurrent
// use (KVell keeps one per slab per worker).
type List struct {
	max   int
	heads []uint64
	next  int // round-robin replacement cursor
	// freed counts total pushes; reused counts total pops (stats).
	freed, reused int64
}

// New returns a list keeping at most max heads in memory (the paper's N,
// 64 by default elsewhere).
func New(max int) *List {
	if max < 1 {
		max = 1
	}
	return &List{max: max}
}

// Len returns the number of in-memory heads.
func (l *List) Len() int { return len(l.heads) }

// Max returns the head capacity N.
func (l *List) Max() int { return l.max }

// Freed and Reused return cumulative counters.
func (l *List) Freed() int64  { return l.freed }
func (l *List) Reused() int64 { return l.reused }

// Push records that slot was freed. If the in-memory head set is full, an
// existing head is displaced: the caller must write slot's on-disk
// tombstone with a pointer to the returned chainTo slot (chain == true).
// Otherwise chain is false and the tombstone carries no pointer.
func (l *List) Push(slot uint64) (chainTo uint64, chain bool) {
	l.freed++
	if len(l.heads) < l.max {
		l.heads = append(l.heads, slot)
		return NoSlot, false
	}
	old := l.heads[l.next]
	l.heads[l.next] = slot
	l.next = (l.next + 1) % l.max
	return old, true
}

// PushHead inserts a head without chaining (used when a popped slot's
// on-disk tombstone revealed the next stack element, and during recovery).
// If the head set is full it reports false and the caller should leave the
// chain on disk (it will be found again through its predecessor... which no
// longer exists; recovery rebuilds lists, so dropping is safe but wastes the
// space until then — callers treat false as "re-chain through me").
func (l *List) PushHead(slot uint64) bool {
	if len(l.heads) >= l.max {
		return false
	}
	l.heads = append(l.heads, slot)
	return true
}

// Heads returns a copy of the current in-memory head slots (consistency
// checking: a head must never point at a live, indexed slot).
func (l *List) Heads() []uint64 {
	out := make([]uint64, len(l.heads))
	copy(out, l.heads)
	return out
}

// Pop removes and returns a head for reuse. The caller is responsible for
// recovering the on-disk chain pointer of the popped slot (if any) via
// PushHead once it reads the slot's page.
func (l *List) Pop() (slot uint64, ok bool) {
	if len(l.heads) == 0 {
		return 0, false
	}
	n := len(l.heads) - 1
	slot = l.heads[n]
	l.heads = l.heads[:n]
	if l.next > n {
		l.next = 0
	}
	l.reused++
	return slot, true
}
