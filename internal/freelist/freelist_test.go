package freelist

import (
	"testing"
	"testing/quick"
)

func TestPushPopLIFO(t *testing.T) {
	l := New(4)
	for i := uint64(0); i < 3; i++ {
		if chain, ok := l.Push(i); ok || chain != NoSlot {
			t.Fatalf("Push(%d) chained while under capacity", i)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	for want := uint64(2); ; want-- {
		got, ok := l.Pop()
		if !ok {
			if want != ^uint64(0) {
				t.Fatalf("list drained early at want=%d", want)
			}
			break
		}
		if got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
		if want == 0 {
			if _, ok := l.Pop(); ok {
				t.Fatal("Pop from empty succeeded")
			}
			break
		}
	}
}

func TestPushChainsWhenFull(t *testing.T) {
	l := New(2)
	l.Push(10)
	l.Push(11)
	chain, ok := l.Push(12)
	if !ok || chain != 10 {
		t.Fatalf("third push: chain=%d ok=%v, want chain to displaced head 10", chain, ok)
	}
	chain, ok = l.Push(13)
	if !ok || chain != 11 {
		t.Fatalf("fourth push: chain=%d ok=%v, want 11 (round robin)", chain, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want bounded at 2", l.Len())
	}
}

func TestPushHeadRespectsBound(t *testing.T) {
	l := New(2)
	if !l.PushHead(1) || !l.PushHead(2) {
		t.Fatal("PushHead under capacity failed")
	}
	if l.PushHead(3) {
		t.Fatal("PushHead above capacity succeeded")
	}
}

func TestBoundProperty(t *testing.T) {
	// Property: len never exceeds max; freed == reused + len + chained.
	f := func(maxRaw uint8, ops []uint16) bool {
		max := int(maxRaw%16) + 1
		l := New(max)
		chained := int64(0)
		for _, op := range ops {
			if op%3 == 0 {
				if _, ok := l.Pop(); ok {
					// popped
				}
			} else {
				if _, chain := l.Push(uint64(op)); chain {
					chained++
				}
			}
			if l.Len() > max {
				return false
			}
		}
		return l.Freed() == l.Reused()+int64(l.Len())+chained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
