package core

import (
	"fmt"
	"sort"

	"kvell/internal/aio"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/freelist"
	"kvell/internal/slab"
)

// Recover rebuilds the in-memory indexes and free lists by scanning every
// slab (§5.6). The scan issues large sequential reads and runs all workers
// in parallel, maximizing device bandwidth as the paper describes. It must
// be called after Open and before Start.
//
// Rules applied during the scan, per the paper:
//   - live items keep only the most recent timestamp per key; the older
//     copy's slot is put on the free list (no disk write needed: recovery
//     would pick the newer timestamp again after another crash);
//   - tombstones become free slots; a tombstone that no other tombstone
//     points to is a stack head (in-memory), the rest remain reachable
//     through their on-disk chain pointers;
//   - multi-page items with mismatched per-block timestamps (partial
//     writes) are discarded.
func (s *Store) Recover(c env.Ctx) error {
	if s.started {
		return fmt.Errorf("core: Recover must precede Start")
	}
	mu := s.env.NewMutex()
	cond := s.env.NewCond(mu)
	remaining := len(s.workers)
	var firstErr error
	for _, w := range s.workers {
		w := w
		s.env.Go(fmt.Sprintf("kvell-recover-%d", w.id), func(c env.Ctx) {
			err := w.recover(c)
			mu.Lock(c)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			done := remaining == 0
			mu.Unlock(c)
			if done {
				cond.Broadcast(c)
			}
		})
	}
	mu.Lock(c)
	for remaining > 0 {
		cond.Wait(c)
	}
	mu.Unlock(c)
	if s.oracle != nil {
		// Re-floor the oracle above every commit/start timestamp found on
		// disk so post-crash timestamps sort after all pre-crash ones.
		for _, w := range s.workers {
			s.oracle.Observe(w.maxCommitTS)
		}
	}
	return firstErr
}

// recover scans this worker's slabs.
func (w *worker) recover(c env.Ctx) error {
	w.liveTS = make(map[string]uint64)
	defer func() { w.liveTS = nil }() // only needed to arbitrate duplicates
	if w.mv != nil {
		w.recMVCC = make(map[string][]recVer)
	}
	for _, sl := range w.slabs {
		if err := w.recoverSlab(c, sl); err != nil {
			return err
		}
	}
	if w.mv != nil {
		w.mvccFinishRecovery()
	}
	return nil
}

// recoverSlab sequentially scans one slab until it finds a fully-empty
// extent (the deterministic layout means extent k always lives at the same
// pages, so no manifest is needed).
func (w *worker) recoverSlab(c env.Ctx, sl *slab.Slab) error {
	slotBytes := int64(sl.Stride)
	extPages := sl.ExtentPages()
	var slotsPerExtent uint64
	if sl.MultiPage() {
		slotsPerExtent = uint64(extPages / sl.PagesPerSlot())
	} else {
		slotsPerExtent = uint64(extPages) * uint64(device.PageSize/sl.Stride)
	}

	tombs := make(map[uint64]uint64)   // free slot -> chainTo
	pointedTo := make(map[uint64]bool) // slots referenced by some chain
	var maxUsed int64 = -1             // highest non-empty slot index
	var maxTS uint64

	for ext := 0; ; ext++ {
		firstSlot := uint64(ext) * slotsPerExtent
		base := sl.SlotPage(firstSlot)
		buf := w.readExtent(c, base, extPages)
		c.CPU(costs.MemBytes(len(buf)) / 2) // header parsing while scanning

		empty := true
		for i := uint64(0); i < slotsPerExtent; i++ {
			slotIdx := firstSlot + i
			off := int64(i) * slotBytes
			// View decode: the key is only used synchronously (index Put and
			// the liveTS map both copy), so no per-slot alloc while scanning.
			d, err := sl.DecodeSlotView(buf[off : off+slotBytes])
			if err != nil {
				return err
			}
			switch d.Kind {
			case slab.Empty:
				continue
			case slab.Corrupt:
				// Partially written item: treat the slot as free space.
				empty = false
				maxUsed = int64(slotIdx)
				tombs[slotIdx] = freelist.NoSlot
			case slab.Tombstone:
				empty = false
				maxUsed = int64(slotIdx)
				tombs[slotIdx] = d.ChainTo
				if d.ChainTo != freelist.NoSlot {
					pointedTo[d.ChainTo] = true
				}
			case slab.Live:
				empty = false
				maxUsed = int64(slotIdx)
				if d.Item.Timestamp > maxTS {
					maxTS = d.Item.Timestamp
				}
				if w.mv != nil {
					if !w.mvccRecoverSlot(sl, slotIdx, d) {
						// Not an envelope (torn payload): free space.
						tombs[slotIdx] = freelist.NoSlot
					}
				} else {
					w.recoverLive(c, sl, slotIdx, d)
				}
			}
		}
		if empty {
			break
		}
	}

	sl.RestoreAppendCursor(uint64(maxUsed + 1))
	if w.ts <= maxTS {
		w.ts = maxTS + 1
	}
	// Free-list heads: tombstones nobody points to. A chain pointer to a
	// slot that is no longer a tombstone (reused after its chain was
	// recorded) is stale; such targets were handled when they were
	// overwritten, so only existing tombstones count. Heads are pushed in
	// slot order: map iteration order would leak into the post-recovery
	// allocation order, which must be reproducible (a promoted cluster
	// replica keeps serving inside a live deterministic simulation).
	heads := make([]uint64, 0, len(tombs))
	for slot := range tombs {
		if !pointedTo[slot] {
			heads = append(heads, slot)
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	for _, slot := range heads {
		sl.Free.PushHead(slot)
	}
	return nil
}

// recoverLive installs a scanned live item, keeping only the newest version
// of each key.
func (w *worker) recoverLive(c env.Ctx, sl *slab.Slab, slotIdx uint64, d slab.Decoded) {
	c.CPU(env.Time(w.idx.Depth()) * costs.BTreeNode)
	newLoc := loc(sl.ClassIndex, slotIdx)
	prev, ok := w.idx.Get(d.Item.Key)
	if !ok {
		w.idx.Put(d.Item.Key, uint64(newLoc))
		w.liveTS[string(d.Item.Key)] = d.Item.Timestamp
		sl.Live++
		return
	}
	// Duplicate key (crash mid-migration, §5.6): keep the newer timestamp.
	prevLoc := location(prev)
	prevSl := w.slabs[prevLoc.class()]
	prevTS := w.liveTS[string(d.Item.Key)]
	if d.Item.Timestamp > prevTS {
		w.idx.Put(d.Item.Key, uint64(newLoc))
		w.liveTS[string(d.Item.Key)] = d.Item.Timestamp
		prevSl.Free.PushHead(prevLoc.slot())
		prevSl.Live--
		sl.Live++
	} else {
		sl.Free.PushHead(slotIdx)
	}
}

// readExtent reads extPages pages starting at base using a handful of
// parallel chunked requests (sequential on disk, deep enough to use the
// device's channels).
func (w *worker) readExtent(c env.Ctx, base int64, extPages int64) []byte {
	buf := make([]byte, extPages*device.PageSize)
	const chunks = 8
	per := extPages / chunks
	if per == 0 {
		per = extPages
	}
	var ios []*aio.IO
	for off := int64(0); off < extPages; off += per {
		n := per
		if off+n > extPages {
			n = extPages - off
		}
		ios = append(ios, &aio.IO{
			Op:   device.Read,
			Page: base + off,
			Buf:  buf[off*device.PageSize : (off+n)*device.PageSize],
		})
	}
	w.aio.Submit(c, ios)
	for done := 0; done < len(ios); {
		evs := w.aio.GetEvents(c, 1)
		done += len(evs)
	}
	return buf
}
