package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"

	"kvell/internal/btree"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/hotcache"
	"kvell/internal/kv"
	"kvell/internal/mvcc"
	"kvell/internal/pagecache"
	"kvell/internal/slab"
	"kvell/internal/trace"
)

// Store is a KVell key-value store.
type Store struct {
	env     env.Env
	cfg     Config
	workers []*worker
	started bool
	// oracle issues commit/snapshot timestamps in MVCC mode (nil otherwise).
	// Single-node stores own it directly; a cluster shares machine 0's
	// through the network layer.
	oracle *mvcc.Oracle
}

// Open constructs a store (no I/O happens yet). If the disks contain data
// from a previous run, call Recover before Start; otherwise call Start
// directly.
func Open(e env.Env, cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Store{env: e, cfg: cfg}
	if cfg.MVCC {
		s.oracle = &mvcc.Oracle{}
	}
	d := len(cfg.Disks)
	perClass := cfg.WorkerRegionPages / int64(len(cfg.Classes)+1)
	cachePer := cfg.PageCachePages / cfg.Workers
	for i := 0; i < cfg.Workers; i++ {
		disk := cfg.Disks[i%d]
		ordinal := int64(i / d)
		base := ordinal * cfg.WorkerRegionPages
		w := &worker{
			st:           s,
			id:           i,
			q:            e.NewQueue(),
			dev:          disk,
			idx:          btree.New(),
			idxMu:        e.NewMutex(),
			cache:        pagecache.New(cachePer, cfg.CacheIndex),
			pendingReads: make(map[int64]*pendingRead),
			tailPage:     make(map[int]int64),
			ts:           1,
		}
		for ci, stride := range cfg.Classes {
			alloc := device.NewAllocator(base + int64(ci)*perClass)
			w.slabs = append(w.slabs, slab.New(ci, stride, alloc, cfg.ExtentPages, cfg.FreelistHeads))
		}
		w.logBase = base + int64(len(cfg.Classes))*perClass
		w.logPages = perClass
		w.state = w
		if cfg.MVCC {
			w.mv = mvcc.NewTable()
		}
		w.initAIO()
		if cfg.AbsorbInterval > 0 {
			w.ab = newAbsorber()
			w.tick = &flushTick{}
			w.absorbMu = e.NewMutex()
			w.absorbInterval = cfg.AbsorbInterval
		}
		if cfg.TieredHotBytes > 0 {
			w.hot = hotcache.New(hotcache.Config{
				CapBytes:     cfg.TieredHotBytes / int64(cfg.Workers),
				SlotBytes:    cfg.TieredSlotBytes,
				HalfLife:     cfg.TieredHalfLife,
				PromoteAfter: uint32(cfg.TieredPromoteAfter),
				Seed:         cfg.TieredSeed + int64(i),
			})
		}
		s.workers = append(s.workers, w)
	}
	if cfg.SharedEverything {
		if len(cfg.Disks) != 1 {
			return nil, fmt.Errorf("core: SharedEverything requires exactly one disk")
		}
		// All threads operate on worker 0's structures behind one lock
		// and drain one shared queue (§4.1's conventional design).
		base := s.workers[0]
		shMu := e.NewMutex()
		for _, w := range s.workers {
			w.state = base
			w.shMu = shMu
			w.q = base.q
		}
	}
	return s, nil
}

// scanWorkers returns the distinct index owners (one in shared mode).
func (s *Store) scanWorkers() []*worker {
	if s.cfg.SharedEverything {
		return s.workers[:1]
	}
	return s.workers
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// Start launches the worker threads.
func (s *Store) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, w := range s.workers {
		w := w
		s.env.Go(fmt.Sprintf("kvell-worker-%d", w.id), w.run)
		if w.ab != nil {
			s.env.Go(fmt.Sprintf("kvell-absorb-%d", w.id), w.absorbLoop)
		}
	}
}

// Stop closes the request queues; workers drain in-flight work and exit.
// Each absorb tick proc is stopped under its mutex before its queue closes,
// so a proc mid-wakeup can never push a tick into a closed queue.
func (s *Store) Stop(c env.Ctx) {
	for _, w := range s.workers {
		if w.ab != nil {
			w.absorbMu.Lock(c)
			w.absorbStopped = true
			w.absorbMu.Unlock(c)
		}
		w.q.Close(c)
	}
}

// Name implements kv.Engine.
func (s *Store) Name() string { return "KVell" }

func (s *Store) workerFor(key []byte) *worker {
	w := s.workers[kv.Hash64(key)%uint64(len(s.workers))]
	return w.state // shared mode: one state owner
}

// LookupLoc returns the raw index location for key, or false if absent. A
// pure in-memory read with no CPU charge and no events — diagnostics and
// replica-index validation only, never the data path (which charges index
// descent costs via the worker's lookup).
func (s *Store) LookupLoc(key []byte) (uint64, bool) {
	return s.workerFor(key).idx.Get(key)
}

// Submit implements kv.Engine. Point operations are enqueued to the owning
// worker (the client thread only computes the hash, §5.5); scans execute on
// the calling thread, coordinating with workers (§5.5 Scan).
func (s *Store) Submit(c env.Ctx, r *kv.Request) {
	if r.Op == kv.OpScan {
		items := s.ScanN(c, r.Key, r.ScanCount)
		if r.Done != nil {
			r.Done(kv.Result{Found: len(items) > 0, ScanN: len(items)})
		}
		return
	}
	c.CPU(costs.Callback) // route + enqueue
	r.Trace.MarkQueue(c.Now())
	s.workerFor(r.Key).q.Push(c, r)
}

// candidate is a scan candidate gathered from a worker index.
type candidate struct {
	key []byte
	l   location
	w   *worker
}

// scanJoin collects scan read completions.
type scanJoin struct {
	mu        env.Mutex
	cond      env.Cond
	remaining int
	items     []kv.Item
}

// ScanN returns up to count items with key >= start, in key order, reading
// each item's current value. Per §5.5, the scanning thread briefly locks
// each worker's index in turn, merges the candidate keys, and then issues
// location-direct reads that bypass the index lookup.
func (s *Store) ScanN(c env.Ctx, start []byte, count int) []kv.Item {
	cands := s.collect(c, func(w *worker) ([][]byte, []uint64) {
		return w.idx.FirstN(start, count)
	})
	if len(cands) > count {
		cands = cands[:count]
	}
	return s.fetch(c, cands)
}

// ScanRange returns all items with start <= key < end in key order.
func (s *Store) ScanRange(c env.Ctx, start, end []byte) []kv.Item {
	cands := s.collect(c, func(w *worker) ([][]byte, []uint64) {
		var ks [][]byte
		var vs []uint64
		w.idx.Range(start, end, func(k []byte, v uint64) bool {
			ks = append(ks, k)
			vs = append(vs, v)
			return true
		})
		return ks, vs
	})
	return s.fetch(c, cands)
}

func (s *Store) collect(c env.Ctx, gather func(w *worker) ([][]byte, []uint64)) []candidate {
	var cands []candidate
	for _, w := range s.scanWorkers() {
		c.CPU(costs.LockUncontended)
		w.idxMu.Lock(c)
		ks, vs := gather(w)
		w.idxMu.Unlock(c)
		c.CPU(env.Time(w.idx.Depth())*costs.BTreeNode + env.Time(len(ks))*costs.IterStep)
		for i := range ks {
			cands = append(cands, candidate{key: ks[i], l: location(vs[i]), w: w})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return bytes.Compare(cands[i].key, cands[j].key) < 0 })
	c.CPU(env.Time(len(cands)) * costs.IterStep) // merge
	return cands
}

// fetch reads the values for cands via location-direct worker requests and
// blocks until all arrive.
func (s *Store) fetch(c env.Ctx, cands []candidate) []kv.Item {
	if s.cfg.MVCC {
		// Redirect multi-version keys to their newest committed version and
		// drop keys whose newest committed version is a delete; the reads
		// below then unwrap envelopes (locReq.env).
		cands = s.mvccRemapCands(cands)
	}
	if len(cands) == 0 {
		return nil
	}
	j := &scanJoin{mu: s.env.NewMutex(), remaining: len(cands), items: make([]kv.Item, len(cands))}
	j.cond = s.env.NewCond(j.mu)
	for i, cd := range cands {
		i, cd := i, cd
		j.items[i].Key = cd.key
		cd.w.q.Push(c, &locReq{key: cd.key, l: cd.l, join: j, idx: i, env: s.cfg.MVCC})
	}
	t0 := c.Now()
	j.mu.Lock(c)
	for j.remaining > 0 {
		j.cond.Wait(c)
	}
	j.mu.Unlock(c)
	// The scanning thread blocks here while workers serve the
	// location-direct reads (§5.5).
	trace.FromCtx(c).Add(trace.CompStall, t0, c.Now())
	// Drop candidates whose item vanished between index snapshot and read.
	out := j.items[:0]
	for _, it := range j.items {
		if it.Value != nil {
			out = append(out, it)
		}
	}
	return out
}

// BulkLoad implements kv.Engine: it installs items directly into slabs and
// indexes, bypassing the timed request path (the unmeasured load phase).
// Keys must be unique. Items are placed in deterministically shuffled slot
// order — the paper loads KVell in random key order ("for fairness",
// §6.3.1) so that consecutive keys do not share disk pages, which would
// otherwise give unsorted storage an artificial scan-locality advantage.
func (s *Store) BulkLoad(items []kv.Item) error {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	r := rand.New(rand.NewSource(0x4B56656C6C)) // "KVell"
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	type pageBuf struct {
		disk device.Disk
		data []byte
	}
	pages := make(map[int64]*pageBuf) // key: global page id per disk pointer—disallow collisions by including worker
	getPage := func(w *worker, page int64) []byte {
		// Page ids are disjoint across disks only per disk; key by disk index too.
		k := page*int64(len(s.cfg.Disks)) + int64(w.id%len(s.cfg.Disks))
		pb, ok := pages[k]
		if !ok {
			pb = &pageBuf{disk: w.dev, data: make([]byte, device.PageSize)}
			pages[k] = pb
		}
		return pb.data
	}
	var envBuf []byte
	for _, oi := range order {
		it := items[oi]
		w := s.workerFor(it.Key)
		val := it.Value
		if s.cfg.MVCC {
			// Loaded items are committed versions at timestamp 1 (the oracle
			// floor is raised below so no later commit collides).
			e := mvcc.Envelope{Kind: mvcc.KindCommitPut, StartTS: 1, CommitTS: 1,
				PrevLoc: mvcc.NoLoc, Value: it.Value}
			envBuf = mvcc.AppendEncode(envBuf[:0], &e)
			val = envBuf
		}
		cls := slab.ClassFor(s.cfg.Classes, len(it.Key), len(val))
		if cls < 0 {
			return fmt.Errorf("core: item with key %q too large for configured classes", it.Key)
		}
		sl := w.slabs[cls]
		slot, _ := sl.Alloc()
		ts := w.nextTS()
		if sl.MultiPage() {
			buf := make([]byte, sl.PagesPerSlot()*device.PageSize)
			if err := sl.EncodeItem(buf, ts, it.Key, val); err != nil {
				return err
			}
			if err := storeOf(w.dev).WritePages(sl.SlotPage(slot), buf); err != nil {
				return err
			}
		} else {
			page := sl.SlotPage(slot)
			data := getPage(w, page)
			if err := sl.EncodeItem(data[sl.SlotOffset(slot):sl.SlotOffset(slot)+sl.Stride], ts, it.Key, val); err != nil {
				return err
			}
		}
		w.idx.Put(it.Key, uint64(loc(cls, slot)))
	}
	if s.oracle != nil {
		s.oracle.Observe(1)
	}
	// Flush accumulated sub-page buffers in key order: map iteration order
	// is randomized per run and the writes must not be.
	keys := make([]int64, 0, len(pages))
	for k := range pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		pb := pages[k]
		page := k / int64(len(s.cfg.Disks))
		if err := storeOf(pb.disk).WritePages(page, pb.data); err != nil {
			return err
		}
	}
	return nil
}

// storeAccessor is implemented by both SimDisk and RealDisk.
type storeAccessor interface{ Store() device.Store }

func storeOf(d device.Disk) device.Store {
	return d.(storeAccessor).Store()
}

// Stats is an aggregate snapshot across workers.
type Stats struct {
	Items        int64
	IndexBytes   int64
	CacheHits    int64
	CacheMisses  int64
	Syscalls     int64
	IOsSubmitted int64
	Requests     int64
	FreeReused   int64

	// Write-absorption counters (zero when the front end is disabled).
	Absorbed      int64 // requests merged into an already-buffered key
	AbsorbReads   int64 // gets/RMW reads served from the buffer
	AbsorbFlushes int64 // group commits
	AbsorbWrites  int64 // surviving writes issued by group commits

	// Hot-key cache counters (zero when tiering is disabled).
	HotHits          int64 // reads served from the hot tier
	HotMisses        int64 // hot-tier probes that fell through to the engine
	HotPromotions    int64 // records promoted into the hot tier
	HotDemotions     int64 // records demoted to make room
	HotInvalidations int64 // cached records dropped by writes/deletes

	// MVCCKeys is the number of keys in the uncheckpointed multi-version
	// window (pending intent or >1 retained version); zero when MVCC is off.
	MVCCKeys int64
}

// Stats returns aggregate statistics.
func (s *Store) Stats() Stats {
	var st Stats
	for _, w := range s.scanWorkers() {
		st.Items += int64(w.idx.Len())
		st.IndexBytes += w.idx.MemBytes()
		st.CacheHits += w.cache.Hits()
		st.CacheMisses += w.cache.Misses()
		st.Syscalls += w.aio.Syscalls
		st.IOsSubmitted += w.aio.Submitted
		st.Requests += w.reqs
		if w.ab != nil {
			st.Absorbed += w.ab.absorbed
			st.AbsorbReads += w.ab.reads
			st.AbsorbFlushes += w.ab.flushes
			st.AbsorbWrites += w.ab.groupedW
		}
		if w.mv != nil {
			st.MVCCKeys += int64(w.mv.Len())
		}
		if w.hot != nil {
			st.HotHits += w.hot.Hits()
			st.HotMisses += w.hot.Misses()
			st.HotPromotions += w.hot.Promotions()
			st.HotDemotions += w.hot.Demotions()
			st.HotInvalidations += w.hot.Invalidations()
		}
		for _, sl := range w.slabs {
			st.FreeReused += sl.Free.Reused()
		}
	}
	return st
}
