package core

import (
	"bytes"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
	"kvell/internal/slab"
)

// midflightStore builds a single-worker store, runs put inside the
// simulation, and returns the surviving MemStore plus the (closed) store
// for geometry inspection. The returned state models the disk at a crash:
// whatever put acknowledged is durable, nothing was shut down cleanly.
func midflightStore(t *testing.T, put func(c env.Ctx, st *Store)) (*device.MemStore, *Store) {
	t.Helper()
	s := sim.New(1)
	e := sim.NewEnv(s, 4)
	ms := device.NewMemStore()
	disk := device.NewSimDisk(s, device.Optane(), ms)
	cfg := DefaultConfig(disk)
	cfg.Workers = 1
	st, err := Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	e.Go("client", func(c env.Ctx) {
		put(c, st)
		st.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	return ms, st
}

// reopen recovers a fresh store over ms and runs check in the simulation.
func reopen(t *testing.T, ms *device.MemStore, check func(c env.Ctx, st *Store)) *Store {
	t.Helper()
	s := sim.New(2)
	e := sim.NewEnv(s, 4)
	disk := device.NewSimDisk(s, device.Optane(), ms)
	cfg := DefaultConfig(disk)
	cfg.Workers = 1
	st, err := Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Go("client", func(c env.Ctx) {
		if err := st.Recover(c); err != nil {
			t.Error(err)
			return
		}
		st.Start()
		check(c, st)
		st.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := st.CheckConsistency(); err != nil {
		t.Errorf("post-recovery consistency: %v", err)
	}
	return st
}

// plantLive encodes a live (ts, key, value) image directly into a sub-page
// slot — the surgical equivalent of a write that persisted right before
// power loss, without the bookkeeping that normally follows it.
func plantLive(t *testing.T, ms *device.MemStore, sl *slab.Slab, slot uint64, ts uint64, key, val []byte) {
	t.Helper()
	page := sl.SlotPage(slot)
	buf := make([]byte, device.PageSize)
	if err := ms.ReadPages(page, buf); err != nil {
		t.Fatal(err)
	}
	off := sl.SlotOffset(slot)
	if err := sl.EncodeItem(buf[off:off+sl.Stride], ts, key, val); err != nil {
		t.Fatal(err)
	}
	if err := ms.WritePages(page, buf); err != nil {
		t.Fatal(err)
	}
}

func classOf(t *testing.T, st *Store, valLen int) int {
	t.Helper()
	cls := slab.ClassFor(st.cfg.Classes, kv.KeyLen, valLen)
	if cls < 0 {
		t.Fatalf("no class for %dB values", valLen)
	}
	return cls
}

func freeHeadsContain(sl *slab.Slab, slot uint64) bool {
	for _, h := range sl.Free.Heads() {
		if h == slot {
			return true
		}
	}
	return false
}

// TestRecoveryCrashBeforeTombstone models a crash between an update's two
// writes (§5.2 migration order: new slot first, tombstone second): the new
// version persisted in its new class, but the power failed before the old
// slot's tombstone was written. Recovery must keep the newer version and
// turn the stale older copy into free space — with no disk write, exactly
// as the paper prescribes.
func TestRecoveryCrashBeforeTombstone(t *testing.T) {
	key := kv.Key(1)
	newVal := kv.Value(1, 2, 200)
	oldVal := kv.Value(1, 1, 600)
	ms, st := midflightStore(t, func(c env.Ctx, st *Store) {
		st.Put(c, key, newVal) // the "new slot" write, acknowledged
	})
	// Plant the pre-migration copy with an older timestamp in the class a
	// 600B value would have lived in; its tombstone never made it to disk.
	oldCls := classOf(t, st, len(oldVal))
	plantLive(t, ms, st.workers[0].slabs[oldCls], 0, 1, key, oldVal)

	reopen(t, ms, func(c env.Ctx, st2 *Store) {
		got, ok := st2.Get(c, key)
		if !ok || !bytes.Equal(got, newVal) {
			t.Errorf("recovery kept the stale pre-migration copy (found=%v, %dB)", ok, len(got))
		}
	}).withFreed(t, oldCls, 0)
}

// withFreed asserts the slot is an in-memory free head after recovery.
func (s *Store) withFreed(t *testing.T, cls int, slot uint64) {
	t.Helper()
	if !freeHeadsContain(s.workers[0].slabs[cls], slot) {
		t.Errorf("slot %d of class %d not freed by recovery", slot, cls)
	}
}

// TestRecoveryTornTailPage models a torn append: the tail page of a slab
// holds one fully-persisted slot and one slot of garbage bytes (the write
// that was in flight when the power failed). Recovery must keep the good
// slot, reclaim the garbage slot as free space, and not panic.
func TestRecoveryTornTailPage(t *testing.T) {
	key := kv.Key(1)
	val := kv.Value(1, 1, 200)
	ms, st := midflightStore(t, func(c env.Ctx, st *Store) {
		st.Put(c, key, val)
	})
	cls := classOf(t, st, len(val))
	sl := st.workers[0].slabs[cls]
	// Fill the next slot of the same (tail) page with garbage: a flag byte
	// no codec ever writes, then junk.
	page := sl.SlotPage(1)
	buf := make([]byte, device.PageSize)
	if err := ms.ReadPages(page, buf); err != nil {
		t.Fatal(err)
	}
	off := sl.SlotOffset(1)
	for i := 0; i < sl.Stride; i++ {
		buf[off+i] = byte(0xA5 ^ i)
	}
	if err := ms.WritePages(page, buf); err != nil {
		t.Fatal(err)
	}

	reopen(t, ms, func(c env.Ctx, st2 *Store) {
		got, ok := st2.Get(c, key)
		if !ok || !bytes.Equal(got, val) {
			t.Error("intact slot lost next to torn slot")
		}
		// The garbage slot must be reusable storage now.
		st2.Put(c, kv.Key(2), kv.Value(2, 1, 200))
		if v, ok := st2.Get(c, kv.Key(2)); !ok || !bytes.Equal(v, kv.Value(2, 1, 200)) {
			t.Error("write into reclaimed torn slot failed")
		}
	}).withFreedCheck(t, cls)
}

// withFreedCheck asserts the append cursor advanced past the torn slot (it
// was scanned, not ignored) — slot 1 is either a free head or was reused.
func (s *Store) withFreedCheck(t *testing.T, cls int) {
	t.Helper()
	if got := s.workers[0].slabs[cls].Slots(); got < 2 {
		t.Errorf("append cursor %d: torn slot was not scanned", got)
	}
}

// TestRecoveryDuplicateKeyLastWriterWins models the other half of a
// mid-migration crash: both copies of a key survive in different slabs and
// the NEWER one is the planted copy (its index update was lost with RAM).
// Recovery must arbitrate by timestamp — last writer wins — whichever slab
// order the scan visits them in.
func TestRecoveryDuplicateKeyLastWriterWins(t *testing.T) {
	key := kv.Key(1)
	oldVal := kv.Value(1, 1, 200) // written through the store, older ts
	newVal := kv.Value(1, 2, 600) // planted with a huge ts, newer
	ms, st := midflightStore(t, func(c env.Ctx, st *Store) {
		st.Put(c, key, oldVal)
	})
	oldCls := classOf(t, st, len(oldVal))
	newCls := classOf(t, st, len(newVal))
	if oldCls == newCls {
		t.Fatalf("test needs distinct classes, both were %d", oldCls)
	}
	plantLive(t, ms, st.workers[0].slabs[newCls], 0, 1<<50, key, newVal)

	reopen(t, ms, func(c env.Ctx, st2 *Store) {
		got, ok := st2.Get(c, key)
		if !ok || !bytes.Equal(got, newVal) {
			t.Errorf("last writer did not win (found=%v, %dB, want %dB)", ok, len(got), len(newVal))
		}
	}).withFreed(t, oldCls, 0)
}
