package core

import (
	"kvell/internal/costs"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/trace"
)

// Hot/cold tiering front end: a per-worker hot-key record cache
// (internal/hotcache) probed after the absorb buffer and before the index.
// Ordering is what makes it safe without any cross-structure locking:
//
//	read:  absorb buffer -> hot cache -> index -> page cache -> disk
//	write: hot cache write-through/invalidate -> slab write
//
// A key with a buffered write is always served from the absorb buffer, so
// the hot cache can never be asked for a value that is fresher in memory;
// every durable write passes through doUpdate or deleteKey, where the cached
// copy is refreshed or dropped before the slab I/O is issued. The cache is a
// pure read accelerator — the disk stays authoritative, so crash recovery is
// byte-for-byte the untiered scan. Everything below is gated on w.hot,
// keeping tiering-off schedules bit-identical.

// hotGet serves an OpGet from the hot tier. Returns false on a miss (the
// request then takes the normal index/page-cache path); the miss itself is
// recorded as ghost-table evidence that feeds later promotion.
func (w *worker) hotGet(c env.Ctx, r *kv.Request) bool {
	t0 := c.Now()
	c.CPU(costs.HashLookup)
	val, ok := w.hot.Get(r.Key, c.Now(), &r.ValueBuf)
	tc := trace.FromCtx(c)
	if !ok {
		tc.Count(trace.CtrHotMiss, 1)
		return false
	}
	c.CPU(costs.MemBytes(len(val)))
	tc.Add(trace.CompHotCache, t0, c.Now())
	tc.Count(trace.CtrHotHit, 1)
	w.respond(c, r, kv.Result{Found: true, Value: val})
	return true
}

// hotAdmit offers a value that just came off the cold path to the hot tier.
// Call before responding: key and val are backed by request-owned buffers
// that may be recycled by Done.
func (w *worker) hotAdmit(c env.Ctx, key, val []byte) {
	c.CPU(costs.HashLookup)
	promoted, demoted := w.hot.Admit(key, val, c.Now())
	tc := trace.FromCtx(c)
	if promoted {
		c.CPU(costs.MemBytes(len(key) + len(val)))
		tc.Count(trace.CtrHotPromote, 1)
	}
	if demoted {
		tc.Count(trace.CtrHotDemote, 1)
	}
}

// hotWrite applies write-through to a resident record (or evicts it when the
// new value no longer fits a slot). Writes never admit: only repeated cold
// reads promote, so a write-heavy cold tail cannot flush the hot set.
func (w *worker) hotWrite(c env.Ctx, key, value []byte) {
	c.CPU(costs.HashLookup)
	if w.hot.Update(key, value, c.Now()) {
		c.CPU(costs.MemBytes(len(value)))
	}
}

// hotInvalidate drops a record ahead of its delete.
func (w *worker) hotInvalidate(c env.Ctx, key []byte) {
	c.CPU(costs.HashLookup)
	w.hot.Invalidate(key)
}

// hotAbsorb mirrors a just-buffered write into the hot tier at absorb-add
// time. The absorb buffer already shields reads of this key, but keeping the
// cached copy current means the entry's eventual flush (which passes through
// doUpdate/deleteKey and writes through again) can never expose a stale
// value, and a demotion between add and flush loses nothing.
func (w *worker) hotAbsorb(c env.Ctx, r *kv.Request) {
	if r.Op == kv.OpDelete {
		w.hotInvalidate(c, r.Key)
		return
	}
	w.hotWrite(c, r.Key, r.Value)
}
