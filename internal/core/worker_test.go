package core

import (
	"bytes"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

func TestRMWReadsThenWrites(t *testing.T) {
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		st.Put(c, kv.Key(1), kv.Value(1, 1, 500))
		res := st.Do(c, &kv.Request{Op: kv.OpRMW, Key: kv.Key(1), Value: kv.Value(1, 2, 500)})
		if !res.Found {
			t.Fatal("RMW on existing key not found")
		}
		v, _ := st.Get(c, kv.Key(1))
		if !bytes.Equal(v, kv.Value(1, 2, 500)) {
			t.Fatal("RMW did not install new value")
		}
		// RMW on a missing key reports not-found without writing.
		res = st.Do(c, &kv.Request{Op: kv.OpRMW, Key: kv.Key(99), Value: kv.Value(99, 1, 500)})
		if res.Found {
			t.Fatal("RMW on missing key reported found")
		}
		if _, ok := st.Get(c, kv.Key(99)); ok {
			t.Fatal("RMW on missing key wrote a value")
		}
	})
}

func TestAsyncPipelinedSubmissions(t *testing.T) {
	// Many requests in flight at once per client (the callback interface
	// of Algorithm 1), interleaving reads and writes on the same keys.
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		const n = 300
		for i := int64(0); i < n; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 0, 700))
		}
		done := 0
		for i := int64(0); i < n; i++ {
			i := i
			st.Submit(c, &kv.Request{Op: kv.OpUpdate, Key: kv.Key(i), Value: kv.Value(i, 1, 700),
				Done: func(kv.Result) { done++ }})
			st.Submit(c, &kv.Request{Op: kv.OpGet, Key: kv.Key(i),
				Done: func(r kv.Result) { done++ }})
		}
		// Wait for all callbacks by polling virtual time.
		for done < int(2*n) {
			c.Sleep(env.Millisecond)
		}
		for i := int64(0); i < n; i++ {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 700)) {
				t.Fatalf("pipelined update %d lost", i)
			}
		}
	})
}

func TestPendingReadDeduplication(t *testing.T) {
	// Concurrent GETs to the same uncached page must issue one device
	// read (the pending-read join in worker.readPage).
	st, _ := simHarness(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.PageCachePages = 2 // effectively no cache
	}, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 16; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 0, 200)) // several items share pages
		}
		before := st.workers[0].dev.Counters().ReadOps
		done := 0
		for rep := 0; rep < 20; rep++ {
			st.Submit(c, &kv.Request{Op: kv.OpGet, Key: kv.Key(3),
				Done: func(kv.Result) { done++ }})
		}
		for done < 20 {
			c.Sleep(env.Millisecond)
		}
		reads := st.workers[0].dev.Counters().ReadOps - before
		if reads > 3 {
			t.Fatalf("20 concurrent gets of one page issued %d reads; dedup broken", reads)
		}
	})
	_ = st
}

func TestCommitLogVariantDoublesWrites(t *testing.T) {
	writeOps := func(withLog bool) int64 {
		st, _ := simHarness(t, func(cfg *Config) {
			cfg.WithCommitLog = withLog
		}, func(c env.Ctx, st *Store) {
			for i := int64(0); i < 200; i++ {
				st.Put(c, kv.Key(i), kv.Value(i, 1, 700))
			}
		})
		var w int64
		for _, wk := range st.workers {
			w += wk.dev.Counters().WriteOps
		}
		return w
	}
	plain, logged := writeOps(false), writeOps(true)
	if logged < plain+150 {
		t.Fatalf("commit-log variant wrote %d pages vs %d plain; log writes missing", logged, plain)
	}
}

func TestHashCacheIndexVariantWorks(t *testing.T) {
	simHarness(t, func(cfg *Config) {
		cfg.CacheIndex = 1 // pagecache.IndexHash
	}, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 300; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		for i := int64(0); i < 300; i += 17 {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 600)) {
				t.Fatalf("hash-index cache variant lost key %d", i)
			}
		}
	})
}

func TestScanEdgeCases(t *testing.T) {
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		// Empty store.
		if items := st.ScanN(c, kv.Key(0), 10); len(items) != 0 {
			t.Fatalf("scan of empty store returned %d", len(items))
		}
		for i := int64(0); i < 20; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		// Start past the last key.
		if items := st.ScanN(c, kv.Key(1000), 10); len(items) != 0 {
			t.Fatalf("scan past end returned %d", len(items))
		}
		// Count larger than the store.
		if items := st.ScanN(c, kv.Key(0), 100); len(items) != 20 {
			t.Fatalf("over-long scan returned %d", len(items))
		}
		// Empty range.
		if items := st.ScanRange(c, kv.Key(5), kv.Key(5)); len(items) != 0 {
			t.Fatalf("empty range returned %d", len(items))
		}
	})
}

func TestZeroAndTinyValues(t *testing.T) {
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		st.Put(c, kv.Key(1), []byte{})
		v, ok := st.Get(c, kv.Key(1))
		if !ok || len(v) != 0 {
			t.Fatalf("empty value: ok=%v len=%d", ok, len(v))
		}
		st.Put(c, kv.Key(2), []byte{0xFF})
		v, ok = st.Get(c, kv.Key(2))
		if !ok || len(v) != 1 || v[0] != 0xFF {
			t.Fatal("1-byte value roundtrip failed")
		}
	})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, env.Time) {
		s := sim.New(123)
		e := sim.NewEnv(s, 4)
		disk := device.NewSimDisk(s, device.Optane(), nil)
		st, err := Open(e, DefaultConfig(disk))
		if err != nil {
			t.Fatal(err)
		}
		st.Start()
		e.Go("client", func(c env.Ctx) {
			for i := int64(0); i < 500; i++ {
				st.Put(c, kv.Key(i%50), kv.Value(i, uint64(i), 700))
			}
			st.Stop(c)
		})
		if err := s.Run(-1); err != nil {
			t.Fatal(err)
		}
		now := s.Now()
		s.Close()
		return st.Stats().IOsSubmitted, now
	}
	io1, t1 := run()
	io2, t2 := run()
	if io1 != io2 || t1 != t2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", io1, t1, io2, t2)
	}
}

func TestMultiDiskPartitioning(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	var disks []device.Disk
	var sims []*device.SimDisk
	for i := 0; i < 4; i++ {
		dd := device.NewSimDisk(s, device.Optane(), nil)
		disks = append(disks, dd)
		sims = append(sims, dd)
	}
	cfg := DefaultConfig(disks...)
	cfg.Workers = 8 // two workers per disk
	st, err := Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	e.Go("client", func(c env.Ctx) {
		for i := int64(0); i < 800; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 700))
		}
		for i := int64(0); i < 800; i += 7 {
			if _, ok := st.Get(c, kv.Key(i)); !ok {
				t.Errorf("key %d missing in multi-disk store", i)
				return
			}
		}
		st.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	for di, dd := range sims {
		if dd.Counters().WriteOps == 0 {
			t.Fatalf("disk %d received no writes; partitioning broken", di)
		}
	}
}

func TestNoInPlaceVariantNeverOverwritesLive(t *testing.T) {
	st, _ := simHarness(t, func(cfg *Config) { cfg.NoInPlaceUpdates = true }, func(c env.Ctx, st *Store) {
		k := kv.Key(1)
		for v := uint64(1); v <= 30; v++ {
			st.Put(c, k, kv.Value(1, v, 700))
			got, ok := st.Get(c, k)
			if !ok || !bytes.Equal(got, kv.Value(1, v, 700)) {
				t.Fatalf("version %d lost in no-in-place mode", v)
			}
		}
	})
	// Every overwrite must have allocated a new slot or reused a freed
	// one, and tombstoned the old (29 frees for 30 versions).
	var freed int64
	for _, w := range st.workers {
		for _, sl := range w.slabs {
			freed += sl.Free.Freed()
		}
	}
	if freed < 29 {
		t.Fatalf("no-in-place mode freed only %d slots for 29 overwrites", freed)
	}
}

func TestNoInPlaceRecovery(t *testing.T) {
	// The append+tombstone discipline must recover to the newest version.
	_, ms := simHarness(t, func(cfg *Config) { cfg.NoInPlaceUpdates = true; cfg.Workers = 2 }, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 100; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		for i := int64(0); i < 100; i += 2 {
			st.Put(c, kv.Key(i), kv.Value(i, 2, 600))
		}
	})
	s2 := sim.New(9)
	e2 := sim.NewEnv(s2, 8)
	disk2 := device.NewSimDisk(s2, device.Optane(), ms)
	cfg := DefaultConfig(disk2)
	cfg.Workers = 2
	cfg.NoInPlaceUpdates = true
	st2, err := Open(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.Go("client", func(c env.Ctx) {
		if err := st2.Recover(c); err != nil {
			t.Error(err)
			return
		}
		st2.Start()
		for i := int64(0); i < 100; i++ {
			want := uint64(1)
			if i%2 == 0 {
				want = 2
			}
			v, ok := st2.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, want, 600)) {
				t.Errorf("key %d: wrong version after no-in-place recovery", i)
				return
			}
		}
		st2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestSharedEverythingVariant(t *testing.T) {
	st, _ := simHarness(t, func(cfg *Config) {
		cfg.SharedEverything = true
		cfg.Workers = 4
	}, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 400; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		for i := int64(0); i < 400; i += 7 {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 600)) {
				t.Fatalf("shared-mode key %d lost", i)
			}
		}
		items := st.ScanN(c, kv.Key(50), 30)
		if len(items) != 30 {
			t.Fatalf("shared-mode scan returned %d", len(items))
		}
		if !st.Delete(c, kv.Key(3)) {
			t.Fatal("shared-mode delete failed")
		}
	})
	if st.Stats().Items != 399 {
		t.Fatalf("items = %d", st.Stats().Items)
	}
}
