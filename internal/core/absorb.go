package core

import (
	"bytes"

	"kvell/internal/aio"
	"kvell/internal/costs"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/trace"
)

// absorbEntry is one key's pending, un-acked write in a worker's absorb
// buffer. reqs holds every client request the entry has absorbed, in arrival
// order; the last one carries the surviving operation and value (last-writer
// wins), and all of them are acknowledged together once that single write is
// durable (group ack). heldAt parallels reqs with each request's absorb time
// so the hold can be attributed to the absorb latency component. Entries are
// pooled by the worker's absorber and their ack continuation is wired once,
// so the steady-state merge path allocates nothing.
type absorbEntry struct {
	w       *worker
	hash    uint64
	reqs    []*kv.Request
	heldAt  []env.Time
	updated bool // an update/RMW was absorbed (delete acks report Found)
	found   bool // flush outcome for a surviving delete
	ackFn   func(c env.Ctx, out *[]*aio.IO)
}

// last returns the surviving request (the newest absorbed write).
func (e *absorbEntry) last() *kv.Request { return e.reqs[len(e.reqs)-1] }

// ack acknowledges every absorbed request once the group's device write has
// settled, then recycles the entry. Updates always report Found (as the
// direct path does); deletes report the flush outcome, or Found when the
// delete canceled a write that was still in the buffer.
func (e *absorbEntry) ack(c env.Ctx, out *[]*aio.IO) {
	w := e.w
	for i, r := range e.reqs {
		e.reqs[i] = nil
		res := kv.Result{Found: true}
		if r.Op == kv.OpDelete {
			res.Found = e.found || e.updated
		}
		w.respond(c, r, res)
	}
	e.reqs = e.reqs[:0]
	e.heldAt = e.heldAt[:0]
	w.ab.release(e)
}

// absorber is a worker's write-absorption front end (the host-side analogue
// of the write coalescing that host/SSD collaborative designs push below the
// block layer): same-key puts and deletes arriving within one commit
// interval merge in memory, so only the last version reaches the slab and a
// single device write acknowledges every absorbed request. Entries flush in
// first-absorb order, which keeps the schedule a pure function of the
// request stream.
type absorber struct {
	entries []*absorbEntry          // flush order: first absorb first
	index   map[uint64]*absorbEntry // key-hash -> pending entry
	free    []*absorbEntry
	held    int // requests currently buffered

	// cumulative stats
	absorbed int64 // requests merged into an existing entry
	reads    int64 // gets answered from the buffer
	flushes  int64 // group commits
	groupedW int64 // entries written by group commits
}

func newAbsorber() *absorber {
	return &absorber{index: make(map[uint64]*absorbEntry)}
}

// pending returns the number of buffered (un-flushed) entries.
func (ab *absorber) pending() int { return len(ab.entries) }

func (ab *absorber) release(e *absorbEntry) {
	ab.free = append(ab.free, e)
}

// lookup returns the pending entry for key, if any. A hash collision with a
// different key reads as absent.
func (ab *absorber) lookup(key []byte) *absorbEntry {
	e, ok := ab.index[kv.Hash64(key)]
	if !ok || !bytes.Equal(e.last().Key, key) {
		return nil
	}
	return e
}

// add buffers r (an update, RMW or delete), merging it into the pending
// entry for its key when one exists. It returns false — and buffers nothing
// — when the key's hash slot is occupied by a different key (a 64-bit FNV
// collision); the caller then executes r directly, which is always correct
// because distinct keys have no ordering constraint between them.
func (ab *absorber) add(w *worker, r *kv.Request, now env.Time) bool {
	h := kv.Hash64(r.Key)
	if e, ok := ab.index[h]; ok {
		if !bytes.Equal(e.last().Key, r.Key) {
			return false
		}
		ab.absorbed++
		e.reqs = append(e.reqs, r)
		e.heldAt = append(e.heldAt, now)
		if r.Op != kv.OpDelete {
			e.updated = true
		}
		ab.held++
		return true
	}
	var e *absorbEntry
	if n := len(ab.free); n > 0 {
		e = ab.free[n-1]
		ab.free = ab.free[:n-1]
	} else {
		e = &absorbEntry{w: w}
		e.ackFn = e.ack
	}
	e.hash = h
	e.updated = r.Op != kv.OpDelete
	e.found = false
	e.reqs = append(e.reqs, r)
	e.heldAt = append(e.heldAt, now)
	ab.index[h] = e
	ab.entries = append(ab.entries, e)
	ab.held++
	return true
}

// flushTick is the token the per-worker commit-interval proc pushes into the
// worker queue; the worker flushes its absorb buffer when it pops one.
type flushTick struct{}

// absorbStart routes a request through the absorb front end. It returns
// true when the request was fully handled (buffered, served from the
// buffer, or completed); false sends it down the direct path.
func (w *worker) absorbStart(c env.Ctx, r *kv.Request, out *[]*aio.IO) bool {
	switch r.Op {
	case kv.OpGet:
		return w.absorbGet(c, r)
	case kv.OpUpdate, kv.OpDelete:
		return w.absorb(c, r, out)
	case kv.OpRMW:
		if e := w.ab.lookup(r.Key); e != nil {
			// The freshest version lives in the buffer.
			last := e.last()
			if last.Op == kv.OpDelete {
				w.respond(c, r, kv.Result{})
				return true
			}
			c.CPU(costs.MemBytes(len(last.Value))) // RMW read, served in memory
			w.ab.reads++
			return w.absorb(c, r, out)
		}
		// Read the current value from the store, then absorb the write.
		l, ok := w.lookup(c, r.Key)
		if !ok {
			w.respond(c, r, kv.Result{})
			return true
		}
		w.doGet(c, l, func(c env.Ctx, val []byte, out *[]*aio.IO) {
			if w.absorb(c, r, out) {
				return
			}
			w.writeBack(c, r.Key, r.Value, func(c env.Ctx, out *[]*aio.IO) {
				w.respond(c, r, kv.Result{Found: true})
			}, out)
		}, &r.ValueBuf, out)
		return true
	}
	return false
}

// absorb buffers a write-class request, serving it later as part of a group
// commit. Returns false when the request must take the direct path: the
// device is idle with an empty buffer (nothing to merge with, so buffering
// could only add latency), or the key's hash slot holds a colliding key.
func (w *worker) absorb(c env.Ctx, r *kv.Request, out *[]*aio.IO) bool {
	if w.aio.Inflight() == 0 && len(*out) == 0 && w.ab.pending() == 0 {
		return false
	}
	now := c.Now()
	c.CPU(costs.Callback) // hash + buffer bookkeeping
	if !w.ab.add(w, r, now) {
		return false
	}
	if w.hot != nil {
		// Mirror the buffered write into the hot tier immediately so the
		// cached copy never lags the buffer it sits behind (see tiered.go).
		w.hotAbsorb(c, r)
	}
	if w.ab.held >= w.st.cfg.AbsorbMaxHeld {
		w.absorbOverflow = true
	}
	return true
}

// absorbGet answers a read from the absorb buffer when the key has a
// buffered write: the freshest value exists only in memory until the group
// commit, so the buffer must serve it (a buffered delete reads as absent).
// Returns false when the key has no buffered write.
func (w *worker) absorbGet(c env.Ctx, r *kv.Request) bool {
	e := w.ab.lookup(r.Key)
	if e == nil {
		return false
	}
	w.ab.reads++
	last := e.last()
	if last.Op == kv.OpDelete {
		w.respond(c, r, kv.Result{})
		return true
	}
	n := len(last.Value)
	c.CPU(costs.MemBytes(n))
	var val []byte
	if r.ValueBuf != nil && cap(r.ValueBuf) >= n {
		val = r.ValueBuf[:n]
	} else {
		val = make([]byte, n)
		r.ValueBuf = val
	}
	copy(val, last.Value)
	w.respond(c, r, kv.Result{Found: true, Value: val})
	return true
}

// flushAbsorb group-commits the buffer: every entry's surviving write is
// turned into device I/O on the shared out batch (one io_submit for the
// whole group), and each entry acknowledges all of its absorbed requests
// only once its write settles — the ack-after-settle invariant that keeps
// the crash model honest. The time each request spent in the buffer is
// booked to the absorb latency component.
func (w *worker) flushAbsorb(c env.Ctx, out *[]*aio.IO) {
	ab := w.ab
	if len(ab.entries) == 0 {
		return
	}
	now := c.Now()
	ab.flushes++
	ab.groupedW += int64(len(ab.entries))
	ab.held = 0
	w.absorbOverflow = false
	for i, e := range ab.entries {
		ab.entries[i] = nil
		delete(ab.index, e.hash)
		for j, r := range e.reqs {
			if tc := r.Trace; tc != nil {
				tc.Add(trace.CompAbsorb, e.heldAt[j], now)
			}
		}
		last := e.last()
		if tc := last.Trace; tc != nil {
			c.SetTrace(tc)
		} else {
			c.SetTrace(nil)
		}
		if last.Op == kv.OpDelete {
			e.found = true
			if !w.deleteBack(c, last.Key, e.ackFn, out) {
				e.found = false
				e.ackFn(c, out)
			}
		} else {
			w.writeBack(c, last.Key, last.Value, e.ackFn, out)
		}
	}
	c.SetTrace(nil)
	ab.entries = ab.entries[:0]
}

// absorbTick handles one commit-interval tick: flush, then adapt the
// interval to the device queue depth — shrink toward the minimum when the
// device sits idle (latency mode), grow toward the maximum when a backlog
// has formed (bandwidth mode). The tick proc reads the interval under
// absorbMu.
func (w *worker) absorbTick(c env.Ctx, out *[]*aio.IO) {
	depth := w.aio.Inflight()
	w.flushAbsorb(c, out)
	cfg := &w.st.cfg
	w.absorbMu.Lock(c)
	switch {
	case depth == 0:
		if w.absorbInterval > cfg.AbsorbMinInterval {
			w.absorbInterval /= 2
			if w.absorbInterval < cfg.AbsorbMinInterval {
				w.absorbInterval = cfg.AbsorbMinInterval
			}
		}
	case depth > cfg.BatchSize:
		if w.absorbInterval < cfg.AbsorbMaxInterval {
			w.absorbInterval *= 2
			if w.absorbInterval > cfg.AbsorbMaxInterval {
				w.absorbInterval = cfg.AbsorbMaxInterval
			}
		}
	}
	w.absorbMu.Unlock(c)
}

// absorbLoop is the per-worker commit-interval proc: it sleeps one interval,
// then hands the worker a flush tick through its request queue (flushes must
// run on the worker thread, which owns every structure they touch). The push
// happens under absorbMu so Stop — which sets absorbStopped under the same
// mutex before closing the queue — can never close the queue out from under
// a push.
func (w *worker) absorbLoop(c env.Ctx) {
	for {
		w.absorbMu.Lock(c)
		iv := w.absorbInterval
		stopped := w.absorbStopped
		w.absorbMu.Unlock(c)
		if stopped {
			return
		}
		c.Sleep(iv)
		w.absorbMu.Lock(c)
		if w.absorbStopped {
			w.absorbMu.Unlock(c)
			return
		}
		w.q.Push(c, w.tick)
		w.absorbMu.Unlock(c)
	}
}
