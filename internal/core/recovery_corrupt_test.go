package core

import (
	"bytes"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
	"kvell/internal/slab"
)

// TestRecoveryDiscardsPartialMultiPageWrite plants a torn multi-page write
// directly in the backing store — page 0 of a newer version over the pages
// of an older one, as a power failure mid-io would leave it — and checks
// that recovery discards the item via its per-block timestamps (§5.6).
func TestRecoveryDiscardsPartialMultiPageWrite(t *testing.T) {
	// Build a store with one multi-page item, cleanly.
	var ms *device.MemStore
	var slotPage int64
	var pagesPerSlot int64
	var cls int
	{
		s := sim.New(1)
		e := sim.NewEnv(s, 4)
		ms = device.NewMemStore()
		disk := device.NewSimDisk(s, device.Optane(), ms)
		cfg := DefaultConfig(disk)
		cfg.Workers = 1
		st, err := Open(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.Start()
		e.Go("client", func(c env.Ctx) {
			st.Put(c, kv.Key(1), kv.Value(1, 1, 6000)) // 2-page class
			st.Stop(c)
		})
		if err := s.Run(-1); err != nil {
			t.Fatal(err)
		}
		s.Close()
		w := st.workers[0]
		l, ok := w.idx.Get(kv.Key(1))
		if !ok {
			t.Fatal("item missing before crash")
		}
		loc := location(l)
		cls = loc.class()
		sl := w.slabs[cls]
		if !sl.MultiPage() {
			t.Fatalf("expected a multi-page class, got stride %d", sl.Stride)
		}
		slotPage = sl.SlotPage(loc.slot())
		pagesPerSlot = sl.PagesPerSlot()
	}

	// Tear the item: overwrite only the FIRST page with a newer version's
	// first page (different timestamp), leaving the continuation stale.
	tmp := slab.New(cls, int(pagesPerSlot)*device.PageSize, device.NewAllocator(0), 256, 4)
	newer := make([]byte, pagesPerSlot*device.PageSize)
	if err := tmp.EncodeItem(newer, 999, kv.Key(1), kv.Value(1, 2, 6000)); err != nil {
		t.Fatal(err)
	}
	if err := ms.WritePages(slotPage, newer[:device.PageSize]); err != nil {
		t.Fatal(err)
	}

	// Recover: the torn item must be treated as free space, not data.
	s2 := sim.New(2)
	e2 := sim.NewEnv(s2, 4)
	disk2 := device.NewSimDisk(s2, device.Optane(), ms)
	cfg2 := DefaultConfig(disk2)
	cfg2.Workers = 1
	st2, err := Open(e2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	e2.Go("client", func(c env.Ctx) {
		if err := st2.Recover(c); err != nil {
			t.Error(err)
			return
		}
		st2.Start()
		if _, ok := st2.Get(c, kv.Key(1)); ok {
			t.Error("torn multi-page item resurrected by recovery")
		}
		// The slot must be reusable.
		st2.Put(c, kv.Key(2), kv.Value(2, 1, 6000))
		v, ok := st2.Get(c, kv.Key(2))
		if !ok || !bytes.Equal(v, kv.Value(2, 1, 6000)) {
			t.Error("write after torn-item recovery failed")
		}
		st2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

// TestScanDuringConcurrentDeletes pipelines deletes with an overlapping
// scan; the scan must never return a value for a key under a different
// key's slot (the locReq expected-key guard).
func TestScanDuringConcurrentDeletes(t *testing.T) {
	simHarness(t, func(cfg *Config) { cfg.Workers = 2 }, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 200; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		// Fire deletes + reinserts of other keys asynchronously, then scan
		// while they drain.
		for i := int64(50); i < 80; i++ {
			i := i
			st.Submit(c, &kv.Request{Op: kv.OpDelete, Key: kv.Key(i), Done: func(kv.Result) {}})
			st.Submit(c, &kv.Request{Op: kv.OpUpdate, Key: kv.Key(i + 1000), Value: kv.Value(i+1000, 1, 600), Done: func(kv.Result) {}})
		}
		items := st.ScanN(c, kv.Key(40), 50)
		for _, it := range items {
			n := kv.KeyNum(it.Key)
			want := kv.Value(n, 1, 600)
			if !bytes.Equal(it.Value, want) {
				t.Fatalf("scan returned wrong bytes for key %d", n)
			}
		}
	})
}
