package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

// simHarness runs fn as a client proc against a fresh KVell store inside a
// simulation and returns the store for post-run inspection.
func simHarness(t *testing.T, cfg func(*Config), fn func(c env.Ctx, st *Store)) (*Store, *device.MemStore) {
	t.Helper()
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	ms := device.NewMemStore()
	disk := device.NewSimDisk(s, device.Optane(), ms)
	c := DefaultConfig(disk)
	if cfg != nil {
		cfg(&c)
	}
	st, err := Open(e, c)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	e.Go("client", func(c env.Ctx) {
		fn(c, st)
		st.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return st, ms
}

func TestPutGetDeleteSim(t *testing.T) {
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 500; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		for i := int64(0); i < 500; i++ {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 500)) {
				t.Fatalf("Get(%d): ok=%v", i, ok)
			}
		}
		if _, ok := st.Get(c, []byte("nope")); ok {
			t.Fatal("found missing key")
		}
		if !st.Delete(c, kv.Key(7)) {
			t.Fatal("delete existing returned false")
		}
		if st.Delete(c, kv.Key(7)) {
			t.Fatal("double delete returned true")
		}
		if _, ok := st.Get(c, kv.Key(7)); ok {
			t.Fatal("deleted key still readable")
		}
	})
}

func TestOverwriteReturnsLatest(t *testing.T) {
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		k := kv.Key(1)
		for v := uint64(1); v <= 20; v++ {
			st.Put(c, k, kv.Value(1, v, 700))
			got, ok := st.Get(c, k)
			if !ok || !bytes.Equal(got, kv.Value(1, v, 700)) {
				t.Fatalf("version %d lost", v)
			}
		}
	})
}

func TestSizeClassMigration(t *testing.T) {
	st, _ := simHarness(t, nil, func(c env.Ctx, st *Store) {
		k := kv.Key(42)
		sizes := []int{40, 400, 1500, 40, 6000, 100, 20000, 333}
		for v, n := range sizes {
			st.Put(c, k, kv.Value(42, uint64(v), n))
			got, ok := st.Get(c, k)
			if !ok || len(got) != n {
				t.Fatalf("after resize to %d: ok=%v len=%d", n, ok, len(got))
			}
			if !bytes.Equal(got, kv.Value(42, uint64(v), n)) {
				t.Fatalf("value mismatch at size %d", n)
			}
		}
	})
	// Migrations must free old slots back to free lists eventually.
	var freed int64
	for _, w := range st.workers {
		for _, sl := range w.slabs {
			freed += sl.Free.Freed()
		}
	}
	if freed == 0 {
		t.Fatal("class migration never freed a slot")
	}
}

func TestScanReturnsSortedWindow(t *testing.T) {
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 300; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 600))
		}
		items := st.ScanN(c, kv.Key(100), 50)
		if len(items) != 50 {
			t.Fatalf("scan returned %d items", len(items))
		}
		for j, it := range items {
			want := kv.Key(100 + int64(j))
			if !bytes.Equal(it.Key, want) {
				t.Fatalf("scan[%d] key = %q, want %q", j, it.Key, want)
			}
			if !bytes.Equal(it.Value, kv.Value(100+int64(j), 1, 600)) {
				t.Fatalf("scan[%d] wrong value", j)
			}
		}
		// Range form.
		items = st.ScanRange(c, kv.Key(10), kv.Key(15))
		if len(items) != 5 {
			t.Fatalf("range scan returned %d", len(items))
		}
	})
}

func TestScanSeesLatestValues(t *testing.T) {
	simHarness(t, nil, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 50; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		st.Put(c, kv.Key(25), kv.Value(25, 2, 500))
		items := st.ScanN(c, kv.Key(25), 1)
		if len(items) != 1 || !bytes.Equal(items[0].Value, kv.Value(25, 2, 500)) {
			t.Fatal("scan did not observe latest value")
		}
	})
}

func TestFreeSlotReuseBoundsGrowth(t *testing.T) {
	st, _ := simHarness(t, nil, func(c env.Ctx, st *Store) {
		// Insert, delete, reinsert repeatedly into one class.
		for round := 0; round < 5; round++ {
			for i := int64(0); i < 100; i++ {
				st.Put(c, kv.Key(i), kv.Value(i, uint64(round), 600))
			}
			if round < 4 {
				for i := int64(0); i < 100; i++ {
					st.Delete(c, kv.Key(i))
				}
			}
		}
	})
	stats := st.Stats()
	if stats.FreeReused == 0 {
		t.Fatal("free slots never reused")
	}
	// Appends bounded: 1024-stride slots, 100 live items, 5 rounds. With
	// reuse (N=64 heads per slab), total fresh slots must be far below
	// 500.
	var fresh uint64
	for _, w := range st.workers {
		for _, sl := range w.slabs {
			fresh += sl.Slots()
		}
	}
	if fresh > 320 {
		t.Fatalf("%d fresh slots allocated for 100 live items over 5 rounds; free-list reuse ineffective", fresh)
	}
}

// The simHarness doesn't expose a pre-Start hook, so bulk-load coverage
// lives in its own test with explicit assembly.
func TestBulkLoadExplicit(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	st, err := Open(e, DefaultConfig(disk))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]kv.Item, 2000)
	for i := range items {
		items[i] = kv.Item{Key: kv.Key(int64(i)), Value: kv.Value(int64(i), 0, 900)}
	}
	if err := st.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	st.Start()
	e.Go("client", func(c env.Ctx) {
		for i := int64(0); i < 2000; i += 13 {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 0, 900)) {
				t.Errorf("Get(%d) after bulk load: ok=%v", i, ok)
				return
			}
		}
		items := st.ScanN(c, kv.Key(0), 100)
		if len(items) != 100 {
			t.Errorf("scan after bulk load: %d items", len(items))
		}
		st.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := st.Stats().Items; got != 2000 {
		t.Fatalf("Items = %d", got)
	}
}

// TestRandomizedOracle drives mixed operations of many sizes against a
// model map, then validates every key, exercising in-place updates, class
// migration, deletes, reuse and multi-page items together.
func TestRandomizedOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	type val struct {
		ver  uint64
		size int
	}
	oracle := map[int64]val{}
	st, ms := simHarness(t, func(c *Config) { c.Workers = 3; c.PageCachePages = 64 }, func(c env.Ctx, st *Store) {
		var ver uint64
		for op := 0; op < 4000; op++ {
			i := int64(r.Intn(200))
			switch r.Intn(10) {
			case 0, 1:
				if _, ok := oracle[i]; ok {
					st.Delete(c, kv.Key(i))
					delete(oracle, i)
				}
			case 2, 3, 4, 5:
				ver++
				size := []int{30, 200, 700, 1800, 5000, 12000}[r.Intn(6)]
				st.Put(c, kv.Key(i), kv.Value(i, ver, size))
				oracle[i] = val{ver, size}
			default:
				v, ok := st.Get(c, kv.Key(i))
				w, wok := oracle[i]
				if ok != wok {
					t.Fatalf("op %d: Get(%d) present=%v want %v", op, i, ok, wok)
				}
				if ok && !bytes.Equal(v, kv.Value(i, w.ver, w.size)) {
					t.Fatalf("op %d: Get(%d) wrong bytes (ver %d size %d)", op, i, w.ver, w.size)
				}
			}
		}
		for i, w := range oracle {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, w.ver, w.size)) {
				t.Fatalf("final check: key %d ok=%v", i, ok)
			}
		}
	})
	_ = st
	_ = ms
}

func TestRecoveryRebuildsEverything(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	type val struct {
		ver  uint64
		size int
	}
	oracle := map[int64]val{}
	var ver uint64
	// Phase 1: run a workload, then stop cleanly.
	_, ms := simHarness(t, func(c *Config) { c.Workers = 2 }, func(c env.Ctx, st *Store) {
		for op := 0; op < 1500; op++ {
			i := int64(r.Intn(120))
			switch r.Intn(6) {
			case 0:
				if _, ok := oracle[i]; ok {
					st.Delete(c, kv.Key(i))
					delete(oracle, i)
				}
			default:
				ver++
				size := []int{100, 700, 1600, 9000}[r.Intn(4)]
				st.Put(c, kv.Key(i), kv.Value(i, ver, size))
				oracle[i] = val{ver, size}
			}
		}
	})

	// Phase 2: open a brand-new store over the same backing bytes (as
	// after a crash: all in-memory state lost) and recover.
	s2 := sim.New(2)
	e2 := sim.NewEnv(s2, 8)
	disk2 := device.NewSimDisk(s2, device.Optane(), ms)
	cfg := DefaultConfig(disk2)
	cfg.Workers = 2
	st2, err := Open(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.Go("recover-client", func(c env.Ctx) {
		if err := st2.Recover(c); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		st2.Start()
		for i, w := range oracle {
			v, ok := st2.Get(c, kv.Key(i))
			if !ok {
				t.Errorf("key %d missing after recovery", i)
				return
			}
			if !bytes.Equal(v, kv.Value(i, w.ver, w.size)) {
				t.Errorf("key %d wrong bytes after recovery", i)
				return
			}
		}
		// Deleted keys must stay deleted.
		for i := int64(0); i < 120; i++ {
			if _, ok := oracle[i]; ok {
				continue
			}
			if _, found := st2.Get(c, kv.Key(i)); found {
				t.Errorf("deleted key %d resurrected by recovery", i)
				return
			}
		}
		// New writes must keep working (append cursors restored).
		st2.Put(c, kv.Key(500), kv.Value(500, 1, 900))
		if v, ok := st2.Get(c, kv.Key(500)); !ok || !bytes.Equal(v, kv.Value(500, 1, 900)) {
			t.Error("write after recovery failed")
		}
		st2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if st2.Stats().Items != int64(len(oracle))+1 {
		t.Fatalf("recovered item count %d, want %d", st2.Stats().Items, len(oracle)+1)
	}
}

func TestRealEnvEndToEnd(t *testing.T) {
	e := env.NewReal()
	ms := device.NewMemStore()
	disk := device.NewRealDisk(ms, 4, false)
	cfg := DefaultConfig(disk)
	cfg.Workers = 3
	st, err := Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	errCh := make(chan error, 1)
	e.Go("client", func(c env.Ctx) {
		defer close(errCh)
		for i := int64(0); i < 300; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		for i := int64(0); i < 300; i++ {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 500)) {
				errCh <- fmt.Errorf("get %d failed", i)
				return
			}
		}
		items := st.ScanN(c, kv.Key(50), 20)
		if len(items) != 20 {
			errCh <- fmt.Errorf("scan returned %d", len(items))
			return
		}
		st.Stop(c)
	})
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	e.Wait()
	disk.Close()
}

func TestRealEnvFileBackedRecovery(t *testing.T) {
	dir := t.TempDir()
	fs, err := device.OpenFileStore(dir + "/kvell.dat")
	if err != nil {
		t.Fatal(err)
	}
	// Session 1: write, stop.
	{
		e := env.NewReal()
		disk := device.NewRealDisk(fs, 2, false)
		cfg := DefaultConfig(disk)
		cfg.Workers = 2
		cfg.WorkerRegionPages = 1 << 18 // keep file offsets modest
		st, err := Open(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.Start()
		done := make(chan struct{})
		e.Go("client", func(c env.Ctx) {
			defer close(done)
			for i := int64(0); i < 200; i++ {
				st.Put(c, kv.Key(i), kv.Value(i, 3, 700))
			}
			st.Delete(c, kv.Key(5))
			st.Stop(c)
		})
		<-done
		e.Wait()
		disk.Close()
	}
	// Session 2: recover from the file and verify.
	{
		e := env.NewReal()
		disk := device.NewRealDisk(fs, 2, false)
		cfg := DefaultConfig(disk)
		cfg.Workers = 2
		cfg.WorkerRegionPages = 1 << 18
		st, err := Open(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 1)
		e.Go("client", func(c env.Ctx) {
			defer close(errCh)
			if err := st.Recover(c); err != nil {
				errCh <- err
				return
			}
			st.Start()
			for i := int64(0); i < 200; i++ {
				v, ok := st.Get(c, kv.Key(i))
				if i == 5 {
					if ok {
						errCh <- fmt.Errorf("deleted key 5 resurrected")
					}
					continue
				}
				if !ok || !bytes.Equal(v, kv.Value(i, 3, 700)) {
					errCh <- fmt.Errorf("key %d wrong after file recovery", i)
					return
				}
			}
			st.Stop(c)
		})
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		e.Wait()
		disk.Close()
	}
	fs.Close()
}

func TestLocationEncoding(t *testing.T) {
	for _, c := range []struct {
		class int
		slot  uint64
	}{{0, 0}, {5, 12345}, {8, 1<<56 - 1}, {255, 42}} {
		l := loc(c.class, c.slot)
		if l.class() != c.class || l.slot() != c.slot {
			t.Fatalf("loc(%d,%d) roundtrip = (%d,%d)", c.class, c.slot, l.class(), l.slot())
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Open(env.NewReal(), Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bad := DefaultConfig(device.NewRealDisk(device.NewMemStore(), 1, false))
	bad.WorkerRegionPages = 16
	if _, err := Open(env.NewReal(), bad); err == nil {
		t.Fatal("tiny region accepted")
	}
}
