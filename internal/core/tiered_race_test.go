package core

import (
	"bytes"
	"testing"

	"kvell/internal/env"
	"kvell/internal/kv"
)

// Regression test for the hot-cache stale-admit race: a cold Get whose page
// read is in flight when a same-key Update is processed must not admit the
// PRE-update value into the hot cache after the update's write-through ran —
// that would leave the cache permanently stale (an acked update followed by
// reads of the old value). The tiered layer guards against it by
// invalidating in-flight admissions on write-through; this test drives the
// exact interleaving (cold read racing an update on one worker) and fails
// with a stale read if the guard is ever lost.
func TestHotCacheStaleAdmitRace(t *testing.T) {
	cfg := func(c *Config) {
		c.Workers = 1
		c.PageCachePages = 1 // evict aggressively so reads go async
		c.TieredHotBytes = 64 << 10
		c.TieredSeed = 7
	}
	st, _ := simHarness(t, cfg, func(c env.Ctx, st *Store) {
		k := kv.Key(1)
		st.Put(c, k, kv.Value(1, 1, 500))
		// Fill other pages so key 1's page leaves the tiny page cache.
		for i := int64(100); i < 200; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		// First cold read: ghost count 1 (PromoteAfter defaults to 2).
		if v, ok := st.Get(c, k); !ok || !bytes.Equal(v, kv.Value(1, 1, 500)) {
			t.Fatalf("setup read failed ok=%v", ok)
		}
		// Evict key 1's page again.
		for i := int64(100); i < 200; i++ {
			st.Get(c, kv.Key(i))
		}
		// Concurrently: a Get (goes async to disk, ghost hits threshold) and
		// an Update. The Get's completion admits the old value.
		v2 := kv.Value(1, 2, 500)
		burst(c, st, []*kv.Request{
			{Op: kv.OpGet, Key: k},
			{Op: kv.OpUpdate, Key: k, Value: v2},
		})
		got, ok := st.Get(c, k)
		if !ok {
			t.Fatalf("key lost")
		}
		if !bytes.Equal(got, v2) {
			t.Fatalf("STALE READ after acked update: got version-1 value (hot cache poisoned)")
		}
	})
	s := st.Stats()
	t.Logf("stats: hits=%d misses=%d promos=%d", s.HotHits, s.HotMisses, s.HotPromotions)
}
