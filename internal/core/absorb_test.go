package core

import (
	"bytes"
	"testing"

	"kvell/internal/env"
	"kvell/internal/kv"
)

// absorbCfg enables the write-absorption front end for a test store.
func absorbCfg(cfg *Config) {
	cfg.AbsorbInterval = 50 * env.Microsecond
}

// burst submits reqs without waiting, then blocks until every one has
// completed — so same-key requests are concurrently outstanding and can
// coalesce in the absorb buffer.
func burst(c env.Ctx, st *Store, reqs []*kv.Request) []kv.Result {
	results := make([]kv.Result, len(reqs))
	w := st.newWaiter()
	remaining := len(reqs)
	for i, r := range reqs {
		i := i
		r.Done = func(res kv.Result) {
			results[i] = res
			remaining--
			if remaining == 0 {
				w.complete(res)
			}
		}
		st.Submit(c, r)
	}
	w.wait(c)
	return results
}

func TestAbsorbCoalescesSameKey(t *testing.T) {
	const n = 64
	st, _ := simHarness(t, absorbCfg, func(c env.Ctx, st *Store) {
		st.Put(c, kv.Key(1), kv.Value(1, 0, 200)) // key exists before the burst
		reqs := make([]*kv.Request, n)
		for i := range reqs {
			reqs[i] = &kv.Request{Op: kv.OpUpdate, Key: kv.Key(1), Value: kv.Value(1, uint64(i+1), 200)}
		}
		for _, res := range burst(c, st, reqs) {
			if !res.Found {
				t.Fatal("absorbed update not acked Found")
			}
		}
		got, ok := st.Get(c, kv.Key(1))
		if !ok || !bytes.Equal(got, kv.Value(1, n, 200)) {
			t.Fatalf("last version lost (ok=%v)", ok)
		}
	})
	s := st.Stats()
	if s.Absorbed == 0 {
		t.Fatalf("burst of %d same-key puts absorbed nothing", n)
	}
	if s.AbsorbWrites >= n {
		t.Fatalf("no write reduction: %d surviving writes for %d puts", s.AbsorbWrites, n)
	}
}

func TestAbsorbPutThenDelete(t *testing.T) {
	st, _ := simHarness(t, absorbCfg, func(c env.Ctx, st *Store) {
		key := kv.Key(2)
		st.Put(c, key, kv.Value(2, 1, 100))
		res := burst(c, st, []*kv.Request{
			// Primers: the first write the worker pops goes to the idle
			// device directly, and so does the first of the next batch; the
			// writes behind them land in the absorb buffer.
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(2, 8, 100)},
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(2, 9, 100)},
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(2, 2, 100)},
			{Op: kv.OpDelete, Key: key},
		})
		if !res[2].Found || !res[3].Found {
			t.Fatalf("acks: update Found=%v delete Found=%v", res[2].Found, res[3].Found)
		}
		if _, ok := st.Get(c, key); ok {
			t.Fatal("deleted key still readable")
		}
	})
	if st.Stats().Absorbed == 0 {
		t.Fatal("delete did not absorb the buffered put")
	}
}

func TestAbsorbDeleteThenPut(t *testing.T) {
	simHarness(t, absorbCfg, func(c env.Ctx, st *Store) {
		key := kv.Key(3)
		st.Put(c, key, kv.Value(3, 1, 100))
		res := burst(c, st, []*kv.Request{
			{Op: kv.OpDelete, Key: key},
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(3, 2, 100)},
		})
		if !res[0].Found || !res[1].Found {
			t.Fatalf("acks: delete Found=%v update Found=%v", res[0].Found, res[1].Found)
		}
		got, ok := st.Get(c, key)
		if !ok || !bytes.Equal(got, kv.Value(3, 2, 100)) {
			t.Fatalf("put after buffered delete lost (ok=%v)", ok)
		}
	})
}

func TestAbsorbDeleteMissingKey(t *testing.T) {
	simHarness(t, absorbCfg, func(c env.Ctx, st *Store) {
		if st.Delete(c, kv.Key(99)) {
			t.Fatal("delete of missing key reported Found")
		}
	})
}

// TestAbsorbGetSeesBuffered drives a get behind a buffered write in one
// batch: the get must observe the in-memory version, not the stale slab.
func TestAbsorbGetSeesBuffered(t *testing.T) {
	simHarness(t, absorbCfg, func(c env.Ctx, st *Store) {
		key := kv.Key(4)
		st.Put(c, key, kv.Value(4, 1, 100))
		res := burst(c, st, []*kv.Request{
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(4, 8, 100)}, // primer
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(4, 9, 100)}, // primer
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(4, 2, 100)},
			{Op: kv.OpGet, Key: key},
			{Op: kv.OpDelete, Key: key},
			{Op: kv.OpGet, Key: key},
		})
		if !res[3].Found || !bytes.Equal(res[3].Value, kv.Value(4, 2, 100)) {
			t.Fatalf("get did not see buffered write (found=%v)", res[3].Found)
		}
		if res[5].Found {
			t.Fatal("get saw key past a buffered delete")
		}
	})
}

func TestAbsorbRMW(t *testing.T) {
	simHarness(t, absorbCfg, func(c env.Ctx, st *Store) {
		key := kv.Key(5)
		st.Put(c, key, kv.Value(5, 1, 100))
		res := burst(c, st, []*kv.Request{
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(5, 8, 100)}, // primer
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(5, 9, 100)}, // primer
			{Op: kv.OpUpdate, Key: key, Value: kv.Value(5, 2, 100)},
			{Op: kv.OpRMW, Key: key, Value: kv.Value(5, 3, 100)},
		})
		if !res[2].Found || !res[3].Found {
			t.Fatalf("acks: update Found=%v rmw Found=%v", res[2].Found, res[3].Found)
		}
		got, ok := st.Get(c, key)
		if !ok || !bytes.Equal(got, kv.Value(5, 3, 100)) {
			t.Fatalf("RMW result lost (ok=%v)", ok)
		}
	})
}

func TestAbsorbDisabledByDefault(t *testing.T) {
	st, _ := simHarness(t, nil, func(c env.Ctx, st *Store) {
		st.Put(c, kv.Key(6), kv.Value(6, 1, 100))
	})
	s := st.Stats()
	if s.Absorbed != 0 || s.AbsorbFlushes != 0 {
		t.Fatal("absorb counters moved with the front end disabled")
	}
}

func TestAbsorbRejectsSharedEverything(t *testing.T) {
	cfg := DefaultConfig(nil)
	cfg.Disks = cfg.Disks[:0]
	cfg.SharedEverything = true
	cfg.AbsorbInterval = env.Microsecond
	if err := cfg.validate(); err == nil {
		t.Fatal("validate accepted absorb + shared-everything")
	}
}

// drainEntry recycles e the way flushAbsorb does, without device I/O —
// enough to exercise the merge hot path in isolation.
func drainEntry(ab *absorber, e *absorbEntry) {
	delete(ab.index, e.hash)
	for i := range e.reqs {
		e.reqs[i] = nil
	}
	e.reqs = e.reqs[:0]
	e.heldAt = e.heldAt[:0]
	ab.entries = ab.entries[:0]
	ab.held = 0
	ab.release(e)
}

func TestAllocBudgetAbsorbMerge(t *testing.T) {
	ab := newAbsorber()
	reqs := make([]*kv.Request, 8)
	for i := range reqs {
		reqs[i] = &kv.Request{Op: kv.OpUpdate, Key: kv.Key(1), Value: kv.Value(1, uint64(i), 64)}
	}
	run := func() {
		for _, r := range reqs {
			if !ab.add(nil, r, 0) {
				t.Fatal("add refused")
			}
		}
		drainEntry(ab, ab.entries[0])
	}
	run() // warm the entry pool and slice capacities
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("absorb merge path allocates %.1f/op, want 0", n)
	}
}

func BenchmarkAbsorbMerge(b *testing.B) {
	ab := newAbsorber()
	reqs := make([]*kv.Request, 8)
	for i := range reqs {
		reqs[i] = &kv.Request{Op: kv.OpUpdate, Key: kv.Key(1), Value: kv.Value(1, uint64(i), 64)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab.add(nil, reqs[i%8], 0)
		if i%8 == 7 {
			drainEntry(ab, ab.entries[0])
		}
	}
}
