package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"kvell/internal/aio"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

func mvccCfg(c *Config) { c.MVCC = true }

// txnPut writes (key, value) through a single-key transaction (prewrite with
// the key as its own primary, then commit), returning the commit timestamp.
func txnPut(t *testing.T, c env.Ctx, st *Store, key, value []byte) uint64 {
	t.Helper()
	return txnWrite(t, c, st, key, value, false)
}

// txnDelete removes key through a single-key transaction.
func txnDelete(t *testing.T, c env.Ctx, st *Store, key []byte) uint64 {
	t.Helper()
	return txnWrite(t, c, st, key, nil, true)
}

func txnWrite(t *testing.T, c env.Ctx, st *Store, key, value []byte, del bool) uint64 {
	t.Helper()
	start := st.NextTS(c)
	res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: key, Value: value, TS: start, Aux: key, Del: del})
	if res.Txn != kv.TxnOK {
		t.Fatalf("prewrite(%q): txn status %d", key, res.Txn)
	}
	for {
		cts := st.NextTS(c)
		res = st.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: key, TS: start, TS2: cts})
		switch res.Txn {
		case kv.TxnOK:
			return res.TxnTS
		case kv.TxnRetry:
			continue // cts at or below a reader's watermark: refetch
		default:
			t.Fatalf("commit(%q): txn status %d", key, res.Txn)
		}
	}
}

func TestMVCCPlainOpsStillWork(t *testing.T) {
	st, _ := simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 200; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		for i := int64(0); i < 200; i++ {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 1, 500)) {
				t.Fatalf("Get(%d): ok=%v", i, ok)
			}
		}
		// Overwrites keep latest semantics.
		st.Put(c, kv.Key(3), kv.Value(3, 2, 500))
		if v, _ := st.Get(c, kv.Key(3)); !bytes.Equal(v, kv.Value(3, 2, 500)) {
			t.Fatal("overwrite lost")
		}
		// Deletes.
		if !st.Delete(c, kv.Key(7)) {
			t.Fatal("delete existing returned false")
		}
		if _, ok := st.Get(c, kv.Key(7)); ok {
			t.Fatal("deleted key still readable")
		}
		if st.Delete(c, kv.Key(7)) {
			t.Fatal("double delete returned true")
		}
		// RMW.
		res := st.Do(c, &kv.Request{Op: kv.OpRMW, Key: kv.Key(5), Value: kv.Value(5, 9, 300)})
		if !res.Found {
			t.Fatal("RMW on existing key not found")
		}
		if v, _ := st.Get(c, kv.Key(5)); !bytes.Equal(v, kv.Value(5, 9, 300)) {
			t.Fatal("RMW result lost")
		}
		// Scans unwrap envelopes.
		items := st.ScanN(c, kv.Key(100), 20)
		if len(items) != 20 {
			t.Fatalf("scan returned %d items", len(items))
		}
		for j, it := range items {
			if !bytes.Equal(it.Value, kv.Value(100+int64(j), 1, 500)) {
				t.Fatalf("scan[%d] wrong value", j)
			}
		}
	})
	// Plain single-version traffic must leave no multi-version state behind.
	if got := st.Stats().MVCCKeys; got != 0 {
		t.Fatalf("MVCCKeys = %d after plain ops, want 0", got)
	}
	if err := st.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCBulkLoadWrapsEnvelopes(t *testing.T) {
	s := sim.New(1)
	e := sim.NewEnv(s, 8)
	disk := device.NewSimDisk(s, device.Optane(), nil)
	cfg := DefaultConfig(disk)
	cfg.MVCC = true
	st, err := Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]kv.Item, 500)
	for i := range items {
		items[i] = kv.Item{Key: kv.Key(int64(i)), Value: kv.Value(int64(i), 0, 700)}
	}
	if err := st.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	st.Start()
	e.Go("client", func(c env.Ctx) {
		for i := int64(0); i < 500; i += 7 {
			v, ok := st.Get(c, kv.Key(i))
			if !ok || !bytes.Equal(v, kv.Value(i, 0, 700)) {
				t.Errorf("Get(%d) after bulk load: ok=%v", i, ok)
				return
			}
		}
		// Loaded versions committed at ts 1: visible at every snapshot >= 1.
		if v, ok := st.GetAt(c, kv.Key(3), st.SnapshotTS()); !ok || !bytes.Equal(v, kv.Value(3, 0, 700)) {
			t.Error("GetAt after bulk load failed")
		}
		st.Stop(c)
	})
	if err := s.Run(-1); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestMVCCSnapshotIsolation(t *testing.T) {
	simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		k := kv.Key(1)
		v1, v2 := kv.Value(1, 1, 400), kv.Value(1, 2, 400)
		cts1 := txnPut(t, c, st, k, v1)
		ts1 := st.SnapshotTS()
		cts2 := txnPut(t, c, st, k, v2)
		if cts2 <= cts1 || ts1 < cts1 || ts1 >= cts2 {
			t.Fatalf("timestamps out of order: cts1=%d ts1=%d cts2=%d", cts1, ts1, cts2)
		}
		// Old snapshot sees v1, fresh snapshot sees v2.
		if got, ok := st.GetAt(c, k, ts1); !ok || !bytes.Equal(got, v1) {
			t.Fatalf("GetAt(ts1): ok=%v wrong value", ok)
		}
		if got, ok := st.GetAt(c, k, st.SnapshotTS()); !ok || !bytes.Equal(got, v2) {
			t.Fatalf("GetAt(now): ok=%v wrong value", ok)
		}
		// Before the first commit: absent.
		if _, ok := st.GetAt(c, k, cts1-1); ok {
			t.Fatal("GetAt before first commit found a version")
		}
		// A transactional delete is invisible to older snapshots.
		ts2 := st.SnapshotTS()
		txnDelete(t, c, st, k)
		if got, ok := st.GetAt(c, k, ts2); !ok || !bytes.Equal(got, v2) {
			t.Fatal("snapshot read did not survive a later delete")
		}
		if _, ok := st.GetAt(c, k, st.SnapshotTS()); ok {
			t.Fatal("delete not visible at fresh snapshot")
		}
		if _, ok := st.Get(c, k); ok {
			t.Fatal("plain Get sees deleted key")
		}
	})
}

func TestMVCCSnapshotWalkAfterGCSettled(t *testing.T) {
	// After GC settles a key to one version (no table entry), snapshot reads
	// must still work through the cold on-disk path.
	simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		k := kv.Key(2)
		v := kv.Value(2, 1, 300)
		cts := txnPut(t, c, st, k, v)
		ts := st.SnapshotTS()
		if n := st.GC(c, ts); n != 0 {
			t.Fatalf("GC freed %d slots from a single-version key", n)
		}
		if st.Stats().MVCCKeys != 0 {
			t.Fatal("key still tracked after settling GC")
		}
		if got, ok := st.GetAt(c, k, ts); !ok || !bytes.Equal(got, v) {
			t.Fatal("cold snapshot read failed after GC")
		}
		if _, ok := st.GetAt(c, k, cts-1); ok {
			t.Fatal("cold snapshot read found version before its commit")
		}
	})
}

func TestMVCCTxnLockingAndResolution(t *testing.T) {
	simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		ka, kb := kv.Key(10), kv.Key(11)
		va, vb := kv.Value(10, 1, 200), kv.Value(11, 1, 200)
		txnPut(t, c, st, ka, kv.Value(10, 0, 200))

		// Prewrite both keys (ka primary) but do not commit yet.
		start := st.NextTS(c)
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: ka, Value: va, TS: start, Aux: ka}); res.Txn != kv.TxnOK {
			t.Fatalf("prewrite primary: %d", res.Txn)
		}
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: kb, Value: vb, TS: start, Aux: ka}); res.Txn != kv.TxnOK {
			t.Fatalf("prewrite secondary: %d", res.Txn)
		}
		// Duplicate prewrite is idempotent.
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: kb, Value: vb, TS: start, Aux: ka}); res.Txn != kv.TxnOK {
			t.Fatalf("duplicate prewrite: %d", res.Txn)
		}
		if st.PendingLocks() != 2 {
			t.Fatalf("PendingLocks = %d, want 2", st.PendingLocks())
		}

		// A snapshot reader hits the lock, resolves it as pending (recording
		// its read watermark), and then reads past it.
		rts := st.NextTS(c)
		res := st.Do(c, &kv.Request{Op: kv.OpTxnGet, Key: kb, TS: rts})
		if res.Txn != kv.TxnLocked || res.TxnTS != start || !bytes.Equal(res.Value, ka) {
			t.Fatalf("locked read: txn=%d ts=%d primary=%q", res.Txn, res.TxnTS, res.Value)
		}
		if res := st.ResolveLock(c, ka, start, rts); res.Txn != kv.TxnPending {
			t.Fatalf("resolve: %d", res.Txn)
		}
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnGet, Key: kb, TS: rts, TS2: start}); res.Txn != kv.TxnOK || res.Found {
			t.Fatalf("read past lock: txn=%d found=%v (kb has no committed version)", res.Txn, res.Found)
		}
		// GetAt performs the whole dance internally.
		if got, ok := st.GetAt(c, ka, rts); !ok || !bytes.Equal(got, kv.Value(10, 0, 200)) {
			t.Fatal("GetAt under pending lock did not serve the old version")
		}

		// Committing at or below the recorded watermark must be refused.
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: ka, TS: start, TS2: rts}); res.Txn != kv.TxnRetry {
			t.Fatalf("low commit: %d, want TxnRetry", res.Txn)
		}
		// A fresh commit timestamp lands.
		cts := st.NextTS(c)
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: ka, TS: start, TS2: cts}); res.Txn != kv.TxnOK {
			t.Fatalf("commit primary: %d", res.Txn)
		}
		// Resolve now reports committed; secondaries roll forward.
		rs := st.ResolveLock(c, ka, start, 0)
		if rs.Txn != kv.TxnCommitted || rs.TxnTS != cts {
			t.Fatalf("resolve after commit: %d at %d", rs.Txn, rs.TxnTS)
		}
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: kb, TS: start, TS2: rs.TxnTS}); res.Txn != kv.TxnOK {
			t.Fatalf("roll-forward secondary: %d", res.Txn)
		}
		if st.PendingLocks() != 0 {
			t.Fatal("locks remain after commit")
		}
		// The old reader's snapshot still excludes the new versions.
		if got, ok := st.GetAt(c, ka, rts); !ok || !bytes.Equal(got, kv.Value(10, 0, 200)) {
			t.Fatal("reader's snapshot moved after commit above its watermark")
		}
		if got, ok := st.GetAt(c, kb, st.SnapshotTS()); !ok || !bytes.Equal(got, vb) {
			t.Fatal("committed secondary not visible at fresh snapshot")
		}
	})
}

func TestMVCCWriteConflictAndRollback(t *testing.T) {
	simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		k := kv.Key(20)
		start := st.NextTS(c) // old snapshot
		txnPut(t, c, st, k, kv.Value(20, 1, 200))
		// First-committer-wins: a prewrite whose snapshot predates the
		// commit above must be refused.
		res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: k, Value: kv.Value(20, 2, 200), TS: start, Aux: k})
		if res.Txn != kv.TxnWriteConflict {
			t.Fatalf("stale prewrite: %d, want TxnWriteConflict", res.Txn)
		}

		// Prewrite then roll back: the intent disappears and the committed
		// version remains.
		s2 := st.NextTS(c)
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: k, Value: kv.Value(20, 3, 200), TS: s2, Aux: k}); res.Txn != kv.TxnOK {
			t.Fatalf("prewrite: %d", res.Txn)
		}
		// A second writer sees the lock.
		s3 := st.NextTS(c)
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: k, Value: kv.Value(20, 4, 200), TS: s3, Aux: k}); res.Txn != kv.TxnLocked {
			t.Fatalf("conflicting prewrite: %d, want TxnLocked", res.Txn)
		}
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: k, TS: s2}); res.Txn != kv.TxnOK {
			t.Fatalf("rollback: %d", res.Txn)
		}
		if st.PendingLocks() != 0 {
			t.Fatal("lock survives rollback")
		}
		if v, ok := st.Get(c, k); !ok || !bytes.Equal(v, kv.Value(20, 1, 200)) {
			t.Fatal("committed version damaged by rollback")
		}
		// Rollback of a committed transaction must refuse.
		cts := txnPut(t, c, st, k, kv.Value(20, 5, 200))
		last := lastStartTS(t, st, k)
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: k, TS: last}); res.Txn != kv.TxnCommitted || res.TxnTS != cts {
			t.Fatalf("rollback of committed txn: %d at %d, want TxnCommitted at %d", res.Txn, res.TxnTS, cts)
		}
	})
}

// lastStartTS reads the newest version's start timestamp through the version
// table (or the indexed envelope when the key is settled).
func lastStartTS(t *testing.T, st *Store, key []byte) uint64 {
	t.Helper()
	w := st.workerFor(key)
	if ks := w.mv.Get(key); ks != nil && len(ks.Versions) > 0 {
		return ks.Versions[0].StartTS
	}
	t.Fatal("no tracked version")
	return 0
}

func TestMVCCPlainWriteChainsBeneathIntent(t *testing.T) {
	// A plain autocommit on a locked key must not disturb the intent: it
	// becomes the newest committed version beneath it, and the transaction
	// still commits above it.
	simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		k := kv.Key(30)
		txnPut(t, c, st, k, kv.Value(30, 1, 200))
		start := st.NextTS(c)
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: k, Value: kv.Value(30, 2, 200), TS: start, Aux: k}); res.Txn != kv.TxnOK {
			t.Fatalf("prewrite: %d", res.Txn)
		}
		st.Put(c, k, kv.Value(30, 7, 200)) // plain write under the lock
		if v, ok := st.Get(c, k); !ok || !bytes.Equal(v, kv.Value(30, 7, 200)) {
			t.Fatal("plain write under lock not readable")
		}
		if st.PendingLocks() != 1 {
			t.Fatal("plain write disturbed the lock")
		}
		for {
			cts := st.NextTS(c)
			res := st.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: k, TS: start, TS2: cts})
			if res.Txn == kv.TxnRetry {
				continue
			}
			if res.Txn != kv.TxnOK {
				t.Fatalf("commit over plain write: %d", res.Txn)
			}
			break
		}
		if v, ok := st.Get(c, k); !ok || !bytes.Equal(v, kv.Value(30, 2, 200)) {
			t.Fatal("transaction's version not newest after commit")
		}
	})
}

func TestMVCCGCTrimsVersions(t *testing.T) {
	st, _ := simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		k := kv.Key(40)
		for v := uint64(1); v <= 4; v++ {
			txnPut(t, c, st, k, kv.Value(40, v, 300))
		}
		if st.Stats().MVCCKeys != 1 {
			t.Fatal("multi-version key not tracked")
		}
		wm := st.SnapshotTS()
		if n := st.GC(c, wm); n != 3 {
			t.Fatalf("GC freed %d slots, want 3", n)
		}
		if st.Stats().MVCCKeys != 0 {
			t.Fatal("settled key still tracked after GC")
		}
		if v, ok := st.Get(c, k); !ok || !bytes.Equal(v, kv.Value(40, 4, 300)) {
			t.Fatal("newest version damaged by GC")
		}
		// A settled transactional delete is purged entirely.
		txnDelete(t, c, st, k)
		if n := st.GC(c, st.SnapshotTS()); n < 1 {
			t.Fatal("GC did not purge the settled delete")
		}
		if _, ok := st.Get(c, k); ok {
			t.Fatal("deleted key readable after GC purge")
		}
	})
	if err := st.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCRecoveryRebuildsVersionsAndLocks(t *testing.T) {
	ka, kb, kc := kv.Key(50), kv.Key(51), kv.Key(52)
	var ctsA2 uint64
	var startPending uint64
	var tsMid uint64
	_, ms := simHarness(t, mvccCfg, func(c env.Ctx, st *Store) {
		txnPut(t, c, st, ka, kv.Value(50, 1, 300))
		tsMid = st.SnapshotTS()
		ctsA2 = txnPut(t, c, st, ka, kv.Value(50, 2, 300))
		txnPut(t, c, st, kc, kv.Value(52, 1, 300))
		// Leave a pending intent on kb (primary kb): crash before commit.
		startPending = st.NextTS(c)
		if res := st.Do(c, &kv.Request{Op: kv.OpTxnPrewrite, Key: kb, Value: kv.Value(51, 1, 300), TS: startPending, Aux: kb}); res.Txn != kv.TxnOK {
			t.Fatalf("prewrite: %d", res.Txn)
		}
	})

	// Open a brand-new store over the same bytes and recover.
	s2 := sim.New(2)
	e2 := sim.NewEnv(s2, 8)
	disk2 := device.NewSimDisk(s2, device.Optane(), ms)
	cfg := DefaultConfig(disk2)
	cfg.MVCC = true
	st2, err := Open(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.Go("recover-client", func(c env.Ctx) {
		if err := st2.Recover(c); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		st2.Start()
		if got := st2.PendingLocks(); got != 1 {
			t.Errorf("PendingLocks after recovery = %d, want 1", got)
		}
		// The oracle floor must exceed every recovered timestamp.
		if ts := st2.NextTS(c); ts <= ctsA2 || ts <= startPending {
			t.Errorf("post-recovery ts %d not above recovered %d/%d", ts, ctsA2, startPending)
		}
		// Settle the crash-pending intent: the primary never committed, so
		// it rolls back.
		if n := st2.ResolveIntents(c); n != 1 {
			t.Errorf("ResolveIntents settled %d intents, want 1", n)
		}
		if st2.PendingLocks() != 0 {
			t.Error("intent survives settlement")
		}
		if _, ok := st2.Get(c, kb); ok {
			t.Error("rolled-back intent left data behind")
		}
		// Committed versions survive with their history.
		if v, ok := st2.Get(c, ka); !ok || !bytes.Equal(v, kv.Value(50, 2, 300)) {
			t.Error("newest committed version lost")
		}
		if v, ok := st2.GetAt(c, ka, tsMid); !ok || !bytes.Equal(v, kv.Value(50, 1, 300)) {
			t.Error("older version lost by recovery")
		}
		if v, ok := st2.Get(c, kc); !ok || !bytes.Equal(v, kv.Value(52, 1, 300)) {
			t.Error("single-version key lost")
		}
		st2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if err := st2.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
	if err := st2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCVersionChainStress churns put/delete/put cycles — transactional and
// plain — over a small key set across GC checkpoints, then audits that no
// slot is reachable from two live version chains (the satellite guard for the
// previous-version links through the freelist/slab layer).
func TestMVCCVersionChainStress(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	model := map[string][]byte{}
	st, ms := simHarness(t, func(c *Config) { c.MVCC = true; c.Workers = 2 }, func(c env.Ctx, st *Store) {
		keys := make([][]byte, 6)
		for i := range keys {
			keys[i] = kv.Key(int64(60 + i))
		}
		var ver uint64
		for round := 0; round < 12; round++ {
			for op := 0; op < 30; op++ {
				k := keys[r.Intn(len(keys))]
				ver++
				switch r.Intn(5) {
				case 0: // transactional delete
					if _, ok := model[string(k)]; ok {
						txnDelete(t, c, st, k)
						delete(model, string(k))
					}
				case 1: // plain delete
					if _, ok := model[string(k)]; ok {
						st.Delete(c, k)
						delete(model, string(k))
					}
				case 2: // plain put
					v := kv.Value(int64(op), ver, 100+r.Intn(400))
					st.Put(c, k, v)
					model[string(k)] = v
				default: // transactional put
					v := kv.Value(int64(op), ver, 100+r.Intn(400))
					txnPut(t, c, st, k, v)
					model[string(k)] = v
				}
			}
			// Checkpoint: trim everything settled at the current snapshot.
			st.GC(c, st.SnapshotTS())
		}
		for ks, want := range model {
			v, ok := st.Get(c, []byte(ks))
			if !ok || !bytes.Equal(v, want) {
				t.Fatalf("key %q diverged from model (ok=%v)", ks, ok)
			}
		}
	})
	if err := st.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Recover from the same bytes: the chains must rebuild consistently.
	s2 := sim.New(3)
	e2 := sim.NewEnv(s2, 8)
	disk2 := device.NewSimDisk(s2, device.Optane(), ms)
	cfg := DefaultConfig(disk2)
	cfg.MVCC = true
	cfg.Workers = 2
	st2, err := Open(e2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2.Go("recover-client", func(c env.Ctx) {
		if err := st2.Recover(c); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		st2.Start()
		st2.ResolveIntents(c)
		for ks, want := range model {
			v, ok := st2.Get(c, []byte(ks))
			if !ok || !bytes.Equal(v, want) {
				t.Errorf("key %q diverged after recovery (ok=%v)", ks, ok)
				return
			}
		}
		st2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if err := st2.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCAbsorbComposition(t *testing.T) {
	// Write absorption + MVCC: absorbed plain writes are wrapped at flush,
	// transaction operations bypass the buffer.
	st, _ := simHarness(t, func(c *Config) {
		c.MVCC = true
		c.AbsorbInterval = 20 * env.Microsecond
	}, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 50; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 300))
		}
		for i := int64(0); i < 50; i++ {
			if v, ok := st.Get(c, kv.Key(i)); !ok || !bytes.Equal(v, kv.Value(i, 1, 300)) {
				t.Fatalf("Get(%d) failed under absorb+mvcc", i)
			}
		}
		txnPut(t, c, st, kv.Key(5), kv.Value(5, 9, 300))
		if v, ok := st.Get(c, kv.Key(5)); !ok || !bytes.Equal(v, kv.Value(5, 9, 300)) {
			t.Fatal("txn write lost under absorb")
		}
	})
	if err := st.CheckMVCC(); err != nil {
		t.Fatal(err)
	}
}

func TestMVCCConfigRejectsIncompatibleVariants(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.SharedEverything = true },
		func(c *Config) { c.TieredHotBytes = 1 << 20 },
		func(c *Config) { c.WithCommitLog = true },
	} {
		cfg := DefaultConfig(device.NewRealDisk(device.NewMemStore(), 1, false))
		cfg.MVCC = true
		mod(&cfg)
		if err := cfg.validate(); err == nil {
			t.Fatal("validate accepted an incompatible MVCC combination")
		}
	}
}

// TestAllocBudgetMVCCRead pins the single-version MVCC read path (version
// table miss, warm page cache) at zero allocations per operation — the
// tentpole's "single-version reads stay on the 0-alloc path" requirement.
func TestAllocBudgetMVCCRead(t *testing.T) {
	e := env.NewReal()
	disk := device.NewRealDisk(device.NewMemStore(), 1, false)
	cfg := DefaultConfig(disk)
	cfg.MVCC = true
	st, err := Open(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Start()
	errCh := make(chan error, 1)
	e.Go("client", func(c env.Ctx) {
		defer close(errCh)
		key := kv.Key(3)
		st.Put(c, key, kv.Value(3, 1, 100))
		w := st.workerFor(key)
		r := &kv.Request{Op: kv.OpGet, Key: key, Done: func(kv.Result) {}}
		var out []*aio.IO
		run := func() {
			w.mvccPlainGet(c, r, &out)
			if len(out) != 0 {
				errCh <- fmt.Errorf("read path issued I/O (page cache miss)")
			}
		}
		run() // warm: grows r.ValueBuf, faults the page into the cache
		if n := testing.AllocsPerRun(200, run); n != 0 {
			errCh <- fmt.Errorf("single-version MVCC read allocates %.1f/op, want 0", n)
			return
		}
		st.Stop(c)
	})
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	e.Wait()
	disk.Close()
}
