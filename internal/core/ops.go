package core

import (
	"kvell/internal/env"
	"kvell/internal/kv"
)

// waiter turns the asynchronous request interface into a blocking call for
// the calling thread.
type waiter struct {
	mu   env.Mutex
	cond env.Cond
	done bool
	res  kv.Result
}

func (s *Store) newWaiter() *waiter {
	w := &waiter{mu: s.env.NewMutex()}
	w.cond = s.env.NewCond(w.mu)
	return w
}

func (w *waiter) complete(res kv.Result) {
	w.mu.Lock(nil)
	w.res = res
	w.done = true
	w.mu.Unlock(nil)
	w.cond.Broadcast(nil)
}

func (w *waiter) wait(c env.Ctx) kv.Result {
	w.mu.Lock(c)
	for !w.done {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
	return w.res
}

// Do submits r and blocks the calling thread until it completes.
func (s *Store) Do(c env.Ctx, r *kv.Request) kv.Result {
	w := s.newWaiter()
	prev := r.Done
	r.Done = func(res kv.Result) {
		if prev != nil {
			prev(res)
		}
		w.complete(res)
	}
	s.Submit(c, r)
	return w.wait(c)
}

// Put durably stores value under key, blocking until the write has reached
// its final location on disk (§4.4: updates are acknowledged only then).
func (s *Store) Put(c env.Ctx, key, value []byte) {
	s.Do(c, &kv.Request{Op: kv.OpUpdate, Key: key, Value: value})
}

// Get returns the most recent value of key.
func (s *Store) Get(c env.Ctx, key []byte) ([]byte, bool) {
	res := s.Do(c, &kv.Request{Op: kv.OpGet, Key: key})
	return res.Value, res.Found
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(c env.Ctx, key []byte) bool {
	return s.Do(c, &kv.Request{Op: kv.OpDelete, Key: key}).Found
}
