package core

import (
	"bytes"
	"fmt"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

// TestCrashDurabilityAtArbitraryPoints is the §4.4 guarantee test: an
// update acknowledged by KVell must survive a crash at ANY later instant,
// with no commit log to replay. The simulation is stopped at a range of
// virtual times mid-workload; a fresh store recovers from the surviving
// bytes and every acknowledged version must be readable (an unacknowledged
// newer version is also acceptable — it may have reached disk).
func TestCrashDurabilityAtArbitraryPoints(t *testing.T) {
	const keys = 40
	const valSize = 700
	for _, crashAt := range []env.Time{
		3 * env.Millisecond,
		7 * env.Millisecond,
		16 * env.Millisecond,
		33 * env.Millisecond,
		71 * env.Millisecond,
	} {
		crashAt := crashAt
		t.Run(fmt.Sprint(crashAt), func(t *testing.T) {
			s := sim.New(int64(crashAt)) // vary seed with crash point
			e := sim.NewEnv(s, 4)
			ms := device.NewMemStore()
			disk := device.NewSimDisk(s, device.Optane(), ms)
			cfg := DefaultConfig(disk)
			cfg.Workers = 2
			st, err := Open(e, cfg)
			if err != nil {
				t.Fatal(err)
			}
			st.Start()

			acked := make([]uint64, keys)     // newest acknowledged version per key
			submitted := make([]uint64, keys) // newest submitted version per key
			e.Go("client", func(c env.Ctx) {
				var ver uint64
				for round := 0; ; round++ {
					for i := int64(0); i < keys; i++ {
						i := i
						ver++
						v := ver
						submitted[i] = v
						st.Submit(c, &kv.Request{
							Op: kv.OpUpdate, Key: kv.Key(i), Value: kv.Value(i, v, valSize),
							Done: func(kv.Result) {
								if v > acked[i] {
									acked[i] = v
								}
							},
						})
					}
					c.Sleep(500 * env.Microsecond)
				}
			})
			// CRASH: stop the world at crashAt; everything in memory is lost.
			if err := s.Run(crashAt); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover on fresh everything over the surviving bytes.
			s2 := sim.New(int64(crashAt) + 1)
			e2 := sim.NewEnv(s2, 4)
			disk2 := device.NewSimDisk(s2, device.Optane(), ms)
			cfg2 := cfg
			cfg2.Disks = []device.Disk{disk2}
			st2, err := Open(e2, cfg2)
			if err != nil {
				t.Fatal(err)
			}
			e2.Go("verify", func(c env.Ctx) {
				if err := st2.Recover(c); err != nil {
					t.Errorf("recover: %v", err)
					return
				}
				st2.Start()
				for i := int64(0); i < keys; i++ {
					if acked[i] == 0 {
						continue // never acknowledged; any state is legal
					}
					v, ok := st2.Get(c, kv.Key(i))
					if !ok {
						t.Errorf("crash@%s: key %d acked at version %d but missing after recovery",
							fmt.Sprint(crashAt), i, acked[i])
						return
					}
					// The recovered value must be SOME version in
					// [acked, submitted] — acknowledged data can never
					// roll back.
					matched := false
					for ver := acked[i]; ver <= submitted[i]; ver++ {
						if bytes.Equal(v, kv.Value(i, ver, valSize)) {
							matched = true
							break
						}
					}
					if !matched {
						t.Errorf("crash@%s: key %d recovered to a version older than acked %d",
							fmt.Sprint(crashAt), i, acked[i])
						return
					}
				}
				st2.Stop(c)
			})
			if err := s2.Run(-1); err != nil {
				t.Fatal(err)
			}
			s2.Close()
		})
	}
}
