package core

import (
	"bytes"
	"testing"

	"kvell/internal/env"
	"kvell/internal/kv"
)

func tieredCfg(c *Config) {
	c.TieredHotBytes = 64 << 10 // 16 slots/worker at the default 1KB slot
	c.TieredSeed = 99
}

// TestTieredReadYourWrites drives keys through the full promotion
// lifecycle — cold read, promotion, hot hit, write-through, delete — and
// checks that every read observes the latest write throughout.
func TestTieredReadYourWrites(t *testing.T) {
	st, _ := simHarness(t, tieredCfg, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 40; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		// Two cold reads promote (PromoteAfter defaults to 2); later reads
		// must hit the hot tier and still see every subsequent version.
		for v := uint64(1); v <= 5; v++ {
			for i := int64(0); i < 40; i++ {
				got, ok := st.Get(c, kv.Key(i))
				if !ok || !bytes.Equal(got, kv.Value(i, v, 500)) {
					t.Fatalf("key %d version %d: ok=%v stale read", i, v, ok)
				}
			}
			for i := int64(0); i < 40; i++ {
				st.Put(c, kv.Key(i), kv.Value(i, v+1, 500))
			}
		}
		for i := int64(0); i < 40; i++ {
			if !st.Delete(c, kv.Key(i)) {
				t.Fatalf("delete %d failed", i)
			}
			if _, ok := st.Get(c, kv.Key(i)); ok {
				t.Fatalf("key %d readable after delete", i)
			}
		}
	})
	s := st.Stats()
	if s.HotPromotions == 0 || s.HotHits == 0 {
		t.Fatalf("hot tier never engaged: %+v", s)
	}
	if s.HotMisses == 0 {
		t.Fatalf("expected cold misses before promotion: %+v", s)
	}
}

// TestTieredWithAbsorb runs tiering above the write-absorption front end:
// buffered writes must stay invisible to the hot tier's consumers (the
// absorb buffer serves them) and the flush's write-through must land.
func TestTieredWithAbsorb(t *testing.T) {
	cfg := func(c *Config) {
		tieredCfg(c)
		c.AbsorbInterval = 100 * env.Microsecond
	}
	st, _ := simHarness(t, cfg, func(c env.Ctx, st *Store) {
		for i := int64(0); i < 32; i++ {
			st.Put(c, kv.Key(i), kv.Value(i, 1, 500))
		}
		// Promote everything.
		for pass := 0; pass < 3; pass++ {
			for i := int64(0); i < 32; i++ {
				st.Get(c, kv.Key(i))
			}
		}
		// Concurrent same-key writes + reads through the absorb buffer.
		for round := uint64(2); round < 6; round++ {
			reqs := make([]*kv.Request, 0, 48)
			for i := int64(0); i < 16; i++ {
				reqs = append(reqs, &kv.Request{Op: kv.OpUpdate, Key: kv.Key(i), Value: kv.Value(i, round, 500)})
			}
			for i := int64(0); i < 32; i++ {
				reqs = append(reqs, &kv.Request{Op: kv.OpGet, Key: kv.Key(i)})
			}
			burst(c, st, reqs)
			for i := int64(0); i < 16; i++ {
				got, ok := st.Get(c, kv.Key(i))
				if !ok || !bytes.Equal(got, kv.Value(i, round, 500)) {
					t.Fatalf("round %d key %d: stale read after absorb flush", round, i)
				}
			}
		}
	})
	s := st.Stats()
	if s.HotHits == 0 {
		t.Fatalf("hot tier never hit under absorb: %+v", s)
	}
	if s.Absorbed == 0 && s.AbsorbFlushes == 0 {
		t.Fatalf("absorb front end never engaged: %+v", s)
	}
}

func TestTieredRejectsSharedEverything(t *testing.T) {
	cfg := DefaultConfig(nil)
	cfg.SharedEverything = true
	cfg.TieredHotBytes = 1 << 20
	if err := cfg.validate(); err == nil {
		t.Fatal("validate accepted SharedEverything + tiering")
	}
}

func TestTieredDefaults(t *testing.T) {
	simHarness(t, func(c *Config) { c.TieredHotBytes = 1 << 20 }, func(c env.Ctx, st *Store) {
		cfg := st.Config()
		if cfg.TieredSlotBytes != 1024 || cfg.TieredHalfLife != 100*env.Millisecond || cfg.TieredPromoteAfter != 2 {
			t.Fatalf("tiering defaults not applied: %+v", cfg)
		}
	})
}
