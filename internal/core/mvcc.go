package core

// MVCC mode (Config.MVCC): every slot value is wrapped in an mvcc.Envelope
// carrying the writing transaction's start and commit timestamps, a chain
// pointer to the previous version's slot, and — for prewrite intents — the
// primary lock key. Committed versions are ordinary live slots; superseded
// versions stay live (chained through PrevLoc) until garbage collection
// tombstones them through the normal free-list path, so crash recovery and
// replication treat them exactly like any other data.
//
// Each worker keeps an in-memory mvcc.Table covering only the keys in the
// uncheckpointed window: keys with a pending intent or more than one retained
// version. Every other key — the steady-state overwhelming majority — has no
// table entry, and its reads take the pre-MVCC zero-allocation path plus an
// envelope-header strip.
//
// The commit of an intent is an in-place byte patch (kind byte + commit
// timestamp inside the envelope): one atomic page write, no slot movement, no
// index update. The flip page rides the ordinary write path, so group commit,
// absorption batching, cluster replication and crash settlement all apply to
// transactional writes unchanged.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"kvell/internal/aio"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/freelist"
	"kvell/internal/kv"
	"kvell/internal/mvcc"
	"kvell/internal/slab"
)

// maxChainWalk bounds on-disk PrevLoc chain walks (defense against a cycle
// introduced by slot reuse; retained chains are far shorter).
const maxChainWalk = 32

// ---------------------------------------------------------------------------
// Envelope encode/decode plumbing

// envScratch returns a pooled envelope-encode buffer. Buffers are released at
// the point slab.EncodeItem consumes them (synchronously on cache hits and
// fresh appends, inside the page-read continuation on misses), so concurrent
// writes each hold a distinct buffer and the steady state allocates nothing.
func (w *worker) envScratch() []byte {
	if n := len(w.envFree); n > 0 {
		b := w.envFree[n-1]
		w.envFree = w.envFree[:n-1]
		return b
	}
	return make([]byte, 0, 256)
}

func (w *worker) releaseEnv(b []byte) {
	w.envFree = append(w.envFree, b[:0])
}

// decodeEnv decodes the slot at data[off:] as a live envelope record. ok is
// false when the slot is not live, holds a different key than expect (freed
// and reused since the caller's lookup), or does not decode as an envelope.
// The returned views alias data.
func (w *worker) decodeEnv(c env.Ctx, sl *slab.Slab, off int, expect, data []byte) (mvcc.Envelope, bool) {
	view := data
	if !sl.MultiPage() {
		view = data[off : off+sl.Stride]
	}
	d, err := sl.DecodeSlotView(view)
	if err != nil || d.Kind != slab.Live || (expect != nil && !bytes.Equal(d.Item.Key, expect)) {
		return mvcc.Envelope{}, false
	}
	c.CPU(costs.MemBytes(len(d.Item.Value)))
	return mvcc.Decode(d.Item.Value)
}

// readEnv reads the slot at l and delivers its decoded envelope to fn. The
// envelope's views are valid only for the duration of fn.
func (w *worker) readEnv(c env.Ctx, expect []byte, l location, fn func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO), out *[]*aio.IO) {
	sl := w.slabs[l.class()]
	slot := l.slot()
	if sl.MultiPage() {
		buf := make([]byte, sl.PagesPerSlot()*device.PageSize)
		io := w.getIO(c)
		io.Op = device.Read
		io.Page = sl.SlotPage(slot)
		io.Buf = buf
		io.Tag = ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
			e, ok := w.decodeEnv(c, sl, 0, expect, io.Buf)
			fn(c, e, ok, out)
		})
		*out = append(*out, io)
		return
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	c.CPU(w.cache.LookupCost())
	if data := w.cache.Get(page); data != nil {
		e, ok := w.decodeEnv(c, sl, off, expect, data)
		fn(c, e, ok, out)
		return
	}
	w.readPage(c, page, func(c env.Ctx, data []byte, out *[]*aio.IO) {
		e, ok := w.decodeEnv(c, sl, off, expect, data)
		fn(c, e, ok, out)
	}, out)
}

// respondEnvValue copies e.Value into r's scratch buffer and answers r.
func (w *worker) respondEnvValue(c env.Ctx, r *kv.Request, e *mvcc.Envelope, status uint8) {
	n := len(e.Value)
	c.CPU(costs.MemBytes(n))
	var val []byte
	if r.ValueBuf != nil && cap(r.ValueBuf) >= n {
		val = r.ValueBuf[:n]
	} else {
		val = make([]byte, n)
		r.ValueBuf = val
	}
	copy(val, e.Value)
	w.respond(c, r, kv.Result{Found: true, Value: val, Txn: status})
}

// ---------------------------------------------------------------------------
// Envelope write path

// writeEnvelope stores e as key's value in a fresh (or free-list) slot and
// returns its location; done runs once the slot is durable. Unlike doUpdate
// it never overwrites in place and never tombstones a previous location —
// superseded versions stay live for snapshot readers until GC. The caller
// owns the index update.
func (w *worker) writeEnvelope(c env.Ctx, key []byte, e *mvcc.Envelope, done func(env.Ctx, *[]*aio.IO), out *[]*aio.IO) location {
	b := w.envScratch()
	b = mvcc.AppendEncode(b, e)
	cls := slab.ClassFor(w.st.cfg.Classes, len(key), len(b))
	if cls < 0 {
		panic("core: mvcc envelope exceeds largest configured size class")
	}
	sl := w.slabs[cls]
	slot, reused := sl.Alloc()
	sl.Live++
	ts := w.nextTS()
	c.CPU(costs.MemBytes(len(key) + len(b)))

	if sl.MultiPage() {
		big := make([]byte, sl.PagesPerSlot()*device.PageSize)
		if err := sl.EncodeItem(big, ts, key, b); err != nil {
			panic(err)
		}
		w.releaseEnv(b)
		writeSlot := func(c env.Ctx, out *[]*aio.IO) {
			w.writePage(c, sl.SlotPage(slot), big, done, out)
		}
		if reused {
			w.readPage(c, sl.SlotPage(slot), func(c env.Ctx, data []byte, out *[]*aio.IO) {
				w.recoverChain(sl, data[:slab.HeaderSize+8])
				w.cacheRemove(sl.SlotPage(slot)) // page belongs to a multi-page slot
				writeSlot(c, out)
			}, out)
			return loc(cls, slot)
		}
		writeSlot(c, out)
		return loc(cls, slot)
	}

	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	apply := func(c env.Ctx, data []byte) {
		if reused {
			w.recoverChain(sl, data[off:off+sl.Stride])
		}
		if err := sl.EncodeItem(data[off:off+sl.Stride], ts, key, b); err != nil {
			panic(err)
		}
		w.releaseEnv(b) // consumed by the page image
	}
	if !reused && sl.AppendPageFresh(slot) {
		data := w.zeroPageBuf()
		apply(c, data)
		w.cacheInsert(c, page, data)
		if prev, ok := w.tailPage[cls]; ok {
			w.cache.Unpin(prev)
		}
		w.cache.Pin(page)
		w.tailPage[cls] = page
		w.writePage(c, page, data, done, out)
		return loc(cls, slot)
	}
	w.applyToPage(c, page, apply, done, out)
	return loc(cls, slot)
}

// freeSlot tombstones the slot at l (free-list push included) and calls done
// (which may be nil) once the tombstone is durable.
func (w *worker) freeSlot(c env.Ctx, l location, done func(env.Ctx, *[]*aio.IO), out *[]*aio.IO) {
	sl := w.slabs[l.class()]
	slot := l.slot()
	chainTo, chained := sl.Free.Push(slot)
	if !chained {
		chainTo = freelist.NoSlot
	}
	sl.Live--
	ts := w.nextTS()
	if sl.MultiPage() {
		data := w.zeroPageBuf()
		sl.EncodeTombstone(data, ts, chainTo)
		w.cacheRemove(sl.SlotPage(slot))
		w.writePage(c, sl.SlotPage(slot), data, done, out)
		w.retireBuf(data)
		return
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	w.applyToPage(c, page, func(c env.Ctx, data []byte) {
		sl.EncodeTombstone(data[off:off+sl.Stride], ts, chainTo)
	}, done, out)
}

// patchEnvelope flips the envelope at the head of a slot's value region
// (which starts right after the slab header and key) from intent to
// committed: only the kind byte and commit-timestamp field change, so the
// slab header — including the per-page timestamps a multi-page tear check
// validates — is untouched.
func patchEnvelope(slotBuf []byte, klen int, kind byte, cts uint64) {
	p := slab.HeaderSize + klen
	slotBuf[p] = kind
	binary.LittleEndian.PutUint64(slotBuf[p+9:p+17], cts)
}

// flipIntent commits the intent at lk.IntentLoc in place with one atomic
// page write; done runs once the flip is durable — the transaction's commit
// point when key is the primary.
func (w *worker) flipIntent(c env.Ctx, key []byte, lk *mvcc.Lock, cts uint64, done func(env.Ctx, *[]*aio.IO), out *[]*aio.IO) {
	l := location(lk.IntentLoc)
	sl := w.slabs[l.class()]
	slot := l.slot()
	kind := byte(mvcc.KindCommitPut)
	if lk.Del {
		kind = mvcc.KindCommitDelete
	}
	if !sl.MultiPage() {
		page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
		w.applyToPage(c, page, func(c env.Ctx, data []byte) {
			patchEnvelope(data[off:off+sl.Stride], len(key), kind, cts)
		}, done, out)
		return
	}
	// Multi-page slot: the envelope header sits in page 0's payload right
	// after the key, so the flip is still one single-page atomic write.
	if slab.HeaderSize+len(key)+mvcc.HeaderSize > device.PageSize {
		panic("core: mvcc flip: key too large to patch within the slot's first page")
	}
	pg := sl.SlotPage(slot)
	io := w.getIO(c)
	io.Op = device.Read
	io.Page = pg
	io.Buf = w.pageBuf()
	io.Tag = ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
		buf := io.Buf
		patchEnvelope(buf, len(key), kind, cts)
		w.writePage(c, pg, buf, func(c env.Ctx, out *[]*aio.IO) {
			w.retireBuf(buf)
			done(c, out)
		}, out)
	})
	*out = append(*out, io)
}

// ---------------------------------------------------------------------------
// Plain operations under MVCC (non-transactional autocommits)

// writeBack funnels a plain durable write: the MVCC autocommit path when
// versioning is on, the ordinary slab update otherwise. The absorb flush
// uses it so group-committed writes are envelope-wrapped too.
func (w *worker) writeBack(c env.Ctx, key, value []byte, done func(env.Ctx, *[]*aio.IO), out *[]*aio.IO) {
	if w.mv != nil {
		w.mvccUpdate(c, key, value, done, out)
		return
	}
	w.doUpdate(c, key, value, done, out)
}

// deleteBack is writeBack's counterpart for deletes.
func (w *worker) deleteBack(c env.Ctx, key []byte, done func(env.Ctx, *[]*aio.IO), out *[]*aio.IO) bool {
	if w.mv != nil {
		return w.mvccDeleteKey(c, key, done, out)
	}
	return w.deleteKey(c, key, done, out)
}

// mvccUpdate is the plain-update path in MVCC mode: an autocommit at a fresh
// oracle timestamp. Single-version keys (no table entry) take the ordinary
// doUpdate machinery — in-place overwrite, class migration, old-slot
// tombstone — because no snapshot can name their old version through a
// retained chain; multi-version keys get a chained new slot instead, and the
// superseded version stays live for snapshot readers until GC. A pending
// intent is left untouched: the autocommit chains beneath it as the newest
// committed version (the transaction, if it commits, wins with its larger
// commit timestamp — plain writes make no first-committer-wins promise).
func (w *worker) mvccUpdate(c env.Ctx, key, value []byte, done func(env.Ctx, *[]*aio.IO), out *[]*aio.IO) {
	cts := w.st.oracle.Next(c.Now())
	ks := w.mv.Get(key)
	if ks == nil {
		e := mvcc.Envelope{Kind: mvcc.KindCommitPut, StartTS: cts, CommitTS: cts, PrevLoc: mvcc.NoLoc, Value: value}
		b := w.envScratch()
		b = mvcc.AppendEncode(b, &e)
		w.doUpdate(c, key, b, func(c env.Ctx, out *[]*aio.IO) {
			w.releaseEnv(b)
			done(c, out)
		}, out)
		return
	}
	prev := uint64(mvcc.NoLoc)
	if len(ks.Versions) > 0 {
		prev = ks.Versions[0].Loc
	}
	e := mvcc.Envelope{Kind: mvcc.KindCommitPut, StartTS: cts, CommitTS: cts, PrevLoc: prev, Value: value}
	nl := w.writeEnvelope(c, key, &e, done, out)
	ks.Insert(mvcc.Version{CommitTS: cts, StartTS: cts, Loc: uint64(nl)})
	if ks.Lock == nil {
		// Under a lock the index keeps naming the intent slot.
		w.indexPut(c, key, nl)
	}
}

// mvccDelete answers a plain OpDelete in MVCC mode.
func (w *worker) mvccDelete(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	if !w.mvccDeleteKey(c, r.Key, func(c env.Ctx, out *[]*aio.IO) {
		w.respond(c, r, kv.Result{Found: true})
	}, out) {
		w.respond(c, r, kv.Result{})
	}
}

// mvccDeleteKey is the plain-delete path in MVCC mode: single-version keys
// are removed outright (index delete + tombstone, as without MVCC);
// multi-version keys get a chained committed-delete envelope so older
// snapshots keep reading the prior version until GC purges the key.
func (w *worker) mvccDeleteKey(c env.Ctx, key []byte, done func(env.Ctx, *[]*aio.IO), out *[]*aio.IO) bool {
	ks := w.mv.Get(key)
	if ks == nil {
		return w.deleteKey(c, key, done, out)
	}
	exists := len(ks.Versions) > 0 && !ks.Versions[0].Del
	if !exists {
		return false
	}
	cts := w.st.oracle.Next(c.Now())
	e := mvcc.Envelope{Kind: mvcc.KindCommitDelete, StartTS: cts, CommitTS: cts, PrevLoc: ks.Versions[0].Loc}
	nl := w.writeEnvelope(c, key, &e, done, out)
	ks.Insert(mvcc.Version{CommitTS: cts, StartTS: cts, Loc: uint64(nl), Del: true})
	if ks.Lock == nil {
		w.indexPut(c, key, nl)
	}
	return true
}

// respondPlainEnv finishes a latest-semantics read: intents and committed
// deletes read as absent.
func (w *worker) respondPlainEnv(c env.Ctx, r *kv.Request, e *mvcc.Envelope, ok bool) {
	if !ok || e.Intent() || e.Delete() {
		w.respond(c, r, kv.Result{})
		return
	}
	w.respondEnvValue(c, r, e, kv.TxnOK)
}

// mvccPlainGet answers a plain OpGet in MVCC mode: the newest committed
// version, silently reading past any pending intent. The common case — no
// table entry — is a map miss followed by the pre-MVCC read path with an
// envelope strip, and stays allocation-free on a warm cache.
func (w *worker) mvccPlainGet(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	if ks := w.mv.Get(r.Key); ks != nil && ks.Lock != nil {
		if len(ks.Versions) == 0 || ks.Versions[0].Del {
			w.respond(c, r, kv.Result{})
			return
		}
		w.readVersion(c, r, ks.Versions[0], kv.TxnOK, out)
		return
	}
	l, ok := w.lookup(c, r.Key)
	if !ok {
		w.respond(c, r, kv.Result{})
		return
	}
	sl := w.slabs[l.class()]
	if !sl.MultiPage() {
		slot := l.slot()
		page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
		c.CPU(w.cache.LookupCost())
		if data := w.cache.Get(page); data != nil {
			e, ok := w.decodeEnv(c, sl, off, nil, data)
			w.respondPlainEnv(c, r, &e, ok)
			return
		}
		w.readPage(c, page, func(c env.Ctx, data []byte, out *[]*aio.IO) {
			e, ok := w.decodeEnv(c, sl, off, nil, data)
			w.respondPlainEnv(c, r, &e, ok)
		}, out)
		return
	}
	w.readEnv(c, nil, l, func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
		w.respondPlainEnv(c, r, &e, ok)
	}, out)
}

// readVersion delivers the version v of r.Key, trusting the table: the slot's
// envelope kind is ignored because a freshly committed version's slot may
// still carry its intent kind while the flip write is in flight (the
// in-memory publish happens only after the flip is durable, so v being listed
// proves the commit).
func (w *worker) readVersion(c env.Ctx, r *kv.Request, v mvcc.Version, status uint8, out *[]*aio.IO) {
	if v.Del {
		w.respond(c, r, kv.Result{Txn: status})
		return
	}
	w.readEnv(c, r.Key, location(v.Loc), func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
		if !ok {
			w.respond(c, r, kv.Result{Txn: status})
			return
		}
		w.respondEnvValue(c, r, &e, status)
	}, out)
}

// mvccRMW is the YCSB-F read-modify-write under MVCC: read the newest
// committed version (discarded), then autocommit the new value.
func (w *worker) mvccRMW(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	write := func(c env.Ctx, out *[]*aio.IO) {
		w.mvccUpdate(c, r.Key, r.Value, func(c env.Ctx, out *[]*aio.IO) {
			w.respond(c, r, kv.Result{Found: true})
		}, out)
	}
	if ks := w.mv.Get(r.Key); ks != nil {
		if len(ks.Versions) == 0 || ks.Versions[0].Del {
			w.respond(c, r, kv.Result{})
			return
		}
		w.readEnv(c, r.Key, location(ks.Versions[0].Loc), func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
			write(c, out)
		}, out)
		return
	}
	l, ok := w.lookup(c, r.Key)
	if !ok {
		w.respond(c, r, kv.Result{})
		return
	}
	w.readEnv(c, r.Key, l, func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
		if !ok || e.Intent() || e.Delete() {
			w.respond(c, r, kv.Result{})
			return
		}
		write(c, out)
	}, out)
}

// ---------------------------------------------------------------------------
// Transaction operations

// startMVCC dispatches a request in MVCC mode: plain operations take their
// autocommit variants, transaction operations their handlers.
func (w *worker) startMVCC(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	switch r.Op {
	case kv.OpGet:
		w.mvccPlainGet(c, r, out)
	case kv.OpUpdate:
		w.mvccUpdate(c, r.Key, r.Value, func(c env.Ctx, out *[]*aio.IO) {
			w.respond(c, r, kv.Result{Found: true})
		}, out)
	case kv.OpDelete:
		w.mvccDelete(c, r, out)
	case kv.OpRMW:
		w.mvccRMW(c, r, out)
	default:
		w.startTxn(c, r, out)
	}
}

// startTxn dispatches an OpTxn* request (empty result when MVCC is off).
func (w *worker) startTxn(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	if w.mv == nil {
		w.respond(c, r, kv.Result{})
		return
	}
	switch r.Op {
	case kv.OpTxnGet:
		w.txnGet(c, r, out)
	case kv.OpTxnPrewrite:
		w.txnPrewrite(c, r, out)
	case kv.OpTxnCommit:
		w.txnCommit(c, r, out)
	case kv.OpTxnResolve:
		w.txnResolve(c, r, out)
	case kv.OpTxnRollback:
		w.txnRollback(c, r, out)
	case kv.OpTxnGC:
		w.txnGC(c, r, out)
	default:
		w.respond(c, r, kv.Result{})
	}
}

// respondLocked hands a pending lock to the reader/writer for client-side
// resolution; Result.Value carries the primary key.
func (w *worker) respondLocked(c env.Ctx, r *kv.Request, lk *mvcc.Lock) {
	val := append(r.ValueBuf[:0], lk.Primary...)
	r.ValueBuf = val
	w.respond(c, r, kv.Result{Value: val, Txn: kv.TxnLocked, TxnTS: lk.StartTS})
}

// txnGet is the snapshot read at r.TS. It never parks and never blocks the
// write path: a pending lock is returned to the client (TxnLocked) for
// resolution rather than waited on.
func (w *worker) txnGet(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	rts := r.TS
	ks := w.mv.Get(r.Key)
	if ks == nil {
		l, ok := w.lookup(c, r.Key)
		if !ok {
			w.respond(c, r, kv.Result{})
			return
		}
		w.snapshotWalk(c, r, l, 0, out)
		return
	}
	if lk := ks.Lock; lk != nil && lk.StartTS <= rts {
		switch {
		case lk.CommitTS != 0 && lk.CommitTS <= rts:
			// Commit decided inside this snapshot, flip I/O still in flight.
			if !bytes.Equal(lk.Primary, r.Key) {
				// Secondary: the primary's flip is already durable (the
				// manager touches secondaries only after the primary ack),
				// so the intent value is committed state.
				w.readVersion(c, r, mvcc.Version{CommitTS: lk.CommitTS, StartTS: lk.StartTS,
					Loc: lk.IntentLoc, Del: lk.Del}, kv.TxnOK, out)
				return
			}
			// Primary mid-flip: not durable yet — have the reader retry
			// rather than serve a value a crash could still revoke.
			w.respond(c, r, kv.Result{Txn: kv.TxnRetry, TxnTS: lk.CommitTS})
			return
		case lk.CommitTS == 0 && r.TS2 != lk.StartTS:
			// Pending and unresolved: hand the lock to the reader.
			w.respondLocked(c, r, lk)
			return
		}
		// Committing above the snapshot, or resolved-as-pending (TS2 match,
		// the primary has recorded our read timestamp): read past the lock.
	}
	v, ok := ks.VisibleAt(rts)
	if !ok {
		w.respond(c, r, kv.Result{})
		return
	}
	w.readVersion(c, r, v, kv.TxnOK, out)
}

// snapshotWalk serves a snapshot read for a key with no table entry by
// walking the on-disk PrevLoc chain from location l toward older versions.
// Keys written only by autocommits retain no chain (their updates recycle the
// slot), so a too-new head simply reads as absent at old snapshots — the
// snapshot guarantee covers transactionally written keys.
func (w *worker) snapshotWalk(c env.Ctx, r *kv.Request, l location, depth int, out *[]*aio.IO) {
	w.readEnv(c, r.Key, l, func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
		if !ok {
			w.respond(c, r, kv.Result{})
			return
		}
		if e.Intent() {
			// A lock materialized between the table probe and this read; its
			// KeyState exists now — re-dispatch through the in-memory path.
			w.txnGet(c, r, out)
			return
		}
		if e.CommitTS <= r.TS {
			if e.Delete() {
				w.respond(c, r, kv.Result{})
				return
			}
			w.respondEnvValue(c, r, &e, kv.TxnOK)
			return
		}
		if e.PrevLoc == mvcc.NoLoc || depth >= maxChainWalk {
			w.respond(c, r, kv.Result{})
			return
		}
		w.snapshotWalk(c, r, location(e.PrevLoc), depth+1, out)
	}, out)
}

// txnPrewrite installs a percolator intent for the transaction that started
// at r.TS. A cold key (no table entry) first reads its current envelope so
// the write-write conflict check can compare commit timestamps.
func (w *worker) txnPrewrite(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	ks := w.mv.Get(r.Key)
	if ks == nil {
		l, ok := w.lookup(c, r.Key)
		if ok {
			w.readEnv(c, r.Key, l, func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
				ks := w.mv.Get(r.Key)
				if ks == nil {
					ks = w.mv.Ensure(r.Key)
					if ok && e.Committed() {
						ks.Versions = append(ks.Versions, mvcc.Version{
							CommitTS: e.CommitTS, StartTS: e.StartTS, Loc: uint64(l), Del: e.Delete()})
					}
				}
				w.prewriteLocked(c, r, ks, out)
			}, out)
			return
		}
		ks = w.mv.Ensure(r.Key)
	}
	w.prewriteLocked(c, r, ks, out)
}

// prewriteLocked runs the prewrite checks against in-memory state and, when
// they pass, writes the intent slot; TxnOK is reported only once the intent
// is durable.
func (w *worker) prewriteLocked(c env.Ctx, r *kv.Request, ks *mvcc.KeyState, out *[]*aio.IO) {
	if lk := ks.Lock; lk != nil {
		if lk.StartTS == r.TS {
			// Duplicate prewrite (client retry): the intent is in place.
			w.respond(c, r, kv.Result{Found: true, Txn: kv.TxnOK})
			return
		}
		w.respondLocked(c, r, lk)
		return
	}
	if len(ks.Versions) > 0 && ks.Versions[0].CommitTS > r.TS {
		// A version committed after this transaction's snapshot:
		// first-committer-wins says we lose.
		w.respond(c, r, kv.Result{Txn: kv.TxnWriteConflict, TxnTS: ks.Versions[0].CommitTS})
		return
	}
	prev := uint64(mvcc.NoLoc)
	if len(ks.Versions) > 0 {
		prev = ks.Versions[0].Loc
	}
	kind := byte(mvcc.KindIntentPut)
	if r.Del {
		kind = mvcc.KindIntentDelete
	}
	e := mvcc.Envelope{Kind: kind, StartTS: r.TS, PrevLoc: prev, Primary: r.Aux, Value: r.Value}
	nl := w.writeEnvelope(c, r.Key, &e, func(c env.Ctx, out *[]*aio.IO) {
		w.respond(c, r, kv.Result{Found: true, Txn: kv.TxnOK})
	}, out)
	w.indexPut(c, r.Key, nl)
	ks.Lock = &mvcc.Lock{
		StartTS:   r.TS,
		Primary:   append([]byte(nil), r.Aux...),
		IntentLoc: uint64(nl),
		Del:       r.Del,
	}
}

// txnCommit flips the intent installed at start timestamp r.TS to a
// committed version at commit timestamp r.TS2. On the primary key the
// durable flip is the transaction's atomic commit point; the in-memory
// version is published (and the lock released) only then, which is what lets
// snapshot readers trust the table.
func (w *worker) txnCommit(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	cts := r.TS2
	ks := w.mv.Get(r.Key)
	if ks == nil || ks.Lock == nil || ks.Lock.StartTS != r.TS {
		// No matching intent: already committed (duplicate or roll-forward
		// retry) or rolled back.
		if ks != nil {
			if v, ok := ks.VersionAt(r.TS); ok {
				w.respond(c, r, kv.Result{Found: true, Txn: kv.TxnOK, TxnTS: v.CommitTS})
				return
			}
			w.respond(c, r, kv.Result{Txn: kv.TxnAborted})
			return
		}
		// Table entry gone (GC after commit): consult the indexed envelope.
		l, ok := w.lookup(c, r.Key)
		if !ok {
			w.respond(c, r, kv.Result{Txn: kv.TxnAborted})
			return
		}
		w.readEnv(c, r.Key, l, func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
			if ok && e.Committed() && e.StartTS == r.TS {
				w.respond(c, r, kv.Result{Found: true, Txn: kv.TxnOK, TxnTS: e.CommitTS})
				return
			}
			w.respond(c, r, kv.Result{Txn: kv.TxnAborted})
		}, out)
		return
	}
	lk := ks.Lock
	if lk.CommitTS != 0 {
		// A flip for this intent is already in flight; let the caller retry
		// until the durable publish resolves it one way or the other.
		w.respond(c, r, kv.Result{Txn: kv.TxnRetry, TxnTS: lk.CommitTS})
		return
	}
	if bytes.Equal(lk.Primary, r.Key) && cts <= lk.MaxReadTS {
		// A reader with a snapshot at or above cts already read past this
		// lock; committing at cts would insert a version inside that
		// reader's past. The manager must fetch a fresh timestamp — the
		// oracle's monotonicity makes the refetched value exceed every
		// MaxReadTS recorded so far.
		w.respond(c, r, kv.Result{Txn: kv.TxnRetry, TxnTS: lk.MaxReadTS})
		return
	}
	lk.CommitTS = cts // commit decided; visibility still gated on durability
	w.flipIntent(c, r.Key, lk, cts, func(c env.Ctx, out *[]*aio.IO) {
		ks.Lock = nil
		ks.Insert(mvcc.Version{CommitTS: cts, StartTS: lk.StartTS, Loc: lk.IntentLoc, Del: lk.Del})
		w.respond(c, r, kv.Result{Found: true, Txn: kv.TxnOK, TxnTS: cts})
	}, out)
}

// txnResolve reports the primary key's transaction state. While the
// transaction is pending, the inquirer's snapshot timestamp (r.TS2) is
// recorded as MaxReadTS so the eventual commit cannot slide beneath a read
// that already happened; the inquirer may then read past the lock.
func (w *worker) txnResolve(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	ks := w.mv.Get(r.Key)
	if ks != nil && ks.Lock != nil && ks.Lock.StartTS == r.TS {
		lk := ks.Lock
		if lk.CommitTS != 0 {
			// Mid-flip: not yet durable, so neither "pending" (a bump would
			// be useless) nor "committed" (roll-forward would outrun the
			// primary). The inquirer retries shortly.
			w.respond(c, r, kv.Result{Txn: kv.TxnRetry, TxnTS: lk.CommitTS})
			return
		}
		if r.TS2 > lk.MaxReadTS {
			lk.MaxReadTS = r.TS2
		}
		w.respond(c, r, kv.Result{Txn: kv.TxnPending, TxnTS: lk.StartTS})
		return
	}
	if ks != nil {
		if v, ok := ks.VersionAt(r.TS); ok {
			w.respond(c, r, kv.Result{Txn: kv.TxnCommitted, TxnTS: v.CommitTS})
			return
		}
		w.respond(c, r, kv.Result{Txn: kv.TxnAborted})
		return
	}
	l, ok := w.lookup(c, r.Key)
	if !ok {
		w.respond(c, r, kv.Result{Txn: kv.TxnAborted})
		return
	}
	w.readEnv(c, r.Key, l, func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
		if ok && e.Committed() && e.StartTS == r.TS {
			w.respond(c, r, kv.Result{Txn: kv.TxnCommitted, TxnTS: e.CommitTS})
			return
		}
		w.respond(c, r, kv.Result{Txn: kv.TxnAborted})
	}, out)
}

// txnRollback removes the intent installed at start timestamp r.TS (lazy
// lock cleanup and the write-conflict abort path). A commit already in
// flight refuses the rollback.
func (w *worker) txnRollback(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	ks := w.mv.Get(r.Key)
	if ks == nil || ks.Lock == nil || ks.Lock.StartTS != r.TS {
		if ks != nil {
			if v, ok := ks.VersionAt(r.TS); ok {
				w.respond(c, r, kv.Result{Txn: kv.TxnCommitted, TxnTS: v.CommitTS})
				return
			}
		}
		w.respond(c, r, kv.Result{Txn: kv.TxnOK}) // nothing to undo
		return
	}
	lk := ks.Lock
	if lk.CommitTS != 0 {
		w.respond(c, r, kv.Result{Txn: kv.TxnCommitted, TxnTS: lk.CommitTS})
		return
	}
	ks.Lock = nil
	if len(ks.Versions) > 0 {
		w.indexPut(c, r.Key, location(ks.Versions[0].Loc))
	} else {
		w.indexDelete(c, r.Key)
		w.mv.Delete(r.Key)
	}
	w.freeSlot(c, location(lk.IntentLoc), func(c env.Ctx, out *[]*aio.IO) {
		w.respond(c, r, kv.Result{Found: true, Txn: kv.TxnOK})
	}, out)
}

// txnGC trims versions no snapshot at or above watermark r.TS can read.
// Callers must keep the watermark at or below the start timestamp of every
// unresolved transaction (a pending transaction's commit always lands above
// its own start, so such a watermark can never trim evidence a secondary
// still needs for roll-forward). Result.ScanN reports the slots freed.
func (w *worker) txnGC(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	wm := r.TS
	keys := w.mv.Keys(nil)
	c.CPU(env.Time(len(keys)) * costs.IterStep)
	freed := 0
	for _, k := range keys {
		kb := []byte(k)
		ks := w.mv.Get(kb)
		// Pivot: the newest version a snapshot at the watermark reads.
		// Everything older is unreachable by any snapshot we still serve.
		pivot := -1
		for i, v := range ks.Versions {
			if v.CommitTS <= wm {
				pivot = i
				break
			}
		}
		if pivot >= 0 {
			for _, v := range ks.Versions[pivot+1:] {
				w.freeSlot(c, location(v.Loc), nil, out)
				freed++
			}
			ks.Versions = ks.Versions[:pivot+1]
		}
		if ks.Lock != nil || len(ks.Versions) != 1 || ks.Versions[0].CommitTS > wm {
			continue
		}
		// Down to a single settled version: the key leaves the table. A
		// settled delete is purged entirely — index entry and slot.
		if ks.Versions[0].Del {
			w.indexDelete(c, kb)
			w.freeSlot(c, location(ks.Versions[0].Loc), nil, out)
			freed++
		}
		w.mv.Delete(kb)
	}
	w.respond(c, r, kv.Result{Found: true, Txn: kv.TxnOK, ScanN: freed})
}

// ---------------------------------------------------------------------------
// Store-level API: oracle, snapshot reads, scans, settlement

// Oracle returns the store's timestamp oracle (nil unless Config.MVCC).
func (s *Store) Oracle() *mvcc.Oracle { return s.oracle }

// NextTS fetches a fresh start/commit timestamp from the store's oracle.
func (s *Store) NextTS(c env.Ctx) uint64 { return s.oracle.Next(c.Now()) }

// SnapshotTS returns a timestamp at which a snapshot observes every
// transaction committed so far, without consuming one: any commit still in
// flight will fetch a strictly larger timestamp.
func (s *Store) SnapshotTS() uint64 { return s.oracle.Last() }

// GetAt performs a snapshot read of key as of timestamp ts, blocking the
// calling thread. Pending locks are resolved through their primary key —
// roll-forward, lazy cleanup, or a read-watermark bump that lets the read
// proceed past the lock — so the read never waits on a writer.
func (s *Store) GetAt(c env.Ctx, key []byte, ts uint64) ([]byte, bool) {
	var skip uint64
	bo := mvcc.NewBackoff(int64(kv.Hash64(key)^ts), 2*env.Microsecond, 256*env.Microsecond)
	for {
		res := s.Do(c, &kv.Request{Op: kv.OpTxnGet, Key: key, TS: ts, TS2: skip})
		switch res.Txn {
		case kv.TxnLocked:
			primary := append([]byte(nil), res.Value...)
			st := s.ResolveLock(c, primary, res.TxnTS, ts)
			switch st.Txn {
			case kv.TxnPending:
				skip = res.TxnTS // primary recorded our snapshot; read past
			case kv.TxnCommitted:
				s.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: key, TS: res.TxnTS, TS2: st.TxnTS})
				skip = 0
			case kv.TxnAborted:
				s.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: key, TS: res.TxnTS})
				skip = 0
			default: // mid-flip
				c.Sleep(bo.Next())
				skip = 0
			}
		case kv.TxnRetry:
			c.Sleep(bo.Next())
		default:
			return res.Value, res.Found
		}
	}
}

// ResolveLock queries the state of the transaction whose primary lock is on
// primary, recording rts as a read watermark while it is pending.
func (s *Store) ResolveLock(c env.Ctx, primary []byte, startTS, rts uint64) kv.Result {
	return s.Do(c, &kv.Request{Op: kv.OpTxnResolve, Key: primary, TS: startTS, TS2: rts})
}

// ScanAtN returns up to count items with key >= start as they stood at
// snapshot ts. Candidates come from one pass over the worker indexes; each is
// then read through the full snapshot machinery (lock resolution included),
// so the result never exposes a torn multi-key state. The scan runs on the
// calling thread and never blocks a worker.
func (s *Store) ScanAtN(c env.Ctx, start []byte, count int, ts uint64) []kv.Item {
	cands := s.collect(c, func(w *worker) ([][]byte, []uint64) {
		return w.idx.FirstN(start, count)
	})
	if len(cands) > count {
		cands = cands[:count]
	}
	var items []kv.Item
	for _, cd := range cands {
		if v, ok := s.GetAt(c, cd.key, ts); ok {
			items = append(items, kv.Item{Key: cd.key, Value: v})
		}
	}
	return items
}

// mvccRemapCands redirects latest-semantics scan candidates for keys in the
// version table: reads go to the newest committed version (never an intent),
// and keys whose newest committed version is a delete drop out.
func (s *Store) mvccRemapCands(cands []candidate) []candidate {
	out := cands[:0]
	for _, cd := range cands {
		if ks := cd.w.mv.Get(cd.key); ks != nil {
			if len(ks.Versions) == 0 || ks.Versions[0].Del {
				continue
			}
			cd.l = location(ks.Versions[0].Loc)
		}
		out = append(out, cd)
	}
	return out
}

// GC trims, on every worker, versions no snapshot at or above watermark can
// read (see txnGC for the watermark contract). It returns the number of
// slots freed.
func (s *Store) GC(c env.Ctx, watermark uint64) int {
	freed := 0
	for _, w := range s.workers {
		r := &kv.Request{Op: kv.OpTxnGC, Key: []byte("gc"), TS: watermark}
		wt := s.newWaiter()
		r.Done = wt.complete
		c.CPU(costs.Callback)
		w.q.Push(c, r)
		freed += wt.wait(c).ScanN
	}
	return freed
}

// PendingLocks returns how many keys currently hold a pending intent. Pure
// in-memory inspection for tests and settlement; safe whenever no worker is
// mutating (the simulation is cooperative).
func (s *Store) PendingLocks() int {
	n := 0
	for _, w := range s.workers {
		if w.mv == nil {
			continue
		}
		for _, k := range w.mv.Keys(nil) {
			if ks := w.mv.Get([]byte(k)); ks != nil && ks.Lock != nil {
				n++
			}
		}
	}
	return n
}

// ResolveIntents settles every intent left pending by a crash: each is
// resolved through its primary — rolled forward when the primary committed
// (its durable flip happened before any ack), rolled back otherwise. Call it
// after Recover and Start, before admitting new traffic. It returns the
// number of intents settled.
func (s *Store) ResolveIntents(c env.Ctx) int {
	type pend struct {
		key     string
		primary string
		startTS uint64
	}
	var pends []pend
	for _, w := range s.workers {
		if w.mv == nil {
			continue
		}
		for _, k := range w.mv.Keys(nil) {
			if ks := w.mv.Get([]byte(k)); ks != nil && ks.Lock != nil {
				pends = append(pends, pend{key: k, primary: string(ks.Lock.Primary), startTS: ks.Lock.StartTS})
			}
		}
	}
	sort.Slice(pends, func(i, j int) bool {
		if pends[i].key != pends[j].key {
			return pends[i].key < pends[j].key
		}
		return pends[i].startTS < pends[j].startTS
	})
	n := 0
	for _, p := range pends {
		kb := []byte(p.key)
		ks := s.workerFor(kb).mv.Get(kb)
		if ks == nil || ks.Lock == nil || ks.Lock.StartTS != p.startTS {
			continue // already settled through an earlier sibling
		}
		st := s.ResolveLock(c, []byte(p.primary), p.startTS, 0)
		switch st.Txn {
		case kv.TxnPending:
			// The primary intent never flipped, so the transaction never
			// reached its commit point: roll everything back, primary first.
			s.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: []byte(p.primary), TS: p.startTS})
			if p.key != p.primary {
				s.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: kb, TS: p.startTS})
			}
		case kv.TxnCommitted:
			s.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: kb, TS: p.startTS, TS2: st.TxnTS})
		default:
			s.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: kb, TS: p.startTS})
		}
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// Recovery

// recVer is one live envelope slot found during an MVCC recovery scan.
type recVer struct {
	loc      location
	hdrTS    uint64
	startTS  uint64
	commitTS uint64
	kind     byte
	primary  []byte // intents only (copied)
}

// mvccRecoverSlot records a scanned live slot for the post-scan rebuild. It
// returns false when the payload does not decode as an envelope (a torn
// sub-page payload); the caller then treats the slot as free space.
func (w *worker) mvccRecoverSlot(sl *slab.Slab, slotIdx uint64, d slab.Decoded) bool {
	e, ok := mvcc.Decode(d.Item.Value)
	if !ok {
		return false
	}
	rv := recVer{
		loc:      loc(sl.ClassIndex, slotIdx),
		hdrTS:    d.Item.Timestamp,
		startTS:  e.StartTS,
		commitTS: e.CommitTS,
		kind:     e.Kind,
	}
	if e.Intent() {
		rv.primary = append([]byte(nil), e.Primary...)
	}
	w.recMVCC[string(d.Item.Key)] = append(w.recMVCC[string(d.Item.Key)], rv)
	sl.Live++
	return true
}

// mvccFinishRecovery rebuilds the index and version table from the slots the
// scan collected: per key, the newest intent (arbitrated by the slot header
// timestamp — a rolled-back intent whose tombstone was lost decodes older
// than its successor) plus every committed version, newest first. Losing
// duplicates go back on the free list in memory only, exactly like the
// non-MVCC duplicate rule: after another crash the same arbitration repeats.
func (w *worker) mvccFinishRecovery() {
	keys := make([]string, 0, len(w.recMVCC))
	for k := range w.recMVCC {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vers := w.recMVCC[k]
		var intent *recVer
		committed := make([]recVer, 0, len(vers))
		for i := range vers {
			v := &vers[i]
			if v.commitTS > w.maxCommitTS {
				w.maxCommitTS = v.commitTS
			}
			if v.startTS > w.maxCommitTS {
				w.maxCommitTS = v.startTS
			}
			if v.kind == mvcc.KindIntentPut || v.kind == mvcc.KindIntentDelete {
				if intent == nil || v.hdrTS > intent.hdrTS {
					if intent != nil {
						w.dropRecovered(intent.loc)
					}
					intent = v
				} else {
					w.dropRecovered(v.loc)
				}
				continue
			}
			committed = append(committed, *v)
		}
		sort.Slice(committed, func(i, j int) bool {
			if committed[i].commitTS != committed[j].commitTS {
				return committed[i].commitTS > committed[j].commitTS
			}
			return committed[i].hdrTS > committed[j].hdrTS
		})
		kb := []byte(k)
		switch {
		case intent != nil:
			w.idx.Put(kb, uint64(intent.loc))
		case len(committed) > 0:
			w.idx.Put(kb, uint64(committed[0].loc))
		default:
			continue
		}
		// The table covers exactly the uncheckpointed window: a lock, more
		// than one retained version, or a not-yet-purged committed delete.
		if intent == nil && len(committed) == 1 && committed[0].kind != mvcc.KindCommitDelete {
			continue
		}
		ks := w.mv.Ensure(kb)
		if intent != nil {
			ks.Lock = &mvcc.Lock{
				StartTS:   intent.startTS,
				Primary:   intent.primary,
				IntentLoc: uint64(intent.loc),
				Del:       intent.kind == mvcc.KindIntentDelete,
			}
		}
		for _, v := range committed {
			ks.Versions = append(ks.Versions, mvcc.Version{
				CommitTS: v.commitTS,
				StartTS:  v.startTS,
				Loc:      uint64(v.loc),
				Del:      v.kind == mvcc.KindCommitDelete,
			})
		}
	}
	w.recMVCC = nil
}

// dropRecovered returns a recovery-losing slot to its free list (in memory
// only, like the non-MVCC duplicate rule).
func (w *worker) dropRecovered(l location) {
	sl := w.slabs[l.class()]
	sl.Free.PushHead(l.slot())
	sl.Live--
}

// ---------------------------------------------------------------------------
// Audit

// CheckMVCC audits the version/lock tables and on-disk version chains
// against the disk image — the MVCC counterpart of CheckConsistency, for the
// crash harness. Host-side only: call with no workers running.
//
// Invariants checked, per worker:
//   - every indexed slot decodes as a live envelope for its key;
//   - no slot is reachable from two different keys' PrevLoc chains;
//   - no free-list head aliases a chain-reachable slot;
//   - every table entry's lock points at a live intent with its start
//     timestamp, and its versions are ordered newest-first with live slots.
func (s *Store) CheckMVCC() error {
	if !s.cfg.MVCC {
		return nil
	}
	for _, w := range s.workers {
		if err := w.checkMVCC(); err != nil {
			return fmt.Errorf("worker %d: %w", w.id, err)
		}
	}
	return nil
}

func (w *worker) checkMVCC() error {
	st := storeOf(w.dev)
	readSlot := func(l location) (mvcc.Envelope, []byte, bool, error) {
		sl := w.slabs[l.class()]
		slot := l.slot()
		buf := make([]byte, sl.PagesPerSlot()*device.PageSize)
		if sl.MultiPage() {
			if err := st.ReadPages(sl.SlotPage(slot), buf); err != nil {
				return mvcc.Envelope{}, nil, false, err
			}
		} else {
			if err := st.ReadPages(sl.SlotPage(slot), buf); err != nil {
				return mvcc.Envelope{}, nil, false, err
			}
			off := sl.SlotOffset(slot)
			buf = buf[off : off+sl.Stride]
		}
		d, err := sl.DecodeSlot(buf)
		if err != nil || d.Kind != slab.Live {
			return mvcc.Envelope{}, nil, false, nil
		}
		e, ok := mvcc.Decode(d.Item.Value)
		if !ok {
			return mvcc.Envelope{}, nil, false, nil
		}
		return e, d.Item.Key, true, nil
	}

	// Chain ownership: walk every indexed key's PrevLoc chain; a slot
	// reachable from two different keys' chains means a version write
	// corrupted the previous-version links.
	owner := make(map[location]string)
	var verr error
	w.idx.AscendFrom(nil, func(key []byte, v uint64) bool {
		l := location(v)
		for hop := 0; hop < maxChainWalk; hop++ {
			e, slotKey, live, err := readSlot(l)
			if err != nil {
				verr = fmt.Errorf("key %q: read chain slot %d/%d: %w", key, l.class(), l.slot(), err)
				return false
			}
			if !live || !bytes.Equal(slotKey, key) {
				break // chain ends at a freed/reused slot (below the watermark)
			}
			if prev, dup := owner[l]; dup {
				if prev != string(key) {
					verr = fmt.Errorf("slot %d/%d reachable from chains of %q and %q",
						l.class(), l.slot(), prev, key)
					return false
				}
				break // already walked from this key (shouldn't happen; index is unique)
			}
			owner[l] = string(key)
			if e.PrevLoc == mvcc.NoLoc {
				break
			}
			l = location(e.PrevLoc)
		}
		return true
	})
	if verr != nil {
		return verr
	}
	for cls, sl := range w.slabs {
		for _, head := range sl.Free.Heads() {
			if o, dup := owner[loc(cls, head)]; dup {
				return fmt.Errorf("class %d: free head %d is live on key %q's version chain", cls, head, o)
			}
		}
	}
	// Table entries against disk.
	for _, k := range w.mv.Keys(nil) {
		kb := []byte(k)
		ks := w.mv.Get(kb)
		if lk := ks.Lock; lk != nil {
			e, slotKey, live, err := readSlot(location(lk.IntentLoc))
			if err != nil {
				return err
			}
			if !live || !bytes.Equal(slotKey, kb) {
				return fmt.Errorf("key %q: lock intent slot %d/%d not live for the key",
					k, location(lk.IntentLoc).class(), location(lk.IntentLoc).slot())
			}
			if e.StartTS != lk.StartTS {
				return fmt.Errorf("key %q: intent slot start ts %d, lock says %d", k, e.StartTS, lk.StartTS)
			}
		}
		last := ^uint64(0)
		for i, v := range ks.Versions {
			if v.CommitTS >= last {
				return fmt.Errorf("key %q: versions not newest-first at index %d", k, i)
			}
			last = v.CommitTS
			_, slotKey, live, err := readSlot(location(v.Loc))
			if err != nil {
				return err
			}
			if !live || !bytes.Equal(slotKey, kb) {
				return fmt.Errorf("key %q: version slot %d/%d (commit ts %d) not live for the key",
					k, location(v.Loc).class(), location(v.Loc).slot(), v.CommitTS)
			}
		}
	}
	return nil
}
