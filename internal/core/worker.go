package core

import (
	"bytes"

	"kvell/internal/aio"
	"kvell/internal/btree"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/freelist"
	"kvell/internal/kv"
	"kvell/internal/pagecache"
	"kvell/internal/slab"
)

// ioCont is the continuation attached to an asynchronous I/O; it runs in
// worker context when the I/O completes and may emit follow-up I/Os.
type ioCont func(c env.Ctx, io *aio.IO, out *[]*aio.IO)

// locReq is an internal location-direct read used by scans (§5.5: scan
// reads bypass the index because the scanner already consulted it). The
// expected key guards against the slot having been freed and reused for a
// different key between the index snapshot and the read.
type locReq struct {
	key  []byte
	l    location
	join *scanJoin
	idx  int
}

// pendingRead deduplicates concurrent reads of the same page: operations
// arriving while a read is in flight join it instead of re-reading.
type pendingRead struct {
	joiners []func(c env.Ctx, data []byte, out *[]*aio.IO)
}

// worker owns one shard of the key space: index, page cache, slabs, free
// lists and one I/O engine bound to one disk. Nothing here is shared with
// other workers except the index mutex scans take briefly (§4.1).
//
// In the SharedEverything ablation, state points at a single worker whose
// index/cache/slabs all threads operate on under shMu — the conventional
// shared design the paper contrasts with.
type worker struct {
	st    *Store
	id    int
	q     env.Queue
	dev   device.Disk
	idx   *btree.Tree
	idxMu env.Mutex
	cache *pagecache.Cache
	slabs []*slab.Slab
	aio   *aio.Engine
	ts    uint64
	state *worker   // shared-state owner (== self in shared-nothing mode)
	shMu  env.Mutex // global lock (nil in shared-nothing mode)

	pendingReads map[int64]*pendingRead
	tailPage     map[int]int64     // class -> pinned append-tail page
	liveTS       map[string]uint64 // recovery only: newest ts seen per key

	// commit-log ablation state
	logBase, logPages int64
	logCursor         int64

	reqs int64
}

func (w *worker) initAIO() { w.aio = aio.New(w.st.env, w.dev) }

func (w *worker) nextTS() uint64 {
	t := w.ts
	w.ts++
	return t
}

// run is the worker main loop — Algorithm 1 of the paper: pop a batch of
// client requests, turn them into I/Os, submit the batch with one syscall,
// then collect and process completions (which may emit follow-up I/Os).
func (w *worker) run(c env.Ctx) {
	batch := w.st.cfg.BatchSize
	state := w.state
	var out []*aio.IO
	for {
		var reqs []any
		if w.aio.Inflight() == 0 {
			reqs = w.q.PopWait(c, batch)
			if reqs == nil {
				return // queue closed and drained, no I/O in flight
			}
		} else {
			reqs = w.q.TryPop(c, batch)
		}
		out = out[:0]
		w.lockShared(c)
		for _, r := range reqs {
			w.reqs++
			switch t := r.(type) {
			case *kv.Request:
				state.start(c, t, &out)
			case *locReq:
				state.startLoc(c, t, &out)
			}
		}
		w.aio.Submit(c, out)
		w.unlockShared(c)
		if w.aio.Inflight() > 0 {
			evs := w.aio.GetEvents(c, 1)
			out = out[:0]
			w.lockShared(c)
			for _, io := range evs {
				io.Tag.(ioCont)(c, io, &out)
			}
			w.aio.Submit(c, out)
			w.unlockShared(c)
		}
	}
}

// lockShared serializes on the global structure lock in the
// SharedEverything ablation; a no-op in KVell's shared-nothing design.
func (w *worker) lockShared(c env.Ctx) {
	if w.shMu != nil {
		c.CPU(costs.LockUncontended)
		w.shMu.Lock(c)
	}
}

func (w *worker) unlockShared(c env.Ctx) {
	if w.shMu != nil {
		w.shMu.Unlock(c)
	}
}

// lookup consults the in-memory index, charging the descent cost.
func (w *worker) lookup(c env.Ctx, key []byte) (location, bool) {
	c.CPU(env.Time(w.idx.Depth()) * costs.BTreeNode)
	w.idxMu.Lock(c)
	v, ok := w.idx.Get(key)
	w.idxMu.Unlock(c)
	return location(v), ok
}

func (w *worker) indexPut(c env.Ctx, key []byte, l location) {
	c.CPU(env.Time(w.idx.Depth()) * costs.BTreeNode)
	w.idxMu.Lock(c)
	w.idx.Put(key, uint64(l))
	w.idxMu.Unlock(c)
}

func (w *worker) indexDelete(c env.Ctx, key []byte) {
	c.CPU(env.Time(w.idx.Depth()) * costs.BTreeNode)
	w.idxMu.Lock(c)
	w.idx.Delete(key)
	w.idxMu.Unlock(c)
}

func (w *worker) start(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	switch r.Op {
	case kv.OpGet:
		l, ok := w.lookup(c, r.Key)
		if !ok {
			w.respond(c, r, kv.Result{})
			return
		}
		w.doGet(c, l, func(c env.Ctx, val []byte, out *[]*aio.IO) {
			w.respond(c, r, kv.Result{Found: val != nil, Value: val})
		}, out)
	case kv.OpUpdate:
		w.doUpdate(c, r.Key, r.Value, func(c env.Ctx, out *[]*aio.IO) {
			w.respond(c, r, kv.Result{Found: true})
		}, out)
	case kv.OpDelete:
		w.doDelete(c, r, out)
	case kv.OpRMW:
		// Read the current value, then write the new one (YCSB F).
		l, ok := w.lookup(c, r.Key)
		if !ok {
			w.respond(c, r, kv.Result{})
			return
		}
		w.doGet(c, l, func(c env.Ctx, val []byte, out *[]*aio.IO) {
			w.doUpdate(c, r.Key, r.Value, func(c env.Ctx, out *[]*aio.IO) {
				w.respond(c, r, kv.Result{Found: true})
			}, out)
		}, out)
	default:
		w.respond(c, r, kv.Result{})
	}
}

func (w *worker) startLoc(c env.Ctx, lr *locReq, out *[]*aio.IO) {
	w.doGetKey(c, lr.key, lr.l, func(c env.Ctx, val []byte, out *[]*aio.IO) {
		j := lr.join
		j.mu.Lock(c)
		j.items[lr.idx].Value = val
		j.remaining--
		done := j.remaining == 0
		j.mu.Unlock(c)
		if done {
			j.cond.Broadcast(c)
		}
	}, out)
}

func (w *worker) respond(c env.Ctx, r *kv.Request, res kv.Result) {
	c.CPU(costs.Callback)
	if r.Done != nil {
		r.Done(res)
	}
}

// readPage reads page through the pending-read table, delivering the data
// (which is also inserted into the page cache) to fn.
func (w *worker) readPage(c env.Ctx, page int64, fn func(c env.Ctx, data []byte, out *[]*aio.IO), out *[]*aio.IO) {
	if pr, ok := w.pendingReads[page]; ok {
		pr.joiners = append(pr.joiners, fn)
		return
	}
	pr := &pendingRead{joiners: []func(env.Ctx, []byte, *[]*aio.IO){fn}}
	w.pendingReads[page] = pr
	buf := make([]byte, device.PageSize)
	*out = append(*out, &aio.IO{
		Op:   device.Read,
		Page: page,
		Buf:  buf,
		Tag: ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
			delete(w.pendingReads, page)
			w.cacheInsert(c, page, io.Buf)
			for _, j := range pr.joiners {
				j(c, io.Buf, out)
			}
		}),
	})
}

func (w *worker) cacheInsert(c env.Ctx, page int64, data []byte) {
	w.cache.Insert(page, data)
	c.CPU(w.cache.InsertCost())
}

// writePage submits a page write; done (optional) runs when durable.
func (w *worker) writePage(page int64, data []byte, done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) {
	*out = append(*out, &aio.IO{
		Op:   device.Write,
		Page: page,
		Buf:  data,
		Tag: ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
			if done != nil {
				done(c, out)
			}
		}),
	})
}

// applyToPage obtains the page (cache hit or read), applies fn in place,
// writes it back, and calls done once the write is durable. This is the
// read-modify-write at the heart of in-place slab updates: cached pages
// cost 1 I/O, uncached 2 (§6.3.1's accounting).
func (w *worker) applyToPage(c env.Ctx, page int64, apply func(c env.Ctx, data []byte), done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) {
	c.CPU(w.cache.LookupCost())
	if data := w.cache.Get(page); data != nil {
		apply(c, data)
		w.writePage(page, data, done, out)
		return
	}
	w.readPage(c, page, func(c env.Ctx, data []byte, out *[]*aio.IO) {
		apply(c, data)
		w.writePage(page, data, done, out)
	}, out)
}

// doGet fetches the value at location l and passes it to fn (nil if the
// slot no longer holds a live item).
func (w *worker) doGet(c env.Ctx, l location, fn func(c env.Ctx, val []byte, out *[]*aio.IO), out *[]*aio.IO) {
	w.doGetKey(c, nil, l, fn, out)
}

// doGetKey is doGet with an optional expected key: when non-nil, a slot
// whose live item carries a different key (freed and reused since the
// caller looked it up) reads as absent.
func (w *worker) doGetKey(c env.Ctx, expect []byte, l location, fn func(c env.Ctx, val []byte, out *[]*aio.IO), out *[]*aio.IO) {
	sl := w.slabs[l.class()]
	slot := l.slot()
	if sl.MultiPage() {
		// Multi-page items bypass the page cache (they would monopolize
		// it) and are read in one large request.
		buf := make([]byte, sl.PagesPerSlot()*device.PageSize)
		*out = append(*out, &aio.IO{
			Op:   device.Read,
			Page: sl.SlotPage(slot),
			Buf:  buf,
			Tag: ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
				d, err := sl.DecodeSlot(io.Buf)
				if err != nil || d.Kind != slab.Live || (expect != nil && !bytes.Equal(d.Item.Key, expect)) {
					fn(c, nil, out)
					return
				}
				c.CPU(costs.MemBytes(len(d.Item.Value)))
				fn(c, d.Item.Value, out)
			}),
		})
		return
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	deliver := func(c env.Ctx, data []byte, out *[]*aio.IO) {
		d, err := sl.DecodeSlot(data[off : off+sl.Stride])
		if err != nil || d.Kind != slab.Live || (expect != nil && !bytes.Equal(d.Item.Key, expect)) {
			fn(c, nil, out)
			return
		}
		c.CPU(costs.MemBytes(len(d.Item.Value)))
		// make (not append) so that a present-but-empty value stays
		// non-nil: callers use nil to mean "not found".
		val := make([]byte, len(d.Item.Value))
		copy(val, d.Item.Value)
		fn(c, val, out)
	}
	c.CPU(w.cache.LookupCost())
	if data := w.cache.Get(page); data != nil {
		deliver(c, data, out)
		return
	}
	w.readPage(c, page, deliver, out)
}

// doUpdate writes (key, value) and calls done once it is durable at its
// final location. It covers all §5.2 cases: in-place update, fresh append,
// free-slot reuse (with free-list chain recovery), size-class migration and
// multi-page append+tombstone.
func (w *worker) doUpdate(c env.Ctx, key, value []byte, done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) {
	cls := slab.ClassFor(w.st.cfg.Classes, len(key), len(value))
	if cls < 0 {
		panic("core: item exceeds largest configured size class")
	}
	old, exists := w.lookup(c, key)
	ts := w.nextTS()
	newSl := w.slabs[cls]
	c.CPU(costs.MemBytes(len(key) + len(value))) // marshal into page image

	if w.st.cfg.WithCommitLog {
		done = w.withCommitLog(c, len(key)+len(value), done, out)
	}

	// Case 1: in-place update (same class, sub-page item). Skipped in the
	// NoInPlaceUpdates variant (§5.6): drives that cannot write a 4KB
	// page atomically must never overwrite the only durable copy.
	if exists && old.class() == cls && !newSl.MultiPage() && !w.st.cfg.NoInPlaceUpdates {
		slot := old.slot()
		page, off := newSl.SlotPage(slot), newSl.SlotOffset(slot)
		w.applyToPage(c, page, func(c env.Ctx, data []byte) {
			if err := newSl.EncodeItem(data[off:off+newSl.Stride], ts, key, value); err != nil {
				panic(err)
			}
		}, done, out)
		return
	}

	// Allocate a slot in the target class and install the new location.
	slot, reused := newSl.Alloc()
	w.indexPut(c, key, loc(cls, slot))
	if !exists {
		newSl.Live++
	}

	// After the new value is durable: tombstone the old location — the
	// item always moved if it existed and we are here (§5.2: "first
	// writes the updated item in its new slab and then deletes it from
	// the old one"; same ordering protects the §5.6 no-in-place variant).
	finish := func(c env.Ctx, out *[]*aio.IO) {
		if exists {
			w.writeTombstone(c, old, w.nextTS(), out)
		}
		done(c, out)
	}

	if newSl.MultiPage() {
		buf := make([]byte, newSl.PagesPerSlot()*device.PageSize)
		if err := newSl.EncodeItem(buf, ts, key, value); err != nil {
			panic(err)
		}
		writeSlot := func(c env.Ctx, out *[]*aio.IO) {
			*out = append(*out, &aio.IO{
				Op: device.Write, Page: newSl.SlotPage(slot), Buf: buf,
				Tag: ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) { finish(c, out) }),
			})
		}
		if reused {
			// Recover the free-list chain from the old tombstone before
			// overwriting it.
			w.readPage(c, newSl.SlotPage(slot), func(c env.Ctx, data []byte, out *[]*aio.IO) {
				w.recoverChain(newSl, data[:slab.HeaderSize+8])
				w.cache.Remove(newSl.SlotPage(slot)) // page belongs to a multi-page slot
				writeSlot(c, out)
			}, out)
			return
		}
		writeSlot(c, out)
		return
	}

	// Sub-page slot: fresh append to a brand-new page avoids any read.
	page, off := newSl.SlotPage(slot), newSl.SlotOffset(slot)
	apply := func(c env.Ctx, data []byte) {
		if reused {
			w.recoverChain(newSl, data[off:off+newSl.Stride])
		}
		if err := newSl.EncodeItem(data[off:off+newSl.Stride], ts, key, value); err != nil {
			panic(err)
		}
	}
	if !reused && newSl.AppendPageFresh(slot) {
		data := make([]byte, device.PageSize)
		apply(c, data)
		w.cacheInsert(c, page, data)
		// Pin the new tail page so subsequent appends hit the cache;
		// unpin the previous tail.
		if prev, ok := w.tailPage[cls]; ok {
			w.cache.Unpin(prev)
		}
		w.cache.Pin(page)
		w.tailPage[cls] = page
		w.writePage(page, data, finish, out)
		return
	}
	w.applyToPage(c, page, apply, finish, out)
}

// recoverChain reads a displaced free-list chain pointer out of a slot's
// tombstone and reinstates it as an in-memory head.
func (w *worker) recoverChain(sl *slab.Slab, slotBuf []byte) {
	d, err := sl.DecodeSlot(padToStride(sl, slotBuf))
	if err == nil && d.Kind == slab.Tombstone && d.ChainTo != freelist.NoSlot {
		sl.Free.PushHead(d.ChainTo)
	}
}

// padToStride returns a buffer DecodeSlot accepts for chain recovery: for
// sub-page slabs the caller already passes exactly one stride; multi-page
// slabs only have the first page available, which suffices for tombstones.
func padToStride(sl *slab.Slab, b []byte) []byte {
	want := sl.Stride
	if len(b) == want {
		return b
	}
	out := make([]byte, want)
	copy(out, b)
	return out
}

// writeTombstone marks location l deleted on disk, pushing the slot onto
// its slab's free list and chaining per §5.3 when the in-memory heads are
// full.
func (w *worker) writeTombstone(c env.Ctx, l location, ts uint64, out *[]*aio.IO) {
	sl := w.slabs[l.class()]
	slot := l.slot()
	chainTo, chained := sl.Free.Push(slot)
	if !chained {
		chainTo = freelist.NoSlot
	}
	sl.Live--
	if sl.MultiPage() {
		// The slot owns whole pages; writing the first page alone is
		// enough (decode stops at the tombstone flag).
		data := make([]byte, device.PageSize)
		sl.EncodeTombstone(data, ts, chainTo)
		w.cache.Remove(sl.SlotPage(slot))
		w.writePage(sl.SlotPage(slot), data, nil, out)
		return
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	w.applyToPage(c, page, func(c env.Ctx, data []byte) {
		sl.EncodeTombstone(data[off:off+sl.Stride], ts, chainTo)
	}, nil, out)
}

func (w *worker) doDelete(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	l, ok := w.lookup(c, r.Key)
	if !ok {
		w.respond(c, r, kv.Result{})
		return
	}
	w.indexDelete(c, r.Key)
	sl := w.slabs[l.class()]
	slot := l.slot()
	chainTo, chained := sl.Free.Push(slot)
	if !chained {
		chainTo = freelist.NoSlot
	}
	sl.Live--
	ts := w.nextTS()
	done := func(c env.Ctx, out *[]*aio.IO) { w.respond(c, r, kv.Result{Found: true}) }
	if sl.MultiPage() {
		data := make([]byte, device.PageSize)
		sl.EncodeTombstone(data, ts, chainTo)
		w.cache.Remove(sl.SlotPage(slot))
		w.writePage(sl.SlotPage(slot), data, done, out)
		return
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	w.applyToPage(c, page, func(c env.Ctx, data []byte) {
		sl.EncodeTombstone(data[off:off+sl.Stride], ts, chainTo)
	}, done, out)
}

// withCommitLog wraps done so it additionally waits for a sequential
// commit-log append (the §4.4 ablation: what KVell's design avoids).
func (w *worker) withCommitLog(c env.Ctx, recBytes int, done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) func(c env.Ctx, out *[]*aio.IO) {
	c.CPU(costs.WALBytes(recBytes))
	remaining := 2
	wrapped := func(c env.Ctx, out *[]*aio.IO) {
		remaining--
		if remaining == 0 {
			done(c, out)
		}
	}
	page := w.logBase + w.logCursor%w.logPages
	w.logCursor++
	buf := make([]byte, device.PageSize)
	w.writePage(page, buf, wrapped, out)
	return wrapped
}
