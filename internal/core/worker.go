package core

import (
	"bytes"

	"kvell/internal/aio"
	"kvell/internal/btree"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/freelist"
	"kvell/internal/hotcache"
	"kvell/internal/kv"
	"kvell/internal/mvcc"
	"kvell/internal/pagecache"
	"kvell/internal/slab"
	"kvell/internal/trace"
)

// ioCont is the continuation attached to an asynchronous I/O; it runs in
// worker context when the I/O completes and may emit follow-up I/Os.
type ioCont func(c env.Ctx, io *aio.IO, out *[]*aio.IO)

// locReq is an internal location-direct read used by scans (§5.5: scan
// reads bypass the index because the scanner already consulted it). The
// expected key guards against the slot having been freed and reused for a
// different key between the index snapshot and the read.
type locReq struct {
	key  []byte
	l    location
	join *scanJoin
	idx  int
	// env marks an MVCC-mode read: the slot holds an envelope whose user
	// value must be unwrapped; an intent at the head of the chain is read
	// through to its newest committed predecessor (hops bounds the walk).
	env  bool
	hops int
}

// prJoiner is one operation waiting on a pending page read, with the trace
// context it should run under (each joiner belongs to a different request)
// and the time it joined, so late joiners can book the shared read's
// remaining latency as device-queue wait.
type prJoiner struct {
	fn     func(c env.Ctx, data []byte, out *[]*aio.IO)
	tc     *trace.Ctx
	joinAt env.Time
}

// pendingRead deduplicates concurrent reads of the same page: operations
// arriving while a read is in flight join it instead of re-reading.
// pendingRead records are pooled by the worker; cont is wired once so a
// pooled record's completion does not allocate a closure per read.
type pendingRead struct {
	w       *worker
	page    int64
	joiners []prJoiner
	cont    ioCont
}

// complete runs when the page read finishes: it publishes the page to the
// cache, fans the data out to all joiners, and recycles the record. Each
// joiner runs under its own request's trace context; joiner 0 issued the
// I/O and already owns its device spans, later joiners book the time they
// spent waiting on the shared read.
func (pr *pendingRead) complete(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
	w := pr.w
	delete(w.pendingReads, pr.page)
	w.cacheInsert(c, pr.page, io.Buf)
	now := c.Now()
	for i := range pr.joiners {
		j := pr.joiners[i]
		pr.joiners[i] = prJoiner{}
		if j.tc != nil {
			if i > 0 {
				j.tc.Add(trace.CompDevQueue, j.joinAt, now)
			}
			c.SetTrace(j.tc)
		} else {
			c.SetTrace(nil)
		}
		j.fn(c, io.Buf, out)
	}
	c.SetTrace(nil)
	pr.joiners = pr.joiners[:0]
	w.prFree = append(w.prFree, pr)
}

// worker owns one shard of the key space: index, page cache, slabs, free
// lists and one I/O engine bound to one disk. Nothing here is shared with
// other workers except the index mutex scans take briefly (§4.1).
//
// In the SharedEverything ablation, state points at a single worker whose
// index/cache/slabs all threads operate on under shMu — the conventional
// shared design the paper contrasts with.
type worker struct {
	st    *Store
	id    int
	q     env.Queue
	dev   device.Disk
	idx   *btree.Tree
	idxMu env.Mutex
	cache *pagecache.Cache
	slabs []*slab.Slab
	aio   *aio.Engine
	ts    uint64
	state *worker   // shared-state owner (== self in shared-nothing mode)
	shMu  env.Mutex // global lock (nil in shared-nothing mode)

	pendingReads map[int64]*pendingRead
	tailPage     map[int]int64     // class -> pinned append-tail page
	liveTS       map[string]uint64 // recovery only: newest ts seen per key

	// Steady-state free lists (§4's CPU discipline applied to the host):
	// page buffers, pending-read records and IO structs are recycled so the
	// per-operation path allocates nothing once warm. Evicted page buffers
	// park in bufPending until the batch's io_submit has consumed any write
	// that still references them, then move to bufFree.
	bufFree    [][]byte
	bufPending [][]byte
	prFree     []*pendingRead
	ioFree     []*aio.IO

	// commit-log ablation state
	logBase, logPages int64
	logCursor         int64

	// Write-absorption front end (nil when disabled). absorbMu guards the
	// interval and the stopped flag, which the per-worker tick proc reads;
	// everything else is touched only on the worker thread.
	ab             *absorber
	tick           *flushTick
	absorbMu       env.Mutex
	absorbInterval env.Time
	absorbStopped  bool
	absorbOverflow bool

	// Hot-key record cache (nil when tiering is disabled); see tiered.go.
	hot *hotcache.Cache

	// MVCC state (nil/zero unless Config.MVCC); see mvcc.go. mv tracks keys
	// in the uncheckpointed window (pending intent or >1 retained version),
	// envFree pools envelope-encode buffers, recMVCC gathers scanned
	// envelope slots during recovery, and maxCommitTS is the largest commit
	// or start timestamp recovery saw (it re-floors the oracle).
	mv          *mvcc.Table
	envFree     [][]byte
	recMVCC     map[string][]recVer
	maxCommitTS uint64

	reqs int64
}

func (w *worker) initAIO() { w.aio = aio.New(w.st.env, w.dev) }

// pageBuf returns a page-sized buffer destined for a disk read, which
// overwrites every byte — recycled buffers need no clearing.
func (w *worker) pageBuf() []byte {
	if n := len(w.bufFree); n > 0 {
		b := w.bufFree[n-1]
		w.bufFree = w.bufFree[:n-1]
		return b
	}
	return make([]byte, device.PageSize)
}

// zeroPageBuf returns a zeroed page-sized buffer (for freshly appended page
// images, whose unused slots must decode as Empty).
func (w *worker) zeroPageBuf() []byte {
	if n := len(w.bufFree); n > 0 {
		b := w.bufFree[n-1]
		w.bufFree = w.bufFree[:n-1]
		clear(b)
		return b
	}
	return make([]byte, device.PageSize)
}

// recycleBufs moves buffers whose last referencing write has been submitted
// onto the free list. Call only right after aio.Submit.
func (w *worker) recycleBufs() {
	w.bufFree = append(w.bufFree, w.bufPending...)
	clear(w.bufPending)
	w.bufPending = w.bufPending[:0]
}

// retireBuf parks a page buffer the cache no longer references; it becomes
// reusable at the next recycleBufs.
func (w *worker) retireBuf(b []byte) {
	if len(b) == device.PageSize {
		w.bufPending = append(w.bufPending, b)
	}
}

func (w *worker) getPR(page int64) *pendingRead {
	var pr *pendingRead
	if n := len(w.prFree); n > 0 {
		pr = w.prFree[n-1]
		w.prFree = w.prFree[:n-1]
	} else {
		pr = &pendingRead{w: w}
		pr.cont = pr.complete
	}
	pr.page = page
	return pr
}

// getIO returns a pooled I/O, stamped with the calling request's trace
// context (and creation time, so batch wait counts as device-queue time).
func (w *worker) getIO(c env.Ctx) *aio.IO {
	var io *aio.IO
	if n := len(w.ioFree); n > 0 {
		io = w.ioFree[n-1]
		w.ioFree = w.ioFree[:n-1]
	} else {
		io = &aio.IO{}
	}
	if tc := trace.FromCtx(c); tc != nil {
		io.Trace = tc
		io.Created = c.Now()
	}
	return io
}

func (w *worker) putIO(io *aio.IO) {
	io.Buf = nil
	io.Tag = nil
	io.Trace = nil
	io.Created = 0
	w.ioFree = append(w.ioFree, io)
}

func (w *worker) nextTS() uint64 {
	t := w.ts
	w.ts++
	return t
}

// run is the worker main loop — Algorithm 1 of the paper: pop a batch of
// client requests, turn them into I/Os, submit the batch with one syscall,
// then collect and process completions (which may emit follow-up I/Os).
func (w *worker) run(c env.Ctx) {
	batch := w.st.cfg.BatchSize
	state := w.state
	var out []*aio.IO
	for {
		var reqs []any
		idleFlush := false
		if w.aio.Inflight() == 0 {
			if w.ab != nil && w.ab.pending() > 0 {
				// Device idle with absorbed writes pending: commit the
				// group now instead of parking — an uncontended write
				// therefore pays no absorb latency, and the worker never
				// blocks in PopWait while clients await buffered acks.
				reqs = w.q.TryPop(c, batch)
				idleFlush = len(reqs) == 0
			} else {
				reqs = w.q.PopWait(c, batch)
				if reqs == nil {
					return // queue closed and drained, no I/O in flight
				}
			}
		} else {
			reqs = w.q.TryPop(c, batch)
		}
		out = out[:0]
		w.lockShared(c)
		for _, r := range reqs {
			switch t := r.(type) {
			case *kv.Request:
				w.reqs++
				// Capture the trace context before start: Done may finish
				// (and recycle) it. The worker's ambient context is cleared
				// after each item so parks never carry a stale one.
				if tc := t.Trace; tc != nil {
					tc.EndQueue(c.Now())
					c.SetTrace(tc)
					state.start(c, t, &out)
					c.SetTrace(nil)
				} else {
					state.start(c, t, &out)
				}
			case *locReq:
				w.reqs++
				state.startLoc(c, t, &out)
			case *flushTick:
				w.absorbTick(c, &out)
			}
		}
		if w.ab != nil && (idleFlush || w.absorbOverflow) {
			w.flushAbsorb(c, &out)
		}
		w.aio.Submit(c, out)
		// Writes referencing evicted page buffers have been consumed by the
		// device (data is captured at submission), so the buffers are free.
		state.recycleBufs()
		w.unlockShared(c)
		if w.aio.Inflight() > 0 {
			evs := w.aio.GetEvents(c, 1)
			out = out[:0]
			w.lockShared(c)
			for _, io := range evs {
				cont := io.Tag.(ioCont)
				if tc := io.Trace; tc != nil {
					// Dwell between device completion and this pickup.
					tc.Add(trace.CompQueue, io.Completed(), c.Now())
					c.SetTrace(tc)
					cont(c, io, &out)
					c.SetTrace(nil)
				} else {
					cont(c, io, &out)
				}
				state.putIO(io)
			}
			// Continuations (an RMW's read completing, say) may have pushed
			// the absorb buffer past its bound.
			if w.ab != nil && w.absorbOverflow {
				w.flushAbsorb(c, &out)
			}
			w.aio.Submit(c, out)
			state.recycleBufs()
			w.unlockShared(c)
		}
	}
}

// lockShared serializes on the global structure lock in the
// SharedEverything ablation; a no-op in KVell's shared-nothing design.
func (w *worker) lockShared(c env.Ctx) {
	if w.shMu != nil {
		c.CPU(costs.LockUncontended)
		w.shMu.Lock(c)
	}
}

func (w *worker) unlockShared(c env.Ctx) {
	if w.shMu != nil {
		w.shMu.Unlock(c)
	}
}

// lookup consults the in-memory index, charging the descent cost.
func (w *worker) lookup(c env.Ctx, key []byte) (location, bool) {
	t0 := c.Now()
	c.CPU(env.Time(w.idx.Depth()) * costs.BTreeNode)
	w.idxMu.Lock(c)
	v, ok := w.idx.Get(key)
	w.idxMu.Unlock(c)
	trace.FromCtx(c).Span("index", t0, c.Now())
	return location(v), ok
}

func (w *worker) indexPut(c env.Ctx, key []byte, l location) {
	c.CPU(env.Time(w.idx.Depth()) * costs.BTreeNode)
	w.idxMu.Lock(c)
	w.idx.Put(key, uint64(l))
	w.idxMu.Unlock(c)
	if fn := w.st.cfg.OnIndexUpdate; fn != nil {
		fn(w.id, key, uint64(l), false)
	}
}

func (w *worker) indexDelete(c env.Ctx, key []byte) {
	c.CPU(env.Time(w.idx.Depth()) * costs.BTreeNode)
	w.idxMu.Lock(c)
	w.idx.Delete(key)
	w.idxMu.Unlock(c)
	if fn := w.st.cfg.OnIndexUpdate; fn != nil {
		fn(w.id, key, 0, true)
	}
}

func (w *worker) start(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	if w.ab != nil && w.absorbStart(c, r, out) {
		return
	}
	if w.mv != nil {
		w.startMVCC(c, r, out)
		return
	}
	switch r.Op {
	case kv.OpGet:
		// The hot tier is probed after the absorb buffer (whose copy is
		// fresher for buffered keys) and before the index.
		if w.hot != nil && w.hotGet(c, r) {
			return
		}
		l, ok := w.lookup(c, r.Key)
		if !ok {
			w.respond(c, r, kv.Result{})
			return
		}
		w.doGetReq(c, r, l, out)
	case kv.OpUpdate:
		w.doUpdate(c, r.Key, r.Value, func(c env.Ctx, out *[]*aio.IO) {
			w.respond(c, r, kv.Result{Found: true})
		}, out)
	case kv.OpDelete:
		w.doDelete(c, r, out)
	case kv.OpRMW:
		// Read the current value, then write the new one (YCSB F).
		l, ok := w.lookup(c, r.Key)
		if !ok {
			w.respond(c, r, kv.Result{})
			return
		}
		w.doGet(c, l, func(c env.Ctx, val []byte, out *[]*aio.IO) {
			w.doUpdate(c, r.Key, r.Value, func(c env.Ctx, out *[]*aio.IO) {
				w.respond(c, r, kv.Result{Found: true})
			}, out)
		}, &r.ValueBuf, out)
	default:
		w.respond(c, r, kv.Result{})
	}
}

func (w *worker) startLoc(c env.Ctx, lr *locReq, out *[]*aio.IO) {
	deliver := func(c env.Ctx, val []byte) {
		j := lr.join
		j.mu.Lock(c)
		j.items[lr.idx].Value = val
		j.remaining--
		done := j.remaining == 0
		j.mu.Unlock(c)
		if done {
			j.cond.Broadcast(c)
		}
	}
	if lr.env {
		// MVCC mode: unwrap the envelope; a candidate whose slot turned into
		// a prewrite intent since the index snapshot reads through to its
		// newest committed predecessor (latest-semantics scan, §5.5's
		// "approximately correct" contract).
		w.readEnv(c, lr.key, lr.l, func(c env.Ctx, e mvcc.Envelope, ok bool, out *[]*aio.IO) {
			if ok && e.Intent() && e.PrevLoc != mvcc.NoLoc && lr.hops < maxChainWalk {
				lr.l = location(e.PrevLoc)
				lr.hops++
				w.startLoc(c, lr, out)
				return
			}
			if !ok || e.Intent() || e.Delete() {
				deliver(c, nil)
				return
			}
			c.CPU(costs.MemBytes(len(e.Value)))
			deliver(c, append([]byte(nil), e.Value...))
		}, out)
		return
	}
	// Scan values are retained past delivery (they land in the join's item
	// slice), so no scratch buffer: each read allocates its value.
	w.doGetKey(c, lr.key, lr.l, func(c env.Ctx, val []byte, out *[]*aio.IO) {
		deliver(c, val)
	}, nil, out)
}

func (w *worker) respond(c env.Ctx, r *kv.Request, res kv.Result) {
	c.CPU(costs.Callback)
	if r.Done != nil {
		r.Done(res)
	}
}

// readPage reads page through the pending-read table, delivering the data
// (which is also inserted into the page cache) to fn.
func (w *worker) readPage(c env.Ctx, page int64, fn func(c env.Ctx, data []byte, out *[]*aio.IO), out *[]*aio.IO) {
	if pr, ok := w.pendingReads[page]; ok {
		pr.joiners = append(pr.joiners, prJoiner{fn: fn, tc: trace.FromCtx(c), joinAt: c.Now()})
		return
	}
	pr := w.getPR(page)
	pr.joiners = append(pr.joiners, prJoiner{fn: fn, tc: trace.FromCtx(c)})
	w.pendingReads[page] = pr
	io := w.getIO(c)
	io.Op = device.Read
	io.Page = page
	io.Buf = w.pageBuf()
	io.Tag = pr.cont
	*out = append(*out, io)
}

func (w *worker) cacheInsert(c env.Ctx, page int64, data []byte) {
	if _, ev := w.cache.InsertTake(page, data); ev != nil {
		w.retireBuf(ev)
	}
	c.CPU(w.cache.InsertCost())
}

// cacheRemove drops page from the cache, reclaiming its buffer.
func (w *worker) cacheRemove(page int64) {
	if data := w.cache.RemoveTake(page); data != nil {
		w.retireBuf(data)
	}
}

// writePage submits a page write; done (optional) runs when durable.
func (w *worker) writePage(c env.Ctx, page int64, data []byte, done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) {
	io := w.getIO(c)
	io.Op = device.Write
	io.Page = page
	io.Buf = data
	if done == nil {
		io.Tag = ioContNop
	} else {
		io.Tag = ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
			done(c, out)
		})
	}
	*out = append(*out, io)
}

// ioContNop is the shared no-op completion for fire-and-forget writes.
var ioContNop = ioCont(func(env.Ctx, *aio.IO, *[]*aio.IO) {})

// applyToPage obtains the page (cache hit or read), applies fn in place,
// writes it back, and calls done once the write is durable. This is the
// read-modify-write at the heart of in-place slab updates: cached pages
// cost 1 I/O, uncached 2 (§6.3.1's accounting).
func (w *worker) applyToPage(c env.Ctx, page int64, apply func(c env.Ctx, data []byte), done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) {
	c.CPU(w.cache.LookupCost())
	if data := w.cache.Get(page); data != nil {
		apply(c, data)
		w.writePage(c, page, data, done, out)
		return
	}
	w.readPage(c, page, func(c env.Ctx, data []byte, out *[]*aio.IO) {
		apply(c, data)
		w.writePage(c, page, data, done, out)
	}, out)
}

// doGet fetches the value at location l and passes it to fn (nil if the
// slot no longer holds a live item). vdst, when non-nil, is caller-owned
// scratch that backs the delivered value; fn must then not retain the value.
func (w *worker) doGet(c env.Ctx, l location, fn func(c env.Ctx, val []byte, out *[]*aio.IO), vdst *[]byte, out *[]*aio.IO) {
	w.doGetKey(c, nil, l, fn, vdst, out)
}

// doGetReq is the Get fast path: it answers r directly so a page-cache hit
// completes without materializing any continuation closure.
func (w *worker) doGetReq(c env.Ctx, r *kv.Request, l location, out *[]*aio.IO) {
	sl := w.slabs[l.class()]
	if !sl.MultiPage() {
		slot := l.slot()
		page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
		c.CPU(w.cache.LookupCost())
		if data := w.cache.Get(page); data != nil {
			val := w.slotValue(c, sl, off, nil, data, &r.ValueBuf)
			if w.hot != nil && val != nil {
				w.hotAdmit(c, r.Key, val)
			}
			w.respond(c, r, kv.Result{Found: val != nil, Value: val})
			return
		}
		w.readPage(c, page, func(c env.Ctx, data []byte, out *[]*aio.IO) {
			val := w.slotValue(c, sl, off, nil, data, &r.ValueBuf)
			if w.hot != nil && val != nil {
				w.hotAdmit(c, r.Key, val)
			}
			w.respond(c, r, kv.Result{Found: val != nil, Value: val})
		}, out)
		return
	}
	w.doGetKey(c, nil, l, func(c env.Ctx, val []byte, out *[]*aio.IO) {
		w.respond(c, r, kv.Result{Found: val != nil, Value: val})
	}, &r.ValueBuf, out)
}

// slotValue decodes the slot at data[off:] and copies its live value into
// vdst's storage (growing it as needed) or a fresh buffer when vdst is nil.
// It returns nil — and callers use nil to mean "not found" — when the slot
// is not live or its key differs from expect (freed and reused since the
// caller's lookup); a present-but-empty value therefore stays non-nil.
func (w *worker) slotValue(c env.Ctx, sl *slab.Slab, off int, expect, data []byte, vdst *[]byte) []byte {
	d, err := sl.DecodeSlotView(data[off : off+sl.Stride])
	if err != nil || d.Kind != slab.Live || (expect != nil && !bytes.Equal(d.Item.Key, expect)) {
		return nil
	}
	n := len(d.Item.Value)
	c.CPU(costs.MemBytes(n))
	var val []byte
	if vdst != nil && *vdst != nil && cap(*vdst) >= n {
		val = (*vdst)[:n]
	} else {
		val = make([]byte, n)
		if vdst != nil {
			*vdst = val
		}
	}
	copy(val, d.Item.Value)
	return val
}

// doGetKey is doGet with an optional expected key: when non-nil, a slot
// whose live item carries a different key (freed and reused since the
// caller looked it up) reads as absent.
func (w *worker) doGetKey(c env.Ctx, expect []byte, l location, fn func(c env.Ctx, val []byte, out *[]*aio.IO), vdst *[]byte, out *[]*aio.IO) {
	sl := w.slabs[l.class()]
	slot := l.slot()
	if sl.MultiPage() {
		// Multi-page items bypass the page cache (they would monopolize
		// it) and are read in one large request. The buffer is not pooled,
		// so the delivered value may alias it.
		buf := make([]byte, sl.PagesPerSlot()*device.PageSize)
		io := w.getIO(c)
		io.Op = device.Read
		io.Page = sl.SlotPage(slot)
		io.Buf = buf
		io.Tag = ioCont(func(c env.Ctx, io *aio.IO, out *[]*aio.IO) {
			d, err := sl.DecodeSlotView(io.Buf)
			if err != nil || d.Kind != slab.Live || (expect != nil && !bytes.Equal(d.Item.Key, expect)) {
				fn(c, nil, out)
				return
			}
			c.CPU(costs.MemBytes(len(d.Item.Value)))
			fn(c, d.Item.Value, out)
		})
		*out = append(*out, io)
		return
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	c.CPU(w.cache.LookupCost())
	if data := w.cache.Get(page); data != nil {
		fn(c, w.slotValue(c, sl, off, expect, data, vdst), out)
		return
	}
	w.readPage(c, page, func(c env.Ctx, data []byte, out *[]*aio.IO) {
		fn(c, w.slotValue(c, sl, off, expect, data, vdst), out)
	}, out)
}

// doUpdate writes (key, value) and calls done once it is durable at its
// final location. It covers all §5.2 cases: in-place update, fresh append,
// free-slot reuse (with free-list chain recovery), size-class migration and
// multi-page append+tombstone.
func (w *worker) doUpdate(c env.Ctx, key, value []byte, done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) {
	if w.hot != nil {
		// Write-through before the slab I/O: every durable-write path
		// (direct, RMW, absorb flush) funnels through here, so a cached
		// record can never lag the store.
		w.hotWrite(c, key, value)
	}
	cls := slab.ClassFor(w.st.cfg.Classes, len(key), len(value))
	if cls < 0 {
		panic("core: item exceeds largest configured size class")
	}
	old, exists := w.lookup(c, key)
	ts := w.nextTS()
	newSl := w.slabs[cls]
	c.CPU(costs.MemBytes(len(key) + len(value))) // marshal into page image

	if w.st.cfg.WithCommitLog {
		done = w.withCommitLog(c, len(key)+len(value), done, out)
	}

	// Case 1: in-place update (same class, sub-page item). Skipped in the
	// NoInPlaceUpdates variant (§5.6): drives that cannot write a 4KB
	// page atomically must never overwrite the only durable copy.
	if exists && old.class() == cls && !newSl.MultiPage() && !w.st.cfg.NoInPlaceUpdates {
		slot := old.slot()
		page, off := newSl.SlotPage(slot), newSl.SlotOffset(slot)
		w.applyToPage(c, page, func(c env.Ctx, data []byte) {
			if err := newSl.EncodeItem(data[off:off+newSl.Stride], ts, key, value); err != nil {
				panic(err)
			}
		}, done, out)
		return
	}

	// Allocate a slot in the target class and install the new location.
	slot, reused := newSl.Alloc()
	w.indexPut(c, key, loc(cls, slot))
	if !exists {
		newSl.Live++
	}

	// After the new value is durable: tombstone the old location — the
	// item always moved if it existed and we are here (§5.2: "first
	// writes the updated item in its new slab and then deletes it from
	// the old one"; same ordering protects the §5.6 no-in-place variant).
	finish := func(c env.Ctx, out *[]*aio.IO) {
		if exists {
			w.writeTombstone(c, old, w.nextTS(), out)
		}
		done(c, out)
	}

	if newSl.MultiPage() {
		buf := make([]byte, newSl.PagesPerSlot()*device.PageSize)
		if err := newSl.EncodeItem(buf, ts, key, value); err != nil {
			panic(err)
		}
		writeSlot := func(c env.Ctx, out *[]*aio.IO) {
			w.writePage(c, newSl.SlotPage(slot), buf, finish, out)
		}
		if reused {
			// Recover the free-list chain from the old tombstone before
			// overwriting it.
			w.readPage(c, newSl.SlotPage(slot), func(c env.Ctx, data []byte, out *[]*aio.IO) {
				w.recoverChain(newSl, data[:slab.HeaderSize+8])
				w.cacheRemove(newSl.SlotPage(slot)) // page belongs to a multi-page slot
				writeSlot(c, out)
			}, out)
			return
		}
		writeSlot(c, out)
		return
	}

	// Sub-page slot: fresh append to a brand-new page avoids any read.
	page, off := newSl.SlotPage(slot), newSl.SlotOffset(slot)
	apply := func(c env.Ctx, data []byte) {
		if reused {
			w.recoverChain(newSl, data[off:off+newSl.Stride])
		}
		if err := newSl.EncodeItem(data[off:off+newSl.Stride], ts, key, value); err != nil {
			panic(err)
		}
	}
	if !reused && newSl.AppendPageFresh(slot) {
		data := w.zeroPageBuf()
		apply(c, data)
		w.cacheInsert(c, page, data)
		// Pin the new tail page so subsequent appends hit the cache;
		// unpin the previous tail.
		if prev, ok := w.tailPage[cls]; ok {
			w.cache.Unpin(prev)
		}
		w.cache.Pin(page)
		w.tailPage[cls] = page
		w.writePage(c, page, data, finish, out)
		return
	}
	w.applyToPage(c, page, apply, finish, out)
}

// recoverChain reads a displaced free-list chain pointer out of a slot's
// tombstone and reinstates it as an in-memory head.
func (w *worker) recoverChain(sl *slab.Slab, slotBuf []byte) {
	d, err := sl.DecodeSlot(padToStride(sl, slotBuf))
	if err == nil && d.Kind == slab.Tombstone && d.ChainTo != freelist.NoSlot {
		sl.Free.PushHead(d.ChainTo)
	}
}

// padToStride returns a buffer DecodeSlot accepts for chain recovery: for
// sub-page slabs the caller already passes exactly one stride; multi-page
// slabs only have the first page available, which suffices for tombstones.
func padToStride(sl *slab.Slab, b []byte) []byte {
	want := sl.Stride
	if len(b) == want {
		return b
	}
	out := make([]byte, want)
	copy(out, b)
	return out
}

// writeTombstone marks location l deleted on disk, pushing the slot onto
// its slab's free list and chaining per §5.3 when the in-memory heads are
// full.
func (w *worker) writeTombstone(c env.Ctx, l location, ts uint64, out *[]*aio.IO) {
	sl := w.slabs[l.class()]
	slot := l.slot()
	chainTo, chained := sl.Free.Push(slot)
	if !chained {
		chainTo = freelist.NoSlot
	}
	sl.Live--
	if sl.MultiPage() {
		// The slot owns whole pages; writing the first page alone is
		// enough (decode stops at the tombstone flag). The page image is
		// one-shot: once the batch submits it can be recycled.
		data := w.zeroPageBuf()
		sl.EncodeTombstone(data, ts, chainTo)
		w.cacheRemove(sl.SlotPage(slot))
		w.writePage(c, sl.SlotPage(slot), data, nil, out)
		w.retireBuf(data)
		return
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	w.applyToPage(c, page, func(c env.Ctx, data []byte) {
		sl.EncodeTombstone(data[off:off+sl.Stride], ts, chainTo)
	}, nil, out)
}

func (w *worker) doDelete(c env.Ctx, r *kv.Request, out *[]*aio.IO) {
	if !w.deleteKey(c, r.Key, func(c env.Ctx, out *[]*aio.IO) {
		w.respond(c, r, kv.Result{Found: true})
	}, out) {
		w.respond(c, r, kv.Result{})
	}
}

// deleteKey removes key, invoking done once its tombstone is durable. It
// returns false — without calling done — when the key does not exist.
func (w *worker) deleteKey(c env.Ctx, key []byte, done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) bool {
	if w.hot != nil {
		w.hotInvalidate(c, key)
	}
	l, ok := w.lookup(c, key)
	if !ok {
		return false
	}
	w.indexDelete(c, key)
	sl := w.slabs[l.class()]
	slot := l.slot()
	chainTo, chained := sl.Free.Push(slot)
	if !chained {
		chainTo = freelist.NoSlot
	}
	sl.Live--
	ts := w.nextTS()
	if sl.MultiPage() {
		data := w.zeroPageBuf()
		sl.EncodeTombstone(data, ts, chainTo)
		w.cacheRemove(sl.SlotPage(slot))
		w.writePage(c, sl.SlotPage(slot), data, done, out)
		w.retireBuf(data)
		return true
	}
	page, off := sl.SlotPage(slot), sl.SlotOffset(slot)
	w.applyToPage(c, page, func(c env.Ctx, data []byte) {
		sl.EncodeTombstone(data[off:off+sl.Stride], ts, chainTo)
	}, done, out)
	return true
}

// withCommitLog wraps done so it additionally waits for a sequential
// commit-log append (the §4.4 ablation: what KVell's design avoids).
func (w *worker) withCommitLog(c env.Ctx, recBytes int, done func(c env.Ctx, out *[]*aio.IO), out *[]*aio.IO) func(c env.Ctx, out *[]*aio.IO) {
	c.CPU(costs.WALBytes(recBytes))
	remaining := 2
	wrapped := func(c env.Ctx, out *[]*aio.IO) {
		remaining--
		if remaining == 0 {
			done(c, out)
		}
	}
	page := w.logBase + w.logCursor%w.logPages
	w.logCursor++
	// One-shot log page image, recyclable once the batch submits.
	buf := w.zeroPageBuf()
	w.writePage(c, page, buf, wrapped, out)
	w.retireBuf(buf)
	return wrapped
}
