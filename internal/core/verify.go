package core

import (
	"bytes"
	"fmt"

	"kvell/internal/device"
	"kvell/internal/slab"
)

// CheckConsistency audits the store's in-memory metadata against the disk
// image. It is a host-side debugging aid for the crash harness: call it
// after the simulation has stopped (post-Recover, no workers running), when
// no locks are needed.
//
// Invariants checked, per worker:
//   - every index entry points at a slot that decodes as Live and whose
//     stored key matches the indexed key;
//   - every free-list head lies below the slab's append cursor;
//   - no free-list head aliases an indexed slot of the same class (a slot
//     cannot be simultaneously allocated and free).
//
// The first violation found is returned as an error with enough context to
// reproduce; nil means the audit passed.
func (s *Store) CheckConsistency() error {
	for _, w := range s.workers {
		if err := w.checkConsistency(); err != nil {
			return fmt.Errorf("worker %d: %w", w.id, err)
		}
	}
	return nil
}

func (w *worker) checkConsistency() error {
	st := storeOf(w.dev)
	// Per-class set of slots the index claims are live.
	indexed := make([]map[uint64]bool, len(w.slabs))
	for i := range indexed {
		indexed[i] = make(map[uint64]bool)
	}
	var verr error
	page := make([]byte, device.PageSize)
	w.idx.AscendFrom(nil, func(key []byte, v uint64) bool {
		l := location(v)
		if l.class() >= len(w.slabs) {
			verr = fmt.Errorf("key %q: location class %d out of range", key, l.class())
			return false
		}
		sl := w.slabs[l.class()]
		slot := l.slot()
		if slot >= sl.Slots() {
			verr = fmt.Errorf("key %q: slot %d beyond append cursor %d (class %d)",
				key, slot, sl.Slots(), l.class())
			return false
		}
		indexed[l.class()][slot] = true
		var buf []byte
		if sl.MultiPage() {
			buf = make([]byte, sl.PagesPerSlot()*device.PageSize)
			if err := st.ReadPages(sl.SlotPage(slot), buf); err != nil {
				verr = fmt.Errorf("key %q: read slot %d: %w", key, slot, err)
				return false
			}
		} else {
			if err := st.ReadPages(sl.SlotPage(slot), page); err != nil {
				verr = fmt.Errorf("key %q: read slot %d: %w", key, slot, err)
				return false
			}
			off := sl.SlotOffset(slot)
			buf = page[off : off+sl.Stride]
		}
		d, err := sl.DecodeSlot(buf)
		if err != nil {
			verr = fmt.Errorf("key %q: decode slot %d (class %d): %w", key, slot, l.class(), err)
			return false
		}
		if d.Kind != slab.Live {
			verr = fmt.Errorf("key %q: indexed slot %d (class %d) decodes as %v, want Live",
				key, slot, l.class(), d.Kind)
			return false
		}
		if !bytes.Equal(d.Item.Key, key) {
			verr = fmt.Errorf("key %q: indexed slot %d (class %d) holds key %q",
				key, slot, l.class(), d.Item.Key)
			return false
		}
		return true
	})
	if verr != nil {
		return verr
	}
	for cls, sl := range w.slabs {
		for _, head := range sl.Free.Heads() {
			if head >= sl.Slots() {
				return fmt.Errorf("class %d: free head %d beyond append cursor %d",
					cls, head, sl.Slots())
			}
			if indexed[cls][head] {
				return fmt.Errorf("class %d: slot %d is both free-list head and indexed",
					cls, head)
			}
		}
	}
	return nil
}
