// Package core implements KVell (§4-5 of the paper): a shared-nothing
// persistent key-value store for fast NVMe SSDs. Each worker thread owns a
// partition of the key space with its own in-memory B-tree index, page
// cache, free lists and slab files, performs batched asynchronous I/O to a
// single disk, and acknowledges updates only once they are durable at their
// final location — there is no commit log, no on-disk sort order and no
// background maintenance.
package core

import (
	"fmt"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/pagecache"
	"kvell/internal/slab"
)

// Config describes a KVell store.
type Config struct {
	// Workers is the number of shared-nothing worker threads. Requests are
	// routed to workers by key hash (§4.1).
	Workers int
	// Disks are the block devices. Each worker stores its slabs on exactly
	// one disk (workers round-robin over disks), bounding each disk's
	// queue to BatchSize × workers-per-disk requests (§4.3).
	Disks []device.Disk
	// PageCachePages is the total capacity of the internal page caches,
	// split evenly among workers (§5.3).
	PageCachePages int
	// BatchSize is the maximum I/O batch per io_submit (§5.4; paper: 64).
	BatchSize int
	// FreelistHeads is N, the per-slab bound on in-memory free-list heads
	// (§5.3; paper: 64).
	FreelistHeads int
	// Classes are the slab size-class strides (§5.2).
	Classes []int
	// CacheIndex selects the page-cache index structure (B-tree in
	// production; the hash variant reproduces the paper's tail-latency
	// anecdote as an ablation).
	CacheIndex pagecache.IndexKind
	// ExtentPages is the growth increment of each slab, in pages.
	ExtentPages int64
	// WorkerRegionPages is the disk space reserved per worker (per-class
	// sub-regions are carved from it deterministically, which is what
	// makes manifest-free recovery possible).
	WorkerRegionPages int64

	// WithCommitLog enables the ablation variant that appends every
	// update to a per-worker sequential commit log before writing it to
	// its final location, to measure what §4.4 avoids.
	WithCommitLog bool

	// NoInPlaceUpdates enables the §5.6 variant for drives that cannot
	// write 4KB pages atomically across power failures: updates never
	// modify a live page in place — the new value goes to a fresh slot
	// and the old slot is tombstoned only after the write is durable.
	NoInPlaceUpdates bool

	// SharedEverything is the §4.1 counter-design ablation: all workers
	// share one index, one page cache and one set of slabs behind a
	// global lock (the "conventional KV design" the paper contrasts
	// with). Simulation-only.
	SharedEverything bool

	// AbsorbInterval, when > 0, enables the write-absorption front end:
	// each worker buffers updates and deletes, merging same-key writes so
	// only the last version reaches its slab, and group-commits the buffer
	// once per interval (plus immediately whenever its device goes idle,
	// so an uncontended write pays no extra latency). All requests a key
	// absorbed are acknowledged together when the surviving write is
	// durable. The interval adapts between AbsorbMinInterval and
	// AbsorbMaxInterval with device queue depth; AbsorbInterval is the
	// starting point. Incompatible with SharedEverything (the buffer is
	// per-worker state).
	AbsorbInterval env.Time
	// AbsorbMinInterval is the adaptive floor (default AbsorbInterval/4).
	AbsorbMinInterval env.Time
	// AbsorbMaxInterval is the adaptive ceiling (default 4×AbsorbInterval).
	AbsorbMaxInterval env.Time
	// AbsorbMaxHeld bounds buffered (un-acked) requests per worker; the
	// buffer is force-flushed at the bound (default 4×BatchSize).
	AbsorbMaxHeld int

	// TieredHotBytes, when > 0, enables the hot/cold tiering front end:
	// each worker keeps a hot-key record cache (internal/hotcache) of its
	// share of this many bytes above the page cache. Reads probe the cache
	// after the absorb buffer and before the index; cold reads that repeat
	// within the decay horizon are promoted; every write is written through
	// or invalidated, so the cache never serves a value the store would not.
	// The cache is a pure read accelerator — the disk stays authoritative,
	// which is what keeps crash recovery unchanged. Incompatible with
	// SharedEverything (the cache is per-worker state).
	TieredHotBytes int64
	// TieredSlotBytes is the arena slot size; records whose key+value exceed
	// it are never cached (default 1024).
	TieredSlotBytes int
	// TieredHalfLife is the virtual-time half-life of the decayed access
	// counters driving promotion and eviction (default 100ms).
	TieredHalfLife env.Time
	// TieredPromoteAfter is the decayed access count a cold key must reach
	// before a read promotes it (default 2; 1 promotes on first touch).
	TieredPromoteAfter int
	// TieredSeed seeds the cache's ghost-table hash mix (per-worker salted).
	TieredSeed int64

	// MVCC enables the versioned record format and the transaction
	// operations (OpTxn*): every slot value is wrapped in an mvcc.Envelope,
	// updates never overwrite a committed version in place, and each worker
	// keeps an in-memory version/lock table for its multi-version keys.
	// Single-version reads stay on the zero-allocation path (the table
	// probe misses and the read proceeds exactly as before, minus the
	// envelope header strip). Plain OpUpdate/OpDelete remain available as
	// non-transactional autocommits; snapshot guarantees cover keys written
	// through the transaction operations. Incompatible with
	// SharedEverything (per-worker state), TieredHotBytes (the hot cache
	// would serve raw envelopes) and WithCommitLog (the ablation predates
	// the envelope format). Write absorption composes: absorbed plain
	// writes are wrapped when the group commit flushes them, and
	// transaction operations bypass the buffer.
	MVCC bool

	// OnIndexUpdate, when set, is called synchronously whenever a worker
	// (re)locates or deletes a key in its in-memory index during normal
	// operation — not during bulk load or recovery, whose state the caller
	// obtains by other means (initial snapshot, full-scan rebuild). The
	// cluster replication layer uses it to ship index entries to followers
	// alongside the slab pages. The callback runs on the worker's thread,
	// must not block or park, and must not retain key.
	OnIndexUpdate func(worker int, key []byte, loc uint64, del bool)
}

// DefaultConfig returns the paper's configuration over the given disks.
func DefaultConfig(disks ...device.Disk) Config {
	return Config{
		Workers:           4,
		Disks:             disks,
		PageCachePages:    8192,
		BatchSize:         64,
		FreelistHeads:     64,
		Classes:           slab.DefaultClasses,
		CacheIndex:        pagecache.IndexBTree,
		ExtentPages:       1024,
		WorkerRegionPages: 1 << 24, // 64GB of page numbers per worker
	}
}

func (c *Config) validate() error {
	if len(c.Disks) == 0 {
		return fmt.Errorf("core: no disks configured")
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = 64
	}
	if c.FreelistHeads < 1 {
		c.FreelistHeads = 64
	}
	if len(c.Classes) == 0 {
		c.Classes = slab.DefaultClasses
	}
	if c.ExtentPages < 1 {
		c.ExtentPages = 1024
	}
	if c.PageCachePages < c.Workers {
		c.PageCachePages = c.Workers
	}
	if c.WorkerRegionPages == 0 {
		c.WorkerRegionPages = 1 << 24
	}
	perClass := c.WorkerRegionPages / int64(len(c.Classes)+1)
	if perClass < 4*c.ExtentPages {
		return fmt.Errorf("core: worker region %d pages too small for %d classes of %d-page extents",
			c.WorkerRegionPages, len(c.Classes), c.ExtentPages)
	}
	if c.AbsorbInterval > 0 {
		if c.SharedEverything {
			return fmt.Errorf("core: write absorption requires shared-nothing workers")
		}
		if c.AbsorbMinInterval <= 0 {
			c.AbsorbMinInterval = max(c.AbsorbInterval/4, 1)
		}
		if c.AbsorbMaxInterval <= 0 {
			c.AbsorbMaxInterval = 4 * c.AbsorbInterval
		}
		if c.AbsorbMinInterval > c.AbsorbInterval || c.AbsorbInterval > c.AbsorbMaxInterval {
			return fmt.Errorf("core: absorb intervals must satisfy min <= start <= max")
		}
		if c.AbsorbMaxHeld <= 0 {
			c.AbsorbMaxHeld = 4 * c.BatchSize
		}
	}
	if c.MVCC {
		if c.SharedEverything {
			return fmt.Errorf("core: MVCC requires shared-nothing workers")
		}
		if c.TieredHotBytes > 0 {
			return fmt.Errorf("core: MVCC is incompatible with hot/cold tiering")
		}
		if c.WithCommitLog {
			return fmt.Errorf("core: MVCC is incompatible with the commit-log ablation")
		}
	}
	if c.TieredHotBytes > 0 {
		if c.SharedEverything {
			return fmt.Errorf("core: tiering requires shared-nothing workers")
		}
		if c.TieredSlotBytes <= 0 {
			c.TieredSlotBytes = 1024
		}
		if c.TieredHalfLife <= 0 {
			c.TieredHalfLife = 100 * env.Millisecond
		}
		if c.TieredPromoteAfter <= 0 {
			c.TieredPromoteAfter = 2
		}
	}
	return nil
}

// Location encodes where an item lives: the slab class in the top byte and
// the slot within the slab below. A worker's index maps keys to locations.
type location uint64

func loc(class int, slot uint64) location {
	return location(uint64(class)<<56 | (slot & (1<<56 - 1)))
}

func (l location) class() int   { return int(uint64(l) >> 56) }
func (l location) slot() uint64 { return uint64(l) & (1<<56 - 1) }
