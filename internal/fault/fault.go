// Package fault is the deterministic crash-injection layer. An Injector
// wraps a set of simulated disks and kills the whole simulated machine at a
// chosen virtual instant or at the Nth submitted write. Death is modeled as
// a power loss: every write still in flight at the crash is independently
// dropped, completed, or torn (a prefix-free per-page subset persists) under
// a seeded RNG, the backing stores are snapshotted as "the disk at reboot",
// and the simulation freezes (sim.Stop) so no further event — completions,
// timers, acknowledgements — can run; in cluster mode (Config.HaltMachine)
// only the dead machine's event domain is halted (sim.Halt) and the
// surviving machines keep running, which is the failover model. Everything the injector does consumes
// randomness from one rand.Rand in a fixed order (disks in Wrap order,
// writes in submission order), so a crash schedule is bit-reproducible from
// the seed alone.
//
// Soundness of the power-loss model: SimDisk captures write data into the
// store at submission, so the injector records the pre-image of every
// tracked write before forwarding it. At the crash it walks tracked writes
// newest-submission-first, and each page's fate is decided exactly once, by
// the newest write touching it: a completed write keeps the store content, a
// dropped (or torn-out) page is restored from that write's pre-image — which,
// when writes overlapped, is precisely the data of the next-older write, so
// every reachable outcome equals some real interleaving of per-page persists.
// Older writes never restore a page a newer write settled: the engines here
// build overlapping writes from one shared page buffer (as real engines
// issuing pwrite from a page cache do), so a newer submission's data always
// subsumes the older one's, and completion of the newer write makes the older
// write's fate invisible. Writes whose completion callback already ran (the
// engine may have acknowledged them) always keep their pages: acknowledged
// implies durable, which is exactly the invariant the crash harness verifies
// end to end.
package fault

import (
	"fmt"
	"math/rand"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/sim"
)

// Config selects when the machine dies. Exactly one trigger is typically
// set; if both are set, whichever fires first wins.
type Config struct {
	// Seed drives the power-loss coin flips. Same seed (and same workload)
	// ⇒ same crash point, same drop/tear pattern, same post-crash images.
	Seed int64
	// AtTime, if > 0, kills the machine at that virtual instant.
	AtTime env.Time
	// AtWrite, if > 0, kills the machine when the Nth write (1-based,
	// counted across all wrapped disks in submission order) is submitted.
	// The Nth write itself is still in flight at the crash and subject to
	// the power-loss model.
	AtWrite int64

	// HaltMachine scopes death to the sim machine domain Machine: instead
	// of freezing the whole simulation (sim.Stop) the injector halts only
	// that machine's event domain (sim.Halt), so the rest of a simulated
	// cluster keeps running — the failover model. The power-loss settlement
	// and the disk snapshots are identical in both modes.
	HaltMachine bool
	// Machine is the machine domain to halt when HaltMachine is set (the
	// wrapped disks and the engine's procs must all belong to it).
	Machine int
}

// Stats summarizes what the crash did.
type Stats struct {
	// Writes counts writes submitted to wrapped disks before the crash.
	Writes int64
	// InFlight is how many writes were queued but un-completed at the crash.
	InFlight int
	// Completed/Dropped/Torn partition InFlight by power-loss outcome.
	Completed int
	Dropped   int
	Torn      int
	// LostPost counts requests submitted to an already-dead disk (procs
	// still unwinding after the freeze); they vanish.
	LostPost int64
}

// Injector coordinates the crash across every wrapped disk of one machine.
// All methods must be called from simulation context.
type Injector struct {
	s       *sim.Sim
	cfg     Config
	rng     *rand.Rand
	disks   []*Disk
	tripped bool
	crashed env.Time
	stats   Stats
}

// NewInjector returns an injector for the machine simulated by s.
// Wrap each disk, then Arm before (or while) the workload runs.
func NewInjector(s *sim.Sim, cfg Config) *Injector {
	return &Injector{
		s:   s,
		cfg: cfg,
		// Seeded from Config.Seed: the whole point of this RNG is a
		// reproducible crash schedule.
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Wrap interposes the injector on disk, which must be MemStore-backed (the
// snapshot is the MemStore page images). Wrap order is part of the crash
// schedule: keep it deterministic (it always is when disks are created in a
// fixed order, as the harness does).
func (inj *Injector) Wrap(d *device.SimDisk) *Disk {
	ms, ok := d.Store().(*device.MemStore)
	if !ok {
		panic(fmt.Sprintf("fault: Wrap needs a MemStore-backed disk, got %T", d.Store()))
	}
	fd := &Disk{inj: inj, inner: d, store: ms}
	inj.disks = append(inj.disks, fd)
	return fd
}

// Arm schedules the AtTime trigger (no-op if AtTime is unset). The AtWrite
// trigger needs no arming; it fires from Submit.
func (inj *Injector) Arm() {
	if inj.cfg.AtTime > 0 {
		if inj.cfg.HaltMachine {
			inj.s.AtOn(inj.cfg.Machine, inj.cfg.AtTime, inj.trip)
		} else {
			inj.s.At(inj.cfg.AtTime, inj.trip)
		}
	}
}

// Tripped reports whether the machine has died.
func (inj *Injector) Tripped() bool { return inj.tripped }

// CrashTime returns the virtual instant of death (0 if not tripped).
func (inj *Injector) CrashTime() env.Time { return inj.crashed }

// Stats returns the crash summary.
func (inj *Injector) Stats() Stats { return inj.stats }

// Disks returns the wrapped disks in Wrap order.
func (inj *Injector) Disks() []*Disk { return inj.disks }

// Snapshots returns one post-crash store image per wrapped disk, in Wrap
// order. Only valid after the machine has died.
func (inj *Injector) Snapshots() []*device.MemStore {
	if !inj.tripped {
		panic("fault: Snapshots before crash")
	}
	out := make([]*device.MemStore, len(inj.disks))
	for i, d := range inj.disks {
		out[i] = d.snap
	}
	return out
}

func (inj *Injector) countWrite() {
	inj.stats.Writes++
	if inj.cfg.AtWrite > 0 && inj.stats.Writes >= inj.cfg.AtWrite && !inj.tripped {
		inj.trip()
	}
}

// trip kills the machine: applies the power-loss model to each disk's
// in-flight writes, snapshots the stores, and freezes the simulation.
// Runs either in scheduler context (AtTime) or in the context of the proc
// that submitted the fatal write (AtWrite); both are safe — Stop only sets
// a flag, and the caller keeps running until it next parks, by which time
// its device is dead and nothing it does is observable.
func (inj *Injector) trip() {
	if inj.tripped {
		return
	}
	inj.tripped = true
	inj.crashed = inj.s.Now()
	for _, d := range inj.disks {
		d.powerLoss(inj)
		d.dead = true
		d.snap = d.store.Snapshot()
	}
	if inj.cfg.HaltMachine {
		inj.s.Halt(inj.cfg.Machine)
	} else {
		inj.s.Stop()
	}
}

// Disk is a fault-wrapped simulated disk. It satisfies device.Disk, exposes
// the backing store (engines' bulk-load paths write it directly — that data
// predates the workload and is durable by construction), and reports death
// to the aio layer via Dead.
type Disk struct {
	inj   *Injector
	inner *device.SimDisk
	store *device.MemStore
	dead  bool
	snap  *device.MemStore

	// inflight holds tracked writes in submission order; done entries are
	// recycled lazily by compact so Submit stays allocation-free in steady
	// state.
	inflight  []*track
	trackFree []*track
}

// track records one in-flight write: where it landed, the pre-image of the
// pages it overwrote, and the engine's completion callback (wrapped so the
// injector observes completion).
type track struct {
	d    *Disk
	page int64
	n    int
	pre  []byte
	orig func()
	done bool
	fn   func()
}

func (t *track) run() {
	t.done = true
	if t.orig != nil {
		t.orig()
	}
}

// Dead implements aio.DeadDevice.
func (d *Disk) Dead() bool { return d.dead }

// Store returns the live backing store (storeAccessor, used by engine
// bulk-load fast paths and cache bookkeeping).
func (d *Disk) Store() device.Store { return d.store }

// Inner returns the wrapped simulated disk.
func (d *Disk) Inner() *device.SimDisk { return d.inner }

// Snapshot returns the post-crash page images (nil before the crash).
func (d *Disk) Snapshot() *device.MemStore { return d.snap }

// Counters implements device.Disk.
func (d *Disk) Counters() device.Counters { return d.inner.Counters() }

// Submit implements device.Disk. Writes are tracked (pre-image captured
// before the inner disk copies the new data into the store) and counted
// against the AtWrite trigger; on a dead disk every request vanishes.
func (d *Disk) Submit(r *device.Request) {
	if d.dead {
		d.inj.stats.LostPost++
		return
	}
	if r.Op != device.Write {
		d.inner.Submit(r)
		return
	}
	t := d.getTrack()
	t.page = r.Page
	t.n = len(r.Buf) / device.PageSize
	if cap(t.pre) < len(r.Buf) {
		t.pre = make([]byte, len(r.Buf))
	}
	t.pre = t.pre[:len(r.Buf)]
	if err := d.store.ReadPages(r.Page, t.pre); err != nil {
		panic("fault: pre-image read failed: " + err.Error())
	}
	t.orig = r.Done
	t.done = false
	r.Done = t.fn
	d.inner.Submit(r)
	r.Done = t.orig
	d.inflight = append(d.inflight, t)
	if len(d.inflight) >= 128 {
		d.compact()
	}
	d.inj.countWrite()
}

func (d *Disk) getTrack() *track {
	if n := len(d.trackFree); n > 0 {
		t := d.trackFree[n-1]
		d.trackFree = d.trackFree[:n-1]
		return t
	}
	t := &track{d: d}
	t.fn = t.run
	return t
}

// compact recycles the completed prefix of inflight. Only the prefix: a
// completed write submitted after a still-pending one must stay tracked,
// because at a crash it settles its pages against restores by the older
// write (see powerLoss).
func (d *Disk) compact() {
	i := 0
	for i < len(d.inflight) && d.inflight[i].done {
		t := d.inflight[i]
		t.orig = nil
		d.trackFree = append(d.trackFree, t)
		i++
	}
	if i == 0 {
		return
	}
	n := copy(d.inflight, d.inflight[i:])
	for j := n; j < len(d.inflight); j++ {
		d.inflight[j] = nil
	}
	d.inflight = d.inflight[:n]
}

// powerLoss decides the fate of every un-completed write. Tracks are walked
// newest-submission-first and each page is settled exactly once, by the
// newest write touching it; completed writes settle their pages as kept
// (acknowledged implies durable). Single-page writes are atomic: kept or
// dropped. Multi-page writes are kept whole, dropped whole, or torn page by
// page (the paper's model: the device guarantees no atomicity beyond one
// page). The RNG is consumed for every pending write in this fixed walk
// order — even fully-settled ones — so the schedule stays bit-deterministic.
func (d *Disk) powerLoss(inj *Injector) {
	settled := make(map[int64]bool)
	settle := func(t *track, i int) bool { // reports whether page i was ours to decide
		p := t.page + int64(i)
		if settled[p] {
			return false
		}
		settled[p] = true
		return true
	}
	for ti := len(d.inflight) - 1; ti >= 0; ti-- {
		t := d.inflight[ti]
		if t.done {
			for i := 0; i < t.n; i++ {
				settle(t, i)
			}
			continue
		}
		inj.stats.InFlight++
		if t.n == 1 {
			if inj.rng.Intn(2) == 0 {
				inj.stats.Completed++
				settle(t, 0)
			} else {
				if settle(t, 0) {
					d.restore(t, 0, 1)
				}
				inj.stats.Dropped++
			}
			continue
		}
		switch inj.rng.Intn(3) {
		case 0:
			inj.stats.Completed++
			for i := 0; i < t.n; i++ {
				settle(t, i)
			}
		case 1:
			for i := 0; i < t.n; i++ {
				if settle(t, i) {
					d.restore(t, i, i+1)
				}
			}
			inj.stats.Dropped++
		default:
			kept := 0
			for i := 0; i < t.n; i++ {
				if inj.rng.Intn(2) == 0 {
					kept++
					settle(t, i)
				} else if settle(t, i) {
					d.restore(t, i, i+1)
				}
			}
			switch kept {
			case t.n:
				inj.stats.Completed++
			case 0:
				inj.stats.Dropped++
			default:
				inj.stats.Torn++
			}
		}
	}
	d.inflight = d.inflight[:0]
}

// restore rewrites pages [from, to) of t's extent from its pre-image.
func (d *Disk) restore(t *track, from, to int) {
	if err := d.store.WritePages(t.page+int64(from),
		t.pre[from*device.PageSize:to*device.PageSize]); err != nil {
		panic("fault: pre-image restore failed: " + err.Error())
	}
}
