package fault_test

import (
	"bytes"
	"hash/fnv"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/fault"
	"kvell/internal/sim"
)

// rec is one write the scenario issued: extent, payload, and whether its
// completion callback ran before the crash.
type rec struct {
	page  int64
	n     int
	data  []byte
	acked bool
}

// runScenario drives a writer proc against a wrapped disk until the
// injector kills the machine at write atWrite. Extents are disjoint
// (stride 4, max 3 pages) over an initially-zero store, so each page's
// legal post-crash content is exactly {payload, zeros}.
func runScenario(t *testing.T, seed, atWrite int64) (*fault.Injector, *device.MemStore, []*rec) {
	t.Helper()
	s := sim.New(7)
	defer s.Close()
	d := device.NewSimDisk(s, device.AmazonNVMe(), nil)
	inj := fault.NewInjector(s, fault.Config{Seed: seed, AtWrite: atWrite})
	fd := inj.Wrap(d)
	inj.Arm()

	var recs []*rec
	s.Go("writer", func(p *sim.Proc) {
		for i := 0; ; i++ {
			r := &rec{page: int64(i * 4), n: 1 + i%3}
			r.data = make([]byte, r.n*device.PageSize)
			for j := range r.data {
				r.data[j] = byte(i*31 + j + 1) // +1: never all-zero
			}
			fd.Submit(&device.Request{
				Op: device.Write, Page: r.page, Buf: r.data,
				Done: func() { r.acked = true },
			})
			recs = append(recs, r)
			if inj.Tripped() {
				return
			}
			if i%8 == 7 {
				p.Sleep(20 * env.Microsecond) // let some completions land
			}
		}
	})
	if err := s.Run(env.Second); err != nil {
		t.Fatal(err)
	}
	if !inj.Tripped() {
		t.Fatalf("injector never tripped (writes=%d)", inj.Stats().Writes)
	}
	return inj, inj.Snapshots()[0], recs
}

func TestAckedWritesSurviveCrash(t *testing.T) {
	inj, snap, recs := runScenario(t, 11, 40)
	st := inj.Stats()
	if st.Writes != 40 {
		t.Fatalf("crashed at write %d, want 40", st.Writes)
	}
	if st.InFlight == 0 {
		t.Fatal("no writes in flight at crash; scenario exercises nothing")
	}
	if st.Completed+st.Dropped+st.Torn != st.InFlight {
		t.Fatalf("outcome counts %d+%d+%d don't partition in-flight %d",
			st.Completed, st.Dropped, st.Torn, st.InFlight)
	}
	zero := make([]byte, device.PageSize)
	buf := make([]byte, 3*device.PageSize)
	nAcked := 0
	for _, r := range recs {
		got := buf[:r.n*device.PageSize]
		if err := snap.ReadPages(r.page, got); err != nil {
			t.Fatal(err)
		}
		if r.acked {
			nAcked++
			if !bytes.Equal(got, r.data) {
				t.Fatalf("acked write at page %d lost or corrupted", r.page)
			}
			continue
		}
		// Un-acked: each page must be wholly old (zero) or wholly new —
		// the ≤1-page atomicity model forbids intra-page mixtures.
		for i := 0; i < r.n; i++ {
			pg := got[i*device.PageSize : (i+1)*device.PageSize]
			if !bytes.Equal(pg, zero) && !bytes.Equal(pg, r.data[i*device.PageSize:(i+1)*device.PageSize]) {
				t.Fatalf("page %d of un-acked write at %d is an intra-page mixture", i, r.page)
			}
		}
	}
	if nAcked == 0 {
		t.Fatal("no writes acked before crash; scenario exercises nothing")
	}
}

func scenarioDigest(inj *fault.Injector, snap *device.MemStore, recs []*rec) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			scratch[i] = byte(v >> (8 * i))
		}
		h.Write(scratch[:])
	}
	st := inj.Stats()
	put(uint64(inj.CrashTime()))
	put(uint64(st.Writes))
	put(uint64(st.InFlight))
	put(uint64(st.Completed))
	put(uint64(st.Dropped))
	put(uint64(st.Torn))
	buf := make([]byte, 3*device.PageSize)
	for _, r := range recs {
		got := buf[:r.n*device.PageSize]
		if err := snap.ReadPages(r.page, got); err != nil {
			panic(err)
		}
		h.Write(got)
	}
	return h.Sum64()
}

func TestCrashScheduleDeterministic(t *testing.T) {
	inj1, snap1, recs1 := runScenario(t, 42, 33)
	inj2, snap2, recs2 := runScenario(t, 42, 33)
	if d1, d2 := scenarioDigest(inj1, snap1, recs1), scenarioDigest(inj2, snap2, recs2); d1 != d2 {
		t.Fatalf("same seed, different crash outcome: %x vs %x", d1, d2)
	}
	if inj1.Stats() != inj2.Stats() {
		t.Fatalf("same seed, different stats: %+v vs %+v", inj1.Stats(), inj2.Stats())
	}
	// Different power-loss seed over the identical workload: the schedule
	// (crash point, in-flight set) matches but outcomes may differ; the
	// test only pins that the seed is actually consumed.
	inj3, snap3, recs3 := runScenario(t, 43, 33)
	if inj3.Stats().Writes != inj1.Stats().Writes || inj3.CrashTime() != inj1.CrashTime() {
		t.Fatalf("crash point depends on power-loss seed: %+v vs %+v", inj3.Stats(), inj1.Stats())
	}
	_ = snap3
	_ = recs3
}

func TestCrashAtTime(t *testing.T) {
	s := sim.New(7)
	defer s.Close()
	d := device.NewSimDisk(s, device.AmazonNVMe(), nil)
	inj := fault.NewInjector(s, fault.Config{Seed: 5, AtTime: 500 * env.Microsecond})
	fd := inj.Wrap(d)
	inj.Arm()
	buf := make([]byte, device.PageSize)
	s.Go("writer", func(p *sim.Proc) {
		for i := 0; !inj.Tripped(); i++ {
			fd.Submit(&device.Request{Op: device.Write, Page: int64(i), Buf: buf})
			p.Sleep(5 * env.Microsecond)
		}
	})
	if err := s.Run(env.Second); err != nil {
		t.Fatal(err)
	}
	if !inj.Tripped() {
		t.Fatal("AtTime trigger never fired")
	}
	if inj.CrashTime() != 500*env.Microsecond {
		t.Fatalf("crashed at %v, want 500us", inj.CrashTime())
	}
	if now := s.Now(); now != 500*env.Microsecond {
		t.Fatalf("sim advanced past the crash: now=%v", now)
	}
}

func TestDeadDiskDropsEverything(t *testing.T) {
	inj, snap, recs := runScenario(t, 3, 20)
	fd := inj.Snapshots() // ensure snapshots exist
	_ = fd
	d := findDisk(inj)
	lostBefore := inj.Stats().LostPost
	buf := make([]byte, device.PageSize)
	for i := range buf {
		buf[i] = 0xEE
	}
	post := int64(1 << 20)
	d.Submit(&device.Request{Op: device.Write, Page: post, Buf: buf})
	if got := inj.Stats().LostPost; got != lostBefore+1 {
		t.Fatalf("post-death submit not counted lost: %d", got)
	}
	got := make([]byte, device.PageSize)
	if err := d.Store().ReadPages(post, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, device.PageSize)) {
		t.Fatal("post-death write reached the live store")
	}
	if err := snap.ReadPages(post, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, device.PageSize)) {
		t.Fatal("post-death write reached the snapshot")
	}
	_ = recs
}

// findDisk digs the wrapped disk back out via the snapshot identity (the
// test helper returns only the injector; Snapshots order == Wrap order).
func findDisk(inj *fault.Injector) *fault.Disk {
	return inj.Disks()[0]
}
