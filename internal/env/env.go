// Package env abstracts the execution environment of the key-value engines.
//
// Every engine in this repository (KVell and the baseline designs) is written
// against this small interface instead of directly against goroutines, clocks
// and sync primitives. Two implementations exist:
//
//   - the discrete-event simulator (internal/sim), which provides a virtual
//     clock, a simulated multi-core CPU, and deterministic scheduling — used
//     to reproduce the paper's evaluation on hardware we do not have, and
//   - the real runtime (internal/env.Real*), which maps the interface onto
//     goroutines, sync.Mutex and the wall clock — used by the examples and
//     by the persistence/recovery tests, where KVell runs against real files.
//
// The CPU method is the heart of the substitution described in DESIGN.md:
// in the simulator it charges virtual CPU time against a finite core pool
// (making engines CPU-bound exactly when the paper says they are), and in
// the real runtime it is a no-op (real work costs real time by itself).
package env

// Time is a point in (virtual or real) time, in nanoseconds since the start
// of the environment. Durations use the same unit.
type Time = int64

// Convenient duration units, in nanoseconds.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
)

// Ctx is the per-thread execution context. A Ctx is only valid on the thread
// (simulated proc or real goroutine) it was handed to; it must not be shared.
type Ctx interface {
	// Now returns the current time.
	Now() Time
	// CPU accounts for d nanoseconds of CPU work. In the simulator the
	// calling thread occupies a core for d virtual nanoseconds (queueing
	// behind other threads when all cores are busy); in the real runtime it
	// returns immediately.
	CPU(d Time)
	// Sleep suspends the thread for d nanoseconds.
	Sleep(d Time)
	// SetTrace attaches an observability context to the thread (a
	// *trace.Ctx; typed any to keep this package dependency-free). The
	// simulator's instrumentation hooks read it to attribute CPU bursts and
	// lock waits to the request the thread is currently serving. Purely
	// observational: it never affects scheduling.
	SetTrace(v any)
	// Trace returns the context set by SetTrace, or nil.
	Trace() any
}

// Env creates threads and synchronization objects.
type Env interface {
	// Now returns the current time. It is safe to call from any thread.
	Now() Time
	// Go starts a new thread running fn. The name is used in diagnostics.
	Go(name string, fn func(Ctx))
	// NewMutex returns a mutual-exclusion lock.
	NewMutex() Mutex
	// NewSpinMutex returns a lock whose waiters busy-wait, consuming CPU
	// (the sched_yield pattern the paper profiles in WiredTiger and
	// TokuMX). In the real runtime it degrades to a regular mutex.
	NewSpinMutex() Mutex
	// NewCond returns a condition variable associated with m.
	NewCond(m Mutex) Cond
	// NewQueue returns an unbounded FIFO queue for cross-thread requests.
	NewQueue() Queue
}

// Mutex is a mutual-exclusion lock usable from engine threads.
type Mutex interface {
	Lock(c Ctx)
	Unlock(c Ctx)
}

// Cond is a condition variable. As with sync.Cond, Wait atomically releases
// the associated mutex and suspends the thread; callers must re-check their
// predicate in a loop. Signal and Broadcast may be called by I/O completion
// callbacks, which run without a thread context; they accept a nil Ctx.
type Cond interface {
	Wait(c Ctx)
	Signal(c Ctx)
	Broadcast(c Ctx)
}

// Queue is an unbounded multi-producer FIFO. Pop operations return up to max
// items; PopWait blocks until at least one item is available or the queue is
// closed (in which case it returns nil once drained).
type Queue interface {
	Push(c Ctx, v any)
	PopWait(c Ctx, max int) []any
	TryPop(c Ctx, max int) []any
	Close(c Ctx)
	Len() int
}
