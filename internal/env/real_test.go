package env

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealQueueFIFOAndClose(t *testing.T) {
	e := NewReal()
	q := e.NewQueue()
	c := &fakeCtx{}
	for i := 0; i < 5; i++ {
		q.Push(c, i)
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	b := q.TryPop(c, 3)
	if len(b) != 3 || b[0].(int) != 0 || b[2].(int) != 2 {
		t.Fatalf("TryPop = %v", b)
	}
	b = q.PopWait(c, 10)
	if len(b) != 2 {
		t.Fatalf("PopWait = %v", b)
	}
	q.Close(c)
	if b := q.PopWait(c, 1); b != nil {
		t.Fatalf("PopWait after close = %v", b)
	}
}

func TestRealQueueBlocksUntilPush(t *testing.T) {
	e := NewReal()
	q := e.NewQueue()
	c := &fakeCtx{}
	got := make(chan []any, 1)
	go func() { got <- q.PopWait(c, 1) }()
	time.Sleep(10 * time.Millisecond)
	q.Push(c, "x")
	select {
	case b := <-got:
		if len(b) != 1 || b[0].(string) != "x" {
			t.Fatalf("got %v", b)
		}
	case <-time.After(time.Second):
		t.Fatal("PopWait never woke")
	}
}

func TestRealEnvGoAndWait(t *testing.T) {
	e := NewReal()
	var n atomic.Int32
	for i := 0; i < 10; i++ {
		e.Go("t", func(c Ctx) { n.Add(1) })
	}
	e.Wait()
	if n.Load() != 10 {
		t.Fatalf("ran %d goroutines", n.Load())
	}
}

func TestRealCondSignal(t *testing.T) {
	e := NewReal()
	m := e.NewMutex()
	cond := e.NewCond(m)
	c := &fakeCtx{}
	ready := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Lock(c)
		for !ready {
			cond.Wait(c)
		}
		m.Unlock(c)
	}()
	time.Sleep(5 * time.Millisecond)
	m.Lock(c)
	ready = true
	m.Unlock(c)
	cond.Broadcast(c)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("cond wait never woke")
	}
}

func TestNowAdvances(t *testing.T) {
	e := NewReal()
	a := e.Now()
	time.Sleep(2 * time.Millisecond)
	if b := e.Now(); b <= a {
		t.Fatalf("Now did not advance: %d -> %d", a, b)
	}
}

type fakeCtx struct{}

func (fakeCtx) Now() Time    { return 0 }
func (fakeCtx) CPU(Time)     {}
func (fakeCtx) Sleep(d Time) { time.Sleep(time.Duration(d)) }
func (fakeCtx) SetTrace(any) {}
func (fakeCtx) Trace() any   { return nil }
