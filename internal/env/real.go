package env

import (
	"sync"
	"time"
)

// RealEnv maps the environment interface onto the Go runtime: real
// goroutines, sync primitives and the wall clock. CPU charging is a no-op
// (real work already costs real time). It is used when KVell runs as an
// actual persistent store over real files.
type RealEnv struct {
	start time.Time
	wg    sync.WaitGroup
}

// NewReal returns a real-runtime environment.
func NewReal() *RealEnv { return &RealEnv{start: time.Now()} }

// Now implements Env.
func (e *RealEnv) Now() Time { return time.Since(e.start).Nanoseconds() }

// Go implements Env.
func (e *RealEnv) Go(name string, fn func(Ctx)) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn(&realCtx{e: e})
	}()
}

// Wait blocks until every thread started with Go has returned.
func (e *RealEnv) Wait() { e.wg.Wait() }

// NewMutex implements Env.
func (e *RealEnv) NewMutex() Mutex { return &realMutex{} }

// NewSpinMutex implements Env (plain mutex in the real runtime).
func (e *RealEnv) NewSpinMutex() Mutex { return &realMutex{} }

// NewCond implements Env.
func (e *RealEnv) NewCond(m Mutex) Cond {
	return &realCond{c: sync.NewCond(&m.(*realMutex).mu)}
}

// NewQueue implements Env.
func (e *RealEnv) NewQueue() Queue {
	q := &realQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

type realCtx struct {
	e     *RealEnv
	trace any
}

func (c *realCtx) Now() Time      { return c.e.Now() }
func (c *realCtx) CPU(d Time)     {}
func (c *realCtx) Sleep(d Time)   { time.Sleep(time.Duration(d)) }
func (c *realCtx) SetTrace(v any) { c.trace = v }
func (c *realCtx) Trace() any     { return c.trace }

type realMutex struct{ mu sync.Mutex }

func (m *realMutex) Lock(Ctx)   { m.mu.Lock() }
func (m *realMutex) Unlock(Ctx) { m.mu.Unlock() }

type realCond struct{ c *sync.Cond }

func (c *realCond) Wait(Ctx)      { c.c.Wait() }
func (c *realCond) Signal(Ctx)    { c.c.Signal() }
func (c *realCond) Broadcast(Ctx) { c.c.Broadcast() }

// realQueue is an unbounded FIFO with blocking batched pop.
type realQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []any
	closed bool
}

func (q *realQueue) Push(c Ctx, v any) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		panic("env: push to closed queue")
	}
	q.items = append(q.items, v)
	q.cond.Signal()
}

func (q *realQueue) take(max int) []any {
	n := max
	if n > len(q.items) {
		n = len(q.items)
	}
	if n <= 0 {
		return nil
	}
	out := make([]any, n)
	copy(out, q.items[:n])
	q.items = append(q.items[:0], q.items[n:]...)
	return out
}

func (q *realQueue) PopWait(c Ctx, max int) []any {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	return q.take(max)
}

func (q *realQueue) TryPop(c Ctx, max int) []any {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.take(max)
}

func (q *realQueue) Close(c Ctx) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *realQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
