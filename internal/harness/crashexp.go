package harness

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"

	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/engine/betree"
	"kvell/internal/engine/lsm"
	"kvell/internal/engine/wtree"
	"kvell/internal/env"
	"kvell/internal/fault"
	"kvell/internal/kv"
	"kvell/internal/sim"
	"kvell/internal/stats"
)

// CrashSpec describes one crash–recover–verify run: an engine under a
// closed-loop update/get workload is killed at the AtWrite-th device write,
// reopened against the power-loss disk images, and every key is read back
// and checked against a shadow model of acknowledged versions.
type CrashSpec struct {
	Engine   EngineKind
	Seed     int64
	Records  int64
	ItemSize int
	// AtWrite kills the machine when the Nth timed device write is
	// submitted (1-based, counted across all disks).
	AtWrite int64
	Clients int
	Window  int
	NDisks  int
	Cores   int
	// AbsorbInterval enables KVell's write-absorption front end (0 = off).
	// Absorbed writes are acknowledged only when their group commit settles,
	// so the same verification applies: no acked version may be lost, even
	// when the crash lands in the middle of a multi-write group commit.
	AbsorbInterval env.Time
	// TieredHotBytes enables KVell's hot-key cache (0 = off). The cache is
	// a read accelerator, never a durability layer: a cached-but-unflushed
	// value must never be what makes the acked-write check pass, because
	// recovery rebuilds from disk alone and the cache starts empty.
	TieredHotBytes int64
}

func (cs *CrashSpec) defaults() {
	if cs.Records == 0 {
		cs.Records = 8_000
	}
	if cs.ItemSize == 0 {
		cs.ItemSize = 256
	}
	if cs.AtWrite == 0 {
		cs.AtWrite = 1_000
	}
	if cs.Clients == 0 {
		cs.Clients = 4
	}
	if cs.Window == 0 {
		cs.Window = 4
	}
	if cs.NDisks == 0 {
		cs.NDisks = 2
	}
	if cs.Cores == 0 {
		cs.Cores = 4
	}
}

// valSize is the deterministic value size for version v of record k. Sizes
// hop between two sub-page size classes (so KVell exercises both in-place
// updates and append+tombstone migration) and every 89th key is multi-page
// (so a crash can tear it across its pages).
func (cs *CrashSpec) valSize(k int64, v uint64) int {
	if k%89 == 0 {
		return cs.ItemSize + 5_000
	}
	if (uint64(k)+v)%4 >= 2 {
		return cs.ItemSize * 2
	}
	return cs.ItemSize
}

// CrashResult is one run's outcome. Digest is an FNV-1a fingerprint of the
// crash schedule and the fully recovered state: equal seeds must produce
// equal digests, which the determinism regression test enforces.
type CrashResult struct {
	Engine    string
	Seed      int64
	AtWrite   int64
	CrashTime env.Time
	Fault     fault.Stats
	// AckedUpdates/IssuedUpdates count workload updates whose Done
	// callback ran / that were submitted, over the whole run.
	AckedUpdates  int64
	IssuedUpdates int64
	// Replayed is what the engine's recovery path reported: items scanned
	// (KVell) or log records replayed (baselines).
	Replayed int64
	// HotHits is how often the hot-key cache served a read before the crash
	// (KVell with TieredHotBytes only) — proof the sweep exercised it.
	HotHits int64
	// RecoverTime is the virtual time the reopen-and-recover step took.
	RecoverTime env.Time
	Digest      uint64
}

// RunCrash executes one crash–recover–verify cycle. The returned error is a
// verification failure (acknowledged write lost, torn value surfaced,
// inconsistent metadata) or a harness problem (crash point never reached);
// nil means the engine survived this crash.
func RunCrash(spec CrashSpec) (CrashResult, error) {
	spec.defaults()
	res := CrashResult{Engine: spec.Engine.String(), Seed: spec.Seed, AtWrite: spec.AtWrite}
	prof := device.AmazonNVMe()

	// Shadow model. Versions are per key: bulk load is version 1; each
	// update increments. At most one update per key is in flight (clients
	// redraw busy keys), so after the crash the durable version of key k
	// must lie in {acked[k], issued[k]}.
	issued := make([]uint64, spec.Records)
	acked := make([]uint64, spec.Records)
	inflight := make([]bool, spec.Records)
	for i := range issued {
		issued[i] = 1
		acked[i] = 1
	}

	// Phase 1: run the workload on fault-wrapped disks until the machine
	// dies at the AtWrite-th write.
	s1 := sim.New(spec.Seed + 1)
	e1 := sim.NewEnv(s1, spec.Cores)
	inj := fault.NewInjector(s1, fault.Config{
		Seed:    spec.Seed*1_000_003 + spec.AtWrite,
		AtWrite: spec.AtWrite,
	})
	disks := make([]device.Disk, spec.NDisks)
	for i := range disks {
		disks[i] = inj.Wrap(device.NewSimDisk(s1, prof, device.NewMemStore()))
	}
	hs := crashHarnessSpec(&spec)
	eng := buildEngine(e1, hs, disks)

	items := make([]kv.Item, spec.Records)
	for i := int64(0); i < spec.Records; i++ {
		items[i] = kv.Item{Key: kv.Key(i), Value: kv.Value(i, 1, spec.valSize(i, 1))}
	}
	if err := eng.BulkLoad(items); err != nil {
		panic(err)
	}
	eng.Start()
	inj.Arm()

	const horizon = 20 * env.Second
	for ci := 0; ci < spec.Clients; ci++ {
		ci := ci
		e1.Go(fmt.Sprintf("crash-client-%d", ci), func(c env.Ctx) {
			// Seeded from the crash spec: the client schedule is part of
			// the reproducible crash schedule.
			rng := rand.New(rand.NewSource(spec.Seed*7919 + int64(ci)))
			lo := int64(ci) * spec.Records / int64(spec.Clients)
			hi := (int64(ci) + 1) * spec.Records / int64(spec.Clients)
			mu := e1.NewMutex()
			cond := e1.NewCond(mu)
			outstanding := 0
			release := func(kv.Result) {
				mu.Lock(nil)
				outstanding--
				mu.Unlock(nil)
				cond.Signal(nil)
			}
			for c.Now() < horizon {
				mu.Lock(c)
				for outstanding >= spec.Window {
					cond.Wait(c)
				}
				outstanding++
				mu.Unlock(c)
				k := lo + rng.Int63n(hi-lo)
				if rng.Intn(2) == 0 && !inflight[k] {
					inflight[k] = true
					v := issued[k] + 1
					issued[k] = v
					res.IssuedUpdates++
					r := &kv.Request{
						Op:    kv.OpUpdate,
						Key:   kv.Key(k),
						Value: kv.Value(k, v, spec.valSize(k, v)),
					}
					r.Done = func(kv.Result) {
						acked[k] = v
						inflight[k] = false
						res.AckedUpdates++
						release(kv.Result{})
					}
					eng.Submit(c, r)
				} else {
					r := &kv.Request{Op: kv.OpGet, Key: kv.Key(k), Done: release}
					eng.Submit(c, r)
				}
			}
			mu.Lock(c)
			for outstanding > 0 {
				cond.Wait(c)
			}
			mu.Unlock(c)
		})
	}
	if err := s1.Run(horizon + env.Second); err != nil {
		panic(err)
	}
	if !inj.Tripped() {
		s1.Close()
		return res, fmt.Errorf("%s: crash point %d never reached (only %d writes submitted)",
			res.Engine, spec.AtWrite, inj.Stats().Writes)
	}
	res.CrashTime = inj.CrashTime()
	res.Fault = inj.Stats()
	if st, ok := eng.(*core.Store); ok {
		res.HotHits = st.Stats().HotHits
	}
	snaps := inj.Snapshots()
	if err := s1.Close(); err != nil {
		panic(err)
	}

	// Phase 2: reboot on the snapshot images, run the engine's recovery
	// path, and read back every key through the engine.
	s2 := sim.New(spec.Seed + 2)
	e2 := sim.NewEnv(s2, spec.Cores)
	disks2 := make([]device.Disk, len(snaps))
	for i, ms := range snaps {
		disks2[i] = device.NewSimDisk(s2, prof, ms)
	}
	eng2 := buildEngine(e2, hs, disks2)

	recVer := make([]uint64, spec.Records)
	var failures []string
	fail := func(format string, args ...any) {
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	e2.Go("crash-recover", func(c env.Ctx) {
		t0 := c.Now()
		switch spec.Engine {
		case KVell:
			st := eng2.(*core.Store)
			if err := st.Recover(c); err != nil {
				fail("recover: %v", err)
				return
			}
			res.Replayed = st.Stats().Items
			if err := st.CheckConsistency(); err != nil {
				fail("post-recovery consistency: %v", err)
			}
		case RocksLike, PebblesLike:
			n, err := eng2.(*lsm.DB).ReplayWAL(c)
			if err != nil {
				fail("replay: %v", err)
				return
			}
			res.Replayed = int64(n)
		case WiredTigerLike:
			res.Replayed = int64(eng2.(*wtree.DB).ReplayLog(c))
		case TokuLike:
			res.Replayed = int64(eng2.(*betree.DB).ReplayLog(c))
		}
		res.RecoverTime = c.Now() - t0

		eng2.Start()
		mu := e2.NewMutex()
		cond := e2.NewCond(mu)
		outstanding := 0
		for k := int64(0); k < spec.Records; k++ {
			mu.Lock(c)
			for outstanding >= 64 {
				cond.Wait(c)
			}
			outstanding++
			mu.Unlock(c)
			k := k
			r := &kv.Request{Op: kv.OpGet, Key: kv.Key(k)}
			r.Done = func(out kv.Result) {
				if !out.Found {
					fail("key %d lost: acked version %d (issued %d)", k, acked[k], issued[k])
				} else {
					ok := false
					for v := issued[k]; v >= acked[k] && !ok; v-- {
						if bytes.Equal(out.Value, kv.Value(k, v, spec.valSize(k, v))) {
							recVer[k] = v
							ok = true
						}
					}
					if !ok {
						fail("key %d recovered to an impossible value (%dB; acked %d, issued %d)",
							k, len(out.Value), acked[k], issued[k])
					}
				}
				mu.Lock(nil)
				outstanding--
				mu.Unlock(nil)
				cond.Signal(nil)
			}
			eng2.Submit(c, r)
		}
		mu.Lock(c)
		for outstanding > 0 {
			cond.Wait(c)
		}
		mu.Unlock(c)
		eng2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		panic(err)
	}
	if err := s2.Close(); err != nil {
		panic(err)
	}

	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(res.CrashTime))
	word(uint64(res.Fault.Writes))
	word(uint64(res.Fault.InFlight))
	word(uint64(res.Fault.Completed))
	word(uint64(res.Fault.Dropped))
	word(uint64(res.Fault.Torn))
	word(uint64(res.Fault.LostPost))
	word(uint64(res.AckedUpdates))
	word(uint64(res.IssuedUpdates))
	word(uint64(res.Replayed))
	word(uint64(res.RecoverTime))
	for _, v := range recVer {
		word(v)
	}
	res.Digest = h.Sum64()

	if len(failures) > 0 {
		return res, fmt.Errorf("%s seed=%d atwrite=%d: %d verification failures, first: %s",
			res.Engine, spec.Seed, spec.AtWrite, len(failures), failures[0])
	}
	return res, nil
}

// crashHarnessSpec maps a CrashSpec onto the benchmark Spec that
// buildEngine consumes, flipping every baseline into its durable mode
// (KVell is durable by construction — no commit log, acknowledgements only
// after the final-location write).
func crashHarnessSpec(cs *CrashSpec) *Spec {
	hs := &Spec{
		Engine:    cs.Engine,
		Seed:      cs.Seed,
		Cores:     cs.Cores,
		Records:   cs.Records,
		ItemSize:  cs.ItemSize,
		CacheFrac: 1.0 / 3,
		TweakLSM:  func(c *lsm.Config) { c.Durable = true },
		TweakWT:   func(c *wtree.Config) { c.Durable = true },
		TweakBE:   func(c *betree.Config) { c.Durable = true },
	}
	if cs.AbsorbInterval > 0 || cs.TieredHotBytes > 0 {
		hs.TweakKVell = func(c *core.Config) {
			c.AbsorbInterval = cs.AbsorbInterval
			if cs.TieredHotBytes > 0 {
				c.TieredHotBytes = cs.TieredHotBytes
				c.TieredSlotBytes = 1024
				c.TieredPromoteAfter = 1
				c.TieredSeed = cs.Seed
			}
		}
	}
	return hs
}

// SweepOpts configure CrashSweep.
type SweepOpts struct {
	// Points is how many seeded crash points to run per engine.
	Points int
	// Seed is the master seed; every per-point seed and crash write index
	// derives from it deterministically.
	Seed    int64
	Records int64
	// Point, if > 0, runs only the Point-th point (1-based) — the repro
	// knob the failure message prints.
	Point   int
	Verbose bool
	// AbsorbInterval runs every point with KVell's write-absorption front
	// end at this commit interval (0 = off; KVell only).
	AbsorbInterval env.Time
	// TieredHotBytes runs every point with KVell's hot-key cache of this
	// size (0 = off; KVell only).
	TieredHotBytes int64
}

// SweepPoint returns the i-th (1-based) derived crash point for a master
// seed: the per-run seed and the write index to die at. Exposed so a
// failure can be reproduced by index.
func SweepPoint(seed int64, i int) (pointSeed, atWrite int64) {
	// Seeded from the sweep's master seed: derivation must be reproducible.
	rng := rand.New(rand.NewSource(seed * 31337))
	atWrite = 0
	pointSeed = 0
	for j := 1; j <= i; j++ {
		pointSeed = seed + int64(j)*1_000_003
		atWrite = 150 + rng.Int63n(2_850)
	}
	return pointSeed, atWrite
}

// CrashSweep crashes one engine at Points seeded write indices and verifies
// recovery after each. It returns the number of failing points; every
// failure prints the exact flags that reproduce it.
func CrashSweep(kind EngineKind, o SweepOpts, w io.Writer) int {
	if o.Points == 0 {
		o.Points = 25
	}
	failures := 0
	for i := 1; i <= o.Points; i++ {
		if o.Point > 0 && i != o.Point {
			continue
		}
		pointSeed, atWrite := SweepPoint(o.Seed, i)
		res, err := RunCrash(CrashSpec{
			Engine:         kind,
			Seed:           pointSeed,
			Records:        o.Records,
			AtWrite:        atWrite,
			AbsorbInterval: o.AbsorbInterval,
			TieredHotBytes: o.TieredHotBytes,
		})
		label := kind.String()
		if o.AbsorbInterval > 0 {
			label += "+absorb"
		}
		if o.TieredHotBytes > 0 {
			label += "+hotcache"
		}
		if err != nil {
			failures++
			extra := ""
			if o.AbsorbInterval > 0 {
				extra += fmt.Sprintf(" -absorb-us=%d", int64(o.AbsorbInterval/env.Microsecond))
			}
			if o.TieredHotBytes > 0 {
				extra += fmt.Sprintf(" -hot-mb=%d", o.TieredHotBytes>>20)
			}
			fmt.Fprintf(w, "FAIL %-16s point %2d/%d: %v\n", label, i, o.Points, err)
			fmt.Fprintf(w, "     repro: go run ./cmd/kvell-crash -engine=%s -seed=%d -point=%d%s\n",
				engineFlag(kind), o.Seed, i, extra)
			continue
		}
		if o.Verbose {
			fmt.Fprintf(w, "ok   %-16s point %2d/%d: crash@%s write=%d inflight=%d (kept %d, dropped %d, torn %d) acked=%d replayed=%d recover=%s digest=%016x\n",
				label, i, o.Points, stats.FmtDur(res.CrashTime), res.AtWrite, res.Fault.InFlight,
				res.Fault.Completed, res.Fault.Dropped, res.Fault.Torn,
				res.AckedUpdates, res.Replayed, stats.FmtDur(res.RecoverTime), res.Digest)
		}
	}
	return failures
}

// engineFlag is the -engine spelling kvell-crash accepts for a kind.
func engineFlag(kind EngineKind) string {
	switch kind {
	case KVell:
		return "kvell"
	case RocksLike:
		return "rocks"
	case PebblesLike:
		return "pebbles"
	case WiredTigerLike:
		return "wt"
	case TokuLike:
		return "toku"
	default:
		return "?"
	}
}

// ParseEngineFlag inverts engineFlag (for the CLI); ok is false on an
// unknown name.
func ParseEngineFlag(name string) (EngineKind, bool) {
	for _, k := range AllEngines {
		if engineFlag(k) == name {
			return k, true
		}
	}
	return 0, false
}

// recoveryScaleExp measures recovery time as the store grows: KVell's
// full-scan index rebuild is bandwidth-bound, so recovery time scales with
// the dataset (§6.6 — the paper recovers 100GB in 6.6s this way). Each
// size crashes a live store mid-workload and times the reopen.
func recoveryScaleExp(o Options, w io.Writer) {
	sizes := []int64{25_000, 50_000, 100_000, 200_000}
	if o.Quick {
		sizes = []int64{10_000, 20_000, 40_000}
	}
	fmt.Fprintf(w, "Recovery time vs store size (§6.6): KVell full-scan rebuild after a mid-workload crash\n\n")
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "records", "items", "recover", "items/s")
	for _, n := range sizes {
		res, err := RunCrash(CrashSpec{
			Engine:  KVell,
			Seed:    o.Seed + n,
			Records: n,
			AtWrite: 1_000,
		})
		if err != nil {
			fmt.Fprintf(w, "%-12d FAILED: %v\n", n, err)
			continue
		}
		secs := float64(res.RecoverTime) / float64(env.Second)
		fmt.Fprintf(w, "%-12d %12d %12s %14.0f\n", n, res.Replayed, stats.FmtDur(res.RecoverTime), float64(res.Replayed)/secs)
	}
	fmt.Fprintf(w, "\nPaper: recovery scans the full slabs at device bandwidth; 100GB recovers in 6.6s.\n")
}
