package harness

import (
	"fmt"
	"io"
	"math/rand"

	"kvell/internal/core"
	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/engine/lsm"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/nutanix"
	"kvell/internal/pagecache"
	"kvell/internal/sim"
	"kvell/internal/stats"
	"kvell/internal/ycsb"
)

func ycsbSpecGen(wl byte, dist ycsb.Distribution, records int64, itemSize int) func(int64) Generator {
	return func(seed int64) Generator {
		return ycsb.NewGenerator(ycsb.Core(wl), dist, records, itemSize, seed)
	}
}

// table4 documents the YCSB core workloads and verifies the generator's
// realized mixes.
func table4(o Options, w io.Writer) {
	fmt.Fprintf(w, "Table 4: YCSB core workloads (mix realized by the generator over 20K draws)\n\n")
	fmt.Fprintf(w, "%-8s %-45s %s\n", "Workload", "Description", "realized mix")
	desc := map[byte]string{
		'A': "write-intensive: 50% updates, 50% reads",
		'B': "read-intensive: 5% updates, 95% reads",
		'C': "read-only: 100% reads",
		'D': "read-latest: 5% inserts, 95% reads",
		'E': "scan-intensive: 5% inserts, 95% scans (avg 50)",
		'F': "50% read-modify-write, 50% reads",
	}
	for _, wl := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		g := ycsb.NewGenerator(ycsb.Core(wl), ycsb.Uniform, 10_000, 1024, o.Seed)
		counts := map[kv.OpType]int{}
		for i := 0; i < 20_000; i++ {
			counts[g.Next().Op]++
		}
		fmt.Fprintf(w, "YCSB %c   %-45s", wl, desc[wl])
		for _, op := range []kv.OpType{kv.OpGet, kv.OpUpdate, kv.OpRMW, kv.OpScan} {
			if counts[op] > 0 {
				fmt.Fprintf(w, " %s=%d%%", op, counts[op]*100/20_000)
			}
		}
		fmt.Fprintln(w)
	}
}

// fig5 is the headline comparison: average YCSB throughput for all five
// engines under uniform and Zipfian key distributions (Config-Optane).
func fig5(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(2 * env.Second)
	fmt.Fprintf(w, "Figure 5: YCSB average throughput (Config-Optane, %d x 1KB records, cache = 1/3)\n", records)
	for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
		fmt.Fprintf(w, "\n-- %s key distribution --\n", dist)
		fmt.Fprintf(w, "%-16s", "workload")
		for _, k := range AllEngines {
			fmt.Fprintf(w, " %14s", k)
		}
		fmt.Fprintln(w)
		for _, wl := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
			fmt.Fprintf(w, "YCSB %c          ", wl)
			var specs []Spec
			for _, k := range AllEngines {
				specs = append(specs, Spec{
					Name: fmt.Sprintf("fig5-%c-%s-%v", wl, dist, k), Seed: o.Seed,
					Engine: k, Records: records,
					Gen:      ycsbSpecGen(wl, dist, records, 1024),
					Duration: dur,
				})
			}
			var kvellT, best float64
			for i, r := range o.runAll(specs...) {
				fmt.Fprintf(w, " %14s", stats.FmtRate(r.Throughput))
				if AllEngines[i] == KVell {
					kvellT = r.Throughput
				} else if r.Throughput > best {
					best = r.Throughput
				}
			}
			if best > 0 {
				fmt.Fprintf(w, "   KVell/next-best = %.1fx", kvellT/best)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nPaper: KVell >= 2x next best on read-dominated, >= 5x on write-dominated;\ncomparable or better on scans (E): ~ RocksDB uniform, +25%% and more on Zipfian.\n")
}

// fig3 shows the LSM and B+ tree baselines saturating CPU while leaving
// device bandwidth idle; fig6 shows KVell doing the opposite.
func fig3(o Options, w io.Writer) {
	utilTimelines(o, w, "Figure 3", []EngineKind{RocksLike, WiredTigerLike})
	fmt.Fprintf(w, "\nPaper: both are CPU-bound (~100%%) with the device far below its bandwidth.\n")
}

func fig6(o Options, w io.Writer) {
	utilTimelines(o, w, "Figure 6", []EngineKind{KVell})
	fmt.Fprintf(w, "\nPaper: KVell uses ~98%% of device bandwidth without becoming CPU-bound (~40%% CPU).\n")
}

func utilTimelines(o Options, w io.Writer, figname string, kinds []EngineKind) {
	records := o.records(100_000)
	dur := o.dur(6 * env.Second)
	fmt.Fprintf(w, "%s: disk bandwidth and CPU utilization timelines (YCSB A uniform, 1KB)\n\n", figname)
	for _, k := range kinds {
		r := Run(Spec{
			Name: "util-" + k.String(), Seed: o.Seed,
			Engine: k, Records: records,
			Gen:      ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration: dur, Warmup: dur / 6, Bucket: dur / 12,
		})
		maxBW := float64(r.Spec.Profile.Channels) * device.PageSize /
			(float64(r.Spec.Profile.WriteSvc) / float64(env.Second))
		fmt.Fprintf(w, "%-16s avg throughput %s, device %s of max %.0fMB/s, CPU %.0f%%\n",
			r.EngineName, stats.FmtRate(r.Throughput),
			stats.FmtBytesRate(meanRate(r.DiskBW)), maxBW/(1<<20),
			100*r.CPUUtil.MeanFraction(1))
		fmt.Fprintf(w, "  disk MB/s:")
		for _, v := range r.DiskBW.Rates() {
			fmt.Fprintf(w, " %6.0f", v/(1<<20))
		}
		fmt.Fprintf(w, "\n  CPU %%    :")
		for _, v := range r.CPUUtil.Fractions() {
			fmt.Fprintf(w, " %6.0f", 100*v)
		}
		fmt.Fprintln(w)
	}
}

func meanRate(tl *stats.Timeline) float64 {
	r := tl.Rates()
	if len(r) <= 1 {
		if len(r) == 1 {
			return r[0]
		}
		return 0
	}
	r = r[:len(r)-1]
	var s float64
	for _, v := range r {
		s += v
	}
	return s / float64(len(r))
}

// fig4 and fig7 show throughput fluctuations over time.
func fig4(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(10 * env.Second)
	fmt.Fprintf(w, "Figure 4: per-second throughput, YCSB A uniform\n\n")
	for _, k := range []EngineKind{RocksLike, WiredTigerLike} {
		r := Run(Spec{
			Name: "fig4", Seed: o.Seed, Engine: k, Records: records,
			Gen:      ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration: dur, Warmup: dur / 10, Bucket: dur / 16,
		})
		min, max := r.Timeline.MinMax(1)
		fmt.Fprintf(w, "%-16s avg=%s min=%s max=%s\n  ", r.EngineName,
			stats.FmtRate(r.Throughput), stats.FmtRate(min), stats.FmtRate(max))
		for _, v := range r.Timeline.Rates() {
			fmt.Fprintf(w, " %7s", stats.FmtRate(v))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nPaper: RocksDB averages 63K but drops to 1.5K; WiredTiger drops from 120K to 8.5K.\n")
}

func fig7(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(10 * env.Second)
	fmt.Fprintf(w, "Figure 7: per-second throughput timelines, uniform distribution\n")
	for _, wl := range []byte{'A', 'B', 'C', 'E'} {
		fmt.Fprintf(w, "\n-- YCSB %c --\n", wl)
		var specs []Spec
		for _, k := range []EngineKind{KVell, RocksLike, PebblesLike, WiredTigerLike} {
			specs = append(specs, Spec{
				Name: "fig7", Seed: o.Seed, Engine: k, Records: records,
				Gen:      ycsbSpecGen(wl, ycsb.Uniform, records, 1024),
				Duration: dur, Warmup: dur / 10, Bucket: dur / 16,
			})
		}
		for _, r := range o.runAll(specs...) {
			min, max := r.Timeline.MinMax(1)
			fmt.Fprintf(w, "%-16s avg=%8s min=%8s max=%8s |", r.EngineName,
				stats.FmtRate(r.Throughput), stats.FmtRate(min), stats.FmtRate(max))
			for _, v := range r.Timeline.Rates() {
				fmt.Fprintf(w, " %6s", stats.FmtRate(v))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nPaper: KVell is flat after ramp-up; the others dip by an order of magnitude during maintenance.\n")
}

// table5 reports tail latency on YCSB A.
func table5(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(8 * env.Second)
	fmt.Fprintf(w, "Table 5: p99 and max request latency, YCSB A uniform\n\n")
	fmt.Fprintf(w, "%-18s %10s %10s\n", "Engine", "p99", "max")
	var specs []Spec
	for _, k := range []EngineKind{KVell, RocksLike, PebblesLike, WiredTigerLike} {
		specs = append(specs, Spec{
			Name: "table5", Seed: o.Seed, Engine: k, Records: records,
			Gen: ycsbSpecGen('A', ycsb.Uniform, records, 1024), Duration: dur,
		})
	}
	for _, r := range o.runAll(specs...) {
		fmt.Fprintf(w, "%-18s %10s %10s\n", r.EngineName,
			stats.FmtDur(r.Lat.Percentile(0.99)), stats.FmtDur(r.Lat.Max()))
	}
	fmt.Fprintf(w, "\nPaper: KVell 2.4ms/3.9ms; RocksDB 5.4ms/9.6s; PebblesDB 2.8ms/9.4s; WiredTiger 4.7ms/3s.\n")
}

// fig8 runs the Config-Amazon-8NVMe configuration: 8 drives, more cores.
func fig8(o Options, w io.Writer) {
	records := o.records(160_000)
	dur := o.dur(2 * env.Second)
	fmt.Fprintf(w, "Figure 8: YCSB throughput on Config-Amazon-8NVMe (8 disks, 32 cores, uniform)\n\n")
	fmt.Fprintf(w, "%-10s", "workload")
	for _, k := range AllEngines {
		fmt.Fprintf(w, " %14s", k)
	}
	fmt.Fprintln(w)
	for _, wl := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		fmt.Fprintf(w, "YCSB %c    ", wl)
		var specs []Spec
		for _, k := range AllEngines {
			specs = append(specs, Spec{
				Name: "fig8", Seed: o.Seed, Engine: k, Records: records,
				Profile: device.AmazonNVMe(), NDisks: 8, Cores: 32,
				Clients:  map[bool]int{true: 16, false: 48}[k == KVell],
				Gen:      ycsbSpecGen(wl, ycsb.Uniform, records, 1024),
				Duration: dur,
			})
		}
		var kvellT, best float64
		for i, r := range o.runAll(specs...) {
			fmt.Fprintf(w, " %14s", stats.FmtRate(r.Throughput))
			if AllEngines[i] == KVell {
				kvellT = r.Throughput
			} else if r.Throughput > best {
				best = r.Throughput
			}
		}
		fmt.Fprintf(w, "   KVell/next-best = %.1fx\n", kvellT/best)
	}
	fmt.Fprintf(w, "\nPaper: KVell 6.7x RocksDB, 8x PebblesDB, 13x TokuMX, 9.3x WiredTiger on A;\nslightly ahead of RocksDB on E. (Cores scaled 72 -> 32 here; see EXPERIMENTS.md.)\n")
}

// fig9a runs the two Nutanix production workloads.
func fig9a(o Options, w io.Writer) {
	records := o.records(120_000)
	dur := o.dur(3 * env.Second)
	fmt.Fprintf(w, "Figure 9A: Nutanix production workloads (57:41:2 write:read:scan, 250B-1KB items)\n\n")
	fmt.Fprintf(w, "%-12s", "workload")
	for _, k := range AllEngines {
		fmt.Fprintf(w, " %14s", k)
	}
	fmt.Fprintln(w)
	for _, prof := range []nutanix.Profile{nutanix.Workload1, nutanix.Workload2} {
		fmt.Fprintf(w, "production %d", prof)
		var kvellT, rocksT float64
		for _, k := range AllEngines {
			r := Run(Spec{
				Name: "fig9a", Seed: o.Seed, Engine: k, Records: records,
				ItemSize: 512, // sizes are drawn 250B-1KB by the generator
				Gen: func(seed int64) Generator {
					return nutanix.New(prof, records, seed)
				},
				Duration: dur,
			})
			fmt.Fprintf(w, " %14s", stats.FmtRate(r.Throughput))
			if k == KVell {
				kvellT = r.Throughput
			}
			if k == RocksLike {
				rocksT = r.Throughput
			}
		}
		fmt.Fprintf(w, "   KVell/RocksDB = %.1fx\n", kvellT/rocksT)
	}
	fmt.Fprintf(w, "\nPaper: KVell ~4x RocksDB (the next best) on both workloads.\n")
}

// fig9b scales the dataset up with a fixed small cache (0.6%% cached, as in
// the paper's 5TB/30GB configuration) to test scaling with dataset size.
func fig9b(o Options, w io.Writer) {
	records := o.records(2_000_000)
	dur := o.dur(2 * env.Second)
	fmt.Fprintf(w, "Figure 9B: KVell on a large dataset (Config-Amazon-8NVMe, %d records, cache 0.6%%)\n", records)
	fmt.Fprintf(w, "(values null-backed: timing and I/O pattern are unaffected; see DESIGN.md)\n\n")
	for _, wl := range []byte{'A', 'C', 'E'} {
		r := Run(Spec{
			Name: "fig9b", Seed: o.Seed, Engine: KVell, Records: records,
			Profile: device.AmazonNVMe(), NDisks: 8, Cores: 32, Clients: 16,
			CacheFrac:  0.006,
			NullBacked: true,
			Gen:        ycsbSpecGen(wl, ycsb.Uniform, records, 1024),
			Duration:   dur,
		})
		st := r.Engine.(*core.Store).Stats()
		fmt.Fprintf(w, "YCSB %c: %s ops/s  (index %dMB for %d items)\n",
			wl, stats.FmtRate(r.Throughput), st.IndexBytes>>20, st.Items)
	}
	fmt.Fprintf(w, "\nPaper (5B keys): 866K req/s on A (92%% of peak), 2.7M on C, 52K scans/s on E —\nslightly below the small-dataset numbers because lookups in bigger indexes cost ~25%% more.\n")
}

// fig10 sweeps item size on YCSB E: sorted RocksDB reads several small
// items per page; unsorted KVell always reads one page per item.
func fig10(o Options, w io.Writer) {
	dur := o.dur(4 * env.Second)
	fmt.Fprintf(w, "Figure 10: YCSB E (scan-dominated) throughput vs item size\n\n")
	fmt.Fprintf(w, "%-10s %14s %14s %20s\n", "item size", "KVell", "RocksDB-like", "RocksDB-min(compact)")
	for _, size := range []int{64, 256, 1024, 4096} {
		records := int64(64 << 20 / size) // constant ~64MB dataset
		if o.Quick {
			records /= 2
		}
		var kvellT float64
		var rocksAvg, rocksMin float64
		for _, k := range []EngineKind{KVell, RocksLike} {
			r := Run(Spec{
				Name: "fig10", Seed: o.Seed, Engine: k,
				Records: records, ItemSize: size,
				Gen:      ycsbSpecGen('E', ycsb.Uniform, records, size),
				Duration: dur, Warmup: dur / 8,
			})
			if k == KVell {
				kvellT = r.Throughput
			} else {
				rocksAvg = r.Throughput
				rocksMin, _ = r.Timeline.MinMax(1)
			}
		}
		fmt.Fprintf(w, "%-10d %14s %14s %20s\n", size,
			stats.FmtRate(kvellT), stats.FmtRate(rocksAvg), stats.FmtRate(rocksMin))
	}
	fmt.Fprintf(w, "\nPaper: RocksDB wins for small items (reads 64x fewer pages at 64B), the advantage\nvanishes as items grow; KVell is flat and never collapses during compactions.\n")
}

// table6 models the in-memory index under memory pressure: B-tree nodes
// beyond the RAM budget fault through the kernel (the index is allocated
// from an mmap-ed file, §5.3).
func table6(o Options, w io.Writer) {
	dur := o.dur(env.Second)
	fmt.Fprintf(w, "Table 6: index lookups/s vs index-size/RAM ratio (Config-Amazon-8NVMe)\n\n")
	fmt.Fprintf(w, "%-18s %12s %12s\n", "indexSize/RAM", "Zipf ops/s", "Uniform ops/s")
	const depth = 5
	for _, ratio := range []float64{0.8, 1.03, 1.2, 2.6, 5.0} {
		row := make(map[string]float64)
		for _, dist := range []string{"zipf", "uniform"} {
			s := sim.New(o.Seed + 31)
			e := sim.NewEnv(s, 32)
			prof := device.AmazonNVMe()
			prof.SpikeEvery = 0
			d := device.NewSimDisk(s, prof, device.NullStore{})
			resident := 1.0
			if ratio > 1 {
				resident = 1 / ratio
			}
			skew := 1.0
			if dist == "zipf" {
				skew = 0.3 // hot nodes stay resident
			}
			var ops int64
			workers := 32
			for i := 0; i < workers; i++ {
				i := i
				e.Go("lookup", func(c env.Ctx) {
					r := rand.New(rand.NewSource(int64(i)*17 + o.Seed))
					buf := make([]byte, device.PageSize)
					for c.Now() < dur {
						c.CPU(depth * costs.BTreeNode)
						// The two top levels are always hot; deeper nodes
						// fault with probability (1-resident)*skew each.
						for lvl := 0; lvl < depth-2; lvl++ {
							if r.Float64() < (1-resident)*skew {
								c.CPU(costs.MmapFault)
								wt := newIOWaiter(e)
								d.Submit(&device.Request{Op: device.Read, Page: r.Int63n(1 << 31), Buf: buf, Done: wt.done})
								wt.wait(c)
							}
						}
						ops++
					}
				})
			}
			if err := s.Run(dur); err != nil {
				panic(err)
			}
			s.Close()
			row[dist] = float64(ops) / (float64(dur) / float64(env.Second))
		}
		fmt.Fprintf(w, "%-18.2f %12s %12s\n", ratio, stats.FmtRate(row["zipf"]), stats.FmtRate(row["uniform"]))
	}
	fmt.Fprintf(w, "\nPaper: 0.8 -> 24M/15M; 1.03 -> 2.4M/1.4M; 1.2 -> 614K/540K; 2.6 -> 348K/156K; 5.0 -> 280K/109K.\n")
}

// recoveryExp measures §6.6: KVell full-scan recovery (real) vs modeled
// commit-log replay for the baselines.
func recoveryExp(o Options, w io.Writer) {
	records := o.records(200_000)
	fmt.Fprintf(w, "Recovery (§6.6): crash during YCSB A, %d x 1KB records, Config-Amazon-8NVMe\n\n", records)

	// Phase 1: populate a KVell store and run a brief write burst.
	s1 := sim.New(o.Seed)
	e1 := sim.NewEnv(s1, 32)
	var stores []device.Store
	var disks []device.Disk
	for i := 0; i < 8; i++ {
		ms := device.NewMemStore()
		stores = append(stores, ms)
		disks = append(disks, device.NewSimDisk(s1, device.AmazonNVMe(), ms))
	}
	cfg := core.DefaultConfig(disks...)
	cfg.Workers = 16
	cfg.PageCachePages = int(records / 3)
	st, err := core.Open(e1, cfg)
	if err != nil {
		panic(err)
	}
	gen := ycsb.NewGenerator(ycsb.Core('A'), ycsb.Uniform, records, 1024, o.Seed)
	if err := st.BulkLoad(gen.InitialItems()); err != nil {
		panic(err)
	}
	st.Start()
	e1.Go("writer", func(c env.Ctx) {
		for i := 0; i < 5000; i++ {
			r := gen.Next()
			if r.Op == kv.OpUpdate {
				st.Put(c, r.Key, r.Value)
			}
		}
		// Crash: abandon the store with no shutdown.
	})
	if err := s1.Run(-1); err != nil {
		panic(err)
	}
	s1.Close()

	// Phase 2: recover a fresh store over the surviving bytes; virtual
	// time of Recover() is the measured recovery time.
	s2 := sim.New(o.Seed + 1)
	e2 := sim.NewEnv(s2, 32)
	var disks2 []device.Disk
	for i := 0; i < 8; i++ {
		disks2 = append(disks2, device.NewSimDisk(s2, device.AmazonNVMe(), stores[i]))
	}
	cfg2 := cfg
	cfg2.Disks = disks2
	st2, err := core.Open(e2, cfg2)
	if err != nil {
		panic(err)
	}
	var kvellTime env.Time
	var kvellItems int64
	e2.Go("recover", func(c env.Ctx) {
		t0 := c.Now()
		if err := st2.Recover(c); err != nil {
			panic(err)
		}
		kvellTime = c.Now() - t0
		kvellItems = st2.Stats().Items
	})
	if err := s2.Run(-1); err != nil {
		panic(err)
	}
	s2.Close()

	dataset := float64(records) * 1024
	// Project using the bandwidth actually achieved: at small scale the
	// scan is dominated by fixed empty-extent probes (one per slab), so
	// the dataset-proportional part must be separated out.
	var bytesRead int64
	for _, dd := range disks2 {
		bytesRead += dd.(*device.SimDisk).Counters().ReadBytes
	}
	kvellBW := float64(bytesRead) / (float64(kvellTime) / float64(env.Second))
	projKVell := 100e9 / kvellBW

	// RocksDB-like: REAL log replay. Run the same write burst through the
	// LSM engine (producing a real framed WAL), crash, then time ReplayWAL
	// on a fresh instance over the surviving bytes.
	var rocksT env.Time
	var rocksRecs int
	{
		s3 := sim.New(o.Seed + 2)
		e3 := sim.NewEnv(s3, 32)
		ms := device.NewMemStore()
		disk := device.NewSimDisk(s3, device.AmazonNVMe(), ms)
		lcfg := lsm.DefaultConfig(disk)
		lcfg.MemtableBytes = int64(records) * 1024 / 32
		ldb := lsm.New(e3, lcfg)
		gen3 := ycsb.NewGenerator(ycsb.Core('A'), ycsb.Uniform, records, 1024, o.Seed)
		if err := ldb.BulkLoad(gen3.InitialItems()); err != nil {
			panic(err)
		}
		ldb.Start()
		e3.Go("writer", func(c env.Ctx) {
			for i := 0; i < 5000; i++ {
				r := gen3.Next()
				if r.Op == kv.OpUpdate {
					ldb.Put(c, r.Key, r.Value)
				}
			}
			ldb.Stop(c)
		})
		if err := s3.Run(-1); err != nil {
			panic(err)
		}
		s3.Close()

		s4 := sim.New(o.Seed + 3)
		e4 := sim.NewEnv(s4, 32)
		disk4 := device.NewSimDisk(s4, device.AmazonNVMe(), ms)
		lcfg2 := lcfg
		lcfg2.Disks = []device.Disk{disk4}
		ldb2 := lsm.New(e4, lcfg2)
		e4.Go("recover", func(c env.Ctx) {
			t0 := c.Now()
			n, err := ldb2.ReplayWAL(c)
			if err != nil {
				panic(err)
			}
			rocksRecs = n
			rocksT = c.Now() - t0
		})
		if err := s4.Run(-1); err != nil {
			panic(err)
		}
		s4.Close()
	}
	// The paper measures whole-database recovery; our phase 1 logs only a
	// short burst, so project replay rate to the paper's outstanding-log
	// size (a few GB of WAL on the 100GB database, dominating its 18s).
	rocksRate := float64(rocksRecs) / (float64(rocksT) / float64(env.Second)) // records/s
	const rocksLogAssumed = 0.5e9                                             // outstanding WAL at crash on the 100GB run
	rocksProj := rocksLogAssumed / 1024 / rocksRate

	// WiredTiger-like: modeled replay (its slot log has no replay path
	// here); slightly slower per record, as the paper observes.
	wtT, wtProj := func() (env.Time, float64) {
		s := sim.New(o.Seed + 4)
		e := sim.NewEnv(s, 32)
		prof := device.AmazonNVMe()
		prof.SpikeEvery = 0
		d := device.NewSimDisk(s, prof, device.NullStore{})
		logBytes := int64(dataset * 0.05)
		recs := logBytes / 1024
		var took env.Time
		e.Go("replay", func(c env.Ctx) {
			t0 := c.Now()
			buf := make([]byte, 256*device.PageSize)
			for off := int64(0); off < logBytes; off += int64(len(buf)) {
				wt := newIOWaiter(e)
				d.Submit(&device.Request{Op: device.Read, Page: off / device.PageSize, Buf: buf, Done: wt.done})
				wt.wait(c)
			}
			c.CPU(env.Time(recs) * 12 * env.Microsecond)
			took = c.Now() - t0
		})
		if err := s.Run(-1); err != nil {
			panic(err)
		}
		s.Close()
		const wtLogAssumed = 1.5e9 // outstanding log at crash on the 100GB run (60s checkpoints)
		proj := float64(took) / float64(env.Second) * (wtLogAssumed / float64(logBytes))
		return took, proj
	}()

	fmt.Fprintf(w, "%-18s %14s %26s\n", "Engine", "measured", "projected @100GB dataset")
	fmt.Fprintf(w, "%-18s %14s %25.1fs   (scan bw %s; %d items rebuilt)\n", "KVell",
		stats.FmtDur(kvellTime), projKVell, stats.FmtBytesRate(kvellBW), kvellItems)
	fmt.Fprintf(w, "%-18s %14s %25.1fs   (real WAL replay, %d records at %s rec/s)\n", "RocksDB-like",
		stats.FmtDur(rocksT), rocksProj, rocksRecs, stats.FmtRate(rocksRate))
	fmt.Fprintf(w, "%-18s %14s %25.1fs   (modeled log replay)\n", "WiredTiger-like", stats.FmtDur(wtT), wtProj)
	fmt.Fprintf(w, "\nProjections assume 0.5GB (RocksDB) / 1.5GB (WiredTiger) of outstanding log at crash.\n")
	fmt.Fprintf(w, "Paper: KVell 6.6s, RocksDB 18s, WiredTiger 24s on the 100GB database. KVell scans the\nwhole database at device bandwidth; log-replay systems are CPU-bound on record re-insertion.\n")
}

// batchLat reproduces §6.5.1: batch 64 maximizes bandwidth at 158us average
// latency; batch 32 halves latency at 88%% of bandwidth.
func batchLat(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(2 * env.Second)
	fmt.Fprintf(w, "Batch size trade-off (§6.5.1): YCSB A uniform on Config-Optane\n\n")
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "batch", "throughput", "avg lat", "device util")
	for _, batch := range []int{64, 32} {
		r := Run(Spec{
			Name: "batchlat", Seed: o.Seed, Engine: KVell, Records: records,
			Gen:        ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration:   dur,
			Window:     batch / 2,
			TweakKVell: func(c *core.Config) { c.BatchSize = batch },
		})
		fmt.Fprintf(w, "%-8d %12s %12s %11.0f%%\n", batch,
			stats.FmtRate(r.Throughput), stats.FmtDur(r.Lat.Mean()),
			100*r.DiskUtil.MeanFraction(1))
	}
	fmt.Fprintf(w, "\nPaper: batch 64 -> 158us average latency at full bandwidth; batch 32 -> 76us at 88%%.\n")
}

// ablationCache compares the page-cache index structures (§5.3): the hash
// table's growth pauses blow up tail latency; the B-tree stays flat.
func ablationCache(o Options, w io.Writer) {
	records := o.records(120_000)
	dur := o.dur(4 * env.Second)
	fmt.Fprintf(w, "Ablation: page-cache index structure (YCSB B uniform; §5.3 anecdote)\n\n")
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "index", "throughput", "p99", "max")
	for _, kind := range []pagecache.IndexKind{pagecache.IndexBTree, pagecache.IndexHash} {
		name := "B-tree"
		if kind == pagecache.IndexHash {
			name = "hash"
		}
		r := Run(Spec{
			Name: "ablation-cache", Seed: o.Seed, Engine: KVell, Records: records,
			Gen:        ycsbSpecGen('B', ycsb.Uniform, records, 1024),
			Duration:   dur,
			TweakKVell: func(c *core.Config) { c.CacheIndex = kind },
		})
		fmt.Fprintf(w, "%-10s %12s %12s %12s\n", name,
			stats.FmtRate(r.Throughput), stats.FmtDur(r.Lat.Percentile(0.99)), stats.FmtDur(r.Lat.Max()))
	}
	fmt.Fprintf(w, "\nPaper: hash-table growth caused up to 100ms insertions; switching to a B-tree removed the spikes.\n")
}

// ablationBatch sweeps the I/O batch size.
func ablationBatch(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(env.Second)
	fmt.Fprintf(w, "Ablation: I/O batch size sweep (YCSB A uniform)\n\n")
	fmt.Fprintf(w, "%-8s %12s %12s\n", "batch", "throughput", "avg lat")
	for _, batch := range []int{1, 4, 16, 32, 64, 128} {
		r := Run(Spec{
			Name: "ablation-batch", Seed: o.Seed, Engine: KVell, Records: records,
			Gen:        ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration:   dur,
			Window:     max(batch/2, 1),
			TweakKVell: func(c *core.Config) { c.BatchSize = batch },
		})
		fmt.Fprintf(w, "%-8d %12s %12s\n", batch, stats.FmtRate(r.Throughput), stats.FmtDur(r.Lat.Mean()))
	}
	fmt.Fprintf(w, "\nBatching amortizes syscall CPU (§4.3): throughput should rise steeply from 1 to ~64,\nwhile average latency grows with queue depth.\n")
}

// ablationCommitLog measures what §4.4 avoids: adding a commit log to
// KVell doubles write I/O and costs throughput.
func ablationCommitLog(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(2 * env.Second)
	fmt.Fprintf(w, "Ablation: KVell with vs without a commit log (YCSB A uniform)\n\n")
	for _, withLog := range []bool{false, true} {
		r := Run(Spec{
			Name: "ablation-commitlog", Seed: o.Seed, Engine: KVell, Records: records,
			Gen:        ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration:   dur,
			TweakKVell: func(c *core.Config) { c.WithCommitLog = withLog },
		})
		name := "no commit log (KVell)"
		if withLog {
			name = "with commit log"
		}
		fmt.Fprintf(w, "%-24s %12s ops/s  avg lat %s\n", name,
			stats.FmtRate(r.Throughput), stats.FmtDur(r.Lat.Mean()))
	}
	fmt.Fprintf(w, "\n§4.4: removing the commit log leaves all disk bandwidth for useful work.\n")
}

// ablationWorkers shows shared-nothing scaling across workers.
func ablationWorkers(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(env.Second)
	fmt.Fprintf(w, "Ablation: KVell worker scaling (YCSB A uniform, 8 cores)\n\n")
	fmt.Fprintf(w, "%-10s %12s\n", "workers", "throughput")
	for _, workers := range []int{1, 2, 4, 8} {
		r := Run(Spec{
			Name: "ablation-workers", Seed: o.Seed, Engine: KVell, Records: records,
			Gen:        ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration:   dur,
			TweakKVell: func(c *core.Config) { c.Workers = workers },
		})
		fmt.Fprintf(w, "%-10d %12s\n", workers, stats.FmtRate(r.Throughput))
	}
	fmt.Fprintf(w, "\nEach worker owns its partition (§4.1); throughput scales until the device saturates.\n")
}

// ablationShared contrasts KVell's shared-nothing design with the
// conventional shared-structures design (§4.1): same worker count, but one
// index/cache/slab set behind a global lock.
func ablationShared(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(env.Second)
	fmt.Fprintf(w, "Ablation: shared-nothing vs shared-everything (YCSB A uniform, 8 workers)\n\n")
	for _, shared := range []bool{false, true} {
		r := Run(Spec{
			Name: "ablation-shared", Seed: o.Seed, Engine: KVell, Records: records,
			Gen:        ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration:   dur,
			TweakKVell: func(c *core.Config) { c.SharedEverything = shared },
		})
		name := "shared-nothing (KVell)"
		if shared {
			name = "shared-everything"
		}
		fmt.Fprintf(w, "%-24s %12s ops/s  p99 %s\n", name,
			stats.FmtRate(r.Throughput), stats.FmtDur(r.Lat.Percentile(0.99)))
	}
	fmt.Fprintf(w, "\n§4.1: partitioning all structures per worker removes synchronization from the common path.\n")
}

// ablationInPlace measures the §5.6 power-failure-safe variant: every
// update becomes append+tombstone instead of an in-place page write.
func ablationInPlace(o Options, w io.Writer) {
	records := o.records(100_000)
	dur := o.dur(env.Second)
	fmt.Fprintf(w, "Ablation: in-place updates vs append+tombstone (YCSB A uniform)\n\n")
	for _, noInPlace := range []bool{false, true} {
		r := Run(Spec{
			Name: "ablation-inplace", Seed: o.Seed, Engine: KVell, Records: records,
			Gen:        ycsbSpecGen('A', ycsb.Uniform, records, 1024),
			Duration:   dur,
			TweakKVell: func(c *core.Config) { c.NoInPlaceUpdates = noInPlace },
		})
		name := "in-place (KVell default)"
		if noInPlace {
			name = "append+tombstone (power-failure-safe)"
		}
		c := r.Disks[0].Counters()
		fmt.Fprintf(w, "%-40s %12s ops/s  %.2f writes/op\n", name,
			stats.FmtRate(r.Throughput), float64(c.WriteOps)/float64(r.Ops))
	}
	fmt.Fprintf(w, "\n§5.6: the variant lifts the atomic-4KB-write assumption at the cost of extra tombstone writes.\n")
}
