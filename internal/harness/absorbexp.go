package harness

import (
	"fmt"
	"io"

	"kvell/internal/core"
	"kvell/internal/env"
	"kvell/internal/stats"
	"kvell/internal/ycsb"
)

// AbsorbOpts parameterizes the write-absorption sweep: skew × arrival rate ×
// commit interval, per engine. Interval 0 is the absorption-off baseline
// (only meaningful for KVell; other engines always run at 0).
type AbsorbOpts struct {
	Engines   []EngineKind
	Thetas    []float64
	Rates     []float64 // arrivals per virtual second
	Intervals []env.Time
	Records   int64
	ItemSize  int
	Duration  env.Time
	// MaxPerShard is the admission valve bound (see Arrival).
	MaxPerShard int
	Policy      ValvePolicy
}

func (ao *AbsorbOpts) defaults(o Options) {
	if len(ao.Engines) == 0 {
		ao.Engines = []EngineKind{KVell, RocksLike}
	}
	if len(ao.Thetas) == 0 {
		ao.Thetas = []float64{0.6, 0.99}
	}
	if len(ao.Rates) == 0 {
		ao.Rates = []float64{100_000, 1_000_000}
	}
	if len(ao.Intervals) == 0 {
		ao.Intervals = []env.Time{0, 200 * env.Microsecond, 800 * env.Microsecond}
	}
	if ao.Records == 0 {
		ao.Records = 20_000
	}
	if ao.ItemSize == 0 {
		ao.ItemSize = 1024
	}
	if ao.Duration == 0 {
		ao.Duration = o.dur(env.Second)
	}
	if ao.MaxPerShard == 0 {
		ao.MaxPerShard = 1024
	}
}

// AbsorbPoint is one cell of the sweep with its headline measurements.
type AbsorbPoint struct {
	Engine   EngineKind
	Theta    float64
	Rate     float64
	Interval env.Time

	Res         Result
	WritesPerOp float64 // device write ops per completed operation
}

// updateOnlyGen is a pure-update Zipfian stream with configurable skew —
// the workload where write absorption has something to absorb.
func updateOnlyGen(records int64, itemSize int, theta float64) func(int64) Generator {
	return func(seed int64) Generator {
		wl := ycsb.Workload{Name: "update-only", UpdatePct: 100}
		return ycsb.NewGeneratorTheta(wl, ycsb.Zipfian, records, itemSize, seed, theta)
	}
}

// absorbSpec builds one sweep cell's Spec.
func absorbSpec(o Options, ao *AbsorbOpts, eng EngineKind, theta, rate float64, interval env.Time) Spec {
	return Spec{
		Name:     "absorb",
		Seed:     o.Seed,
		Engine:   eng,
		Records:  ao.Records,
		ItemSize: ao.ItemSize,
		Gen:      updateOnlyGen(ao.Records, ao.ItemSize, theta),
		Duration: ao.Duration,
		Arrival: &Arrival{
			Rate:        rate,
			MaxPerShard: ao.MaxPerShard,
			Policy:      ao.Policy,
		},
		TweakKVell: func(c *core.Config) {
			c.AbsorbInterval = interval
			if interval > 0 {
				// Let the buffer hold as much as the valve admits per worker;
				// the default (4x batch) forces premature overflow flushes.
				c.AbsorbMaxHeld = ao.MaxPerShard
			}
		},
	}
}

// AbsorbSweep runs the grid and computes per-point device-write cost.
func AbsorbSweep(o Options, ao AbsorbOpts) []AbsorbPoint {
	ao.defaults(o)
	var pts []AbsorbPoint
	var specs []Spec
	for _, eng := range ao.Engines {
		intervals := ao.Intervals
		if eng != KVell {
			intervals = intervals[:1] // baseline only: absorption is a KVell front end
		}
		for _, theta := range ao.Thetas {
			for _, rate := range ao.Rates {
				for _, iv := range intervals {
					pts = append(pts, AbsorbPoint{Engine: eng, Theta: theta, Rate: rate, Interval: iv})
					specs = append(specs, absorbSpec(o, &ao, eng, theta, rate, iv))
				}
			}
		}
	}
	results := o.runAll(specs...)
	for i := range pts {
		pts[i].Res = results[i]
		var writes int64
		for _, d := range results[i].Disks {
			writes += d.Counters().WriteOps
		}
		if n := results[i].OpsTotal; n > 0 {
			pts[i].WritesPerOp = float64(writes) / float64(n)
		}
	}
	return pts
}

// findPoint returns the sweep cell matching the coordinates, or nil.
func findPoint(pts []AbsorbPoint, eng EngineKind, theta, rate float64, iv env.Time) *AbsorbPoint {
	for i := range pts {
		p := &pts[i]
		if p.Engine == eng && p.Theta == theta && p.Rate == rate && p.Interval == iv {
			return p
		}
	}
	return nil
}

// absorbExp is the registered experiment: the default grid, one table row
// per cell, then the headline device-write-reduction and overload-tail
// summary.
func absorbExp(o Options, w io.Writer) {
	AbsorbReport(o, AbsorbOpts{}, w)
}

// AbsorbReport runs the sweep described by ao (zero fields take defaults)
// and prints the table and headline summary — the entry point kvell-absorb
// uses for flag-selected rates and skews.
func AbsorbReport(o Options, ao AbsorbOpts, w io.Writer) {
	ao.defaults(o)
	fmt.Fprintf(w, "Write absorption: open-loop update-only Zipfian sweep (%d records, valve bound %d/shard)\n\n",
		ao.Records, ao.MaxPerShard)
	fmt.Fprintf(w, "%-14s %-6s %10s %10s %12s %10s %10s %10s %8s\n",
		"engine", "theta", "rate/s", "interval", "goodput", "p50", "p99", "writes/op", "shed")
	pts := AbsorbSweep(o, ao)
	for i := range pts {
		p := &pts[i]
		iv := "off"
		if p.Interval > 0 {
			iv = stats.FmtDur(p.Interval)
		}
		fmt.Fprintf(w, "%-14s %-6.2f %10.0f %10s %12s %10s %10s %10.2f %8d\n",
			p.Engine, p.Theta, p.Rate, iv,
			stats.FmtRate(p.Res.Throughput),
			stats.FmtDur(p.Res.Lat.Percentile(0.50)),
			stats.FmtDur(p.Res.Lat.Percentile(0.99)),
			p.WritesPerOp, p.Res.Shed)
	}
	fmt.Fprintf(w, "\n")

	// Headline: best write reduction per (theta, rate) on KVell.
	maxTheta := ao.Thetas[len(ao.Thetas)-1]
	for _, theta := range ao.Thetas {
		for _, rate := range ao.Rates {
			base := findPoint(pts, KVell, theta, rate, 0)
			if base == nil || base.WritesPerOp == 0 {
				continue
			}
			best := base
			for _, iv := range ao.Intervals[1:] {
				if p := findPoint(pts, KVell, theta, rate, iv); p != nil && p.WritesPerOp < best.WritesPerOp {
					best = p
				}
			}
			red := base.WritesPerOp / best.WritesPerOp
			fmt.Fprintf(w, "KVell theta=%.2f rate=%.0f: device-write reduction %.2fx (%.2f -> %.2f writes/op, interval %s)\n",
				theta, rate, red, base.WritesPerOp, best.WritesPerOp, stats.FmtDur(best.Interval))
			if theta >= maxTheta && rate >= ao.Rates[len(ao.Rates)-1] {
				verdict := "FAIL"
				if red >= 2 {
					verdict = "ok"
				}
				fmt.Fprintf(w, "  -> >=2x reduction at theta>=%.2f under overload: %s\n", maxTheta, verdict)
			}
		}
	}
	fmt.Fprintf(w, "\nAbsorption merges same-key updates in the per-worker buffer so a single group-committed\nwrite acknowledges them all; the idle-flush path keeps p50 flat at moderate load, and the\nadmission valve bounds p99 under overload instead of letting queues grow without limit.\n")
}
