package harness

import (
	"fmt"
	"io"

	"kvell/internal/env"
	"kvell/internal/stats"
	"kvell/internal/trace"
	"kvell/internal/ycsb"
)

// TraceSpec builds the spec the traceattr experiment (and cmd/kvell-trace)
// runs for one engine, with the given tracer attached.
func TraceSpec(o Options, k EngineKind, tr *trace.Tracer) Spec {
	records := o.records(100_000)
	return Spec{
		Name: "traceattr", Seed: o.Seed, Engine: k, Records: records,
		Gen:      ycsbSpecGen('A', ycsb.Uniform, records, 1024),
		Duration: o.dur(6 * env.Second),
		Tracer:   tr,
	}
}

// TraceSampleEvery is the default head-sampling rate for trace experiments:
// 1 sampled request in N by sequence number, a pure function of the seed.
func TraceSampleEvery(o Options) int {
	if o.Quick {
		return 8
	}
	return 64
}

// uniqueInOrder drops repeated strings, keeping first-appearance order.
func uniqueInOrder(in []string) []string {
	var out []string
	for _, s := range in {
		dup := false
		for _, o := range out {
			if o == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// ReportTrace prints one traced run's attribution: the per-component
// breakdown table, span coverage, and the worst sampled request decomposed
// with the maintenance jobs that overlapped it.
func ReportTrace(w io.Writer, r Result, tr *trace.Tracer) {
	covMin, covMean := tr.Coverage()
	fmt.Fprintf(w, "-- %s: %.0f ops/s, %d requests traced, %d sampled --\n",
		r.EngineName, r.Throughput, tr.Finished(), tr.SampledCount())
	tr.WriteBreakdownTable(w)
	fmt.Fprintf(w, "  span coverage of sampled requests: min %.1f%% mean %.1f%%\n",
		covMin*100, covMean*100)
	out := tr.Outlier()
	fmt.Fprintf(w, "  worst sampled op: %s %s =", out.Op, stats.FmtDur(out.Total))
	for i := 0; i < trace.NumComponents; i++ {
		if out.Comp[i] > 0 {
			fmt.Fprintf(w, " %s %s", trace.CompNames[i], stats.FmtDur(out.Comp[i]))
		}
	}
	fmt.Fprintln(w)
	if maint := uniqueInOrder(tr.OutlierMaintenance()); len(maint) > 0 {
		fmt.Fprintf(w, "  maintenance overlapping the worst op: %v\n", maint)
	} else {
		fmt.Fprintf(w, "  maintenance overlapping the worst op: none\n")
	}
}

// traceAttr regenerates the Figure-2 story as attributed data: every
// request's latency decomposed into queue/CPU/lock/stall/device components,
// and the worst op traced to the maintenance job that delayed it — present
// for the LSM and B+ tree engines, absent for KVell (§3.2, §5).
func traceAttr(o Options, w io.Writer) {
	fmt.Fprintf(w, "Latency attribution, YCSB A uniform (deterministic span tracing)\n")
	fmt.Fprintf(w, "(the Figure-2 spikes, traced to the maintenance work that caused them)\n\n")
	for _, k := range []EngineKind{RocksLike, WiredTigerLike, KVell} {
		tr := trace.NewTracer(TraceSampleEvery(o))
		r := Run(TraceSpec(o, k, tr))
		ReportTrace(w, r, tr)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "Paper §3.2/Fig.2: LSM and B+ tree tail spikes coincide with compactions and\n")
	fmt.Fprintf(w, "checkpoints; KVell schedules no blocking maintenance, so no overlap exists.\n")
}
