package harness

import (
	"fmt"
	"io"
	"sort"

	"kvell/internal/env"
)

// Options configure an experiment run.
type Options struct {
	// Quick shortens durations and shrinks datasets (the default for `go
	// test -bench`); full mode uses the DESIGN.md §4 scaled sizes.
	Quick bool
	Seed  int64
	// Parallel is the number of independent simulations an experiment may
	// run concurrently via RunAll (0 or 1: sequential, < 0: GOMAXPROCS).
	// Results and output are identical at any setting; only wall-clock
	// changes. See RunAll for the determinism argument.
	Parallel int
}

// runAll executes specs with the options' parallelism, sequential by
// default, returning results in spec order.
func (o Options) runAll(specs ...Spec) []Result {
	p := o.Parallel
	if p == 0 {
		p = 1
	}
	return RunAll(specs, p)
}

// dur scales a full-mode duration down in quick mode.
func (o Options) dur(full env.Time) env.Time {
	if o.Quick {
		d := full / 4
		if d < 400*env.Millisecond {
			d = 400 * env.Millisecond
		}
		return d
	}
	return full
}

// records scales a full-mode record count down in quick mode.
func (o Options) records(full int64) int64 {
	if o.Quick {
		r := full / 4
		if r < 20_000 {
			r = 20_000
		}
		return r
	}
	return full
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer)
}

// All returns every experiment, in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "IOPS and bandwidth per device and workload", table1},
		{"table2", "Latency and bandwidth vs queue depth", table2},
		{"table3", "Max IOPS per disk-access technique", table3},
		{"table4", "YCSB core workload definitions", table4},
		{"table5", "p99 and max latency on YCSB A", table5},
		{"table6", "Index ops/s vs index-size/RAM ratio", table6},
		{"fig1", "IOPS over time per device", fig1},
		{"fig2", "Write latency spikes over time", fig2},
		{"fig3", "Disk bandwidth and CPU timelines: LSM and B+ tree are CPU-bound", fig3},
		{"fig4", "Throughput fluctuation in RocksDB-like and WiredTiger-like", fig4},
		{"fig5", "YCSB average throughput, all engines, uniform and Zipfian", fig5},
		{"fig6", "KVell disk bandwidth and CPU timelines on YCSB A", fig6},
		{"fig7", "Throughput timelines for all engines on YCSB A/B/C/E", fig7},
		{"fig8", "YCSB throughput on Config-Amazon-8NVMe (8 disks)", fig8},
		{"fig9a", "Nutanix production workloads", fig9a},
		{"fig9b", "Scaled 'large dataset' YCSB on Config-Amazon-8NVMe", fig9b},
		{"fig10", "YCSB E throughput vs item size: sorted vs unsorted", fig10},
		{"recovery", "Crash recovery time (§6.6)", recoveryExp},
		{"recovery-scale", "Recovery time vs store size (§6.6 full-scan rebuild)", recoveryScaleExp},
		{"batchlat", "Batch size vs latency/bandwidth trade-off (§6.5.1)", batchLat},
		{"ablation-cache", "Page-cache index: B-tree vs hash (tail latency)", ablationCache},
		{"ablation-batch", "I/O batch size sweep", ablationBatch},
		{"ablation-commitlog", "KVell with vs without a commit log", ablationCommitLog},
		{"ablation-workers", "Shared-nothing worker scaling", ablationWorkers},
		{"ablation-shared", "Shared-everything vs shared-nothing (§4.1)", ablationShared},
		{"ablation-inplace", "In-place updates vs append+tombstone (§5.6 variant)", ablationInPlace},
		{"absorb", "Write absorption: device-write reduction under open-loop skewed updates", absorbExp},
		{"tiering", "Hot/cold tiering: hot-key cache vs a slow cold SSD across skews and cache sizes", tieringExp},
		{"cluster", "Sharded KVell across simulated machines: YCSB scaling and leader failover", clusterExp},
		{"txn", "MVCC transactions: bank conservation across a conflict-rate × txn-size sweep and a cluster kill", txnExp},
		{"traceattr", "Latency attribution: Figure 2's tail spikes traced to their maintenance cause", traceAttr},
		{"oldssd", "KVell on a 2013-era SSD: a trade-off, not a win (§6.5.4)", oldSSD},
		{"cpuperio", "CPU-per-I/O cap on achievable IOPS (§6.4.1)", cpuPerIO},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// header prints a standard experiment banner.
func header(w io.Writer, id, title string, o Options) {
	mode := "full"
	if o.Quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "==== %s: %s (%s mode) ====\n", id, title, mode)
}
