package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	required := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9a", "fig9b", "fig10", "recovery", "batchlat",
	}
	for _, id := range required {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if _, ok := Find("nonsense"); ok {
		t.Error("Find accepted an unknown id")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Errorf("IDs() returned %d, registry has %d", len(ids), len(All()))
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestCheapExperimentsProduceOutput runs the fast experiments end to end;
// the expensive ones are exercised by `go test -bench` and kvell-bench.
func TestCheapExperimentsProduceOutput(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("runs simulations")
	}
	o := Options{Quick: true, Seed: 1}
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig1", "fig2"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing %q", id)
		}
		var buf bytes.Buffer
		e.Run(o, &buf)
		out := buf.String()
		if len(out) < 100 {
			t.Errorf("%s produced almost no output", id)
		}
		if !strings.Contains(strings.ToLower(out), "paper") && id != "table4" {
			t.Errorf("%s output does not quote the paper's values", id)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	q := Options{Quick: true}
	f := Options{}
	if q.dur(8_000_000_000) >= f.dur(8_000_000_000) {
		t.Fatal("quick duration not shorter")
	}
	if q.records(100_000) >= f.records(100_000) {
		t.Fatal("quick records not smaller")
	}
	if q.records(1000) < 1000 {
		t.Fatal("records floor broken")
	}
}
