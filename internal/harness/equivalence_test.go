package harness

import (
	"bytes"
	"math/rand"
	"testing"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
)

// TestEnginesAgreeWithModel runs an identical randomized operation sequence
// through every engine and checks reads and scans against a model map —
// the cross-engine integration test that ties the whole repository
// together.
func TestEnginesAgreeWithModel(t *testing.T) {
	t.Parallel()
	const records = 400
	type op struct {
		kind kv.OpType
		key  int64
		ver  uint64
		scan int
	}
	r := rand.New(rand.NewSource(77))
	var ops []op
	var ver uint64
	for i := 0; i < 2500; i++ {
		o := op{key: int64(r.Intn(records))}
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			ver++
			o.kind, o.ver = kv.OpUpdate, ver
		case 4:
			o.kind, o.scan = kv.OpScan, 1+r.Intn(20)
		default:
			o.kind = kv.OpGet
		}
		ops = append(ops, o)
	}

	// Model results.
	model := map[int64]uint64{}
	for i := int64(0); i < records; i++ {
		model[i] = 0
	}
	valueOf := func(key int64, ver uint64) []byte { return kv.Value(key, ver, 600) }

	for _, kind := range AllEngines {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s := sim.New(5)
			e := sim.NewEnv(s, 8)
			disk := device.NewSimDisk(s, device.Optane(), nil)
			spec := Spec{Engine: kind, Records: records, ItemSize: 1024}
			spec.defaults()
			eng := buildEngine(e, &spec, []device.Disk{disk})
			var items []kv.Item
			for i := int64(0); i < records; i++ {
				items = append(items, kv.Item{Key: kv.Key(i), Value: valueOf(i, 0)})
			}
			if err := eng.BulkLoad(items); err != nil {
				t.Fatal(err)
			}
			eng.Start()
			m := map[int64]uint64{}
			for k, v := range model {
				m[k] = v
			}
			e.Go("client", func(c env.Ctx) {
				for i, o := range ops {
					switch o.kind {
					case kv.OpUpdate:
						res := make(chan struct{}) // engines may be async; use Done
						_ = res
						doneCh := false
						eng.Submit(c, &kv.Request{Op: kv.OpUpdate, Key: kv.Key(o.key), Value: valueOf(o.key, o.ver),
							Done: func(kv.Result) { doneCh = true }})
						for !doneCh {
							c.Sleep(10 * env.Microsecond)
						}
						m[o.key] = o.ver
					case kv.OpGet:
						var got kv.Result
						doneCh := false
						eng.Submit(c, &kv.Request{Op: kv.OpGet, Key: kv.Key(o.key),
							Done: func(r kv.Result) { got = r; doneCh = true }})
						for !doneCh {
							c.Sleep(10 * env.Microsecond)
						}
						want, ok := m[o.key]
						if got.Found != ok {
							t.Errorf("op %d: %v Get(%d) found=%v want %v", i, kind, o.key, got.Found, ok)
							return
						}
						if ok && !bytes.Equal(got.Value, valueOf(o.key, want)) {
							t.Errorf("op %d: %v Get(%d) stale value (want ver %d)", i, kind, o.key, want)
							return
						}
					case kv.OpScan:
						var got kv.Result
						doneCh := false
						eng.Submit(c, &kv.Request{Op: kv.OpScan, Key: kv.Key(o.key), ScanCount: o.scan,
							Done: func(r kv.Result) { got = r; doneCh = true }})
						for !doneCh {
							c.Sleep(10 * env.Microsecond)
						}
						want := o.scan
						if o.key+int64(o.scan) > records {
							want = int(records - o.key)
						}
						if got.ScanN != want {
							t.Errorf("op %d: %v Scan(%d,%d) returned %d, want %d", i, kind, o.key, o.scan, got.ScanN, want)
							return
						}
					}
				}
				eng.Stop(c)
			})
			if err := s.Run(-1); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
