package harness

import (
	"fmt"
	"math/rand"

	"kvell/internal/core"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
	"kvell/internal/stats"
)

// ValvePolicy selects what the admission valve does with an arrival whose
// target shard is already at its outstanding bound.
type ValvePolicy uint8

const (
	// Shed rejects the arrival outright: it is counted, not serviced, and
	// contributes no latency sample. Goodput and p99 stay measurements of
	// the work the system accepted.
	Shed ValvePolicy = iota
	// Delay holds admission until the shard drains below its bound. The
	// arrival's latency clock keeps running from its scheduled arrival
	// time, so the backpressure wait is visible in the distribution.
	Delay
)

// String names the policy.
func (p ValvePolicy) String() string {
	if p == Delay {
		return "delay"
	}
	return "shed"
}

// Arrival configures the open-loop arrival process: requests arrive on a
// seeded Poisson process at Rate ops/s of virtual time — independent of
// service completions, unlike the default closed-loop clients — optionally
// modulated by deterministic bursts, and pass through a per-shard admission
// valve before reaching the engine.
type Arrival struct {
	// Rate is the mean arrival rate in operations per virtual second.
	Rate float64
	// BurstEvery/BurstLen/BurstFactor modulate the rate: for the first
	// BurstLen of every BurstEvery period, Rate is multiplied by
	// BurstFactor. Zero values disable bursts.
	BurstEvery  env.Time
	BurstLen    env.Time
	BurstFactor float64
	// MaxPerShard bounds admitted-but-incomplete requests per engine shard
	// (a KVell worker; one shard for library engines, scaled by the KVell
	// default worker count to keep bounds comparable). Default 1024.
	MaxPerShard int
	// Policy is what happens at the bound (default Shed).
	Policy ValvePolicy
}

func (a *Arrival) maxPerShard() int {
	if a.MaxPerShard <= 0 {
		return 1024
	}
	return a.MaxPerShard
}

// ArrivalGen draws Poisson inter-arrival gaps with deterministic burst
// modulation. The draw path does not allocate.
type ArrivalGen struct {
	r         *rand.Rand
	meanGap   float64 // mean inter-arrival gap, ns
	every     env.Time
	burstLen  env.Time
	burstDiv  float64 // gap divisor inside a burst (= BurstFactor)
	arrivals  int64
	shortfall float64 // fractional ns carried between draws
}

// NewArrivalGen builds the generator for a (seeded) arrival spec.
func NewArrivalGen(a *Arrival, seed int64) *ArrivalGen {
	g := &ArrivalGen{
		r:        rand.New(rand.NewSource(seed)),
		meanGap:  float64(env.Second) / a.Rate,
		every:    a.BurstEvery,
		burstLen: a.BurstLen,
		burstDiv: a.BurstFactor,
	}
	if g.burstDiv <= 0 {
		g.burstDiv = 1
	}
	return g
}

// NextGap returns the virtual-time gap to the next arrival given the current
// time. Gaps are exponentially distributed around the (possibly burst-
// scaled) mean; sub-nanosecond remainders carry over so the long-run rate is
// exact even at extreme arrival rates.
func (g *ArrivalGen) NextGap(now env.Time) env.Time {
	mean := g.meanGap
	if g.every > 0 && now%g.every < g.burstLen {
		mean /= g.burstDiv
	}
	gap := g.r.ExpFloat64()*mean + g.shortfall
	whole := env.Time(gap)
	g.shortfall = gap - float64(whole)
	g.arrivals++
	return whole
}

// Digest fingerprints the next n gaps from time zero — the golden-fixture
// hook for the generator's determinism test.
func (g *ArrivalGen) Digest(n int) uint64 {
	d := stats.NewFNV()
	now := env.Time(0)
	for i := 0; i < n; i++ {
		gap := g.NextGap(now)
		now += gap
		d.Word(uint64(gap))
	}
	return uint64(d)
}

// shardsOf returns the admission shard count for an engine: KVell's worker
// count, or one aggregate shard for single-submission-path engines.
func shardsOf(eng kv.Engine) int {
	if st, ok := eng.(*core.Store); ok && !st.Config().SharedEverything {
		return st.Config().Workers
	}
	return 1
}

// runOpenLoop drives the engine with the spec's arrival process. One
// dispatcher proc generates arrivals, fills requests from the workload
// generator (one draw per arrival, shed or not, so the operation stream is
// independent of valve behavior), applies the admission valve, and hands
// admitted requests to a pool of service procs that submit them — blocking
// engines occupy a service proc for the duration of the op, KVell returns
// immediately and completes via Done.
func runOpenLoop(e *sim.Env, s *sim.Sim, spec *Spec, res *Result, eng kv.Engine, gen Generator, end env.Time) {
	a := spec.Arrival
	ag := NewArrivalGen(a, spec.Seed+0x6F70656E) // "open"
	tr := spec.Tracer
	shards := shardsOf(eng)
	perShard := a.maxPerShard()
	if shards == 1 {
		// Single-submission-path engines get one aggregate shard; scale its
		// bound so total admitted capacity matches a default KVell run.
		perShard *= core.DefaultConfig().Workers
	}
	outstanding := make([]int, shards)
	total := 0
	mu := e.NewMutex()
	drained := e.NewCond(mu)

	admitQ := e.NewQueue()
	filler, _ := gen.(Filler)
	cfiller, _ := gen.(ClockedFiller)
	var free []*kv.Request

	shardFor := func(key []byte) int {
		if shards == 1 {
			return 0
		}
		return int(kv.Hash64(key) % uint64(shards))
	}

	// finishOne books a completion and credits its shard. It runs on
	// whatever proc invoked Done (engine worker or service proc); each
	// pooled request's Done is wired to it once, so steady-state dispatch
	// allocates nothing.
	finishOne := func(r *kv.Request) {
		t := s.Now()
		if r.Trace != nil {
			tr.Finish(r.Trace, t)
			r.Trace = nil
		}
		res.OpsTotal++
		if t >= spec.Warmup && t < end {
			res.Ops++
			res.Lat.Add(t - r.Start)
			res.Timeline.Add(t, 1)
		}
		mu.Lock(nil)
		outstanding[shardFor(r.Key)]--
		total--
		free = append(free, r)
		mu.Unlock(nil)
		drained.Broadcast(nil)
	}

	e.Go("openloop-dispatch", func(c env.Ctx) {
		for {
			gap := ag.NextGap(c.Now())
			if gap > 0 {
				c.Sleep(gap)
			}
			if c.Now() >= end {
				break
			}
			arrived := c.Now()
			res.Arrivals++
			mu.Lock(c)
			var r *kv.Request
			if n := len(free); n > 0 {
				r = free[n-1]
				free = free[:n-1]
			}
			mu.Unlock(c)
			if filler != nil {
				if r == nil {
					nr := &kv.Request{}
					nr.Done = func(kv.Result) { finishOne(nr) }
					r = nr
				}
				if cfiller != nil {
					cfiller.FillNextAt(r, arrived)
				} else {
					filler.FillNext(r)
				}
			} else {
				nr := gen.Next()
				if r != nil {
					nr.ValueBuf, nr.ScanBuf = r.ValueBuf, r.ScanBuf
				}
				nr.Done = func(kv.Result) { finishOne(nr) }
				r = nr
			}
			shard := shardFor(r.Key)
			mu.Lock(c)
			if outstanding[shard] >= perShard {
				if a.Policy == Shed {
					if arrived >= spec.Warmup && arrived < end {
						res.Shed++
					}
					free = append(free, r)
					mu.Unlock(c)
					continue
				}
				if arrived >= spec.Warmup && arrived < end {
					res.Delayed++
				}
				for outstanding[shard] >= perShard {
					drained.Wait(c)
				}
			}
			outstanding[shard]++
			total++
			mu.Unlock(c)
			// Latency is measured from the scheduled arrival: any valve
			// delay and admit-queue wait counts against the system.
			r.Start = arrived
			admitQ.Push(c, r)
		}
		admitQ.Close(c)
	})

	procs := spec.Clients
	active := procs
	for ci := 0; ci < procs; ci++ {
		e.Go(fmt.Sprintf("openloop-serve-%d", ci), func(c env.Ctx) {
			for {
				batch := admitQ.PopWait(c, 1)
				if batch == nil {
					break
				}
				r := batch[0].(*kv.Request)
				if tr != nil {
					r.Trace = tr.Begin(int(r.Op), r.Start)
					c.SetTrace(r.Trace)
					eng.Submit(c, r)
					c.SetTrace(nil)
				} else {
					eng.Submit(c, r)
				}
			}
			active--
			if active > 0 {
				return
			}
			// Last service proc: wait for every admitted request to
			// complete, then stop the engine.
			mu.Lock(c)
			for total > 0 {
				drained.Wait(c)
			}
			mu.Unlock(c)
			eng.Stop(c)
		})
	}
}
