package harness

import (
	"testing"

	"kvell/internal/env"
	"kvell/internal/ycsb"
)

// fingerprint captures every determinism-sensitive observable of a run: op
// count, the full latency distribution, both timelines bit-for-bit, and the
// final virtual-clock reading. Two runs of the same Spec must agree on all of
// them — this is the regression test behind the invariants that the
// kvell-lint analyzers enforce statically (see DESIGN.md "Determinism
// invariants").
type fingerprint struct {
	ops      int64
	lat      uint64
	timeline uint64
	diskBW   uint64
	now      env.Time
}

func runFingerprint(spec Spec) fingerprint {
	r := Run(spec)
	return fingerprint{
		ops:      r.Ops,
		lat:      r.Lat.Digest(),
		timeline: r.Timeline.Digest(),
		diskBW:   r.DiskBW.Digest(),
		now:      r.Sim.Now(),
	}
}

func determinismSpec(k EngineKind, seed int64) Spec {
	return Spec{
		Name:     "determinism",
		Engine:   k,
		Seed:     seed,
		Records:  5_000,
		Gen:      ycsbGen('A', ycsb.Zipfian, 5_000, 1024),
		Warmup:   100 * env.Millisecond,
		Duration: 300 * env.Millisecond,
	}
}

func TestSameSeedIdenticalRun(t *testing.T) {
	for _, k := range []EngineKind{KVell, RocksLike} {
		a := runFingerprint(determinismSpec(k, 42))
		b := runFingerprint(determinismSpec(k, 42))
		if a.ops == 0 {
			t.Errorf("%v: no operations completed", k)
			continue
		}
		if a != b {
			t.Errorf("%v: same seed produced different runs\n first: %+v\nsecond: %+v", k, a, b)
		}
	}
}

func TestDifferentSeedDifferentRun(t *testing.T) {
	a := runFingerprint(determinismSpec(KVell, 1))
	b := runFingerprint(determinismSpec(KVell, 2))
	if a.lat == b.lat && a.timeline == b.timeline && a.ops == b.ops {
		t.Errorf("different seeds produced identical runs — the seed is not reaching the workload: %+v", a)
	}
}
