package harness

import (
	"testing"

	"kvell/internal/core"
	"kvell/internal/env"
	"kvell/internal/ycsb"
)

// fingerprint captures every determinism-sensitive observable of a run: op
// count, the full latency distribution, both timelines bit-for-bit, and the
// final virtual-clock reading. Two runs of the same Spec must agree on all of
// them — this is the regression test behind the invariants that the
// kvell-lint analyzers enforce statically (see DESIGN.md "Determinism
// invariants").
type fingerprint struct {
	ops      int64
	lat      uint64
	timeline uint64
	diskBW   uint64
	now      env.Time
}

func runFingerprint(spec Spec) fingerprint {
	r := Run(spec)
	return fingerprint{
		ops:      r.Ops,
		lat:      r.Lat.Digest(),
		timeline: r.Timeline.Digest(),
		diskBW:   r.DiskBW.Digest(),
		now:      r.Sim.Now(),
	}
}

func determinismSpec(k EngineKind, seed int64) Spec {
	return Spec{
		Name:     "determinism",
		Engine:   k,
		Seed:     seed,
		Records:  5_000,
		Gen:      ycsbGen('A', ycsb.Zipfian, 5_000, 1024),
		Warmup:   100 * env.Millisecond,
		Duration: 300 * env.Millisecond,
	}
}

func TestSameSeedIdenticalRun(t *testing.T) {
	for _, k := range []EngineKind{KVell, RocksLike} {
		a := runFingerprint(determinismSpec(k, 42))
		b := runFingerprint(determinismSpec(k, 42))
		if a.ops == 0 {
			t.Errorf("%v: no operations completed", k)
			continue
		}
		if a != b {
			t.Errorf("%v: same seed produced different runs\n first: %+v\nsecond: %+v", k, a, b)
		}
	}
}

func TestDifferentSeedDifferentRun(t *testing.T) {
	a := runFingerprint(determinismSpec(KVell, 1))
	b := runFingerprint(determinismSpec(KVell, 2))
	if a.lat == b.lat && a.timeline == b.timeline && a.ops == b.ops {
		t.Errorf("different seeds produced identical runs — the seed is not reaching the workload: %+v", a)
	}
}

// absorbDeterminismSpec is an open-loop, absorb-enabled KVell run: it
// exercises the arrival generator, the admission valve, the absorb buffer
// and the adaptive commit interval in one schedule.
func absorbDeterminismSpec(seed int64) Spec {
	return Spec{
		Name:     "absorb-determinism",
		Engine:   KVell,
		Seed:     seed,
		Records:  5_000,
		ItemSize: 512,
		Gen:      updateOnlyGen(5_000, 512, 0.99),
		Duration: 200 * env.Millisecond,
		Arrival:  &Arrival{Rate: 400_000, MaxPerShard: 128},
		TweakKVell: func(c *core.Config) {
			c.AbsorbInterval = 100 * env.Microsecond
		},
	}
}

// Golden fingerprint for absorbDeterminismSpec(1234): locks the absorb-
// enabled open-loop schedule the same way testdata/golden_digests.json locks
// the closed-loop ones. On mismatch the failure message prints the measured
// values; update the constants only for changes *meant* to alter schedules.
const (
	absorbGoldenOps      = int64(79_959)
	absorbGoldenLat      = uint64(0x358ee3f665d9b1ef)
	absorbGoldenTimeline = uint64(0x1f922423bbe6e8c0)
)

func TestAbsorbGoldenDigest(t *testing.T) {
	t.Parallel()
	fp := runFingerprint(absorbDeterminismSpec(1234))
	if fp.ops != absorbGoldenOps || fp.lat != absorbGoldenLat || fp.timeline != absorbGoldenTimeline {
		t.Errorf("absorb-enabled schedule diverged from golden fingerprint\n got ops=%d lat=%#016x timeline=%#016x\nwant ops=%d lat=%#016x timeline=%#016x",
			fp.ops, fp.lat, fp.timeline, absorbGoldenOps, absorbGoldenLat, absorbGoldenTimeline)
	}
}

func TestAbsorbSpecDeterminism(t *testing.T) {
	t.Parallel()
	a := runFingerprint(absorbDeterminismSpec(99))
	if a.ops == 0 {
		t.Fatal("absorb-enabled open-loop run completed no operations")
	}
	if b := runFingerprint(absorbDeterminismSpec(99)); a != b {
		t.Errorf("same seed produced different absorb-enabled runs\n first: %+v\nsecond: %+v", a, b)
	}
	if c := runFingerprint(absorbDeterminismSpec(100)); c.lat == a.lat && c.timeline == a.timeline {
		t.Errorf("different seeds produced identical absorb-enabled runs: %+v", a)
	}
}

// Golden digests for the open-loop arrival generator: Digest folds the first
// n inter-arrival gaps (burst modulation and the fractional-ns carry
// included) into an FNV-1a word. On mismatch the failure message prints the
// measured digest; update only for changes meant to alter arrival schedules.
func TestArrivalGenGoldenDigest(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    Arrival
		seed int64
		n    int
		want uint64
	}{
		{"poisson-1M", Arrival{Rate: 1_000_000}, 7, 100_000, 0x5d431d7dd5c3ceb5},
		{"burst-8x", Arrival{
			Rate:        250_000,
			BurstEvery:  10 * env.Millisecond,
			BurstLen:    2 * env.Millisecond,
			BurstFactor: 8,
		}, 11, 100_000, 0x8771402626509c2f},
	} {
		g := NewArrivalGen(&tc.a, tc.seed)
		if got := g.Digest(tc.n); got != tc.want {
			t.Errorf("%s: digest %#016x, want %#016x", tc.name, got, tc.want)
		}
	}
}
