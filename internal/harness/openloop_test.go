package harness

import (
	"testing"

	"kvell/internal/env"
	"kvell/internal/ycsb"
)

func openLoopSpec(k EngineKind, seed int64, a *Arrival) Spec {
	return Spec{
		Name:     "openloop",
		Engine:   k,
		Seed:     seed,
		Records:  5_000,
		Gen:      ycsbGen('A', ycsb.Zipfian, 5_000, 1024),
		Warmup:   100 * env.Millisecond,
		Duration: 300 * env.Millisecond,
		Arrival:  a,
	}
}

func TestOpenLoopModerateLoad(t *testing.T) {
	t.Parallel()
	r := Run(openLoopSpec(KVell, 7, &Arrival{Rate: 50_000}))
	if r.Arrivals == 0 || r.Ops == 0 {
		t.Fatalf("open loop produced no work: arrivals=%d ops=%d", r.Arrivals, r.Ops)
	}
	if r.Shed != 0 || r.Delayed != 0 {
		t.Fatalf("valve engaged at moderate load: shed=%d delayed=%d", r.Shed, r.Delayed)
	}
	// ~50k ops/s over the 300ms window is ~15k completions; allow slack for
	// Poisson variance but require the open loop to track the offered rate.
	if r.Ops < 10_000 {
		t.Fatalf("completed %d ops, expected ~15k at 50k ops/s offered", r.Ops)
	}
}

func TestOpenLoopValveSheds(t *testing.T) {
	t.Parallel()
	// An offered rate far past device capacity with a tight bound: the
	// valve must engage, and everything admitted must still complete.
	r := Run(openLoopSpec(KVell, 7, &Arrival{Rate: 5_000_000, MaxPerShard: 64}))
	if r.Shed == 0 {
		t.Fatalf("overload at 5M ops/s never engaged the shed valve (arrivals=%d ops=%d)", r.Arrivals, r.Ops)
	}
	if r.Ops == 0 {
		t.Fatal("no admitted ops completed under overload")
	}
}

func TestOpenLoopValveDelays(t *testing.T) {
	t.Parallel()
	r := Run(openLoopSpec(KVell, 7, &Arrival{Rate: 5_000_000, MaxPerShard: 64, Policy: Delay}))
	if r.Delayed == 0 {
		t.Fatalf("overload never engaged the delay valve (arrivals=%d)", r.Arrivals)
	}
	if r.Shed != 0 {
		t.Fatalf("delay policy shed %d arrivals", r.Shed)
	}
}

func TestOpenLoopBurstsRaiseArrivals(t *testing.T) {
	t.Parallel()
	base := Run(openLoopSpec(KVell, 7, &Arrival{Rate: 20_000}))
	burst := Run(openLoopSpec(KVell, 7, &Arrival{
		Rate: 20_000, BurstEvery: 100 * env.Millisecond, BurstLen: 20 * env.Millisecond, BurstFactor: 8,
	}))
	if burst.Arrivals <= base.Arrivals {
		t.Fatalf("bursts did not raise arrivals: %d <= %d", burst.Arrivals, base.Arrivals)
	}
}

func TestOpenLoopSameSeedIdentical(t *testing.T) {
	t.Parallel()
	a := &Arrival{Rate: 200_000, MaxPerShard: 128}
	r1 := Run(openLoopSpec(KVell, 11, a))
	r2 := Run(openLoopSpec(KVell, 11, a))
	if r1.Ops != r2.Ops || r1.Arrivals != r2.Arrivals || r1.Shed != r2.Shed ||
		r1.Lat.Digest() != r2.Lat.Digest() || r1.Timeline.Digest() != r2.Timeline.Digest() {
		t.Fatalf("same seed open-loop runs differ:\n first: ops=%d arr=%d shed=%d lat=%x\nsecond: ops=%d arr=%d shed=%d lat=%x",
			r1.Ops, r1.Arrivals, r1.Shed, r1.Lat.Digest(), r2.Ops, r2.Arrivals, r2.Shed, r2.Lat.Digest())
	}
}

func TestAllocBudgetOpenLoopArrival(t *testing.T) {
	g := NewArrivalGen(&Arrival{Rate: 100_000, BurstEvery: env.Second, BurstLen: 100 * env.Millisecond, BurstFactor: 4}, 1)
	now := env.Time(0)
	if n := testing.AllocsPerRun(1000, func() {
		now += g.NextGap(now)
	}); n != 0 {
		t.Fatalf("arrival draw allocates %.1f/op, want 0", n)
	}
}

func BenchmarkOpenLoopNextArrival(b *testing.B) {
	g := NewArrivalGen(&Arrival{Rate: 100_000, BurstEvery: env.Second, BurstLen: 100 * env.Millisecond, BurstFactor: 4}, 1)
	b.ReportAllocs()
	now := env.Time(0)
	for i := 0; i < b.N; i++ {
		now += g.NextGap(now)
	}
}
