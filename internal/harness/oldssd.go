package harness

import (
	"fmt"
	"io"
	"math/rand"

	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/sim"
	"kvell/internal/stats"
	"kvell/internal/ycsb"
)

// oldSSD reproduces §6.5.4: on the 2013-era SSD, spending CPU to optimize
// disk access pays off again — KVell is on par with the LSM for reads and
// writes but loses on scans, while still avoiding the LSM's latency
// spikes. Using KVell there is a trade-off, not a win.
func oldSSD(o Options, w io.Writer) {
	records := o.records(60_000)
	dur := o.dur(4 * env.Second)
	prof := device.SSD2013(1 << 40) // steady-state study: no burst cliff mid-run
	fmt.Fprintf(w, "Config-SSD trade-off (§6.5.4): 2013-era SATA SSD, %d x 1KB records\n\n", records)
	fmt.Fprintf(w, "%-14s %14s %14s %12s %12s\n", "engine", "YCSB-A", "YCSB-E", "A p99", "A max")
	for _, k := range []EngineKind{KVell, RocksLike} {
		row := make(map[byte]Result)
		for _, wl := range []byte{'A', 'E'} {
			row[wl] = Run(Spec{
				Name: "oldssd", Seed: o.Seed, Engine: k, Records: records,
				Profile:  prof,
				Gen:      ycsbSpecGen(wl, ycsb.Uniform, records, 1024),
				Duration: dur,
			})
		}
		fmt.Fprintf(w, "%-14s %14s %14s %12s %12s\n", row['A'].EngineName,
			stats.FmtRate(row['A'].Throughput), stats.FmtRate(row['E'].Throughput),
			stats.FmtDur(row['A'].Lat.Percentile(0.99)), stats.FmtDur(row['A'].Lat.Max()))
	}
	fmt.Fprintf(w, "\nPaper: reads/writes on par; scans 3K (KVell) vs 15K (RocksDB); KVell latency bounded\nby peak disk latency (~100ms) while RocksDB shows 18s+ compaction spikes on this drive.\n")
}

// cpuPerIO reproduces the §6.4.1 microbenchmark: on Config-Amazon-8NVMe,
// spending more than ~3us of CPU per I/O request caps achievable IOPS at
// 75% of the device maximum — the constraint that makes KVell's low
// CPU-per-request design necessary to exploit many-drive machines.
func cpuPerIO(o Options, w io.Writer) {
	dur := o.dur(env.Second / 2)
	fmt.Fprintf(w, "CPU-per-I/O microbenchmark (§6.4.1): 8x Config-Amazon-8NVMe drives, 32 cores\n\n")
	fmt.Fprintf(w, "%-14s %12s %10s\n", "CPU per I/O", "read IOPS", "% of max")
	var max float64
	for _, cpu := range []env.Time{0, 1000, 2000, 3000, 4000, 6000} {
		s := sim.New(o.Seed)
		e := sim.NewEnv(s, 32)
		prof := device.AmazonNVMe()
		prof.SpikeEvery = 0
		var disks []*device.SimDisk
		for i := 0; i < 8; i++ {
			disks = append(disks, device.NewSimDisk(s, prof, device.NullStore{}))
		}
		var ops int64
		// One submitter thread per drive (the paper's microbenchmark
		// arrangement) keeping a deep queue, charging the configured CPU
		// per request: the per-thread CPU ceiling is what caps IOPS.
		for di := 0; di < 8; di++ {
			di := di
			e.Go("gen", func(c env.Ctx) {
				r := rand.New(rand.NewSource(o.Seed + int64(di)*10))
				buf := make([]byte, device.PageSize)
				const depth = 64
				inflight := 0
				mu := e.NewMutex()
				cond := e.NewCond(mu)
				for c.Now() < dur {
					mu.Lock(c)
					for inflight >= depth {
						cond.Wait(c)
					}
					inflight++
					mu.Unlock(c)
					if cpu > 0 {
						c.CPU(cpu)
					}
					disks[di].Submit(&device.Request{Op: device.Read, Page: r.Int63n(1 << 31), Buf: buf, Done: func() {
						ops++
						mu.Lock(nil)
						inflight--
						mu.Unlock(nil)
						cond.Signal(nil)
					}})
				}
			})
		}
		if err := s.Run(dur); err != nil {
			panic(err)
		}
		s.Close()
		iops := float64(ops) / (float64(dur) / float64(env.Second))
		if cpu == 0 {
			max = iops
		}
		fmt.Fprintf(w, "%-14s %12s %9.0f%%\n", stats.FmtDur(cpu), stats.FmtRate(iops), 100*iops/max)
	}
	fmt.Fprintf(w, "\nPaper: more than 3us of CPU per I/O limits achievable IOPS to 75%% of the maximum.\n")
}
