package harness

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"

	"kvell/internal/cluster"
	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/fault"
	"kvell/internal/kv"
	"kvell/internal/mvcc"
	"kvell/internal/net"
	"kvell/internal/sim"
	"kvell/internal/stats"
	"kvell/internal/trace"
	"kvell/internal/txn"
)

// The txnbank workload: accounts hold fixed-point balances, movers transfer
// between randomly drawn accounts inside percolator transactions, and the
// invariant is conservation — the sum of all balances never changes, at any
// snapshot, across crashes and failovers. Because every transfer debits
// exactly what it credits, conservation at a snapshot is equivalent to "no
// transaction is ever visible half-applied", which is the whole point of the
// transaction layer.

// balSize is the account value: 8-byte little-endian signed balance plus an
// 8-byte tag (the writing transaction's start timestamp) so torn or
// cross-transaction mixes are detectable by byte comparison.
const balSize = 16

func encBal(v int64, tag uint64) []byte {
	b := make([]byte, balSize)
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
		b[8+i] = byte(tag >> (8 * i))
	}
	return b
}

func decBal(b []byte) int64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return int64(u)
}

// pickTxnKeys draws n distinct account numbers. theta is the conflict knob:
// the probability a draw comes from the hot set of max(2, accounts/64)
// accounts. theta=0 is uniform (near-zero conflict); theta=1 serializes
// everything through the hot set.
func pickTxnKeys(rng *rand.Rand, accounts int64, n int, theta float64) []int64 {
	hot := accounts / 64
	if hot < 2 {
		hot = 2
	}
	out := make([]int64, 0, n)
	for len(out) < n {
		var a int64
		if theta > 0 && rng.Float64() < theta {
			a = rng.Int63n(hot)
		} else {
			a = rng.Int63n(accounts)
		}
		dup := false
		for _, b := range out {
			if b == a {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// tracedSnapshotGet is the auditor's read: txn.GetAt's resolve loop, but with
// every store round trip traced so the run can prove snapshot reads never
// wait on a lock (the summed CompLock component must stay zero — readers
// resolve through the primary or read past, they do not block).
func tracedSnapshotGet(c env.Ctx, st *core.Store, tracer *trace.Tracer, key []byte, ts uint64, bo *mvcc.Backoff) ([]byte, bool, error) {
	var skip uint64
	for attempt := 0; attempt < 64; attempt++ {
		tc := tracer.Begin(int(kv.OpTxnGet), c.Now())
		res := st.Do(c, &kv.Request{Op: kv.OpTxnGet, Key: key, TS: ts, TS2: skip, Trace: tc})
		tracer.Finish(tc, c.Now())
		switch res.Txn {
		case kv.TxnLocked:
			primary := append([]byte(nil), res.Value...)
			lockTS := res.TxnTS
			stt := st.Do(c, &kv.Request{Op: kv.OpTxnResolve, Key: primary, TS: lockTS, TS2: ts})
			switch stt.Txn {
			case kv.TxnPending:
				skip = lockTS
			case kv.TxnCommitted:
				st.Do(c, &kv.Request{Op: kv.OpTxnCommit, Key: key, TS: lockTS, TS2: stt.TxnTS})
				skip = 0
			case kv.TxnAborted:
				st.Do(c, &kv.Request{Op: kv.OpTxnRollback, Key: key, TS: lockTS})
				skip = 0
			default:
				c.Sleep(bo.Next())
				skip = 0
			}
		case kv.TxnRetry:
			c.Sleep(bo.Next())
		default:
			return res.Value, res.Found, nil
		}
	}
	return nil, false, fmt.Errorf("txnbank: audit read of %q exhausted its resolve budget", key)
}

// TxnBankSpec describes one single-node bank run: Movers procs each commit
// Transfers multi-account transfers through the percolator client while an
// auditor proc repeatedly sums every balance at a fresh snapshot.
type TxnBankSpec struct {
	Seed     int64
	Accounts int64
	Initial  int64
	Movers   int
	// Transfers is the closed-loop transfer count per mover.
	Transfers int
	// TxnSize is the number of accounts per transfer (>= 2); the first
	// account pays TxnSize-1 shares, the rest receive one each.
	TxnSize int
	// Theta is the hot-set draw probability (see pickTxnKeys).
	Theta float64
	// Audits is how many mid-run snapshot audits the auditor performs (a
	// final audit after the movers drain always runs).
	Audits   int
	AuditGap env.Time
	Workers  int
	NDisks   int
	Cores    int
	// SkipGC disables the post-drain GC pass (crash-style runs keep every
	// version as evidence).
	SkipGC bool
}

func (ts *TxnBankSpec) defaults() {
	if ts.Accounts == 0 {
		ts.Accounts = 256
	}
	if ts.Initial == 0 {
		ts.Initial = 1_000
	}
	if ts.Movers == 0 {
		ts.Movers = 4
	}
	if ts.Transfers == 0 {
		ts.Transfers = 50
	}
	if ts.TxnSize == 0 {
		ts.TxnSize = 2
	}
	if ts.Audits == 0 {
		ts.Audits = 4
	}
	if ts.AuditGap == 0 {
		ts.AuditGap = 2 * env.Millisecond
	}
	if ts.Workers == 0 {
		ts.Workers = 4
	}
	if ts.NDisks == 0 {
		ts.NDisks = 2
	}
	if ts.Cores == 0 {
		ts.Cores = 4
	}
}

// TxnBankResult is one bank run's outcome. Digest fingerprints the whole
// observable schedule (commits, conflicts, every audit's snapshot and sum,
// final balances); equal specs must produce equal digests.
type TxnBankResult struct {
	Accounts  int64
	Committed int64
	Conflicts int64 // write-write conflict retries across all movers
	Aborts    int64 // transfers that exhausted their retry budget
	Audits    int64
	// ReadLockWait is the summed CompLock over every audited snapshot read;
	// the run fails unless it is zero (SI readers never block on writers).
	ReadLockWait env.Time
	GCFreed      int64
	PendingAfter int
	Digest       uint64
}

// RunTxnBank executes one bank run. The returned error is a verification
// failure (conservation violated at some snapshot, ledger mismatch, lock
// leak, reader lock-wait); harness problems panic.
func RunTxnBank(spec TxnBankSpec) (TxnBankResult, error) {
	spec.defaults()
	res := TxnBankResult{Accounts: spec.Accounts}
	total := spec.Accounts * spec.Initial

	s := sim.New(spec.Seed + 1)
	e := sim.NewEnv(s, spec.Cores)
	prof := device.AmazonNVMe()
	disks := make([]device.Disk, spec.NDisks)
	for i := range disks {
		disks[i] = device.NewSimDisk(s, prof, device.NewMemStore())
	}
	cfg := core.DefaultConfig(disks...)
	cfg.Workers = spec.Workers
	cfg.MVCC = true
	st, err := core.Open(e, cfg)
	if err != nil {
		panic(err)
	}
	items := make([]kv.Item, spec.Accounts)
	for i := int64(0); i < spec.Accounts; i++ {
		items[i] = kv.Item{Key: kv.Key(i), Value: encBal(spec.Initial, 0)}
	}
	if err := st.BulkLoad(items); err != nil {
		panic(err)
	}
	st.Start()

	tracer := trace.NewTracer(0)
	ledger := make([]int64, spec.Accounts) // committed deltas, by account
	finals := make([]int64, spec.Accounts)
	var audits []uint64 // (ts, sum) pairs, in audit order
	var failures []string
	fail := func(format string, args ...any) {
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}

	mu := e.NewMutex()
	cond := e.NewCond(mu)
	finished := 0

	for ci := 0; ci < spec.Movers; ci++ {
		ci := ci
		e.Go(fmt.Sprintf("txn-mover-%d", ci), func(c env.Ctx) {
			// Seeded from the spec: the transfer schedule is part of the
			// reproducible transactional schedule.
			rng := rand.New(rand.NewSource(spec.Seed*7919 + int64(ci)))
			mgr := &txn.Manager{Cl: &txn.LocalClient{St: st}, MaxAttempts: 64}
			deltas := make([]int64, spec.TxnSize)
			bals := make([]int64, spec.TxnSize)
			for t := 0; t < spec.Transfers; t++ {
				accs := pickTxnKeys(rng, spec.Accounts, spec.TxnSize, spec.Theta)
				keys := make([][]byte, len(accs))
				for i, a := range accs {
					keys[i] = kv.Key(a)
				}
				amt := 1 + rng.Int63n(7)
				fn := func(c env.Ctx, tx *txn.Txn) error {
					for i := range accs {
						v, ok, err := tx.Get(c, keys[i])
						if err != nil {
							return err
						}
						if !ok {
							return fmt.Errorf("txnbank: account %d missing", accs[i])
						}
						bals[i] = decBal(v)
					}
					for i := range accs {
						if i == 0 {
							deltas[i] = -amt * int64(len(accs)-1)
						} else {
							deltas[i] = amt
						}
						tx.Put(keys[i], encBal(bals[i]+deltas[i], tx.StartTS()))
					}
					return nil
				}
				seed := spec.Seed*104_729 + int64(ci)*1_000_003 + int64(t)
				if _, err := mgr.Run(c, seed, fn); err != nil {
					if err == txn.ErrConflict {
						continue // retry budget exhausted; counted in mgr.Aborts
					}
					fail("mover %d transfer %d: %v", ci, t, err)
					continue
				}
				res.Committed++
				for i, a := range accs {
					ledger[a] += deltas[i]
				}
			}
			res.Conflicts += mgr.Conflicts
			res.Aborts += mgr.Aborts
			mu.Lock(c)
			finished++
			mu.Unlock(c)
			cond.Signal(c)
		})
	}

	audit := func(c env.Ctx, final bool) {
		ts := st.SnapshotTS()
		bo := mvcc.NewBackoff(spec.Seed^int64(ts), 2*env.Microsecond, 256*env.Microsecond)
		var sum int64
		for a := int64(0); a < spec.Accounts; a++ {
			v, ok, err := tracedSnapshotGet(c, st, tracer, kv.Key(a), ts, bo)
			if err != nil {
				fail("%v", err)
				return
			}
			if !ok {
				fail("audit@%d: account %d missing", ts, a)
				return
			}
			bal := decBal(v)
			if final {
				finals[a] = bal
			}
			sum += bal
		}
		if sum != total {
			fail("audit@%d: conservation violated: sum=%d want %d", ts, sum, total)
		}
		audits = append(audits, ts, uint64(sum))
		res.Audits++
	}

	e.Go("txn-auditor", func(c env.Ctx) {
		for i := 0; i < spec.Audits; i++ {
			c.Sleep(spec.AuditGap)
			audit(c, false)
		}
		mu.Lock(c)
		for finished < spec.Movers {
			cond.Wait(c)
		}
		mu.Unlock(c)
		if !spec.SkipGC {
			res.GCFreed = int64(st.GC(c, st.SnapshotTS()))
		}
		audit(c, true)
		for a := int64(0); a < spec.Accounts; a++ {
			if want := spec.Initial + ledger[a]; finals[a] != want {
				fail("account %d: final balance %d, committed ledger says %d", a, finals[a], want)
			}
		}
		res.PendingAfter = st.PendingLocks()
		if res.PendingAfter != 0 {
			fail("%d locks still pending after all movers drained", res.PendingAfter)
		}
		st.Stop(c)
	})

	if err := s.Run(-1); err != nil {
		panic(err)
	}
	res.ReadLockWait = env.Time(tracer.Breakdown().Sum(trace.CompLock))
	if res.ReadLockWait != 0 {
		fail("snapshot reads waited %s on locks; SI readers must never block", stats.FmtDur(res.ReadLockWait))
	}
	if err := st.CheckMVCC(); err != nil {
		fail("post-run MVCC audit: %v", err)
	}
	if err := st.CheckConsistency(); err != nil {
		fail("post-run consistency: %v", err)
	}
	if err := s.Close(); err != nil {
		panic(err)
	}

	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(spec.Accounts))
	word(uint64(res.Committed))
	word(uint64(res.Conflicts))
	word(uint64(res.Aborts))
	word(uint64(res.Audits))
	word(uint64(res.GCFreed))
	word(uint64(res.ReadLockWait))
	for _, v := range audits {
		word(v)
	}
	for _, v := range finals {
		word(uint64(v))
	}
	res.Digest = h.Sum64()

	if len(failures) > 0 {
		return res, fmt.Errorf("txnbank seed=%d theta=%.2f size=%d: %d failures, first: %s",
			spec.Seed, spec.Theta, spec.TxnSize, len(failures), failures[0])
	}
	return res, nil
}

// ackedTxn is one acknowledged transfer: its commit timestamp, the accounts
// it touched, and the exact bytes it left behind. The crash and failover
// verifiers re-read every key of every acked transaction at its commit
// timestamp — all present, or the transaction was visible half-applied.
type ackedTxn struct {
	cts  uint64
	keys [][]byte
	vals [][]byte
}

// TxnCrashSpec describes one transactional crash–recover–verify run: movers
// run open-ended transfers on fault-wrapped disks until the machine dies at
// the AtWrite-th device write, then the store is recovered from the
// power-loss images, crash settlement resolves leftover intents, and
// conservation plus every acked transaction's visibility are checked.
type TxnCrashSpec struct {
	Seed     int64
	Accounts int64
	Initial  int64
	Movers   int
	TxnSize  int
	Theta    float64
	// AtWrite kills the machine when the Nth timed device write is submitted.
	AtWrite int64
	Workers int
	NDisks  int
	Cores   int
}

func (ts *TxnCrashSpec) defaults() {
	if ts.Accounts == 0 {
		ts.Accounts = 128
	}
	if ts.Initial == 0 {
		ts.Initial = 1_000
	}
	if ts.Movers == 0 {
		ts.Movers = 4
	}
	if ts.TxnSize == 0 {
		ts.TxnSize = 3
	}
	if ts.AtWrite == 0 {
		ts.AtWrite = 1_000
	}
	if ts.Workers == 0 {
		ts.Workers = 4
	}
	if ts.NDisks == 0 {
		ts.NDisks = 2
	}
	if ts.Cores == 0 {
		ts.Cores = 4
	}
}

// TxnCrashResult is one transactional crash run's outcome.
type TxnCrashResult struct {
	Seed      int64
	AtWrite   int64
	CrashTime env.Time
	Fault     fault.Stats
	// IssuedTxns/AckedTxns count transfers started / acknowledged before the
	// crash. Transactions past their commit point but not yet acknowledged
	// fall in between; conservation covers them either way.
	IssuedTxns int64
	AckedTxns  int64
	Conflicts  int64
	// Resolved is how many leftover intents crash settlement rolled forward
	// or back during recovery.
	Resolved    int
	RecoverTime env.Time
	Digest      uint64
}

// RunTxnCrash executes one transactional crash cycle. The returned error is
// a verification failure: conservation violated after recovery, an acked
// transaction half-applied, or a lock surviving settlement.
func RunTxnCrash(spec TxnCrashSpec) (TxnCrashResult, error) {
	spec.defaults()
	res := TxnCrashResult{Seed: spec.Seed, AtWrite: spec.AtWrite}
	total := spec.Accounts * spec.Initial
	prof := device.AmazonNVMe()

	// Phase 1: transfers on fault-wrapped disks until the power cut. The
	// simulation freezes at the crash instant, so the recorded acked set is
	// exactly the pre-crash acknowledgements.
	s1 := sim.New(spec.Seed + 1)
	e1 := sim.NewEnv(s1, spec.Cores)
	inj := fault.NewInjector(s1, fault.Config{
		Seed:    spec.Seed*1_000_003 + spec.AtWrite,
		AtWrite: spec.AtWrite,
	})
	disks := make([]device.Disk, spec.NDisks)
	for i := range disks {
		disks[i] = inj.Wrap(device.NewSimDisk(s1, prof, device.NewMemStore()))
	}
	cfg := core.DefaultConfig(disks...)
	cfg.Workers = spec.Workers
	cfg.MVCC = true
	st, err := core.Open(e1, cfg)
	if err != nil {
		panic(err)
	}
	items := make([]kv.Item, spec.Accounts)
	for i := int64(0); i < spec.Accounts; i++ {
		items[i] = kv.Item{Key: kv.Key(i), Value: encBal(spec.Initial, 0)}
	}
	if err := st.BulkLoad(items); err != nil {
		panic(err)
	}
	st.Start()
	inj.Arm()

	acked := make([][]ackedTxn, spec.Movers)
	mgrs := make([]*txn.Manager, spec.Movers)
	const horizon = 20 * env.Second
	for ci := 0; ci < spec.Movers; ci++ {
		ci := ci
		mgrs[ci] = &txn.Manager{Cl: &txn.LocalClient{St: st}, MaxAttempts: 64}
		e1.Go(fmt.Sprintf("txn-crash-mover-%d", ci), func(c env.Ctx) {
			rng := rand.New(rand.NewSource(spec.Seed*7919 + int64(ci)))
			mgr := mgrs[ci]
			bals := make([]int64, spec.TxnSize)
			for t := 0; c.Now() < horizon; t++ {
				accs := pickTxnKeys(rng, spec.Accounts, spec.TxnSize, spec.Theta)
				keys := make([][]byte, len(accs))
				for i, a := range accs {
					keys[i] = kv.Key(a)
				}
				amt := 1 + rng.Int63n(7)
				vals := make([][]byte, len(accs))
				fn := func(c env.Ctx, tx *txn.Txn) error {
					for i := range accs {
						v, ok, err := tx.Get(c, keys[i])
						if err != nil {
							return err
						}
						if !ok {
							return fmt.Errorf("txnbank: account %d missing", accs[i])
						}
						bals[i] = decBal(v)
					}
					for i := range accs {
						nb := bals[i] + amt
						if i == 0 {
							nb = bals[i] - amt*int64(len(accs)-1)
						}
						vals[i] = encBal(nb, tx.StartTS())
						tx.Put(keys[i], vals[i])
					}
					return nil
				}
				res.IssuedTxns++
				seed := spec.Seed*104_729 + int64(ci)*1_000_003 + int64(t)
				cts, err := mgr.Run(c, seed, fn)
				if err != nil {
					continue // conflict exhaustion; the crash freeze also lands here
				}
				res.AckedTxns++
				acked[ci] = append(acked[ci], ackedTxn{cts: cts, keys: keys, vals: vals})
			}
		})
	}
	if err := s1.Run(horizon + env.Second); err != nil {
		panic(err)
	}
	for _, m := range mgrs {
		res.Conflicts += m.Conflicts
	}
	if !inj.Tripped() {
		s1.Close()
		return res, fmt.Errorf("txnbank: crash point %d never reached (only %d writes submitted)",
			spec.AtWrite, inj.Stats().Writes)
	}
	res.CrashTime = inj.CrashTime()
	res.Fault = inj.Stats()
	snaps := inj.Snapshots()
	if err := s1.Close(); err != nil {
		panic(err)
	}

	// Phase 2: reboot on the snapshot images, recover, settle leftover
	// intents, and verify. No GC runs, so every acked transaction's versions
	// are still on disk as evidence.
	s2 := sim.New(spec.Seed + 2)
	e2 := sim.NewEnv(s2, spec.Cores)
	disks2 := make([]device.Disk, len(snaps))
	for i, ms := range snaps {
		disks2[i] = device.NewSimDisk(s2, prof, ms)
	}
	cfg2 := core.DefaultConfig(disks2...)
	cfg2.Workers = spec.Workers
	cfg2.MVCC = true
	st2, err := core.Open(e2, cfg2)
	if err != nil {
		panic(err)
	}
	finals := make([]int64, spec.Accounts)
	var failures []string
	fail := func(format string, args ...any) {
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	e2.Go("txn-crash-recover", func(c env.Ctx) {
		t0 := c.Now()
		if err := st2.Recover(c); err != nil {
			fail("recover: %v", err)
			return
		}
		st2.Start()
		res.Resolved = st2.ResolveIntents(c)
		res.RecoverTime = c.Now() - t0
		if n := st2.PendingLocks(); n != 0 {
			fail("%d locks survived crash settlement", n)
		}
		ts := st2.SnapshotTS()
		var sum int64
		for a := int64(0); a < spec.Accounts; a++ {
			v, ok := st2.GetAt(c, kv.Key(a), ts)
			if !ok {
				fail("account %d lost in crash", a)
				continue
			}
			finals[a] = decBal(v)
			sum += finals[a]
		}
		if sum != total {
			fail("conservation violated after crash: sum=%d want %d (crash@%s)",
				sum, total, stats.FmtDur(res.CrashTime))
		}
		// Every acknowledged transaction must be fully visible at its commit
		// timestamp: reading each of its keys at cts must return exactly the
		// bytes it wrote (commit timestamps are unique, so the version at cts
		// is that transaction's or the check fails).
		for ci := range acked {
			for ti, at := range acked[ci] {
				for i, k := range at.keys {
					v, ok := st2.GetAt(c, k, at.cts)
					if !ok || !bytes.Equal(v, at.vals[i]) {
						fail("acked txn half-applied: mover %d txn %d cts=%d key %q (found=%v)",
							ci, ti, at.cts, k, ok)
					}
				}
			}
		}
		if err := st2.CheckConsistency(); err != nil {
			fail("post-recovery consistency: %v", err)
		}
		st2.Stop(c)
	})
	if err := s2.Run(-1); err != nil {
		panic(err)
	}
	if err := st2.CheckMVCC(); err != nil {
		fail("post-recovery MVCC audit: %v", err)
	}
	if err := s2.Close(); err != nil {
		panic(err)
	}

	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(res.CrashTime))
	word(uint64(res.Fault.Writes))
	word(uint64(res.Fault.InFlight))
	word(uint64(res.Fault.Dropped))
	word(uint64(res.Fault.Torn))
	word(uint64(res.IssuedTxns))
	word(uint64(res.AckedTxns))
	word(uint64(res.Resolved))
	word(uint64(res.RecoverTime))
	for ci := range acked {
		for _, at := range acked[ci] {
			word(at.cts)
		}
	}
	for _, v := range finals {
		word(uint64(v))
	}
	res.Digest = h.Sum64()

	if len(failures) > 0 {
		return res, fmt.Errorf("txnbank crash seed=%d atwrite=%d: %d failures, first: %s",
			spec.Seed, spec.AtWrite, len(failures), failures[0])
	}
	return res, nil
}

// TxnCrashSweep crashes the transactional store at Points seeded write
// indices (the same derivation as CrashSweep) and verifies conservation and
// acked-transaction visibility after each. Returns the number of failing
// points; every failure prints the flags that reproduce it.
func TxnCrashSweep(o SweepOpts, w io.Writer) int {
	if o.Points == 0 {
		o.Points = 25
	}
	failures := 0
	for i := 1; i <= o.Points; i++ {
		if o.Point > 0 && i != o.Point {
			continue
		}
		pointSeed, atWrite := SweepPoint(o.Seed, i)
		res, err := RunTxnCrash(TxnCrashSpec{Seed: pointSeed, AtWrite: atWrite})
		if err != nil {
			failures++
			fmt.Fprintf(w, "FAIL txnbank point %2d/%d: %v\n", i, o.Points, err)
			fmt.Fprintf(w, "     repro: go run ./cmd/kvell-txn -crash -seed=%d -point=%d\n", o.Seed, i)
			continue
		}
		if o.Verbose {
			fmt.Fprintf(w, "ok   txnbank point %2d/%d: crash@%s write=%d acked=%d resolved=%d digest=%016x\n",
				i, o.Points, stats.FmtDur(res.CrashTime), res.AtWrite, res.AckedTxns, res.Resolved, res.Digest)
		}
	}
	return failures
}

// TxnClusterSpec describes one multi-machine transactional run: Machines
// server machines (store shards with MVCC on) plus one client machine whose
// mover procs run percolator transactions across shards, timestamps served
// by the oracle on machine cluster.OracleHome. With Failover set, machine
// KillMachine (never the oracle's) dies at KillAt and a follower is promoted
// through full-scan recovery; conservation and every acked transaction must
// survive.
type TxnClusterSpec struct {
	Machines int
	RF       int
	Seed     int64
	// AccountsPerMachine fixes the per-shard dataset size; accounts hash
	// across shards, so transactions routinely span machines.
	AccountsPerMachine int64
	Initial            int64
	Movers             int
	Transfers          int
	TxnSize            int
	Theta              float64
	Workers            int
	NDisks             int
	Cores              int
	Slots              int

	Failover    bool
	KillMachine int
	KillAt      env.Time
	DetectDelay env.Time
}

func (ts *TxnClusterSpec) defaults() {
	if ts.Machines == 0 {
		ts.Machines = 4
	}
	if ts.RF == 0 {
		ts.RF = 1
	}
	if ts.AccountsPerMachine == 0 {
		ts.AccountsPerMachine = 64
	}
	if ts.Initial == 0 {
		ts.Initial = 1_000
	}
	if ts.Movers == 0 {
		ts.Movers = 4
	}
	if ts.Transfers == 0 {
		ts.Transfers = 25
	}
	if ts.TxnSize == 0 {
		ts.TxnSize = 2
	}
	if ts.Workers == 0 {
		ts.Workers = 4
	}
	if ts.NDisks == 0 {
		ts.NDisks = 1
	}
	if ts.Cores == 0 {
		ts.Cores = 5
	}
	if ts.Slots == 0 {
		ts.Slots = 4096
	}
	if ts.KillMachine == 0 {
		// Never the oracle's machine: timestamp service is pinned there.
		ts.KillMachine = 1
	}
	if ts.KillAt == 0 {
		ts.KillAt = 3 * env.Millisecond
	}
	if ts.DetectDelay == 0 {
		ts.DetectDelay = 200 * env.Microsecond
	}
}

// TxnClusterResult is one cluster transaction run's outcome.
type TxnClusterResult struct {
	Machines int
	RF       int

	Committed  int64
	Conflicts  int64
	Aborts     int64
	FailedTxns int64 // transfers aborted by the machine kill (un-acked)
	Swept      int64 // in-flight calls failed by the failover sweep

	AckedVerified int // acked-transaction keys re-read and matched
	Promoted      int
	CrashTime     env.Time
	Net           net.Counters
	PagesShipped  int64
	Digest        uint64
}

// RunTxnCluster executes one cluster transaction run. The returned error is
// a verification failure (conservation violated across shards, acked
// transaction half-applied after failover, promotion failure).
func RunTxnCluster(spec TxnClusterSpec) (TxnClusterResult, error) {
	spec.defaults()
	M := spec.Machines
	clientM := M
	total := int64(M) * spec.AccountsPerMachine
	grand := total * spec.Initial
	prof := device.AmazonNVMe()
	res := TxnClusterResult{Machines: M, RF: spec.RF, Promoted: -1}
	if spec.Failover && spec.KillMachine == cluster.OracleHome {
		panic("txnbank: cannot kill the oracle's machine")
	}

	s := sim.New(spec.Seed + 1)
	nw := net.New(s, M+1, net.TenGbE())
	place := cluster.NewPlacement(spec.Slots, M, spec.RF)
	cl := cluster.New(s, nw, place)

	envs := make([]*sim.Env, M+1)
	for m := 0; m < M; m++ {
		envs[m] = sim.NewMachineEnv(s, m, spec.Cores)
	}
	envs[clientM] = sim.NewMachineEnv(s, clientM, max(2, M))

	var inj *fault.Injector
	baseStores := make([][]*device.MemStore, M)
	stores := make([]*core.Store, M)
	cfgs := make([]core.Config, M)
	rps := make([]*cluster.Replicator, M)
	repsByHome := make([][]*cluster.Replica, M)
	for m := 0; m < M; m++ {
		var rp *cluster.Replicator
		if spec.RF > 1 {
			rp = cluster.NewReplicator(cl, m)
			rps[m] = rp
		}
		disks := make([]device.Disk, spec.NDisks)
		for i := 0; i < spec.NDisks; i++ {
			ms := device.NewMemStore()
			baseStores[m] = append(baseStores[m], ms)
			sd := device.NewSimDisk(s, prof, ms)
			sd.Machine = m
			sd.ID = m*spec.NDisks + i
			var d device.Disk = sd
			if spec.Failover && m == spec.KillMachine {
				if inj == nil {
					inj = fault.NewInjector(s, fault.Config{
						Seed:        spec.Seed*1_000_003 + int64(m+1),
						AtTime:      spec.KillAt,
						HaltMachine: true,
						Machine:     m,
					})
				}
				d = inj.Wrap(sd)
			}
			if rp != nil {
				d = rp.WrapDisk(i, d)
			}
			disks[i] = d
		}
		cfg := core.DefaultConfig(disks...)
		cfg.Workers = spec.Workers
		cfg.MVCC = true
		cfg.NoInPlaceUpdates = spec.RF > 1
		if rp != nil {
			cfg.OnIndexUpdate = rp.OnIndexUpdate
		}
		st, err := core.Open(envs[m], cfg)
		if err != nil {
			panic(err)
		}
		stores[m] = st
		cfgs[m] = cfg
	}

	perMachine := make([][]kv.Item, M)
	keyBuf := make([]byte, kv.KeyLen)
	for i := int64(0); i < total; i++ {
		kv.FillKey(keyBuf, i)
		m := place.Leader(place.SlotOf(keyBuf))
		perMachine[m] = append(perMachine[m], kv.Item{Key: kv.Key(i), Value: encBal(spec.Initial, 0)})
	}
	for m := 0; m < M; m++ {
		if err := stores[m].BulkLoad(perMachine[m]); err != nil {
			panic(err)
		}
	}
	if spec.RF > 1 {
		for m := 0; m < M; m++ {
			for _, f := range place.Followers(m) {
				rdisks := make([]*device.SimDisk, spec.NDisks)
				for i, ms := range baseStores[m] {
					rd := device.NewSimDisk(s, prof, ms.Snapshot())
					rd.Machine = f
					rd.ID = 1000 + m*spec.NDisks + i
					rdisks[i] = rd
				}
				rep := cluster.NewReplica(cl, envs[f], m, rdisks)
				rps[m].AddFollower(rep)
				repsByHome[m] = append(repsByHome[m], rep)
				rep.Start()
			}
			rps[m].Activate()
		}
	}
	for m := 0; m < M; m++ {
		n := cluster.NewNode(cl, envs[m], m, stores[m], rps[m])
		cl.SetNode(m, n)
		n.Start()
		stores[m].Start()
	}
	if inj != nil {
		inj.Arm()
	}

	ledger := make([]int64, total)
	acked := make([][]ackedTxn, spec.Movers)
	tcs := make([]*cluster.TxnClient, spec.Movers)
	for ci := range tcs {
		tcs[ci] = cluster.NewTxnClient(cl, envs[clientM], clientM)
	}
	var failures []string
	fail := func(format string, args ...any) {
		if len(failures) < 8 {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	mu := envs[clientM].NewMutex()
	cond := envs[clientM].NewCond(mu)
	finished := 0

	for ci := 0; ci < spec.Movers; ci++ {
		ci := ci
		envs[clientM].Go(fmt.Sprintf("txn-cluster-mover-%d", ci), func(c env.Ctx) {
			rng := rand.New(rand.NewSource(spec.Seed*7919 + int64(ci)))
			mgr := &txn.Manager{Cl: tcs[ci], MaxAttempts: 64}
			bals := make([]int64, spec.TxnSize)
			deltas := make([]int64, spec.TxnSize)
			for t := 0; t < spec.Transfers; t++ {
				accs := pickTxnKeys(rng, total, spec.TxnSize, spec.Theta)
				keys := make([][]byte, len(accs))
				for i, a := range accs {
					keys[i] = kv.Key(a)
				}
				amt := 1 + rng.Int63n(7)
				vals := make([][]byte, len(accs))
				fn := func(c env.Ctx, tx *txn.Txn) error {
					for i := range accs {
						v, ok, err := tx.Get(c, keys[i])
						if err != nil {
							return err
						}
						if !ok {
							return fmt.Errorf("txnbank: account %d missing", accs[i])
						}
						bals[i] = decBal(v)
					}
					for i := range accs {
						if i == 0 {
							deltas[i] = -amt * int64(len(accs)-1)
						} else {
							deltas[i] = amt
						}
						vals[i] = encBal(bals[i]+deltas[i], tx.StartTS())
						tx.Put(keys[i], vals[i])
					}
					return nil
				}
				seed := spec.Seed*104_729 + int64(ci)*1_000_003 + int64(t)
				cts, err := mgr.Run(c, seed, fn)
				if err != nil {
					if err == txn.ErrAborted && spec.Failover {
						// The kill swept this transfer mid-commit; its primary
						// never became durable, so it rolled back cleanly.
						res.FailedTxns++
						continue
					}
					if err == txn.ErrConflict {
						continue // retry budget exhausted; counted in mgr.Aborts
					}
					fail("mover %d transfer %d: %v", ci, t, err)
					continue
				}
				res.Committed++
				for i, a := range accs {
					ledger[a] += deltas[i]
				}
				acked[ci] = append(acked[ci], ackedTxn{cts: cts, keys: keys, vals: vals})
			}
			res.Conflicts += mgr.Conflicts
			res.Aborts += mgr.Aborts
			mu.Lock(c)
			finished++
			mu.Unlock(c)
			cond.Signal(c)
		})
	}

	// Failover driver: wait out detection, re-point routing, promote the
	// replica with the dead store's own (MVCC) config so the promoted store
	// rebuilds version chains and locks, then sweep every mover's in-flight
	// call to the dead machine (they complete with TxnRetry and re-send under
	// the new epoch).
	if spec.Failover {
		dead := spec.KillMachine
		followers := place.Followers(dead)
		prng := rand.New(rand.NewSource(spec.Seed*104_729 + int64(dead+1)))
		pick := followers[prng.Intn(len(followers))]
		var rep *cluster.Replica
		for _, r := range repsByHome[dead] {
			if r.Host() == pick {
				rep = r
			}
		}
		res.Promoted = pick
		envs[pick].Go("txn-failover-driver", func(c env.Ctx) {
			c.Sleep(spec.KillAt + spec.DetectDelay - c.Now())
			if !inj.Tripped() {
				fail("machine %d never died", dead)
				return
			}
			cl.FailMachine(dead)
			st2, err := rep.Promote(c, cfgs[dead])
			if err != nil {
				fail("promotion failed: %v", err)
				return
			}
			st2.Start()
			n2 := cluster.NewNode(cl, envs[pick], dead, st2, nil)
			n2.Start()
			cl.SetNode(dead, n2)
			stores[dead] = st2
			for _, tc := range tcs {
				tc.SweepIf(c, dead)
			}
		})
	}

	// Verifier: after the movers drain, audit conservation across all shards
	// at a fresh snapshot and re-read every key of every acked transaction at
	// its commit timestamp through the (possibly re-routed) cluster.
	allDone := false
	envs[clientM].Go("txn-cluster-verify", func(c env.Ctx) {
		mu.Lock(c)
		for finished < spec.Movers {
			cond.Wait(c)
		}
		mu.Unlock(c)
		vtc := cluster.NewTxnClient(cl, envs[clientM], clientM)
		ts := vtc.SnapshotTS(c)
		var sum int64
		finals := make([]int64, total)
		for a := int64(0); a < total; a++ {
			v, ok, err := txn.GetAt(c, vtc, kv.Key(a), ts, spec.Seed)
			if err != nil {
				fail("verify read of account %d: %v", a, err)
				continue
			}
			if !ok {
				fail("account %d lost", a)
				continue
			}
			finals[a] = decBal(v)
			sum += finals[a]
		}
		if sum != grand {
			fail("conservation violated across cluster: sum=%d want %d", sum, grand)
		}
		if !spec.Failover {
			// Without a kill every commit was acknowledged, so the committed
			// ledger predicts every balance exactly.
			for a := int64(0); a < total; a++ {
				if want := spec.Initial + ledger[a]; finals[a] != want {
					fail("account %d: balance %d, committed ledger says %d", a, finals[a], want)
				}
			}
		}
		for ci := range acked {
			for ti, at := range acked[ci] {
				for i, k := range at.keys {
					v, ok, err := txn.GetAt(c, vtc, k, at.cts, spec.Seed+int64(ti))
					if err != nil || !ok || !bytes.Equal(v, at.vals[i]) {
						fail("acked txn half-applied after failover: mover %d txn %d cts=%d key %q",
							ci, ti, at.cts, k)
					} else {
						res.AckedVerified++
					}
				}
			}
		}
		allDone = true
	})

	if err := s.Run(60 * env.Second); err != nil {
		panic(err)
	}
	if !allDone && len(failures) == 0 {
		panic("txnbank cluster: run did not complete within the time bound")
	}
	if inj != nil && inj.Tripped() {
		res.CrashTime = inj.CrashTime()
	}
	res.Net = nw.Counters()
	for _, rp := range rps {
		if rp != nil {
			res.PagesShipped += rp.PagesShipped
		}
	}
	for _, tc := range tcs {
		res.Swept += tc.Swept
	}
	for m := 0; m < M; m++ {
		if spec.Failover && m == spec.KillMachine {
			continue // frozen at the crash instant; the promoted store replaced it
		}
		if err := stores[m].CheckMVCC(); err != nil {
			fail("machine %d MVCC audit: %v", m, err)
		}
	}
	if spec.Failover && res.Promoted >= 0 {
		if err := stores[spec.KillMachine].CheckMVCC(); err != nil {
			fail("promoted store MVCC audit: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		panic(err)
	}

	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(M))
	word(uint64(spec.RF))
	word(uint64(res.Committed))
	word(uint64(res.Conflicts))
	word(uint64(res.Aborts))
	word(uint64(res.FailedTxns))
	word(uint64(res.Swept))
	word(uint64(res.AckedVerified))
	word(uint64(res.Promoted + 1))
	word(uint64(res.CrashTime))
	word(uint64(res.Net.Msgs))
	word(uint64(res.Net.Bytes))
	word(uint64(res.PagesShipped))
	for ci := range acked {
		for _, at := range acked[ci] {
			word(at.cts)
		}
	}
	for _, v := range ledger {
		word(uint64(v))
	}
	res.Digest = h.Sum64()

	if len(failures) > 0 {
		return res, fmt.Errorf("txnbank cluster seed=%d machines=%d rf=%d failover=%v: %d failures, first: %s",
			spec.Seed, M, spec.RF, spec.Failover, len(failures), failures[0])
	}
	return res, nil
}

// txnExp is the deliverable experiment: transactional throughput and
// conflict behaviour across a conflict-rate (theta) × transaction-size
// sweep, each point verified for conservation at every audit snapshot, then
// a cross-shard cluster run with a mid-workload machine kill proving no
// acknowledged transaction is ever half-applied.
func txnExp(o Options, w io.Writer) {
	thetas := []float64{0, 0.5, 0.9}
	sizes := []int{2, 4, 8}
	transfers := 50
	if o.Quick {
		transfers = 25
		sizes = []int{2, 4}
	}

	fmt.Fprintf(w, "\nTxnbank: %d movers, %d transfers each, conservation audited at every snapshot:\n\n",
		4, transfers)
	fmt.Fprintf(w, "%-8s %-6s %10s %10s %10s %12s %12s\n",
		"theta", "size", "committed", "conflicts", "aborts", "gc-freed", "digest")
	for _, th := range thetas {
		for _, sz := range sizes {
			res, err := RunTxnBank(TxnBankSpec{
				Seed:      o.Seed,
				Theta:     th,
				TxnSize:   sz,
				Transfers: transfers,
			})
			if err != nil {
				fmt.Fprintf(w, "%-8.2f %-6d FAILED: %v\n", th, sz, err)
				continue
			}
			fmt.Fprintf(w, "%-8.2f %-6d %10d %10d %10d %12d %12x\n",
				th, sz, res.Committed, res.Conflicts, res.Aborts, res.GCFreed, res.Digest)
		}
	}

	fm, rf := 4, 2
	fres, err := RunTxnCluster(TxnClusterSpec{
		Machines:    fm,
		RF:          rf,
		Seed:        o.Seed,
		Theta:       0.3,
		Failover:    true,
		KillMachine: 1,
	})
	fmt.Fprintf(w, "\nCluster transactions: %d machines, RF=%d, kill machine %d at %s (promoted: machine %d)\n",
		fm, rf, 1, stats.FmtDur(fres.CrashTime), fres.Promoted)
	fmt.Fprintf(w, "  committed=%d failed=%d swept=%d conflicts=%d acked-keys-verified=%d\n",
		fres.Committed, fres.FailedTxns, fres.Swept, fres.Conflicts, fres.AckedVerified)
	if err != nil {
		fmt.Fprintf(w, "  FAILED: %v\n", err)
	} else {
		fmt.Fprintf(w, "  ok: conservation held across the kill; no acked transaction half-applied (digest %016x)\n",
			fres.Digest)
	}
}
