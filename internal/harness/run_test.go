package harness

import (
	"testing"

	"kvell/internal/env"
	"kvell/internal/ycsb"
)

func ycsbGen(w byte, dist ycsb.Distribution, records int64, item int) func(int64) Generator {
	return func(seed int64) Generator {
		return ycsb.NewGenerator(ycsb.Core(w), dist, records, item, seed)
	}
}

func TestSmokeKVellYCSBA(t *testing.T) {
	t.Parallel()
	r := Run(Spec{
		Name:     "smoke-kvell",
		Engine:   KVell,
		Records:  20_000,
		Gen:      ycsbGen('A', ycsb.Uniform, 20_000, 1024),
		Warmup:   200 * env.Millisecond,
		Duration: 500 * env.Millisecond,
	})
	if r.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if r.Throughput < 50_000 {
		t.Fatalf("KVell YCSB-A throughput %.0f ops/s; far below device capability", r.Throughput)
	}
	if r.Lat.Count() == 0 || r.Lat.Percentile(0.99) <= 0 {
		t.Fatal("no latency samples")
	}
}

func TestSmokeBaselinesYCSBA(t *testing.T) {
	t.Parallel()
	for _, k := range []EngineKind{RocksLike, PebblesLike, WiredTigerLike, TokuLike} {
		r := Run(Spec{
			Name:     "smoke",
			Engine:   k,
			Records:  10_000,
			Gen:      ycsbGen('A', ycsb.Uniform, 10_000, 1024),
			Warmup:   100 * env.Millisecond,
			Duration: 300 * env.Millisecond,
		})
		if r.Ops == 0 {
			t.Fatalf("%v: no operations completed", k)
		}
		t.Logf("%v: %.0f ops/s", k, r.Throughput)
	}
}
