// Package harness runs the paper's experiments: it assembles a simulated
// machine (CPU cores + calibrated disks), an engine, a workload generator
// and closed-loop clients, and measures throughput, latency distributions
// and utilization timelines. One experiment definition exists for every
// table and figure in the paper's evaluation (see DESIGN.md §3).
package harness

import (
	"fmt"
	"runtime"

	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/engine/betree"
	"kvell/internal/engine/lsm"
	"kvell/internal/engine/wtree"
	"kvell/internal/env"
	"kvell/internal/kv"
	"kvell/internal/sim"
	"kvell/internal/stats"
	"kvell/internal/trace"
)

// EngineKind selects which system to benchmark.
type EngineKind int

// Engine kinds, in the paper's comparison set.
const (
	KVell EngineKind = iota
	RocksLike
	PebblesLike
	WiredTigerLike
	TokuLike
)

// AllEngines is the paper's full comparison set.
var AllEngines = []EngineKind{KVell, RocksLike, PebblesLike, TokuLike, WiredTigerLike}

// String names the engine like the paper does.
func (k EngineKind) String() string {
	switch k {
	case KVell:
		return "KVell"
	case RocksLike:
		return "RocksDB-like"
	case PebblesLike:
		return "PebblesDB-like"
	case WiredTigerLike:
		return "WiredTiger-like"
	case TokuLike:
		return "TokuMX-like"
	default:
		return "?"
	}
}

// Generator is the workload interface both the YCSB and the Nutanix
// generators satisfy.
type Generator interface {
	Next() *kv.Request
	InitialItems() []kv.Item
}

// Filler is the allocation-free fast path both built-in generators also
// satisfy: FillNext writes the next operation into a recycled request using
// the same RNG draw order as Next, so the harness can pool Window requests
// per client instead of allocating one (plus key, value and Done closure)
// per operation. Custom generators that only implement Generator still work
// through the allocating path.
type Filler interface {
	FillNext(*kv.Request)
}

// ClockedFiller is a Filler whose stream depends on virtual time (the YCSB
// hot-set-shift mode). The harness prefers FillNextAt when available; a
// generator with time-dependence disabled must make FillNextAt(r, now)
// bit-identical to FillNext(r), which keeps golden digests unchanged.
type ClockedFiller interface {
	Filler
	FillNextAt(*kv.Request, env.Time)
}

// Spec describes one benchmark run.
type Spec struct {
	Name    string
	Seed    int64
	Cores   int
	Profile device.Profile
	NDisks  int
	// NullBacked uses a discard/zero page store (for datasets too large
	// to hold real bytes; I/O patterns and timing are unaffected).
	NullBacked bool

	Engine    EngineKind
	Records   int64
	ItemSize  int // bytes per record, for cache sizing
	CacheFrac float64

	Gen     func(seed int64) Generator
	Clients int
	Window  int // outstanding requests per client (KVell pipelines)

	// Arrival, when set, replaces the closed-loop clients with an
	// open-loop Poisson arrival process plus an admission valve (see
	// openloop.go). Clients then sizes the service-proc pool.
	Arrival *Arrival

	Warmup   env.Time
	Duration env.Time
	Bucket   env.Time // timeline bucket (default 1s)

	// Tweak hooks let experiments adjust engine configs.
	TweakKVell func(*core.Config)
	TweakLSM   func(*lsm.Config)
	TweakWT    func(*wtree.Config)
	TweakBE    func(*betree.Config)

	// Tracer, if set, records per-request latency attribution and
	// virtual-time spans for the run. Purely observational: the simulated
	// schedule is bit-identical with or without it.
	Tracer *trace.Tracer
}

// Result holds one run's measurements.
type Result struct {
	Spec       Spec
	EngineName string
	Ops        int64
	Throughput float64 // ops/s in the measurement window
	Lat        *stats.Hist
	Timeline   *stats.Timeline // completed ops per bucket
	DiskBW     *stats.Timeline // device bytes per bucket
	CPUUtil    *stats.Util
	DiskUtil   *stats.Util
	Disks      []*device.SimDisk
	Engine     kv.Engine
	Sim        *sim.Sim

	// OpsTotal counts every completion including warmup — the denominator
	// for whole-run ratios like device writes per operation, whose
	// numerators (disk counters) also span the whole run.
	OpsTotal int64

	// Open-loop accounting (zero for closed-loop runs). Ops then counts
	// completed admissions only — goodput, not offered load.
	Arrivals int64 // arrivals generated (admitted or not, whole run)
	Shed     int64 // arrivals rejected by the valve in the window
	Delayed  int64 // arrivals the valve held back in the window

	// Engine cache accounting, snapshotted after the run: the page/block
	// cache every engine has, plus KVell's hot-key record cache when
	// tiering is enabled (all zero otherwise).
	CacheHits     int64
	CacheMisses   int64
	HotHits       int64
	HotMisses     int64
	HotPromotions int64
	HotDemotions  int64
}

// fillEngineStats snapshots per-engine cache counters into the result.
func fillEngineStats(res *Result) {
	switch e := res.Engine.(type) {
	case *core.Store:
		st := e.Stats()
		res.CacheHits, res.CacheMisses = st.CacheHits, st.CacheMisses
		res.HotHits, res.HotMisses = st.HotHits, st.HotMisses
		res.HotPromotions, res.HotDemotions = st.HotPromotions, st.HotDemotions
	case *lsm.DB:
		st := e.Stats()
		res.CacheHits, res.CacheMisses = st.BlockCacheHits, st.BlockCacheMisses
	case *wtree.DB:
		st := e.Stats()
		res.CacheHits, res.CacheMisses = st.CacheHits, st.CacheMisses
	case *betree.DB:
		st := e.Stats()
		res.CacheHits, res.CacheMisses = st.CacheHits, st.CacheMisses
	}
}

func (s *Spec) defaults() {
	if s.Cores == 0 {
		s.Cores = 8
	}
	if s.Profile.Name == "" {
		s.Profile = device.Optane()
	}
	if s.NDisks == 0 {
		s.NDisks = 1
	}
	if s.Records == 0 {
		s.Records = 100_000
	}
	if s.ItemSize == 0 {
		s.ItemSize = 1024
	}
	if s.CacheFrac == 0 {
		s.CacheFrac = 1.0 / 3
	}
	if s.Clients == 0 {
		if s.Engine == KVell {
			s.Clients = 8
		} else {
			s.Clients = 96 // enough blocking YCSB threads to find the CPU limit
		}
	}
	if s.Window == 0 {
		if s.Engine == KVell {
			s.Window = 32
		} else {
			s.Window = 1
		}
	}
	if s.Duration == 0 {
		s.Duration = 2 * env.Second
	}
	if s.Warmup == 0 {
		s.Warmup = s.Duration / 4
	}
	if s.Bucket == 0 {
		s.Bucket = env.Second
	}
}

// buildEngine constructs the engine with a cache of CacheFrac × dataset.
func buildEngine(e *sim.Env, s *Spec, disks []device.Disk) kv.Engine {
	dataset := s.Records * int64(s.ItemSize)
	cache := int64(float64(dataset) * s.CacheFrac)
	switch s.Engine {
	case KVell:
		cfg := core.DefaultConfig(disks...)
		cfg.Workers = s.Cores
		if cfg.Workers < len(disks) {
			cfg.Workers = len(disks)
		}
		cfg.PageCachePages = int(cache / device.PageSize)
		if s.TweakKVell != nil {
			s.TweakKVell(&cfg)
		}
		st, err := core.Open(e, cfg)
		if err != nil {
			panic(err)
		}
		return st
	case RocksLike, PebblesLike:
		cfg := lsm.DefaultConfig(disks...)
		cfg.BlockCacheBytes = cache
		cfg.Fragmented = s.Engine == PebblesLike
		// Two 128MB memory components per 100GB in the paper; keep the
		// same ingest-to-flush ratio at harness scale.
		cfg.MemtableBytes = dataset / 32
		if cfg.MemtableBytes < 1<<20 {
			cfg.MemtableBytes = 1 << 20
		}
		// A shallow base level engages several levels even at harness
		// scale, keeping write amplification near the paper's regime.
		cfg.BaseLevelBytes = cfg.MemtableBytes * 2
		cfg.TableTargetBytes = cfg.MemtableBytes / 2
		cfg.CompactionThreads = 3
		cfg.Tracer = s.Tracer
		if s.TweakLSM != nil {
			s.TweakLSM(&cfg)
		}
		return lsm.New(e, cfg)
	case WiredTigerLike:
		cfg := wtree.DefaultConfig(disks...)
		cfg.CacheBytes = cache
		cfg.Tracer = s.Tracer
		if s.TweakWT != nil {
			s.TweakWT(&cfg)
		}
		return wtree.New(e, cfg)
	case TokuLike:
		cfg := betree.DefaultConfig(disks...)
		cfg.CacheBytes = cache
		cfg.Tracer = s.Tracer
		if s.TweakBE != nil {
			s.TweakBE(&cfg)
		}
		return betree.New(e, cfg)
	default:
		panic("harness: unknown engine")
	}
}

// Run executes the spec and returns measurements.
func Run(spec Spec) Result {
	spec.defaults()
	s := sim.New(spec.Seed + 1)
	e := sim.NewEnv(s, spec.Cores)

	tr := spec.Tracer
	if tr != nil {
		if tr.OpNames == nil {
			for op := kv.OpGet; op <= kv.OpRMW; op++ {
				tr.OpNames = append(tr.OpNames, op.String())
			}
		}
		trace.Attach(tr, e)
	}

	res := Result{
		Spec:     spec,
		Lat:      stats.NewHist(),
		Timeline: stats.NewTimeline(spec.Bucket),
		DiskBW:   stats.NewTimeline(spec.Bucket),
		CPUUtil:  stats.NewUtil(spec.Bucket, spec.Cores),
		DiskUtil: stats.NewUtil(spec.Bucket, spec.NDisks*spec.Profile.Channels),
		Sim:      s,
	}
	e.CPUs.Station().OnBusy = func(start, end env.Time) { res.CPUUtil.AddBusy(start, end) }

	var disks []device.Disk
	for i := 0; i < spec.NDisks; i++ {
		var store device.Store = device.NewMemStore()
		if spec.NullBacked {
			store = device.NullStore{}
		}
		dd := device.NewSimDisk(s, spec.Profile, store)
		dd.BWTimeline = res.DiskBW
		dd.Util = res.DiskUtil
		dd.Tracer = tr
		dd.ID = i
		disks = append(disks, dd)
		res.Disks = append(res.Disks, dd)
	}

	eng := buildEngine(e, &spec, disks)
	res.Engine = eng
	res.EngineName = eng.Name()

	gen := spec.Gen(spec.Seed)
	if err := eng.BulkLoad(gen.InitialItems()); err != nil {
		panic(err)
	}
	eng.Start()

	end := spec.Warmup + spec.Duration
	if spec.Arrival != nil {
		runOpenLoop(e, s, &spec, &res, eng, gen, end)
		if err := s.Run(end + 2*env.Second); err != nil {
			panic(err)
		}
		if err := s.Close(); err != nil {
			panic(err)
		}
		res.Throughput = float64(res.Ops) / (float64(spec.Duration) / float64(env.Second))
		fillEngineStats(&res)
		return res
	}
	active := spec.Clients
	filler, _ := gen.(Filler)
	cfiller, _ := gen.(ClockedFiller)
	for ci := 0; ci < spec.Clients; ci++ {
		e.Go(fmt.Sprintf("client-%d", ci), func(c env.Ctx) {
			outstanding := 0
			mu := e.NewMutex()
			cond := e.NewCond(mu)
			// With a Filler generator, each client owns a pool of Window
			// requests whose Done callbacks are wired once; completed
			// requests return to the pool and are refilled in place, so the
			// steady-state issue path allocates nothing. The window gate
			// guarantees a free request whenever outstanding < Window.
			var free []*kv.Request
			if filler != nil {
				free = make([]*kv.Request, spec.Window)
				for i := range free {
					r := &kv.Request{}
					r.Done = func(kv.Result) {
						t := s.Now()
						if r.Trace != nil {
							tr.Finish(r.Trace, t)
							r.Trace = nil
						}
						res.OpsTotal++
						if t >= spec.Warmup && t < end {
							res.Ops++
							res.Lat.Add(t - r.Start)
							res.Timeline.Add(t, 1)
						}
						mu.Lock(nil)
						free = append(free, r)
						outstanding--
						mu.Unlock(nil)
						cond.Signal(nil)
					}
					free[i] = r
				}
			}
			for c.Now() < end {
				mu.Lock(c)
				for outstanding >= spec.Window {
					cond.Wait(c)
				}
				outstanding++
				var r *kv.Request
				if filler != nil {
					r = free[len(free)-1]
					free = free[:len(free)-1]
				}
				mu.Unlock(c)
				if cfiller != nil {
					cfiller.FillNextAt(r, c.Now())
				} else if filler != nil {
					filler.FillNext(r)
				} else {
					r = gen.Next()
					r.Done = func(kv.Result) {
						t := s.Now()
						if r.Trace != nil {
							tr.Finish(r.Trace, t)
							r.Trace = nil
						}
						res.OpsTotal++
						if t >= spec.Warmup && t < end {
							res.Ops++
							res.Lat.Add(t - r.Start)
							res.Timeline.Add(t, 1)
						}
						mu.Lock(nil)
						outstanding--
						mu.Unlock(nil)
						cond.Signal(nil)
					}
				}
				r.Start = c.Now()
				if tr != nil {
					// Library engines run the whole op inside Submit on this
					// proc; async engines (KVell) carry r.Trace across the
					// worker handoff and only the routing CPU lands here.
					r.Trace = tr.Begin(int(r.Op), r.Start)
					c.SetTrace(r.Trace)
					eng.Submit(c, r)
					c.SetTrace(nil)
				} else {
					eng.Submit(c, r)
				}
			}
			mu.Lock(c)
			for outstanding > 0 {
				cond.Wait(c)
			}
			mu.Unlock(c)
			active--
			if active == 0 {
				eng.Stop(c)
			}
		})
	}
	if err := s.Run(end + 2*env.Second); err != nil {
		panic(err)
	}
	if err := s.Close(); err != nil {
		panic(err)
	}
	res.Throughput = float64(res.Ops) / (float64(spec.Duration) / float64(env.Second))
	fillEngineStats(&res)
	return res
}

// RunAll executes independent specs and returns their results in spec order.
// With parallel > 1 the specs run concurrently on the Go runtime's OS
// threads (parallel <= 0 means GOMAXPROCS). Each Sim is single-threaded and
// owns every piece of state it touches — clock, rng, engine, disks, stats —
// so per-spec determinism is untouched: concurrency can only change
// wall-clock time, never a measurement. Cross-spec ordering only affects
// when results become available, and the returned slice is in spec order.
func RunAll(specs []Spec, parallel int) []Result {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	results := make([]Result, len(specs))
	if parallel <= 1 {
		for i := range specs {
			results[i] = Run(specs[i])
		}
		return results
	}
	// Plain channels rather than sync.WaitGroup: the determinism lint bans
	// raw sync primitives in sim-driven packages wholesale, and the two
	// suppressions below are the only sanctioned concurrency in the harness.
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < parallel; w++ {
		//kvell:lint-ignore nogoroutine RunAll fans independent whole-simulation runs out across OS threads; each Sim is fully self-contained, so no simulated state is shared
		go func() {
			for i := range idx {
				results[i] = Run(specs[i])
			}
			done <- struct{}{}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	for w := 0; w < parallel; w++ {
		<-done
	}
	return results
}
