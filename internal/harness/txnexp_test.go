package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
)

// TestTxnBankConservation is the tentpole's basic soundness check: a
// contended single-node bank run conserves the total balance at every audit
// snapshot and the final balances match the committed ledger exactly.
func TestTxnBankConservation(t *testing.T) {
	t.Parallel()
	res, err := RunTxnBank(TxnBankSpec{Seed: 42, Theta: 0.8, TxnSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transfers committed")
	}
	if res.Conflicts == 0 {
		t.Fatalf("theta=0.8 over a hot set should produce write-write conflicts (committed=%d)", res.Committed)
	}
	if res.Audits < 5 {
		t.Fatalf("expected at least 5 audits, got %d", res.Audits)
	}
}

// TestTxnReadNeverLockWaits asserts the ISSUE's read-path guarantee: across
// a maximally contended run, the traced audit reads accumulate exactly zero
// lock-wait time — snapshot readers resolve through the primary or read
// past, they never block on a writer's lock.
func TestTxnReadNeverLockWaits(t *testing.T) {
	t.Parallel()
	res, err := RunTxnBank(TxnBankSpec{Seed: 7, Theta: 1.0, TxnSize: 2, Transfers: 80})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadLockWait != 0 {
		t.Fatalf("snapshot reads waited %d ns on locks; must be zero", res.ReadLockWait)
	}
}

// TestTxnSpecDeterminism: equal specs produce bit-equal digests; a different
// seed must diverge.
func TestTxnSpecDeterminism(t *testing.T) {
	t.Parallel()
	spec := TxnBankSpec{Seed: 99, Theta: 0.5, TxnSize: 3, Transfers: 30}
	a, err := RunTxnBank(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTxnBank(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same spec diverged: %016x vs %016x", a.Digest, b.Digest)
	}
	spec.Seed = 100
	c, err := RunTxnBank(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Digest == a.Digest {
		t.Fatalf("different seeds collided on digest %016x", a.Digest)
	}
}

// TestTxnCrashMini sweeps a handful of seeded crash points through the
// transactional store; the nightly run covers the full 125-point sweep.
func TestTxnCrashMini(t *testing.T) {
	t.Parallel()
	if fails := TxnCrashSweep(SweepOpts{Points: 5, Seed: 4242}, testWriter{t}); fails != 0 {
		t.Fatalf("%d crash points failed verification", fails)
	}
}

// TestTxnClusterFailover kills a machine mid-workload under RF=2 and
// verifies conservation and acked-transaction visibility across the
// promotion.
func TestTxnClusterFailover(t *testing.T) {
	t.Parallel()
	res, err := RunTxnCluster(TxnClusterSpec{
		Seed:        31,
		Machines:    4,
		RF:          2,
		Theta:       0.3,
		Failover:    true,
		KillMachine: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transfers committed")
	}
	if res.CrashTime == 0 {
		t.Fatal("the kill never happened")
	}
	if res.AckedVerified == 0 {
		t.Fatal("no acked-transaction keys were verified")
	}
}

// TestTxnClusterPlain is the no-failover cross-shard run: every balance must
// match the committed ledger exactly (no kill means no unacked commits).
func TestTxnClusterPlain(t *testing.T) {
	t.Parallel()
	res, err := RunTxnCluster(TxnClusterSpec{Seed: 8, Machines: 4, RF: 1, Theta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transfers committed")
	}
}

// Golden digests for the transactional workloads, same discipline as
// TestGoldenDigests: re-record with -update-txn-golden only for intentional
// schedule changes.
var updateTxnGolden = flag.Bool("update-txn-golden", false, "rewrite the transactional golden digest fixtures")

const txnGoldenPath = "testdata/txn_golden.json"

func TestTxnGoldenDigests(t *testing.T) {
	t.Parallel()
	got := make(map[string]string)

	bank, err := RunTxnBank(TxnBankSpec{Seed: 1234, Theta: 0.5, TxnSize: 3, Transfers: 40})
	if err != nil {
		t.Fatal(err)
	}
	got["bank-single-node"] = fmt.Sprintf("%016x", bank.Digest)

	clus, err := RunTxnCluster(TxnClusterSpec{Seed: 1234, Machines: 4, RF: 1, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got["bank-cluster-4m"] = fmt.Sprintf("%016x", clus.Digest)

	if *updateTxnGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(txnGoldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", txnGoldenPath)
		return
	}
	buf, err := os.ReadFile(txnGoldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-txn-golden to record): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s: schedule diverged from golden fixture: got %s want %s", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: run missing from fixture (run with -update-txn-golden)", name)
		}
	}
}

// testWriter adapts t.Logf to io.Writer for sweep output.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
