package harness

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"

	"kvell/internal/cluster"
	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/fault"
	"kvell/internal/kv"
	"kvell/internal/net"
	"kvell/internal/sim"
	"kvell/internal/stats"
	"kvell/internal/trace"
)

// ClusterSpec describes one multi-machine cluster run: Machines server
// machines plus one client machine, joined by a 10GbE network model, serving
// a closed-loop YCSB-A (50/50 uniform get/update) workload routed by
// consistent-hash placement. With RF > 1 every leader ships index entries
// and slab pages to its RF-1 followers and acknowledges writes only after
// all live followers have them durable. With Failover set, machine
// KillMachine dies at KillAt (power loss + halted event domain) and a
// seeded-RNG-chosen follower is promoted via the ordinary full-scan
// recovery path; acknowledged writes must all survive on the promoted store.
type ClusterSpec struct {
	Machines int
	RF       int
	Seed     int64
	// RecordsPerMachine fixes the per-machine dataset (weak scaling).
	RecordsPerMachine int64
	ItemSize          int
	// ClientsPerMachine client threads per server machine run on the client
	// machine, each with a Window-deep closed loop.
	ClientsPerMachine int
	Window            int
	Cores             int // CPU cores per server machine
	Workers           int // KVell workers per server machine
	NDisks            int // disks per server machine
	Slots             int // placement hash slots
	Duration          env.Time

	// Failover enables the kill-one-machine run.
	Failover    bool
	KillMachine int
	KillAt      env.Time
	// DetectDelay is the failure-detection delay before promotion starts.
	DetectDelay env.Time
}

func (cs *ClusterSpec) defaults() {
	if cs.Machines == 0 {
		cs.Machines = 2
	}
	if cs.RF == 0 {
		cs.RF = 1
	}
	if cs.RecordsPerMachine == 0 {
		cs.RecordsPerMachine = 20_000
	}
	if cs.ItemSize == 0 {
		cs.ItemSize = 256
	}
	if cs.ClientsPerMachine == 0 {
		cs.ClientsPerMachine = 8
	}
	if cs.Window == 0 {
		cs.Window = 8
	}
	if cs.Cores == 0 {
		cs.Cores = 5
	}
	if cs.Workers == 0 {
		cs.Workers = 4
	}
	if cs.NDisks == 0 {
		cs.NDisks = 1
	}
	if cs.Slots == 0 {
		cs.Slots = 4096
	}
	if cs.Duration == 0 {
		cs.Duration = env.Second
	}
	if cs.KillAt == 0 {
		cs.KillAt = cs.Duration / 3
	}
	if cs.DetectDelay == 0 {
		cs.DetectDelay = 200 * env.Microsecond
	}
}

// ClusterResult is one run's outcome. Digest fingerprints the whole
// observable schedule (completed ops, latency shape, network traffic,
// replication stream, failover recovery state); equal seeds must produce
// equal digests.
type ClusterResult struct {
	Machines int
	RF       int

	Issued    int64
	Completed int64
	Updates   int64
	// FailedOps are client ops swept as failed when their serving machine
	// died (un-acked; the verification window covers them).
	FailedOps int64

	ThroughputOps float64 // completed ops per second of workload
	MeanLat       env.Time
	P99           env.Time

	Net            net.Counters
	PagesShipped   int64
	EntriesShipped int64
	BytesShipped   int64
	// NetTime/ReplTime are the summed per-request CompNet / CompReplicate
	// components (request+reply hops; replication-barrier waits).
	NetTime  env.Time
	ReplTime env.Time

	// Failover outcome (Promoted == -1 when no failover ran).
	Promoted   int
	CrashTime  env.Time
	Fault      fault.Stats
	Frontier   uint64 // promoted replica's applied frontier
	Checked    int    // replicated index entries validated after recovery
	Mismatches int
	Verified   int // dead store's keys read back post-failover
	Lost       int // acked writes missing from the promoted store

	Digest uint64
}

// clientSlot is one window slot of one client: at most one operation rides a
// slot at a time, and seq invalidates replies that arrive after the slot was
// swept by the failover driver (a reply already in flight when its slot was
// reclaimed must not be mistaken for the slot's next operation).
type clientSlot struct {
	m      *cluster.ReqMsg
	key    int64
	ver    uint64
	update bool
	start  env.Time
	active bool
	seq    uint64
}

type clientState struct {
	mu    env.Mutex
	cond  env.Cond
	slots []clientSlot
	free  []int
}

// RunCluster executes one cluster run. The returned error is a verification
// failure (acked write lost, replica index mismatch, promotion failure);
// harness problems panic.
func RunCluster(spec ClusterSpec) (ClusterResult, error) {
	spec.defaults()
	M := spec.Machines
	clientM := M
	total := int64(M) * spec.RecordsPerMachine
	prof := device.AmazonNVMe()
	res := ClusterResult{Machines: M, RF: spec.RF, Promoted: -1}

	s := sim.New(spec.Seed + 1)
	nw := net.New(s, M+1, net.TenGbE())
	place := cluster.NewPlacement(spec.Slots, M, spec.RF)
	cl := cluster.New(s, nw, place)
	tracer := trace.NewTracer(0)

	envs := make([]*sim.Env, M+1)
	for m := 0; m < M; m++ {
		envs[m] = sim.NewMachineEnv(s, m, spec.Cores)
	}
	envs[clientM] = sim.NewMachineEnv(s, clientM, max(2, M))

	// Servers: disks (fault-wrapped on the kill target, replication-wrapped
	// under RF>1), store, replicas, node. Creation order is fixed — it is
	// part of the reproducible schedule.
	var inj *fault.Injector
	baseStores := make([][]*device.MemStore, M)
	stores := make([]*core.Store, M)
	cfgs := make([]core.Config, M)
	rps := make([]*cluster.Replicator, M)
	repsByHome := make([][]*cluster.Replica, M)
	for m := 0; m < M; m++ {
		var rp *cluster.Replicator
		if spec.RF > 1 {
			rp = cluster.NewReplicator(cl, m)
			rps[m] = rp
		}
		disks := make([]device.Disk, spec.NDisks)
		for i := 0; i < spec.NDisks; i++ {
			ms := device.NewMemStore()
			baseStores[m] = append(baseStores[m], ms)
			sd := device.NewSimDisk(s, prof, ms)
			sd.Machine = m
			sd.ID = m*spec.NDisks + i
			var d device.Disk = sd
			if spec.Failover && m == spec.KillMachine {
				if inj == nil {
					inj = fault.NewInjector(s, fault.Config{
						Seed:        spec.Seed*1_000_003 + int64(m+1),
						AtTime:      spec.KillAt,
						HaltMachine: true,
						Machine:     m,
					})
				}
				d = inj.Wrap(sd)
			}
			if rp != nil {
				d = rp.WrapDisk(i, d)
			}
			disks[i] = d
		}
		cfg := core.DefaultConfig(disks...)
		cfg.Workers = spec.Workers
		pages := int(spec.RecordsPerMachine / 16 / 3)
		if pages < 256 {
			pages = 256
		}
		cfg.PageCachePages = pages
		// A replicated leader never overwrites a live page in place: every
		// update goes to a fresh slot (§5.6 variant), so replicated page
		// records never race an in-place rewrite of the same replica page
		// and recovery's newest-timestamp arbitration resolves duplicates.
		cfg.NoInPlaceUpdates = spec.RF > 1
		if rp != nil {
			cfg.OnIndexUpdate = rp.OnIndexUpdate
		}
		st, err := core.Open(envs[m], cfg)
		if err != nil {
			panic(err)
		}
		stores[m] = st
		cfgs[m] = cfg
	}

	// Bulk load: each store gets exactly its slots' keys (generated in key
	// order, so each per-machine subset stays sorted).
	perMachine := make([][]kv.Item, M)
	keyBuf := make([]byte, kv.KeyLen)
	for i := int64(0); i < total; i++ {
		kv.FillKey(keyBuf, i)
		m := place.Leader(place.SlotOf(keyBuf))
		perMachine[m] = append(perMachine[m], kv.Item{Key: kv.Key(i), Value: kv.Value(i, 1, spec.ItemSize)})
	}
	for m := 0; m < M; m++ {
		if err := stores[m].BulkLoad(perMachine[m]); err != nil {
			panic(err)
		}
	}

	// Followers: replica disks seeded from the leader's post-bulk-load
	// images (bulk load bypasses the request path, so it is replicated by
	// snapshot, not by shipping).
	if spec.RF > 1 {
		for m := 0; m < M; m++ {
			for _, f := range place.Followers(m) {
				rdisks := make([]*device.SimDisk, spec.NDisks)
				for i, ms := range baseStores[m] {
					rd := device.NewSimDisk(s, prof, ms.Snapshot())
					rd.Machine = f
					rd.ID = 1000 + m*spec.NDisks + i
					rdisks[i] = rd
				}
				rep := cluster.NewReplica(cl, envs[f], m, rdisks)
				rps[m].AddFollower(rep)
				repsByHome[m] = append(repsByHome[m], rep)
				rep.Start()
			}
			rps[m].Activate()
		}
	}

	for m := 0; m < M; m++ {
		n := cluster.NewNode(cl, envs[m], m, stores[m], rps[m])
		cl.SetNode(m, n)
		n.Start()
		stores[m].Start()
	}
	if inj != nil {
		inj.Arm()
	}

	// Shadow model (crash-harness discipline): versions per key, bulk load
	// is version 1, at most one update per key in flight. After a failover
	// the durable version of key k must lie in [acked[k], issued[k]].
	issued := make([]uint64, total)
	acked := make([]uint64, total)
	inflight := make([]bool, total)
	for i := range issued {
		issued[i], acked[i] = 1, 1
	}

	lat := stats.NewHist()
	nClients := spec.ClientsPerMachine * M
	states := make([]*clientState, nClients)
	dmu := envs[clientM].NewMutex()
	dcond := envs[clientM].NewCond(dmu)
	clientsLeft := nClients

	for ci := 0; ci < nClients; ci++ {
		ci := ci
		cs := &clientState{slots: make([]clientSlot, spec.Window)}
		cs.mu = envs[clientM].NewMutex()
		cs.cond = envs[clientM].NewCond(cs.mu)
		for si := range cs.slots {
			cs.slots[si].m = cluster.NewReqMsg(cl)
			cs.free = append(cs.free, si)
		}
		states[ci] = cs
		envs[clientM].Go(fmt.Sprintf("cluster-client-%d", ci), func(c env.Ctx) {
			// Seeded from the spec: the client schedule is part of the
			// reproducible cluster schedule.
			rng := rand.New(rand.NewSource(spec.Seed*7919 + int64(ci)))
			lo := int64(ci) * total / int64(nClients)
			hi := (int64(ci) + 1) * total / int64(nClients)
			for c.Now() < spec.Duration {
				cs.mu.Lock(c)
				for len(cs.free) == 0 {
					cs.cond.Wait(c)
				}
				si := cs.free[len(cs.free)-1]
				cs.free = cs.free[:len(cs.free)-1]
				cs.mu.Unlock(c)
				sl := &cs.slots[si]
				k := lo + rng.Int63n(hi-lo)
				sl.key = k
				sl.update = rng.Intn(2) == 0 && !inflight[k]
				sl.start = c.Now()
				sl.active = true
				sl.seq++
				mySeq := sl.seq
				m := sl.m
				res.Issued++
				if sl.update {
					inflight[k] = true
					sl.ver = issued[k] + 1
					issued[k] = sl.ver
					m.Op = kv.OpUpdate
					m.Key = kv.Key(k)
					m.Value = kv.Value(k, sl.ver, spec.ItemSize)
				} else {
					m.Op = kv.OpGet
					m.Key = kv.Key(k)
					m.Value = nil
				}
				m.Trace = tracer.Begin(int(m.Op), c.Now())
				tc := m.Trace
				m.Done = func(kv.Result) {
					now := s.Now()
					cs.mu.Lock(nil)
					if !sl.active || sl.seq != mySeq {
						cs.mu.Unlock(nil)
						tracer.Finish(tc, now)
						return
					}
					sl.active = false
					if sl.update {
						acked[sl.key] = sl.ver
						inflight[sl.key] = false
						res.Updates++
					}
					res.Completed++
					lat.Add(now - sl.start)
					cs.free = append(cs.free, si)
					cs.mu.Unlock(nil)
					tracer.Finish(tc, now)
					cs.cond.Signal(nil)
				}
				cl.Send(c, clientM, m)
			}
			cs.mu.Lock(c)
			for len(cs.free) < spec.Window {
				cs.cond.Wait(c)
			}
			cs.mu.Unlock(c)
			dmu.Lock(c)
			clientsLeft--
			if clientsLeft == 0 {
				dcond.Broadcast(c)
			}
			dmu.Unlock(c)
		})
	}

	// Failover driver: runs on the promoted machine (chosen by seeded RNG
	// among the dead machine's followers), waits out the detection delay,
	// re-points routing, promotes the replica through full-scan recovery,
	// validates the replicated index, and sweeps clients' stuck slots (the
	// client-side timeout: ops sent to the dead machine fail, un-acked).
	var verifyErr error
	if spec.Failover {
		dead := spec.KillMachine
		followers := place.Followers(dead)
		// Seeded promotion choice — part of the reproducible schedule.
		prng := rand.New(rand.NewSource(spec.Seed*104_729 + int64(dead+1)))
		pick := followers[prng.Intn(len(followers))]
		var rep *cluster.Replica
		for _, r := range repsByHome[dead] {
			if r.Host() == pick {
				rep = r
			}
		}
		res.Promoted = pick
		envs[pick].Go("failover-driver", func(c env.Ctx) {
			c.Sleep(spec.KillAt + spec.DetectDelay - c.Now())
			if !inj.Tripped() {
				verifyErr = fmt.Errorf("cluster: machine %d never died", dead)
				return
			}
			cl.FailMachine(dead)
			st2, err := rep.Promote(c, cfgs[dead])
			if err != nil {
				verifyErr = fmt.Errorf("cluster: promotion failed: %v", err)
				return
			}
			res.Frontier = rep.Frontier()
			// Keys with an update in flight at the kill may have records
			// past the applied frontier; everything else must match exactly.
			res.Checked, res.Mismatches = rep.ValidateIndex(st2, func(key string) bool {
				n := kv.KeyNum([]byte(key))
				return n < 0 || inflight[n]
			})
			st2.Start()
			n2 := cluster.NewNode(cl, envs[pick], dead, st2, nil)
			n2.Start()
			cl.SetNode(dead, n2)
			for _, cs := range states {
				cs.mu.Lock(c)
				for si := range cs.slots {
					sl := &cs.slots[si]
					if sl.active && sl.m.Node.Host() == dead {
						sl.active = false
						sl.seq++ // a late reply must not complete the next op
						if sl.update {
							inflight[sl.key] = false
						}
						res.FailedOps++
						cs.free = append(cs.free, si)
					}
				}
				cs.mu.Unlock(c)
				cs.cond.Broadcast(c)
			}
		})
	}

	// Post-workload verification (failover runs): read every key of the dead
	// store back through the cluster — now served by the promoted follower —
	// and check it against the shadow model.
	var recVer []uint64
	if spec.Failover {
		dead := spec.KillMachine
		var deadKeys []int64
		for i := int64(0); i < total; i++ {
			kv.FillKey(keyBuf, i)
			if place.Leader(place.SlotOf(keyBuf)) == dead {
				deadKeys = append(deadKeys, i)
			}
		}
		recVer = make([]uint64, len(deadKeys))
		envs[clientM].Go("cluster-verify", func(c env.Ctx) {
			dmu.Lock(c)
			for clientsLeft > 0 {
				dcond.Wait(c)
			}
			dmu.Unlock(c)
			if verifyErr != nil {
				return
			}
			vmu := envs[clientM].NewMutex()
			vcond := envs[clientM].NewCond(vmu)
			outstanding := 0
			for i, k := range deadKeys {
				vmu.Lock(c)
				for outstanding >= 64 {
					vcond.Wait(c)
				}
				outstanding++
				vmu.Unlock(c)
				i, k := i, k
				m := cluster.NewReqMsg(cl)
				m.Op = kv.OpGet
				m.Key = kv.Key(k)
				m.Done = func(out kv.Result) {
					res.Verified++
					ok := false
					if out.Found {
						for v := issued[k]; v >= acked[k] && !ok; v-- {
							if bytes.Equal(out.Value, kv.Value(k, v, spec.ItemSize)) {
								recVer[i] = v
								ok = true
							}
						}
					}
					if !ok {
						res.Lost++
						if verifyErr == nil {
							verifyErr = fmt.Errorf("cluster: key %d lost after failover (found=%v, acked=%d, issued=%d)",
								k, out.Found, acked[k], issued[k])
						}
					}
					vmu.Lock(nil)
					outstanding--
					vmu.Unlock(nil)
					vcond.Signal(nil)
				}
				cl.Send(c, clientM, m)
			}
			vmu.Lock(c)
			for outstanding > 0 {
				vcond.Wait(c)
			}
			vmu.Unlock(c)
		})
	}

	if err := s.Run(spec.Duration + 2*env.Second); err != nil {
		panic(err)
	}
	if inj != nil && inj.Tripped() {
		res.CrashTime = inj.CrashTime()
		res.Fault = inj.Stats()
	}
	res.Net = nw.Counters()
	for _, rp := range rps {
		if rp == nil {
			continue
		}
		res.PagesShipped += rp.PagesShipped
		res.EntriesShipped += rp.EntriesShipped
		res.BytesShipped += rp.BytesShipped
	}
	res.ThroughputOps = float64(res.Completed) / (float64(spec.Duration) / float64(env.Second))
	res.MeanLat = lat.Mean()
	res.P99 = lat.Percentile(0.99)
	res.NetTime = env.Time(tracer.Breakdown().Sum(trace.CompNet))
	res.ReplTime = env.Time(tracer.Breakdown().Sum(trace.CompReplicate))
	if err := s.Close(); err != nil {
		panic(err)
	}

	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	word(uint64(M))
	word(uint64(spec.RF))
	word(uint64(res.Issued))
	word(uint64(res.Completed))
	word(uint64(res.Updates))
	word(uint64(res.FailedOps))
	word(uint64(res.MeanLat))
	word(uint64(res.P99))
	word(uint64(res.Net.Msgs))
	word(uint64(res.Net.Bytes))
	word(uint64(res.Net.Dropped))
	word(uint64(res.PagesShipped))
	word(uint64(res.EntriesShipped))
	word(uint64(res.BytesShipped))
	word(uint64(res.NetTime))
	word(uint64(res.ReplTime))
	word(uint64(res.Promoted + 1))
	word(uint64(res.CrashTime))
	word(res.Frontier)
	word(uint64(res.Checked))
	word(uint64(res.Mismatches))
	word(uint64(res.Verified))
	word(uint64(res.Lost))
	for _, v := range recVer {
		word(v)
	}
	res.Digest = h.Sum64()

	if verifyErr != nil {
		return res, verifyErr
	}
	if res.Mismatches > 0 {
		return res, fmt.Errorf("cluster: %d replicated index entries disagree with recovery (checked %d)",
			res.Mismatches, res.Checked)
	}
	return res, nil
}

// clusterExp is the deliverable experiment: YCSB-A weak-scaling throughput
// from 1 to 8 machines (RF=1 share-nothing sharding — near-linear is the
// target, §the cluster generalization of the paper's per-core scaling), then
// a kill-one-machine failover run under RF=2 proving no acknowledged write
// is lost when a follower is promoted.
func clusterExp(o Options, w io.Writer) {
	machines := []int{1, 2, 4, 8}
	if o.Quick {
		machines = []int{1, 2, 4}
	}
	recs := o.records(50_000)
	dur := o.dur(env.Second)

	fmt.Fprintf(w, "\nWeak scaling, YCSB A uniform, %d records/machine, RF=1, 10GbE:\n\n", recs)
	fmt.Fprintf(w, "%-10s %12s %10s %10s %12s %12s\n",
		"machines", "ops/s", "speedup", "p99", "net msgs", "net MB")
	var base float64
	for _, m := range machines {
		res, err := RunCluster(ClusterSpec{
			Machines:          m,
			RF:                1,
			Seed:              o.Seed,
			RecordsPerMachine: recs,
			Duration:          dur,
		})
		if err != nil {
			fmt.Fprintf(w, "%-10d FAILED: %v\n", m, err)
			continue
		}
		if base == 0 {
			base = res.ThroughputOps
		}
		fmt.Fprintf(w, "%-10d %12.0f %9.2fx %10s %12d %12.1f\n",
			m, res.ThroughputOps, res.ThroughputOps/base, stats.FmtDur(res.P99),
			res.Net.Msgs, float64(res.Net.Bytes)/(1<<20))
	}

	fm := 4
	fres, err := RunCluster(ClusterSpec{
		Machines:          fm,
		RF:                2,
		Seed:              o.Seed,
		RecordsPerMachine: recs,
		Duration:          dur,
		Failover:          true,
		KillMachine:       1,
	})
	fmt.Fprintf(w, "\nFailover: %d machines, RF=2, kill machine %d at %s (promoted follower: machine %d)\n",
		fm, 1, stats.FmtDur(fres.CrashTime), fres.Promoted)
	fmt.Fprintf(w, "  completed=%d failed=%d pages-shipped=%d entries-shipped=%d frontier=%d\n",
		fres.Completed, fres.FailedOps, fres.PagesShipped, fres.EntriesShipped, fres.Frontier)
	fmt.Fprintf(w, "  verified=%d keys on promoted store: lost=%d, index entries checked=%d mismatches=%d\n",
		fres.Verified, fres.Lost, fres.Checked, fres.Mismatches)
	if err != nil {
		fmt.Fprintf(w, "  FAILED: %v\n", err)
	} else {
		fmt.Fprintf(w, "  ok: every acknowledged write survived the machine kill (digest %016x)\n", fres.Digest)
	}
}
