package harness

import (
	"fmt"
	"io"
	"math/rand"

	"kvell/internal/costs"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/sim"
	"kvell/internal/stats"
)

// driveSpec describes a raw-device measurement.
type driveSpec struct {
	prof     device.Profile
	op       device.Op
	mixWrite float64 // fraction of writes in a mixed workload (op ignored if >0)
	seq      bool
	qd       int
	reqPages int
	duration env.Time
	seed     int64
	noSpikes bool
}

// driveResult is what the raw-device driver measures.
type driveResult struct {
	ops      int64
	bytes    int64
	lat      *stats.Hist
	iopsTL   *stats.Timeline
	maxLatTL *stats.MaxTimeline
	iops     float64
	bw       float64 // bytes/s
}

// drive runs a closed-loop generator at fixed queue depth against one
// simulated device.
func drive(ds driveSpec) driveResult {
	if ds.reqPages == 0 {
		ds.reqPages = 1
	}
	if ds.duration == 0 {
		ds.duration = env.Second / 2
	}
	s := sim.New(ds.seed + 7)
	prof := ds.prof
	if ds.noSpikes {
		prof.SpikeEvery = 0
	}
	d := device.NewSimDisk(s, prof, device.NullStore{})
	r := rand.New(rand.NewSource(ds.seed + 13))
	res := driveResult{
		lat:      stats.NewHist(),
		iopsTL:   stats.NewTimeline(env.Second),
		maxLatTL: stats.NewMaxTimeline(env.Second),
	}
	buf := make([]byte, ds.reqPages*device.PageSize)
	var seqCursor int64
	var submit func()
	submit = func() {
		op := ds.op
		if ds.mixWrite > 0 {
			if r.Float64() < ds.mixWrite {
				op = device.Write
			} else {
				op = device.Read
			}
		}
		var page int64
		if ds.seq {
			page = seqCursor
			seqCursor += int64(ds.reqPages)
		} else {
			page = r.Int63n(1 << 31)
		}
		start := s.Now()
		d.Submit(&device.Request{Op: op, Page: page, Buf: buf, Done: func() {
			now := s.Now()
			res.ops++
			res.bytes += int64(len(buf))
			res.lat.Add(now - start)
			res.iopsTL.Add(now, 1)
			res.maxLatTL.Add(now, float64(now-start))
			if now < ds.duration {
				submit()
			}
		}})
	}
	s.Go("gen", func(p *sim.Proc) {
		for i := 0; i < ds.qd; i++ {
			submit()
		}
	})
	if err := s.Run(ds.duration); err != nil {
		panic(err)
	}
	s.Close()
	secs := float64(ds.duration) / float64(env.Second)
	res.iops = float64(res.ops) / secs
	res.bw = float64(res.bytes) / secs
	return res
}

var profiles = []device.Profile{device.SSD2013(0), device.AmazonNVMe(), device.Optane()}

// table1 reproduces Table 1: IOPS and bandwidth per device and access mix.
func table1(o Options, w io.Writer) {
	fmt.Fprintf(w, "Table 1: IOPS and bandwidth per device (4K random IOPS; bandwidth with 128K requests)\n\n")
	fmt.Fprintf(w, "%-22s %10s %10s %12s %10s %10s %10s %10s %10s\n",
		"Disk", "ReadIOPS", "WriteIOPS", "Mix50/50", "SeqRd", "RndRd", "SeqWr", "RndWr", "MixRW")
	dur := o.dur(env.Second / 2)
	for _, p := range profiles {
		// Old-SSD IOPS columns reflect sustained (degraded) write rates;
		// give the device a small burst so it reaches steady state fast.
		pIOPS := p
		if p.BurstPages > 0 {
			pIOPS.BurstPages = 5000
		}
		rd := drive(driveSpec{prof: pIOPS, op: device.Read, qd: 256, duration: dur, noSpikes: true, seed: o.Seed})
		wr := drive(driveSpec{prof: pIOPS, op: device.Write, qd: 256, duration: dur, noSpikes: true, seed: o.Seed})
		mix := drive(driveSpec{prof: pIOPS, mixWrite: 0.5, qd: 256, duration: dur, noSpikes: true, seed: o.Seed})
		bw := func(op device.Op, seq bool, mixW float64) float64 {
			return drive(driveSpec{prof: pIOPS, op: op, mixWrite: mixW, seq: seq, qd: 64, reqPages: 32, duration: dur, noSpikes: true, seed: o.Seed}).bw
		}
		fmt.Fprintf(w, "%-22s %10s %10s %12s %10s %10s %10s %10s %10s\n",
			p.Name,
			stats.FmtRate(rd.iops), stats.FmtRate(wr.iops), stats.FmtRate(mix.iops),
			gbs(bw(device.Read, true, 0)), gbs(bw(device.Read, false, 0)),
			gbs(bw(device.Write, true, 0)), gbs(bw(device.Write, false, 0)),
			gbs(bw(0, false, 0.5)))
	}
	fmt.Fprintf(w, "\nPaper: Optane 575K/550K/560K IOPS, 2.6/2.3/2.0/2.0/2.0 GB/s; Amazon(per-drive) 412K/180K/175K;\nSSD-2013 75K/11K/63K with random writes at 0.04GB/s.\n")
}

func gbs(bytesPerSec float64) string {
	return fmt.Sprintf("%.2fGB/s", bytesPerSec/(1<<30))
}

// table2 reproduces Table 2: latency and bandwidth vs queue depth, random
// writes from one submitter.
func table2(o Options, w io.Writer) {
	fmt.Fprintf(w, "Table 2: average latency and bandwidth vs queue depth (4K random writes)\n\n")
	fmt.Fprintf(w, "%-6s", "QD")
	for _, p := range profiles {
		fmt.Fprintf(w, " %14s %12s", p.Name+" lat", "bw")
	}
	fmt.Fprintln(w)
	dur := o.dur(env.Second / 2)
	for _, qd := range []int{1, 16, 32, 64, 256, 512} {
		fmt.Fprintf(w, "%-6d", qd)
		for _, p := range profiles {
			pp := p
			pp.BurstPages = 0 // burst-free for the latency curve
			pp.DegradedWriteSvc = 0
			r := drive(driveSpec{prof: pp, op: device.Write, qd: qd, duration: dur, noSpikes: true, seed: o.Seed})
			fmt.Fprintf(w, " %14s %12s", stats.FmtDur(r.lat.Mean()), fmt.Sprintf("%.0fMB/s", r.bw/(1<<20)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nPaper (Config-Optane): QD1 11us/370MB/s ... QD256 550us/1585MB/s, QD512 1100us/1622MB/s.\n")
}

// table3 reproduces Table 3: maximum IOPS by disk-access technique on
// Config-Optane (4K random writes, dataset 3x RAM).
func table3(o Options, w io.Writer) {
	dur := o.dur(env.Second / 2)
	s := func(run func(s *sim.Sim, e *sim.Env, d *device.SimDisk, done func())) float64 {
		sm := sim.New(o.Seed + 3)
		e := sim.NewEnv(sm, 8)
		prof := device.Optane()
		prof.SpikeEvery = 0
		d := device.NewSimDisk(sm, prof, device.NullStore{})
		var count int64
		run(sm, e, d, func() { count++ })
		if err := sm.Run(dur); err != nil {
			panic(err)
		}
		sm.Close()
		return float64(count) / (float64(dur) / float64(env.Second))
	}

	// mmap: one outstanding fault per thread; a serialized kernel section
	// (page-cache LRU lock + remote TLB shootdowns) plus per-fault CPU.
	mmap := func(threads int) float64 {
		return s(func(sm *sim.Sim, e *sim.Env, d *device.SimDisk, done func()) {
			kernel := e.NewMutex()
			for i := 0; i < threads; i++ {
				e.Go("mmap", func(c env.Ctx) {
					r := rand.New(rand.NewSource(o.Seed + int64(threads)*100 + int64(i)))
					buf := make([]byte, device.PageSize)
					for c.Now() < dur {
						kernel.Lock(c)
						c.CPU(16 * env.Microsecond) // LRU lock + TLB IPIs
						kernel.Unlock(c)
						c.CPU(costs.MmapFault - 16*env.Microsecond)
						wt := newIOWaiter(e)
						d.Submit(&device.Request{Op: device.Write, Page: r.Int63n(1 << 31), Buf: buf, Done: wt.done})
						wt.wait(c)
						done()
					}
				})
			}
		})
	}
	// Synchronous direct I/O: one syscall + one I/O at a time per thread.
	direct := s(func(sm *sim.Sim, e *sim.Env, d *device.SimDisk, done func()) {
		e.Go("direct", func(c env.Ctx) {
			r := rand.New(rand.NewSource(o.Seed + 5))
			buf := make([]byte, device.PageSize)
			for c.Now() < dur {
				c.CPU(costs.Syscall)
				wt := newIOWaiter(e)
				d.Submit(&device.Request{Op: device.Write, Page: r.Int63n(1 << 31), Buf: buf, Done: wt.done})
				wt.wait(c)
				done()
			}
		})
	})
	aioQD := func(qd int) float64 {
		return s(func(sm *sim.Sim, e *sim.Env, d *device.SimDisk, done func()) {
			e.Go("aio", func(c env.Ctx) {
				r := rand.New(rand.NewSource(o.Seed + 9))
				buf := make([]byte, device.PageSize)
				inflight := 0
				mu := e.NewMutex()
				cond := e.NewCond(mu)
				for c.Now() < dur {
					// io_submit for a batch topping the queue back up.
					mu.Lock(c)
					for inflight >= qd {
						cond.Wait(c)
					}
					n := qd - inflight
					inflight += n
					mu.Unlock(c)
					c.CPU(costs.Syscall + env.Time(n)*costs.SyscallPerReq)
					for i := 0; i < n; i++ {
						d.Submit(&device.Request{Op: device.Write, Page: r.Int63n(1 << 31), Buf: buf, Done: func() {
							mu.Lock(nil)
							inflight--
							mu.Unlock(nil)
							cond.Signal(nil)
							done()
						}})
					}
					// io_getevents
					c.CPU(costs.Syscall)
				}
			})
		})
	}

	fmt.Fprintf(w, "Table 3: max IOPS by I/O technique (Config-Optane, 4K random writes)\n\n")
	fmt.Fprintf(w, "%-42s %10s %12s\n", "Technique", "IOPS", "(paper)")
	fmt.Fprintf(w, "%-42s %10s %12s\n", "OS page cache + mmap (1 thread)", stats.FmtRate(mmap(1)), "10K")
	fmt.Fprintf(w, "%-42s %10s %12s\n", "OS page cache + mmap (8 threads)", stats.FmtRate(mmap(8)), "60K")
	fmt.Fprintf(w, "%-42s %10s %12s\n", "read/write direct I/O (1 thread)", stats.FmtRate(direct), "88K")
	fmt.Fprintf(w, "%-42s %10s %12s\n", "async I/O (1 thread, queue depth 1)", stats.FmtRate(aioQD(1)), "91K")
	fmt.Fprintf(w, "%-42s %10s %12s\n", "async I/O (1 thread, queue depth 64)", stats.FmtRate(aioQD(64)), "376K")
}

type ioWaiter struct {
	mu   env.Mutex
	cond env.Cond
	ok   bool
}

func newIOWaiter(e env.Env) *ioWaiter {
	w := &ioWaiter{mu: e.NewMutex()}
	w.cond = e.NewCond(w.mu)
	return w
}

func (w *ioWaiter) done() {
	w.mu.Lock(nil)
	w.ok = true
	w.mu.Unlock(nil)
	w.cond.Broadcast(nil)
}

func (w *ioWaiter) wait(c env.Ctx) {
	w.mu.Lock(c)
	for !w.ok {
		w.cond.Wait(c)
	}
	w.mu.Unlock(c)
	w.ok = false
}

// fig1 reproduces Figure 1: IOPS over time per device; the old SSD's burst
// budget is scaled down so the burst-to-degraded transition is visible in a
// short run (the paper's device sustains its burst for ~40 minutes).
func fig1(o Options, w io.Writer) {
	dur := o.dur(10 * env.Second)
	fmt.Fprintf(w, "Figure 1: write IOPS over time (QD 32, 4K random writes)\n")
	fmt.Fprintf(w, "(Config-SSD burst budget scaled so the degradation lands mid-run)\n\n")
	for _, p := range profiles {
		pp := p
		if pp.BurstPages > 0 {
			pp.BurstPages = 50_000 * (int64(dur/env.Second) / 3) // degrade ~1/3 in
		}
		r := drive(driveSpec{prof: pp, op: device.Write, qd: 32, duration: dur, seed: o.Seed})
		fmt.Fprintf(w, "%-22s", p.Name)
		for _, v := range r.iopsTL.Rates() {
			fmt.Fprintf(w, " %8s", stats.FmtRate(v))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nPaper: Config-SSD bursts at 50K then degrades to 11K; newer devices stay flat at their max.\n")
}

// fig2 reproduces Figure 2: per-second worst-case 4K write latency (QD 64)
// on the Amazon drive and the Optane drive.
func fig2(o Options, w io.Writer) {
	dur := o.dur(20 * env.Second)
	fmt.Fprintf(w, "Figure 2: max 4K write latency per second (QD 64)\n")
	fmt.Fprintf(w, "(maintenance cadence compressed to fit the run; magnitudes are the calibrated ones)\n\n")
	for _, p := range []device.Profile{device.AmazonNVMe(), device.Optane()} {
		p.SpikeEvery = dur / 5
		p.SpikeJitter = dur / 10
		r := drive(driveSpec{prof: p, op: device.Write, qd: 64, duration: dur, seed: o.Seed})
		fmt.Fprintf(w, "%-22s p99=%s max=%s\n  per-second max:", p.Name,
			stats.FmtDur(r.lat.Percentile(0.99)), stats.FmtDur(r.lat.Max()))
		for _, v := range r.maxLatTL.Buckets() {
			fmt.Fprintf(w, " %7s", stats.FmtDur(env.Time(v)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\nPaper: Amazon spikes to 15ms (p99 3ms); Optane spikes are rarer, usually <1ms, max 3.6ms.\n")
}
