package harness

import (
	"testing"

	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/env"
)

// tieredDeterminismSpec is an open-loop tiered KVell run on the cold-SSD
// profile with the hot head rotating mid-run: it exercises the arrival
// generator, the admission valve, the hot-cache promotion/demotion machinery
// and the clocked workload generator in one schedule.
func tieredDeterminismSpec(seed int64) Spec {
	return Spec{
		Name:      "tiered-determinism",
		Engine:    KVell,
		Seed:      seed,
		Profile:   device.ColdSSD(),
		Records:   5_000,
		ItemSize:  512,
		CacheFrac: TierCacheFrac,
		Gen:       readMostlyGen(5_000, 512, 0.9, 50*env.Millisecond),
		Duration:  200 * env.Millisecond,
		Arrival:   &Arrival{Rate: 200_000, MaxPerShard: 128, Policy: Shed},
		TweakKVell: func(c *core.Config) {
			c.TieredHotBytes = 1 << 20
			c.TieredSlotBytes = 512
			c.TieredPromoteAfter = 1
			c.TieredSeed = seed
		},
	}
}

// hotCounters is the tiering-specific half of a run's fingerprint.
type hotCounters struct {
	hits, misses, promos, demos int64
}

func hotCountersOf(r *Result) hotCounters {
	return hotCounters{r.HotHits, r.HotMisses, r.HotPromotions, r.HotDemotions}
}

// Golden fingerprint for tieredDeterminismSpec(4321): locks the tiered
// open-loop schedule — including every hot-cache counter — the same way the
// absorb golden locks the absorb-enabled one. On mismatch the failure message
// prints the measured values; update the constants only for changes *meant*
// to alter tiered schedules.
const (
	tieredGoldenOps      = int64(34_885)
	tieredGoldenLat      = uint64(0x9cd090525c6a439d)
	tieredGoldenTimeline = uint64(0x2ec6a39156e9119d)
)

var tieredGoldenHot = hotCounters{hits: 32_009, misses: 9_490, promos: 6_316, demos: 4_268}

func TestTieredGoldenDigest(t *testing.T) {
	t.Parallel()
	r := Run(tieredDeterminismSpec(4321))
	fp := fingerprint{ops: r.Ops, lat: r.Lat.Digest(), timeline: r.Timeline.Digest()}
	hc := hotCountersOf(&r)
	if fp.ops != tieredGoldenOps || fp.lat != tieredGoldenLat || fp.timeline != tieredGoldenTimeline || hc != tieredGoldenHot {
		t.Errorf("tiered schedule diverged from golden fingerprint\n got ops=%d lat=%#016x timeline=%#016x hot=%+v\nwant ops=%d lat=%#016x timeline=%#016x hot=%+v",
			fp.ops, fp.lat, fp.timeline, hc, tieredGoldenOps, tieredGoldenLat, tieredGoldenTimeline, tieredGoldenHot)
	}
}

func TestTieredSpecDeterminism(t *testing.T) {
	t.Parallel()
	a := Run(tieredDeterminismSpec(7))
	if a.Ops == 0 {
		t.Fatal("tiered open-loop run completed no operations")
	}
	if a.HotPromotions == 0 || a.HotHits == 0 {
		t.Fatalf("hot tier never engaged: %+v", hotCountersOf(&a))
	}
	b := Run(tieredDeterminismSpec(7))
	if a.Ops != b.Ops || a.Lat.Digest() != b.Lat.Digest() || a.Timeline.Digest() != b.Timeline.Digest() {
		t.Errorf("same seed produced different tiered runs: ops %d vs %d", a.Ops, b.Ops)
	}
	if hotCountersOf(&a) != hotCountersOf(&b) {
		t.Errorf("same seed produced different hot-cache counters\n first: %+v\nsecond: %+v", hotCountersOf(&a), hotCountersOf(&b))
	}
	c := Run(tieredDeterminismSpec(8))
	if c.Lat.Digest() == a.Lat.Digest() && c.Timeline.Digest() == a.Timeline.Digest() {
		t.Errorf("different seeds produced identical tiered runs: %+v", hotCountersOf(&a))
	}
}
