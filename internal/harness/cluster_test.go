package harness

import (
	"testing"

	"kvell/internal/env"
)

// clusterTestSpec is the CI-sized cluster run: small per-machine dataset,
// short workload, default placement/network. Everything downstream of the
// spec is deterministic in Seed.
func clusterTestSpec(machines int, seed int64) ClusterSpec {
	return ClusterSpec{
		Machines:          machines,
		RF:                1,
		Seed:              seed,
		RecordsPerMachine: 4_000,
		Duration:          200 * env.Millisecond,
	}
}

// clusterFailoverSpec kills machine 1 of a replicated 3-machine cluster a
// third of the way into the workload.
func clusterFailoverSpec(seed int64) ClusterSpec {
	s := clusterTestSpec(3, seed)
	s.RF = 2
	s.Failover = true
	s.KillMachine = 1
	return s
}

// Golden digests for the cluster schedules: the full observable outcome of a
// run (ops, latency shape, network traffic, replication stream, failover
// recovery state) folded to one FNV word. Any change to the simulator kernel,
// network model, placement, replication protocol or promotion path moves
// them. On mismatch the failure prints the measured digest; re-pin only for
// changes *meant* to alter cluster schedules.
const (
	clusterGolden1        = uint64(0x77d56b88d7c9fc5a)
	clusterGolden2        = uint64(0x7946be329a8dc11b)
	clusterGoldenFailover = uint64(0x95dfe6c9b12ccd14)
)

func TestClusterGoldenDigest(t *testing.T) {
	t.Parallel()
	for _, c := range []struct {
		name string
		spec ClusterSpec
		want uint64
	}{
		{"1-machine", clusterTestSpec(1, 1), clusterGolden1},
		{"2-machine", clusterTestSpec(2, 1), clusterGolden2},
		{"failover", clusterFailoverSpec(1), clusterGoldenFailover},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			res, err := RunCluster(c.spec)
			if err != nil {
				t.Fatalf("cluster run failed: %v", err)
			}
			if res.Digest != c.want {
				t.Errorf("cluster schedule diverged from golden digest\n got %016x\nwant %016x\n(completed=%d failed=%d net msgs=%d shipped pages=%d entries=%d)",
					res.Digest, c.want, res.Completed, res.FailedOps,
					res.Net.Msgs, res.PagesShipped, res.EntriesShipped)
			}
		})
	}
}

// Same seed, same digest — including the failover path (seeded promotion
// choice, full-scan recovery on the promoted replica, client sweep).
func TestClusterSameSeedDeterminism(t *testing.T) {
	t.Parallel()
	for _, spec := range []ClusterSpec{clusterTestSpec(2, 7), clusterFailoverSpec(7)} {
		a, errA := RunCluster(spec)
		b, errB := RunCluster(spec)
		if errA != nil || errB != nil {
			t.Fatalf("cluster runs failed: %v / %v", errA, errB)
		}
		if a.Digest != b.Digest {
			t.Errorf("same seed produced different cluster schedules: %016x vs %016x (completed %d vs %d)",
				a.Digest, b.Digest, a.Completed, b.Completed)
		}
		if a.Completed == 0 {
			t.Error("cluster run completed no operations")
		}
	}
}

// Replication under RF=2 actually ships state and delays write acks at the
// barrier, without failover in the picture.
func TestClusterReplicationShipsState(t *testing.T) {
	t.Parallel()
	spec := clusterTestSpec(2, 3)
	spec.RF = 2
	res, err := RunCluster(spec)
	if err != nil {
		t.Fatalf("cluster run failed: %v", err)
	}
	if res.PagesShipped == 0 || res.EntriesShipped == 0 || res.BytesShipped == 0 {
		t.Errorf("replication shipped nothing: pages=%d entries=%d bytes=%d",
			res.PagesShipped, res.EntriesShipped, res.BytesShipped)
	}
	if res.ReplTime == 0 {
		t.Error("no time was attributed to the replication barrier (CompReplicate)")
	}
	if res.Updates == 0 {
		t.Error("workload performed no updates")
	}
}

// The failover contract: machine 1 dies mid-workload, a seeded-RNG follower
// is promoted through the ordinary full-scan recovery, and not one
// acknowledged write is lost. The promoted replica's index must agree with
// the shipped replication stream for every key that was not in flight at the
// kill.
func TestClusterFailoverNoAckedWriteLost(t *testing.T) {
	t.Parallel()
	res, err := RunCluster(clusterFailoverSpec(11))
	if err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	if res.Promoted == res.Machines || res.Promoted < 0 || res.Promoted == 1 {
		t.Errorf("promoted machine %d is not a surviving follower", res.Promoted)
	}
	if res.CrashTime == 0 {
		t.Error("the kill never happened")
	}
	if res.Verified == 0 {
		t.Error("verification read back no keys from the promoted store")
	}
	if res.Lost != 0 {
		t.Errorf("%d acknowledged writes lost after promotion", res.Lost)
	}
	if res.Checked == 0 {
		t.Error("replica index validation checked no entries")
	}
	if res.Mismatches != 0 {
		t.Errorf("%d replicated index entries disagree with recovery", res.Mismatches)
	}
	if res.Frontier == 0 {
		t.Error("promoted replica applied no replication records")
	}
	if res.Net.Dropped == 0 {
		t.Error("no messages were dropped at the dead machine")
	}
}

// Weak scaling: 4 machines must beat 1 machine by a healthy margin even at
// CI sizes (the full ≥6×-at-8 criterion is checked by the cluster experiment
// and the nightly sweep; this is the smoke version).
func TestClusterMiniSweepScaling(t *testing.T) {
	t.Parallel()
	one, err := RunCluster(clusterTestSpec(1, 1))
	if err != nil {
		t.Fatalf("1-machine run failed: %v", err)
	}
	four, err := RunCluster(clusterTestSpec(4, 1))
	if err != nil {
		t.Fatalf("4-machine run failed: %v", err)
	}
	speedup := four.ThroughputOps / one.ThroughputOps
	if speedup < 3.0 {
		t.Errorf("4-machine speedup = %.2fx, want >= 3.0x (1m: %.0f ops/s, 4m: %.0f ops/s)",
			speedup, one.ThroughputOps, four.ThroughputOps)
	}
}
