package harness

import (
	"testing"

	"kvell/internal/env"
	"kvell/internal/ycsb"
)

func TestCalib(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	for _, wl := range []byte{'A', 'C', 'E'} {
		for _, k := range AllEngines {
			r := Run(Spec{
				Engine: k, Records: 50_000, Seed: 42,
				Gen:      ycsbGen(wl, ycsb.Uniform, 50_000, 1024),
				Warmup:   250 * env.Millisecond,
				Duration: 1000 * env.Millisecond,
			})
			t.Logf("YCSB-%c %-16s %10.0f ops/s  p99=%d us", wl, r.EngineName, r.Throughput, r.Lat.Percentile(0.99)/1000)
		}
	}
}
