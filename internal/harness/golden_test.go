package harness

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kvell/internal/env"
)

// The golden digests lock the simulator's schedule: they were recorded before
// the kernel fast paths (event pool, 4-ary heap, same-time lane, Pool.Use
// analytic bursts) landed, so any kernel change that alters a single event's
// order — and therefore any measured number — fails this test. Re-record with
//
//	go test ./internal/harness -run TestGoldenDigests -update-golden
//
// only for changes that are *meant* to alter schedules (new engine behavior,
// cost model changes), never for performance work.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden digest fixtures")

const goldenPath = "testdata/golden_digests.json"

// goldenEntry is the JSON form of a fingerprint. The FNV digests are 64-bit
// and would lose precision as JSON numbers, so they are hex strings.
type goldenEntry struct {
	Ops      int64    `json:"ops"`
	Lat      string   `json:"lat_digest"`
	Timeline string   `json:"timeline_digest"`
	DiskBW   string   `json:"diskbw_digest"`
	Now      env.Time `json:"final_clock_ns"`
}

func toGolden(fp fingerprint) goldenEntry {
	return goldenEntry{
		Ops:      fp.ops,
		Lat:      fmt.Sprintf("%016x", fp.lat),
		Timeline: fmt.Sprintf("%016x", fp.timeline),
		DiskBW:   fmt.Sprintf("%016x", fp.diskBW),
		Now:      fp.now,
	}
}

func TestGoldenDigests(t *testing.T) {
	t.Parallel()
	got := make(map[string]goldenEntry)
	for _, k := range AllEngines {
		got[k.String()] = toGolden(runFingerprint(determinismSpec(k, 1234)))
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden to record): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: engine in fixture but not in AllEngines", name)
			continue
		}
		if g != w {
			t.Errorf("%s: schedule diverged from golden fixture\n got %+v\nwant %+v", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: engine missing from fixture (run with -update-golden)", name)
		}
	}
}
