package harness

import (
	"os"
	"testing"
)

// TestCrashDeterminism is the crash-schedule regression: the same spec must
// reproduce the same crash point, torn-write pattern and post-recovery
// state, bit for bit, across runs (the digest covers all three).
func TestCrashDeterminism(t *testing.T) {
	spec := CrashSpec{Engine: KVell, Seed: 42, Records: 4_000, AtWrite: 400}
	a, err := RunCrash(spec)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := RunCrash(spec)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same spec, different digests: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.CrashTime != b.CrashTime || a.Fault != b.Fault {
		t.Fatalf("same spec, different crash schedule: %+v vs %+v", a, b)
	}
	// A different power-loss seed must still die at the same write index.
	spec.Seed = 43
	c, err := RunCrash(spec)
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if c.Digest == a.Digest {
		t.Fatalf("different seeds produced identical digests %016x", a.Digest)
	}
}

// TestCrashRecoverVerifyAllEngines runs a couple of seeded crash points per
// engine — the bounded in-test version of `make crash-sweep`.
func TestCrashRecoverVerifyAllEngines(t *testing.T) {
	for _, kind := range AllEngines {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			if n := CrashSweep(kind, SweepOpts{Points: 2, Seed: 7, Records: 4_000}, os.Stderr); n != 0 {
				t.Fatalf("%d of 2 crash points failed (details above)", n)
			}
		})
	}
}
