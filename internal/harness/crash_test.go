package harness

import (
	"os"
	"testing"

	"kvell/internal/env"
)

// TestCrashDeterminism is the crash-schedule regression: the same spec must
// reproduce the same crash point, torn-write pattern and post-recovery
// state, bit for bit, across runs (the digest covers all three).
func TestCrashDeterminism(t *testing.T) {
	spec := CrashSpec{Engine: KVell, Seed: 42, Records: 4_000, AtWrite: 400}
	a, err := RunCrash(spec)
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := RunCrash(spec)
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same spec, different digests: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.CrashTime != b.CrashTime || a.Fault != b.Fault {
		t.Fatalf("same spec, different crash schedule: %+v vs %+v", a, b)
	}
	// A different power-loss seed must still die at the same write index.
	spec.Seed = 43
	c, err := RunCrash(spec)
	if err != nil {
		t.Fatalf("run 3: %v", err)
	}
	if c.Digest == a.Digest {
		t.Fatalf("different seeds produced identical digests %016x", a.Digest)
	}
}

// TestCrashMidGroupCommit crashes KVell with the write-absorption front end
// enabled: group commits put several writes in flight at once, so seeded
// crash points land in the middle of a group, and every absorbed-then-acked
// write must still be recovered. At least one point must actually catch a
// multi-write group in flight, or the sweep proved nothing.
func TestCrashMidGroupCommit(t *testing.T) {
	sawGroup := false
	for i := 1; i <= 4; i++ {
		pointSeed, atWrite := SweepPoint(11, i)
		res, err := RunCrash(CrashSpec{
			Engine:         KVell,
			Seed:           pointSeed,
			Records:        4_000,
			AtWrite:        atWrite,
			AbsorbInterval: 50 * env.Microsecond,
		})
		if err != nil {
			t.Fatalf("point %d (seed %d, atwrite %d): %v", i, pointSeed, atWrite, err)
		}
		if res.Fault.InFlight > 1 {
			sawGroup = true
		}
	}
	if !sawGroup {
		t.Fatal("no crash point landed mid-group-commit (every crash saw <=1 write in flight)")
	}
}

// TestCrashWithHotCache crashes KVell with the hot-key cache enabled, alone
// and stacked on the absorb front end. The cache is a read accelerator only:
// recovery rebuilds from disk and starts with an empty cache, so if a
// cached-but-unflushed value were ever what made an acked write "durable",
// these points would report it as lost or recovered to an impossible
// version. The runs must also actually exercise the cache — a crash sweep
// where the hot tier never engaged proves nothing.
func TestCrashWithHotCache(t *testing.T) {
	for _, tc := range []struct {
		name   string
		absorb env.Time
	}{
		{"hotcache", 0},
		{"hotcache+absorb", 50 * env.Microsecond},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for i := 1; i <= 4; i++ {
				pointSeed, atWrite := SweepPoint(11, i)
				res, err := RunCrash(CrashSpec{
					Engine:         KVell,
					Seed:           pointSeed,
					Records:        4_000,
					AtWrite:        atWrite,
					AbsorbInterval: tc.absorb,
					TieredHotBytes: 2 << 20,
				})
				if err != nil {
					t.Fatalf("point %d (seed %d, atwrite %d): %v", i, pointSeed, atWrite, err)
				}
				if res.HotHits == 0 {
					t.Fatalf("point %d: hot cache never served a read before the crash", i)
				}
			}
		})
	}
}

// TestCrashRecoverVerifyAllEngines runs a couple of seeded crash points per
// engine — the bounded in-test version of `make crash-sweep`.
func TestCrashRecoverVerifyAllEngines(t *testing.T) {
	for _, kind := range AllEngines {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			if n := CrashSweep(kind, SweepOpts{Points: 2, Seed: 7, Records: 4_000}, os.Stderr); n != 0 {
				t.Fatalf("%d of 2 crash points failed (details above)", n)
			}
		})
	}
}
