package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"kvell/internal/trace"
)

func tracedSpec(k EngineKind, seed int64, tr *trace.Tracer) Spec {
	s := determinismSpec(k, seed)
	s.Tracer = tr
	return s
}

// TestTraceDeterminism is the tracing analogue of TestGoldenDigests: tracing
// must be purely observational (the traced run's schedule fingerprint is
// byte-identical to the untraced one, which TestGoldenDigests pins to the
// golden fixture), and the trace itself must be a pure function of the seed
// (two same-seed traced runs produce identical trace digests).
func TestTraceDeterminism(t *testing.T) {
	t.Parallel()
	for _, k := range AllEngines {
		base := runFingerprint(determinismSpec(k, 1234))
		tr1 := trace.NewTracer(4)
		a := runFingerprint(tracedSpec(k, 1234, tr1))
		tr2 := trace.NewTracer(4)
		runFingerprint(tracedSpec(k, 1234, tr2))
		if a != base {
			t.Errorf("%v: tracing perturbed the schedule\n traced: %+v\nuntraced: %+v", k, a, base)
		}
		if tr1.Finished() == 0 || tr1.SampledCount() == 0 {
			t.Errorf("%v: tracer saw no requests (finished=%d sampled=%d)", k, tr1.Finished(), tr1.SampledCount())
		}
		if d1, d2 := tr1.Digest(), tr2.Digest(); d1 != d2 {
			t.Errorf("%v: same seed produced different trace digests: %016x vs %016x", k, d1, d2)
		}
	}
}

// TestTraceCoverage checks that the component spans account for (nearly) all
// of every sampled request's end-to-end latency: the breakdown is an
// explanation, not a sample of convenient moments.
func TestTraceCoverage(t *testing.T) {
	t.Parallel()
	for _, k := range []EngineKind{KVell, RocksLike, WiredTigerLike, TokuLike} {
		tr := trace.NewTracer(4)
		runFingerprint(tracedSpec(k, 1234, tr))
		covMin, covMean := tr.Coverage()
		if covMean < 0.95 {
			t.Errorf("%v: mean span coverage %.1f%% < 95%%", k, covMean*100)
		}
		if covMin < 0.5 {
			t.Errorf("%v: worst-request span coverage %.1f%% — a major latency source is untraced", k, covMin*100)
		}
	}
}

// TestTraceFigure2Story is the acceptance check behind the traceattr
// experiment: the LSM engine's worst sampled op overlaps an engine
// maintenance job, while KVell's never does (KVell schedules no blocking
// maintenance, §5).
func TestTraceFigure2Story(t *testing.T) {
	t.Parallel()
	o := Options{Quick: true, Seed: 1}

	lsmTr := trace.NewTracer(TraceSampleEvery(o))
	Run(TraceSpec(o, RocksLike, lsmTr))
	if len(lsmTr.OutlierMaintenance()) == 0 {
		out := lsmTr.Outlier()
		t.Errorf("LSM worst op (%s, comps %v) overlaps no maintenance job — Figure 2's attribution is missing", out.Op, out.Comp)
	}

	kvTr := trace.NewTracer(TraceSampleEvery(o))
	Run(TraceSpec(o, KVell, kvTr))
	if m := kvTr.OutlierMaintenance(); len(m) != 0 {
		t.Errorf("KVell worst op overlaps maintenance %v — KVell must have none", m)
	}
	if len(kvTr.BgSpans()) != 0 {
		// Filter devspikes: those are device-internal, not engine maintenance.
		for _, s := range kvTr.BgSpans() {
			if s.Name != "devspike" {
				t.Errorf("KVell recorded engine maintenance span %q", s.Name)
			}
		}
	}
}

// TestTraceChromeExport validates the exporter on a real traced run: the
// output must be well-formed JSON with the expected track structure.
func TestTraceChromeExport(t *testing.T) {
	t.Parallel()
	tr := trace.NewTracer(4)
	Run(tracedSpec(RocksLike, 1234, tr))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("exporter produced invalid JSON (%d bytes)", buf.Len())
	}
	out := buf.String()
	for _, want := range []string{`"cores"`, `"ops"`, `"maintenance"`, `"disk 0"`, `"ph":"X"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s", want)
		}
	}
	var table bytes.Buffer
	tr.WriteBreakdownTable(&table)
	for _, want := range []string{"dev-service", "end-to-end"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("breakdown table missing %q:\n%s", want, table.String())
		}
	}
}
