package harness

import (
	"fmt"
	"io"

	"kvell/internal/core"
	"kvell/internal/device"
	"kvell/internal/env"
	"kvell/internal/stats"
	"kvell/internal/ycsb"
)

// TierOpts parameterizes the hot/cold tiering sweep: zipfian skew × hot-tier
// size, all engines at hot size 0 as baselines, on a slow cold-SSD profile.
// The page cache is deliberately small (TierCacheFrac of the dataset): the
// paper's Nutanix traces split into a ~21% and a ~99% page-cache-hit regime,
// and this sweep reproduces both as measured memory-hit-rate points — the
// low one from a skew the small caches cannot absorb, the high one from a
// hot tier sized to the working set.
type TierOpts struct {
	Engines  []EngineKind
	Thetas   []float64 // zipfian skew grid
	CacheMB  []float64 // hot-tier size grid in MB; 0 = tiering off
	Records  int64
	ItemSize int
	Duration env.Time
	Rate     float64 // open-loop arrival rate per virtual second
	// MaxPerShard is the admission valve bound (Shed policy: overload is
	// rejected, so goodput and tail latency stay measurable).
	MaxPerShard int
	// PromoteAfter is the decayed access count that promotes (default 1:
	// promote on first cold read — the ghost table still shields the cache
	// from single-touch scans at PromoteAfter >= 2).
	PromoteAfter int
	// HotShiftEvery, when > 0, adds one extra KVell point at the highest
	// theta and a mid-size cache (under capacity pressure) with the YCSB
	// hot head rotating at this period, exercising demotion and
	// re-promotion under workload churn.
	HotShiftEvery env.Time
	// Profile is the cold device (default device.ColdSSD()).
	Profile device.Profile
}

// TierCacheFrac sizes the page cache relative to the dataset in this sweep:
// small enough that cold reads actually pay the slow device, which is the
// regime where a hot tier matters.
const TierCacheFrac = 0.05

func (to *TierOpts) defaults(o Options) {
	if len(to.Engines) == 0 {
		to.Engines = AllEngines
	}
	if len(to.Thetas) == 0 {
		to.Thetas = []float64{0.6, 0.99}
	}
	if len(to.CacheMB) == 0 {
		to.CacheMB = []float64{0, 1.5, 4, 24}
	}
	if to.Records == 0 {
		to.Records = 20_000
	}
	if to.ItemSize == 0 {
		to.ItemSize = 1024
	}
	if to.Duration == 0 {
		// Long enough that the one-time cold-read promotion misses (one
		// per record at PromoteAfter=1) amortize out of the hit rate.
		to.Duration = o.dur(6 * env.Second)
	}
	if to.Rate == 0 {
		to.Rate = 300_000
	}
	if to.MaxPerShard == 0 {
		to.MaxPerShard = 256
	}
	if to.PromoteAfter == 0 {
		to.PromoteAfter = 1
	}
	if to.HotShiftEvery == 0 {
		to.HotShiftEvery = 250 * env.Millisecond
	}
	if to.Profile.Name == "" {
		to.Profile = device.ColdSSD()
	}
}

// TierPoint is one cell of the sweep with derived hit-rate measurements.
type TierPoint struct {
	Engine  EngineKind
	Theta   float64
	CacheMB float64
	Shift   bool

	Res Result
	// MemHitPct is the fraction of cache-visible lookups served from
	// memory: (hot hits + page/block hits) / (those + page misses) — the
	// metric behind the paper's Nutanix hit-rate regimes.
	MemHitPct float64
	// HotHitPct is hot-tier hits over hot-tier probes (KVell tiered only).
	HotHitPct float64
}

func (p *TierPoint) fillDerived() {
	r := &p.Res
	mem := r.HotHits + r.CacheHits
	if tot := mem + r.CacheMisses; tot > 0 {
		p.MemHitPct = 100 * float64(mem) / float64(tot)
	}
	if probes := r.HotHits + r.HotMisses; probes > 0 {
		p.HotHitPct = 100 * float64(r.HotHits) / float64(probes)
	}
}

// readMostlyGen is a 98/2 read/update Zipfian stream: read-dominated so the
// hot tier is the bottleneck-mover, with enough writes to keep the
// write-through/invalidation protocol honest. ColdSSD sustains ~10K random
// writes/s, so the 2% write stream stays below the cold tier's write cliff.
func readMostlyGen(records int64, itemSize int, theta float64, shiftEvery env.Time) func(int64) Generator {
	return func(seed int64) Generator {
		wl := ycsb.Workload{Name: "read-mostly", ReadPct: 98, UpdatePct: 2}
		g := ycsb.NewGeneratorTheta(wl, ycsb.Zipfian, records, itemSize, seed, theta)
		if shiftEvery > 0 {
			g.SetHotShift(shiftEvery, seed+0x686F74)
		}
		return g
	}
}

// tierSpec builds one sweep cell's Spec. cacheMB is the hot-tier size; zero
// leaves the engine untiered.
func tierSpec(o Options, to *TierOpts, eng EngineKind, theta, cacheMB float64, shift env.Time) Spec {
	return Spec{
		Name:      "tiering",
		Seed:      o.Seed,
		Engine:    eng,
		Profile:   to.Profile,
		Records:   to.Records,
		ItemSize:  to.ItemSize,
		CacheFrac: TierCacheFrac,
		Gen:       readMostlyGen(to.Records, to.ItemSize, theta, shift),
		Duration:  to.Duration,
		Arrival: &Arrival{
			Rate:        to.Rate,
			MaxPerShard: to.MaxPerShard,
			Policy:      Shed,
		},
		TweakKVell: func(c *core.Config) {
			if cacheMB > 0 {
				c.TieredHotBytes = int64(cacheMB * (1 << 20))
				c.TieredSlotBytes = to.ItemSize
				c.TieredPromoteAfter = to.PromoteAfter
				c.TieredSeed = o.Seed
			}
		},
	}
}

// TierSweep runs the grid: every engine untiered as a baseline, KVell
// additionally at each hot-tier size, plus one hot-set-shift point.
func TierSweep(o Options, to TierOpts) []TierPoint {
	to.defaults(o)
	var pts []TierPoint
	var specs []Spec
	for _, eng := range to.Engines {
		sizes := to.CacheMB[:1] // baseline only: the hot tier is a KVell front end
		if eng == KVell {
			sizes = to.CacheMB
		}
		for _, theta := range to.Thetas {
			for _, mb := range sizes {
				pts = append(pts, TierPoint{Engine: eng, Theta: theta, CacheMB: mb})
				specs = append(specs, tierSpec(o, &to, eng, theta, mb, 0))
			}
		}
	}
	if to.HotShiftEvery > 0 {
		theta := to.Thetas[len(to.Thetas)-1]
		mb := shiftMB(&to)
		pts = append(pts, TierPoint{Engine: KVell, Theta: theta, CacheMB: mb, Shift: true})
		specs = append(specs, tierSpec(o, &to, KVell, theta, mb, to.HotShiftEvery))
	}
	results := o.runAll(specs...)
	for i := range pts {
		pts[i].Res = results[i]
		pts[i].fillDerived()
	}
	return pts
}

// shiftMB picks the hot-set-shift point's cache size: the second-largest
// entry when the grid has one, so the arena is under capacity pressure and
// rotation visibly demotes; a dataset-sized cache would never evict.
func shiftMB(to *TierOpts) float64 {
	if len(to.CacheMB) > 2 {
		return to.CacheMB[len(to.CacheMB)-2]
	}
	return to.CacheMB[len(to.CacheMB)-1]
}

// findTierPoint returns the sweep cell matching the coordinates, or nil.
func findTierPoint(pts []TierPoint, eng EngineKind, theta, mb float64, shift bool) *TierPoint {
	for i := range pts {
		p := &pts[i]
		if p.Engine == eng && p.Theta == theta && p.CacheMB == mb && p.Shift == shift {
			return p
		}
	}
	return nil
}

// tieringExp is the registered experiment: default grid, table, verdicts.
func tieringExp(o Options, w io.Writer) {
	TierReport(o, TierOpts{}, w)
}

// TierReport runs the sweep described by to (zero fields take defaults) and
// prints the table plus the headline verdicts — the entry point kvell-tier
// uses for flag-selected skews and cache sizes.
func TierReport(o Options, to TierOpts, w io.Writer) {
	to.defaults(o)
	fmt.Fprintf(w, "Hot/cold tiering: open-loop read-mostly Zipfian sweep on %s\n", to.Profile.Name)
	fmt.Fprintf(w, "(%d records x %dB, page cache %.0f%% of dataset, offered load %s/s, valve bound %d/shard)\n\n",
		to.Records, to.ItemSize, 100*TierCacheFrac, stats.FmtRate(to.Rate), to.MaxPerShard)
	fmt.Fprintf(w, "%-16s %-6s %8s %12s %10s %10s %8s %8s %9s %9s %8s\n",
		"engine", "theta", "hot-MB", "goodput", "p50", "p99", "memhit%", "hothit%", "promos", "demos", "shed")
	pts := TierSweep(o, to)
	for i := range pts {
		p := &pts[i]
		mb := "off"
		if p.CacheMB > 0 {
			mb = fmt.Sprintf("%.1f", p.CacheMB)
		}
		name := p.Engine.String()
		if p.Shift {
			name += "+shift"
		}
		fmt.Fprintf(w, "%-16s %-6.2f %8s %12s %10s %10s %8.1f %8.1f %9d %9d %8d\n",
			name, p.Theta, mb,
			stats.FmtRate(p.Res.Throughput),
			stats.FmtDur(p.Res.Lat.Percentile(0.50)),
			stats.FmtDur(p.Res.Lat.Percentile(0.99)),
			p.MemHitPct, p.HotHitPct,
			p.Res.HotPromotions, p.Res.HotDemotions, p.Res.Shed)
	}
	fmt.Fprintf(w, "\n")

	// Headline 1: tiered vs untiered KVell goodput at the highest skew.
	maxTheta := to.Thetas[len(to.Thetas)-1]
	if base := findTierPoint(pts, KVell, maxTheta, 0, false); base != nil && base.Res.Throughput > 0 {
		best := base
		for _, mb := range to.CacheMB[1:] {
			if p := findTierPoint(pts, KVell, maxTheta, mb, false); p != nil && p.Res.Throughput > best.Res.Throughput {
				best = p
			}
		}
		gain := best.Res.Throughput / base.Res.Throughput
		verdict := "FAIL"
		if gain >= 2 {
			verdict = "ok"
		}
		fmt.Fprintf(w, "KVell theta=%.2f on %s: goodput %s -> %s with a %.1fMB hot tier (%.2fx, >=2x: %s)\n",
			maxTheta, to.Profile.Name,
			stats.FmtRate(base.Res.Throughput), stats.FmtRate(best.Res.Throughput),
			best.CacheMB, gain, verdict)
	}

	// Headline 2: the two Nutanix hit-rate regimes as measured points. The
	// low regime is the smallest hot tier at the lowest skew (caches too
	// small for the working set); the high regime is the largest hot tier at
	// the highest skew (working set fits).
	minTheta := to.Thetas[0]
	if len(to.CacheMB) > 1 {
		if low := findTierPoint(pts, KVell, minTheta, to.CacheMB[1], false); low != nil {
			verdict := "FAIL"
			if low.MemHitPct >= 10 && low.MemHitPct <= 35 {
				verdict = "ok"
			}
			fmt.Fprintf(w, "low-hit regime  (theta=%.2f, %.1fMB): %.1f%% memory hits (~21%% band [10,35]: %s)\n",
				minTheta, low.CacheMB, low.MemHitPct, verdict)
		}
		big := to.CacheMB[len(to.CacheMB)-1]
		if high := findTierPoint(pts, KVell, maxTheta, big, false); high != nil {
			verdict := "FAIL"
			if high.MemHitPct >= 90 {
				verdict = "ok"
			}
			fmt.Fprintf(w, "high-hit regime (theta=%.2f, %.1fMB): %.1f%% memory hits (~99%% band >=90: %s)\n",
				maxTheta, big, high.MemHitPct, verdict)
		}
	}

	// Headline 3: rotating the hot head must churn the cache — demotions
	// happen, and re-promoting each epoch's new head costs more promotions
	// than the static workload at the same size.
	if sp := findTierPoint(pts, KVell, maxTheta, shiftMB(&to), true); sp != nil {
		verdict := "FAIL"
		if sp.Res.HotDemotions > 0 {
			verdict = "ok"
		}
		extra := ""
		if st := findTierPoint(pts, KVell, maxTheta, shiftMB(&to), false); st != nil {
			extra = fmt.Sprintf(", %d vs %d static promotions", sp.Res.HotPromotions, st.Res.HotPromotions)
		}
		fmt.Fprintf(w, "hot-set shift every %s: %d demotions under churn (>0: %s%s)\n",
			stats.FmtDur(to.HotShiftEvery), sp.Res.HotDemotions, verdict, extra)
	}
	fmt.Fprintf(w, "\nA hot tier sized to the Zipfian head turns the cold-SSD read bottleneck into a memory\nworkload: cold reads promote after repeated touches, writes go through or invalidate in\nplace, and the frequency-ordered ring demotes the coldest resident record when the arena\nis full — all in virtual time, so tiered schedules are as replayable as untiered ones.\n")
}
