package costs

import (
	"testing"

	"kvell/internal/env"
)

// The constants are a calibrated model; these tests pin the derivations the
// package comment documents so that a drive-by edit cannot silently break
// the reproduction's CPU accounting.

func TestByteChargeHelpers(t *testing.T) {
	if MemBytes(1000) != env.Time(1000*MemcpyPerByte) {
		t.Fatal("MemBytes math")
	}
	if MergeBytes(100) != env.Time(100*MergePerByte) {
		t.Fatal("MergeBytes math")
	}
	if IndexBuildBytes(100) != env.Time(100*IndexBuildPerByte) {
		t.Fatal("IndexBuildBytes math")
	}
	if WALBytes(1000) != env.Time(1000*WALAppendPerByte) {
		t.Fatal("WALBytes math")
	}
	if BufferMoveBytes(100) != env.Time(100*BufferMovePerByte) {
		t.Fatal("BufferMoveBytes math")
	}
	if PreadBytes(4096) != env.Time(4096*PreadPerByte) {
		t.Fatal("PreadBytes math")
	}
	if PwriteBytes(4096) != env.Time(4096*PwritePerByte) {
		t.Fatal("PwriteBytes math")
	}
}

func TestCalibrationInvariants(t *testing.T) {
	// KVell's per-request CPU (two ~5-level descents + callback +
	// amortized batched syscall) must stay well under the paper's 19us
	// wall-core budget at 420K req/s on 8 cores — that is what keeps
	// KVell device-bound rather than CPU-bound.
	perReq := 2*5*BTreeNode + Callback + Syscall/64 + SyscallPerReq
	if perReq > 10*env.Microsecond {
		t.Fatalf("KVell per-request CPU %dns breaks the §6.3.1 budget", perReq)
	}
	// A buffered 4KB block read must cost vastly more than a batched
	// async submission — the asymmetry fig5's read workloads rest on.
	pread := Syscall + PreadBytes(4096)
	batched := Syscall/64 + SyscallPerReq
	if pread < 5*batched {
		t.Fatalf("pread %dns vs batched %dns: asymmetry lost", pread, batched)
	}
	// The mmap fault must dominate the device service time (Table 3's
	// 10K IOPS single-thread mmap row).
	if MmapFault < 50*env.Microsecond {
		t.Fatal("mmap fault cost too small for Table 3")
	}
	// Hash growth must be visible at millisecond scale (the §5.3 tail
	// anecdote).
	if HashGrow < 50*env.Millisecond {
		t.Fatal("hash growth spike too small for the §5.3 anecdote")
	}
}
