// Package costs is the calibrated CPU cost model used by the simulated
// engines. Every constant is derived from measurements the paper itself
// reports (profiling percentages, throughputs and core counts), so that the
// simulation reproduces the paper's CPU accounting rather than ours.
//
// Derivations (all on Config-Optane, 8 hardware threads, unless noted):
//
//   - KVell sustains 420K req/s on YCSB A spending 20% of time in B-tree
//     lookups and 20% in I/O functions (§6.3.1). 8 cores / 420K req/s =
//     19us/req of wall-core time; 40% busy = 7.6us of CPU per request,
//     i.e. ~3.8us of lookups (two B-tree descents: page-cache index +
//     worker index) and ~3.8us of I/O-path work per request.
//   - RocksDB spends up to 60% of CPU in compactions: 28% merging, 15%
//     index building (§3.1). At ~63K req/s (50% writes of 1KB) ingest is
//     ~31.5MB/s; leveled write amplification ~10 gives ~315MB/s of
//     compaction traffic; 28% of 8 cores / 315MB/s ~ 7ns/byte merged and
//     15% / 315MB/s ~ 4ns/byte of index building.
//   - RocksDB spends up to 41% of its time in pread() on read-dominated
//     workloads (§6.3.1) — one syscall per uncached read; with ~430K
//     reads/s on 8 cores that bounds the syscall path at ~2-3us.
//   - The Config-Amazon-8NVMe microbenchmark (§6.4.1): spending more than
//     3us of CPU per I/O caps achievable IOPS at 75% of max.
//   - mmap page-fault service including map/unmap and remote TLB
//     shootdowns costs ~85us (Table 3: 10K IOPS single-threaded mmap
//     vs 11us device service time leaves ~89us of kernel overhead).
package costs

import "kvell/internal/env"

// Syscall and kernel-path costs.
const (
	// Syscall is the fixed cost of entering and returning from a system
	// call (io_submit, io_getevents, pread, pwrite, ...).
	Syscall env.Time = 2500
	// SyscallPerReq is the kernel's per-request work inside a batched
	// submission (request setup, completion handling, interrupt amortized).
	SyscallPerReq env.Time = 700
	// PreadPerByte is the additional kernel+library CPU of a *buffered*
	// read: copy out of the OS page cache, checksum verification and
	// block handling. The LSM/B-tree baselines read blocks this way (one
	// pread per block, §6.3.1: RocksDB spends up to 41% of its CPU in
	// pread() at ~165K reads/s on 8 threads ⇒ ~20us per 4KB block).
	// KVell uses O_DIRECT asynchronous I/O and does not pay this.
	PreadPerByte float64 = 6.0
	// PwritePerByte is the buffered-write analogue (copy into the page
	// cache; cheaper than the read path, no checksum verification).
	PwritePerByte float64 = 1.5
	// MmapFault is the kernel cost of a major page fault on an mmap-ed
	// region whose working set exceeds RAM: page (un)mapping plus remote
	// TLB invalidation via IPIs (Table 3 derivation above).
	MmapFault env.Time = 85_000
	// MmapLRULock is the page-cache LRU lock cost paid while flushing
	// (about one acquisition per 32KB flushed, §5.4).
	MmapLRULock env.Time = 1_500
)

// In-memory data-structure costs.
const (
	// BTreeNode is the cost of visiting one B-tree node during a descent
	// (pointer chase + binary search within the node; dominated by cache
	// misses on large trees). A 5-level descent costs ~1.9us, matching the
	// paper's "20% of time in lookups" at 420K req/s with two descents per
	// request (worker index + page-cache index).
	BTreeNode env.Time = 380
	// SkiplistNode is the per-node cost of a skiplist descent/insert step
	// (memtable path in LSM engines).
	SkiplistNode env.Time = 120
	// HashLookup is a hash-table probe (page-cache ablation variant).
	HashLookup env.Time = 250
	// HashGrow is the stop-the-world cost of growing a large hash table;
	// the paper reports up to 100ms insertions when the page-cache index
	// used uthash (§5.3). Charged when a resize is triggered.
	HashGrow env.Time = 100 * env.Millisecond
	// MemcpyPerByte models copy bandwidth of ~10GB/s per core.
	MemcpyPerByte float64 = 0.1
	// Callback is the allocation/queueing overhead per asynchronous
	// request callback (the paper: "10% managing callbacks (malloc and
	// free)" on Config-Amazon-8NVMe).
	Callback env.Time = 600
	// LockUncontended is the cost of an uncontended lock round trip.
	LockUncontended env.Time = 90
)

// LSM-specific costs (derivation in the package comment).
const (
	// MergePerByte is CPU spent merge-sorting entries during compaction.
	MergePerByte float64 = 7
	// IndexBuildPerByte is CPU spent building SSTable block indexes,
	// bloom filters and restarts while writing files (flush & compaction).
	IndexBuildPerByte float64 = 4
	// BloomCheck is one bloom-filter membership test.
	BloomCheck env.Time = 140
	// IterStep is one merging-iterator advance during scans.
	IterStep env.Time = 300
	// WALAppendPerByte is the per-byte cost of formatting+copying a record
	// into the write-ahead-log buffer.
	WALAppendPerByte float64 = 0.35
)

// B-tree-engine (WiredTiger-like) and Bε-tree (TokuMX-like) costs.
const (
	// LogSlotJoin is the bookkeeping to join a commit-log slot.
	LogSlotJoin env.Time = 450
	// LogSlotSpin is the busy-wait quantum while waiting for earlier log
	// slots to become durable (__log_wait_for_earlier_slot / sched_yield).
	LogSlotSpin env.Time = 2_000
	// PageReconcile is the per-page cost of preparing a dirty page image
	// for eviction or checkpoint (WiredTiger "reconciliation").
	PageReconcile env.Time = 3_000
	// BufferMovePerByte is the Bε-tree cost of moving messages down the
	// tree from node buffers (TokuMX spends >20% of time here, §3.1).
	BufferMovePerByte float64 = 2.5
)

// PreadBytes charges the buffered-read kernel path for n bytes.
func PreadBytes(n int) env.Time { return env.Time(PreadPerByte * float64(n)) }

// PwriteBytes charges the buffered-write kernel path for n bytes.
func PwriteBytes(n int) env.Time { return env.Time(PwritePerByte * float64(n)) }

// MemBytes multiplies MemcpyPerByte into a charge for n bytes.
func MemBytes(n int) env.Time { return env.Time(MemcpyPerByte * float64(n)) }

// MergeBytes charges compaction merge work for n bytes.
func MergeBytes(n int) env.Time { return env.Time(MergePerByte * float64(n)) }

// IndexBuildBytes charges SSTable index/filter building for n bytes.
func IndexBuildBytes(n int) env.Time { return env.Time(IndexBuildPerByte * float64(n)) }

// WALBytes charges commit-log formatting for n bytes.
func WALBytes(n int) env.Time { return env.Time(WALAppendPerByte * float64(n)) }

// BufferMoveBytes charges Bε-tree buffer flush-down work for n bytes.
func BufferMoveBytes(n int) env.Time { return env.Time(BufferMovePerByte * float64(n)) }
