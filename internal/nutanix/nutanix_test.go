package nutanix

import (
	"sort"
	"testing"

	"kvell/internal/kv"
)

func TestMixRatios(t *testing.T) {
	g := New(Workload1, 10_000, 1)
	counts := map[kv.OpType]int{}
	const n = 30_000
	for i := 0; i < n; i++ {
		counts[g.Next().Op]++
	}
	w := 100 * counts[kv.OpUpdate] / n
	r := 100 * counts[kv.OpGet] / n
	s := 100 * counts[kv.OpScan] / n
	if w < 55 || w > 59 || r < 39 || r > 43 || s < 1 || s > 3 {
		t.Fatalf("mix = %d:%d:%d, want ~57:41:2", w, r, s)
	}
}

func TestItemSizeDistribution(t *testing.T) {
	g := New(Workload1, 50_000, 2)
	sizes := append([]int(nil), g.sizes...)
	sort.Ints(sizes)
	min, med, max := sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]
	if min < 250 || max > 1024 {
		t.Fatalf("sizes out of [250,1024]: min=%d max=%d", min, max)
	}
	if med < 330 || med > 470 {
		t.Fatalf("median size %d, want ~400 (paper)", med)
	}
}

func TestWorkload2IsSkewed(t *testing.T) {
	records := int64(20_000)
	g1 := New(Workload1, records, 3)
	g2 := New(Workload2, records, 3)
	distinct := func(g *Generator) int {
		seen := map[int64]bool{}
		for i := 0; i < 30_000; i++ {
			seen[kv.KeyNum(g.Next().Key)] = true
		}
		return len(seen)
	}
	d1, d2 := distinct(g1), distinct(g2)
	if d2*2 > d1 {
		t.Fatalf("workload 2 (%d distinct keys) not much more skewed than workload 1 (%d)", d2, d1)
	}
}

func TestStableSizesAcrossUpdates(t *testing.T) {
	g := New(Workload1, 1000, 4)
	first := map[int64]int{}
	for i := 0; i < 20_000; i++ {
		r := g.Next()
		if r.Op != kv.OpUpdate {
			continue
		}
		n := kv.KeyNum(r.Key)
		if prev, ok := first[n]; ok {
			if prev != len(r.Value) {
				t.Fatalf("record %d changed size %d -> %d across updates", n, prev, len(r.Value))
			}
		} else {
			first[n] = len(r.Value)
		}
	}
}

func TestInitialItemsMatchGeneratedSizes(t *testing.T) {
	g := New(Workload2, 500, 5)
	items := g.InitialItems()
	if len(items) != 500 {
		t.Fatalf("items = %d", len(items))
	}
	for i, it := range items {
		if len(it.Value) != g.valueBytes(int64(i)) {
			t.Fatalf("item %d value %dB, want %dB", i, len(it.Value), g.valueBytes(int64(i)))
		}
	}
}
