// Package nutanix synthesizes the two production workloads of §6.4.2: a
// 57:41:2 write:read:scan mix over items of 250B-1KB (median 400B). The
// paper characterizes the two traces by their skew — Workload 1 is close to
// uniform (21% of reads served from cache with a cache of 1/3 the data) and
// Workload 2 is highly skewed (99% cache hits) — which we model with a
// uniform and a sharply Zipfian key distribution respectively.
package nutanix

import (
	"math"
	"math/rand"

	"kvell/internal/kv"
	"kvell/internal/slab"
)

// Profile selects one of the two production workloads.
type Profile uint8

// The two production workloads.
const (
	Workload1 Profile = iota + 1 // near-uniform key popularity
	Workload2                    // highly skewed (99% cache-hit reads)
)

// Mix percentages from the paper.
const (
	WritePct = 57
	ReadPct  = 41
	ScanPct  = 2
)

// Generator produces the production request stream.
type Generator struct {
	profile Profile
	records int64
	r       *rand.Rand
	version uint64
	sizes   []int // per-record item size (stable across updates)
}

// New returns a generator over records items.
func New(profile Profile, records int64, seed int64) *Generator {
	g := &Generator{profile: profile, records: records, r: rand.New(rand.NewSource(seed))}
	g.sizes = make([]int, records)
	for i := range g.sizes {
		g.sizes[i] = g.drawSize()
	}
	return g
}

// drawSize samples the item-size distribution: 250B-1KB with a median of
// 400B (log-normal-ish: most items small, a tail up to 1KB).
func (g *Generator) drawSize() int {
	// Log-uniform between 250 and 1024 gives a ~506B median; mix with a
	// bias toward the low end to hit the 400B median the paper reports.
	u := g.r.Float64()
	u = u * u // bias low
	s := 250 * math.Pow(1024.0/250.0, u)
	return int(s)
}

func (g *Generator) valueBytes(i int64) int {
	v := g.sizes[i] - slab.HeaderSize - kv.KeyLen
	if v < 1 {
		v = 1
	}
	return v
}

// nextRecord draws a key. Workload 1 is near-uniform; Workload 2
// concentrates 99% of accesses on a hot set smaller than the cache (the
// cache is a third of the dataset, so a quarter-of-the-keyspace hot set
// yields the paper's 99% cache-hit reads while staying far larger than
// any engine's in-memory write buffer — the ratio that matters for the
// LSM's compaction load at scaled-down dataset sizes).
func (g *Generator) nextRecord() int64 {
	if g.profile == Workload1 {
		return g.r.Int63n(g.records)
	}
	// Workload 2: 99% of ops hit a hot 25% of the key space.
	if g.r.Float64() < 0.99 {
		hot := g.records / 4
		if hot < 1 {
			hot = 1
		}
		// Quadratic bias inside the hot set, hashed to spread over slabs
		// (key formatted into a stack buffer only to feed the hash).
		u := g.r.Float64()
		i := int64(u * u * float64(hot))
		var kb [kv.KeyLen]byte
		kv.FillKey(kb[:], i)
		return int64(kv.Hash64(kb[:]) % uint64(g.records))
	}
	return g.r.Int63n(g.records)
}

// InitialItems builds the bulk-load dataset.
func (g *Generator) InitialItems() []kv.Item {
	items := make([]kv.Item, g.records)
	for i := int64(0); i < g.records; i++ {
		items[i] = kv.Item{Key: kv.Key(i), Value: kv.Value(i, 0, g.valueBytes(i))}
	}
	return items
}

// Next produces the next operation (57% writes, 41% reads, 2% scans).
func (g *Generator) Next() *kv.Request {
	r := &kv.Request{}
	g.FillNext(r)
	return r
}

// FillNext writes the next operation into r, reusing r's key and value
// buffers when large enough (allocation-free form of Next; identical RNG
// draw order, so the stream is bit-identical). The engine must be done with
// r (Done invoked) before it is refilled.
func (g *Generator) FillNext(r *kv.Request) {
	p := g.r.Intn(100)
	r.ScanCount = 0
	switch {
	case p < WritePct:
		i := g.nextRecord()
		g.version++
		r.Op = kv.OpUpdate
		g.fillKey(r, i)
		g.fillValue(r, i, g.version)
	case p < WritePct+ReadPct:
		r.Op = kv.OpGet
		g.fillKey(r, g.nextRecord())
		r.Value = r.Value[:0]
	default:
		r.Op = kv.OpScan
		g.fillKey(r, g.nextRecord())
		r.Value = r.Value[:0]
		r.ScanCount = 1 + g.r.Intn(100)
	}
}

func (g *Generator) fillKey(r *kv.Request, i int64) {
	if cap(r.Key) >= kv.KeyLen {
		r.Key = r.Key[:kv.KeyLen]
	} else {
		r.Key = make([]byte, kv.KeyLen)
	}
	kv.FillKey(r.Key, i)
}

func (g *Generator) fillValue(r *kv.Request, i int64, version uint64) {
	n := g.valueBytes(i)
	if cap(r.Value) >= n {
		r.Value = r.Value[:n]
	} else {
		r.Value = make([]byte, n)
	}
	kv.FillValue(r.Value, i, version)
}
