// Package nutanix synthesizes the two production workloads of §6.4.2: a
// 57:41:2 write:read:scan mix over items of 250B-1KB (median 400B). The
// paper characterizes the two traces by their skew — Workload 1 is close to
// uniform (21% of reads served from cache with a cache of 1/3 the data) and
// Workload 2 is highly skewed (99% cache hits) — which we model with a
// uniform and a sharply Zipfian key distribution respectively.
package nutanix

import (
	"math"
	"math/rand"

	"kvell/internal/kv"
	"kvell/internal/slab"
)

// Profile selects one of the two production workloads.
type Profile uint8

// The two production workloads.
const (
	Workload1 Profile = iota + 1 // near-uniform key popularity
	Workload2                    // highly skewed (99% cache-hit reads)
)

// Mix percentages from the paper.
const (
	WritePct = 57
	ReadPct  = 41
	ScanPct  = 2
)

// Generator produces the production request stream.
type Generator struct {
	profile Profile
	records int64
	r       *rand.Rand
	version uint64
	sizes   []int // per-record item size (stable across updates)
}

// New returns a generator over records items.
func New(profile Profile, records int64, seed int64) *Generator {
	g := &Generator{profile: profile, records: records, r: rand.New(rand.NewSource(seed))}
	g.sizes = make([]int, records)
	for i := range g.sizes {
		g.sizes[i] = g.drawSize()
	}
	return g
}

// drawSize samples the item-size distribution: 250B-1KB with a median of
// 400B (log-normal-ish: most items small, a tail up to 1KB).
func (g *Generator) drawSize() int {
	// Log-uniform between 250 and 1024 gives a ~506B median; mix with a
	// bias toward the low end to hit the 400B median the paper reports.
	u := g.r.Float64()
	u = u * u // bias low
	s := 250 * math.Pow(1024.0/250.0, u)
	return int(s)
}

func (g *Generator) valueBytes(i int64) int {
	v := g.sizes[i] - slab.HeaderSize - kv.KeyLen
	if v < 1 {
		v = 1
	}
	return v
}

// nextRecord draws a key. Workload 1 is near-uniform; Workload 2
// concentrates 99% of accesses on a hot set smaller than the cache (the
// cache is a third of the dataset, so a quarter-of-the-keyspace hot set
// yields the paper's 99% cache-hit reads while staying far larger than
// any engine's in-memory write buffer — the ratio that matters for the
// LSM's compaction load at scaled-down dataset sizes).
func (g *Generator) nextRecord() int64 {
	if g.profile == Workload1 {
		return g.r.Int63n(g.records)
	}
	// Workload 2: 99% of ops hit a hot 25% of the key space.
	if g.r.Float64() < 0.99 {
		hot := g.records / 4
		if hot < 1 {
			hot = 1
		}
		// Quadratic bias inside the hot set, hashed to spread over slabs.
		u := g.r.Float64()
		i := int64(u * u * float64(hot))
		return int64(kv.Hash64(kv.Key(i)) % uint64(g.records))
	}
	return g.r.Int63n(g.records)
}

// InitialItems builds the bulk-load dataset.
func (g *Generator) InitialItems() []kv.Item {
	items := make([]kv.Item, g.records)
	for i := int64(0); i < g.records; i++ {
		items[i] = kv.Item{Key: kv.Key(i), Value: kv.Value(i, 0, g.valueBytes(i))}
	}
	return items
}

// Next produces the next operation (57% writes, 41% reads, 2% scans).
func (g *Generator) Next() *kv.Request {
	p := g.r.Intn(100)
	switch {
	case p < WritePct:
		i := g.nextRecord()
		g.version++
		return &kv.Request{Op: kv.OpUpdate, Key: kv.Key(i), Value: kv.Value(i, g.version, g.valueBytes(i))}
	case p < WritePct+ReadPct:
		return &kv.Request{Op: kv.OpGet, Key: kv.Key(g.nextRecord())}
	default:
		return &kv.Request{Op: kv.OpScan, Key: kv.Key(g.nextRecord()), ScanCount: 1 + g.r.Intn(100)}
	}
}
